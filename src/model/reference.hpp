// Published reference points the paper plots against (Section 6.4):
//
//  * SwitchML on a Tofino programmable switch: 1.6 Tbps, int32 only, a
//    fixed number of elements per packet — more elements require
//    recirculation, dividing the element rate accordingly.
//  * SHARP on Mellanox fixed-function switches: 3.2 Tbps (32 x 100 Gbps,
//    the best single-switch datum the paper cites), int + float.
//
// These are constants from the literature, not executed systems — exactly
// how the paper uses them.
#pragma once

#include "common/units.hpp"
#include "core/dtype.hpp"

namespace flare::model {

inline constexpr f64 kSwitchMLBandwidthBps = 1.6e12;
inline constexpr f64 kSharpBandwidthBps = 3.2e12;

/// SwitchML element rate by dtype (elements/s).  The RMT pipeline processes
/// a fixed 32 x int32 slots per packet pass independent of element width,
/// so narrower types do NOT speed it up (limitation F1); float is
/// unsupported (returns 0).
f64 switchml_elements_per_second(core::DType t);

/// Flare element rate for a switch achieving `payload_bps` goodput.
f64 elements_per_second(f64 payload_bps, core::DType t);

}  // namespace flare::model
