// Analytical models of Section 5: packet scheduling and input-buffer
// occupancy.  Symbols follow Table 2 of the paper:
//
//   K        cores in the switch
//   S        cores per scheduling subset (hierarchical FCFS)
//   P        packets per block (= children of the switch)
//   delta    average packet interarrival time at the unit        [cycles]
//   delta_c  interarrival of packets of the SAME block           [cycles]
//   delta_k  interarrival at one core during a burst             [cycles]
//   tau      core service time per packet                        [cycles]
//
// Key results reproduced here:
//   delta_k = min(S * delta_c, K * delta)
//   Q       = (P/S) * (1 - delta_k / tau)            per-core queue length
//   Q_tot   = (P*K/S) * (1 - delta_k/tau) + K        packets in switch (Eq.1)
//   L_blk   = (P-1) * delta_c + (Q+1) * tau          block latency
#pragma once

#include "common/units.hpp"

namespace flare::model {

struct SchedulingParams {
  f64 cores = 512;        ///< K
  f64 subset = 8;         ///< S
  f64 packets_per_block;  ///< P
  f64 delta;              ///< cycles between packets at the unit
  f64 delta_c;            ///< cycles between same-block packets
  f64 tau;                ///< core service time, cycles
};

/// delta_k: per-core interarrival during a burst (Section 5).
f64 delta_k(const SchedulingParams& p);

/// Maximum queue length in front of one core.
f64 queue_length(const SchedulingParams& p);

/// Eq. (1): maximum number of packets resident in the switch.
f64 packets_in_switch(const SchedulingParams& p);

/// Block latency L = (P-1)*delta_c + (Q+1)*tau  [cycles].
f64 block_latency(const SchedulingParams& p);

/// Input-buffer occupancy in bytes for `packet_bytes` packets.
f64 input_buffer_bytes(const SchedulingParams& p, f64 packet_bytes);

}  // namespace flare::model
