// Analytical bandwidth / memory models of Section 6.
//
// The paper's Eq. (2) gives the two extremes of the single-buffer service
// time (uncontended tau = L; fully contended tau = L*(C-1)/2).  Between the
// extremes we interpolate through the expected number of handlers
// concurrently working on one block,
//
//     c_eff = clamp(L / (B * delta_c), 1, S)
//
// (a handler occupies the buffer for L cycles; same-block packets arrive
// every delta_c cycles and spread over B buffers; at most S handlers can
// run them).  tau then carries the average serialization wait
// L * (c_eff - 1) / 2, reproducing both Eq. (2) limits.
//
// Per-policy overheads beyond the aggregation loop itself (buffer
// management, DMA copies, merge folds) are charged explicitly; constants
// live in core::CostModel and in PolicyOverheads below.
#pragma once

#include "core/cost_model.hpp"
#include "core/policy.hpp"
#include "core/staggered.hpp"
#include "model/scheduling.hpp"

namespace flare::model {

/// Static description of the modeled switch + workload.
struct SwitchParams {
  f64 cores = 512;             ///< K (64 clusters x 8 HPUs, Section 3)
  f64 cores_per_cluster = 8;   ///< C
  f64 subset = 8;              ///< S (hierarchical FCFS subset size)
  f64 hosts = 16;              ///< P = children of the switch
  u64 packet_payload = 1024;   ///< bytes of reducible data per packet
  core::DType dtype = core::DType::kFloat32;
  core::CostModel costs{};
  /// Aggregate ingest of the reduction traffic in bits/s.  The effective
  /// packet interarrival is delta = max(wire delta, L/K): the paper sizes
  /// the system so the unit is fed at most at its service rate.
  f64 ingest_bps = 6.4e12;
  core::SendOrder send_order = core::SendOrder::kStaggered;
  /// Charge the i-cache cold-start penalty once per core per operation
  /// (single-shot operations; Section 6.4 "cold start" effect).
  bool cold_start = true;
};

/// Per-policy fixed overhead cycles added to the service time.
struct PolicyOverheads {
  f64 single = 8;    ///< amortized emit bookkeeping
  f64 multi = 32;    ///< buffer search / occupancy bookkeeping
  f64 tree = 160;    ///< climb checks + claim bookkeeping
};

/// Everything the figure generators need for one (policy, size) point.
struct PolicyPoint {
  f64 tau = 0;                 ///< service time, cycles/packet
  f64 delta = 0;               ///< packet interarrival, cycles
  f64 delta_c = 0;             ///< same-block interarrival, cycles
  f64 bandwidth_pkt_per_cyc = 0;
  f64 bandwidth_bps = 0;       ///< payload goodput, bits/s
  f64 buffers_per_block = 0;   ///< M
  f64 block_latency_cycles = 0;  ///< script-L
  f64 input_buffer_bytes = 0;  ///< Eq. 1 in bytes
  f64 working_memory_bytes = 0;  ///< script-R in bytes
};

/// Elements per packet for the configured dtype.
f64 elems_per_packet(const SwitchParams& sp);

/// L: cycles to aggregate one packet (local L1).
f64 packet_aggregation_cycles(const SwitchParams& sp);

/// delta in cycles (wire-limited or service-limited, whichever is slower).
f64 packet_interarrival(const SwitchParams& sp);

/// delta_c for a message of `data_bytes` per host under the send order.
f64 intra_block_interarrival(const SwitchParams& sp, u64 data_bytes);

/// Expected concurrent handlers per (block, buffer): the interpolation knob.
f64 effective_concurrency(const SwitchParams& sp, f64 delta_c, u32 buffers);

/// Service time tau for a policy at message size `data_bytes`.
f64 service_time(const SwitchParams& sp, core::AggPolicy policy, u32 buffers,
                 u64 data_bytes, const PolicyOverheads& ov = {});

/// M: average buffers held per in-flight block (Section 6.x insights).
f64 buffers_per_block(const SwitchParams& sp, core::AggPolicy policy,
                      u32 buffers);

/// Full evaluation of one (policy, size) point: bandwidth (B = min(K/tau,
/// 1/delta)), Eq. 1 input buffers, Little's-law working memory.
PolicyPoint evaluate(const SwitchParams& sp, core::AggPolicy policy,
                     u32 buffers, u64 data_bytes,
                     const PolicyOverheads& ov = {});

}  // namespace flare::model
