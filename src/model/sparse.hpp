// Analytical model of the sparse allreduce (Section 7 / Figure 13).
//
// A sparse packet carries `pairs_per_packet` (index, value) pairs.  The
// handler pays a per-pair store cost (hash probe+insert, or array indexed
// add) instead of the dense SIMD loop, plus — for the array store — an
// amortized share of the completion scan over the whole block span.
// The parallelism policies compose exactly as in the dense model, with the
// per-packet work L replaced by the sparse insert cost.
#pragma once

#include "model/policies.hpp"

namespace flare::model {

struct SparseParams {
  SwitchParams sw;
  f64 density = 0.10;        ///< fraction of non-zero elements
  bool hash_storage = true;  ///< hash+spill vs contiguous array
  u32 hash_capacity_pairs = 512;
  u32 spill_capacity_pairs = 64;
};

/// Pairs carried per packet for the configured dtype/payload.
f64 sparse_pairs_per_packet(const SparseParams& p);

/// Block index span so that one host's non-zeros fill ~one packet.
f64 sparse_block_span(const SparseParams& p);

/// L_sparse: per-packet handler work in cycles (insert + amortized scan).
f64 sparse_packet_cycles(const SparseParams& p);

/// Working-structure footprint per block in bytes (Figure 14 "Block Mem").
f64 sparse_block_memory_bytes(const SparseParams& p);

/// Full point evaluation at `sparsified_bytes` of wire data per host.
/// Bandwidth counts sparsified payload bytes (the x-axis of Figure 13).
PolicyPoint evaluate_sparse(const SparseParams& p, core::AggPolicy policy,
                            u32 buffers, u64 sparsified_bytes);

}  // namespace flare::model
