#include "model/sparse.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/packet.hpp"

namespace flare::model {

f64 sparse_pairs_per_packet(const SparseParams& p) {
  return static_cast<f64>(core::sparse_pairs_per_packet(
      p.sw.packet_payload, p.sw.dtype));
}

f64 sparse_block_span(const SparseParams& p) {
  return sparse_pairs_per_packet(p) / p.density;
}

f64 sparse_packet_cycles(const SparseParams& p) {
  const f64 ppp = sparse_pairs_per_packet(p);
  const auto& c = p.sw.costs;
  if (p.hash_storage) {
    // Constant work per pair regardless of density (the paper's "number of
    // instructions that only depend on the size of the packet"), plus the
    // capacity-bounded completion scan amortized over the block's packets.
    const f64 scan = (static_cast<f64>(p.hash_capacity_pairs) *
                          c.scan_cycles_per_slot +
                      ppp * c.emit_cycles_per_pair) /
                     p.sw.hosts;
    return ppp * c.hash_insert_cycles_per_pair + scan;
  }
  // Array store: cheap indexed adds, but the completion scan walks the whole
  // span — the 1/density growth that eventually kills it (Section 7.1).
  const f64 span = sparse_block_span(p);
  const f64 scan =
      (span * c.scan_cycles_per_slot + ppp * c.emit_cycles_per_pair) /
      p.sw.hosts;
  return ppp * c.array_insert_cycles_per_pair + scan;
}

f64 sparse_block_memory_bytes(const SparseParams& p) {
  const f64 pair_bytes =
      static_cast<f64>(core::sparse_pair_bytes(p.sw.dtype));
  if (p.hash_storage) {
    return static_cast<f64>(std::bit_ceil(
               static_cast<u64>(p.hash_capacity_pairs))) *
               pair_bytes +
           static_cast<f64>(p.spill_capacity_pairs) * pair_bytes;
  }
  const f64 span = sparse_block_span(p);
  return span * static_cast<f64>(core::dtype_size(p.sw.dtype)) + span / 8.0;
}

PolicyPoint evaluate_sparse(const SparseParams& p, core::AggPolicy policy,
                            u32 buffers, u64 sparsified_bytes) {
  // Reuse the dense machinery with L replaced by the sparse packet cost:
  // express the sparse work as an equivalent "elements per packet" so that
  // service_time() picks it up through the cost model.
  SwitchParams sw = p.sw;
  const f64 lsparse = sparse_packet_cycles(p);
  const f64 ldense_per_byte =
      sw.costs.cycles_per_elem(sw.dtype) /
      static_cast<f64>(core::dtype_size(sw.dtype));
  // Scale the per-element cost so packet_aggregation_cycles() == lsparse.
  const f64 scale = lsparse / (ldense_per_byte *
                               static_cast<f64>(sw.packet_payload));
  sw.costs.cycles_per_elem_f32 *= scale;
  sw.costs.cycles_per_elem_f16 *= scale;
  sw.costs.cycles_per_elem_i8 *= scale;
  sw.costs.cycles_per_elem_i16 *= scale;
  sw.costs.cycles_per_elem_i32 *= scale;
  sw.costs.cycles_per_elem_i64 *= scale;

  PolicyPoint pt = evaluate(sw, policy, buffers, sparsified_bytes);
  // Working memory: Little's law with the sparse structure footprint
  // replacing the dense packet-sized buffer.
  const f64 block_rate = pt.bandwidth_pkt_per_cyc / sw.hosts;
  const f64 m = buffers_per_block(sw, policy, buffers);
  pt.working_memory_bytes = m * block_rate * pt.block_latency_cycles *
                            sparse_block_memory_bytes(p);
  return pt;
}

}  // namespace flare::model
