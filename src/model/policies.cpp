#include "model/policies.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "core/packet.hpp"

namespace flare::model {

f64 elems_per_packet(const SwitchParams& sp) {
  return static_cast<f64>(sp.packet_payload) /
         static_cast<f64>(core::dtype_size(sp.dtype));
}

f64 packet_aggregation_cycles(const SwitchParams& sp) {
  return elems_per_packet(sp) * sp.costs.cycles_per_elem(sp.dtype);
}

f64 packet_interarrival(const SwitchParams& sp) {
  const f64 wire_bytes =
      static_cast<f64>(sp.packet_payload + core::kPacketWireOverhead);
  const f64 wire_delta_s = wire_bytes * 8.0 / sp.ingest_bps;
  const f64 wire_delta_cyc = wire_delta_s * sp.costs.clock_ghz * 1e9;
  // The paper sizes the system so interarrival >= service time of the unit
  // (Section 5); the best-case service rate is K / L.
  const f64 service_delta = packet_aggregation_cycles(sp) / sp.cores;
  return std::max(wire_delta_cyc, service_delta);
}

f64 intra_block_interarrival(const SwitchParams& sp, u64 data_bytes) {
  const f64 delta = packet_interarrival(sp);
  const f64 num_blocks = std::max(
      1.0, static_cast<f64>(data_bytes) / static_cast<f64>(sp.packet_payload));
  if (sp.send_order == core::SendOrder::kAligned) return delta;
  // Maximum stagger spreads the P packets of one block over the whole
  // message: delta_c = delta * Z / N (the paper's upper bound).
  return delta * num_blocks;
}

f64 effective_concurrency(const SwitchParams& sp, f64 delta_c, u32 buffers) {
  if (sp.subset <= 1.0) return 1.0;  // S = 1: serial by construction
  const f64 lagg = packet_aggregation_cycles(sp);
  const f64 c = lagg / (static_cast<f64>(buffers) * delta_c);
  return std::clamp(c, 1.0, sp.subset);
}

f64 service_time(const SwitchParams& sp, core::AggPolicy policy, u32 buffers,
                 u64 data_bytes, const PolicyOverheads& ov) {
  const f64 lagg = packet_aggregation_cycles(sp);
  const f64 p = sp.hosts;
  const f64 dc = intra_block_interarrival(sp, data_bytes);
  f64 tau = 0.0;
  switch (policy) {
    case core::AggPolicy::kSingleBuffer: {
      const f64 c_eff = effective_concurrency(sp, dc, 1);
      tau = lagg * (1.0 + (c_eff - 1.0) / 2.0) + ov.single;
      break;
    }
    case core::AggPolicy::kMultiBuffer: {
      FLARE_ASSERT(buffers >= 1);
      const f64 c_eff = effective_concurrency(sp, dc, buffers);
      // Contention term with delta_c scaled by B (Section 6.2), plus the
      // last handler's sequential fold of B-1 buffers amortized over the
      // P packets of the block.
      tau = lagg * (1.0 + (c_eff - 1.0) / 2.0) +
            (static_cast<f64>(buffers) - 1.0) * lagg / p + ov.multi;
      break;
    }
    case core::AggPolicy::kTree: {
      // P-1 aggregations for P packets, each packet additionally pays the
      // DMA leaf copy; never any waiting (Section 6.3).
      tau = (p - 1.0) * lagg / p +
            static_cast<f64>(sp.costs.dma_packet_cycles) + ov.tree;
      break;
    }
  }
  if (sp.cold_start) {
    // One i-cache fill per active core per operation, amortized over the
    // operation's packets.
    const f64 total_packets =
        p * std::max(1.0, static_cast<f64>(data_bytes) /
                              static_cast<f64>(sp.packet_payload));
    const f64 active_cores = std::min(sp.cores, total_packets);
    tau += static_cast<f64>(sp.costs.cold_start_cycles) * active_cores /
           total_packets;
  }
  return tau;
}

f64 buffers_per_block(const SwitchParams& sp, core::AggPolicy policy,
                      u32 buffers) {
  switch (policy) {
    case core::AggPolicy::kSingleBuffer: return 1.0;
    case core::AggPolicy::kMultiBuffer: return static_cast<f64>(buffers);
    case core::AggPolicy::kTree: {
      const f64 p = sp.hosts;
      if (p <= 2.0) return 1.0;
      return (p - 1.0) / std::log2(p);
    }
  }
  return 1.0;
}

PolicyPoint evaluate(const SwitchParams& sp, core::AggPolicy policy,
                     u32 buffers, u64 data_bytes, const PolicyOverheads& ov) {
  PolicyPoint pt;
  pt.delta = packet_interarrival(sp);
  pt.delta_c = intra_block_interarrival(sp, data_bytes);
  pt.tau = service_time(sp, policy, buffers, data_bytes, ov);
  pt.bandwidth_pkt_per_cyc = std::min(sp.cores / pt.tau, 1.0 / pt.delta);
  pt.bandwidth_bps = pt.bandwidth_pkt_per_cyc *
                     static_cast<f64>(sp.packet_payload) * 8.0 *
                     sp.costs.clock_ghz * 1e9;
  pt.buffers_per_block = buffers_per_block(sp, policy, buffers);

  SchedulingParams sched;
  sched.cores = sp.cores;
  sched.subset = sp.subset;
  sched.packets_per_block = sp.hosts;
  sched.delta = pt.delta;
  sched.delta_c = pt.delta_c;
  sched.tau = pt.tau;
  pt.block_latency_cycles = block_latency(sched);
  pt.input_buffer_bytes = input_buffer_bytes(
      sched,
      static_cast<f64>(sp.packet_payload + core::kPacketWireOverhead));

  // Little's law (Section 4.3): R = M * (B/P) * L blocks' worth of buffers.
  const f64 block_rate = pt.bandwidth_pkt_per_cyc / sp.hosts;
  const f64 buffers_in_flight =
      pt.buffers_per_block * block_rate * pt.block_latency_cycles;
  pt.working_memory_bytes =
      buffers_in_flight * static_cast<f64>(sp.packet_payload);
  return pt;
}

}  // namespace flare::model
