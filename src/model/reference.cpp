#include "model/reference.hpp"

namespace flare::model {

f64 switchml_elements_per_second(core::DType t) {
  // 1.6 Tbps of int32 payload = 50 G elements/s.  Narrower integers are
  // still carried as 32-bit pipeline slots (no element-rate gain); floats
  // are unsupported on the Tofino ALUs.
  switch (t) {
    case core::DType::kInt8:
    case core::DType::kInt16:
    case core::DType::kInt32:
      return kSwitchMLBandwidthBps / 32.0;
    case core::DType::kInt64:
    case core::DType::kFloat16:
    case core::DType::kFloat32:
      return 0.0;
  }
  return 0.0;
}

f64 elements_per_second(f64 payload_bps, core::DType t) {
  return payload_bps / (8.0 * static_cast<f64>(core::dtype_size(t)));
}

}  // namespace flare::model
