#include "model/scheduling.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace flare::model {

f64 delta_k(const SchedulingParams& p) {
  FLARE_ASSERT(p.subset >= 1.0 && p.cores >= p.subset);
  return std::min(p.subset * p.delta_c, p.cores * p.delta);
}

f64 queue_length(const SchedulingParams& p) {
  FLARE_ASSERT(p.tau > 0.0);
  const f64 dk = delta_k(p);
  const f64 q = (p.packets_per_block / p.subset) * (1.0 - dk / p.tau);
  return std::max(q, 0.0);
}

f64 packets_in_switch(const SchedulingParams& p) {
  return queue_length(p) * p.cores + p.cores;
}

f64 block_latency(const SchedulingParams& p) {
  return (p.packets_per_block - 1.0) * p.delta_c +
         (queue_length(p) + 1.0) * p.tau;
}

f64 input_buffer_bytes(const SchedulingParams& p, f64 packet_bytes) {
  return packets_in_switch(p) * packet_bytes;
}

}  // namespace flare::model
