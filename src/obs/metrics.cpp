#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace flare::obs {

namespace {

/// One formatting recipe for every double in every export: integers print
/// as integers (counters re-homed from u64 stay readable), everything else
/// as shortest-round-trip %.17g.  Deterministic across runs by
/// construction — no locale, no float state.
std::string fmt_f64(f64 v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string fmt_u64(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void Series::observe(f64 v) {
  FLARE_ASSERT_MSG(!hist.counts.empty(), "observe() on a non-histogram");
  std::size_t b = 0;
  while (b < hist.bounds.size() && v > hist.bounds[b]) ++b;
  hist.counts[b] += 1;
  hist.count += 1;
  hist.sum += v;
}

std::string MetricsRegistry::canonical(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k + "=\"" + escape(v) + "\"";
  }
  return out;
}

Series& MetricsRegistry::upsert(const std::string& name,
                                const std::string& help, MetricType type,
                                const Labels& labels) {
  Family& fam = families_[name];
  if (fam.series.empty()) {
    fam.type = type;
    fam.help = help;
  } else {
    FLARE_ASSERT_MSG(fam.type == type,
                     "metric family re-registered with a different type");
  }
  const std::string key = canonical(labels);
  auto [it, inserted] = fam.series.try_emplace(key);
  if (inserted) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    fam.labels.emplace(key, std::move(sorted));
  }
  return it->second;
}

Series& MetricsRegistry::counter(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  return upsert(name, help, MetricType::kCounter, labels);
}

Series& MetricsRegistry::gauge(const std::string& name,
                               const std::string& help,
                               const Labels& labels) {
  return upsert(name, help, MetricType::kGauge, labels);
}

Series& MetricsRegistry::callback_gauge(const std::string& name,
                                        const std::string& help,
                                        const Labels& labels,
                                        std::function<f64()> fn) {
  Series& s = upsert(name, help, MetricType::kGauge, labels);
  s.gauge_fn = std::move(fn);
  return s;
}

Series& MetricsRegistry::histogram(const std::string& name,
                                   const std::string& help,
                                   std::vector<f64> bounds,
                                   const Labels& labels) {
  FLARE_ASSERT_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                   "histogram bounds must ascend");
  Series& s = upsert(name, help, MetricType::kHistogram, labels);
  if (s.hist.counts.empty()) {
    s.hist.bounds = std::move(bounds);
    s.hist.counts.assign(s.hist.bounds.size() + 1, 0);
  }
  return s;
}

void MetricsRegistry::collect() {
  for (const auto& fn : collectors_) fn(*this);
  for (auto& [name, fam] : families_) {
    for (auto& [key, s] : fam.series) {
      if (s.gauge_fn) s.gauge = s.gauge_fn();
    }
  }
}

std::string MetricsRegistry::to_json() {
  collect();
  std::string out = "{\"metrics\":[\n";
  bool first_fam = true;
  for (const auto& [name, fam] : families_) {
    if (!first_fam) out += ",\n";
    first_fam = false;
    out += "{\"name\":\"" + escape(name) + "\",\"type\":\"";
    switch (fam.type) {
      case MetricType::kCounter: out += "counter"; break;
      case MetricType::kGauge: out += "gauge"; break;
      case MetricType::kHistogram: out += "histogram"; break;
    }
    out += "\",\"help\":\"" + escape(fam.help) + "\",\"series\":[";
    bool first_series = true;
    for (const auto& [key, s] : fam.series) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : fam.labels.at(key)) {
        if (!first_label) out += ",";
        first_label = false;
        out += "\"" + escape(k) + "\":\"" + escape(v) + "\"";
      }
      out += "}";
      switch (fam.type) {
        case MetricType::kCounter:
          out += ",\"value\":" + fmt_u64(s.counter);
          break;
        case MetricType::kGauge:
          out += ",\"value\":" + fmt_f64(s.gauge);
          break;
        case MetricType::kHistogram: {
          out += ",\"count\":" + fmt_u64(s.hist.count) +
                 ",\"sum\":" + fmt_f64(s.hist.sum) + ",\"buckets\":[";
          for (std::size_t b = 0; b < s.hist.counts.size(); ++b) {
            if (b != 0) out += ",";
            const std::string le = b < s.hist.bounds.size()
                                       ? fmt_f64(s.hist.bounds[b])
                                       : "\"+Inf\"";
            out += "{\"le\":" + le + ",\"count\":" +
                   fmt_u64(s.hist.counts[b]) + "}";
          }
          out += "]";
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

std::string MetricsRegistry::to_prometheus() {
  collect();
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " ";
    switch (fam.type) {
      case MetricType::kCounter: out += "counter\n"; break;
      case MetricType::kGauge: out += "gauge\n"; break;
      case MetricType::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [key, s] : fam.series) {
      const std::string braces = key.empty() ? "" : "{" + key + "}";
      switch (fam.type) {
        case MetricType::kCounter:
          out += name + braces + " " + fmt_u64(s.counter) + "\n";
          break;
        case MetricType::kGauge:
          out += name + braces + " " + fmt_f64(s.gauge) + "\n";
          break;
        case MetricType::kHistogram: {
          u64 cum = 0;
          for (std::size_t b = 0; b < s.hist.counts.size(); ++b) {
            cum += s.hist.counts[b];
            const std::string le = b < s.hist.bounds.size()
                                       ? fmt_f64(s.hist.bounds[b])
                                       : "+Inf";
            const std::string sep = key.empty() ? "" : key + ",";
            out += name + "_bucket{" + sep + "le=\"" + le + "\"} " +
                   fmt_u64(cum) + "\n";
          }
          out += name + "_sum" + braces + " " + fmt_f64(s.hist.sum) + "\n";
          out += name + "_count" + braces + " " + fmt_u64(s.hist.count) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace flare::obs
