// Unified metrics registry: every ad-hoc counter in the repo (service
// telemetry, collective result tallies, link drop/busy counters, switch
// pool gauges) re-homes onto ONE surface with labeled series, deterministic
// iteration order, and two export formats — JSON for tooling and the
// Prometheus text exposition format for eyeballs and scrapers.
//
// Determinism contract: families iterate in name order, series in canonical
// sorted-label order (std::map everywhere), and doubles format via one
// fixed printf recipe — identical registry state serializes to identical
// bytes, which is what the observability CI step asserts.
//
// On-demand collection (the monitor-less sampling fix): callback gauges and
// registered collectors run inside collect(), which both exporters call
// first.  A collector may keep state between collections (e.g. the network
// bridge diffs Link::busy_cum_ps between collects to produce windowed
// utilization without any CongestionMonitor armed).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace flare::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : u8 { kCounter = 0, kGauge, kHistogram };

struct HistogramData {
  std::vector<f64> bounds;  ///< ascending upper bounds; +Inf bucket implicit
  std::vector<u64> counts;  ///< bounds.size() + 1 buckets (last = +Inf)
  u64 count = 0;
  f64 sum = 0.0;
};

/// One labeled time series.  Handles returned by the registry point at
/// these; std::map storage keeps them address-stable.
struct Series {
  u64 counter = 0;
  f64 gauge = 0.0;
  std::function<f64()> gauge_fn;  ///< evaluated at collect() when set
  HistogramData hist;

  void inc(u64 d = 1) { counter += d; }
  void set(f64 v) { gauge = v; }
  void observe(f64 v);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the labeled counter series `name{labels}`.
  Series& counter(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  /// Registers (or finds) the labeled gauge series.
  Series& gauge(const std::string& name, const std::string& help,
                const Labels& labels = {});
  /// A gauge whose value is pulled at collect() time — the on-demand
  /// sampling hook (queue depths, pool occupancy, windowed utilization).
  Series& callback_gauge(const std::string& name, const std::string& help,
                         const Labels& labels, std::function<f64()> fn);
  /// Registers (or finds) a histogram with the given ascending bucket
  /// upper bounds (an implicit +Inf bucket is appended).
  Series& histogram(const std::string& name, const std::string& help,
                    std::vector<f64> bounds, const Labels& labels = {});

  /// Runs at the start of every collect(): push fresh values into the
  /// registry (counters/gauges it created or looked up).  Collectors run in
  /// registration order.
  void add_collector(std::function<void(MetricsRegistry&)> fn) {
    collectors_.push_back(std::move(fn));
  }

  /// Runs every collector, then every callback gauge.  Exporters call this
  /// first; call it directly to take a snapshot without serializing.
  void collect();

  /// Canonical label string `a="x",b="y"` (keys sorted); "" for no labels.
  static std::string canonical(const Labels& labels);

  /// JSON export: {"metrics":[{name,type,help,series:[{labels,value|...}]}]}
  /// in deterministic order.  Calls collect().
  std::string to_json();
  /// Prometheus text exposition format, deterministic.  Calls collect().
  std::string to_prometheus();

  u64 num_families() const { return families_.size(); }

 private:
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::map<std::string, Series> series;  ///< by canonical label string
    std::map<std::string, Labels> labels;  ///< parallel: parsed label sets
  };

  Series& upsert(const std::string& name, const std::string& help,
                 MetricType type, const Labels& labels);

  std::map<std::string, Family> families_;  ///< by metric name
  std::vector<std::function<void(MetricsRegistry&)>> collectors_;
};

}  // namespace flare::obs
