// Bridges between the simulator's native counters and the unified
// MetricsRegistry (src/obs/metrics.hpp).  Three entry points, one per
// telemetry producer:
//
//   * register_network_metrics — installs a stateful collector over a
//     Network: link busy/drop counters, per-(link, collective) busy
//     attribution, queue-depth and queued-byte gauges, switch pool
//     occupancy, and a WINDOWED utilization gauge computed by diffing
//     Link::busy_cum_ps between collects.  This is the monitor-less
//     sampling path: none of it needs a CongestionMonitor armed — any
//     caller can snapshot utilization on demand via collect()/to_json().
//
//   * export_service_telemetry — pushes one AllreduceService telemetry
//     struct into the registry (admission/fallback/fault/congestion
//     tallies plus the latency RunningStats as labeled gauges).
//
//   * accumulate_result — folds one CollectiveResult into cumulative
//     per-plane counters and a completion-time histogram; call it per
//     finished collective.
//
// Everything lands in ordinary registry families, so determinism and
// export formatting come from the registry contract — nothing here prints.
#pragma once

#include "coll/result.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "service/telemetry.hpp"

namespace flare::obs {

/// Installs network collectors/gauges on `reg`.  `net` must outlive the
/// registry.  Families registered (all labeled `link="<name>"` unless
/// noted):
///   flare_link_busy_ps_total           counter, cumulative serialization ps
///   flare_link_busy_ps_by_collective   counter, labels link+trace
///   flare_link_windowed_utilization    gauge, busy delta / time delta
///                                      between the last two collects
///                                      (lifetime utilization on the first)
///   flare_link_queue_depth_ps          gauge (callback, on demand)
///   flare_link_queued_bytes            gauge (callback, on demand)
///   flare_link_dropped_packets_total / flare_link_corrupted_packets_total
///   flare_net_drops_total              counter, label kind=
///                                      corrupt|stale_reduce|failed_switch|
///                                      unroutable
///   flare_net_traffic_bytes_total / flare_net_packets_total /
///   flare_net_faults_notified_total    counters, no labels
///   flare_switch_installed_reduces     gauge, label switch="<name>"
///   flare_switch_pool_in_use           gauge, label switch="<name>"
///   flare_switch_occupancy_peak        gauge, label switch="<name>"
void register_network_metrics(MetricsRegistry& reg, net::Network& net);

/// Pushes `t` into `reg` (idempotent per state: series are SET, not
/// accumulated, so re-exporting after more jobs just refreshes them).
void export_service_telemetry(MetricsRegistry& reg,
                              const service::ServiceTelemetry& t);

/// Pushes the placement-plane slice of `t` into `reg` (called by
/// export_service_telemetry; exposed for callers exporting only the
/// co-placement families):
///   flare_place_rounds_total  counter, optimizer rounds executed
///   flare_place_moves_total   counter, label outcome=
///                             proposed|rejected|planned|applied
///   flare_place_cost          gauge, label phase=before|predicted|realized
void export_placement_telemetry(MetricsRegistry& reg,
                                const service::ServiceTelemetry& t);

/// Folds one finished collective into the cumulative result families
/// (labeled by data plane and outcome) and the completion histogram.
void accumulate_result(MetricsRegistry& reg, const coll::CollectiveResult& r);

}  // namespace flare::obs
