// Deterministic Chrome-trace-event tracer for the simulator.
//
// Spans and instant events are keyed on SIMULATED picosecond time, never on
// the wall clock, and serialize with fixed integer-derived formatting — two
// runs of the same seeded scenario produce byte-identical JSON.  The output
// is the Chrome trace-event format ("traceEvents" array of B/E/i/M records,
// timestamps in microseconds), so a whole multi-tenant chaos run loads
// straight into chrome://tracing or https://ui.perfetto.dev.
//
// Row (tid) convention across the repo:
//   * tid 0                — the fabric (faults, congestion crossings);
//   * tid = trace id       — one collective session (per-iteration spans,
//                            retransmit/recovery/migration instants);
//   * tid = 1000000 + job  — one service job (submit -> done span).
//
// The tracer is pure recording: attach it with Network::set_tracer and every
// instrumented layer (ops, monitor, service) emits through it when present.
// A null tracer costs nothing — call sites guard on the pointer.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"

namespace flare::obs {

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a duration span ("B") on row `tid` at simulated time `ps`.
  /// `args_json`, when non-empty, must be a complete JSON object literal
  /// (e.g. R"({"root":3})") and is emitted verbatim.
  void begin(u64 tid, std::string_view name, SimTime ps,
             std::string_view cat = "span", std::string_view args_json = {});

  /// Closes the innermost open span on row `tid` ("E").
  void end(u64 tid, SimTime ps);

  /// A zero-duration instant event ("i", thread scope).
  void instant(u64 tid, std::string_view name, SimTime ps,
               std::string_view cat = "event",
               std::string_view args_json = {});

  /// Names a row via a thread_name metadata record ("M").  Idempotent per
  /// tid: only the first name sticks.
  void name_thread(u64 tid, std::string_view name);

  u64 events() const { return events_.size(); }

  /// The full trace as Chrome trace-event JSON (one event per line, stable
  /// field order, integer-derived timestamps — byte-identical across reruns
  /// of the same seed).
  std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Event {
    char ph = 'i';        ///< B / E / i / M
    u64 tid = 0;
    SimTime ps = 0;
    std::string name;
    std::string cat;
    std::string args;     ///< verbatim JSON object ("" = none)
  };

  std::vector<Event> events_;   ///< emission order (the calendar's order)
  std::unordered_set<u64> named_tids_;
};

}  // namespace flare::obs
