#include "obs/trace.hpp"

#include <cstdio>

namespace flare::obs {

namespace {

/// Minimal JSON string escaping (names and categories are repo-controlled
/// ASCII, but a stray quote must not corrupt the document).
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Picoseconds -> microsecond timestamp string, integer arithmetic only:
/// "%llu.%06llu" can never pick up platform-dependent float formatting.
std::string ts_us(SimTime ps) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                static_cast<unsigned long long>(ps / 1000000ull),
                static_cast<unsigned long long>(ps % 1000000ull));
  return buf;
}

}  // namespace

void Tracer::begin(u64 tid, std::string_view name, SimTime ps,
                   std::string_view cat, std::string_view args_json) {
  events_.push_back({'B', tid, ps, std::string(name), std::string(cat),
                     std::string(args_json)});
}

void Tracer::end(u64 tid, SimTime ps) {
  events_.push_back({'E', tid, ps, {}, {}, {}});
}

void Tracer::instant(u64 tid, std::string_view name, SimTime ps,
                     std::string_view cat, std::string_view args_json) {
  events_.push_back({'i', tid, ps, std::string(name), std::string(cat),
                     std::string(args_json)});
}

void Tracer::name_thread(u64 tid, std::string_view name) {
  if (!named_tids_.insert(tid).second) return;
  events_.push_back({'M', tid, 0, std::string(name), {}, {}});
}

std::string Tracer::to_json() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& ev : events_) {
    if (!first) out += ",\n";
    first = false;
    char head[64];
    std::snprintf(head, sizeof(head), "{\"pid\":1,\"tid\":%llu,",
                  static_cast<unsigned long long>(ev.tid));
    out += head;
    switch (ev.ph) {
      case 'B':
        out += "\"ph\":\"B\",\"ts\":" + ts_us(ev.ps) + ",\"cat\":\"" +
               escape(ev.cat) + "\",\"name\":\"" + escape(ev.name) + "\"";
        break;
      case 'E':
        out += "\"ph\":\"E\",\"ts\":" + ts_us(ev.ps);
        break;
      case 'i':
        out += "\"ph\":\"i\",\"s\":\"t\",\"ts\":" + ts_us(ev.ps) +
               ",\"cat\":\"" + escape(ev.cat) + "\",\"name\":\"" +
               escape(ev.name) + "\"";
        break;
      case 'M':
        out += "\"ph\":\"M\",\"ts\":0,\"name\":\"thread_name\","
               "\"args\":{\"name\":\"" + escape(ev.name) + "\"}";
        break;
    }
    if (ev.ph != 'M' && !ev.args.empty()) {
      out += ",\"args\":" + ev.args;
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace flare::obs
