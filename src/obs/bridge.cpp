#include "obs/bridge.hpp"

#include <memory>
#include <string>

namespace flare::obs {

namespace {

/// Collect-to-collect window state for the monitor-less utilization gauge.
/// Owned by the collector closure (shared_ptr: std::function must stay
/// copyable), indexed by unidirectional link index.
struct WindowState {
  std::vector<u64> busy_at_last;
  SimTime last_at = 0;
  bool sampled = false;
};

std::string link_label(const net::Link& link, u32 i) {
  return link.name().empty() ? "link" + std::to_string(i) : link.name();
}

}  // namespace

void register_network_metrics(MetricsRegistry& reg, net::Network& net) {
  auto state = std::make_shared<WindowState>();
  reg.add_collector([&net, state](MetricsRegistry& r) {
    // Settle fluid flow accrual before reading any busy counter (no-op
    // without an active flow plane).
    net.sync_flows();
    const SimTime now = net.sim().now();
    state->busy_at_last.resize(net.num_links(), 0);
    // Advance the utilization window only when time moved: two collects at
    // the same instant re-serve the previous window instead of a bogus 0.
    const bool fresh = !state->sampled || now > state->last_at;
    for (u32 i = 0; i < net.num_links(); ++i) {
      net::Link& link = net.link(i);
#if FLARE_VALIDATE_ENABLED
      // Exporters divide by the conservation identity (per-trace sums ==
      // busy total); audit it on the same schedule they read it.
      link.validate_attribution();
#endif
      const Labels l{{"link", link_label(link, i)}};
      r.counter("flare_link_busy_ps_total",
                "Cumulative serialization picoseconds per link", l)
          .counter = link.busy_cum_ps();
      r.counter("flare_link_dropped_packets_total",
                "Packets silently dropped on the link (down link or armed "
                "drop)",
                l)
          .counter = link.packets_dropped();
      r.counter("flare_link_corrupted_packets_total",
                "Packets corrupted in flight (discarded at the receiver)", l)
          .counter = link.packets_corrupted();
      for (const auto& [trace, ps] : link.busy_by_trace()) {
        r.counter("flare_link_busy_ps_by_collective",
                  "Busy picoseconds attributed per collective trace id "
                  "(trace 0 = untagged); sums exactly to "
                  "flare_link_busy_ps_total",
                  {{"link", link_label(link, i)},
                   {"trace", std::to_string(trace)}})
            .counter = ps;
      }
      if (fresh) {
        const f64 util =
            state->sampled
                ? net::Link::windowed_utilization(state->busy_at_last[i],
                                                  link.busy_cum_ps(),
                                                  state->last_at, now)
                : link.utilization(now);
        r.gauge("flare_link_windowed_utilization",
                "Link utilization over the window between the last two "
                "collects (lifetime utilization on the first); no "
                "CongestionMonitor needed",
                l)
            .set(util);
        state->busy_at_last[i] = link.busy_cum_ps();
      }
      // On-demand backlog gauges: evaluated inside collect(), so they
      // always read the calendar's CURRENT time.
      r.callback_gauge(
          "flare_link_queue_depth_ps",
          "Serialization backlog in picoseconds a packet offered now would "
          "wait",
          l, [&net, i] {
            return static_cast<f64>(
                net.link(i).queue_delay_ps(net.sim().now()));
          });
      r.callback_gauge(
          "flare_link_queued_bytes",
          "Bytes accepted but not yet serialized on the link", l,
          [&net, i] {
            return static_cast<f64>(net.link(i).queued_bytes(net.sim().now()));
          });
    }
    if (fresh) {
      state->last_at = now;
      state->sampled = true;
    }

    r.counter("flare_net_traffic_bytes_total",
              "Bytes serialized over all links, both directions")
        .counter = net.total_traffic_bytes();
    r.counter("flare_net_packets_total", "Packets serialized over all links")
        .counter = net.total_packets();
    r.counter("flare_net_faults_notified_total",
              "Fabric fault notices delivered to listeners")
        .counter = net.faults_notified();
    const char* kHelp = "Packets dropped network-wide, by cause";
    r.counter("flare_net_drops_total", kHelp, {{"kind", "link"}}).counter =
        net.link_dropped_packets();
    r.counter("flare_net_drops_total", kHelp, {{"kind", "corrupt"}}).counter =
        net.corrupt_dropped_packets();
    r.counter("flare_net_drops_total", kHelp, {{"kind", "stale_reduce"}})
        .counter = net.stale_reduce_dropped_packets();
    r.counter("flare_net_drops_total", kHelp, {{"kind", "failed_switch"}})
        .counter = net.failed_switch_dropped_packets();
    r.counter("flare_net_drops_total", kHelp, {{"kind", "unroutable"}})
        .counter = net.unroutable_dropped_packets();

    for (net::Switch* sw : net.switches()) {
      const Labels l{{"switch", sw->name()}};
      r.gauge("flare_switch_installed_reduces",
              "Reduction sessions currently installed on the switch", l)
          .set(static_cast<f64>(sw->installed_reduces()));
      r.gauge("flare_switch_pool_in_use",
              "Aggregation-pool slots in use across the switch's engines", l)
          .set(static_cast<f64>(sw->engine_pool_in_use()));
      r.gauge("flare_switch_occupancy_peak",
              "High-water mark of concurrent reductions on the switch", l)
          .set(static_cast<f64>(sw->occupancy().high_water()));
    }
  });
}

namespace {

void set_event(MetricsRegistry& reg, const char* event, u64 value) {
  reg.counter("flare_service_events_total",
              "AllreduceService lifecycle tallies, by event",
              {{"event", event}})
      .counter = value;
}

void set_latency(MetricsRegistry& reg, const char* kind,
                 const RunningStats& s) {
  const char* kHelp =
      "Service latency statistics in seconds, by kind and statistic";
  const auto stat = [&](const char* name, f64 v) {
    reg.gauge("flare_service_latency_seconds", kHelp,
              {{"kind", kind}, {"stat", name}})
        .set(v);
  };
  stat("mean", s.mean());
  stat("min", s.min());
  stat("max", s.max());
  reg.counter("flare_service_latency_samples_total",
              "Jobs contributing to each latency statistic",
              {{"kind", kind}})
      .counter = s.count();
}

}  // namespace

void export_service_telemetry(MetricsRegistry& reg,
                              const service::ServiceTelemetry& t) {
  set_event(reg, "submitted", t.submitted);
  set_event(reg, "in_network", t.in_network);
  set_event(reg, "host_requested", t.host_requested);
  set_event(reg, "timeout_fallback", t.timeout_fallbacks);
  set_event(reg, "overflow_fallback", t.overflow_fallbacks);
  set_event(reg, "inadmissible_fallback", t.inadmissible_fallbacks);
  set_event(reg, "rejected", t.rejected);
  set_event(reg, "timed_out", t.timed_out);
  set_event(reg, "queue_overflow", t.queue_overflows);
  set_event(reg, "inadmissible", t.inadmissible);
  set_event(reg, "admission_attempt", t.admission_attempts);
  set_event(reg, "requeue_retry", t.requeue_retries);
  set_event(reg, "fault_seen", t.faults_seen);
  set_event(reg, "retransmit", t.retransmits);
  set_event(reg, "job_recovered", t.jobs_recovered);
  set_event(reg, "fault_fallback", t.fault_fallbacks);
  set_event(reg, "migration", t.migrations);
  set_event(reg, "planned_migration", t.planned_migrations);
  set_event(reg, "admission_reorder", t.admission_reorders);
  set_event(reg, "congestion_deferral", t.congestion_deferrals);
  export_placement_telemetry(reg, t);
  reg.gauge("flare_service_peak_queue_len",
            "High-water mark of the admission wait queue")
      .set(static_cast<f64>(t.peak_queue_len));
  set_latency(reg, "queue_delay", t.queue_delay_s);
  set_latency(reg, "in_network_service", t.in_network_service_s);
  set_latency(reg, "fallback_service", t.fallback_service_s);
}

void export_placement_telemetry(MetricsRegistry& reg,
                                const service::ServiceTelemetry& t) {
  reg.counter("flare_place_rounds_total",
              "Co-placement optimizer rounds executed")
      .counter = t.place.rounds;
  const char* kMoves = "Co-placement plan moves, by outcome";
  const auto moves = [&](const char* outcome, u64 v) {
    reg.counter("flare_place_moves_total", kMoves, {{"outcome", outcome}})
        .counter = v;
  };
  moves("proposed", t.place.moves_proposed);
  moves("rejected", t.place.moves_rejected);
  moves("planned", t.place.moves_planned);
  // Applied moves are counted where they happen — at the jobs' iteration
  // boundaries — and flow back through CollectiveResult.
  moves("applied", t.planned_migrations);
  const char* kCost =
      "Fabric objective around the last staged plan, by phase "
      "(predicted vs realized grades the optimizer's cost model)";
  const auto cost = [&](const char* phase, f64 v) {
    reg.gauge("flare_place_cost", kCost, {{"phase", phase}}).set(v);
  };
  cost("before", t.place.last_cost_before);
  cost("predicted", t.place.last_cost_predicted);
  cost("realized", t.place.last_cost_realized);
}

void accumulate_result(MetricsRegistry& reg,
                       const coll::CollectiveResult& r) {
  reg.counter("flare_collective_completions_total",
              "Finished collectives, by serving data plane and outcome",
              {{"plane", r.in_network ? "in_network" : "host"},
               {"ok", r.ok ? "true" : "false"}})
      .inc();
  const char* kHelp = "Cumulative per-collective tallies, by kind";
  reg.counter("flare_collective_tallies_total", kHelp, {{"kind", "blocks"}})
      .inc(r.blocks);
  reg.counter("flare_collective_tallies_total", kHelp,
              {{"kind", "retransmits"}})
      .inc(r.retransmits);
  reg.counter("flare_collective_tallies_total", kHelp,
              {{"kind", "recoveries"}})
      .inc(r.recoveries);
  reg.counter("flare_collective_tallies_total", kHelp,
              {{"kind", "migrations"}})
      .inc(r.migrations);
  reg.counter("flare_collective_tallies_total", kHelp,
              {{"kind", "extra_packets"}})
      .inc(r.extra_packets);
  if (r.fell_back) {
    reg.counter("flare_collective_tallies_total", kHelp,
                {{"kind", "fault_fallbacks"}})
        .inc();
  }
  reg.histogram("flare_collective_completion_seconds",
                "Completion time of finished collectives (slowest host)",
                {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0})
      .observe(r.completion_seconds);
}

}  // namespace flare::obs
