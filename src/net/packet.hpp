// Network-level packet representation for the SST-style simulator
// (Section 7.1, Figure 15).  Two traffic classes:
//
//  * Flare reduction packets (up toward the tree root / down multicast):
//    carry a core::Packet and are intercepted by the per-switch reduction
//    engine — this is the "switch modifies in-transit packets" capability
//    the paper added to SST;
//  * host-to-host messages used by the host-based baselines (ring allreduce
//    and the SparCML-style sparse allreduce): routed by destination,
//    opaque to switches.
//
// Time in this simulator is PICOSECONDS.
#pragma once

#include <memory>
#include <vector>

#include "common/validate.hpp"
#include "core/packet.hpp"
#include "core/sparse_store.hpp"
#include "core/typed_buffer.hpp"

namespace flare::net {

using NodeId = u32;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Deterministic ECMP pick: which member of an equal-cost port set a flow
/// label hashes to.  THE routing hash — switches forward with it, and
/// traffic-engineering code (e.g. the congestion benches aiming background
/// flows at known spines) must use this function rather than a copy.
inline u32 ecmp_index(u64 flow, std::size_t set_size) {
  const u64 h = flow * 0x9E3779B97F4A7C15ull;
  return static_cast<u32>((h >> 32) % set_size);
}

/// Payload of a host-protocol message.  Fragments of one logical message
/// share the (proto, tag, seq_count) triple; bulk data rides on one
/// fragment as a shared_ptr (the others model wire bytes only).
struct HostMsg {
  u32 src_host = 0;
  u32 dst_host = 0;
  u32 proto = 0;  ///< protocol discriminator, owned by the collective
  u32 tag = 0;    ///< step / chunk id
  u32 seq = 0;
  u32 seq_count = 1;
  std::shared_ptr<const core::TypedBuffer> dense;
  std::shared_ptr<const std::vector<core::StoredPair>> sparse;
};

enum class PacketKind : u8 {
  kHostMsg = 0,
  kReduceUp,
  kReduceDown,
};

struct NetPacket {
  PacketKind kind = PacketKind::kHostMsg;
  u64 wire_bytes = 0;
  NodeId dst_node = kInvalidNode;  ///< routing target for kHostMsg
  u64 flow = 0;                    ///< ECMP hash input
  u32 allreduce_id = 0;            ///< for reduction traffic
  /// Per-collective attribution tag (Network::alloc_trace_id).  Unlike
  /// allreduce_id — which churns on every fresh-id reinstall/migration —
  /// the trace id is stable for a whole session, so links can account
  /// busy-time per collective across recoveries.  0 = untagged traffic
  /// (cross-traffic defaults, stale frames, raw injections).
  u32 trace = 0;
  /// Payload damaged in transit (fault injection): the frame checksum fails
  /// at the next node, which discards the packet.
  bool corrupted = false;
  std::shared_ptr<const core::Packet> reduce;
  std::shared_ptr<const HostMsg> msg;
};

#if FLARE_VALIDATE_ENABLED
/// FLARE_VALIDATE packet-lifecycle invariant: every packet offered to a
/// link carries the payload its kind promises.  A violation here means
/// some data plane built a frame by hand and skipped a field — the kind
/// of bug that surfaces many hops later as a nonsense aggregate.
/// Called by Link::send() on every hop in validating builds.
inline void validate_packet_lifecycle(const NetPacket& pkt) {
  if (pkt.wire_bytes == 0) {
    validate::fail("packet-lifecycle", "packet with zero wire_bytes");
  }
  switch (pkt.kind) {
    case PacketKind::kHostMsg:
      if (!pkt.msg) {
        validate::fail("packet-lifecycle", "kHostMsg without a HostMsg");
      }
      if (pkt.dst_node == kInvalidNode) {
        validate::fail("packet-lifecycle",
                       "kHostMsg without a routable dst_node");
      }
      break;
    case PacketKind::kReduceUp:
    case PacketKind::kReduceDown:
      if (!pkt.reduce) {
        validate::fail("packet-lifecycle",
                       "reduce packet without a core::Packet");
      }
      if (pkt.allreduce_id == 0) {
        validate::fail("packet-lifecycle",
                       "reduce packet with null allreduce id");
      }
      break;
  }
}
#endif

}  // namespace flare::net
