// Network nodes: hosts and switches.
//
// Switches forward host messages by destination routing tables (ECMP over
// equal-cost ports by flow hash) and intercept Flare reduction traffic:
// up-packets pass through a calibrated aggregation server (service rate
// matched to the PsPIN unit's measured bandwidth — exactly how the paper
// tuned its extended SST) and into a core::AllreduceEngine; results are
// forwarded to the tree parent or multicast down to the tree children.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/validate.hpp"
#include "core/allreduce_engine.hpp"
#include "net/link.hpp"

namespace flare::net {

class Network;

class Node {
 public:
  Node(Network& net, NodeId id, std::string name)
      : net_(net), id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  u32 num_ports() const { return static_cast<u32>(ports_.size()); }

  /// Registers an outgoing link as the next port; returns the port index.
  u32 add_port(Link* out) {
    ports_.push_back(out);
    return static_cast<u32>(ports_.size() - 1);
  }
  Link& port(u32 i) { return *ports_.at(i); }
  const Link& port(u32 i) const { return *ports_.at(i); }

  virtual void receive(NetPacket&& pkt, u32 in_port) = 0;

 protected:
  Network& net_;
  NodeId id_;
  std::string name_;
  std::vector<Link*> ports_;
};

// ---------------------------------------------------------------------------

class Host final : public Node {
 public:
  using MsgHandler = std::function<void(const HostMsg&)>;
  using ReduceHandler = std::function<void(const core::Packet&)>;

  Host(Network& net, NodeId id, u32 host_index, std::string name)
      : Node(net, id, std::move(name)), host_index_(host_index) {}

  u32 host_index() const { return host_index_; }
  /// Catch-all handler for host messages no proto handler claims.
  void set_msg_handler(MsgHandler h) { on_msg_ = std::move(h); }
  /// Registers a handler for one wire protocol id, so independent
  /// host-based collectives (each with its own proto) can overlap on one
  /// host without clobbering each other's dispatch.
  void set_proto_handler(u32 proto, MsgHandler h) {
    on_proto_[proto] = std::move(h);
  }
  void clear_proto_handler(u32 proto) { on_proto_.erase(proto); }
  /// Registers the consumer of down-multicast results for one allreduce id
  /// (a host can participate in several concurrent allreduces, Section 4).
  void set_reduce_handler(u32 allreduce_id, ReduceHandler h) {
    on_reduce_[allreduce_id] = std::move(h);
  }
  void clear_reduce_handler(u32 allreduce_id) {
    on_reduce_.erase(allreduce_id);
  }

  /// Sends through the NIC (port 0); the link serializes at NIC rate.
  void send(NetPacket&& pkt) { port(0).send(std::move(pkt)); }

  void receive(NetPacket&& pkt, u32 in_port) override;

 private:
  u32 host_index_;
  MsgHandler on_msg_;
  std::unordered_map<u32, MsgHandler> on_proto_;
  std::unordered_map<u32, ReduceHandler> on_reduce_;
};

// ---------------------------------------------------------------------------

/// Reduction-tree role of one switch for one installed allreduce.
struct ReduceRole {
  std::unique_ptr<core::AllreduceEngine> engine;
  bool is_root = false;
  u32 parent_port = UINT32_MAX;      ///< toward the tree root
  u16 child_index_at_parent = 0;     ///< our index among the parent's children
  std::vector<u32> child_ports;      ///< down-multicast targets
  /// Calibrated aggregation service rate (bits/s of up-traffic processed).
  f64 service_bps = 0.0;
  SimTime server_busy_until = 0;
  /// Result packets already emitted for completed blocks this iteration,
  /// by block id.  A host-timeout retransmission arriving for a completed
  /// block re-emits the cached result instead of re-aggregating — the
  /// recovery path for lost switch-to-switch aggregates and lost
  /// down-multicasts.  Cleared by reset_reduce() between iterations.
  std::unordered_map<u32, std::shared_ptr<const core::Packet>> completed;
  /// The SPARSE analogue: a sparse block's output spans several shard and
  /// spill packets, so the cache keeps the whole emission sequence in
  /// order.  Valid for re-emit only once the last-shard marker was emitted
  /// (the final packet of the sequence); receivers deduplicate replays by
  /// (child, shard_seq), so re-emitting the full sequence is idempotent.
  /// Cleared by reset_reduce() between iterations.
  std::unordered_map<u32, std::vector<std::shared_ptr<const core::Packet>>>
      completed_sparse;
};

/// Compressed destination routing for host-indexed topologies (the
/// 3-level fat tree at 10k hosts).  Instead of an O(nodes) table per
/// switch, the table holds one DEFAULT up-port ECMP set plus exceptions
/// for the groups of hosts reachable downward.  Destination host indices
/// are divided by `group_size` first, so a whole edge (or pod) of
/// contiguous hosts shares a single entry: an edge switch keys individual
/// hosts (group_size 1), an agg keys edges (group_size radix/2), a core
/// keys pods (group_size (radix/2)^2).
struct HostRouteTable {
  u32 group_size = 1;  ///< contiguous host indices sharing one decision
  std::vector<u32> up_ports;  ///< default ECMP set (toward the upper tier)
  struct Exception {
    u32 group = 0;   ///< dst host index / group_size
    u32 begin = 0;   ///< range into `ports`
    u32 end = 0;
  };
  std::vector<Exception> exceptions;  ///< sorted by group
  std::vector<u32> ports;             ///< concatenated exception port sets
};

class Switch final : public Node, public core::EngineHost {
 public:
  Switch(Network& net, NodeId id, std::string name, u32 max_allreduces = 8);
  ~Switch() override;

  // --- forwarding plane ---
  void set_routes(std::vector<std::vector<u32>> routes) {
    routes_ = std::move(routes);
  }
  /// Installs a compressed host-indexed table (replaces set_routes-style
  /// per-node tables for the 3-level builder).
  void set_host_routes(HostRouteTable table) {
    host_routes_ = std::move(table);
    use_host_routes_ = true;
  }
  /// The ECMP port set toward `dst` under whichever representation is
  /// installed.  Shared by forward_host_msg and the flow plane's path
  /// walk, so both planes hash identical sets.
  std::span<const u32> route_ports(NodeId dst) const;
  /// Per-switch ECMP hash salt (XORed into the flow label before
  /// ecmp_index).  Zero under per-node tables — the legacy 2-level
  /// behavior, which traffic-engineering benches predict — and the switch
  /// id under compressed host routes, so the edge and agg stages of the
  /// 3-level tree hash INDEPENDENTLY instead of polarizing every label
  /// onto the diagonal cores.  The flow plane applies the same salt.
  u64 ecmp_salt() const { return use_host_routes_ ? id_ : 0; }
  void receive(NetPacket&& pkt, u32 in_port) override;

  // --- fault plane ---
  /// Crash-stop failure: every installed reduction role (engines, cached
  /// results, in-service work) is LOST and all traffic is dropped until
  /// restart().  Notifies the network's fault listeners.
  void fail();
  /// Restarts a failed switch: forwarding tables persist, reduce state
  /// starts empty — the control plane must reinstall.
  void restart();
  bool failed() const { return failed_; }

  // --- control plane (driven by the coll::NetworkManager) ---
  bool can_install() const {
    return !failed_ && roles_.size() < max_allreduces_;
  }
  u32 max_allreduces() const { return max_allreduces_; }
  /// Installs a reduction role; returns false if slots are exhausted.
  bool install_reduce(const core::AllreduceConfig& cfg, ReduceRole&& role);
  void uninstall_reduce(u32 allreduce_id);
  /// Clears the installed engine's per-iteration state WITHOUT releasing
  /// the switch slot — persistent collectives re-run against the installed
  /// tree (install-once / run-many).  Returns false if the id is unknown.
  bool reset_reduce(u32 allreduce_id);
  const ReduceRole* role(u32 allreduce_id) const;
  const core::EngineStats* engine_stats(u32 allreduce_id) const;

  // --- occupancy telemetry (Section 4: statically partitioned memory) ---
  /// Reductions currently installed on this switch.
  u32 installed_reduces() const { return static_cast<u32>(roles_.size()); }
  /// Remaining admission slots.
  u32 free_slots() const { return max_allreduces_ - installed_reduces(); }
  /// Occupancy over simulated time: current level, high-water mark, and
  /// time-weighted mean — the control plane's contention signal.
  const Gauge& occupancy() const { return occupancy_; }
  /// Working-memory bytes currently acquired across every installed
  /// engine's pool.  The sparse leak check: once an iteration completes,
  /// every hash/array store was returned and this reads zero even while
  /// the installs themselves stay resident (persistent sessions).
  u64 engine_pool_in_use() const {
    u64 total = 0;
    // flare-lint: allow(unordered-iter) integer sum, order-insensitive
    for (const auto& [id, role] : roles_) {
      total += role.engine->pool().in_use();
    }
    return total;
  }

  // --- EngineHost (picosecond clock; engines run with a zero cost model,
  //     timing comes from the calibrated server) ---
  sim::Simulator& simulator() override;
  const core::CostModel& costs() override { return zero_costs_; }
  void emit(core::Packet&& pkt, SimTime when) override;

  u64 reduce_packets_processed() const { return reduce_packets_; }

#if FLARE_VALIDATE_ENABLED
  /// FLARE_VALIDATE occupancy audit: the gauge the control plane reads
  /// for admission must track the role table exactly.  Run after every
  /// install/uninstall and on demand by fabric-wide audits.
  void validate_occupancy() const {
    if (occupancy_.current() != roles_.size()) {
      validate::fail("switch-occupancy",
                     "switch '" + name_ + "': occupancy gauge reads " +
                         std::to_string(occupancy_.current()) + " but " +
                         std::to_string(roles_.size()) +
                         " roles are installed");
    }
  }
  /// Validator-test backdoor: bumps the occupancy gauge WITHOUT
  /// installing a role — the leaked-slot bug class — so
  /// tests/validate_test.cpp can prove the audit fires.
  void debug_leak_occupancy();
#endif

 private:
  /// Cached roles_ lookup for the per-packet data plane: reduction packets
  /// of one collective arrive in bursts, so most lookups repeat the
  /// previous id.  unordered_map references are stable under insert and
  /// rehash, so the cache only needs invalidating when a role is erased
  /// (uninstall_reduce, fail).  Misses are never cached — a stale-drop id
  /// can be installed later without the cache masking it.
  ReduceRole* find_role(u32 allreduce_id) {
    if (cached_role_ != nullptr && cached_role_id_ == allreduce_id) {
      return cached_role_;
    }
    auto it = roles_.find(allreduce_id);
    if (it == roles_.end()) return nullptr;
    cached_role_id_ = allreduce_id;
    cached_role_ = &it->second;
    return cached_role_;
  }
  void invalidate_role_cache() { cached_role_ = nullptr; }

  void forward_host_msg(NetPacket&& pkt);
  void on_reduce_up(NetPacket&& pkt);
  void on_reduce_down(NetPacket&& pkt);
  /// Re-sends the cached result of a completed block (retransmission hit).
  void reemit_completed(u32 allreduce_id, u32 block_id);
  /// Sparse analogue: replays the block's whole cached emission sequence.
  void reemit_completed_sparse(u32 allreduce_id, u32 block_id);

  bool failed_ = false;
  u32 max_allreduces_;
  std::vector<std::vector<u32>> routes_;  ///< dst NodeId -> ECMP port set
  HostRouteTable host_routes_;            ///< compressed alternative
  bool use_host_routes_ = false;
  std::unordered_map<u32, ReduceRole> roles_;
  u32 cached_role_id_ = 0;
  ReduceRole* cached_role_ = nullptr;  ///< one-entry cache over roles_
  Gauge occupancy_;
  core::CostModel zero_costs_;
  u64 reduce_packets_ = 0;
};

}  // namespace flare::net
