// Fabric-wide congestion telemetry plane (Canary, PAPERS.md: congestion-
// aware in-network allreduce needs a congestion SIGNAL before it can place
// or move trees).
//
// The CongestionMonitor periodically snapshots every link's windowed
// utilization (diffing Link::busy_cum_ps() across the sampling window — the
// lifetime counter misleads after idle phases) and serialization backlog,
// folding them into a per-link EWMA.  Sampling runs on the event calendar,
// so a given topology + traffic + sampling schedule replays bit for bit;
// there is no wall-clock anywhere in the plane.
//
// Consumers:
//   * coll::NetworkManager — link-cost provider for congestion-aware tree
//     embedding (cost() / edge_cost());
//   * coll::Communicator persistent sessions — migration trigger
//     (edge_congestion() over the installed tree's links);
//   * service::RootPolicy::kLeastCongested — root ordering.
//
// Two sampling styles, both deterministic:
//   * arm_until(t) schedules period-spaced samples on the calendar (the
//     calendar drains once the horizon passes — a monitor never keeps the
//     simulation alive forever);
//   * sample() takes one snapshot NOW — control planes call it at natural
//     decision points (iteration boundaries, admission rounds).
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"

namespace flare::net {

/// One link's congestion state in the latest snapshot.
struct LinkCongestion {
  f64 inst_utilization = 0.0;  ///< over the last sampling window
  f64 ewma_utilization = 0.0;  ///< EWMA of the windowed utilizations
  u64 queued_bytes = 0;        ///< serialization backlog at sample time
  SimTime queue_delay_ps = 0;  ///< backlog expressed as wait time
};

struct CongestionSnapshot {
  SimTime at = 0;  ///< sample time
  u64 epoch = 0;   ///< samples taken so far (staleness tracking)
  std::vector<LinkCongestion> links;  ///< by unidirectional link index
};

struct CongestionMonitorOptions {
  /// Sampling period for arm_until(); also normalizes the queue-delay term
  /// of edge_cost().
  SimTime period_ps = 5 * kPsPerUs;
  /// Weight of the newest window in the EWMA (1.0 = windowed only).
  f64 ewma_alpha = 0.3;
  /// EWMA level at which a link counts as hot for the tracer's
  /// congestion-crossing instants (emitted only when the network has a
  /// tracer attached; no effect on any control decision).
  f64 hot_threshold = 0.5;
  /// edge_cost() = 1 (the hop) + utilization_weight * ewma
  ///             + queue_weight * queue_delay / period.
  f64 utilization_weight = 8.0;
  f64 queue_weight = 2.0;
};

class CongestionMonitor {
 public:
  explicit CongestionMonitor(Network& net,
                             CongestionMonitorOptions opt = {});
  CongestionMonitor(const CongestionMonitor&) = delete;
  CongestionMonitor& operator=(const CongestionMonitor&) = delete;

  /// Takes one snapshot at the current simulated time.  Re-sampling at the
  /// same instant refreshes queue occupancy but leaves the EWMA untouched
  /// (a zero-length window has no utilization).
  void sample();

  /// Schedules period-spaced samples from now up to and including `until`.
  /// The events capture `this`: the monitor must outlive the horizon.
  void arm_until(SimTime until);

  const CongestionSnapshot& snapshot() const { return snap_; }
  u64 samples() const { return snap_.epoch; }
  const CongestionMonitorOptions& options() const { return opt_; }
  Network& network() { return net_; }

  /// Congestion of the duplex link behind `port` of `node`: the worse
  /// EWMA utilization of the two directions (tree traffic crosses both —
  /// contributions up, multicast down).
  f64 edge_congestion(NodeId node, u32 port) const;

  /// edge_congestion() with the named collective's OWN contribution
  /// subtracted: per direction, clamp(ewma_total - ewma_trace, >= 0), then
  /// the worse direction.  The per-trace EWMAs update with the same window
  /// schedule, seeding, and alpha as the totals, and link attribution
  /// conserves busy time exactly, so a link heated ONLY by `trace` reads
  /// ~0 here — the migration trigger that replaced the completion-time
  /// regression gate sees FOREIGN heat alone.  trace 0 excludes nothing
  /// measurable (untagged traffic is by definition foreign).
  f64 edge_congestion_excluding(NodeId node, u32 port, u32 trace) const;

  /// EWMA utilization attributed to `trace` on unidirectional link `i`
  /// (0 when the trace never serialized there).  Test/bridge hook.
  f64 link_trace_ewma(u32 i, u32 trace) const;

  /// Embedding cost of crossing that duplex link (>= 1.0, the hop cost;
  /// grows with EWMA utilization and queueing).  Plug into
  /// coll::NetworkManager::set_link_cost for congestion-aware placement.
  f64 edge_cost(NodeId node, u32 port) const;

  /// Worst edge_congestion() across every port of `node` — the root-
  /// selection signal of the least-congested policy.
  f64 node_congestion(NodeId node) const;

  /// Fabric-wide mean EWMA utilization over every unidirectional link in
  /// the latest snapshot (0 before the first sample).  The service layer's
  /// admission-backpressure signal: one number saying "how hot is the
  /// fabric as a whole", as opposed to the per-edge views above.
  f64 mean_congestion() const;

 private:
  /// Per-(link, trace) EWMA state, updated on the same windows as the
  /// totals.  std::map keyed by trace id: deterministic iteration, and the
  /// trace population per link is small (the collectives crossing it).
  struct TraceState {
    f64 ewma = 0.0;
    u64 busy_at_last = 0;
  };

  const LinkCongestion* stats_for(NodeId node, u32 port, bool reverse) const;
  const Link* link_for(NodeId node, u32 port, bool reverse) const;
  f64 trace_ewma_of(const Link* link, u32 trace) const;

  Network& net_;
  CongestionMonitorOptions opt_;
  CongestionSnapshot snap_;
  std::vector<u64> busy_at_last_;  ///< busy_cum_ps per link at last sample
  std::vector<std::map<u32, TraceState>> by_trace_;  ///< by link index
  std::vector<bool> hot_;  ///< above hot_threshold at last sample
  SimTime last_sample_ps_ = 0;
  bool sampled_ = false;
  /// Stable Link* -> unidirectional index map (links never move).
  std::unordered_map<const Link*, u32> index_of_;
  SimTime armed_until_ = 0;  ///< furthest scheduled sample (idempotent arm)
};

}  // namespace flare::net
