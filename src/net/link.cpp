#include "net/link.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace flare::net {

void Link::send(NetPacket&& pkt) {
  FLARE_ASSERT_MSG(deliver_ != nullptr, "link has no receiver");
#if FLARE_VALIDATE_ENABLED
  validate_packet_lifecycle(pkt);
#endif
  if (!up_) {
    dropped_ += 1;  // offered to a dark fiber: vanishes without a trace
    return;
  }
  if (drop_next_ > 0) {
    drop_next_ -= 1;
    dropped_ += 1;
    return;
  }
  if (corrupt_next_ > 0) {
    corrupt_next_ -= 1;
    corrupted_ += 1;
    pkt.corrupted = true;  // serializes normally; receiver drops on CRC
  }
  const SimTime now = sim_.now();
  // Flows occupy their fair share; packets serialize at what remains,
  // floored at 5% of line rate so a fully flow-saturated link still makes
  // (slow) forward progress instead of dividing by zero.
  const f64 pkt_bps =
      flow_rate_bps_ > 0.0
          ? std::max(bandwidth_bps_ - flow_rate_bps_, 0.05 * bandwidth_bps_)
          : bandwidth_bps_;
  const u64 ser = serialization_ps(pkt.wire_bytes, pkt_bps);
  const SimTime depart = std::max(now, busy_until_);
  busy_until_ = depart + ser;
  busy_cum_ += ser;
  if (cached_trace_busy_ == nullptr || pkt.trace != cached_trace_) {
    cached_trace_ = pkt.trace;
    cached_trace_busy_ = &busy_by_trace_[pkt.trace];
  }
  *cached_trace_busy_ += ser;
  traffic_.add(pkt.wire_bytes);
  const SimTime arrive = busy_until_ + latency_ps_;
  // Park the packet on the pending queue instead of booking a calendar
  // event per packet: one delivery event (for the queue front) is armed at
  // a time, so a burst costs one event plus cheap deque appends.
  pending_.push_back(Pending{arrive, std::move(pkt)});
  if (!delivery_armed_) {
    delivery_armed_ = true;
    sim_.schedule_at(pending_.front().arrive,
                     [this] { drain_deliveries(); });
  }
}

void Link::drain_deliveries() {
  // Disarm BEFORE delivering: deliver_ may reenter send() on this link,
  // which must be able to arm the next event itself if the queue empties.
  delivery_armed_ = false;
  while (!pending_.empty() && pending_.front().arrive <= sim_.now()) {
    NetPacket p = std::move(pending_.front().pkt);
    pending_.pop_front();
    deliver_(std::move(p));
  }
  if (!pending_.empty() && !delivery_armed_) {
    delivery_armed_ = true;
    sim_.schedule_at(pending_.front().arrive,
                     [this] { drain_deliveries(); });
  }
}

}  // namespace flare::net
