#include "net/link.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace flare::net {

void Link::send(NetPacket&& pkt) {
  FLARE_ASSERT_MSG(deliver_ != nullptr, "link has no receiver");
#if FLARE_VALIDATE_ENABLED
  validate_packet_lifecycle(pkt);
#endif
  if (!up_) {
    dropped_ += 1;  // offered to a dark fiber: vanishes without a trace
    return;
  }
  if (drop_next_ > 0) {
    drop_next_ -= 1;
    dropped_ += 1;
    return;
  }
  if (corrupt_next_ > 0) {
    corrupt_next_ -= 1;
    corrupted_ += 1;
    pkt.corrupted = true;  // serializes normally; receiver drops on CRC
  }
  const SimTime now = sim_.now();
  const u64 ser = serialization_ps(pkt.wire_bytes, bandwidth_bps_);
  const SimTime depart = std::max(now, busy_until_);
  busy_until_ = depart + ser;
  busy_cum_ += ser;
  busy_by_trace_[pkt.trace] += ser;
  traffic_.add(pkt.wire_bytes);
  const SimTime arrive = busy_until_ + latency_ps_;
  sim_.schedule_at(arrive, [this, p = std::move(pkt)]() mutable {
    deliver_(std::move(p));
  });
}

}  // namespace flare::net
