// Deterministic fault injection for the network simulator.
//
// A FaultPlan is an event calendar of fabric disruptions — link flaps,
// switch crash/restarts, silent packet-drop and CRC-corruption bursts —
// either hand-written (targeted tests) or generated from a single seed
// (chaos tests; the same seed always produces the same plan, and the
// simulator's deterministic calendar makes the whole faulty run replayable
// bit for bit).  The FaultInjector arms a plan on a Network's calendar.
//
// Repair pairing: every generated outage carries a matching repair event
// (link back up, switch restarted) within the spec's bounds, so a plan
// never partitions the fabric forever — completion is always possible once
// the recovery machinery (host retransmission, tree reinstall, host-ring
// fallback) does its job.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"

namespace flare::net {

/// One scheduled disruption.  Target space depends on the kind:
///  * kLinkDown / kLinkUp           — duplex link index (both directions);
///  * kSwitchFail / kSwitchRestart  — switch NodeId;
///  * kDropPackets/kCorruptPackets  — unidirectional link index; `count`
///                                    packets affected.
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kLinkDown;
  u32 target = 0;
  u32 count = 1;
};

/// Knobs for seeded random plan generation.
struct FaultPlanSpec {
  u32 link_flaps = 2;        ///< transient duplex outages
  u32 switch_failures = 1;   ///< crash + restart pairs
  u32 drop_bursts = 3;       ///< silent per-link drop windows
  u32 corrupt_bursts = 2;    ///< per-link CRC-corruption windows
  u32 max_burst_packets = 3; ///< packets per drop/corrupt burst
  SimTime horizon_ps = 40 * kPsPerUs;     ///< faults start in [0, horizon)
  SimTime min_outage_ps = 2 * kPsPerUs;   ///< outage duration bounds
  SimTime max_outage_ps = 10 * kPsPerUs;
  bool include_host_links = true;  ///< host access links are fair game
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Seeded deterministic plan over `net`'s links and switches.  Outages
  /// are always paired with repairs (see file comment).
  static FaultPlan random(const Network& net, u64 seed,
                          const FaultPlanSpec& spec = {});

  /// Human-readable schedule, one event per line — logged by the chaos
  /// harness so any failing seed can be replayed and inspected.
  std::string summary(const Network& net) const;
};

/// Schedules a plan's events on the network's calendar and drives the
/// corresponding Link/Switch/Network fault entry points.
class FaultInjector {
 public:
  explicit FaultInjector(Network& net) : net_(net) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event (at absolute times; call before running the
  /// calendar past the plan's horizon).  May be called more than once.
  void arm(const FaultPlan& plan);

  u64 events_armed() const { return events_armed_; }

 private:
  static void apply(Network& net, const FaultEvent& ev);

  Network& net_;
  u64 events_armed_ = 0;
};

}  // namespace flare::net
