#include "net/flow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

namespace flare::net {

FlowManager::FlowManager(Network& net) : net_(net) {
  fault_listener_token_ =
      net_.add_fault_listener([this](const FaultNotice& n) {
        switch (n.kind) {
          case FaultKind::kLinkDown:
          case FaultKind::kLinkUp:
          case FaultKind::kSwitchFail:
          case FaultKind::kSwitchRestart:
            on_fault();
            break;
          case FaultKind::kDropPackets:
          case FaultKind::kCorruptPackets:
            break;  // silent per-packet faults do not change topology
        }
      });
}

FlowManager::~FlowManager() {
  net_.remove_fault_listener(fault_listener_token_);
}

u32 FlowManager::link_index(const Link* link) const {
  if (link_index_.size() != net_.num_links()) {
    link_index_.clear();
    link_index_.reserve(static_cast<std::size_t>(net_.num_links()) * 2);
    for (u32 i = 0; i < net_.num_links(); ++i) {
      link_index_.emplace(&net_.link(i), i);
    }
  }
  const auto it = link_index_.find(link);
  FLARE_ASSERT_MSG(it != link_index_.end(), "link not owned by this network");
  return it->second;
}

std::vector<u32> FlowManager::compute_path(const FlowSpec& spec) const {
  const std::vector<Host*>& hosts = net_.hosts();
  FLARE_ASSERT(spec.src_host < hosts.size() && spec.dst_host < hosts.size());
  FLARE_ASSERT_MSG(spec.src_host != spec.dst_host, "flow to self");
  const NodeId dst_id = hosts[spec.dst_host]->id();
  std::vector<u32> path;
  NodeId cur = hosts[spec.src_host]->id();
  u32 out_port = 0;  // the host NIC
  // Mirror of Switch::forward_host_msg: hash the flow label over the ECMP
  // set, re-hash over the surviving subset when the preferred port is
  // dark.  Same labels -> same links as the packet plane.
  for (u32 hop = 0; hop < 64; ++hop) {
    if (!net_.port_usable(cur, out_port)) return {};
    path.push_back(link_index(&net_.node(cur).port(out_port)));
    NodeId peer = kInvalidNode;
    for (const PortPeer& pp : net_.neighbors(cur)) {
      if (pp.my_port == out_port) {
        peer = pp.peer;
        break;
      }
    }
    FLARE_ASSERT(peer != kInvalidNode);
    if (peer == dst_id) return path;
    auto* sw = dynamic_cast<Switch*>(&net_.node(peer));
    if (sw == nullptr) return {};  // a host that is not the destination
    const std::span<const u32> ecmp = sw->route_ports(dst_id);
    if (ecmp.empty()) return {};
    const u64 label = spec.flow_label ^ sw->ecmp_salt();
    const u32 preferred = ecmp[ecmp_index(label, ecmp.size())];
    if (net_.port_usable(peer, preferred)) {
      out_port = preferred;
    } else {
      std::vector<u32> live;
      live.reserve(ecmp.size());
      for (const u32 p : ecmp) {
        if (p != preferred && net_.port_usable(peer, p)) live.push_back(p);
      }
      if (live.empty()) return {};
      out_port = live[ecmp_index(label, live.size())];
    }
    cur = peer;
  }
  return {};  // hop limit exceeded: treat as unroutable
}

void FlowManager::advance_to(SimTime now) {
  if (now <= last_advance_) return;
  const f64 dt_ps = static_cast<f64>(now - last_advance_);
  last_advance_ = now;
  for (ActiveFlow& f : flows_) {
    if (f.rate_bps <= 0.0 || f.path.empty()) continue;
    f64 bits = f.rate_bps * dt_ps / kPsPerSecond;
    if (bits > f.remaining_bits) bits = f.remaining_bits;
    if (bits <= 0.0) continue;
    f.remaining_bits -= bits;
    const f64 bytes_f = f.byte_carry + bits / 8.0;
    const u64 bytes = static_cast<u64>(bytes_f);
    f.byte_carry = bytes_f - static_cast<f64>(bytes);
    for (std::size_t i = 0; i < f.path.size(); ++i) {
      Link& l = net_.link(f.path[i]);
      // Busy accrual = the serialization time these bits would have cost
      // at line rate; the fractional remainder carries to the next
      // interval so a flow's lifetime busy total is exact to the last ps.
      const f64 busy_f =
          f.busy_carry[i] + bits / l.bandwidth_bps() * kPsPerSecond;
      const u64 busy = static_cast<u64>(busy_f);
      f.busy_carry[i] = busy_f - static_cast<f64>(busy);
      l.add_flow_busy(busy, bytes, f.spec.trace);
    }
  }
}

void FlowManager::recompute() {
  recomputes_ += 1;
  // Links the previous allocation loaded must stop throttling packets
  // before the new allocation is applied.
  for (const u32 li : loaded_links_) net_.link(li).set_flow_rate_bps(0.0);
  loaded_links_.clear();

  std::vector<ActiveFlow*> act;
  act.reserve(flows_.size());
  for (ActiveFlow& f : flows_) {
    if (!f.path.empty()) act.push_back(&f);
  }
  if (act.empty()) return;

  // Deterministic max-min water-filling: links by ascending index, flows
  // by ascending id.  Each round freezes either every cap-limited flow
  // whose cap is below the current global fair share, or every flow
  // crossing a bottleneck link — so the loop terminates in <= |flows|
  // rounds.
  std::vector<u32> links;
  for (const ActiveFlow* f : act) {
    links.insert(links.end(), f->path.begin(), f->path.end());
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  // Dense link-index -> slot scratch, reused across recomputes (grows to
  // num_links once and stays; only touched entries are written).  At 10k
  // hosts recompute runs tens of thousands of times over thousands of
  // concurrent flows — a per-call hash map dominated the whole bench.
  if (slot_of_link_.size() < net_.num_links()) {
    slot_of_link_.resize(net_.num_links(), 0);
  }
  std::vector<u32>& pos = slot_of_link_;
  std::vector<f64> remaining(links.size());
  std::vector<u32> count(links.size(), 0);
  for (u32 i = 0; i < static_cast<u32>(links.size()); ++i) {
    pos[links[i]] = i;
    remaining[i] = net_.link(links[i]).bandwidth_bps();
  }
  for (ActiveFlow* f : act) {
    f->rate_bps = -1.0;  // undecided
    for (const u32 li : f->path) count[pos[li]] += 1;
  }

  std::size_t unfrozen = act.size();
  while (unfrozen > 0) {
    f64 fair = std::numeric_limits<f64>::max();
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (count[i] > 0) {
        fair = std::min(fair, std::max(remaining[i], 0.0) /
                                  static_cast<f64>(count[i]));
      }
    }
    bool froze_cap = false;
    for (ActiveFlow* f : act) {
      if (f->rate_bps >= 0.0) continue;
      if (f->spec.rate_cap_bps > 0.0 && f->spec.rate_cap_bps <= fair) {
        f->rate_bps = f->spec.rate_cap_bps;
        for (const u32 li : f->path) {
          const u32 i = pos[li];
          remaining[i] -= f->rate_bps;
          count[i] -= 1;
        }
        unfrozen -= 1;
        froze_cap = true;
      }
    }
    if (froze_cap) continue;
    const f64 eps = fair * 1e-9;
    bool froze = false;
    for (ActiveFlow* f : act) {
      if (f->rate_bps >= 0.0) continue;
      bool bottlenecked = false;
      for (const u32 li : f->path) {
        const u32 i = pos[li];
        if (count[i] > 0 && std::max(remaining[i], 0.0) /
                                    static_cast<f64>(count[i]) <=
                                fair + eps) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      f->rate_bps = fair;
      for (const u32 li : f->path) {
        const u32 i = pos[li];
        remaining[i] -= fair;
        count[i] -= 1;
      }
      unfrozen -= 1;
      froze = true;
    }
    FLARE_ASSERT_MSG(froze, "max-min water-filling failed to converge");
  }

  // Apply the aggregate rates so the packet plane serializes at the
  // remaining bandwidth.
  std::vector<f64> load(links.size(), 0.0);
  for (const ActiveFlow* f : act) {
    for (const u32 li : f->path) load[pos[li]] += f->rate_bps;
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    Link& l = net_.link(links[i]);
#if FLARE_VALIDATE_ENABLED
    if (load[i] > l.bandwidth_bps() * (1.0 + 1e-6)) {
      validate::fail("flow-share",
                     "link '" + l.name() + "': flow shares sum to " +
                         std::to_string(load[i]) + " bps, above capacity " +
                         std::to_string(l.bandwidth_bps()));
    }
#endif
    l.set_flow_rate_bps(load[i]);
  }
  loaded_links_ = std::move(links);
}

void FlowManager::arm_next() {
  epoch_ += 1;
  const SimTime now = net_.sim().now();
  SimTime best = 0;
  bool have = false;
  for (const ActiveFlow& f : flows_) {
    if (f.path.empty() || f.rate_bps <= 0.0) continue;
    const f64 ps = f.remaining_bits <= 0.0
                       ? 0.0
                       : f.remaining_bits * kPsPerSecond / f.rate_bps;
    const SimTime t = now + static_cast<SimTime>(std::ceil(ps));
    if (!have || t < best) {
      best = t;
      have = true;
    }
  }
  if (!have) return;  // nothing running: no event held on the calendar
  net_.sim().schedule_at(best, [this, e = epoch_] {
    if (e != epoch_) return;  // superseded by a later recompute
    on_timer();
  });
}

void FlowManager::on_timer() {
  advance_to(net_.sim().now());
  std::vector<std::function<void(SimTime)>> callbacks;
  bool finished_any = false;
  std::erase_if(flows_, [&](ActiveFlow& f) {
    // Half a bit of slack absorbs the f64 rounding of the armed finish
    // time; anything that close is delivered.
    if (f.path.empty() || f.remaining_bits > 0.5) return false;
    flows_finished_ += 1;
    finished_any = true;
    if (f.spec.on_complete) callbacks.push_back(std::move(f.spec.on_complete));
    return true;
  });
  if (finished_any) recompute();
  arm_next();
  const SimTime now = net_.sim().now();
  // Completion callbacks run last: they may start new flows, which
  // re-enter recompute()/arm_next() themselves.
  for (auto& cb : callbacks) cb(now);
}

void FlowManager::on_fault() {
  advance_to(net_.sim().now());
  bool changed = false;
  for (ActiveFlow& f : flows_) {
    std::vector<u32> np = compute_path(f.spec);
    if (np != f.path) {
      f.path = std::move(np);
      f.busy_carry.assign(f.path.size(), 0.0);
      f.rate_bps = 0.0;  // stalled until recompute assigns a share
      reroutes_ += 1;
      changed = true;
    }
  }
  if (changed) {
    recompute();
    arm_next();
  }
}

u64 FlowManager::start_flow(FlowSpec spec) {
  advance_to(net_.sim().now());
  ActiveFlow f;
  f.id = next_flow_id_++;
  f.remaining_bits = static_cast<f64>(spec.bytes) * 8.0;
  f.spec = std::move(spec);
  f.path = compute_path(f.spec);
  f.busy_carry.assign(f.path.size(), 0.0);
  const u64 id = f.id;
  flows_.push_back(std::move(f));
  flows_started_ += 1;
  recompute();
  arm_next();
  return id;
}

void FlowManager::start_flow_at(SimTime at, FlowSpec spec) {
  net_.sim().schedule_at(at, [this, s = std::move(spec)]() mutable {
    start_flow(std::move(s));
  });
}

void FlowManager::sync() { advance_to(net_.sim().now()); }

u64 FlowManager::flows_stalled() const {
  u64 n = 0;
  for (const ActiveFlow& f : flows_) {
    if (f.path.empty()) n += 1;
  }
  return n;
}

}  // namespace flare::net
