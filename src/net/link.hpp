// Unidirectional point-to-point link: FIFO serialization at the configured
// bandwidth plus propagation latency, with per-link byte accounting (the
// "Traffic (GiB)" panel of Figure 15 sums these counters).
#pragma once

#include <functional>

#include "common/stats.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace flare::net {

class Link {
 public:
  using Deliver = std::function<void(NetPacket&&)>;

  Link(sim::Simulator& sim, f64 bandwidth_bps, u64 latency_ps,
       std::string name = {})
      : sim_(sim), bandwidth_bps_(bandwidth_bps), latency_ps_(latency_ps),
        name_(std::move(name)) {}

  void set_deliver(Deliver d) { deliver_ = std::move(d); }

  /// Enqueues `pkt` for transmission at the current simulated time.
  void send(NetPacket&& pkt);

  const TrafficCounter& traffic() const { return traffic_; }
  /// Time at which the link finishes serializing everything queued so far.
  SimTime busy_until() const { return busy_until_; }
  f64 bandwidth_bps() const { return bandwidth_bps_; }
  const std::string& name() const { return name_; }
  f64 utilization(SimTime horizon) const {
    if (horizon == 0) return 0.0;
    return static_cast<f64>(busy_cum_) / static_cast<f64>(horizon);
  }

 private:
  sim::Simulator& sim_;
  f64 bandwidth_bps_;
  u64 latency_ps_;
  std::string name_;
  Deliver deliver_;
  SimTime busy_until_ = 0;
  u64 busy_cum_ = 0;
  TrafficCounter traffic_;
};

}  // namespace flare::net
