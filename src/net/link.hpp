// Unidirectional point-to-point link: FIFO serialization at the configured
// bandwidth plus propagation latency, with per-link byte accounting (the
// "Traffic (GiB)" panel of Figure 15 sums these counters).
//
// Fault model (src/net/fault.hpp): a link can be administratively DOWN
// (packets offered while down vanish, as on a dark fiber), and the fault
// injector can mark the next N packets for silent drop or CRC corruption.
// Corrupted packets still serialize and cross the wire; the receiving node
// discards them on the (modelled) frame checksum, so corruption behaves as
// a drop one latency later — exactly what retransmission must recover.
#pragma once

#include <cmath>
#include <deque>
#include <functional>
#include <map>

#include "common/stats.hpp"
#include "common/validate.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace flare::net {

class Link {
 public:
  using Deliver = std::function<void(NetPacket&&)>;

  Link(sim::Simulator& sim, f64 bandwidth_bps, u64 latency_ps,
       std::string name = {})
      : sim_(sim), bandwidth_bps_(bandwidth_bps),
        bandwidth_u64_(static_cast<u64>(std::llround(bandwidth_bps))),
        latency_ps_(latency_ps), name_(std::move(name)) {}

  void set_deliver(Deliver d) { deliver_ = std::move(d); }

  /// Enqueues `pkt` for transmission at the current simulated time.
  void send(NetPacket&& pkt);

  // --- fault plane ---
  /// Administrative state.  Packets offered to a down link are dropped
  /// silently (no serialization, no traffic accounting).
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }
  /// The opposite direction of the same physical cable (set by
  /// Network::connect); a duplex fault takes both down.
  Link* reverse() const { return reverse_; }
  void set_reverse(Link* r) { reverse_ = r; }
  /// Arms the link to silently drop the next `n` packets offered.
  void drop_next(u32 n) { drop_next_ += n; }
  /// Arms the link to corrupt the next `n` packets (delivered with the
  /// corrupted mark; the receiver discards them on the modelled CRC).
  void corrupt_next(u32 n) { corrupt_next_ += n; }
  u64 packets_dropped() const { return dropped_; }
  u64 packets_corrupted() const { return corrupted_; }

  const TrafficCounter& traffic() const { return traffic_; }
  /// Time at which the link finishes serializing everything queued so far.
  SimTime busy_until() const { return busy_until_; }
  f64 bandwidth_bps() const { return bandwidth_bps_; }

  // --- flow plane (net/flow.hpp) ---
  /// Books busy time + bytes accrued by flow-level (non-packet) transfers
  /// into the SAME counters packet serialization feeds: busy_cum_ps, the
  /// per-trace attribution bucket, and the byte counter.  Adding the
  /// identical amount to busy_cum_ and busy_by_trace_[trace] keeps the
  /// conservation invariant exact by construction.
  void add_flow_busy(u64 busy_ps, u64 bytes, u32 trace) {
    busy_cum_ += busy_ps;
    if (cached_trace_busy_ == nullptr || trace != cached_trace_) {
      cached_trace_ = trace;
      cached_trace_busy_ = &busy_by_trace_[trace];
    }
    *cached_trace_busy_ += busy_ps;
    traffic_.bytes += bytes;  // flow bytes carry no per-packet count
  }
  /// Aggregate fair-share rate of the flows currently resident on this
  /// link (set by net::FlowManager at every recompute instant).  While
  /// nonzero, packets serialize at the REMAINING bandwidth — flows and
  /// packets genuinely contend, so packet-level collectives feel the
  /// background load the flows model.
  void set_flow_rate_bps(f64 r) { flow_rate_bps_ = r; }
  f64 flow_rate_bps() const { return flow_rate_bps_; }
  const std::string& name() const { return name_; }
  /// LIFETIME utilization over [0, horizon].  Misleading as a congestion
  /// signal after long idle phases (the historic mean never recovers);
  /// monitors should diff busy_cum_ps() samples and use the windowed form.
  f64 utilization(SimTime horizon) const {
    if (horizon == 0) return 0.0;
    return static_cast<f64>(busy_cum_) / static_cast<f64>(horizon);
  }
  /// Cumulative serialization time committed so far (the busy-window
  /// counter).  Committed at send(): a burst accepted at time t books its
  /// full serialization immediately, even the part extending past t.
  u64 busy_cum_ps() const { return busy_cum_; }
  /// Per-collective attribution: busy picoseconds by NetPacket::trace id
  /// (0 = untagged).  Conservation invariant: the values sum EXACTLY to
  /// busy_cum_ps() — every serialized packet lands in exactly one bucket,
  /// dropped packets in none.  std::map: deterministic iteration order for
  /// the exporters.
  const std::map<u32, u64>& busy_by_trace() const { return busy_by_trace_; }
  /// Busy picoseconds attributed to one trace id (0 when never seen).
  u64 busy_ps_for_trace(u32 trace) const {
    const auto it = busy_by_trace_.find(trace);
    return it == busy_by_trace_.end() ? 0 : it->second;
  }
  /// Utilization over the window [from, to] given two busy_cum_ps()
  /// readings taken at the window edges.  Can exceed 1.0 when the window
  /// accepted more serialization work than wall time — oversubscription,
  /// exactly the congestion signal the lifetime form hides.
  static f64 windowed_utilization(u64 busy_from_ps, u64 busy_to_ps,
                                  SimTime from, SimTime to) {
    if (to <= from) return 0.0;
    return static_cast<f64>(busy_to_ps - busy_from_ps) /
           static_cast<f64>(to - from);
  }
  /// Serialization backlog at `now`: how long a packet offered right now
  /// would wait before its first bit goes on the wire.
  SimTime queue_delay_ps(SimTime now) const {
    return busy_until_ > now ? busy_until_ - now : 0;
  }
  /// Bytes accepted but not yet serialized at `now` (FIFO at a fixed rate,
  /// so the backlog time converts exactly).  Integer arithmetic end to
  /// end: the f64 round trip (delay x bps / 8e12) loses bits once the
  /// product exceeds 2^53 — at 400 Gbps that is any backlog beyond ~180 us
  /// — and misreported backlogs skew the congestion telemetry.
  u64 queued_bytes(SimTime now) const {
    using u128 = unsigned __int128;
    const u128 bits = static_cast<u128>(queue_delay_ps(now)) * bandwidth_u64_;
    return static_cast<u64>(bits / (8 * static_cast<u128>(kPsPerSecond)));
  }

#if FLARE_VALIDATE_ENABLED
  /// FLARE_VALIDATE conservation audit: the attribution buckets must sum
  /// EXACTLY to the busy-time counter — every serialized packet lands in
  /// one bucket, dropped packets in none.  The self-excluding migration
  /// trigger divides by this identity; run on every metrics collect and
  /// monitor sample.
  void validate_attribution() const {
    u64 sum = 0;
    for (const auto& [trace, ps] : busy_by_trace_) sum += ps;
    if (sum != busy_cum_) {
      validate::fail("attribution-conservation",
                     "link '" + name_ + "': busy_by_trace sums to " +
                         std::to_string(sum) + " but busy_cum_ps is " +
                         std::to_string(busy_cum_));
    }
  }
  /// Validator-test backdoor: inflates one attribution bucket WITHOUT
  /// touching busy_cum_ps(), deliberately breaking conservation so
  /// tests/validate_test.cpp can prove the audit fires.
  void debug_skew_attribution(u32 trace, u64 ps) {
    busy_by_trace_[trace] += ps;
  }
#endif

 private:
  /// One accepted packet waiting to cross the wire.
  struct Pending {
    SimTime arrive;
    NetPacket pkt;
  };

  /// Delivers every pending packet whose arrival time has been reached,
  /// then re-arms the single delivery event for the next one.
  void drain_deliveries();

  sim::Simulator& sim_;
  f64 bandwidth_bps_;
  u64 bandwidth_u64_;  ///< rounded once; integer backlog conversion
  u64 latency_ps_;
  std::string name_;
  Deliver deliver_;
  Link* reverse_ = nullptr;
  bool up_ = true;
  u32 drop_next_ = 0;
  u32 corrupt_next_ = 0;
  u64 dropped_ = 0;
  u64 corrupted_ = 0;
  /// In-flight packets in arrival order (send() keeps busy_until_, and so
  /// the arrival times, nondecreasing).  Exactly ONE calendar event is
  /// armed per link — for the front packet — instead of one per packet, so
  /// a burst keeps the calendar shallow and the per-event closure tiny.
  std::deque<Pending> pending_;
  bool delivery_armed_ = false;
  SimTime busy_until_ = 0;
  u64 busy_cum_ = 0;
  std::map<u32, u64> busy_by_trace_;  ///< attribution (sums to busy_cum_)
  /// One-entry cache over busy_by_trace_: packets of one collective arrive
  /// in bursts, so most sends hit the same trace as the previous one and
  /// skip the tree walk.  Map nodes are address-stable and never erased, so
  /// the cached pointer cannot dangle.
  u32 cached_trace_ = 0;
  u64* cached_trace_busy_ = nullptr;
  /// Aggregate fair-share rate of resident flows (0 when the flow plane is
  /// idle — the common case; send() then takes the exact legacy path).
  f64 flow_rate_bps_ = 0.0;
  TrafficCounter traffic_;
};

}  // namespace flare::net
