#include "net/fault.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"

namespace flare::net {

namespace {

SimTime pick_time(Rng& rng, SimTime horizon) {
  return horizon == 0 ? 0 : rng.uniform_u64(horizon);
}

SimTime pick_outage(Rng& rng, const FaultPlanSpec& spec) {
  const SimTime lo = spec.min_outage_ps;
  const SimTime hi = std::max(spec.max_outage_ps, lo + 1);
  return lo + rng.uniform_u64(hi - lo);
}

}  // namespace

FaultPlan FaultPlan::random(const Network& net, u64 seed,
                            const FaultPlanSpec& spec) {
  Rng rng(seed ^ 0xFA017C0DEull);
  FaultPlan plan;

  // Duplex links eligible for flaps: optionally exclude host access links.
  // The topology builders always call connect(host, switch, ...), so the
  // forward direction of a host link is named "h<i>->...".
  std::vector<u32> flap_candidates;
  for (u32 i = 0; i < net.num_duplex_links(); ++i) {
    const std::string& name = net.link(2 * i).name();
    const bool host_link = !name.empty() && name[0] == 'h';
    if (spec.include_host_links || !host_link) flap_candidates.push_back(i);
  }

  for (u32 f = 0; f < spec.link_flaps && !flap_candidates.empty(); ++f) {
    const u32 link = flap_candidates[rng.uniform_u64(flap_candidates.size())];
    const SimTime down = pick_time(rng, spec.horizon_ps);
    const SimTime up = down + pick_outage(rng, spec);
    plan.events.push_back({down, FaultKind::kLinkDown, link, 1});
    plan.events.push_back({up, FaultKind::kLinkUp, link, 1});
  }

  const auto& switches = net.switches();
  for (u32 f = 0; f < spec.switch_failures && !switches.empty(); ++f) {
    const Switch* sw = switches[rng.uniform_u64(switches.size())];
    const SimTime fail = pick_time(rng, spec.horizon_ps);
    const SimTime restart = fail + pick_outage(rng, spec);
    plan.events.push_back({fail, FaultKind::kSwitchFail, sw->id(), 1});
    plan.events.push_back({restart, FaultKind::kSwitchRestart, sw->id(), 1});
  }

  for (u32 b = 0; b < spec.drop_bursts && net.num_links() > 0; ++b) {
    const u32 link = static_cast<u32>(rng.uniform_u64(net.num_links()));
    const u32 n = 1 + static_cast<u32>(
                          rng.uniform_u64(std::max(1u, spec.max_burst_packets)));
    plan.events.push_back(
        {pick_time(rng, spec.horizon_ps), FaultKind::kDropPackets, link, n});
  }
  for (u32 b = 0; b < spec.corrupt_bursts && net.num_links() > 0; ++b) {
    const u32 link = static_cast<u32>(rng.uniform_u64(net.num_links()));
    const u32 n = 1 + static_cast<u32>(
                          rng.uniform_u64(std::max(1u, spec.max_burst_packets)));
    plan.events.push_back({pick_time(rng, spec.horizon_ps),
                           FaultKind::kCorruptPackets, link, n});
  }

  // stable_sort: same-time events keep generation order, so a plan is a
  // pure function of (topology, seed) even across standard libraries.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

std::string FaultPlan::summary(const Network& net) const {
  std::string out;
  char line[160];
  for (const FaultEvent& ev : events) {
    const char* target_name = "?";
    switch (ev.kind) {
      case FaultKind::kSwitchFail:
      case FaultKind::kSwitchRestart:
        target_name = net.node(ev.target).name().c_str();
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        target_name = net.link(2 * ev.target).name().c_str();
        break;
      case FaultKind::kDropPackets:
      case FaultKind::kCorruptPackets:
        target_name = net.link(ev.target).name().c_str();
        break;
    }
    std::snprintf(line, sizeof(line), "%12llu ps  %-15s %s x%u\n",
                  static_cast<unsigned long long>(ev.at),
                  std::string(fault_kind_name(ev.kind)).c_str(), target_name,
                  ev.count);
    out += line;
  }
  return out;
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events) {
    events_armed_ += 1;
    // Capture the Network, not the injector: armed events outlive any
    // scoping of the FaultInjector object itself.
    net_.sim().schedule_at(ev.at, [net = &net_, ev] { apply(*net, ev); });
  }
}

void FaultInjector::apply(Network& net, const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kLinkDown:
      net.set_duplex_up(ev.target, false);
      break;
    case FaultKind::kLinkUp:
      net.set_duplex_up(ev.target, true);
      break;
    case FaultKind::kSwitchFail: {
      Switch* sw = net.find_switch(ev.target);
      FLARE_ASSERT_MSG(sw != nullptr, "fault plan targets a non-switch node");
      sw->fail();
      break;
    }
    case FaultKind::kSwitchRestart: {
      Switch* sw = net.find_switch(ev.target);
      FLARE_ASSERT_MSG(sw != nullptr, "fault plan targets a non-switch node");
      sw->restart();
      break;
    }
    case FaultKind::kDropPackets:
      net.link(ev.target).drop_next(ev.count);
      break;
    case FaultKind::kCorruptPackets:
      net.link(ev.target).corrupt_next(ev.count);
      break;
  }
}

}  // namespace flare::net
