#include "net/network.hpp"

#include <deque>
#include <limits>

#include "net/flow.hpp"
#include "obs/trace.hpp"

namespace flare::net {

Network::Network() = default;   // FlowManager is complete here
Network::~Network() = default;

FlowManager& Network::flows() {
  if (!flows_) flows_ = std::make_unique<FlowManager>(*this);
  return *flows_;
}

void Network::sync_flows() {
  if (flows_) flows_->sync();
}

std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kSwitchFail: return "switch-fail";
    case FaultKind::kSwitchRestart: return "switch-restart";
    case FaultKind::kDropPackets: return "drop-packets";
    case FaultKind::kCorruptPackets: return "corrupt-packets";
  }
  return "?";
}

Host& Network::add_host(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto host = std::make_unique<Host>(*this, id,
                                     static_cast<u32>(hosts_.size()),
                                     std::move(name));
  Host* raw = host.get();
  nodes_.push_back(std::move(host));
  adjacency_.emplace_back();
  host_index_by_node_.push_back(raw->host_index());
  hosts_.push_back(raw);
  return *raw;
}

Switch& Network::add_switch(std::string name, u32 max_allreduces) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto sw = std::make_unique<Switch>(*this, id, std::move(name),
                                     max_allreduces);
  Switch* raw = sw.get();
  nodes_.push_back(std::move(sw));
  adjacency_.emplace_back();
  host_index_by_node_.push_back(UINT32_MAX);
  switches_.push_back(raw);
  return *raw;
}

void Network::connect(Node& a, Node& b, f64 bandwidth_bps, u64 latency_ps) {
  auto ab = std::make_unique<Link>(sim_, bandwidth_bps, latency_ps,
                                   a.name() + "->" + b.name());
  auto ba = std::make_unique<Link>(sim_, bandwidth_bps, latency_ps,
                                   b.name() + "->" + a.name());
  Node* pb = &b;
  Node* pa = &a;
  const u32 b_in = b.num_ports();  // symmetric port numbering on both ends
  const u32 a_in = a.num_ports();
  ab->set_deliver([pb, b_in](NetPacket&& p) { pb->receive(std::move(p), b_in); });
  ba->set_deliver([pa, a_in](NetPacket&& p) { pa->receive(std::move(p), a_in); });
  const u32 a_port = a.add_port(ab.get());
  const u32 b_port = b.add_port(ba.get());
  adjacency_[a.id()].push_back({b.id(), a_port});
  adjacency_[b.id()].push_back({a.id(), b_port});
  ab->set_reverse(ba.get());
  ba->set_reverse(ab.get());
  links_.push_back(std::move(ab));
  links_.push_back(std::move(ba));
}

// --------------------------------------------------------------- faults ---

void Network::set_duplex_up(u32 i, bool up) {
  FLARE_ASSERT(static_cast<std::size_t>(i) * 2 + 1 < links_.size());
  links_[2 * i]->set_up(up);
  links_[2 * i + 1]->set_up(up);
  notify_fault({up ? FaultKind::kLinkUp : FaultKind::kLinkDown,
                kInvalidNode, i, sim_.now()});
}

bool Network::port_usable(NodeId node, u32 port) const {
  const Link* out = nullptr;
  NodeId peer = kInvalidNode;
  for (const PortPeer& pp : adjacency_.at(node)) {
    if (pp.my_port == port) {
      peer = pp.peer;
      break;
    }
  }
  if (peer == kInvalidNode) return false;
  out = &nodes_.at(node)->port(port);
  if (!out->up() || out->reverse() == nullptr || !out->reverse()->up()) {
    return false;
  }
  const Node* pn = nodes_.at(peer).get();
  if (const auto* sw = dynamic_cast<const Switch*>(pn)) {
    return !sw->failed();
  }
  return true;
}

Switch* Network::find_switch(NodeId id) {
  for (Switch* sw : switches_) {
    if (sw->id() == id) return sw;
  }
  return nullptr;
}

u64 Network::add_fault_listener(FaultListener listener) {
  const u64 token = next_listener_token_++;
  fault_listeners_.emplace_back(token, std::move(listener));
  return token;
}

void Network::remove_fault_listener(u64 token) {
  std::erase_if(fault_listeners_,
                [token](const auto& p) { return p.first == token; });
}

void Network::notify_fault(const FaultNotice& notice) {
  faults_notified_ += 1;
  if (tracer_ != nullptr) {
    // Fault instants land on the fabric row (tid 0) so chrome://tracing
    // shows the chaos schedule against every collective's spans.
    tracer_->name_thread(0, "fabric");
    tracer_->instant(0, fault_kind_name(notice.kind), notice.at, "fault");
  }
  // Copy: a listener may (de)register listeners while being notified.
  const auto listeners = fault_listeners_;
  for (const auto& [token, fn] : listeners) fn(notice);
}

u64 Network::link_dropped_packets() const {
  u64 total = 0;
  for (const auto& link : links_) total += link->packets_dropped();
  return total;
}

void Network::build_routes() {
  const u32 n = num_nodes();
  // BFS from every destination; a switch's ECMP set toward dst = all ports
  // whose peer is one hop closer.
  std::vector<std::vector<std::vector<u32>>> table(
      n);  // [switch][dst] -> ports
  for (Switch* sw : switches_) table[sw->id()].resize(n);

  for (NodeId dst = 0; dst < n; ++dst) {
    // BFS over the undirected graph from dst.
    std::vector<u32> dist(n, std::numeric_limits<u32>::max());
    dist[dst] = 0;
    std::deque<NodeId> frontier{dst};
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      for (const PortPeer& pp : adjacency_[cur]) {
        if (dist[pp.peer] == std::numeric_limits<u32>::max()) {
          dist[pp.peer] = dist[cur] + 1;
          frontier.push_back(pp.peer);
        }
      }
    }
    for (Switch* sw : switches_) {
      const NodeId sid = sw->id();
      if (dist[sid] == std::numeric_limits<u32>::max() || sid == dst)
        continue;
      for (const PortPeer& pp : adjacency_[sid]) {
        if (dist[pp.peer] + 1 == dist[sid]) {
          table[sid][dst].push_back(pp.my_port);
        }
      }
    }
  }
  for (Switch* sw : switches_) sw->set_routes(std::move(table[sw->id()]));
}

u64 Network::total_traffic_bytes() const {
  u64 total = 0;
  for (const auto& link : links_) total += link->traffic().bytes;
  return total;
}

u64 Network::total_packets() const {
  u64 total = 0;
  for (const auto& link : links_) total += link->traffic().packets;
  return total;
}

// ------------------------------------------------------------- builders ---

BuiltTopology build_single_switch(Network& net, u32 hosts,
                                  const LinkSpec& link, u32 max_allreduces) {
  BuiltTopology topo;
  Switch& sw = net.add_switch("sw0", max_allreduces);
  topo.leaves.push_back(&sw);
  for (u32 h = 0; h < hosts; ++h) {
    Host& host = net.add_host("h" + std::to_string(h));
    net.connect(host, sw, link.bandwidth_bps, link.latency_ps);
    topo.hosts.push_back(&host);
  }
  net.build_routes();
  return topo;
}

BuiltTopology build_fat_tree(Network& net, const FatTreeSpec& spec) {
  FLARE_ASSERT(spec.radix >= 2 && spec.radix % 2 == 0);
  const u32 down = spec.radix / 2;
  FLARE_ASSERT_MSG(spec.hosts % down == 0,
                   "hosts must fill leaf down-ports evenly");
  const u32 n_leaf = spec.hosts / down;
  FLARE_ASSERT_MSG((n_leaf * down) % spec.radix == 0,
                   "uplinks must fill spine ports evenly");
  const u32 n_spine = n_leaf * down / spec.radix;
  FLARE_ASSERT(n_spine >= 1);

  BuiltTopology topo;
  for (u32 s = 0; s < n_spine; ++s)
    topo.spines.push_back(
        &net.add_switch("spine" + std::to_string(s), spec.max_allreduces));
  for (u32 l = 0; l < n_leaf; ++l)
    topo.leaves.push_back(
        &net.add_switch("leaf" + std::to_string(l), spec.max_allreduces));

  for (u32 l = 0; l < n_leaf; ++l) {
    for (u32 h = 0; h < down; ++h) {
      Host& host = net.add_host("h" + std::to_string(l * down + h));
      net.connect(host, *topo.leaves[l], spec.link.bandwidth_bps,
                  spec.link.latency_ps);
      topo.hosts.push_back(&host);
    }
    // Round-robin wiring (leaf l uplink j -> spine (l + j) mod n_spine)
    // keeps the leaf-spine graph connected for any radix.
    for (u32 j = 0; j < down; ++j) {
      const u32 s = (l + j) % n_spine;
      net.connect(*topo.leaves[l], *topo.spines[s], spec.link.bandwidth_bps,
                  spec.link.latency_ps);
    }
  }
  net.build_routes();
  return topo;
}

BuiltTopology3 build_fat_tree_3level(Network& net, const FatTree3Spec& spec) {
  FLARE_ASSERT(spec.radix >= 4 && spec.radix % 2 == 0);
  const u32 half = spec.radix / 2;
  const u32 pods = spec.pods == 0 ? spec.radix : spec.pods;
  FLARE_ASSERT_MSG(pods >= 1 && pods <= spec.radix,
                   "pods must be 1..radix (core down-ports)");
  const u32 n_core = half * half;

  BuiltTopology3 topo;
  for (u32 c = 0; c < n_core; ++c) {
    topo.cores.push_back(
        &net.add_switch("core" + std::to_string(c), spec.max_allreduces));
  }

  // Port plan (fixed by wiring order, relied on by the route tables):
  //   edge:  0..half-1 hosts, half..radix-1 aggs (port half+j -> agg j)
  //   agg:   0..half-1 edges (port e -> edge e), half..radix-1 cores
  //          (port half+i -> core j*half+i for agg j)
  //   core:  port q -> pod q's agg j (core c touches agg c/half everywhere)
  std::vector<u32> up_ports(half);
  for (u32 j = 0; j < half; ++j) up_ports[j] = half + j;
  std::vector<u32> down_port_pool(half);
  for (u32 e = 0; e < half; ++e) down_port_pool[e] = e;

  for (u32 q = 0; q < pods; ++q) {
    std::vector<Switch*> aggs(half);
    std::vector<Switch*> edges(half);
    for (u32 j = 0; j < half; ++j) {
      aggs[j] = &net.add_switch("p" + std::to_string(q) + "a" +
                                    std::to_string(j),
                                spec.max_allreduces);
    }
    for (u32 e = 0; e < half; ++e) {
      edges[e] = &net.add_switch("p" + std::to_string(q) + "e" +
                                     std::to_string(e),
                                 spec.max_allreduces);
    }
    for (u32 e = 0; e < half; ++e) {
      // Hosts first: edge down-ports 0..half-1, host indices contiguous
      // per edge so the compressed tables key whole edges/pods.
      HostRouteTable et;
      et.group_size = 1;
      et.up_ports = up_ports;
      et.ports = down_port_pool;
      for (u32 h = 0; h < half; ++h) {
        const u32 host_index = (q * half + e) * half + h;
        Host& host = net.add_host("h" + std::to_string(host_index));
        net.connect(host, *edges[e], spec.link.bandwidth_bps,
                    spec.link.latency_ps);
        topo.hosts.push_back(&host);
        et.exceptions.push_back({host_index, h, h + 1});
      }
      for (u32 j = 0; j < half; ++j) {
        net.connect(*edges[e], *aggs[j], spec.link.bandwidth_bps,
                    spec.link.latency_ps);
      }
      edges[e]->set_host_routes(std::move(et));
      topo.edges.push_back(edges[e]);
    }
    for (u32 j = 0; j < half; ++j) {
      HostRouteTable at;
      at.group_size = half;  // one group = one edge's hosts
      at.up_ports = up_ports;
      at.ports = down_port_pool;
      for (u32 e = 0; e < half; ++e) {
        at.exceptions.push_back({q * half + e, e, e + 1});
      }
      for (u32 i = 0; i < half; ++i) {
        net.connect(*aggs[j], *topo.cores[j * half + i],
                    spec.link.bandwidth_bps, spec.link.latency_ps);
      }
      aggs[j]->set_host_routes(std::move(at));
      topo.aggs.push_back(aggs[j]);
    }
  }

  // Cores route down only: group = pod, port = pod (wired in pod order).
  std::vector<u32> pod_ports(pods);
  for (u32 q = 0; q < pods; ++q) pod_ports[q] = q;
  for (Switch* core : topo.cores) {
    HostRouteTable ct;
    ct.group_size = half * half;  // one group = one pod's hosts
    ct.ports = pod_ports;
    for (u32 q = 0; q < pods; ++q) ct.exceptions.push_back({q, q, q + 1});
    core->set_host_routes(std::move(ct));
  }
  // NO build_routes(): the BFS would allocate O(switches x nodes) tables —
  // gigabytes at 10k hosts — which the compressed form exists to avoid.
  return topo;
}

}  // namespace flare::net
