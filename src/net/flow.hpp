// Flow-level (non-packet) link modeling for bulk transfers — the scale
// plane's answer to per-packet cross-traffic cost at 10k hosts.
//
// A Flow is a src->dst host transfer of `bytes` that occupies a
// deterministic bandwidth share on every link of its path instead of
// emitting one calendar event per packet.  Shares come from max-min
// fair-share water-filling, recomputed ONLY at flow start / finish /
// reroute instants; between recompute instants every rate is constant, so
// the whole fluid system is advanced in closed form (advance_to) and the
// calendar carries exactly one pending event — the earliest finish —
// guarded by an epoch counter so stale finish events are no-ops.
//
// The congestion a flow builds is REAL for the packet plane:
//
//   * busy_cum_ps and the per-trace attribution bucket accrue the exact
//     serialization time the flow's bits would have cost
//     (Link::add_flow_busy adds the identical amount to both, so the
//     FLARE_VALIDATE conservation audit holds by construction), which
//     means CongestionMonitor EWMAs — fed by diffing busy_cum_ps — see
//     flow load exactly like packet load (Network::sync_flows() settles
//     accrual before every sample);
//   * each link's aggregate flow rate throttles packet serialization
//     (Link::send serializes at the remaining bandwidth), so packet-level
//     collectives sharing a link with background flows genuinely slow
//     down.
//
// Paths use the SAME deterministic ECMP as packet forwarding
// (Switch::route_ports + ecmp_index on the salted flow label, with the
// identical live-subset re-hash on dark ports), so a given seeded workload
// heats the same links whether it runs in packet or flow mode — the parity
// property
// bench_scale_10k gates on.  Fault notices trigger re-pathing; a flow with
// no usable path stalls at rate zero (it does not hold the calendar open)
// and is re-pathed on the next fault notice.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "net/network.hpp"

namespace flare::net {

struct FlowSpec {
  u32 src_host = 0;      ///< index into Network::hosts()
  u32 dst_host = 0;
  u64 bytes = 0;         ///< wire bytes to transfer
  u64 flow_label = 0;    ///< ECMP hash input (same role as NetPacket::flow)
  u32 trace = 0;         ///< attribution trace id (0 = untagged)
  f64 rate_cap_bps = 0;  ///< application pacing limit; 0 = link-limited
  /// Invoked (synchronously, inside the finish event) when the last bit
  /// is delivered.  Optional.
  std::function<void(SimTime)> on_complete;
};

/// Owns every active flow on one Network (created lazily by
/// Network::flows()).  All mutation happens at event times through a
/// deterministic total order — flows by ascending id, links by ascending
/// index — so runs replay bit for bit.
class FlowManager {
 public:
  explicit FlowManager(Network& net);
  ~FlowManager();
  FlowManager(const FlowManager&) = delete;
  FlowManager& operator=(const FlowManager&) = delete;

  /// Starts a flow at the current simulated time; returns its id.
  u64 start_flow(FlowSpec spec);
  /// Schedules a flow start at absolute time `at` (>= now).  The calendar
  /// event captures this manager: it must outlive the horizon (it does —
  /// the Network owns it).
  void start_flow_at(SimTime at, FlowSpec spec);

  /// Settles fluid accrual up to the current simulated time.  Called by
  /// CongestionMonitor::sample() and the metrics bridge before reading
  /// link counters; idempotent at a fixed time.
  void sync();

  u64 flows_started() const { return flows_started_; }
  u64 flows_finished() const { return flows_finished_; }
  u64 flows_active() const { return flows_.size(); }
  /// Active flows currently without a usable path (rate 0; re-pathed on
  /// the next fault notice).
  u64 flows_stalled() const;
  /// Path changes applied by fault notices (including stalls/revivals).
  u64 reroutes() const { return reroutes_; }
  /// Fair-share recomputation instants so far (the event-count currency
  /// the flow model saves: compare against packets for the same bytes).
  u64 recomputes() const { return recomputes_; }

 private:
  struct ActiveFlow {
    u64 id = 0;
    FlowSpec spec;
    f64 remaining_bits = 0;
    f64 rate_bps = 0;            ///< current fair share (0 while stalled)
    f64 byte_carry = 0;          ///< fractional bytes not yet booked
    std::vector<u32> path;       ///< unidirectional link indices; empty = stalled
    std::vector<f64> busy_carry; ///< fractional busy ps per path link
  };

  void advance_to(SimTime now);
  void recompute();
  void arm_next();
  void on_timer();
  void on_fault();
  std::vector<u32> compute_path(const FlowSpec& spec) const;
  u32 link_index(const Link* link) const;

  Network& net_;
  std::vector<ActiveFlow> flows_;  ///< ascending id (insertion order)
  u64 next_flow_id_ = 1;
  u64 epoch_ = 0;                  ///< cancels stale finish events
  SimTime last_advance_ = 0;
  u64 flows_started_ = 0;
  u64 flows_finished_ = 0;
  u64 reroutes_ = 0;
  u64 recomputes_ = 0;
  u64 fault_listener_token_ = 0;
  /// Link pointer -> unidirectional index (links are stable; rebuilt when
  /// the network grows).  Lookup only — never iterated.
  mutable std::unordered_map<const Link*, u32> link_index_;
  /// Links that carried a nonzero aggregate flow rate after the last
  /// recompute (their Link::flow_rate_bps must be reset when they empty).
  std::vector<u32> loaded_links_;
  /// recompute() scratch: link index -> dense slot for the current
  /// water-filling round.  Member so its capacity persists across the
  /// tens of thousands of recomputes a big run performs.
  std::vector<u32> slot_of_link_;
};

}  // namespace flare::net
