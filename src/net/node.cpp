#include "net/node.hpp"

#include <algorithm>

#include "net/network.hpp"

namespace flare::net {

void Host::receive(NetPacket&& pkt, u32 in_port) {
  (void)in_port;
  if (pkt.corrupted) {
    net_.count_corrupt_drop();  // modelled NIC frame checksum
    return;
  }
  switch (pkt.kind) {
    case PacketKind::kHostMsg: {
      FLARE_ASSERT(pkt.msg != nullptr);
      const auto it = on_proto_.find(pkt.msg->proto);
      if (it != on_proto_.end()) {
        it->second(*pkt.msg);
      } else if (on_msg_) {
        on_msg_(*pkt.msg);
      }
      break;
    }
    case PacketKind::kReduceDown: {
      FLARE_ASSERT(pkt.reduce != nullptr);
      auto it = on_reduce_.find(pkt.reduce->hdr.allreduce_id);
      if (it != on_reduce_.end()) it->second(*pkt.reduce);
      break;
    }
    case PacketKind::kReduceUp:
      FLARE_UNREACHABLE("host received up-bound reduction traffic");
  }
}

// ---------------------------------------------------------------------------

namespace {
core::CostModel make_zero_costs() {
  // Functional aggregation is free inside the network simulator: timing is
  // owned by the calibrated per-switch server (the paper's SST methodology).
  core::CostModel c;
  c.cycles_per_elem_f32 = 0;
  c.cycles_per_elem_f16 = 0;
  c.cycles_per_elem_i8 = 0;
  c.cycles_per_elem_i16 = 0;
  c.cycles_per_elem_i32 = 0;
  c.cycles_per_elem_i64 = 0;
  c.dma_packet_cycles = 0;
  c.handler_dispatch_cycles = 0;
  c.emit_packet_cycles = 0;
  c.cold_start_cycles = 0;
  c.hash_insert_cycles_per_pair = 0;
  c.array_insert_cycles_per_pair = 0;
  c.spill_append_cycles_per_pair = 0;
  c.scan_cycles_per_slot = 0;
  c.emit_cycles_per_pair = 0;
  return c;
}
}  // namespace

Switch::Switch(Network& net, NodeId id, std::string name, u32 max_allreduces)
    : Node(net, id, std::move(name)), max_allreduces_(max_allreduces),
      zero_costs_(make_zero_costs()) {}

Switch::~Switch() = default;

sim::Simulator& Switch::simulator() { return net_.sim(); }

void Switch::fail() {
  if (failed_) return;
  failed_ = true;
  // Crash-stop: installed engines, cached results and queued service work
  // vanish.  Occupancy drops to zero — the partition is empty again.
  invalidate_role_cache();
  roles_.clear();
  occupancy_.set(0, net_.sim().now());
  net_.notify_fault({FaultKind::kSwitchFail, id_, UINT32_MAX,
                     net_.sim().now()});
}

void Switch::restart() {
  if (!failed_) return;
  failed_ = false;
  net_.notify_fault({FaultKind::kSwitchRestart, id_, UINT32_MAX,
                     net_.sim().now()});
}

bool Switch::install_reduce(const core::AllreduceConfig& cfg,
                            ReduceRole&& role) {
  if (!can_install()) return false;
  role.engine = std::make_unique<core::AllreduceEngine>(*this, cfg);
  auto [it, inserted] = roles_.try_emplace(cfg.id, std::move(role));
  FLARE_ASSERT_MSG(inserted, "allreduce id already installed on switch");
  occupancy_.set(roles_.size(), net_.sim().now());
#if FLARE_VALIDATE_ENABLED
  validate_occupancy();
#endif
  return true;
}

void Switch::uninstall_reduce(u32 allreduce_id) {
  invalidate_role_cache();
  if (roles_.erase(allreduce_id) != 0) {
    occupancy_.set(roles_.size(), net_.sim().now());
  }
#if FLARE_VALIDATE_ENABLED
  validate_occupancy();
#endif
}

bool Switch::reset_reduce(u32 allreduce_id) {
  auto it = roles_.find(allreduce_id);
  if (it == roles_.end()) return false;
  it->second.engine->reset();
  it->second.completed.clear();
  it->second.completed_sparse.clear();
#if FLARE_VALIDATE_ENABLED
  // A persistent reset must return every acquired hash/array-store byte:
  // anything still out after engine->reset() is the sparse leak class
  // the chaos tests can only sample — here it is checked on EVERY reset.
  if (const u64 in_use = it->second.engine->pool().in_use(); in_use != 0) {
    validate::fail("engine-pool-leak",
                   "switch '" + name_ + "': engine for allreduce " +
                       std::to_string(allreduce_id) + " still holds " +
                       std::to_string(in_use) + " pool bytes after reset");
  }
#endif
  return true;
}

#if FLARE_VALIDATE_ENABLED
void Switch::debug_leak_occupancy() {
  occupancy_.add(1, net_.sim().now());
}
#endif

const ReduceRole* Switch::role(u32 allreduce_id) const {
  auto it = roles_.find(allreduce_id);
  return it == roles_.end() ? nullptr : &it->second;
}

const core::EngineStats* Switch::engine_stats(u32 allreduce_id) const {
  const ReduceRole* r = role(allreduce_id);
  return r == nullptr ? nullptr : &r->engine->stats();
}

void Switch::receive(NetPacket&& pkt, u32 in_port) {
  (void)in_port;
  if (failed_) {
    net_.count_failed_switch_drop();
    return;
  }
  if (pkt.corrupted) {
    net_.count_corrupt_drop();  // per-hop frame checksum
    return;
  }
  switch (pkt.kind) {
    case PacketKind::kHostMsg:
      forward_host_msg(std::move(pkt));
      break;
    case PacketKind::kReduceUp:
      on_reduce_up(std::move(pkt));
      break;
    case PacketKind::kReduceDown:
      on_reduce_down(std::move(pkt));
      break;
  }
}

std::span<const u32> Switch::route_ports(NodeId dst) const {
  if (!use_host_routes_) {
    FLARE_ASSERT(dst < routes_.size());
    const std::vector<u32>& v = routes_[dst];
    return {v.data(), v.size()};
  }
  const u32 host = net_.host_index_of(dst);
  if (host != UINT32_MAX) {
    const u32 group = host / host_routes_.group_size;
    const auto it = std::lower_bound(
        host_routes_.exceptions.begin(), host_routes_.exceptions.end(), group,
        [](const HostRouteTable::Exception& e, u32 g) { return e.group < g; });
    if (it != host_routes_.exceptions.end() && it->group == group) {
      return {host_routes_.ports.data() + it->begin,
              static_cast<std::size_t>(it->end - it->begin)};
    }
  }
  return {host_routes_.up_ports.data(), host_routes_.up_ports.size()};
}

void Switch::forward_host_msg(NetPacket&& pkt) {
  const std::span<const u32> ecmp = route_ports(pkt.dst_node);
  FLARE_ASSERT_MSG(!ecmp.empty(), "no route to destination");
  // Deterministic ECMP: hash the flow id over the equal-cost set.  On a
  // healthy fabric the hashed port wins directly (no allocation, one
  // usability probe, and the pre-fault-plane port selection exactly).
  const u64 label = pkt.flow ^ ecmp_salt();
  const u32 preferred = ecmp[ecmp_index(label, ecmp.size())];
  if (net_.port_usable(id_, preferred)) {
    port(preferred).send(std::move(pkt));
    return;
  }
  // Fast failover: the hashed port is dark — re-hash over the surviving
  // subset.  If the whole set is dark the packet is lost and the sender's
  // retransmission machinery must recover it.
  std::vector<u32> live;
  live.reserve(ecmp.size());
  for (const u32 p : ecmp) {
    if (p != preferred && net_.port_usable(id_, p)) live.push_back(p);
  }
  if (live.empty()) {
    net_.count_unroutable_drop();
    return;
  }
  const u32 out = live[ecmp_index(label, live.size())];
  port(out).send(std::move(pkt));
}

void Switch::on_reduce_up(NetPacket&& pkt) {
  ReduceRole* found = find_role(pkt.allreduce_id);
  if (found == nullptr) {
    // Reduction traffic for a collective this switch no longer serves:
    // state lost to a crash, or uninstalled by a recovery that moved the
    // tree.  Realistic switches drop such packets on the floor.
    net_.count_stale_reduce_drop();
    return;
  }
  ReduceRole& role2 = *found;
  reduce_packets_ += 1;
  // Calibrated aggregation server: FIFO service at the PsPIN-derived rate.
  const SimTime now = net_.sim().now();
  const u64 service =
      serialization_ps(pkt.wire_bytes, role2.service_bps);
  const SimTime start = std::max(now, role2.server_busy_until);
  role2.server_busy_until = start + service;
  if ((pkt.reduce->hdr.flags & core::kFlagRetransmit) != 0) {
    const u32 blk = pkt.reduce->hdr.block_id;
    if (role2.completed.contains(blk)) {
      // Retransmission for a block this switch already finished: the loss
      // was downstream of aggregation (our up-aggregate or the down-
      // multicast).  Re-emit the cached result instead of feeding the
      // engine, which would just drop the packet as a duplicate.
      net_.sim().schedule_at(role2.server_busy_until,
                             [this, id = pkt.allreduce_id, blk] {
                               reemit_completed(id, blk);
                             });
      return;
    }
    // Sparse analogue: the block's whole emission sequence (shards +
    // spills) is cached; it is re-emittable once the last-shard marker
    // went out.  Only the retransmitted LAST shard triggers the replay —
    // a host re-sends the whole block per timeout, so one replay per
    // round per tree level keeps recovery traffic linear (replaying on
    // EVERY arriving shard would multiply sequence-length-fold at each
    // level).  Other duplicate shards, and any shard of a block still
    // incomplete here, fall through to the engine, whose shard trackers
    // absorb them and aggregate only what was lost.
    if (pkt.reduce->is_last_shard()) {
      const auto sit = role2.completed_sparse.find(blk);
      if (sit != role2.completed_sparse.end() && !sit->second.empty() &&
          sit->second.back()->is_last_shard()) {
        net_.sim().schedule_at(role2.server_busy_until,
                               [this, id = pkt.allreduce_id, blk] {
                                 reemit_completed_sparse(id, blk);
                               });
        return;
      }
    }
  }
  net_.sim().schedule_at(
      role2.server_busy_until,
      [this, id = pkt.allreduce_id, reduce = std::move(pkt.reduce)] {
        // The role can vanish while the packet sits in the service queue
        // (switch crash or recovery uninstall): drop, never re-create.
        ReduceRole* r = find_role(id);
        if (r == nullptr) {
          net_.count_stale_reduce_drop();
          return;
        }
        r->engine->process(reduce, [](SimTime) {});
      });
}

void Switch::reemit_completed(u32 allreduce_id, u32 block_id) {
  auto it = roles_.find(allreduce_id);
  if (it == roles_.end()) return;  // uninstalled/crashed while queued
  ReduceRole& role2 = it->second;
  auto cit = role2.completed.find(block_id);
  if (cit == role2.completed.end()) return;
  core::Packet copy = *cit->second;
  copy.hdr.flags |= core::kFlagRetransmit;  // keep the cache path upstream
  NetPacket np;
  np.allreduce_id = allreduce_id;
  np.trace = role2.engine->config().trace;
  np.wire_bytes = copy.wire_bytes();
  if (role2.is_root || copy.is_down()) {
    np.kind = PacketKind::kReduceDown;
    np.reduce = core::make_pooled_packet(std::move(copy));
    on_reduce_down(std::move(np));
  } else {
    np.kind = PacketKind::kReduceUp;
    np.reduce = core::make_pooled_packet(std::move(copy));
    port(role2.parent_port).send(std::move(np));
  }
}

void Switch::reemit_completed_sparse(u32 allreduce_id, u32 block_id) {
  auto it = roles_.find(allreduce_id);
  if (it == roles_.end()) return;  // uninstalled/crashed while queued
  ReduceRole& role2 = it->second;
  const auto cit = role2.completed_sparse.find(block_id);
  if (cit == role2.completed_sparse.end()) return;
  // Replay the whole emission sequence in order; receivers deduplicate by
  // (child, shard_seq) — host-side via the down ShardTrackers — so only
  // what was actually lost takes effect.
  for (const std::shared_ptr<const core::Packet>& cached : cit->second) {
    core::Packet copy = *cached;
    copy.hdr.flags |= core::kFlagRetransmit;  // keep the cache path upstream
    NetPacket np;
    np.allreduce_id = allreduce_id;
    np.trace = role2.engine->config().trace;
    np.wire_bytes = copy.wire_bytes();
    if (role2.is_root || copy.is_down()) {
      np.kind = PacketKind::kReduceDown;
      np.reduce = core::make_pooled_packet(std::move(copy));
      on_reduce_down(std::move(np));
    } else {
      np.kind = PacketKind::kReduceUp;
      np.reduce = core::make_pooled_packet(std::move(copy));
      port(role2.parent_port).send(std::move(np));
    }
  }
}

void Switch::on_reduce_down(NetPacket&& pkt) {
  const ReduceRole* found = find_role(pkt.allreduce_id);
  if (found == nullptr) {
    net_.count_stale_reduce_drop();
    return;
  }
  // Replicate toward every tree child (hosts or further switches).
  const ReduceRole& role2 = *found;
  for (const u32 p : role2.child_ports) {
    NetPacket copy = pkt;
    port(p).send(std::move(copy));
  }
}

void Switch::emit(core::Packet&& pkt, SimTime when) {
  const u32 id = pkt.hdr.allreduce_id;
  const u32 block = pkt.hdr.block_id;
  // Dense results are one packet per block: cache them for retransmission
  // re-emit.  A sparse block's output spans several shard/spill packets, so
  // the sparse cache records the whole emission sequence in order (valid
  // for re-emit once its last-shard marker lands — see on_reduce_up); it
  // is kept only when fault recovery is armed, since nothing can request
  // a replay otherwise and large sparse iterations would pay the memory
  // for nothing.
  ReduceRole* found = find_role(id);
  FLARE_ASSERT_MSG(found != nullptr, "emit for an uninstalled allreduce");
  ReduceRole& role2 = *found;
  const bool sparse = pkt.is_sparse();
  const bool cache_sparse =
      sparse && role2.engine->config().fault_recovery;
  NetPacket np;
  np.allreduce_id = id;
  np.trace = role2.engine->config().trace;
  np.wire_bytes = pkt.wire_bytes();
  if (role2.is_root || pkt.is_down()) {
    np.kind = PacketKind::kReduceDown;
    np.reduce = core::make_pooled_packet(std::move(pkt));
    if (cache_sparse) {
      role2.completed_sparse[block].push_back(np.reduce);
    } else if (!sparse) {
      role2.completed[block] = np.reduce;
    }
    net_.sim().schedule_at(when, [this, np = std::move(np)]() mutable {
      if (failed_) return;
      on_reduce_down(std::move(np));
    });
  } else {
    np.kind = PacketKind::kReduceUp;
    pkt.hdr.child_index = role2.child_index_at_parent;
    np.reduce = core::make_pooled_packet(std::move(pkt));
    if (cache_sparse) {
      role2.completed_sparse[block].push_back(np.reduce);
    } else if (!sparse) {
      role2.completed[block] = np.reduce;
    }
    const u32 out = role2.parent_port;
    net_.sim().schedule_at(when, [this, out, np = std::move(np)]() mutable {
      if (failed_) return;
      port(out).send(std::move(np));
    });
  }
}

}  // namespace flare::net
