#include "net/node.hpp"

#include <algorithm>

#include "net/network.hpp"

namespace flare::net {

void Host::receive(NetPacket&& pkt, u32 in_port) {
  (void)in_port;
  switch (pkt.kind) {
    case PacketKind::kHostMsg: {
      FLARE_ASSERT(pkt.msg != nullptr);
      const auto it = on_proto_.find(pkt.msg->proto);
      if (it != on_proto_.end()) {
        it->second(*pkt.msg);
      } else if (on_msg_) {
        on_msg_(*pkt.msg);
      }
      break;
    }
    case PacketKind::kReduceDown: {
      FLARE_ASSERT(pkt.reduce != nullptr);
      auto it = on_reduce_.find(pkt.reduce->hdr.allreduce_id);
      if (it != on_reduce_.end()) it->second(*pkt.reduce);
      break;
    }
    case PacketKind::kReduceUp:
      FLARE_UNREACHABLE("host received up-bound reduction traffic");
  }
}

// ---------------------------------------------------------------------------

namespace {
core::CostModel make_zero_costs() {
  // Functional aggregation is free inside the network simulator: timing is
  // owned by the calibrated per-switch server (the paper's SST methodology).
  core::CostModel c;
  c.cycles_per_elem_f32 = 0;
  c.cycles_per_elem_f16 = 0;
  c.cycles_per_elem_i8 = 0;
  c.cycles_per_elem_i16 = 0;
  c.cycles_per_elem_i32 = 0;
  c.cycles_per_elem_i64 = 0;
  c.dma_packet_cycles = 0;
  c.handler_dispatch_cycles = 0;
  c.emit_packet_cycles = 0;
  c.cold_start_cycles = 0;
  c.hash_insert_cycles_per_pair = 0;
  c.array_insert_cycles_per_pair = 0;
  c.spill_append_cycles_per_pair = 0;
  c.scan_cycles_per_slot = 0;
  c.emit_cycles_per_pair = 0;
  return c;
}
}  // namespace

Switch::Switch(Network& net, NodeId id, std::string name, u32 max_allreduces)
    : Node(net, id, std::move(name)), max_allreduces_(max_allreduces),
      zero_costs_(make_zero_costs()) {}

Switch::~Switch() = default;

sim::Simulator& Switch::simulator() { return net_.sim(); }

bool Switch::install_reduce(const core::AllreduceConfig& cfg,
                            ReduceRole&& role) {
  if (!can_install()) return false;
  role.engine = std::make_unique<core::AllreduceEngine>(*this, cfg);
  auto [it, inserted] = roles_.try_emplace(cfg.id, std::move(role));
  FLARE_ASSERT_MSG(inserted, "allreduce id already installed on switch");
  occupancy_.set(roles_.size(), net_.sim().now());
  return true;
}

void Switch::uninstall_reduce(u32 allreduce_id) {
  if (roles_.erase(allreduce_id) != 0) {
    occupancy_.set(roles_.size(), net_.sim().now());
  }
}

bool Switch::reset_reduce(u32 allreduce_id) {
  auto it = roles_.find(allreduce_id);
  if (it == roles_.end()) return false;
  it->second.engine->reset();
  return true;
}

const ReduceRole* Switch::role(u32 allreduce_id) const {
  auto it = roles_.find(allreduce_id);
  return it == roles_.end() ? nullptr : &it->second;
}

const core::EngineStats* Switch::engine_stats(u32 allreduce_id) const {
  const ReduceRole* r = role(allreduce_id);
  return r == nullptr ? nullptr : &r->engine->stats();
}

void Switch::receive(NetPacket&& pkt, u32 in_port) {
  (void)in_port;
  switch (pkt.kind) {
    case PacketKind::kHostMsg:
      forward_host_msg(std::move(pkt));
      break;
    case PacketKind::kReduceUp:
      on_reduce_up(std::move(pkt));
      break;
    case PacketKind::kReduceDown:
      on_reduce_down(std::move(pkt));
      break;
  }
}

void Switch::forward_host_msg(NetPacket&& pkt) {
  FLARE_ASSERT(pkt.dst_node < routes_.size());
  const std::vector<u32>& ecmp = routes_[pkt.dst_node];
  FLARE_ASSERT_MSG(!ecmp.empty(), "no route to destination");
  // Deterministic ECMP: hash the flow id over the equal-cost set.
  u64 h = pkt.flow * 0x9E3779B97F4A7C15ull;
  const u32 out = ecmp[(h >> 32) % ecmp.size()];
  port(out).send(std::move(pkt));
}

void Switch::on_reduce_up(NetPacket&& pkt) {
  auto it = roles_.find(pkt.allreduce_id);
  FLARE_ASSERT_MSG(it != roles_.end(),
                   "reduction packet at a switch outside the tree");
  ReduceRole& role2 = it->second;
  reduce_packets_ += 1;
  // Calibrated aggregation server: FIFO service at the PsPIN-derived rate.
  const SimTime now = net_.sim().now();
  const u64 service =
      serialization_ps(pkt.wire_bytes, role2.service_bps);
  const SimTime start = std::max(now, role2.server_busy_until);
  role2.server_busy_until = start + service;
  net_.sim().schedule_at(
      role2.server_busy_until,
      [this, id = pkt.allreduce_id, reduce = pkt.reduce] {
        roles_.at(id).engine->process(reduce, [](SimTime) {});
      });
}

void Switch::on_reduce_down(NetPacket&& pkt) {
  auto it = roles_.find(pkt.allreduce_id);
  FLARE_ASSERT_MSG(it != roles_.end(),
                   "down-bound reduction packet at a switch outside the tree");
  // Replicate toward every tree child (hosts or further switches).
  const ReduceRole& role2 = it->second;
  for (const u32 p : role2.child_ports) {
    NetPacket copy = pkt;
    port(p).send(std::move(copy));
  }
}

void Switch::emit(core::Packet&& pkt, SimTime when) {
  const u32 id = pkt.hdr.allreduce_id;
  ReduceRole& role2 = roles_.at(id);
  NetPacket np;
  np.allreduce_id = id;
  np.wire_bytes = pkt.wire_bytes();
  if (role2.is_root || pkt.is_down()) {
    np.kind = PacketKind::kReduceDown;
    np.reduce = std::make_shared<const core::Packet>(std::move(pkt));
    net_.sim().schedule_at(when, [this, np = std::move(np)]() mutable {
      on_reduce_down(std::move(np));
    });
  } else {
    np.kind = PacketKind::kReduceUp;
    pkt.hdr.child_index = role2.child_index_at_parent;
    np.reduce = std::make_shared<const core::Packet>(std::move(pkt));
    const u32 out = role2.parent_port;
    net_.sim().schedule_at(when, [this, out, np = std::move(np)]() mutable {
      port(out).send(std::move(np));
    });
  }
}

}  // namespace flare::net
