// The network simulator container: owns the event calendar (picoseconds),
// nodes and links; computes shortest-path ECMP routes; and provides the two
// topology builders the paper's evaluation uses — a single switch (Sections
// 6.4/7.1 microbenchmarks) and the 2-level fat tree of 8-port 100 Gbps
// switches connecting 64 nodes (Figure 15).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "net/node.hpp"

namespace flare::obs {
class Tracer;
}  // namespace flare::obs

namespace flare::net {

class FlowManager;

struct PortPeer {
  NodeId peer = kInvalidNode;
  u32 my_port = 0;
};

// ---------------------------------------------------------------- faults ---

/// Topology-level fault classes the fabric can notify about.  Packet drops
/// and corruptions are deliberately NOT notified: they are silent data loss
/// that only the host-side timeout machinery can observe — exactly the
/// distinction between fail-stop and fail-silent faults.
enum class FaultKind : u8 {
  kLinkDown = 0,
  kLinkUp,
  kSwitchFail,     ///< crash-stop: installed reduce state is LOST
  kSwitchRestart,  ///< comes back with empty reduce tables
  kDropPackets,    ///< silent: next N packets on a link vanish
  kCorruptPackets, ///< silent: next N packets fail CRC at the receiver
};

std::string_view fault_kind_name(FaultKind k);

/// One failure notification from the fabric's control plane.
struct FaultNotice {
  FaultKind kind = FaultKind::kLinkDown;
  NodeId node = kInvalidNode;    ///< for switch faults
  u32 duplex_link = UINT32_MAX;  ///< for link faults (duplex index)
  SimTime at = 0;
};

using FaultListener = std::function<void(const FaultNotice&)>;

class Network {
 public:
  // Both out of line: FlowManager is incomplete here, and the
  // unique_ptr<FlowManager> member needs it complete wherever its deleter
  // is instantiated (destructor AND constructor unwind paths).
  Network();
  ~Network();

  sim::Simulator& sim() { return sim_; }

  Host& add_host(std::string name);
  Switch& add_switch(std::string name, u32 max_allreduces = 8);

  /// Creates a full-duplex link (two unidirectional Links) between a and b.
  void connect(Node& a, Node& b, f64 bandwidth_bps, u64 latency_ps);

  /// Computes shortest-path ECMP routing tables for every switch.
  void build_routes();

  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  const std::vector<PortPeer>& neighbors(NodeId id) const {
    return adjacency_.at(id);
  }
  u32 num_nodes() const { return static_cast<u32>(nodes_.size()); }
  const std::vector<Host*>& hosts() const { return hosts_; }
  const std::vector<Switch*>& switches() const { return switches_; }
  /// Host index (into hosts()) of node `id`; UINT32_MAX for switches.
  /// The compressed host-route tables key on this (see Switch).
  u32 host_index_of(NodeId id) const {
    return id < host_index_by_node_.size() ? host_index_by_node_[id]
                                           : UINT32_MAX;
  }

  // --- flow plane (net/flow.hpp) ---
  /// The fluid bulk-transfer plane, created lazily on first use — packet-
  /// only simulations never pay for it.
  FlowManager& flows();
  bool has_flows() const { return flows_ != nullptr; }
  /// Settles flow accrual up to now(); no-op when no flows were ever
  /// started.  Telemetry and metrics exporters call this before reading
  /// link counters so EWMAs see flow load exactly like packet load.
  void sync_flows();

  /// Total bytes serialized over all links (both directions).
  u64 total_traffic_bytes() const;
  u64 total_packets() const;

  /// Network-wide collective-id allocator: every control plane sharing this
  /// fabric (NetworkManagers, Communicators, the service layer) draws from
  /// one counter, so concurrent sessions can never install colliding
  /// allreduce ids on a shared switch.
  u32 alloc_collective_id() { return next_collective_id_++; }

  /// Attribution trace-id allocator, deliberately SEPARATE from the
  /// collective-id counter: trace ids stay stable across fresh-id
  /// reinstalls/migrations (the session keeps one trace for its lifetime),
  /// and keeping the counters apart leaves existing id/ECMP sequences —
  /// and every deterministic test built on them — unperturbed.  0 is
  /// reserved for untagged traffic.
  u32 alloc_trace_id() { return next_trace_id_++; }

  // --- observability -----------------------------------------------------
  /// Optional span/instant sink.  When set, the fabric emits instant events
  /// for fault notifications (tid 0 = the fabric row); collective and
  /// service layers pull the same tracer through here.  Not owned.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  // --- fault plane -------------------------------------------------------
  /// Unidirectional link count / access (two per connect() call).
  u32 num_links() const { return static_cast<u32>(links_.size()); }
  Link& link(u32 i) { return *links_.at(i); }
  const Link& link(u32 i) const { return *links_.at(i); }
  /// Full-duplex link count (connect() calls); duplex index i maps to the
  /// unidirectional pair (2i, 2i+1).
  u32 num_duplex_links() const { return static_cast<u32>(links_.size() / 2); }
  /// Takes both directions of duplex link `i` down/up and notifies.
  void set_duplex_up(u32 i, bool up);
  /// True when the duplex link behind `port` of `node` is up in both
  /// directions AND the peer is not a failed switch — i.e. the port can
  /// carry traffic right now.
  bool port_usable(NodeId node, u32 port) const;
  Switch* find_switch(NodeId id);

  /// Registers a failure observer; returns a token for removal.  Listeners
  /// run synchronously inside the notifying event — heavy reactions should
  /// reschedule themselves.
  u64 add_fault_listener(FaultListener listener);
  void remove_fault_listener(u64 token);
  void notify_fault(const FaultNotice& notice);

#if FLARE_VALIDATE_ENABLED
  /// FLARE_VALIDATE fabric-wide audit: attribution conservation on every
  /// link plus occupancy consistency on every switch.  The collective and
  /// service layers run this at op release / job completion; tests may
  /// call it at any quiescent point.
  void validate_audit() const {
    for (const auto& link : links_) link->validate_attribution();
    for (const Switch* sw : switches_) sw->validate_occupancy();
  }
#endif

  // --- fault accounting --------------------------------------------------
  void count_corrupt_drop() { corrupt_dropped_ += 1; }
  void count_stale_reduce_drop() { stale_reduce_dropped_ += 1; }
  void count_failed_switch_drop() { failed_switch_dropped_ += 1; }
  void count_unroutable_drop() { unroutable_dropped_ += 1; }
  /// Packets silently lost on links (down links + armed drops).
  u64 link_dropped_packets() const;
  u64 corrupt_dropped_packets() const { return corrupt_dropped_; }
  u64 stale_reduce_dropped_packets() const { return stale_reduce_dropped_; }
  u64 failed_switch_dropped_packets() const { return failed_switch_dropped_; }
  u64 unroutable_dropped_packets() const { return unroutable_dropped_; }
  u64 faults_notified() const { return faults_notified_; }

 private:
  sim::Simulator sim_;
  u32 next_collective_id_ = 1;
  u32 next_trace_id_ = 1;
  obs::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::vector<PortPeer>> adjacency_;
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
  std::vector<u32> host_index_by_node_;  ///< UINT32_MAX for switches
  std::unique_ptr<FlowManager> flows_;
  std::vector<std::pair<u64, FaultListener>> fault_listeners_;
  u64 next_listener_token_ = 1;
  u64 faults_notified_ = 0;
  u64 corrupt_dropped_ = 0;
  u64 stale_reduce_dropped_ = 0;
  u64 failed_switch_dropped_ = 0;
  u64 unroutable_dropped_ = 0;
};

// ------------------------------------------------------------- builders ---

struct LinkSpec {
  f64 bandwidth_bps = 100e9;  ///< 100 Gbps, the paper's Figure 15 links
  u64 latency_ps = 500 * kPsPerNs;
};

struct BuiltTopology {
  std::vector<Host*> hosts;
  std::vector<Switch*> leaves;
  std::vector<Switch*> spines;  ///< empty for the single-switch topology
};

/// `hosts` hosts attached to one switch.
BuiltTopology build_single_switch(Network& net, u32 hosts,
                                  const LinkSpec& link = {},
                                  u32 max_allreduces = 8);

struct FatTreeSpec {
  u32 hosts = 64;
  u32 radix = 8;  ///< ports per switch; radix/2 down + radix/2 up at leaves
  LinkSpec link{};
  u32 max_allreduces = 8;
};

/// 2-level fat tree: hosts/(radix/2) leaves, each with radix/2 uplinks
/// wired round-robin to hosts/radix spines (full bisection).
BuiltTopology build_fat_tree(Network& net, const FatTreeSpec& spec);

/// 3-level (core/agg/edge) fat tree of `radix`-port switches — the 10k-host
/// scale topology.  `pods` pods (default radix, the full k-ary tree), each
/// with radix/2 edge and radix/2 agg switches; (radix/2)^2 cores; hosts =
/// pods * (radix/2)^2.  radix=40, pods=26 gives 10400 hosts from 1440
/// switches.
struct FatTree3Spec {
  u32 radix = 8;  ///< even; ports per switch
  u32 pods = 0;   ///< 0 = radix (the full fat tree); else 1..radix
  LinkSpec link{};
  u32 max_allreduces = 8;
};

struct BuiltTopology3 {
  std::vector<Host*> hosts;
  std::vector<Switch*> edges;
  std::vector<Switch*> aggs;
  std::vector<Switch*> cores;
};

/// Builds the 3-level tree with COMPRESSED routing tables installed
/// directly (Switch::set_host_routes): no BFS, and per-switch route state
/// is a default up-port ECMP set plus per-subtree exceptions instead of an
/// O(nodes) table — the difference between megabytes and gigabytes at 10k
/// hosts.  Multi-stage deterministic ECMP: the flow label hashes a port
/// independently at the edge and agg stage.
BuiltTopology3 build_fat_tree_3level(Network& net, const FatTree3Spec& spec);

}  // namespace flare::net
