// The network simulator container: owns the event calendar (picoseconds),
// nodes and links; computes shortest-path ECMP routes; and provides the two
// topology builders the paper's evaluation uses — a single switch (Sections
// 6.4/7.1 microbenchmarks) and the 2-level fat tree of 8-port 100 Gbps
// switches connecting 64 nodes (Figure 15).
#pragma once

#include <memory>
#include <vector>

#include "net/node.hpp"

namespace flare::net {

struct PortPeer {
  NodeId peer = kInvalidNode;
  u32 my_port = 0;
};

class Network {
 public:
  Network() = default;

  sim::Simulator& sim() { return sim_; }

  Host& add_host(std::string name);
  Switch& add_switch(std::string name, u32 max_allreduces = 8);

  /// Creates a full-duplex link (two unidirectional Links) between a and b.
  void connect(Node& a, Node& b, f64 bandwidth_bps, u64 latency_ps);

  /// Computes shortest-path ECMP routing tables for every switch.
  void build_routes();

  Node& node(NodeId id) { return *nodes_.at(id); }
  const std::vector<PortPeer>& neighbors(NodeId id) const {
    return adjacency_.at(id);
  }
  u32 num_nodes() const { return static_cast<u32>(nodes_.size()); }
  const std::vector<Host*>& hosts() const { return hosts_; }
  const std::vector<Switch*>& switches() const { return switches_; }

  /// Total bytes serialized over all links (both directions).
  u64 total_traffic_bytes() const;
  u64 total_packets() const;

  /// Network-wide collective-id allocator: every control plane sharing this
  /// fabric (NetworkManagers, Communicators, the service layer) draws from
  /// one counter, so concurrent sessions can never install colliding
  /// allreduce ids on a shared switch.
  u32 alloc_collective_id() { return next_collective_id_++; }

 private:
  sim::Simulator sim_;
  u32 next_collective_id_ = 1;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::vector<PortPeer>> adjacency_;
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
};

// ------------------------------------------------------------- builders ---

struct LinkSpec {
  f64 bandwidth_bps = 100e9;  ///< 100 Gbps, the paper's Figure 15 links
  u64 latency_ps = 500 * kPsPerNs;
};

struct BuiltTopology {
  std::vector<Host*> hosts;
  std::vector<Switch*> leaves;
  std::vector<Switch*> spines;  ///< empty for the single-switch topology
};

/// `hosts` hosts attached to one switch.
BuiltTopology build_single_switch(Network& net, u32 hosts,
                                  const LinkSpec& link = {},
                                  u32 max_allreduces = 8);

struct FatTreeSpec {
  u32 hosts = 64;
  u32 radix = 8;  ///< ports per switch; radix/2 down + radix/2 up at leaves
  LinkSpec link{};
  u32 max_allreduces = 8;
};

/// 2-level fat tree: hosts/(radix/2) leaves, each with radix/2 uplinks
/// wired round-robin to hosts/radix spines (full bisection).
BuiltTopology build_fat_tree(Network& net, const FatTreeSpec& spec);

}  // namespace flare::net
