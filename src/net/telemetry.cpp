#include "net/telemetry.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace flare::net {

CongestionMonitor::CongestionMonitor(Network& net,
                                     CongestionMonitorOptions opt)
    : net_(net), opt_(opt) {
  FLARE_ASSERT_MSG(opt_.period_ps > 0, "sampling period must be positive");
  const u32 n = net_.num_links();
  snap_.links.resize(n);
  busy_at_last_.assign(n, 0);
  by_trace_.resize(n);
  hot_.assign(n, false);
  for (u32 i = 0; i < n; ++i) index_of_[&net_.link(i)] = i;
}

void CongestionMonitor::sample() {
  FLARE_ASSERT_MSG(net_.num_links() == snap_.links.size(),
                   "links added after the monitor was built");
  // Settle fluid flow accrual first, so the windowed diffs below see flow
  // load exactly like packet load (no-op without an active flow plane).
  net_.sync_flows();
  const SimTime now = net_.sim().now();
  const bool fresh_window = !sampled_ || now > last_sample_ps_;
  for (u32 i = 0; i < snap_.links.size(); ++i) {
    const Link& link = net_.link(i);
#if FLARE_VALIDATE_ENABLED
    // The per-trace EWMAs below are only a sound foreign-heat signal
    // while attribution conserves busy time exactly; audit per sample.
    link.validate_attribution();
#endif
    LinkCongestion& lc = snap_.links[i];
    if (fresh_window) {
      const u64 busy = link.busy_cum_ps();
      if (sampled_) {
        lc.inst_utilization = Link::windowed_utilization(
            busy_at_last_[i], busy, last_sample_ps_, now);
        lc.ewma_utilization = opt_.ewma_alpha * lc.inst_utilization +
                              (1.0 - opt_.ewma_alpha) * lc.ewma_utilization;
      } else {
        // First sample: the window is [0, now] and seeds the EWMA.
        lc.inst_utilization = link.utilization(now);
        lc.ewma_utilization = lc.inst_utilization;
      }
      busy_at_last_[i] = busy;
      // Per-trace EWMAs on the SAME window schedule, seeding recipe, and
      // alpha as the total above.  Attribution conserves busy time exactly
      // (sum of buckets == busy_cum), and the EWMA update is linear, so in
      // exact arithmetic sum-over-traces(ewma) == total ewma — which is
      // what makes total - self a sound foreign-heat signal.  A trace id
      // that never reappears keeps decaying its old state toward zero only
      // implicitly (no new busy -> windowed form reads 0), which is the
      // same behaviour the total exhibits for an idle link.
      std::map<u32, TraceState>& per = by_trace_[i];
      for (const auto& [trace, busy_t] : link.busy_by_trace()) {
        TraceState& st = per[trace];
        if (sampled_) {
          const f64 inst = Link::windowed_utilization(
              st.busy_at_last, busy_t, last_sample_ps_, now);
          st.ewma = opt_.ewma_alpha * inst +
                    (1.0 - opt_.ewma_alpha) * st.ewma;
        } else {
          st.ewma = now == 0 ? 0.0
                             : static_cast<f64>(busy_t) /
                                   static_cast<f64>(now);
        }
        st.busy_at_last = busy_t;
      }
      // Congestion-threshold crossing instants for the tracer (tid 0):
      // chrome://tracing shows when each link went hot/cool against the
      // collectives' spans.  Pure observation — nothing consumes hot_.
      if (obs::Tracer* tr = net_.tracer()) {
        const bool hot = lc.ewma_utilization > opt_.hot_threshold;
        if (hot != hot_[i]) {
          tr->name_thread(0, "fabric");
          tr->instant(0, hot ? "congestion-hot" : "congestion-cool", now,
                      "congestion",
                      "{\"link\":\"" + link.name() + "\"}");
          hot_[i] = hot;
        }
      }
    }
    lc.queue_delay_ps = link.queue_delay_ps(now);
    lc.queued_bytes = link.queued_bytes(now);
  }
  if (fresh_window) {
    last_sample_ps_ = now;
    sampled_ = true;
  }
  snap_.at = now;
  snap_.epoch += 1;
}

void CongestionMonitor::arm_until(SimTime until) {
  sim::Simulator& sim = net_.sim();
  SimTime at = std::max(sim.now(), armed_until_);
  // First new sample one period past whatever is already scheduled.
  for (at += opt_.period_ps; at <= until; at += opt_.period_ps) {
    sim.schedule_at(at, [this] { sample(); });
    armed_until_ = at;
  }
}

const LinkCongestion* CongestionMonitor::stats_for(NodeId node, u32 port,
                                                   bool reverse) const {
  const Node& n = net_.node(node);
  if (port >= n.num_ports()) return nullptr;
  const Link* link = &n.port(port);
  if (reverse) link = link->reverse();
  if (link == nullptr) return nullptr;
  const auto it = index_of_.find(link);
  return it == index_of_.end() ? nullptr : &snap_.links[it->second];
}

const Link* CongestionMonitor::link_for(NodeId node, u32 port,
                                        bool reverse) const {
  const Node& n = net_.node(node);
  if (port >= n.num_ports()) return nullptr;
  const Link* link = &n.port(port);
  return reverse ? link->reverse() : link;
}

f64 CongestionMonitor::trace_ewma_of(const Link* link, u32 trace) const {
  if (link == nullptr) return 0.0;
  const auto it = index_of_.find(link);
  if (it == index_of_.end()) return 0.0;
  const std::map<u32, TraceState>& per = by_trace_[it->second];
  const auto ts = per.find(trace);
  return ts == per.end() ? 0.0 : ts->second.ewma;
}

f64 CongestionMonitor::link_trace_ewma(u32 i, u32 trace) const {
  if (i >= by_trace_.size()) return 0.0;
  const auto ts = by_trace_[i].find(trace);
  return ts == by_trace_[i].end() ? 0.0 : ts->second.ewma;
}

f64 CongestionMonitor::edge_congestion_excluding(NodeId node, u32 port,
                                                 u32 trace) const {
  f64 worst = 0.0;
  for (const bool reverse : {false, true}) {
    const LinkCongestion* lc = stats_for(node, port, reverse);
    if (lc == nullptr) continue;
    const f64 self = trace_ewma_of(link_for(node, port, reverse), trace);
    // Clamp: exact in theory (attribution conserves), but FP rounding can
    // leave total - self epsilon-negative on a purely-self link.
    worst = std::max(worst, std::max(0.0, lc->ewma_utilization - self));
  }
  return worst;
}

f64 CongestionMonitor::edge_congestion(NodeId node, u32 port) const {
  f64 worst = 0.0;
  if (const LinkCongestion* out = stats_for(node, port, false)) {
    worst = std::max(worst, out->ewma_utilization);
  }
  if (const LinkCongestion* in = stats_for(node, port, true)) {
    worst = std::max(worst, in->ewma_utilization);
  }
  return worst;
}

f64 CongestionMonitor::edge_cost(NodeId node, u32 port) const {
  f64 queue_ps = 0.0;
  if (const LinkCongestion* out = stats_for(node, port, false)) {
    queue_ps = std::max(queue_ps, static_cast<f64>(out->queue_delay_ps));
  }
  if (const LinkCongestion* in = stats_for(node, port, true)) {
    queue_ps = std::max(queue_ps, static_cast<f64>(in->queue_delay_ps));
  }
  return 1.0 + opt_.utilization_weight * edge_congestion(node, port) +
         opt_.queue_weight * queue_ps / static_cast<f64>(opt_.period_ps);
}

f64 CongestionMonitor::node_congestion(NodeId node) const {
  const u32 ports = net_.node(node).num_ports();
  f64 worst = 0.0;
  for (u32 p = 0; p < ports; ++p) {
    worst = std::max(worst, edge_congestion(node, p));
  }
  return worst;
}

f64 CongestionMonitor::mean_congestion() const {
  if (snap_.links.empty()) return 0.0;
  f64 sum = 0.0;
  for (const LinkCongestion& lc : snap_.links) sum += lc.ewma_utilization;
  return sum / static_cast<f64>(snap_.links.size());
}

}  // namespace flare::net
