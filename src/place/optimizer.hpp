// PlacementOptimizer: seeded simulated annealing over the JOINT assignment
// of every active job's embedding (ISSUE 9 tentpole, exemplar:
// SET-ISCA2023's sa.cpp/placement.cpp cost_f = e^k·d).
//
// Greedy admission embeds one job at a time against whatever heat exists at
// that instant; reactive migration (TreeOpBase::maybe_migrate) fixes one
// job at a time when ITS tree gets hot.  Neither ever reconsiders the fleet
// as a whole, so early tenants pin the spines and late tenants stack onto
// whatever is left.  This optimizer searches the joint space offline,
// against a CostSnapshot's frozen numbers:
//
//   load[l]  = background[l] + Σ_{jobs crossing l} weight_j
//   hot_j    = max_{l ∈ links_j} (load[l] − weight_j)       (foreign heat)
//   est_j    = (bytes_j / Σ bytes) · e^{k·hot_j}            (relative ECT)
//   objective = (1 + max_l load[l]) · Σ_j est_j
//
// i.e. worst-edge congestion × aggregate estimated completion time.  The
// exponential makes a job on a contended edge expensive fast (the
// SET cost_f shape), the (1 + worst) factor keeps the fabric-wide hot spot
// first-class even when the jobs sitting on it are small.
//
// The search is a pure function of (snapshot, options): same seed → same
// plan, bit for bit.  All randomness flows through one flare::Rng; every
// tie-break is deterministic (strict improvement, first-in-switch-order
// wins).
#pragma once

#include <vector>

#include "place/snapshot.hpp"

namespace flare::place {

struct OptimizerOptions {
  u64 seed = 0xC0F1ACEull;
  /// Annealing steps.  Each step proposes one move (re-root / re-embed /
  /// swap) and accepts by the Metropolis criterion.
  u32 iterations = 600;
  f64 initial_temp = 1.0;
  /// Geometric cooling: temp *= cooling after every step.
  f64 cooling = 0.995;
  /// k in est_j = share_j · e^{k·hot_j} — how sharply contention inflates a
  /// job's estimated completion time.
  f64 heat_exponent = 2.0;
};

/// One per-job re-embedding the plan asks the service to apply.
struct PlannedMove {
  u32 job_id = 0;
  net::NodeId old_root = net::kInvalidNode;
  net::NodeId new_root = net::kInvalidNode;
  coll::ReductionTree tree;  ///< target embedding (not yet installed)
  /// Fractional objective improvement attributable to THIS move alone:
  /// (objective with this job reverted − final objective) / former.
  /// The hysteresis filter (filter_moves) keys off this.
  f64 predicted_gain = 0.0;
};

struct PlacementPlan {
  f64 cost_before = 0.0;  ///< objective of the as-is assignment
  f64 cost_after = 0.0;   ///< objective of the best assignment found
  u32 sa_iterations = 0;  ///< annealing steps executed
  u32 proposed = 0;       ///< candidate moves evaluated
  u32 accepted = 0;       ///< Metropolis acceptances
  /// Jobs whose best embedding differs from the snapshot's, ascending
  /// job_id.  May be empty (as-is assignment already optimal).
  std::vector<PlannedMove> moves;
};

class PlacementOptimizer {
 public:
  PlacementOptimizer(net::Network& net, OptimizerOptions opt);

  /// Runs the annealing search.  Pure in `snap`: no live telemetry is
  /// read, no switch state is touched (candidate trees are computed, not
  /// installed — capacity is checked at apply time by the migration path).
  PlacementPlan optimize(const CostSnapshot& snap);

  /// Cross-job admission scoring: the MARGINAL worst-edge heat a queued
  /// job would add — max over the cheapest candidate embedding's links of
  /// (load[l] + kColdStartWeight), where load is the frozen fleet-wide
  /// load.  +infinity when no root reaches every participant.  The
  /// service admits the cheapest queued job first instead of strict FIFO.
  f64 admission_score(const CostSnapshot& snap,
                      const std::vector<net::Host*>& participants);

 private:
  struct State;  // SA working state (optimizer.cpp)

  /// Cheapest embedding for job `j` of `st` rooted anywhere, under edge
  /// costs that exclude j's own contribution (strict less, first in
  /// net.switches() order wins).  nullopt when no root spans.
  std::optional<coll::ReductionTree> cheapest_tree(const CostSnapshot& snap,
                                                   State& st, u32 j);
  std::optional<coll::ReductionTree> tree_for(const CostSnapshot& snap,
                                              State& st, u32 j,
                                              net::NodeId root);
  f64 objective(const CostSnapshot& snap, const State& st) const;

  net::Network& net_;
  OptimizerOptions opt_;
  /// Private manager: reuses the deterministic congestion-aware Dijkstra
  /// (compute_tree) against the SNAPSHOT loads via a link-cost closure
  /// reading cost_* below.  Never installs anything.
  coll::NetworkManager manager_;
  // Link-cost closure inputs for the current compute_tree call.
  const CostSnapshot* cost_snap_ = nullptr;
  const std::vector<f64>* cost_load_ = nullptr;
  const std::vector<u32>* cost_exclude_links_ = nullptr;  ///< sorted
  f64 cost_exclude_weight_ = 0.0;
};

/// Hysteresis: drops plan moves with predicted_gain < min_gain (applying a
/// migration costs a break-before-make install; marginal wins churn the
/// fabric for nothing).  Returns the number of moves dropped.
u32 filter_moves(PlacementPlan& plan, f64 min_gain);

/// True when `tree` touches any switch in `sorted_targets` (ascending
/// NodeId) — used to invalidate TreeCache entries whose embedding conflicts
/// with a freshly applied PlacementPlan.
bool tree_conflicts(const coll::ReductionTree& tree,
                    const std::vector<net::NodeId>& sorted_targets);

}  // namespace flare::place
