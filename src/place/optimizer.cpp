#include "place/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace flare::place {

namespace {

/// Mirrors CongestionMonitorOptions::utilization_weight so the search
/// routes candidate trees the same way the live admission embedder does.
constexpr f64 kUtilWeight = 8.0;

/// Metropolis guard: temperatures decay geometrically toward 0; below this
/// any uphill move is simply rejected (exp underflows anyway).
constexpr f64 kMinTemp = 1e-12;

bool same_embedding(const coll::ReductionTree& a, const coll::ReductionTree& b) {
  if (a.root != b.root || a.switches.size() != b.switches.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.switches.size(); ++i) {
    const coll::TreeSwitchEntry& x = a.switches[i];
    const coll::TreeSwitchEntry& y = b.switches[i];
    if (x.sw != y.sw || x.parent_port != y.parent_port ||
        x.child_ports != y.child_ports) {
      return false;
    }
  }
  return true;
}

}  // namespace

/// SA working state: one candidate assignment of the whole fleet.
struct PlacementOptimizer::State {
  std::vector<coll::ReductionTree> trees;  ///< per job (snapshot order)
  std::vector<std::vector<u32>> links;     ///< per job, sorted
  std::vector<f64> load;                   ///< per link (rebuild_load)
  f64 total_bytes = 0.0;
};

PlacementOptimizer::PlacementOptimizer(net::Network& net, OptimizerOptions opt)
    : net_(net), opt_(opt), manager_(net) {
  manager_.set_link_cost([this](net::NodeId node, u32 port) {
    // Worst frozen load across both directions of the duplex edge behind
    // (node, port), minus the moving job's own contribution — the offline
    // analogue of CongestionMonitor::edge_cost over
    // edge_congestion_excluding.
    f64 worst = 0.0;
    net::Link* const fwd = &net_.node(node).port(port);
    for (const net::Link* link : {fwd, fwd->reverse()}) {
      if (link == nullptr) continue;
      const u32 i = cost_snap_->link_index(link);
      if (i == UINT32_MAX) continue;
      f64 heat = (*cost_load_)[i];
      if (std::binary_search(cost_exclude_links_->begin(),
                             cost_exclude_links_->end(), i)) {
        heat -= cost_exclude_weight_;
      }
      worst = std::max(worst, std::max(0.0, heat));
    }
    return 1.0 + kUtilWeight * worst;
  });
}

std::optional<coll::ReductionTree> PlacementOptimizer::tree_for(
    const CostSnapshot& snap, State& st, u32 j, net::NodeId root) {
  cost_snap_ = &snap;
  cost_load_ = &st.load;
  cost_exclude_links_ = &st.links[j];
  cost_exclude_weight_ = snap.jobs()[j].weight;
  return manager_.compute_tree(snap.jobs()[j].participants, root);
}

std::optional<coll::ReductionTree> PlacementOptimizer::cheapest_tree(
    const CostSnapshot& snap, State& st, u32 j) {
  std::optional<coll::ReductionTree> best;
  for (net::Switch* sw : net_.switches()) {
    std::optional<coll::ReductionTree> t = tree_for(snap, st, j, sw->id());
    if (t && (!best || t->cost < best->cost)) best = std::move(t);
  }
  return best;  // strict less: first in switches() order wins ties
}

f64 PlacementOptimizer::objective(const CostSnapshot& snap,
                                  const State& st) const {
  f64 worst = 0.0;
  for (const f64 l : st.load) worst = std::max(worst, l);
  const std::vector<JobView>& jobs = snap.jobs();
  f64 sum_est = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    f64 hot = 0.0;  // foreign heat: load minus the job's own weight
    for (const u32 l : st.links[j]) {
      hot = std::max(hot, std::max(0.0, st.load[l] - jobs[j].weight));
    }
    const f64 share =
        st.total_bytes > 0.0
            ? static_cast<f64>(jobs[j].data_bytes) / st.total_bytes
            : 1.0 / static_cast<f64>(jobs.size());
    sum_est += share * std::exp(opt_.heat_exponent * hot);
  }
  return (1.0 + worst) * sum_est;
}

PlacementPlan PlacementOptimizer::optimize(const CostSnapshot& snap) {
  PlacementPlan plan;
  const std::vector<JobView>& jobs = snap.jobs();
  const u32 num_jobs = static_cast<u32>(jobs.size());

  State st;
  st.trees.reserve(num_jobs);
  st.links.reserve(num_jobs);
  for (const JobView& jv : jobs) {
    st.trees.push_back(jv.tree);
    st.links.push_back(jv.links);
    st.total_bytes += static_cast<f64>(jv.data_bytes);
  }
  const auto rebuild_load = [&snap](State& s) {
    s.load = snap.background();
    for (std::size_t j = 0; j < s.links.size(); ++j) {
      for (const u32 l : s.links[j]) s.load[l] += snap.jobs()[j].weight;
    }
  };
  rebuild_load(st);
  plan.cost_before = objective(snap, st);
  plan.cost_after = plan.cost_before;
  if (num_jobs == 0) return plan;

  State best = st;
  f64 cur_obj = plan.cost_before;
  f64 best_obj = cur_obj;
  // Metropolis temperatures are RELATIVE: scale by the starting objective
  // so `initial_temp` means "fraction of cost_before an uphill move may
  // cost and still be ~e^-1 acceptable", independent of fleet size.
  const f64 scale = std::max(plan.cost_before, 1e-12);
  Rng rng(opt_.seed);
  f64 temp = opt_.initial_temp;
  const std::vector<net::Switch*>& sws = net_.switches();

  for (u32 step = 0; step < opt_.iterations; ++step, temp *= opt_.cooling) {
    ++plan.sa_iterations;
    State cand = st;
    bool moved = false;
    // Move mix: 0.4 random re-root (exploration), 0.4 cheapest re-embed
    // excluding own heat (exploitation), 0.2 swap two jobs' roots (escapes
    // the pairwise local optima greedy sequences land in).
    const u64 kind = rng.uniform_u64(10);
    if (kind < 4) {
      const u32 j = static_cast<u32>(rng.uniform_u64(num_jobs));
      net::Switch* sw = sws[rng.uniform_u64(sws.size())];
      std::optional<coll::ReductionTree> t = tree_for(snap, cand, j, sw->id());
      if (t) {
        cand.links[j] = snap.tree_links(*t);
        cand.trees[j] = std::move(*t);
        moved = true;
      }
    } else if (kind < 8 || num_jobs < 2) {
      const u32 j = static_cast<u32>(rng.uniform_u64(num_jobs));
      std::optional<coll::ReductionTree> t = cheapest_tree(snap, cand, j);
      if (t) {
        cand.links[j] = snap.tree_links(*t);
        cand.trees[j] = std::move(*t);
        moved = true;
      }
    } else {
      const u32 a = static_cast<u32>(rng.uniform_u64(num_jobs));
      u32 b = static_cast<u32>(rng.uniform_u64(num_jobs - 1));
      if (b >= a) ++b;
      const net::NodeId root_a = cand.trees[a].root;
      const net::NodeId root_b = cand.trees[b].root;
      std::optional<coll::ReductionTree> ta = tree_for(snap, cand, a, root_b);
      std::optional<coll::ReductionTree> tb = tree_for(snap, cand, b, root_a);
      if (ta && tb) {
        cand.links[a] = snap.tree_links(*ta);
        cand.trees[a] = std::move(*ta);
        cand.links[b] = snap.tree_links(*tb);
        cand.trees[b] = std::move(*tb);
        moved = true;
      }
    }
    if (!moved) continue;  // infeasible proposal; rng state still advanced

    ++plan.proposed;
    rebuild_load(cand);
    const f64 cand_obj = objective(snap, cand);
    const f64 delta = cand_obj - cur_obj;
    const bool accept =
        delta < 0.0 ||
        (temp > kMinTemp &&
         rng.uniform() < std::exp(-delta / (temp * scale)));
    if (!accept) continue;
    st = std::move(cand);
    cur_obj = cand_obj;
    ++plan.accepted;
    if (cur_obj < best_obj) {
      best = st;
      best_obj = cur_obj;
    }
  }

  plan.cost_after = best_obj;
  // Extract per-job moves from the best assignment.  predicted_gain is the
  // leave-one-out improvement: revert THIS job to its snapshot embedding,
  // keep every other planned move — what the fabric loses if just this
  // move is skipped.  Jobs whose reverted objective is no worse are not
  // real moves (an SA artifact) and are dropped here, not by hysteresis.
  for (u32 j = 0; j < num_jobs; ++j) {
    if (same_embedding(best.trees[j], jobs[j].tree)) continue;
    State reverted = best;
    reverted.trees[j] = jobs[j].tree;
    reverted.links[j] = jobs[j].links;
    rebuild_load(reverted);
    const f64 obj_reverted = objective(snap, reverted);
    if (obj_reverted <= best_obj) continue;
    PlannedMove mv;
    mv.job_id = jobs[j].job_id;
    mv.old_root = jobs[j].tree.root;
    mv.new_root = best.trees[j].root;
    mv.tree = best.trees[j];
    mv.predicted_gain = (obj_reverted - best_obj) / obj_reverted;
    plan.moves.push_back(std::move(mv));
  }
  return plan;  // moves ascend job_id (jobs() is sorted)
}

f64 PlacementOptimizer::admission_score(
    const CostSnapshot& snap, const std::vector<net::Host*>& participants) {
  // Fleet-wide frozen load with nothing excluded: the queued job is purely
  // marginal.
  std::vector<f64> load = snap.background();
  for (const JobView& jv : snap.jobs()) {
    for (const u32 l : jv.links) load[l] += jv.weight;
  }
  const std::vector<u32> no_exclude;
  cost_snap_ = &snap;
  cost_load_ = &load;
  cost_exclude_links_ = &no_exclude;
  cost_exclude_weight_ = 0.0;
  std::optional<coll::ReductionTree> best;
  for (net::Switch* sw : net_.switches()) {
    std::optional<coll::ReductionTree> t =
        manager_.compute_tree(participants, sw->id());
    if (t && (!best || t->cost < best->cost)) best = std::move(t);
  }
  if (!best) return std::numeric_limits<f64>::infinity();
  f64 score = 0.0;
  for (const u32 l : snap.tree_links(*best)) {
    score = std::max(score, load[l] + kColdStartWeight);
  }
  return score;
}

u32 filter_moves(PlacementPlan& plan, f64 min_gain) {
  const auto keep_end =
      std::remove_if(plan.moves.begin(), plan.moves.end(),
                     [min_gain](const PlannedMove& m) {
                       return m.predicted_gain < min_gain;
                     });
  const u32 dropped =
      static_cast<u32>(std::distance(keep_end, plan.moves.end()));
  plan.moves.erase(keep_end, plan.moves.end());
  return dropped;
}

bool tree_conflicts(const coll::ReductionTree& tree,
                    const std::vector<net::NodeId>& sorted_targets) {
  for (const coll::TreeSwitchEntry& e : tree.switches) {
    if (std::binary_search(sorted_targets.begin(), sorted_targets.end(),
                           e.sw->id())) {
      return true;
    }
  }
  return false;
}

}  // namespace flare::place
