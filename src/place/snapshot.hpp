// CostSnapshot: an immutable, deterministic freeze of the fabric for the
// co-placement search (src/place/optimizer.hpp).
//
// The simulated-annealing optimizer evaluates thousands of candidate
// assignments; every evaluation must read the SAME numbers, or the search
// objective drifts under its own feet and two runs with the same seed
// diverge.  freeze() therefore copies everything the objective touches out
// of the live CongestionMonitor + NetworkManager state:
//
//   * per unidirectional link, the BACKGROUND heat — the total EWMA
//     utilization minus every active job's own attributed EWMA (the
//     fabric-wide analogue of edge_congestion_excluding: cross-traffic and
//     foreign tenants the optimizer cannot move);
//   * per active job, its current embedding (ReductionTree copy), the link
//     set that embedding crosses, and a scalar traffic weight — the
//     per-edge utilization footprint observed through the job's own
//     per-trace EWMA (a deterministic prior for jobs too young to have
//     registered traffic).
//
// The snapshot never re-reads the monitor after freeze(): two freezes of
// the same calendar instant serialize byte-identically (tested), and the
// whole SA search is a pure function of (snapshot, seed).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "coll/manager.hpp"
#include "net/telemetry.hpp"

namespace flare::place {

/// Traffic weight charged to a job whose trace has not registered any EWMA
/// yet (admitted this window) and to QUEUED jobs being admission-scored: a
/// persistent training job drives its tree at a sizable duty cycle, and
/// charging newcomers SOMETHING keeps the search from stacking "free" jobs
/// onto one spine.  Replaced by the observed footprint one window later.
constexpr f64 kColdStartWeight = 0.25;

/// One active job as the service hands it to freeze(): identity, traffic
/// attribution tag, and the live embedding.
struct JobInput {
  u32 job_id = 0;
  /// Attribution tag (core::AllreduceConfig::trace) — keys the per-trace
  /// EWMAs that separate this job's heat from the background.
  u32 trace = 0;
  u64 data_bytes = 0;
  std::vector<net::Host*> participants;
  coll::ReductionTree tree;  ///< current (live) embedding
};

/// A job inside the snapshot: the input plus the frozen derived numbers.
struct JobView {
  u32 job_id = 0;
  u32 trace = 0;
  u64 data_bytes = 0;
  /// Per-edge utilization footprint: the worst own-trace EWMA across the
  /// current embedding's links, floored by a cold-start prior.  Candidate
  /// embeddings are charged this same weight on every link they cross.
  f64 weight = 0.0;
  std::vector<net::Host*> participants;
  coll::ReductionTree tree;
  /// Unidirectional link indices the embedding crosses (both directions of
  /// every tree edge; sorted, deduplicated).
  std::vector<u32> links;
};

class CostSnapshot {
 public:
  /// Freezes the fabric at the monitor's LATEST sample (the caller decides
  /// when to sample; freeze() itself never advances the telemetry).
  /// `jobs` may arrive in any order; the snapshot stores them sorted by
  /// job_id so every downstream iteration is deterministic.
  static CostSnapshot freeze(net::Network& net,
                             const net::CongestionMonitor& monitor,
                             std::vector<JobInput> jobs);

  /// Unidirectional link indices `tree` crosses (both directions of every
  /// tree edge; sorted, deduplicated) — the same enumeration freeze() used
  /// for the active jobs, exposed so the optimizer can cost CANDIDATE
  /// embeddings against the frozen loads.
  std::vector<u32> tree_links(const coll::ReductionTree& tree) const;

  /// Unidirectional link index of `link` in the frozen fabric, or
  /// UINT32_MAX when the pointer is unknown (a link added after freeze).
  u32 link_index(const net::Link* link) const {
    const auto it = index_of_.find(link);
    return it == index_of_.end() ? UINT32_MAX : it->second;
  }

  /// Deterministic byte serialization (doubles printed with %.17g — enough
  /// digits to round-trip).  Two freezes of the same calendar instant are
  /// byte-identical; any divergence means nondeterminism leaked in.
  std::string serialize() const;

  SimTime at() const { return at_; }
  u64 epoch() const { return epoch_; }
  u32 num_links() const { return static_cast<u32>(background_.size()); }
  const std::vector<f64>& background() const { return background_; }
  const std::vector<JobView>& jobs() const { return jobs_; }

 private:
  SimTime at_ = 0;
  u64 epoch_ = 0;
  /// Per unidirectional link: EWMA heat the optimizer cannot move
  /// (clamp(total - sum of active jobs' own EWMAs, >= 0)).
  std::vector<f64> background_;
  std::vector<JobView> jobs_;  ///< ascending job_id
  /// Stable Link* -> unidirectional index map (links never move); lookup
  /// only, never iterated.
  std::unordered_map<const net::Link*, u32> index_of_;
};

}  // namespace flare::place
