#include "place/snapshot.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace flare::place {

namespace {

/// Below this an EWMA reading counts as "no traffic observed yet".
constexpr f64 kEps = 1e-9;

void append_f64(std::string& out, f64 v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

CostSnapshot CostSnapshot::freeze(net::Network& net,
                                  const net::CongestionMonitor& monitor,
                                  std::vector<JobInput> jobs) {
  CostSnapshot snap;
  const net::CongestionSnapshot& ms = monitor.snapshot();
  snap.at_ = ms.at;
  snap.epoch_ = ms.epoch;

  const u32 n_links = net.num_links();
  snap.index_of_.reserve(n_links);
  for (u32 i = 0; i < n_links; ++i) snap.index_of_.emplace(&net.link(i), i);

  // Monitors snapshot links lazily (the vector grows to the fabric on the
  // first sample); an unsampled monitor freezes to an all-cold fabric.
  auto total_ewma = [&ms](u32 i) {
    return i < ms.links.size() ? ms.links[i].ewma_utilization : 0.0;
  };

  std::sort(jobs.begin(), jobs.end(),
            [](const JobInput& a, const JobInput& b) {
              return a.job_id < b.job_id;
            });

  snap.jobs_.reserve(jobs.size());
  for (JobInput& in : jobs) {
    JobView jv;
    jv.job_id = in.job_id;
    jv.trace = in.trace;
    jv.data_bytes = in.data_bytes;
    jv.participants = std::move(in.participants);
    jv.tree = std::move(in.tree);
    jv.links = snap.tree_links(jv.tree);
    f64 own = 0.0;
    for (const u32 l : jv.links) {
      own = std::max(own, monitor.link_trace_ewma(l, jv.trace));
    }
    jv.weight = own > kEps ? own : kColdStartWeight;
    snap.jobs_.push_back(std::move(jv));
  }

  // Background = what the optimizer cannot move: total minus every active
  // job's own attributed heat, clamped per link.  Linear EWMAs on one
  // window schedule make the subtraction sound (see
  // CongestionMonitor::edge_congestion_excluding); jobs not handed to
  // freeze() (host-ring fallbacks, foreign tenants, cross traffic) stay in
  // the background by construction.
  snap.background_.assign(n_links, 0.0);
  for (u32 i = 0; i < n_links; ++i) {
    f64 self = 0.0;
    for (const JobView& jv : snap.jobs_) {
      self += monitor.link_trace_ewma(i, jv.trace);
    }
    snap.background_[i] = std::max(0.0, total_ewma(i) - self);
  }
  return snap;
}

std::vector<u32> CostSnapshot::tree_links(
    const coll::ReductionTree& tree) const {
  // Every tree edge exactly once, both directions: tree traffic crosses
  // both (contributions up, result multicast down).  Child links only —
  // the parent links are the same duplex edges seen from below (the same
  // enumeration NetworkManager::tree_cost uses).
  std::vector<u32> out;
  out.reserve(tree.switches.size() * 4);
  for (const coll::TreeSwitchEntry& e : tree.switches) {
    for (const u32 p : e.child_ports) {
      const net::Link* fwd = &e.sw->port(p);
      const auto it = index_of_.find(fwd);
      FLARE_ASSERT_MSG(it != index_of_.end(),
                       "tree crosses a link outside the snapshot fabric");
      out.push_back(it->second);
      const net::Link* rev = fwd->reverse();
      if (rev != nullptr) {
        const auto rit = index_of_.find(rev);
        if (rit != index_of_.end()) out.push_back(rit->second);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string CostSnapshot::serialize() const {
  std::string out;
  out.reserve(256 + background_.size() * 24 + jobs_.size() * 128);
  out += "snapshot at=";
  out += std::to_string(at_);
  out += " epoch=";
  out += std::to_string(epoch_);
  out += " links=";
  out += std::to_string(background_.size());
  out += '\n';
  for (std::size_t i = 0; i < background_.size(); ++i) {
    if (background_[i] == 0.0) continue;  // sparse: cold links are implicit
    out += 'L';
    out += std::to_string(i);
    out += '=';
    append_f64(out, background_[i]);
    out += '\n';
  }
  for (const JobView& jv : jobs_) {
    out += 'J';
    out += std::to_string(jv.job_id);
    out += " trace=";
    out += std::to_string(jv.trace);
    out += " bytes=";
    out += std::to_string(jv.data_bytes);
    out += " root=";
    out += std::to_string(jv.tree.root);
    out += " weight=";
    append_f64(out, jv.weight);
    out += " switches=";
    for (const coll::TreeSwitchEntry& e : jv.tree.switches) {
      out += std::to_string(e.sw->id());
      out += ',';
    }
    out += " links=";
    for (const u32 l : jv.links) {
      out += std::to_string(l);
      out += ',';
    }
    out += '\n';
  }
  return out;
}

}  // namespace flare::place
