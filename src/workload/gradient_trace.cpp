#include "workload/gradient_trace.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/assert.hpp"

namespace flare::workload {

GradientTrace::GradientTrace(GradientTraceSpec spec, u32 hosts)
    : spec_(spec), hosts_(hosts) {
  FLARE_ASSERT(spec_.bucket >= 1 && spec_.top_k >= 1);
  FLARE_ASSERT(spec_.top_k <= spec_.bucket);
  buckets_ = (spec_.model_elems + spec_.bucket - 1) / spec_.bucket;
  Rng rng(derive_seed(spec_.seed, 0x1A7E5));
  layer_scales_.resize(std::max<u32>(spec_.layers, 1));
  for (auto& s : layer_scales_) s = std::exp(rng.normal(0.0, 1.5));
}

f64 GradientTrace::density() const {
  return static_cast<f64>(spec_.top_k) / static_cast<f64>(spec_.bucket);
}

u32 GradientTrace::hot_index(u64 bucket) const {
  Rng rng(derive_seed(derive_seed(spec_.seed, 0x9D07u), bucket));
  return static_cast<u32>(rng.uniform_u64(spec_.bucket));
}

f64 GradientTrace::layer_scale(u64 bucket) const {
  const u64 layer = bucket * layer_scales_.size() / std::max<u64>(buckets_, 1);
  return layer_scales_[std::min<u64>(layer, layer_scales_.size() - 1)];
}

std::vector<core::SparsePair> GradientTrace::window_pairs(
    u32 host, u64 first_bucket, u64 bucket_count) const {
  std::vector<core::SparsePair> out;
  out.reserve(bucket_count * spec_.top_k);
  for (u64 b = first_bucket;
       b < std::min(first_bucket + bucket_count, buckets_); ++b) {
    Rng rng(derive_seed(derive_seed(spec_.seed, 0xB0B0 + host), b));
    std::unordered_set<u32> chosen;
    for (u32 k = 0; k < spec_.top_k; ++k) {
      u32 off;
      if (rng.uniform() < spec_.overlap) {
        off = (hot_index(b) + k) % spec_.bucket;  // shared hot coordinates
      } else {
        off = static_cast<u32>(rng.uniform_u64(spec_.bucket));
      }
      while (!chosen.insert(off).second) off = (off + 1) % spec_.bucket;
      const f64 magnitude = layer_scale(b) * std::abs(rng.normal(0.0, 1.0));
      const f64 sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
      const u64 rel = (b - first_bucket) * spec_.bucket + off;
      out.push_back({static_cast<u32>(rel), sign * (magnitude + 1e-6)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const core::SparsePair& a, const core::SparsePair& b) {
              return a.index < b.index;
            });
  return out;
}

std::size_t GradientTrace::window_union(u64 first_bucket,
                                        u64 bucket_count) const {
  std::unordered_set<u64> all;
  for (u32 h = 0; h < hosts_; ++h) {
    for (const auto& p : window_pairs(h, first_bucket, bucket_count)) {
      all.insert(p.index);
    }
  }
  return all.size();
}

}  // namespace flare::workload
