#include "workload/cross_traffic.hpp"

#include <algorithm>

#include "core/packet.hpp"
#include "net/flow.hpp"

namespace flare::workload {

void CrossTrafficInjector::arm_packet(SimTime at, u32 src_host, u32 dst_host,
                                      u64 flow, u32 trace) {
  // The event captures the Network and host indices (stable), never the
  // injector: arming is fire-and-forget.
  net::Network* net = &net_;
  const u64 wire = spec_.packet_bytes + core::kPacketWireOverhead;
  net_.sim().schedule_at(at, [net, src_host, dst_host, flow, wire, trace] {
    net::Host* src = net->hosts()[src_host];
    net::Host* dst = net->hosts()[dst_host];
    auto msg = std::make_shared<net::HostMsg>();
    msg->src_host = src_host;
    msg->dst_host = dst_host;
    msg->proto = kProto;
    net::NetPacket np;
    np.kind = net::PacketKind::kHostMsg;
    np.dst_node = dst->id();
    np.flow = flow;
    np.trace = trace;
    np.wire_bytes = wire;
    np.msg = std::move(msg);
    src->send(std::move(np));
  });
  packets_armed_ += 1;
  bytes_armed_ += wire;
}

void CrossTrafficInjector::arm_flow(SimTime at, u32 src_host, u32 dst_host,
                                    u64 bytes, u64 n_pkts, f64 rate_cap_bps,
                                    u64 flow, u32 trace) {
  net::FlowSpec fs;
  fs.src_host = src_host;
  fs.dst_host = dst_host;
  fs.bytes = bytes;
  fs.flow_label = flow;
  fs.trace = trace;
  fs.rate_cap_bps = rate_cap_bps;
  net_.flows().start_flow_at(at, std::move(fs));
  packets_armed_ += n_pkts;
  bytes_armed_ += bytes;
}

void CrossTrafficInjector::arm() {
  const u32 hosts = static_cast<u32>(net_.hosts().size());
  FLARE_ASSERT_MSG(hosts >= 2, "cross traffic needs at least two hosts");
  Rng rng(spec_.seed);
  // Packet pacing while a flow is ON.
  const SimTime gap_ps = std::max<SimTime>(
      1, serialization_ps(spec_.packet_bytes + core::kPacketWireOverhead,
                          spec_.flow_rate_bps));

  for (u32 f = 0; f < spec_.flows; ++f) {
    u32 src, dst;
    if (f < spec_.pairs.size()) {
      src = spec_.pairs[f].first;
      dst = spec_.pairs[f].second;
      FLARE_ASSERT(src < hosts && dst < hosts && src != dst);
    } else {
      src = static_cast<u32>(rng.uniform_u64(hosts));
      do {
        dst = static_cast<u32>(rng.uniform_u64(hosts));
      } while (dst == src);
    }
    // One ECMP flow label per background flow: its packets take ONE path,
    // as a real 5-tuple flow would, so the congestion it builds is stable
    // enough for a monitor to learn.
    const u64 flow = f < spec_.flow_labels.size()
                         ? spec_.flow_labels[f]
                         : derive_seed(spec_.seed, 0x0FF10000ull + f);
    // One attribution trace per flow: background load shows up in the
    // per-collective link accounting as its own tenant, so monitors can
    // tell a collective's self-heat from this foreign heat.
    const u32 trace = net_.alloc_trace_id();
    trace_ids_.push_back(trace);
    // Alternate exponential ON bursts and OFF gaps across the horizon.
    // Both modes walk the SAME schedule: n paced packets per burst in
    // packet mode, one flow of the burst's n x wire bytes capped at the
    // pacing rate in flow mode.  Either way t advances by n * gap_ps, so
    // burst boundaries (and every later RNG draw) match exactly.
    const u64 wire = spec_.packet_bytes + core::kPacketWireOverhead;
    SimTime t = spec_.start_ps;
    while (t < spec_.horizon_ps) {
      const SimTime on_len = static_cast<SimTime>(
          rng.exponential(static_cast<f64>(spec_.mean_on_ps)));
      const SimTime on_end = std::min(spec_.horizon_ps, t + on_len);
      if (spec_.flow_mode) {
        const u64 n = t < on_end ? (on_end - t + gap_ps - 1) / gap_ps : 0;
        if (n > 0) {
          arm_flow(t, src, dst, n * wire, n, spec_.flow_rate_bps, flow,
                   trace);
        }
        t += n * gap_ps;
      } else {
        for (; t < on_end; t += gap_ps) arm_packet(t, src, dst, flow, trace);
      }
      t = std::max(t, on_end) +
          static_cast<SimTime>(
              rng.exponential(static_cast<f64>(spec_.mean_off_ps)));
    }
  }

  for (u32 b = 0; b < spec_.incast_bursts; ++b) {
    if (hosts < 2) break;
    const SimTime at =
        spec_.start_ps +
        static_cast<SimTime>(rng.uniform() *
                             static_cast<f64>(spec_.horizon_ps -
                                              spec_.start_ps));
    const u32 victim = static_cast<u32>(rng.uniform_u64(hosts));
    const u64 packets =
        std::max<u64>(1, spec_.incast_bytes / spec_.packet_bytes);
    const u32 fanin = std::min(spec_.incast_fanin, hosts - 1);
    // One trace per burst (not per sender): the burst is a single
    // storage/shuffle event, so its heat is attributed as one tenant.
    const u32 trace = net_.alloc_trace_id();
    trace_ids_.push_back(trace);
    const u64 wire = spec_.packet_bytes + core::kPacketWireOverhead;
    for (u32 s = 0; s < fanin; ++s) {
      u32 sender;
      do {
        sender = static_cast<u32>(rng.uniform_u64(hosts));
      } while (sender == victim);
      const u64 flow = derive_seed(spec_.seed, 0x1CA57000ull + b * 64 + s);
      // A sender whose NIC is dark at plan time can never serialize a
      // byte: arming its per-packet events only bloats the calendar (at
      // 10k hosts an incast burst is thousands of events).  Skip at plan
      // time, but keep the PLANNED totals so chaos runs compare like for
      // like; the skip is visible in its own counters.
      if (!net_.port_usable(net_.hosts()[sender]->id(), 0)) {
        packets_armed_ += packets;
        bytes_armed_ += packets * wire;
        senders_skipped_ += 1;
        packets_skipped_ += packets;
        continue;
      }
      if (spec_.flow_mode) {
        // Uncapped: the NIC line rate is the only limit, as back-to-back
        // packet serialization would be.
        arm_flow(at, sender, victim, packets * wire, packets, 0.0, flow,
                 trace);
      } else {
        // Back to back: the sender's NIC serializes the burst
        // contiguously; all of it lands on the victim's access link at
        // once.
        for (u64 p = 0; p < packets; ++p)
          arm_packet(at, sender, victim, flow, trace);
      }
    }
  }
}

}  // namespace flare::workload
