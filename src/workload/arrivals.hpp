// Packet arrival processes.  The paper's single-switch experiments generate
// packets "with a random and exponentially distributed arrival rate"
// (Section 6.4); deterministic pacing is available for the model-validation
// tests, which need the exact scenarios of Figure 5.
#pragma once

#include "common/rng.hpp"

namespace flare::workload {

enum class ArrivalKind : u8 {
  kDeterministic = 0,  ///< fixed interval
  kExponential,        ///< Poisson process with the given mean interval
};

class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalKind kind, f64 mean_interval, u64 seed)
      : kind_(kind), mean_(mean_interval), rng_(seed) {}

  /// Next interarrival gap (>= 0, same units as mean_interval).
  f64 next_gap() {
    if (kind_ == ArrivalKind::kDeterministic) return mean_;
    return rng_.exponential(mean_);
  }

  f64 mean_interval() const { return mean_; }

 private:
  ArrivalKind kind_;
  f64 mean_;
  Rng rng_;
};

}  // namespace flare::workload
