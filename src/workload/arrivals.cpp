#include "workload/arrivals.hpp"

namespace flare::workload {}
