// Multi-tenant job-mix generator: a stream of allreduce job arrivals
// (Poisson or paced, via ArrivalProcess) with randomized participant
// subsets and sizes — the "heavy concurrent traffic" input of the service
// layer.  Deterministic in the seed, like every other workload generator.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/dtype.hpp"
#include "workload/arrivals.hpp"

namespace flare::workload {

struct JobMixSpec {
  u32 jobs = 8;
  u32 hosts_min = 4;   ///< participants per job, inclusive range
  u32 hosts_max = 16;
  /// Candidate per-host reduction sizes, chosen uniformly per job.
  std::vector<u64> sizes_bytes = {256 * kKiB, 1 * kMiB, 4 * kMiB};
  core::DType dtype = core::DType::kInt32;
  ArrivalKind arrivals = ArrivalKind::kExponential;
  f64 mean_interarrival_s = 50e-6;
  u64 seed = 1;
};

struct JobArrival {
  SimTime at_ps = 0;
  std::vector<u32> host_indices;  ///< indices into net.hosts()
  u64 data_bytes = 0;
  core::DType dtype = core::DType::kInt32;
  u64 seed = 0;  ///< per-job workload seed (derive_seed of the mix seed)
};

/// Generates `spec.jobs` arrivals over a pool of `total_hosts` hosts.
/// Participant sets are distinct host indices (uniform without
/// replacement); jobs from one mix may overlap each other's hosts.
std::vector<JobArrival> make_job_mix(const JobMixSpec& spec, u32 total_hosts);

}  // namespace flare::workload
