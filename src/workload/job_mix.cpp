#include "workload/job_mix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace flare::workload {

std::vector<JobArrival> make_job_mix(const JobMixSpec& spec,
                                     u32 total_hosts) {
  FLARE_ASSERT(total_hosts >= 1);
  FLARE_ASSERT(spec.hosts_min >= 1 && spec.hosts_min <= spec.hosts_max);
  FLARE_ASSERT(!spec.sizes_bytes.empty());

  Rng rng(derive_seed(spec.seed, 0x4A4F424Dull));  // "JOBM"
  ArrivalProcess arrivals(spec.arrivals, spec.mean_interarrival_s,
                          derive_seed(spec.seed, 0x41525256ull));

  std::vector<u32> pool(total_hosts);
  std::iota(pool.begin(), pool.end(), 0);

  std::vector<JobArrival> out;
  out.reserve(spec.jobs);
  f64 t_s = 0.0;
  for (u32 j = 0; j < spec.jobs; ++j) {
    t_s += arrivals.next_gap();
    JobArrival job;
    job.at_ps = static_cast<SimTime>(std::llround(t_s * kPsPerSecond));
    const u32 lo = std::min(spec.hosts_min, total_hosts);
    const u32 hi = std::min(spec.hosts_max, total_hosts);
    const u32 p = lo + static_cast<u32>(rng.uniform_u64(hi - lo + 1));
    // Partial Fisher–Yates: the first p entries become the participant set.
    for (u32 i = 0; i < p; ++i) {
      const u64 k = i + rng.uniform_u64(total_hosts - i);
      std::swap(pool[i], pool[k]);
    }
    job.host_indices.assign(pool.begin(), pool.begin() + p);
    std::sort(job.host_indices.begin(), job.host_indices.end());
    job.data_bytes =
        spec.sizes_bytes[rng.uniform_u64(spec.sizes_bytes.size())];
    job.dtype = spec.dtype;
    job.seed = derive_seed(spec.seed, 1000 + j);
    out.push_back(std::move(job));
  }
  return out;
}

}  // namespace flare::workload
