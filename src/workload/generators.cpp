#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/assert.hpp"

namespace flare::workload {

std::vector<core::TypedBuffer> make_dense_data(u32 hosts, std::size_t elems,
                                               core::DType dtype, u64 seed) {
  std::vector<core::TypedBuffer> out;
  out.reserve(hosts);
  for (u32 h = 0; h < hosts; ++h) {
    Rng rng(derive_seed(seed, h));
    core::TypedBuffer buf(dtype, elems);
    buf.fill_random(rng);
    out.push_back(std::move(buf));
  }
  return out;
}

namespace {

/// Draws `count` distinct indices in [0, span) into `out` (which may
/// already contain indices that must not be duplicated).
void draw_distinct(Rng& rng, u32 span, std::size_t count,
                   std::unordered_set<u32>& seen, std::vector<u32>& out) {
  FLARE_ASSERT(seen.size() + count <= span);
  while (count > 0) {
    const u32 idx = static_cast<u32>(rng.uniform_u64(span));
    if (seen.insert(idx).second) {
      out.push_back(idx);
      count -= 1;
    }
  }
}

}  // namespace

std::vector<u32> sparse_block_indices(const SparseSpec& spec, u32 host,
                                      u32 block) {
  const f64 expected =
      static_cast<f64>(spec.span) * std::clamp(spec.density, 0.0, 1.0);
  // Per-host per-block Poisson-ish variation around the expectation, but
  // deterministic: jitter comes from the host/block RNG itself.
  Rng host_rng(derive_seed(derive_seed(spec.seed, 0x5A5A + host), block));
  f64 jitter = 1.0 + 0.25 * (host_rng.uniform() - 0.5);
  std::size_t nnz = static_cast<std::size_t>(expected * jitter + 0.5);
  nnz = std::min<std::size_t>(nnz, spec.span);

  const std::size_t shared_count = static_cast<std::size_t>(
      static_cast<f64>(nnz) * std::clamp(spec.overlap, 0.0, 1.0) + 0.5);

  std::unordered_set<u32> seen;
  std::vector<u32> out;
  out.reserve(nnz);
  if (shared_count > 0) {
    // The shared pool is drawn from a block-only RNG: every host picks the
    // same pool, modelling "important coordinates are important everywhere".
    Rng shared_rng(derive_seed(derive_seed(spec.seed, 0xC0DE), block));
    draw_distinct(shared_rng, spec.span, shared_count, seen, out);
  }
  if (nnz > shared_count) {
    draw_distinct(host_rng, spec.span, nnz - shared_count, seen, out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<core::SparsePair> sparse_block_pairs(const SparseSpec& spec,
                                                 u32 host, u32 block) {
  const std::vector<u32> idx = sparse_block_indices(spec, host, block);
  Rng val_rng(
      derive_seed(derive_seed(spec.seed, 0x7A1Eu + host), block));
  std::vector<core::SparsePair> out;
  out.reserve(idx.size());
  for (const u32 i : idx) {
    f64 v = val_rng.uniform(-8.0, 8.0);
    if (!core::dtype_is_float(spec.dtype)) v = std::floor(v);
    if (v == 0.0) v = 1.0;  // non-zero by construction
    out.push_back({i, v});
  }
  return out;
}

core::TypedBuffer densify(const SparseSpec& spec,
                          const std::vector<core::SparsePair>& pairs) {
  core::TypedBuffer buf(spec.dtype, spec.span);
  core::ReduceOp sum(core::OpKind::kSum);
  buf.fill_identity(sum);
  for (const auto& p : pairs) buf.set_from_f64(p.index, p.value);
  return buf;
}

std::size_t union_index_count(const SparseSpec& spec, u32 hosts, u32 block) {
  std::unordered_set<u32> all;
  for (u32 h = 0; h < hosts; ++h) {
    for (const u32 i : sparse_block_indices(spec, h, block)) all.insert(i);
  }
  return all.size();
}

}  // namespace flare::workload
