// Background cross-traffic injectors: the tenant/storage/telemetry bytes a
// production fabric carries BESIDES the allreduce trees.  Flare's
// evaluation assumes an otherwise-idle network; Canary (PAPERS.md) shows
// that once trees share links with other traffic, where a tree is embedded
// dominates its completion time.  These injectors make that congestion
// exist in the simulator, deterministically:
//
//   * on/off flows — seeded host pairs alternate exponential ON bursts
//     (packets paced at a configured rate) and OFF silences, the classic
//     heavy-tailed datacenter background;
//   * incast bursts — at seeded instants, `fanin` hosts each unload a
//     buffer at one victim host back to back, the storage/shuffle pattern
//     that builds deep queues on a single access link.
//
// Packets are ordinary host messages under a reserved proto id that no
// collective claims, so receivers drop them on arrival — they exist only
// to occupy links.  Every emission is scheduled on the event calendar from
// a single seed at arm() time and stays within [start_ps, horizon_ps], so
// runs replay bit for bit and the calendar still drains.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"

namespace flare::workload {

struct CrossTrafficSpec {
  u32 flows = 8;  ///< concurrent on/off host-pair flows
  /// Offered rate per flow while ON (half the paper's 100 Gbps links keeps
  /// one flow noticeable without starving the link alone).
  f64 flow_rate_bps = 50e9;
  u64 packet_bytes = 4096;  ///< payload per packet (plus wire overhead)
  SimTime mean_on_ps = 20 * kPsPerUs;   ///< exponential ON burst length
  SimTime mean_off_ps = 20 * kPsPerUs;  ///< exponential OFF gap
  u32 incast_bursts = 2;   ///< seeded incast events over the horizon
  u32 incast_fanin = 4;    ///< senders per incast
  u64 incast_bytes = 64 * kKiB;  ///< bytes per sender per incast
  SimTime start_ps = 0;
  SimTime horizon_ps = 200 * kPsPerUs;  ///< no emission past this time
  u64 seed = 1;
  /// Explicit flow endpoints as host indices (into net.hosts()); drawn
  /// uniformly (distinct src/dst) when empty.  Benches use this to aim
  /// congestion at specific leaf/spine links.
  std::vector<std::pair<u32, u32>> pairs;
  /// Explicit ECMP flow labels, parallel to `pairs` (derived from the seed
  /// when absent).  Combined with `pairs` this pins each background flow
  /// to a KNOWN spine — the traffic-engineering hook the adaptation bench
  /// uses to place congestion on specific links.
  std::vector<u64> flow_labels;
};

class CrossTrafficInjector {
 public:
  /// Host-message proto id of background packets.  No collective registers
  /// it, so receiving hosts drop them silently — pure link load.
  static constexpr u32 kProto = 0x7C000000u;

  CrossTrafficInjector(net::Network& net, CrossTrafficSpec spec)
      : net_(net), spec_(std::move(spec)) {}
  CrossTrafficInjector(const CrossTrafficInjector&) = delete;
  CrossTrafficInjector& operator=(const CrossTrafficInjector&) = delete;

  /// Expands the spec into concrete packet emissions on the calendar
  /// (absolute times; call before running past start_ps).  The events
  /// capture the Network, not the injector — the injector may go out of
  /// scope before the calendar runs.
  void arm();

  u64 packets_armed() const { return packets_armed_; }
  u64 bytes_armed() const { return bytes_armed_; }

  /// Attribution trace ids allocated at arm() time: one per on/off flow
  /// (index-parallel to the flows), then one per incast burst.  Lets tests
  /// and exporters see background load as first-class tenants in the
  /// per-collective link accounting.
  const std::vector<u32>& trace_ids() const { return trace_ids_; }

 private:
  void arm_packet(SimTime at, u32 src_host, u32 dst_host, u64 flow,
                  u32 trace);

  net::Network& net_;
  CrossTrafficSpec spec_;
  u64 packets_armed_ = 0;
  u64 bytes_armed_ = 0;
  std::vector<u32> trace_ids_;
};

}  // namespace flare::workload
