// Background cross-traffic injectors: the tenant/storage/telemetry bytes a
// production fabric carries BESIDES the allreduce trees.  Flare's
// evaluation assumes an otherwise-idle network; Canary (PAPERS.md) shows
// that once trees share links with other traffic, where a tree is embedded
// dominates its completion time.  These injectors make that congestion
// exist in the simulator, deterministically:
//
//   * on/off flows — seeded host pairs alternate exponential ON bursts
//     (packets paced at a configured rate) and OFF silences, the classic
//     heavy-tailed datacenter background;
//   * incast bursts — at seeded instants, `fanin` hosts each unload a
//     buffer at one victim host back to back, the storage/shuffle pattern
//     that builds deep queues on a single access link.
//
// Packets are ordinary host messages under a reserved proto id that no
// collective claims, so receivers drop them on arrival — they exist only
// to occupy links.  Every emission is scheduled on the event calendar from
// a single seed at arm() time and stays within [start_ps, horizon_ps], so
// runs replay bit for bit and the calendar still drains.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"

namespace flare::workload {

struct CrossTrafficSpec {
  u32 flows = 8;  ///< concurrent on/off host-pair flows
  /// Offered rate per flow while ON (half the paper's 100 Gbps links keeps
  /// one flow noticeable without starving the link alone).
  f64 flow_rate_bps = 50e9;
  u64 packet_bytes = 4096;  ///< payload per packet (plus wire overhead)
  SimTime mean_on_ps = 20 * kPsPerUs;   ///< exponential ON burst length
  SimTime mean_off_ps = 20 * kPsPerUs;  ///< exponential OFF gap
  u32 incast_bursts = 2;   ///< seeded incast events over the horizon
  u32 incast_fanin = 4;    ///< senders per incast
  u64 incast_bytes = 64 * kKiB;  ///< bytes per sender per incast
  SimTime start_ps = 0;
  SimTime horizon_ps = 200 * kPsPerUs;  ///< no emission past this time
  u64 seed = 1;
  /// Emit each ON burst / incast sender as ONE fluid flow (net/flow.hpp)
  /// instead of per-packet calendar events — the scale plane's switch.
  /// The seeded schedule is IDENTICAL either way (same RNG consumption,
  /// same endpoints, instants, labels, traces, and armed byte totals);
  /// only the mechanism changes: an ON burst becomes a flow of the
  /// burst's bytes capped at flow_rate_bps, an incast sender an uncapped
  /// flow of its buffer.  A flow started before horizon_ps may deliver
  /// its tail past it (packets stop exactly at the horizon).
  bool flow_mode = false;
  /// Explicit flow endpoints as host indices (into net.hosts()); drawn
  /// uniformly (distinct src/dst) when empty.  Benches use this to aim
  /// congestion at specific leaf/spine links.
  std::vector<std::pair<u32, u32>> pairs;
  /// Explicit ECMP flow labels, parallel to `pairs` (derived from the seed
  /// when absent).  Combined with `pairs` this pins each background flow
  /// to a KNOWN spine — the traffic-engineering hook the adaptation bench
  /// uses to place congestion on specific links.
  std::vector<u64> flow_labels;
};

class CrossTrafficInjector {
 public:
  /// Host-message proto id of background packets.  No collective registers
  /// it, so receiving hosts drop them silently — pure link load.
  static constexpr u32 kProto = 0x7C000000u;

  CrossTrafficInjector(net::Network& net, CrossTrafficSpec spec)
      : net_(net), spec_(std::move(spec)) {}
  CrossTrafficInjector(const CrossTrafficInjector&) = delete;
  CrossTrafficInjector& operator=(const CrossTrafficInjector&) = delete;

  /// Expands the spec into concrete packet emissions on the calendar
  /// (absolute times; call before running past start_ps).  The events
  /// capture the Network, not the injector — the injector may go out of
  /// scope before the calendar runs.
  void arm();

  /// Planned emission totals — the SAME whether emissions were armed,
  /// carried by flows, or skipped for dead senders, so A/B runs and
  /// chaos runs compare like for like.
  u64 packets_armed() const { return packets_armed_; }
  u64 bytes_armed() const { return bytes_armed_; }
  /// Incast senders whose NIC was dark at plan time: their emissions are
  /// skipped (they could never serialize — arming them only bloated the
  /// calendar) but still counted in the planned totals above.
  u64 incast_senders_skipped() const { return senders_skipped_; }
  u64 packets_skipped() const { return packets_skipped_; }

  /// Attribution trace ids allocated at arm() time: one per on/off flow
  /// (index-parallel to the flows), then one per incast burst.  Lets tests
  /// and exporters see background load as first-class tenants in the
  /// per-collective link accounting.
  const std::vector<u32>& trace_ids() const { return trace_ids_; }

 private:
  void arm_packet(SimTime at, u32 src_host, u32 dst_host, u64 flow,
                  u32 trace);
  /// Flow-mode counterpart: one fluid flow covering `n_pkts` planned
  /// packets of the schedule (books the identical armed totals).
  void arm_flow(SimTime at, u32 src_host, u32 dst_host, u64 bytes,
                u64 n_pkts, f64 rate_cap_bps, u64 flow, u32 trace);

  net::Network& net_;
  CrossTrafficSpec spec_;
  u64 packets_armed_ = 0;
  u64 bytes_armed_ = 0;
  u64 senders_skipped_ = 0;
  u64 packets_skipped_ = 0;
  std::vector<u32> trace_ids_;
};

}  // namespace flare::workload
