// Synthetic workload generators.
//
// Dense vectors are uniform random values scaled so integer reductions never
// overflow across hosts.  Sparse blocks model the index structure that
// governs in-network sparse allreduce performance (Section 7.1): the degree
// to which different hosts' non-zero indices OVERLAP controls both
// "densification" along the tree and hash-store collision pressure.  Real
// gradient sparsification (top-k) is highly overlapped — important
// coordinates are important on every host — so the generator exposes an
// `overlap` knob: a fraction of each block's non-zeros is drawn from a
// block-shared set, the rest privately per host.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/packet.hpp"
#include "core/typed_buffer.hpp"

namespace flare::workload {

/// P dense vectors of `elems` elements.
std::vector<core::TypedBuffer> make_dense_data(u32 hosts, std::size_t elems,
                                               core::DType dtype, u64 seed);

struct SparseSpec {
  u32 span = 1280;        ///< index space per block
  f64 density = 0.10;     ///< expected fraction of non-zeros per host
  f64 overlap = 0.0;      ///< fraction of non-zeros drawn from a shared set
  core::DType dtype = core::DType::kFloat32;
  u64 seed = 1;
};

/// The sorted, unique non-zero indices of `host`'s data in `block`.
/// Deterministic in (spec.seed, host, block).
std::vector<u32> sparse_block_indices(const SparseSpec& spec, u32 host,
                                      u32 block);

/// (index, value) pairs for one host/block; values are uniform in
/// [-8, 8) \ {0} (and integer-floored for integer dtypes).
std::vector<core::SparsePair> sparse_block_pairs(const SparseSpec& spec,
                                                 u32 host, u32 block);

/// Scatters `pairs` into a dense TypedBuffer of `span` elements
/// (absent indices = 0) — the reference-side representation.
core::TypedBuffer densify(const SparseSpec& spec,
                          const std::vector<core::SparsePair>& pairs);

/// Number of distinct indices across all hosts for one block (the "ideal"
/// fully-aggregated pair count, denominator of the extra-traffic metric).
std::size_t union_index_count(const SparseSpec& spec, u32 hosts, u32 block);

}  // namespace flare::workload
