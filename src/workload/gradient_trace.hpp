// Synthetic sparsified-gradient traces (substitute for the paper's ResNet50
// SparCML trace, Section 7.1 / Figure 15).
//
// The paper's trace: 64 hosts, a 100 MiB fp32 gradient per host, split into
// buckets of 512 values, top-1 value per bucket transmitted (~0.2 % density).
// This generator reproduces that structure synthetically:
//
//   * the model is a sequence of "layers" with log-normal magnitude scales
//     (gradient magnitude varies by orders of magnitude across layers);
//   * within each bucket, every host transmits exactly `top_k` indices;
//   * with probability `overlap` a host picks the bucket's shared "hot"
//     index (top-k selections agree strongly across data-parallel workers);
//     otherwise it picks a private random index in the bucket.
//
// The substitution preserves what Flare's performance depends on: density,
// per-bucket packetization, and the cross-host index-overlap profile that
// drives densification along the reduction tree.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/packet.hpp"

namespace flare::workload {

struct GradientTraceSpec {
  u64 model_elems = 25 * 1024 * 1024;  ///< fp32 elements (100 MiB)
  u32 bucket = 512;                    ///< sparsification bucket size
  u32 top_k = 1;                       ///< values kept per bucket
  f64 overlap = 0.85;                  ///< P(host picks the shared hot index)
  u32 layers = 50;                     ///< magnitude-scale segments
  u64 seed = 7;
};

class GradientTrace {
 public:
  GradientTrace(GradientTraceSpec spec, u32 hosts);

  u32 hosts() const { return hosts_; }
  u64 buckets() const { return buckets_; }
  f64 density() const;

  /// Sparse pairs of `host` restricted to buckets [first, first+count);
  /// indices are relative to the window start.  Used to chop the trace into
  /// reduction blocks.
  std::vector<core::SparsePair> window_pairs(u32 host, u64 first_bucket,
                                             u64 bucket_count) const;

  /// Distinct indices across all hosts in the window (densification probe).
  std::size_t window_union(u64 first_bucket, u64 bucket_count) const;

 private:
  u32 hot_index(u64 bucket) const;     ///< shared per-bucket hot offset
  f64 layer_scale(u64 bucket) const;

  GradientTraceSpec spec_;
  u32 hosts_;
  u64 buckets_;
  std::vector<f64> layer_scales_;
};

}  // namespace flare::workload
