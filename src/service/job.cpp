#include "service/job.hpp"

namespace flare::service {

std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kInNetwork: return "in-network";
    case JobState::kFallback: return "fallback";
    case JobState::kDone: return "done";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

}  // namespace flare::service
