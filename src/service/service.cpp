#include "service/service.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "place/optimizer.hpp"

namespace flare::service {

namespace {

/// Tracer row convention: service job rows live above every collective's
/// trace-id row (tid = kJobTidBase + job id).
constexpr u64 kJobTidBase = 1000000;
/// The placement plane gets its own tracer row, above the job rows.
constexpr u64 kPlaceTid = 2000000;

}  // namespace

// The service is pure orchestration: admission order, queueing, timeouts,
// fallback decisions and telemetry.  The data planes (in-network dense
// engines, host ring) live in coll::Communicator; each job runs as a
// persistent request (in-network) or a nonblocking ring collective on the
// shared calendar.

AllreduceService::AllreduceService(net::Network& net, ServiceOptions opt)
    : net_(net), opt_(opt), manager_(net),
      cache_(opt.tree_cache_capacity) {
  // Slots freed by a completed job re-trigger admission for queued jobs.
  manager_.set_release_listener([this](u32) {
    if (!queue_.empty()) schedule_drain();
  });
  // Count every fabric disruption the service lives through; the per-job
  // recovery itself happens inside the Communicator data planes.
  fault_listener_ = net_.add_fault_listener(
      [this](const net::FaultNotice&) { telemetry_.faults_seen += 1; });
  if (opt_.monitor != nullptr) {
    // Congestion plane: the shared manager embeds with the monitor's link
    // costs, and cached embeddings go stale once their links run hot.
    net::CongestionMonitor* monitor = opt_.monitor;
    manager_.set_link_cost([monitor](net::NodeId node, u32 port) {
      return monitor->edge_cost(node, port);
    });
    const bool stale_check = opt_.cache_stale_above > 0.0;
    if (stale_check || opt_.place_period_ps > 0) {
      const f64 bound = opt_.cache_stale_above;
      cache_.set_validator(
          [this, monitor, bound, stale_check](const coll::ReductionTree& t) {
            if (stale_check &&
                coll::tree_max_congestion(*monitor, t) > bound) {
              return false;
            }
            // A cached embedding crossing a switch the last PlacementPlan
            // moved jobs ONTO is stale by fiat: serving it would re-create
            // exactly the contention the plan just cleared.
            return !place::tree_conflicts(t, plan_target_switches_);
          });
    }
  }
}

AllreduceService::~AllreduceService() {
  net_.remove_fault_listener(fault_listener_);
}

coll::CollectiveOptions AllreduceService::descriptor_for(
    const JobSpec& spec) const {
  coll::CollectiveOptions desc = spec.desc;
  // The service calibrates the fabric-wide aggregation rate centrally.
  desc.switch_service_bps = opt_.switch_service_bps;
  if (opt_.retransmit_timeout_ps > 0) {
    desc.retransmit_timeout_ps = opt_.retransmit_timeout_ps;
    desc.max_retransmits = opt_.max_retransmits;
  }
  if (opt_.monitor != nullptr && opt_.migrate_above > 0.0) {
    desc.migrate_above = opt_.migrate_above;
    desc.migrate_improvement = opt_.migrate_improvement;
  }
  return desc;
}

bool AllreduceService::is_sparse(const JobSpec& spec) {
  return spec.desc.sparse.pairs != nullptr ||
         spec.desc.sparse.epoch_pairs != nullptr;
}

u32 AllreduceService::submit(JobSpec spec) {
  FLARE_ASSERT_MSG(!spec.participants.empty(),
                   "job needs at least one participant");
  const u32 job = static_cast<u32>(records_.size());
  JobRecord rec;
  rec.job_id = job;
  rec.arrival_ps = net_.sim().now();
  rec.participants = static_cast<u32>(spec.participants.size());
  rec.data_bytes = spec.desc.data_bytes;
  records_.push_back(rec);
  specs_.push_back(std::move(spec));
  telemetry_.submitted += 1;
  if (obs::Tracer* tr = net_.tracer()) {
    tr->name_thread(kJobTidBase + job, "job-" + std::to_string(job));
    tr->begin(kJobTidBase + job, "job", net_.sim().now(), "service");
  }

  if (specs_[job].desc.algorithm == coll::Algorithm::kHostRing ||
      specs_[job].desc.algorithm == coll::Algorithm::kSparcml) {
    // The tenant explicitly requested a host data plane: no admission,
    // and not a fallback (runs even with fallback_to_host disabled).
    start_host_plane(job, RingReason::kRequested);
    return job;
  }

  if (!congestion_gate_open()) {
    // Monitor-driven admission backpressure: don't place new work onto a
    // saturated fabric — QUEUE (never reject) and re-check once the EWMA
    // windows have turned.  The queue timeout still bounds the wait.
    telemetry_.congestion_deferrals += 1;
    if (queue_.size() >= opt_.max_queue) {
      telemetry_.queue_overflows += 1;
      start_fallback_or_reject(job, RingReason::kOverflow);
    } else {
      enqueue(job);
      schedule_congestion_recheck();
    }
    return job;
  }

  bool feasible = false;
  if (try_admit(job, &feasible)) return job;
  if (!feasible && opt_.max_root_candidates == 0) {
    // Every root was tried and every reachable tree crosses a switch with a
    // zero memory partition: this job can NEVER run in-network.  Queueing
    // it would deadlock the FIFO (nothing will ever release a slot for it).
    telemetry_.inadmissible += 1;
    start_fallback_or_reject(job, RingReason::kInadmissible);
  } else if (queue_.size() >= opt_.max_queue) {
    telemetry_.queue_overflows += 1;
    start_fallback_or_reject(job, RingReason::kOverflow);
  } else {
    enqueue(job);
  }
  return job;
}

void AllreduceService::submit_at(SimTime at, JobSpec spec) {
  net_.sim().schedule_at(
      at, [this, spec = std::move(spec)]() mutable { submit(std::move(spec)); });
}

bool AllreduceService::try_admit(u32 job, bool* feasible) {
  const JobSpec& spec = specs_[job];
  JobRecord& rec = records_[job];
  // The congestion-aware root policy (and the monitor-backed link costs
  // behind install) must read the fabric as it is at THIS admission round.
  if (opt_.monitor != nullptr) opt_.monitor->sample();
  std::vector<net::NodeId> roots =
      candidate_roots(opt_.root_policy, net_, rr_cursor_++, opt_.monitor);
  if (opt_.max_root_candidates > 0 &&
      roots.size() > opt_.max_root_candidates) {
    roots.resize(opt_.max_root_candidates);
  }
  coll::CollectiveOptions desc = descriptor_for(spec);
  // Explicitly in-network: the fallback decision is the SERVICE's (queue
  // first, host plane only on timeout/overflow), not the Communicator's.
  desc.algorithm = is_sparse(spec) ? coll::Algorithm::kFlareSparse
                                   : coll::Algorithm::kFlareDense;

  auto aj = std::make_unique<ActiveJob>(
      net_, spec.participants,
      coll::CommunicatorConfig{&manager_, &cache_, std::move(roots),
                               opt_.monitor});
  aj->desc = desc;
  aj->pc = aj->comm.persistent(desc);
  const coll::InstallReport& report = aj->pc.install_report();
  rec.admission_attempts += report.attempts;
  telemetry_.admission_attempts += report.attempts;
  if (feasible != nullptr) *feasible = report.any_feasible;
  if (!aj->pc.ok()) return false;

  rec.state = JobState::kInNetwork;
  rec.in_network = true;
  rec.start_ps = net_.sim().now();
  if (obs::Tracer* tr = net_.tracer()) {
    tr->instant(kJobTidBase + job, "admitted", rec.start_ps, "service");
  }
  rec.tree_cache_hit = report.cache_hit;
  rec.tree_root = aj->pc.tree().root;
  rec.tree_switches = static_cast<u32>(aj->pc.tree().switches.size());
  telemetry_.in_network += 1;
  telemetry_.queue_delay_s.add(rec.queue_delay_seconds());
  aj->handle = aj->pc.start(
      [this, job](const coll::CollectiveResult& res) {
        on_job_done(job, res);
      });
  jobs_.emplace(job, std::move(aj));
  ensure_place_armed();
  return true;
}

void AllreduceService::enqueue(u32 job) {
  queue_.push_back(job);
  telemetry_.peak_queue_len =
      std::max<u64>(telemetry_.peak_queue_len, queue_.size());
  if (opt_.queue_timeout_ps == 0) return;
  net_.sim().schedule_after(opt_.queue_timeout_ps, [this, job] {
    if (records_[job].state != JobState::kQueued) return;
    const auto it = std::find(queue_.begin(), queue_.end(), job);
    FLARE_ASSERT(it != queue_.end());
    queue_.erase(it);
    records_[job].timed_out = true;
    telemetry_.timed_out += 1;
    start_fallback_or_reject(job, RingReason::kTimeout);
  });
}

void AllreduceService::schedule_drain() {
  if (drain_scheduled_) return;
  drain_scheduled_ = true;
  net_.sim().schedule_after(0, [this] { drain_queue(); });
}

bool AllreduceService::congestion_gate_open() {
  if (opt_.monitor == nullptr || opt_.admit_below_congestion <= 0.0) {
    return true;
  }
  opt_.monitor->sample();
  return opt_.monitor->mean_congestion() <= opt_.admit_below_congestion;
}

void AllreduceService::schedule_congestion_recheck() {
  if (recheck_scheduled_) return;
  recheck_scheduled_ = true;
  net_.sim().schedule_after(opt_.monitor->options().period_ps, [this] {
    recheck_scheduled_ = false;
    drain_queue();
  });
}

void AllreduceService::drain_queue() {
  drain_scheduled_ = false;
  if (!queue_.empty() && !congestion_gate_open()) {
    // Backpressure holds the WHOLE queue (strict FIFO anyway): check again
    // one monitor period later.
    telemetry_.congestion_deferrals += 1;
    schedule_congestion_recheck();
    return;
  }
  // Strict FIFO by default: the head blocks the rest — a released slot
  // goes to the longest-waiting job, never to a smaller job that could
  // overtake it.  With admission scoring on, the cheapest MARGINAL
  // worst-edge heat overtakes instead (pick_queued_index).
  while (!queue_.empty()) {
    const std::size_t pick = pick_queued_index();
    const u32 job = queue_[pick];
    records_[job].requeue_retries += 1;
    telemetry_.requeue_retries += 1;
    if (!try_admit(job)) break;
    if (pick != 0) telemetry_.admission_reorders += 1;
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  }
}

std::size_t AllreduceService::pick_queued_index() {
  if (!opt_.admission_scoring || opt_.monitor == nullptr ||
      queue_.size() < 2) {
    return 0;
  }
  // Score every queued job's marginal worst-edge heat against one freeze
  // of the active fleet; cheapest wins, ties keep FIFO order (strict
  // less).  An infeasible job scores +inf and never overtakes.
  opt_.monitor->sample();
  const place::CostSnapshot snap = freeze_active();
  place::OptimizerOptions popt;
  popt.seed = opt_.place_seed;
  place::PlacementOptimizer scorer(net_, popt);
  std::size_t best_i = 0;
  f64 best = std::numeric_limits<f64>::infinity();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const f64 s =
        scorer.admission_score(snap, specs_[queue_[i]].participants);
    if (s < best) {
      best = s;
      best_i = i;
    }
  }
  return best_i;
}

place::CostSnapshot AllreduceService::freeze_active() {
  std::vector<place::JobInput> inputs;
  inputs.reserve(jobs_.size());
  // Ascending job id (jobs_ is an unordered_map — never iterate it where
  // order matters).
  for (u32 job = 0; job < static_cast<u32>(records_.size()); ++job) {
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) continue;
    ActiveJob& aj = *it->second;
    if (!aj.pc.ok() || !aj.pc.in_network()) continue;  // host-plane jobs
    place::JobInput in;
    in.job_id = job;
    in.trace = aj.pc.trace();
    in.data_bytes = specs_[job].desc.data_bytes;
    in.participants = specs_[job].participants;
    in.tree = aj.pc.tree();
    inputs.push_back(std::move(in));
  }
  return place::CostSnapshot::freeze(net_, *opt_.monitor, std::move(inputs));
}

void AllreduceService::ensure_place_armed() {
  if (opt_.place_period_ps == 0 || opt_.monitor == nullptr || place_armed_) {
    return;
  }
  place_armed_ = true;
  net_.sim().schedule_after(opt_.place_period_ps, [this] {
    place_armed_ = false;
    run_place_round();
  });
}

void AllreduceService::run_place_round() {
  // An empty fleet disarms the plane; the next successful admission
  // re-arms it (ensure_place_armed in try_admit).
  if (jobs_.empty()) return;
  opt_.monitor->sample();  // freeze the fabric as it is NOW
  const place::CostSnapshot snap = freeze_active();
  if (snap.jobs().size() >= 2) {  // one job has nothing to co-place against
    place::OptimizerOptions popt;
    popt.seed = derive_seed(opt_.place_seed, place_round_);
    popt.iterations = opt_.place_iterations;
    place::PlacementOptimizer optimizer(net_, popt);
    obs::Tracer* tr = net_.tracer();
    const SimTime t0 = net_.sim().now();
    if (tr != nullptr) {
      tr->name_thread(kPlaceTid, "placement");
      tr->begin(kPlaceTid, "optimize", t0, "place");
    }
    place::PlacementPlan plan = optimizer.optimize(snap);
    if (tr != nullptr) tr->end(kPlaceTid, net_.sim().now());
    if (place_grade_pending_) {
      // This round's as-is objective IS the realized cost of the last
      // plan: the fabric was re-measured after its moves applied.
      telemetry_.place.last_cost_realized = plan.cost_before;
      place_grade_pending_ = false;
    }
    telemetry_.place.rounds += 1;
    telemetry_.place.moves_proposed += plan.proposed;
    telemetry_.place.moves_rejected +=
        place::filter_moves(plan, opt_.place_min_gain);
    u32 staged = 0;
    std::vector<net::NodeId> targets;
    for (const place::PlannedMove& mv : plan.moves) {
      const auto it = jobs_.find(mv.job_id);
      if (it == jobs_.end()) continue;  // finished since the freeze
      // Staged onto the session; applied at its next iteration boundary
      // through the break-before-make fresh-id path (TreeOpBase).
      if (!it->second->pc.plan_migration(mv.tree)) continue;
      staged += 1;
      for (const coll::TreeSwitchEntry& e : mv.tree.switches) {
        targets.push_back(e.sw->id());
      }
      if (tr != nullptr) {
        tr->instant(kPlaceTid, "plan-move", net_.sim().now(), "place");
      }
    }
    telemetry_.place.moves_planned += staged;
    if (staged > 0) {
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
      plan_target_switches_ = std::move(targets);
      telemetry_.place.last_cost_before = plan.cost_before;
      telemetry_.place.last_cost_predicted = plan.cost_after;
      place_grade_pending_ = true;
    }
  }
  place_round_ += 1;
  ensure_place_armed();
}

void AllreduceService::start_fallback_or_reject(u32 job, RingReason why) {
  const JobSpec& spec = specs_[job];
  // Dense allreduce falls back to the ring; sparse to SparCML (recursive
  // doubling: power-of-two groups only).
  const bool can_host =
      opt_.fallback_to_host &&
      spec.desc.kind == coll::CollectiveKind::kAllreduce &&
      (!is_sparse(spec) || std::has_single_bit(spec.participants.size()));
  if (!can_host) {
    JobRecord& rec = records_[job];
    rec.state = JobState::kRejected;
    rec.start_ps = rec.finish_ps = net_.sim().now();
    telemetry_.rejected += 1;
    if (obs::Tracer* tr = net_.tracer()) {
      tr->instant(kJobTidBase + job, "rejected", rec.finish_ps, "service");
      tr->end(kJobTidBase + job, rec.finish_ps);
    }
    return;
  }
  start_host_plane(job, why);
}

void AllreduceService::start_host_plane(u32 job, RingReason why) {
  const JobSpec& spec = specs_[job];
  FLARE_ASSERT_MSG(spec.desc.kind == coll::CollectiveKind::kAllreduce,
                   "the host data planes serve allreduce only");
  JobRecord& rec = records_[job];
  rec.state = JobState::kFallback;
  rec.in_network = false;
  rec.start_ps = net_.sim().now();
  if (obs::Tracer* tr = net_.tracer()) {
    tr->instant(kJobTidBase + job, "host-plane", rec.start_ps, "service");
  }
  switch (why) {
    case RingReason::kRequested: telemetry_.host_requested += 1; break;
    case RingReason::kTimeout: telemetry_.timeout_fallbacks += 1; break;
    case RingReason::kOverflow: telemetry_.overflow_fallbacks += 1; break;
    case RingReason::kInadmissible:
      telemetry_.inadmissible_fallbacks += 1;
      break;
  }
  telemetry_.queue_delay_s.add(rec.queue_delay_seconds());

  coll::CollectiveOptions desc = descriptor_for(spec);
  desc.algorithm = is_sparse(spec) ? coll::Algorithm::kSparcml
                                   : coll::Algorithm::kHostRing;
  auto aj = std::make_unique<ActiveJob>(net_, spec.participants,
                                        coll::CommunicatorConfig{});
  aj->desc = desc;
  ActiveJob* raw = aj.get();
  jobs_.emplace(job, std::move(aj));
  raw->handle = raw->comm.start(
      desc, [this, job](const coll::CollectiveResult& res) {
        on_job_done(job, res);
      });
}

void AllreduceService::on_job_done(u32 job,
                                   const coll::CollectiveResult& res) {
  JobRecord& rec = records_[job];
  // Per-iteration bookkeeping (a job is a SEQUENCE of iterations since the
  // congestion plane landed; single-iteration jobs take the same path).
  rec.iterations_done += 1;
  rec.ok = rec.iterations_done == 1 ? res.ok : (rec.ok && res.ok);
  rec.max_abs_err = std::max(rec.max_abs_err, res.max_abs_err);
  rec.exact = rec.ok && rec.max_abs_err == 0.0;
  rec.retransmits += res.retransmits;
  rec.recoveries += res.recoveries;
  rec.migrations += res.migrations;
  rec.planned_migrations += res.planned_migrations;
  rec.spill_packets += res.spill_packets;
  rec.host_pairs_sent += res.host_pairs_sent;
  rec.down_pairs += res.down_pairs;
  rec.dense_switchovers += res.dense_switchovers;
  rec.pairs_exchanged += res.pairs_exchanged;
  telemetry_.retransmits += res.retransmits;
  telemetry_.migrations += res.migrations;
  telemetry_.planned_migrations += res.planned_migrations;
  if (res.fell_back) rec.fell_back = true;

  const u32 want = std::max<u32>(1, specs_[job].iterations);
  if (res.ok && rec.iterations_done < want) {
    // More iterations: restart off this callback's stack (the completing
    // op is still finishing under our feet), after the job's duty-cycle
    // gap when one is configured.
    net_.sim().schedule_after(specs_[job].iteration_gap_ps,
                              [this, job] { start_next_iteration(job); });
    return;
  }

  rec.state = JobState::kDone;
  rec.finish_ps = net_.sim().now();
  if (obs::Tracer* tr = net_.tracer()) {
    tr->end(kJobTidBase + job, rec.finish_ps);
  }
  if (rec.fell_back) {
    // Admitted in-network but SOME iteration finished on the ring: a
    // mid-run fault ate the tree.  Distinct from admission fallbacks in
    // the telemetry.
    rec.in_network = false;
    telemetry_.fault_fallbacks += 1;
  } else if (rec.recoveries > 0 || rec.retransmits > 0) {
    telemetry_.jobs_recovered += 1;
  }
  (rec.in_network ? telemetry_.in_network_service_s
                  : telemetry_.fallback_service_s)
      .add(rec.service_seconds());
  // Destroy the ActiveJob (and release its switch state) off this
  // callback's stack: the job's own op is still executing it.  The release
  // listener then re-triggers admission for queued jobs.
  net_.sim().schedule_after(0, [this, job] {
    jobs_.erase(job);
#if FLARE_VALIDATE_ENABLED
    // Job teardown is the service plane's quiescent point: the install
    // was just released, so the fabric-wide conservation and occupancy
    // invariants must hold right now.
    net_.validate_audit();
#endif
  });
}

void AllreduceService::start_next_iteration(u32 job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  ActiveJob& aj = *it->second;
  auto done = [this, job](const coll::CollectiveResult& res) {
    on_job_done(job, res);
  };
  if (aj.pc.ok()) {
    // Persistent request: seed bumping, engine reset, fault reinstall and
    // congestion migration all happen inside start().
    aj.handle = aj.pc.start(done);
    return;
  }
  // Ring job: one-shot per iteration with the bumped seed.
  coll::CollectiveOptions desc = aj.desc;
  desc.seed += records_[job].iterations_done;
  aj.handle = aj.comm.start(desc, done);
}

}  // namespace flare::service
