#include "service/service.hpp"

#include <algorithm>
#include <cstring>

#include "core/policy.hpp"
#include "core/staggered.hpp"
#include "workload/generators.hpp"

namespace flare::service {

namespace {

/// Host-fallback wire protocol id: one per job so concurrent fallbacks over
/// shared hosts never mix fragments.  Job ids are never recycled, so the
/// full id goes into the proto — masking it would let two long-lived jobs
/// 2^16 apart collide and cross their ring traffic.
u32 fallback_proto(u32 job) { return 0x40000000u + job; }

}  // namespace

// ========================================================== in-network ====
// Per-job driver of the Flare in-network dense allreduce, event-driven so
// many jobs share one calendar (the standalone coll::run_flare_dense owns
// the whole event loop and cannot).

struct AllreduceService::InNetRun {
  AllreduceService& svc;
  u32 job;
  core::AllreduceConfig cfg;
  coll::ReductionTree tree;

  core::ReduceOp op;
  u64 elems_total = 0;
  u32 elems_per_pkt = 0;
  u32 nb = 0;      ///< number of blocks
  u32 window = 0;  ///< per-host in-flight block cap
  std::vector<core::TypedBuffer> host_data;
  core::TypedBuffer expected;

  struct HostRun {
    net::Host* host = nullptr;
    core::TypedBuffer result;
    std::vector<u32> schedule;
    std::size_t next = 0;
    u32 outstanding = 0;
    u64 blocks_done = 0;
    std::vector<bool> block_done;
  };
  std::vector<HostRun> runs;
  u32 hosts_done = 0;
  bool finished = false;

  InNetRun(AllreduceService& service, u32 job_id, core::AllreduceConfig c,
           coll::ReductionTree t)
      : svc(service), job(job_id), cfg(c), tree(std::move(t)),
        op(specs().op) {}

  const JobSpec& specs() const { return svc.specs_[job]; }

  u32 block_elems(u32 b) const {
    const u64 first = static_cast<u64>(b) * elems_per_pkt;
    return static_cast<u32>(
        std::min<u64>(elems_per_pkt, elems_total - first));
  }

  void start() {
    const JobSpec& spec = specs();
    const u32 P = static_cast<u32>(spec.participants.size());
    const u32 esize = core::dtype_size(spec.dtype);
    elems_total = std::max<u64>(1, spec.data_bytes / esize);
    elems_per_pkt = cfg.elems_per_packet;
    nb = static_cast<u32>((elems_total + elems_per_pkt - 1) / elems_per_pkt);
    window = std::max(1u, spec.window_blocks);

    host_data = workload::make_dense_data(P, elems_total, spec.dtype,
                                          spec.seed);
    expected = core::reference_reduce(host_data, op);

    runs.resize(P);
    for (u32 h = 0; h < P; ++h) {
      HostRun& hr = runs[h];
      hr.host = spec.participants[h];
      hr.result = core::TypedBuffer(spec.dtype, elems_total);
      hr.schedule = core::send_schedule(h, P, nb, core::SendOrder::kAligned);
      hr.block_done.assign(nb, false);
      hr.host->set_reduce_handler(
          cfg.id, [this, h](const core::Packet& pkt) { on_down(h, pkt); });
    }
    for (u32 h = 0; h < P; ++h) try_send(h);
  }

  void try_send(u32 h) {
    HostRun& hr = runs[h];
    while (hr.outstanding < window && hr.next < hr.schedule.size()) {
      const u32 b = hr.schedule[hr.next++];
      const u64 first = static_cast<u64>(b) * elems_per_pkt;
      core::Packet p = core::make_dense_packet(
          cfg.id, b, tree.host_child_index[hr.host->host_index()],
          host_data[h].at_byte(first), block_elems(b), cfg.dtype);
      net::NetPacket np;
      np.kind = net::PacketKind::kReduceUp;
      np.allreduce_id = cfg.id;
      np.wire_bytes = p.wire_bytes();
      np.reduce = std::make_shared<const core::Packet>(std::move(p));
      hr.outstanding += 1;
      hr.host->send(std::move(np));
    }
  }

  void on_down(u32 h, const core::Packet& pkt) {
    HostRun& me = runs[h];
    const u32 b = pkt.hdr.block_id;
    FLARE_ASSERT(b < nb);
    if (me.block_done[b]) return;  // duplicated multicast replica
    me.block_done[b] = true;
    const u64 first = static_cast<u64>(b) * elems_per_pkt;
    FLARE_ASSERT(pkt.hdr.elem_count == block_elems(b));
    std::memcpy(me.result.at_byte(first), pkt.payload.data(),
                pkt.payload.size());
    me.blocks_done += 1;
    me.outstanding -= 1;
    if (me.blocks_done == nb) hosts_done += 1;
    try_send(h);
    if (hosts_done == runs.size() && !finished) {
      finished = true;
      // Finalize off this packet's call stack: the handler being destroyed
      // must not be the one currently executing.
      svc.net_.sim().schedule_after(0, [this] { finalize(); });
    }
  }

  void finalize() {
    // By the time every host holds every block, all switch-side events of
    // this reduction have run (host delivery is causally last on each
    // path), so releasing the switch state here is race-free.
    f64 err = 0.0;
    for (HostRun& hr : runs) {
      err = std::max(err, hr.result.max_abs_diff(expected));
      hr.host->clear_reduce_handler(cfg.id);
    }
    const bool ok =
        err <= core::reduce_tolerance(cfg.dtype,
                                      static_cast<u32>(runs.size()));
    svc.complete(job, ok, err == 0.0, err);
    svc.manager_.uninstall(tree, cfg.id);  // fires the release listener
    svc.innet_.erase(job);                 // destroys *this
  }
};

// ======================================================= host fallback ====
// Event-driven ring (Rabenseifner) allreduce over the same network — the
// standalone coll::run_ring_allreduce, restructured so it can run alongside
// other jobs and report completion through a callback.  Fragments of one
// job never mix with another's: each job gets its own proto id and the
// service's per-host dispatcher routes by proto.

struct AllreduceService::RingRun {
  AllreduceService& svc;
  u32 job;
  u32 proto;

  core::ReduceOp op;
  core::DType dtype = core::DType::kFloat32;
  u32 esize = 4;
  u64 elems_total = 0;
  u64 mtu = 4096;
  u32 P = 0;
  core::TypedBuffer expected;

  enum class Phase : u8 { kScatterReduce, kAllGather, kDone };

  struct Partial {
    u32 frags = 0;
    std::shared_ptr<const core::TypedBuffer> data;
  };
  struct RHost {
    net::Host* host = nullptr;
    core::TypedBuffer vec;  ///< working vector (input, then result)
    Phase phase = Phase::kScatterReduce;
    u32 step = 0;
    std::unordered_map<u32, Partial> inbox;
  };
  std::vector<RHost> runs;
  u32 hosts_done = 0;
  bool finished = false;

  RingRun(AllreduceService& service, u32 job_id)
      : svc(service), job(job_id), proto(fallback_proto(job_id)),
        op(svc.specs_[job_id].op) {}

  u64 chunk_begin(u32 c) const {
    const u64 base = elems_total / P;
    const u64 rem = elems_total % P;
    return static_cast<u64>(c) * base + std::min<u64>(c, rem);
  }
  u64 chunk_elems(u32 c) const { return chunk_begin(c + 1) - chunk_begin(c); }

  static u32 make_tag(Phase phase, u32 step) {
    return (phase == Phase::kAllGather ? 0x10000u : 0u) | step;
  }

  void start() {
    const JobSpec& spec = svc.specs_[job];
    P = static_cast<u32>(spec.participants.size());
    dtype = spec.dtype;
    esize = core::dtype_size(dtype);
    elems_total = std::max<u64>(1, spec.data_bytes / esize);
    mtu = spec.mtu_bytes;

    auto host_data =
        workload::make_dense_data(P, elems_total, dtype, spec.seed);
    expected = core::reference_reduce(host_data, op);

    runs.resize(P);
    for (u32 h = 0; h < P; ++h) {
      runs[h].host = spec.participants[h];
      runs[h].vec = std::move(host_data[h]);
    }
    if (P == 1) {
      finished = true;
      svc.net_.sim().schedule_after(0, [this] { finalize(); });
      return;
    }
    // Kick off: every host sends its own chunk h for scatter-reduce step 0.
    for (u32 h = 0; h < P; ++h)
      send_chunk(h, h, Phase::kScatterReduce, 0);
  }

  void send_chunk(u32 h, u32 c, Phase phase, u32 step) {
    RHost& hr = runs[h];
    const u32 dst = (h + 1) % P;
    const u64 elems = chunk_elems(c);
    const u64 bytes = elems * esize;
    const u32 frags =
        std::max<u32>(1, static_cast<u32>((bytes + mtu - 1) / mtu));
    auto snapshot = std::make_shared<core::TypedBuffer>(dtype, elems);
    std::memcpy(snapshot->data(), hr.vec.at_byte(chunk_begin(c)), bytes);
    for (u32 f = 0; f < frags; ++f) {
      auto msg = std::make_shared<net::HostMsg>();
      msg->src_host = h;
      msg->dst_host = dst;  ///< job-local rank of the receiver
      msg->proto = proto;
      msg->tag = make_tag(phase, step);
      msg->seq = f;
      msg->seq_count = frags;
      if (f + 1 == frags) msg->dense = snapshot;
      net::NetPacket np;
      np.kind = net::PacketKind::kHostMsg;
      np.dst_node = runs[dst].host->id();
      // One flow per (job, ring edge): FIFO along one ECMP path.
      np.flow = (static_cast<u64>(proto) << 16) | h;
      const u64 frag_bytes = std::min<u64>(mtu, bytes - f * mtu);
      np.wire_bytes = frag_bytes + core::kPacketWireOverhead;
      np.msg = std::move(msg);
      hr.host->send(std::move(np));
    }
  }

  void on_msg(const net::HostMsg& msg) {
    if (finished) return;
    const u32 h = msg.dst_host;
    FLARE_ASSERT(h < P);
    RHost& hr = runs[h];
    Partial& partial = hr.inbox[msg.tag];
    partial.frags += 1;
    if (msg.dense) partial.data = msg.dense;
    if (partial.frags == msg.seq_count) advance(h);
  }

  void advance(u32 h) {
    RHost& hr = runs[h];
    while (hr.phase != Phase::kDone) {
      const u32 tag = make_tag(hr.phase, hr.step);
      auto it = hr.inbox.find(tag);
      if (it == hr.inbox.end() || it->second.frags == 0 ||
          it->second.data == nullptr) {
        return;  // expected message not fully here yet
      }
      const Partial& partial = it->second;
      if (hr.phase == Phase::kScatterReduce) {
        const u32 c = (h + P - hr.step - 1) % P;
        FLARE_ASSERT(partial.data->size() == chunk_elems(c));
        op.apply(dtype, hr.vec.at_byte(chunk_begin(c)),
                 partial.data->data(), chunk_elems(c));
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P - 1) {
          send_chunk(h, (h + P - hr.step) % P, Phase::kScatterReduce,
                     hr.step);
        } else {
          hr.phase = Phase::kAllGather;
          hr.step = 0;
          send_chunk(h, (h + 1) % P, Phase::kAllGather, 0);
        }
      } else {
        const u32 c = (h + P - hr.step) % P;
        FLARE_ASSERT(partial.data->size() == chunk_elems(c));
        std::memcpy(hr.vec.at_byte(chunk_begin(c)), partial.data->data(),
                    chunk_elems(c) * esize);
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P - 1) {
          send_chunk(h, c, Phase::kAllGather, hr.step);
        } else {
          hr.phase = Phase::kDone;
          hosts_done += 1;
          if (hosts_done == P && !finished) {
            finished = true;
            svc.net_.sim().schedule_after(0, [this] { finalize(); });
          }
        }
      }
    }
  }

  void finalize() {
    f64 err = 0.0;
    for (const RHost& hr : runs)
      err = std::max(err, hr.vec.max_abs_diff(expected));
    const bool ok = err <= core::reduce_tolerance(dtype, P);
    svc.complete(job, ok, err == 0.0, err);
    svc.ring_by_proto_.erase(proto);
    svc.ring_.erase(job);  // destroys *this
  }
};

// ============================================================ service =====

AllreduceService::AllreduceService(net::Network& net, ServiceOptions opt)
    : net_(net), opt_(opt), manager_(net),
      cache_(opt.tree_cache_capacity) {
  // Slots freed by a completed job re-trigger admission for queued jobs.
  manager_.set_release_listener([this](u32) {
    if (!queue_.empty()) schedule_drain();
  });
  // The fallback data plane: one dispatcher per host, routing by proto.
  for (net::Host* host : net_.hosts()) {
    host->set_msg_handler(
        [this](const net::HostMsg& msg) { on_host_msg(msg); });
  }
}

AllreduceService::~AllreduceService() = default;

core::AllreduceConfig AllreduceService::make_config(const JobSpec& spec,
                                                    u32 id) const {
  core::AllreduceConfig cfg;
  cfg.id = id;
  cfg.dtype = spec.dtype;
  cfg.op = core::ReduceOp(spec.op);
  const u32 esize = core::dtype_size(spec.dtype);
  FLARE_ASSERT(spec.packet_payload >= esize);
  cfg.elems_per_packet = static_cast<u32>(spec.packet_payload / esize);
  const core::PolicyChoice choice =
      core::select_policy(spec.data_bytes, /*reproducible=*/false);
  cfg.policy = choice.policy;
  cfg.num_buffers = choice.num_buffers;
  return cfg;
}

u32 AllreduceService::submit(JobSpec spec) {
  FLARE_ASSERT_MSG(!spec.participants.empty(),
                   "job needs at least one participant");
  const u32 job = static_cast<u32>(records_.size());
  JobRecord rec;
  rec.job_id = job;
  rec.arrival_ps = net_.sim().now();
  rec.participants = static_cast<u32>(spec.participants.size());
  rec.data_bytes = spec.data_bytes;
  records_.push_back(rec);
  specs_.push_back(std::move(spec));
  telemetry_.submitted += 1;

  bool feasible = false;
  if (try_admit(job, &feasible)) return job;
  if (!feasible && opt_.max_root_candidates == 0) {
    // Every root was tried and every reachable tree crosses a switch with a
    // zero memory partition: this job can NEVER run in-network.  Queueing
    // it would deadlock the FIFO (nothing will ever release a slot for it).
    telemetry_.inadmissible += 1;
    start_fallback_or_reject(job);
  } else if (queue_.size() >= opt_.max_queue) {
    telemetry_.queue_overflows += 1;
    start_fallback_or_reject(job);
  } else {
    enqueue(job);
  }
  return job;
}

void AllreduceService::submit_at(SimTime at, JobSpec spec) {
  net_.sim().schedule_at(
      at, [this, spec = std::move(spec)]() mutable { submit(std::move(spec)); });
}

bool AllreduceService::try_admit(u32 job, bool* feasible) {
  const JobSpec& spec = specs_[job];
  JobRecord& rec = records_[job];
  std::vector<net::NodeId> roots =
      candidate_roots(opt_.root_policy, net_, rr_cursor_++);
  if (opt_.max_root_candidates > 0 &&
      roots.size() > opt_.max_root_candidates) {
    roots.resize(opt_.max_root_candidates);
  }
  const core::AllreduceConfig cfg = make_config(spec, manager_.next_id());
  u32 attempts = 0;
  bool cache_hit = false;
  auto tree = manager_.install_with_roots(spec.participants, cfg,
                                          opt_.switch_service_bps, roots,
                                          &cache_, &attempts, &cache_hit,
                                          feasible);
  rec.admission_attempts += attempts;
  telemetry_.admission_attempts += attempts;
  if (!tree) return false;

  rec.state = JobState::kInNetwork;
  rec.in_network = true;
  rec.start_ps = net_.sim().now();
  rec.tree_cache_hit = cache_hit;
  rec.tree_root = tree->root;
  rec.tree_switches = static_cast<u32>(tree->switches.size());
  telemetry_.in_network += 1;
  telemetry_.queue_delay_s.add(rec.queue_delay_seconds());
  start_in_network(job, cfg, std::move(*tree));
  return true;
}

void AllreduceService::enqueue(u32 job) {
  queue_.push_back(job);
  telemetry_.peak_queue_len =
      std::max<u64>(telemetry_.peak_queue_len, queue_.size());
  if (opt_.queue_timeout_ps == 0) return;
  net_.sim().schedule_after(opt_.queue_timeout_ps, [this, job] {
    if (records_[job].state != JobState::kQueued) return;
    const auto it = std::find(queue_.begin(), queue_.end(), job);
    FLARE_ASSERT(it != queue_.end());
    queue_.erase(it);
    records_[job].timed_out = true;
    telemetry_.timed_out += 1;
    start_fallback_or_reject(job);
  });
}

void AllreduceService::schedule_drain() {
  if (drain_scheduled_) return;
  drain_scheduled_ = true;
  net_.sim().schedule_after(0, [this] { drain_queue(); });
}

void AllreduceService::drain_queue() {
  drain_scheduled_ = false;
  // Strict FIFO: the head blocks the rest — a released slot goes to the
  // longest-waiting job, never to a smaller job that could overtake it.
  while (!queue_.empty()) {
    const u32 job = queue_.front();
    records_[job].requeue_retries += 1;
    telemetry_.requeue_retries += 1;
    if (!try_admit(job)) break;
    queue_.pop_front();
  }
}

void AllreduceService::start_in_network(u32 job,
                                        const core::AllreduceConfig& cfg,
                                        coll::ReductionTree tree) {
  auto run = std::make_unique<InNetRun>(*this, job, cfg, std::move(tree));
  InNetRun* raw = run.get();
  innet_.emplace(job, std::move(run));
  raw->start();
}

void AllreduceService::start_fallback_or_reject(u32 job) {
  JobRecord& rec = records_[job];
  if (!opt_.fallback_to_host) {
    rec.state = JobState::kRejected;
    rec.start_ps = rec.finish_ps = net_.sim().now();
    telemetry_.rejected += 1;
    return;
  }
  rec.state = JobState::kFallback;
  rec.in_network = false;
  rec.start_ps = net_.sim().now();
  telemetry_.fallback += 1;
  telemetry_.queue_delay_s.add(rec.queue_delay_seconds());
  auto run = std::make_unique<RingRun>(*this, job);
  RingRun* raw = run.get();
  ring_.emplace(job, std::move(run));
  ring_by_proto_[raw->proto] = raw;
  raw->start();
}

void AllreduceService::on_host_msg(const net::HostMsg& msg) {
  const auto it = ring_by_proto_.find(msg.proto);
  if (it != ring_by_proto_.end()) it->second->on_msg(msg);
}

void AllreduceService::complete(u32 job, bool ok, bool exact, f64 err) {
  JobRecord& rec = records_[job];
  rec.state = JobState::kDone;
  rec.ok = ok;
  rec.exact = exact;
  rec.max_abs_err = err;
  rec.finish_ps = net_.sim().now();
  (rec.in_network ? telemetry_.in_network_service_s
                  : telemetry_.fallback_service_s)
      .add(rec.service_seconds());
}

}  // namespace flare::service
