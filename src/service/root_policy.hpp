// Root-selection policies for tree placement under contention.
//
// Where the reduction tree is rooted decides WHICH switches spend memory
// slots on a job; under concurrent tenants this is the placement decision
// that Canary (De Sensi et al., 2023) shows dominates in-network allreduce
// behaviour at scale.  Three policies:
//
//   kFixed          every job tries the same root order (switch creation
//                   order) — the static baseline; hot-spots the first
//                   switch.
//   kRoundRobin     rotates the starting root per admission round —
//                   spreads load blindly.
//   kLeastLoaded    orders candidates by current installed-reduction count
//                   (fewest first) — a contention-aware heuristic that
//                   steers trees away from occupied switches.
//   kLeastCongested orders candidates by the CongestionMonitor's
//                   worst-port EWMA utilization (coolest first) — slot
//                   occupancy says who RESERVED a switch, congestion says
//                   who is actually moving bytes through it; ties break by
//                   installed-reduction count, then creation order.
#pragma once

#include <string_view>
#include <vector>

#include "net/network.hpp"
#include "net/telemetry.hpp"

namespace flare::service {

enum class RootPolicy : u8 {
  kFixed = 0,
  kRoundRobin,
  kLeastLoaded,
  kLeastCongested,
};

std::string_view root_policy_name(RootPolicy p);

/// Ordered candidate roots for one admission round.  `cursor` is the
/// caller's monotonically increasing round counter (used by kRoundRobin).
/// `monitor` feeds kLeastCongested (which degrades to kLeastLoaded when
/// null — no signal, fall back to occupancy).
std::vector<net::NodeId> candidate_roots(
    RootPolicy policy, const net::Network& net, u64 cursor,
    const net::CongestionMonitor* monitor = nullptr);

}  // namespace flare::service
