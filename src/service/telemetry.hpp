// Aggregate service telemetry: admission counters, queue-delay and service
// time distributions (common/stats collectors), and a per-switch occupancy
// snapshot taken from the switches' Gauge instrumentation.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "net/network.hpp"

namespace flare::service {

struct ServiceTelemetry {
  u64 submitted = 0;
  u64 in_network = 0;       ///< jobs admitted to switch-based reduction
  u64 host_requested = 0;   ///< jobs that explicitly asked for the ring
  /// Admission fallbacks, counted by CAUSE.  Every ring start increments
  /// exactly one of host_requested / timeout_fallbacks / overflow_fallbacks
  /// / inadmissible_fallbacks — a job that explicitly requested the ring is
  /// never also counted as a timeout fallback (the old single `fallback`
  /// counter conflated the two).
  u64 timeout_fallbacks = 0;       ///< left the wait queue via timeout
  u64 overflow_fallbacks = 0;      ///< bounced off a full queue on arrival
  u64 inadmissible_fallbacks = 0;  ///< no switch partition can ever hold it
  u64 rejected = 0;         ///< jobs dropped (fallback disabled)
  u64 timed_out = 0;        ///< jobs that left the wait queue via timeout
  u64 queue_overflows = 0;  ///< arrivals bounced off a full queue
  u64 inadmissible = 0;     ///< jobs no switch partition can ever hold
  u64 admission_attempts = 0;  ///< install attempts across all jobs/roots
  u64 requeue_retries = 0;     ///< admission rounds re-run after a release
  u64 peak_queue_len = 0;

  // --- fault telemetry (populated when faults are injected) ---
  u64 faults_seen = 0;      ///< fabric fault notices observed by the service
  u64 retransmits = 0;      ///< blocks/chunks re-sent across all jobs
  u64 jobs_recovered = 0;   ///< jobs that completed despite faults, in plane
  u64 fault_fallbacks = 0;  ///< in-network jobs that FINISHED on the ring
                            ///< after losing their tree mid-run

  // --- congestion telemetry (populated when a monitor is configured) ---
  u64 migrations = 0;       ///< congestion-triggered tree re-embeddings
                            ///< across all jobs (see Tuning::migrate_above)
  /// Admission rounds deferred by the congestion gate
  /// (ServiceOptions::admit_below_congestion): arrivals parked in the
  /// queue plus queue drains paused while the fabric-wide mean EWMA sat
  /// above the bound.
  u64 congestion_deferrals = 0;

  // --- placement plane (populated when ServiceOptions::place_period_ps
  //     > 0 or admission_scoring is on; see src/place/) ---
  /// Optimizer-planned re-embeddings APPLIED by jobs at their iteration
  /// boundaries — disjoint from `migrations`, which counts only the ops'
  /// own reactive moves (the coplacement bench asserts the win comes from
  /// planning, not more reactive churn).
  u64 planned_migrations = 0;
  /// Scored admission (ServiceOptions::admission_scoring) picked a
  /// non-head queued job — the cheapest marginal worst-edge heat overtook
  /// strict FIFO order.
  u64 admission_reorders = 0;
  /// Per co-placement-round counters.
  struct PlacementTelemetry {
    u64 rounds = 0;          ///< optimizer rounds executed
    u64 moves_proposed = 0;  ///< SA candidate moves evaluated
    u64 moves_rejected = 0;  ///< plan moves dropped by the hysteresis gate
    u64 moves_planned = 0;   ///< plan moves staged onto live sessions
    /// Prediction grading for the LAST plan that staged moves: the
    /// objective before, the optimizer's predicted objective, and the
    /// realized objective (the NEXT round's freeze re-measures the fabric
    /// — realized/predicted quantifies model error).
    f64 last_cost_before = 0.0;
    f64 last_cost_predicted = 0.0;
    f64 last_cost_realized = 0.0;
  };
  PlacementTelemetry place;

  RunningStats queue_delay_s;        ///< submit -> start, per served job
  RunningStats in_network_service_s; ///< start -> finish, in-network jobs
  RunningStats fallback_service_s;   ///< start -> finish, fallback jobs

  /// Jobs that fell back to the host ring for ADMISSION reasons
  /// (explicitly host-requested jobs and mid-run fault fallbacks are not
  /// admission fallbacks).
  u64 fallback() const {
    return timeout_fallbacks + overflow_fallbacks + inadmissible_fallbacks;
  }
  u64 completed() const { return in_network + fallback() + host_requested; }
  /// Fraction of served jobs that had to fall back to host-based allreduce
  /// (explicitly host-requested jobs are not fallbacks).
  f64 fallback_ratio() const {
    const u64 served = completed();
    return served == 0 ? 0.0 : static_cast<f64>(fallback()) / served;
  }
};

/// One switch's occupancy over the run: peak concurrent reductions,
/// time-weighted mean, and the static partition size.
struct SwitchOccupancy {
  std::string name;
  u32 capacity = 0;      ///< max_allreduces partition
  u64 peak = 0;          ///< high-water mark of concurrent reductions
  f64 mean = 0.0;        ///< time-weighted mean occupancy
  u32 current = 0;       ///< still installed (should be 0 after drain)
};

std::vector<SwitchOccupancy> snapshot_occupancy(const net::Network& net,
                                                SimTime now);

/// Highest per-switch peak across the network.
u64 peak_switch_occupancy(const net::Network& net);

}  // namespace flare::service
