#include "service/telemetry.hpp"

#include <algorithm>

namespace flare::service {

std::vector<SwitchOccupancy> snapshot_occupancy(const net::Network& net,
                                                SimTime now) {
  std::vector<SwitchOccupancy> out;
  out.reserve(net.switches().size());
  for (const net::Switch* sw : net.switches()) {
    SwitchOccupancy o;
    o.name = sw->name();
    o.capacity = sw->max_allreduces();
    o.peak = sw->occupancy().high_water();
    o.mean = sw->occupancy().time_weighted_mean(now);
    o.current = sw->installed_reduces();
    out.push_back(std::move(o));
  }
  return out;
}

u64 peak_switch_occupancy(const net::Network& net) {
  u64 peak = 0;
  for (const net::Switch* sw : net.switches())
    peak = std::max(peak, sw->occupancy().high_water());
  return peak;
}

}  // namespace flare::service
