// Job model of the multi-tenant allreduce service: what a tenant submits
// (JobSpec), the lifecycle the control plane drives it through (JobState),
// and the per-job telemetry record the service keeps (JobRecord).
//
// Lifecycle (the paper's Section 4 admission policy, made explicit):
//
//   submit -> admitted in-network          (switch slots available)
//          -> queued  -> admitted          (slots freed by a release)
//                     -> fallback          (queue timeout: host-based ring)
//          -> fallback                     (queue full on arrival)
//          -> rejected                     (fallback disabled)
#pragma once

#include <string_view>
#include <vector>

#include "coll/options.hpp"
#include "common/units.hpp"
#include "net/network.hpp"

namespace flare::service {

/// What a tenant submits: a participant group plus the SAME unified
/// descriptor the Communicator executes (no more service-private option
/// fields).  desc.algorithm steers admission: in-network algorithms go
/// through admission control; Algorithm::kHostRing skips straight to the
/// host data plane.
struct JobSpec {
  std::vector<net::Host*> participants;
  coll::CollectiveOptions desc;
  /// Training iterations this job runs (iteration i uses desc.seed + i).
  /// In-network jobs execute them against ONE persistent install — and a
  /// multi-iteration job is exactly what congestion-aware migration needs:
  /// a session long enough to observe the fabric change under it.
  u32 iterations = 1;
  /// Duty cycle: iteration i+1 starts this long after iteration i
  /// completes (0 = back-to-back).  A fleet of partial-duty-cycle jobs is
  /// exactly where co-placement beats reactive migration: each job's own
  /// EWMA footprint stays below the per-job reactive trigger while the
  /// fabric-wide overlap still hurts everyone.
  SimTime iteration_gap_ps = 0;
};

enum class JobState : u8 {
  kQueued = 0,   ///< waiting for switch slots
  kInNetwork,    ///< running through an installed reduction tree
  kFallback,     ///< running the host-based ring allreduce
  kDone,         ///< finished (in_network/ok say how and whether correctly)
  kRejected,     ///< admission failed and fallback disabled
};

std::string_view job_state_name(JobState s);

struct JobRecord {
  u32 job_id = 0;
  JobState state = JobState::kQueued;
  bool in_network = false;  ///< served by the switches (vs host fallback)
  bool ok = false;          ///< completed and within numeric tolerance
  bool exact = false;       ///< bit-for-bit equal to the reference reduction
  f64 max_abs_err = 0.0;
  u32 participants = 0;
  u64 data_bytes = 0;

  SimTime arrival_ps = 0;
  SimTime start_ps = 0;   ///< admission success or fallback start
  SimTime finish_ps = 0;

  u32 admission_attempts = 0;  ///< install attempts across candidate roots
  u32 requeue_retries = 0;     ///< admission rounds re-run from the queue
  bool timed_out = false;      ///< left the queue via timeout
  u32 iterations_done = 0;     ///< completed iterations (of spec.iterations)
  u64 retransmits = 0;         ///< blocks/chunks re-sent after host timeouts
  u32 recoveries = 0;          ///< reduction-tree reinstalls after faults
  u32 migrations = 0;          ///< congestion-triggered re-embeddings
  u32 planned_migrations = 0;  ///< optimizer-planned re-embeddings applied
  /// Sparse extras accumulated across iterations (zero for dense jobs) —
  /// the CollectiveResult counters surfaced per job.
  u64 spill_packets = 0;       ///< hash-collision spill flushes in the tree
  u64 host_pairs_sent = 0;     ///< (index, value) pairs hosts sent up
  u64 down_pairs = 0;          ///< pairs consumed from the down-multicast
  u64 dense_switchovers = 0;   ///< SparCML messages sent dense (fallbacks)
  u64 pairs_exchanged = 0;     ///< SparCML pairs exchanged while sparse
  /// Admitted in-network but FINISHED on the host ring because a fabric
  /// fault left no viable tree (in_network is false then).
  bool fell_back = false;
  bool tree_cache_hit = false;
  net::NodeId tree_root = net::kInvalidNode;
  u32 tree_switches = 0;

  f64 queue_delay_seconds() const {
    return static_cast<f64>(start_ps - arrival_ps) / kPsPerSecond;
  }
  f64 service_seconds() const {
    return static_cast<f64>(finish_ps - start_ps) / kPsPerSecond;
  }
  f64 sojourn_seconds() const {
    return static_cast<f64>(finish_ps - arrival_ps) / kPsPerSecond;
  }
};

}  // namespace flare::service
