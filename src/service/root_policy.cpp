#include "service/root_policy.hpp"

#include <algorithm>

namespace flare::service {

std::string_view root_policy_name(RootPolicy p) {
  switch (p) {
    case RootPolicy::kFixed: return "fixed";
    case RootPolicy::kRoundRobin: return "round-robin";
    case RootPolicy::kLeastLoaded: return "least-loaded";
    case RootPolicy::kLeastCongested: return "least-congested";
  }
  return "?";
}

std::vector<net::NodeId> candidate_roots(
    RootPolicy policy, const net::Network& net, u64 cursor,
    const net::CongestionMonitor* monitor) {
  const std::vector<net::Switch*>& switches = net.switches();
  std::vector<net::NodeId> roots;
  roots.reserve(switches.size());
  const std::size_t n = switches.size();
  if (policy == RootPolicy::kLeastCongested && monitor == nullptr) {
    policy = RootPolicy::kLeastLoaded;  // no signal: occupancy heuristic
  }
  switch (policy) {
    case RootPolicy::kFixed:
      for (net::Switch* sw : switches) roots.push_back(sw->id());
      break;
    case RootPolicy::kRoundRobin:
      for (std::size_t i = 0; i < n; ++i)
        roots.push_back(switches[(cursor + i) % n]->id());
      break;
    case RootPolicy::kLeastLoaded: {
      std::vector<net::Switch*> by_load(switches);
      // Stable: equal-load switches keep creation order, so runs are
      // deterministic.
      std::stable_sort(by_load.begin(), by_load.end(),
                       [](const net::Switch* a, const net::Switch* b) {
                         return a->installed_reduces() <
                                b->installed_reduces();
                       });
      for (net::Switch* sw : by_load) roots.push_back(sw->id());
      break;
    }
    case RootPolicy::kLeastCongested: {
      std::vector<net::Switch*> by_heat(switches);
      // Stable + full tie chain so runs are deterministic even on a
      // perfectly balanced fabric.
      std::stable_sort(by_heat.begin(), by_heat.end(),
                       [monitor](const net::Switch* a, const net::Switch* b) {
                         const f64 ca = monitor->node_congestion(a->id());
                         const f64 cb = monitor->node_congestion(b->id());
                         if (ca != cb) return ca < cb;
                         return a->installed_reduces() <
                                b->installed_reduces();
                       });
      for (net::Switch* sw : by_heat) roots.push_back(sw->id());
      break;
    }
  }
  return roots;
}

}  // namespace flare::service
