// Multi-tenant allreduce control plane (the "network manager" process the
// paper's evaluation assumes, Sections 4 and 7, grown into a subsystem).
//
// The AllreduceService ORCHESTRATES coll::Communicator sessions: it owns
// the scheduling policy (admission order, queueing, timeouts, fallback
// decisions, telemetry) while each admitted job executes through a
// persistent Communicator request on the shared calendar:
//
//   * admission through the shared coll::NetworkManager, trying candidate
//     tree roots in the order chosen by a RootPolicy (fixed / round-robin /
//     least-loaded contention heuristic);
//   * a bounded FIFO wait queue: jobs that no switch can admit wait for a
//     release, with a per-job timeout;
//   * host fallback: on queue overflow or timeout the job runs the
//     Communicator's host-ring data plane over the same network — the
//     paper's admission policy ("fall back to host-based allreduce on
//     rejection");
//   * reduction-tree reuse through coll::TreeCache;
//   * switch state released on completion, which re-triggers admission for
//     queued jobs;
//   * per-job records and aggregate telemetry through common/stats.
//
// Drive it by scheduling submissions (submit_at) and running the network's
// event calendar.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coll/communicator.hpp"
#include "coll/tree_cache.hpp"
#include "service/job.hpp"
#include "service/root_policy.hpp"
#include "service/telemetry.hpp"

namespace flare::place {
class CostSnapshot;  // place/snapshot.hpp
}

namespace flare::service {

struct ServiceOptions {
  RootPolicy root_policy = RootPolicy::kLeastLoaded;
  /// Cap on roots tried per admission round; 0 = every switch.
  u32 max_root_candidates = 0;
  /// Bounded wait queue: arrivals beyond this fall back immediately.
  u32 max_queue = 64;
  /// How long a job may wait for switch slots before falling back.
  /// 0 disables the timeout (jobs wait until slots free up).
  SimTime queue_timeout_ps = 2 * kPsPerMs;
  /// When false, jobs that cannot run in-network are rejected instead of
  /// falling back to the host ring.
  bool fallback_to_host = true;
  /// Calibrated per-switch aggregation rate (see FlareDenseOptions).
  f64 switch_service_bps = 2.4e12;
  std::size_t tree_cache_capacity = 64;
  /// Host-side fault tolerance applied to every job this service runs
  /// (see coll::Tuning::retransmit_timeout_ps).  0 leaves each job's own
  /// descriptor untouched (fault handling off unless the tenant set it).
  SimTime retransmit_timeout_ps = 0;
  u32 max_retransmits = 4;

  // --- congestion plane (README "Congestion plane") ---
  /// Fabric congestion monitor (must outlive the service).  When set: tree
  /// embedding uses the monitor's link costs, RootPolicy::kLeastCongested
  /// becomes available, cached embeddings are staleness-checked, and the
  /// migration knobs below reach every job's descriptor.
  net::CongestionMonitor* monitor = nullptr;
  /// Per-job congestion migration (see coll::Tuning::migrate_above);
  /// 0 places congestion-aware but never migrates mid-job.
  f64 migrate_above = 0.0;
  f64 migrate_improvement = 0.85;
  /// TreeCache staleness bound: cached embeddings whose worst link EWMA
  /// exceeds this are recomputed instead of re-served (0 = liveness-only
  /// validation, the pre-congestion-plane behavior).
  f64 cache_stale_above = 0.0;
  /// Monitor-driven admission backpressure: while the fabric-wide MEAN
  /// EWMA utilization (CongestionMonitor::mean_congestion) exceeds this
  /// bound, arriving jobs are QUEUED — not rejected — instead of being
  /// admitted onto a saturated fabric, and the queue re-checks one monitor
  /// period later (the queue timeout still bounds the wait).  0 (default)
  /// disables the gate; requires `monitor`.
  f64 admit_below_congestion = 0.0;

  // --- placement plane (README "Placement plane"; src/place/) ---
  /// Period of the co-placement optimizer rounds: every period (while jobs
  /// are active) the service freezes the fabric, runs the seeded SA search
  /// over the whole active job set, and stages the surviving moves onto
  /// their sessions for application at the next iteration boundary.
  /// 0 (default) disables the plane; requires `monitor`.
  SimTime place_period_ps = 0;
  u32 place_iterations = 600;  ///< SA steps per optimizer round
  /// Round r's optimizer runs with derive_seed(place_seed, r) — replays
  /// are bit-for-bit.
  u64 place_seed = 0xC0F1ACEull;
  /// Hysteresis: plan moves predicting less than this fractional objective
  /// improvement are rejected (a break-before-make re-install is not
  /// free; marginal wins churn the fabric for nothing).
  f64 place_min_gain = 0.02;
  /// Cross-job admission scoring: score each queued job's MARGINAL
  /// worst-edge heat (place::PlacementOptimizer::admission_score) and
  /// admit the cheapest first instead of strict FIFO.  The congestion
  /// gate (admit_below_congestion) still applies first.  Requires
  /// `monitor`.
  bool admission_scoring = false;
};

class AllreduceService {
 public:
  AllreduceService(net::Network& net, ServiceOptions opt = {});
  ~AllreduceService();
  AllreduceService(const AllreduceService&) = delete;
  AllreduceService& operator=(const AllreduceService&) = delete;

  /// Submits a job arriving NOW (must be called before or during the event
  /// loop).  Returns the job id (index into records()).
  u32 submit(JobSpec spec);

  /// Schedules a job arrival at absolute simulated time `at`.  Job ids are
  /// assigned in arrival order.
  void submit_at(SimTime at, JobSpec spec);

  const std::vector<JobRecord>& records() const { return records_; }
  const ServiceTelemetry& telemetry() const { return telemetry_; }
  const coll::TreeCache& tree_cache() const { return cache_; }
  coll::NetworkManager& manager() { return manager_; }

  u32 active_jobs() const { return static_cast<u32>(jobs_.size()); }
  u32 queued_jobs() const { return static_cast<u32>(queue_.size()); }

 private:
  /// One executing job: a Communicator session bound to the job's
  /// participants, plus the persistent request holding its installed tree
  /// (in-network jobs).  `pc` MUST be declared after `comm`: its release
  /// path uses the communicator, so it has to be destroyed first.
  struct ActiveJob {
    coll::Communicator comm;
    coll::PersistentCollective pc;
    coll::CollectiveHandle handle;
    /// The job's resolved descriptor — multi-iteration ring jobs re-start
    /// from it with a bumped seed (persistent requests bump internally).
    coll::CollectiveOptions desc;

    ActiveJob(net::Network& net, std::vector<net::Host*> participants,
              coll::CommunicatorConfig cfg)
        : comm(net, std::move(participants), std::move(cfg)) {}
  };

  /// Why a job runs on the host-ring data plane.  Exactly one counter is
  /// bumped per ring start, keyed by this reason — a job that explicitly
  /// requested the ring can never be double-counted as a timeout fallback.
  enum class RingReason : u8 {
    kRequested,     ///< tenant asked for Algorithm::kHostRing
    kTimeout,       ///< left the wait queue via queue_timeout_ps
    kOverflow,      ///< bounced off a full queue on arrival
    kInadmissible,  ///< no switch partition can ever hold the job
  };

  coll::CollectiveOptions descriptor_for(const JobSpec& spec) const;
  /// The job carries a sparse workload: admission targets the in-network
  /// sparse engine and the host fallback is SparCML instead of the ring.
  static bool is_sparse(const JobSpec& spec);
  /// One admission round.  `feasible` (optional) reports whether the job
  /// could EVER run in-network (see NetworkManager::install_with_roots).
  bool try_admit(u32 job, bool* feasible = nullptr);
  void enqueue(u32 job);
  void schedule_drain();
  void drain_queue();
  /// False while the admission-backpressure gate is closed (fabric-wide
  /// mean congestion above ServiceOptions::admit_below_congestion).
  /// Samples the monitor, so the answer reflects the fabric NOW.
  bool congestion_gate_open();
  /// Re-runs the queue drain one monitor period later (EWMA windows must
  /// turn before the gate can observe a cooler fabric).
  void schedule_congestion_recheck();
  void start_fallback_or_reject(u32 job, RingReason why);
  /// Runs the job on its host data plane (ring; SparCML for sparse jobs)
  /// for the given reason.
  void start_host_plane(u32 job, RingReason why);

  // --- placement plane (src/place/) ---
  /// Freezes the in-network active jobs + monitor state into an immutable
  /// CostSnapshot (ascending job id; never samples the monitor itself).
  place::CostSnapshot freeze_active();
  /// Arms the next co-placement round one place_period_ps out; no-op when
  /// the plane is off or a round is already armed.
  void ensure_place_armed();
  /// One co-placement round: freeze, seeded SA search, hysteresis filter,
  /// stage survivors onto their sessions (applied at each job's next
  /// iteration boundary via the break-before-make fresh-id path).
  void run_place_round();
  /// Index into queue_ of the job to admit next: 0 (FIFO) unless
  /// admission scoring is on, in which case the job with the cheapest
  /// marginal worst-edge heat (ties keep FIFO order).
  std::size_t pick_queued_index();

  void on_job_done(u32 job, const coll::CollectiveResult& res);
  /// Kicks off the next iteration of a multi-iteration job (off the
  /// completion callback's stack).
  void start_next_iteration(u32 job);

  net::Network& net_;
  ServiceOptions opt_;
  coll::NetworkManager manager_;
  coll::TreeCache cache_;
  ServiceTelemetry telemetry_;
  std::vector<JobRecord> records_;
  std::vector<JobSpec> specs_;
  std::deque<u32> queue_;  ///< job ids waiting for admission (FIFO)
  std::unordered_map<u32, std::unique_ptr<ActiveJob>> jobs_;
  u64 rr_cursor_ = 0;  ///< admission-round counter (round-robin policy)
  bool drain_scheduled_ = false;    ///< immediate (next-event) drain pending
  /// A one-monitor-period congestion recheck is pending.  Kept separate
  /// from drain_scheduled_: a slot release must still drain IMMEDIATELY
  /// while a recheck is parked a period away.
  bool recheck_scheduled_ = false;
  u64 fault_listener_ = 0;  ///< network fault-notice subscription token

  // --- placement plane state ---
  bool place_armed_ = false;  ///< a co-placement round is on the calendar
  u64 place_round_ = 0;       ///< rounds run (seeds derive from this)
  /// Switches the LAST applied plan moved jobs onto (sorted NodeIds): a
  /// cached embedding crossing one is invalidated by the TreeCache
  /// validator — serving it would re-create the contention the plan just
  /// cleared.
  std::vector<net::NodeId> plan_target_switches_;
  /// The last staged plan's predicted cost awaits grading against the
  /// next round's measured cost_before.
  bool place_grade_pending_ = false;
};

}  // namespace flare::service
