// Discrete-event simulation core.
//
// A single-threaded event calendar: callbacks scheduled at absolute times,
// dispatched in (time, insertion-sequence) order.  The sequence tie-break
// makes every run bit-for-bit deterministic — essential both for the
// reproducibility experiments (Section 6.3 of the paper) and for debugging
// the aggregation state machines.
//
// Hot-path design (the throughput ceiling for every bench, see
// bench/sim_throughput.cpp):
//
//   * events hold an EventFn — a move-only callable with inline storage
//     sized for the common network-layer closures (a captured NetPacket),
//     so scheduling neither heap-allocates nor copies shared_ptr payloads;
//   * dispatch MOVES the event out of the calendar instead of copying it
//     out of priority_queue::top() (the pre-optimization implementation
//     paid one closure allocation plus refcount churn per event);
//   * two interchangeable calendar backends behind the same ordering
//     contract: a binary heap (std::push_heap/pop_heap over a vector) and
//     a bucketed calendar queue (time-sliced ring of FIFO buckets with a
//     far-future overflow heap, O(1) amortized for the short-delay events
//     that dominate network simulation).  tests/sim_calendar_property_test
//     proves both backends dispatch identically.
//
// Time units are not interpreted by this layer: the PsPIN simulator ticks in
// core cycles, the network simulator in picoseconds.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "common/validate.hpp"

namespace flare::sim {

/// Geometry of the bucketed calendar (see detail::BucketCalendar).  All
/// counts must be powers of two — the ring and wheel indices are computed
/// with masks on the event-dispatch hot path — and the constructor
/// FLARE_ASSERTs on anything else.
///
/// Defaults: 1024 buckets x 2^16 ps cover a 67 us ring horizon (link
/// serialization + propagation delays), and two 64-slot coarse wheels on
/// top extend the structured horizon to ~0.27 s (timeouts, monitor
/// periods, flow finish times, placement rounds, fault repairs) before
/// anything touches the far-future overflow heap.
struct CalendarOptions {
  u32 bucket_count = 1024;      ///< ring slots (power of two)
  u32 bucket_width_log2 = 16;   ///< log2 ticks per ring slot
  u32 coarse_slot_count = 64;   ///< slots per coarse wheel (power of two)
  u32 coarse_levels = 2;        ///< hierarchical wheels above the ring (0 = none)
};

/// Move-only type-erased `void()` callable with inline small-object
/// storage.  Sized so the hottest closures in the repo — a captured
/// NetPacket plus a `this` pointer — stay inline; larger or throwing-move
/// callables fall back to a single heap cell.  Unlike std::function it
/// never copies the callable, so scheduling a lambda that owns shared_ptr
/// payloads costs no refcount traffic.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 88;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  ///< move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) { std::memcpy(dst, src, sizeof(Fn*)); },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); }};

  void move_from(EventFn& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
};

/// One calendar entry.  (at, seq) is a unique total order: seq is the
/// insertion sequence number, so same-time events dispatch FIFO.
struct Event {
  SimTime at = 0;
  u64 seq = 0;
  EventFn fn;
};

namespace detail {

/// Heap order: `true` when a dispatches AFTER b (max-heap comparator that
/// leaves the earliest (at, seq) on top).
struct Later {
  bool operator()(const Event& a, const Event& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;  // FIFO among same-time events.
  }
};

/// Binary-heap calendar: std::push_heap/pop_heap over a plain vector, so
/// the minimum event can be MOVED out (std::priority_queue::top() returns
/// const& and forces a copy).
class HeapCalendar {
 public:
  void push(Event&& ev) {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }
  const Event* peek() const {
    return heap_.empty() ? nullptr : &heap_.front();
  }
  bool empty() const { return heap_.empty(); }
  u64 size() const { return heap_.size(); }

 private:
  std::vector<Event> heap_;
};

/// Bucketed calendar queue: a ring of FIFO buckets (each covering
/// 2^bucket_width_log2 ticks), a configurable stack of coarse hierarchical
/// wheels above the ring, and a far-future overflow heap on top.  Pushing
/// an event inside the ring horizon is an O(1) append; buckets are sorted
/// by (at, seq) once, when the cursor reaches them.  Events scheduled into
/// the bucket currently being drained (the zero/short-delay pattern the
/// network layer hammers) are placed by binary search among the not-yet-
/// dispatched remainder, preserving the exact total order of the heap.
///
/// Coarse wheel k (k = 0..levels-1) slices time into blocks of
/// bucket_count * coarse_slot_count^k ring slots and admits events inside
/// a sliding window of coarse_slot_count such blocks.  A wheel slot is
/// poured into the tiers below exactly when the cursor enters its
/// (aligned) block, so events cascade ring-ward without ever being
/// re-sorted: the final dispatch order is still decided by the in-bucket
/// (at, seq) sort.  Only events beyond the top wheel's window — with the
/// default geometry, further than ~0.27 s ahead — pay the O(log n)
/// overflow heap, which is what keeps multi-second horizons (flow finish
/// times, repair timers) from thrashing the heap on every reschedule.
class BucketCalendar {
 public:
  explicit BucketCalendar(const CalendarOptions& opts);

  void push(Event&& ev);
  Event pop() {
    Event* front = ensure_front();
    Event ev = std::move(*front);
    pos_ += 1;
    size_ -= 1;
    ring_count_ -= 1;
    return ev;
  }
  /// Valid until the next push/pop.  Non-const: advancing to the next
  /// non-empty bucket (and sorting it) happens lazily here.
  const Event* peek() { return empty() ? nullptr : ensure_front(); }
  bool empty() const { return size_ == 0; }
  u64 size() const { return size_; }

 private:
  u64 slot_of(SimTime at) const { return at >> width_log2_; }
  u64 ring_index(u64 slot) const { return slot & ring_mask_; }

  Event* ensure_front();
  /// Routes an event (relative to cur_slot_) into the ring, the lowest
  /// admitting coarse wheel, or the overflow heap.  Does not touch size_.
  void place(Event&& ev);
  /// Moves the cursor to new_slot, pouring every coarse-wheel slot whose
  /// block the cursor just entered (top level first, so poured events
  /// settle through lower tiers) and pulling newly-admissible far events.
  void advance_cursor(u64 new_slot);
  void pull_far();

  // Geometry (fixed at construction; see CalendarOptions).
  u32 width_log2_;
  u64 ring_buckets_;
  u64 ring_mask_;
  u64 wheel_slots_;
  u64 wheel_mask_;
  u32 levels_;
  std::vector<u32> shift_;  ///< per-level block size in log2 ring slots

  std::vector<std::vector<Event>> ring_;
  std::vector<std::vector<std::vector<Event>>> wheels_;  ///< [level][slot]
  std::vector<u64> wheel_count_;  ///< events resident per wheel level
  std::vector<Event> far_;  ///< Later{}-heap of events beyond every wheel
  u64 ring_count_ = 0;      ///< events resident in the ring
  u64 cur_slot_ = 0;        ///< time slot the cursor is draining
  std::size_t pos_ = 0;     ///< dispatch position within the current bucket
  bool sorted_ = false;     ///< current bucket sorted and being drained
  u64 size_ = 0;
};

}  // namespace detail

/// Calendar backend selection.  Both obey the identical (time, seq)
/// dispatch contract (property-tested against each other); the bucketed
/// queue is the default because it wins on the sim_throughput scenario.
enum class CalendarKind : u8 {
  kBinaryHeap = 0,
  kBucketed,
};

class Simulator {
 public:
  explicit Simulator(CalendarKind kind = CalendarKind::kBucketed,
                     const CalendarOptions& opts = {})
      : kind_(kind), opts_(opts), bucket_(opts) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  CalendarKind calendar_kind() const { return kind_; }
  const CalendarOptions& calendar_options() const { return opts_; }

  /// Current simulated time.  Valid inside event callbacks and after run().
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` `delay` ticks after the current time.
  void schedule_after(SimTime delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs until the calendar is empty.  Returns the number of events run.
  u64 run();

  /// Runs until the calendar is empty or simulated time exceeds `until`.
  /// Events scheduled exactly at `until` are executed.  On return the
  /// clock reads exactly `until` (unless stop() cut the window short, or
  /// `until` was already in the past), regardless of whether the calendar
  /// drained or the next event lies beyond the window — so back-to-back
  /// run_until windows observe one uniform clock.
  u64 run_until(SimTime until);

  /// Runs a single event if one is pending; returns false if calendar empty.
  bool step();

  /// Requests run()/run_until() to return after the current event completes.
  void stop() { stop_requested_ = true; }

  bool empty() const { return queue_size() == 0; }
  u64 pending_events() const { return queue_size(); }
  u64 total_events_run() const { return events_run_; }

#if FLARE_VALIDATE_ENABLED
  /// Validator-test backdoor: enqueues an event BYPASSING the
  /// schedule-time past-event assert, so tests/validate_test.cpp can
  /// seed an out-of-order event and prove the dispatch-time
  /// calendar-monotonic check fires.  Exists only in FLARE_VALIDATE
  /// builds; never call it outside that test.
  void debug_inject_at(SimTime at, EventFn fn) {
    push_event(Event{at, next_seq_++, std::move(fn)});
  }
#endif

 private:
  void dispatch(Event&& ev);
  void push_event(Event&& ev) {
    if (kind_ == CalendarKind::kBinaryHeap) {
      heap_.push(std::move(ev));
    } else {
      bucket_.push(std::move(ev));
    }
  }
  Event pop_event() {
    return kind_ == CalendarKind::kBinaryHeap ? heap_.pop() : bucket_.pop();
  }
  const Event* peek_event() {
    return kind_ == CalendarKind::kBinaryHeap ? heap_.peek()
                                              : bucket_.peek();
  }
  u64 queue_size() const {
    return kind_ == CalendarKind::kBinaryHeap ? heap_.size()
                                              : bucket_.size();
  }

  CalendarKind kind_;
  CalendarOptions opts_;
  detail::HeapCalendar heap_;
  detail::BucketCalendar bucket_;
  SimTime now_ = 0;
  u64 next_seq_ = 0;
  u64 events_run_ = 0;
  bool stop_requested_ = false;
};

}  // namespace flare::sim
