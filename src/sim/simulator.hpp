// Discrete-event simulation core.
//
// A single-threaded event calendar: callbacks scheduled at absolute times,
// dispatched in (time, insertion-sequence) order.  The sequence tie-break
// makes every run bit-for-bit deterministic — essential both for the
// reproducibility experiments (Section 6.3 of the paper) and for debugging
// the aggregation state machines.
//
// Time units are not interpreted by this layer: the PsPIN simulator ticks in
// core cycles, the network simulator in picoseconds.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "common/validate.hpp"

namespace flare::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  Valid inside event callbacks and after run().
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` `delay` ticks after the current time.
  void schedule_after(SimTime delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs until the calendar is empty.  Returns the number of events run.
  u64 run();

  /// Runs until the calendar is empty or simulated time exceeds `until`.
  /// Events scheduled exactly at `until` are executed.
  u64 run_until(SimTime until);

  /// Runs a single event if one is pending; returns false if calendar empty.
  bool step();

  /// Requests run()/run_until() to return after the current event completes.
  void stop() { stop_requested_ = true; }

  bool empty() const { return queue_.empty(); }
  u64 pending_events() const { return queue_.size(); }
  u64 total_events_run() const { return events_run_; }

#if FLARE_VALIDATE_ENABLED
  /// Validator-test backdoor: enqueues an event BYPASSING the
  /// schedule-time past-event assert, so tests/validate_test.cpp can
  /// seed an out-of-order event and prove the dispatch-time
  /// calendar-monotonic check fires.  Exists only in FLARE_VALIDATE
  /// builds; never call it outside that test.
  void debug_inject_at(SimTime at, EventFn fn) {
    queue_.push(Event{at, next_seq_++, std::move(fn)});
  }
#endif

 private:
  struct Event {
    SimTime at;
    u64 seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among same-time events.
    }
  };

  void dispatch(Event&& ev);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  u64 next_seq_ = 0;
  u64 events_run_ = 0;
  bool stop_requested_ = false;
};

}  // namespace flare::sim
