#include "sim/simulator.hpp"

#include <utility>

namespace flare::sim {

namespace detail {

void BucketCalendar::push(Event&& ev) {
  u64 slot = slot_of(ev.at);
  // Simulator::schedule_at rejects past events; the validator-test
  // backdoor can still inject one, and it must surface immediately (the
  // dispatch-time calendar-monotonic check wants to see it next).
  if (slot < cur_slot_) slot = cur_slot_;
  size_ += 1;
  if (slot >= cur_slot_ + kBuckets) {
    far_.push_back(std::move(ev));
    std::push_heap(far_.begin(), far_.end(), Later{});
    return;
  }
  std::vector<Event>& b = ring_[ring_index(slot)];
  if (slot == cur_slot_ && sorted_) {
    // Scheduling into the bucket being drained (the zero/short-delay hot
    // pattern): place among the not-yet-dispatched remainder.  The new
    // event carries the largest seq so far, so it goes after every
    // already-queued event of the same timestamp — exact FIFO.
    const auto it =
        std::upper_bound(b.begin() + static_cast<std::ptrdiff_t>(pos_),
                         b.end(), ev.at,
                         [](SimTime t, const Event& e) { return t < e.at; });
    b.insert(it, std::move(ev));
    return;
  }
  b.push_back(std::move(ev));
}

void BucketCalendar::advance_horizon() {
  // Pull far-future events whose slot just entered the ring horizon.
  while (!far_.empty() && slot_of(far_.front().at) < cur_slot_ + kBuckets) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    Event ev = std::move(far_.back());
    far_.pop_back();
    ring_[ring_index(slot_of(ev.at))].push_back(std::move(ev));
  }
}

Event* BucketCalendar::ensure_front() {
  FLARE_ASSERT(size_ > 0);
  for (;;) {
    std::vector<Event>& b = ring_[ring_index(cur_slot_)];
    if (sorted_) {
      if (pos_ < b.size()) return &b[pos_];
      b.clear();  // keeps capacity: buckets recycle their storage
      pos_ = 0;
      sorted_ = false;
      cur_slot_ += 1;
      advance_horizon();
      continue;
    }
    if (!b.empty()) {
      std::sort(b.begin(), b.end(), [](const Event& a, const Event& e) {
        if (a.at != e.at) return a.at < e.at;
        return a.seq < e.seq;
      });
      sorted_ = true;
      continue;
    }
    // Current bucket empty: step to the next occupied slot.  When the
    // whole ring is drained, jump the cursor straight to the first
    // far-future event instead of walking empty buckets one by one.
    if (size_ == far_.size()) {
      cur_slot_ = slot_of(far_.front().at);
    } else {
      cur_slot_ += 1;
    }
    advance_horizon();
  }
}

}  // namespace detail

void Simulator::schedule_at(SimTime at, EventFn fn) {
  FLARE_ASSERT_MSG(at >= now_, "event scheduled in the past");
  FLARE_ASSERT(fn);
  push_event(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::dispatch(Event&& ev) {
#if FLARE_VALIDATE_ENABLED
  // schedule_at() rejects past events at insertion; this catches the
  // class it cannot see — a comparator or heap bug handing events out in
  // the wrong order, which would silently reorder every same-time
  // tie-break downstream.
  if (ev.at < now_) {
    validate::fail("calendar-monotonic",
                   "event at t=" + std::to_string(ev.at) +
                       " dispatched after now=" + std::to_string(now_));
  }
#endif
  now_ = ev.at;
  events_run_ += 1;
  ev.fn();
}

u64 Simulator::run() {
  stop_requested_ = false;
  u64 n = 0;
  while (!empty() && !stop_requested_) {
    dispatch(pop_event());
    ++n;
  }
  return n;
}

u64 Simulator::run_until(SimTime until) {
  stop_requested_ = false;
  u64 n = 0;
  while (!empty() && !stop_requested_) {
    if (peek_event()->at > until) break;
    dispatch(pop_event());
    ++n;
  }
  // Uniform window-clock semantics: the clock lands exactly on `until`
  // whether the calendar drained or the next event lies beyond the
  // window, so back-to-back run_until windows never observe a clock
  // lagging at the last dispatched event.  stop() is the exception: it
  // cuts the window short with events (possibly before `until`) still
  // pending, and jumping over them would make them "past" at dispatch.
  if (!stop_requested_ && now_ < until) now_ = until;
  return n;
}

bool Simulator::step() {
  if (empty()) return false;
  dispatch(pop_event());
  return true;
}

}  // namespace flare::sim
