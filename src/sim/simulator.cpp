#include "sim/simulator.hpp"

#include <utility>

namespace flare::sim {

namespace detail {

namespace {
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr u32 log2_exact(u64 v) {
  u32 r = 0;
  while ((u64{1} << r) < v) ++r;
  return r;
}
}  // namespace

BucketCalendar::BucketCalendar(const CalendarOptions& opts)
    : width_log2_(opts.bucket_width_log2),
      ring_buckets_(opts.bucket_count),
      ring_mask_(u64{opts.bucket_count} - 1),
      wheel_slots_(opts.coarse_slot_count),
      wheel_mask_(u64{opts.coarse_slot_count} - 1),
      levels_(opts.coarse_levels) {
  FLARE_ASSERT_MSG(is_pow2(opts.bucket_count) && opts.bucket_count >= 2,
                   "calendar bucket_count must be a power of two >= 2");
  FLARE_ASSERT_MSG(opts.bucket_width_log2 >= 1 && opts.bucket_width_log2 <= 40,
                   "calendar bucket_width_log2 out of range [1, 40]");
  FLARE_ASSERT_MSG(
      levels_ == 0 ||
          (is_pow2(opts.coarse_slot_count) && opts.coarse_slot_count >= 2),
      "calendar coarse_slot_count must be a power of two >= 2");
  const u32 ring_log2 = log2_exact(ring_buckets_);
  const u32 wheel_log2 = levels_ > 0 ? log2_exact(wheel_slots_) : 0;
  // The top wheel's window must still be addressable in slot units.
  FLARE_ASSERT_MSG(width_log2_ + ring_log2 + (levels_ + 1) * wheel_log2 < 64,
                   "calendar geometry exceeds the 64-bit tick range");
  ring_.resize(ring_buckets_);
  shift_.resize(levels_);
  wheels_.resize(levels_);
  wheel_count_.assign(levels_, 0);
  for (u32 k = 0; k < levels_; ++k) {
    shift_[k] = ring_log2 + k * wheel_log2;
    wheels_[k].resize(wheel_slots_);
  }
}

void BucketCalendar::place(Event&& ev) {
  u64 slot = slot_of(ev.at);
  // Simulator::schedule_at rejects past events; the validator-test
  // backdoor can still inject one, and it must surface immediately (the
  // dispatch-time calendar-monotonic check wants to see it next).
  if (slot < cur_slot_) slot = cur_slot_;
  if (slot - cur_slot_ < ring_buckets_) {
    std::vector<Event>& b = ring_[ring_index(slot)];
    ring_count_ += 1;
    if (slot == cur_slot_ && sorted_) {
      // Scheduling into the bucket being drained (the zero/short-delay hot
      // pattern): place among the not-yet-dispatched remainder.  The new
      // event carries the largest seq so far, so it goes after every
      // already-queued event of the same timestamp — exact FIFO.
      const auto it =
          std::upper_bound(b.begin() + static_cast<std::ptrdiff_t>(pos_),
                           b.end(), ev.at,
                           [](SimTime t, const Event& e) { return t < e.at; });
      b.insert(it, std::move(ev));
      return;
    }
    b.push_back(std::move(ev));
    return;
  }
  // Lowest coarse wheel whose sliding window admits the slot.  Each wheel
  // block is bucket_count * wheel_slots^k ring slots wide; an event that
  // misses wheel k's window is at least one whole block ahead at wheel
  // k+1, so the slot the cursor currently occupies is never re-written
  // after its pour.
  for (u32 k = 0; k < levels_; ++k) {
    if ((slot >> shift_[k]) - (cur_slot_ >> shift_[k]) < wheel_slots_) {
      wheels_[k][(slot >> shift_[k]) & wheel_mask_].push_back(std::move(ev));
      wheel_count_[k] += 1;
      return;
    }
  }
  far_.push_back(std::move(ev));
  std::push_heap(far_.begin(), far_.end(), Later{});
}

void BucketCalendar::push(Event&& ev) {
  size_ += 1;
  place(std::move(ev));
}

void BucketCalendar::pull_far() {
  // Pull far-future events whose slot just entered the top wheel's window
  // (or the ring, when no coarse levels are configured).
  if (levels_ == 0) {
    while (!far_.empty() && slot_of(far_.front().at) - cur_slot_ < ring_buckets_) {
      std::pop_heap(far_.begin(), far_.end(), Later{});
      Event ev = std::move(far_.back());
      far_.pop_back();
      place(std::move(ev));
    }
    return;
  }
  const u32 top = levels_ - 1;
  while (!far_.empty() &&
         (slot_of(far_.front().at) >> shift_[top]) -
                 (cur_slot_ >> shift_[top]) <
             wheel_slots_) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    Event ev = std::move(far_.back());
    far_.pop_back();
    place(std::move(ev));
  }
}

void BucketCalendar::advance_cursor(u64 new_slot) {
  const u64 old = cur_slot_;
  cur_slot_ = new_slot;
  // Pour each wheel slot whose block the cursor just entered, top level
  // first so poured events settle through the lower tiers in one pass.
  // The cursor only ever enters a block at its aligned base (a +1 step
  // crosses the boundary exactly, and jumps target block bases), so every
  // poured event satisfies slot >= cur_slot_ and lands in the tier below
  // without clamping.
  for (u32 k = levels_; k-- > 0;) {
    const u64 oldc = old >> shift_[k];
    const u64 newc = new_slot >> shift_[k];
    if (oldc == newc) continue;
    std::vector<Event>& s = wheels_[k][newc & wheel_mask_];
    if (s.empty()) continue;
    wheel_count_[k] -= s.size();
    std::vector<Event> tmp;
    tmp.swap(s);
    for (Event& ev : tmp) place(std::move(ev));
  }
  pull_far();
}

Event* BucketCalendar::ensure_front() {
  FLARE_ASSERT(size_ > 0);
  for (;;) {
    std::vector<Event>& b = ring_[ring_index(cur_slot_)];
    if (sorted_) {
      if (pos_ < b.size()) return &b[pos_];
      b.clear();  // keeps capacity: buckets recycle their storage
      pos_ = 0;
      sorted_ = false;
      advance_cursor(cur_slot_ + 1);
      continue;
    }
    if (!b.empty()) {
      std::sort(b.begin(), b.end(), [](const Event& a, const Event& e) {
        if (a.at != e.at) return a.at < e.at;
        return a.seq < e.seq;
      });
      sorted_ = true;
      continue;
    }
    if (ring_count_ > 0) {
      // Ring still holds events: step to the next occupied slot.
      advance_cursor(cur_slot_ + 1);
      continue;
    }
    // Ring drained: jump straight to the earliest occupied structure
    // instead of walking empty buckets one by one.  The jump target is
    // the MINIMUM over every wheel's earliest nonempty block BASE (a
    // coarser wheel can hold an event earlier than a finer wheel's
    // earliest, when the window slid since its admission), so a poured
    // slot never contains an event behind the cursor.  Far-future events
    // are strictly beyond every wheel window, so they are the target only
    // when all wheels are empty.
    u64 target = ~u64{0};
    for (u32 k = 0; k < levels_; ++k) {
      if (wheel_count_[k] == 0) continue;
      const u64 ck = cur_slot_ >> shift_[k];
      for (u64 d = 0; d < wheel_slots_; ++d) {
        if (!wheels_[k][(ck + d) & wheel_mask_].empty()) {
          target = std::min(target, (ck + d) << shift_[k]);
          break;
        }
      }
    }
    if (target == ~u64{0}) {
      FLARE_ASSERT(!far_.empty());
      target = slot_of(far_.front().at);
    }
    advance_cursor(std::max(target, cur_slot_ + 1));
  }
}

}  // namespace detail

void Simulator::schedule_at(SimTime at, EventFn fn) {
  FLARE_ASSERT_MSG(at >= now_, "event scheduled in the past");
  FLARE_ASSERT(fn);
  push_event(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::dispatch(Event&& ev) {
#if FLARE_VALIDATE_ENABLED
  // schedule_at() rejects past events at insertion; this catches the
  // class it cannot see — a comparator or heap bug handing events out in
  // the wrong order, which would silently reorder every same-time
  // tie-break downstream.
  if (ev.at < now_) {
    validate::fail("calendar-monotonic",
                   "event at t=" + std::to_string(ev.at) +
                       " dispatched after now=" + std::to_string(now_));
  }
#endif
  now_ = ev.at;
  events_run_ += 1;
  ev.fn();
}

u64 Simulator::run() {
  stop_requested_ = false;
  u64 n = 0;
  while (!empty() && !stop_requested_) {
    dispatch(pop_event());
    ++n;
  }
  return n;
}

u64 Simulator::run_until(SimTime until) {
  stop_requested_ = false;
  u64 n = 0;
  while (!empty() && !stop_requested_) {
    if (peek_event()->at > until) break;
    dispatch(pop_event());
    ++n;
  }
  // Uniform window-clock semantics: the clock lands exactly on `until`
  // whether the calendar drained or the next event lies beyond the
  // window, so back-to-back run_until windows never observe a clock
  // lagging at the last dispatched event.  stop() is the exception: it
  // cuts the window short with events (possibly before `until`) still
  // pending, and jumping over them would make them "past" at dispatch.
  if (!stop_requested_ && now_ < until) now_ = until;
  return n;
}

bool Simulator::step() {
  if (empty()) return false;
  dispatch(pop_event());
  return true;
}

}  // namespace flare::sim
