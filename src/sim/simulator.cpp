#include "sim/simulator.hpp"

#include <utility>

namespace flare::sim {

void Simulator::schedule_at(SimTime at, EventFn fn) {
  FLARE_ASSERT_MSG(at >= now_, "event scheduled in the past");
  FLARE_ASSERT(fn != nullptr);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::dispatch(Event&& ev) {
#if FLARE_VALIDATE_ENABLED
  // schedule_at() rejects past events at insertion; this catches the
  // class it cannot see — a comparator or heap bug handing events out in
  // the wrong order, which would silently reorder every same-time
  // tie-break downstream.
  if (ev.at < now_) {
    validate::fail("calendar-monotonic",
                   "event at t=" + std::to_string(ev.at) +
                       " dispatched after now=" + std::to_string(now_));
  }
#endif
  now_ = ev.at;
  events_run_ += 1;
  ev.fn();
}

u64 Simulator::run() {
  stop_requested_ = false;
  u64 n = 0;
  while (!queue_.empty() && !stop_requested_) {
    // priority_queue::top() returns const&; the event is copied out so the
    // callback can schedule new events (which may reallocate the heap).
    Event ev = queue_.top();
    queue_.pop();
    dispatch(std::move(ev));
    ++n;
  }
  return n;
}

u64 Simulator::run_until(SimTime until) {
  stop_requested_ = false;
  u64 n = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.top().at > until) break;
    Event ev = queue_.top();
    queue_.pop();
    dispatch(std::move(ev));
    ++n;
  }
  if (now_ < until && queue_.empty()) now_ = until;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  dispatch(std::move(ev));
  return true;
}

}  // namespace flare::sim
