#include "core/typed_buffer.hpp"

#include <algorithm>
#include <cmath>

namespace flare::core {
namespace {

// Monomorphized bulk loops: fill_random and max_abs_diff walk every element
// of every host buffer (inside the simulator's timed region when jobs spawn
// mid-run), so the dtype dispatch is hoisted out of the loop here and the
// per-element body reduces to a fixed-size memcpy the compiler turns into a
// plain load/store.  The scalar get/set_as_f64 entry points stay as the
// general (and test-visible) element API.

template <typename T, bool Floor>
void fill_loop(std::byte* p, std::size_t n, Rng& rng, f64 lo, f64 hi) {
  for (std::size_t i = 0; i < n; ++i) {
    f64 v = rng.uniform(lo, hi);
    if constexpr (Floor) v = std::floor(v);
    const T x = static_cast<T>(v);
    std::memcpy(p + i * sizeof(T), &x, sizeof(T));
  }
}

void fill_loop_f16(std::byte* p, std::size_t n, Rng& rng, f64 lo, f64 hi) {
  for (std::size_t i = 0; i < n; ++i) {
    const u16 x = f32_to_f16(static_cast<f32>(rng.uniform(lo, hi)));
    std::memcpy(p + i * sizeof(u16), &x, sizeof(u16));
  }
}

template <typename T>
f64 diff_loop(const std::byte* a, const std::byte* b, std::size_t n) {
  f64 worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    T x, y;
    std::memcpy(&x, a + i * sizeof(T), sizeof(T));
    std::memcpy(&y, b + i * sizeof(T), sizeof(T));
    worst = std::max(worst,
                     std::abs(static_cast<f64>(x) - static_cast<f64>(y)));
  }
  return worst;
}

f64 diff_loop_f16(const std::byte* a, const std::byte* b, std::size_t n) {
  f64 worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    u16 x, y;
    std::memcpy(&x, a + i * sizeof(u16), sizeof(u16));
    std::memcpy(&y, b + i * sizeof(u16), sizeof(u16));
    worst = std::max(worst, std::abs(static_cast<f64>(f16_to_f32(x)) -
                                     static_cast<f64>(f16_to_f32(y))));
  }
  return worst;
}

}  // namespace

f64 TypedBuffer::get_as_f64(std::size_t i) const {
  FLARE_ASSERT(i < elems_);
  const std::byte* p = at_byte(i);
  switch (dtype_) {
    case DType::kInt8: {
      i8 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kInt16: {
      i16 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kInt32: {
      i32 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kInt64: {
      i64 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kFloat16: {
      u16 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(f16_to_f32(v));
    }
    case DType::kFloat32: {
      f32 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
  }
  return 0.0;
}

void TypedBuffer::set_from_f64(std::size_t i, f64 v) {
  FLARE_ASSERT(i < elems_);
  std::byte* p = at_byte(i);
  switch (dtype_) {
    case DType::kInt8: {
      const i8 x = static_cast<i8>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kInt16: {
      const i16 x = static_cast<i16>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kInt32: {
      const i32 x = static_cast<i32>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kInt64: {
      const i64 x = static_cast<i64>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kFloat16: {
      const u16 x = f32_to_f16(static_cast<f32>(v));
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kFloat32: {
      const f32 x = static_cast<f32>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
  }
}

void TypedBuffer::fill_random(Rng& rng, f64 lo, f64 hi) {
  std::byte* p = bytes_.data();
  switch (dtype_) {
    case DType::kInt8: fill_loop<i8, true>(p, elems_, rng, lo, hi); break;
    case DType::kInt16: fill_loop<i16, true>(p, elems_, rng, lo, hi); break;
    case DType::kInt32: fill_loop<i32, true>(p, elems_, rng, lo, hi); break;
    case DType::kInt64: fill_loop<i64, true>(p, elems_, rng, lo, hi); break;
    case DType::kFloat16: fill_loop_f16(p, elems_, rng, lo, hi); break;
    case DType::kFloat32: fill_loop<f32, false>(p, elems_, rng, lo, hi); break;
  }
}

f64 TypedBuffer::max_abs_diff(const TypedBuffer& other) const {
  FLARE_ASSERT(other.dtype_ == dtype_ && other.elems_ == elems_);
  const std::byte* a = bytes_.data();
  const std::byte* b = other.bytes_.data();
  // Bitwise-equal buffers (the common case for exact integer reductions)
  // have an elementwise diff of zero everywhere; one memcmp beats a
  // widen-and-subtract loop over every element.
  if (elems_ > 0 && std::memcmp(a, b, bytes_.size()) == 0) return 0.0;
  switch (dtype_) {
    case DType::kInt8: return diff_loop<i8>(a, b, elems_);
    case DType::kInt16: return diff_loop<i16>(a, b, elems_);
    case DType::kInt32: return diff_loop<i32>(a, b, elems_);
    case DType::kInt64: return diff_loop<i64>(a, b, elems_);
    case DType::kFloat16: return diff_loop_f16(a, b, elems_);
    case DType::kFloat32: return diff_loop<f32>(a, b, elems_);
  }
  return 0.0;
}

std::size_t TypedBuffer::count_mismatches(const TypedBuffer& other) const {
  FLARE_ASSERT(other.dtype_ == dtype_ && other.elems_ == elems_);
  std::size_t n = 0;
  const u32 es = dtype_size(dtype_);
  for (std::size_t i = 0; i < elems_; ++i) {
    if (std::memcmp(at_byte(i), other.at_byte(i), es) != 0) ++n;
  }
  return n;
}

TypedBuffer reference_reduce(const std::vector<TypedBuffer>& inputs,
                             const ReduceOp& op) {
  FLARE_ASSERT(!inputs.empty());
  TypedBuffer acc = inputs.front();
  for (std::size_t i = 1; i < inputs.size(); ++i) acc.accumulate(inputs[i], op);
  return acc;
}

f64 reduce_tolerance(DType dtype, u32 participants) {
  if (dtype == DType::kFloat32) return 1e-3 * participants;
  if (dtype == DType::kFloat16) return 0.25 * participants;
  return 0.0;
}

}  // namespace flare::core
