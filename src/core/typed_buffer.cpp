#include "core/typed_buffer.hpp"

#include <cmath>

namespace flare::core {

f64 TypedBuffer::get_as_f64(std::size_t i) const {
  FLARE_ASSERT(i < elems_);
  const std::byte* p = at_byte(i);
  switch (dtype_) {
    case DType::kInt8: {
      i8 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kInt16: {
      i16 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kInt32: {
      i32 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kInt64: {
      i64 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kFloat16: {
      u16 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(f16_to_f32(v));
    }
    case DType::kFloat32: {
      f32 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
  }
  return 0.0;
}

void TypedBuffer::set_from_f64(std::size_t i, f64 v) {
  FLARE_ASSERT(i < elems_);
  std::byte* p = at_byte(i);
  switch (dtype_) {
    case DType::kInt8: {
      const i8 x = static_cast<i8>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kInt16: {
      const i16 x = static_cast<i16>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kInt32: {
      const i32 x = static_cast<i32>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kInt64: {
      const i64 x = static_cast<i64>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kFloat16: {
      const u16 x = f32_to_f16(static_cast<f32>(v));
      std::memcpy(p, &x, sizeof(x));
      break;
    }
    case DType::kFloat32: {
      const f32 x = static_cast<f32>(v);
      std::memcpy(p, &x, sizeof(x));
      break;
    }
  }
}

void TypedBuffer::fill_random(Rng& rng, f64 lo, f64 hi) {
  for (std::size_t i = 0; i < elems_; ++i) {
    f64 v = rng.uniform(lo, hi);
    if (!dtype_is_float(dtype_)) v = std::floor(v);
    set_from_f64(i, v);
  }
}

f64 TypedBuffer::max_abs_diff(const TypedBuffer& other) const {
  FLARE_ASSERT(other.dtype_ == dtype_ && other.elems_ == elems_);
  f64 worst = 0.0;
  for (std::size_t i = 0; i < elems_; ++i) {
    worst = std::max(worst, std::abs(get_as_f64(i) - other.get_as_f64(i)));
  }
  return worst;
}

std::size_t TypedBuffer::count_mismatches(const TypedBuffer& other) const {
  FLARE_ASSERT(other.dtype_ == dtype_ && other.elems_ == elems_);
  std::size_t n = 0;
  const u32 es = dtype_size(dtype_);
  for (std::size_t i = 0; i < elems_; ++i) {
    if (std::memcmp(at_byte(i), other.at_byte(i), es) != 0) ++n;
  }
  return n;
}

TypedBuffer reference_reduce(const std::vector<TypedBuffer>& inputs,
                             const ReduceOp& op) {
  FLARE_ASSERT(!inputs.empty());
  TypedBuffer acc = inputs.front();
  for (std::size_t i = 1; i < inputs.size(); ++i) acc.accumulate(inputs[i], op);
  return acc;
}

f64 reduce_tolerance(DType dtype, u32 participants) {
  if (dtype == DType::kFloat32) return 1e-3 * participants;
  if (dtype == DType::kFloat16) return 0.25 * participants;
  return 0.0;
}

}  // namespace flare::core
