#include "core/reduce_op.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/assert.hpp"

namespace flare::core {

namespace {

constexpr std::size_t kBuiltinOps = 7;  // kSum..kBxor (kCustom excluded)
constexpr std::size_t kDTypeCount = std::size(kAllDTypes);

/// One fully monomorphized element loop per (dtype, op).  The switch that
/// used to sit inside Kernels<T>::apply is hoisted into the table lookup
/// below, so each loop body is branch-free with `__restrict` operands —
/// the shape GCC/Clang auto-vectorize (verified via bench/kernels.cpp).
using KernelFn = void (*)(void* acc, const void* in, std::size_t n);

template <typename T, OpKind K>
void kernel(void* accv, const void* inv, std::size_t n) {
  T* __restrict acc = static_cast<T*>(accv);
  const T* __restrict in = static_cast<const T*>(inv);
  for (std::size_t i = 0; i < n; ++i) {
    if constexpr (K == OpKind::kSum) {
      acc[i] = static_cast<T>(acc[i] + in[i]);
    } else if constexpr (K == OpKind::kProd) {
      acc[i] = static_cast<T>(acc[i] * in[i]);
    } else if constexpr (K == OpKind::kMin) {
      acc[i] = std::min(acc[i], in[i]);
    } else if constexpr (K == OpKind::kMax) {
      acc[i] = std::max(acc[i], in[i]);
    } else if constexpr (K == OpKind::kBand) {
      acc[i] = static_cast<T>(acc[i] & in[i]);
    } else if constexpr (K == OpKind::kBor) {
      acc[i] = static_cast<T>(acc[i] | in[i]);
    } else if constexpr (K == OpKind::kBxor) {
      acc[i] = static_cast<T>(acc[i] ^ in[i]);
    }
  }
}

// Float16: convert through f32 per element, exactly like handler code on an
// FP16-capable FPU that widens to f32 internally.
template <OpKind K>
void kernel_f16(void* accv, const void* inv, std::size_t n) {
  u16* __restrict acc = static_cast<u16*>(accv);
  const u16* __restrict in = static_cast<const u16*>(inv);
  for (std::size_t i = 0; i < n; ++i) {
    const f32 a = f16_to_f32(acc[i]);
    const f32 b = f16_to_f32(in[i]);
    f32 r = 0.0f;
    if constexpr (K == OpKind::kSum) {
      r = a + b;
    } else if constexpr (K == OpKind::kProd) {
      r = a * b;
    } else if constexpr (K == OpKind::kMin) {
      r = std::min(a, b);
    } else if constexpr (K == OpKind::kMax) {
      r = std::max(a, b);
    } else {
      FLARE_UNREACHABLE("unsupported f16 op");
    }
    acc[i] = f32_to_f16(r);
  }
}

template <typename T>
constexpr std::array<KernelFn, kBuiltinOps> integer_row() {
  return {&kernel<T, OpKind::kSum>,  &kernel<T, OpKind::kProd>,
          &kernel<T, OpKind::kMin>,  &kernel<T, OpKind::kMax>,
          &kernel<T, OpKind::kBand>, &kernel<T, OpKind::kBor>,
          &kernel<T, OpKind::kBxor>};
}

// Rows indexed by DType value, columns by OpKind value.  Bitwise columns of
// float rows are null — supports() rejects those pairs before dispatch.
constexpr std::array<std::array<KernelFn, kBuiltinOps>, kDTypeCount>
    kKernelTable{{
        integer_row<i8>(),   // kInt8
        integer_row<i16>(),  // kInt16
        integer_row<i32>(),  // kInt32
        integer_row<i64>(),  // kInt64
        {&kernel_f16<OpKind::kSum>, &kernel_f16<OpKind::kProd>,
         &kernel_f16<OpKind::kMin>, &kernel_f16<OpKind::kMax>, nullptr,
         nullptr, nullptr},  // kFloat16
        {&kernel<f32, OpKind::kSum>, &kernel<f32, OpKind::kProd>,
         &kernel<f32, OpKind::kMin>, &kernel<f32, OpKind::kMax>, nullptr,
         nullptr, nullptr},  // kFloat32
    }};

template <typename T>
T identity_of(OpKind k) {
  switch (k) {
    case OpKind::kSum: return T{0};
    case OpKind::kProd: return T{1};
    case OpKind::kMin:
      // Floats: +inf, NOT numeric_limits<T>::max() — min(FLT_MAX, +inf)
      // is FLT_MAX, so a max()-identity silently clips +inf inputs.
      if constexpr (std::is_floating_point_v<T>) {
        return std::numeric_limits<T>::infinity();
      } else {
        return std::numeric_limits<T>::max();
      }
    case OpKind::kMax:
      if constexpr (std::is_floating_point_v<T>) {
        return -std::numeric_limits<T>::infinity();
      } else {
        return std::numeric_limits<T>::lowest();
      }
    case OpKind::kBand:
      if constexpr (std::is_integral_v<T>) {
        return static_cast<T>(~T{0});
      } else {
        return T{0};
      }
    case OpKind::kBor: return T{0};
    case OpKind::kBxor: return T{0};
    case OpKind::kCustom: break;
  }
  return T{0};
}

}  // namespace

std::string_view op_name(OpKind k) {
  switch (k) {
    case OpKind::kSum: return "sum";
    case OpKind::kProd: return "prod";
    case OpKind::kMin: return "min";
    case OpKind::kMax: return "max";
    case OpKind::kBand: return "band";
    case OpKind::kBor: return "bor";
    case OpKind::kBxor: return "bxor";
    case OpKind::kCustom: return "custom";
  }
  return "?";
}

ReduceOp::ReduceOp(OpKind kind) : kind_(kind), name_(op_name(kind)) {
  FLARE_ASSERT_MSG(kind != OpKind::kCustom,
                   "use ReduceOp::custom() for custom operators");
}

ReduceOp ReduceOp::custom(std::string name, CustomKernel kernel,
                          CustomIdentity identity, bool commutative) {
  ReduceOp op(OpKind::kSum);
  op.kind_ = OpKind::kCustom;
  op.name_ = std::move(name);
  op.commutative_ = commutative;
  op.custom_kernel_ =
      std::make_shared<const CustomKernel>(std::move(kernel));
  op.custom_identity_ =
      std::make_shared<const CustomIdentity>(std::move(identity));
  return op;
}

bool ReduceOp::supports(DType t) const {
  if (kind_ == OpKind::kBand || kind_ == OpKind::kBor ||
      kind_ == OpKind::kBxor) {
    return !dtype_is_float(t);
  }
  return true;
}

void ReduceOp::apply(DType t, void* acc, const void* in,
                     std::size_t n) const {
  FLARE_ASSERT_MSG(supports(t), "operator does not support this dtype");
  // Sparse wire formats pack (index, value) pairs without padding, so `in`
  // (and in principle `acc`) may be misaligned for the dtype.  Bounce
  // misaligned spans through an aligned scratch chunk; typed kernels below
  // may then dereference directly.
  const std::size_t esize = dtype_size(t);
  const bool in_misaligned =
      reinterpret_cast<std::uintptr_t>(in) % esize != 0;
  const bool acc_misaligned =
      reinterpret_cast<std::uintptr_t>(acc) % esize != 0;
  if (in_misaligned || acc_misaligned) {
    alignas(16) std::byte in_scratch[256];
    alignas(16) std::byte acc_scratch[256];
    const std::size_t chunk = sizeof(in_scratch) / esize;
    auto* acc_bytes = static_cast<std::byte*>(acc);
    const auto* in_bytes = static_cast<const std::byte*>(in);
    for (std::size_t off = 0; off < n; off += chunk) {
      const std::size_t m = std::min(chunk, n - off);
      const void* in_chunk = in_bytes + off * esize;
      void* acc_chunk = acc_bytes + off * esize;
      if (in_misaligned) {
        std::memcpy(in_scratch, in_chunk, m * esize);
        in_chunk = in_scratch;
      }
      if (acc_misaligned) {
        std::memcpy(acc_scratch, acc_chunk, m * esize);
        apply(t, acc_scratch, in_chunk, m);
        std::memcpy(acc_chunk, acc_scratch, m * esize);
      } else {
        apply(t, acc_chunk, in_chunk, m);
      }
    }
    return;
  }
  if (kind_ == OpKind::kCustom) {
    (*custom_kernel_)(t, acc, in, n);
    return;
  }
  const KernelFn fn =
      kKernelTable[static_cast<std::size_t>(t)][static_cast<std::size_t>(kind_)];
  FLARE_ASSERT(fn != nullptr);
  fn(acc, in, n);
}

void ReduceOp::fill_identity(DType t, void* dst, std::size_t n) const {
  if (kind_ == OpKind::kCustom) {
    (*custom_identity_)(t, dst, n);
    return;
  }
  switch (t) {
    case DType::kInt8: {
      const i8 v = identity_of<i8>(kind_);
      std::fill_n(static_cast<i8*>(dst), n, v);
      break;
    }
    case DType::kInt16: {
      const i16 v = identity_of<i16>(kind_);
      std::fill_n(static_cast<i16*>(dst), n, v);
      break;
    }
    case DType::kInt32: {
      const i32 v = identity_of<i32>(kind_);
      std::fill_n(static_cast<i32*>(dst), n, v);
      break;
    }
    case DType::kInt64: {
      const i64 v = identity_of<i64>(kind_);
      std::fill_n(static_cast<i64*>(dst), n, v);
      break;
    }
    case DType::kFloat32: {
      const f32 v = identity_of<f32>(kind_);
      std::fill_n(static_cast<f32*>(dst), n, v);
      break;
    }
    case DType::kFloat16: {
      // f16 identities ride the f32 path: f32_to_f16 maps ±inf to the f16
      // infinities (0x7C00 / 0xFC00), so the min/max fix above propagates.
      const u16 v = f32_to_f16(identity_of<f32>(kind_));
      std::fill_n(static_cast<u16*>(dst), n, v);
      break;
    }
  }
}

}  // namespace flare::core
