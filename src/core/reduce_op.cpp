#include "core/reduce_op.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/assert.hpp"

namespace flare::core {

namespace {

template <typename T>
struct Kernels {
  static void apply(OpKind k, T* acc, const T* in, std::size_t n) {
    switch (k) {
      case OpKind::kSum:
        for (std::size_t i = 0; i < n; ++i)
          acc[i] = static_cast<T>(acc[i] + in[i]);
        break;
      case OpKind::kProd:
        for (std::size_t i = 0; i < n; ++i)
          acc[i] = static_cast<T>(acc[i] * in[i]);
        break;
      case OpKind::kMin:
        for (std::size_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
        break;
      case OpKind::kMax:
        for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
        break;
      case OpKind::kBand:
        if constexpr (std::is_integral_v<T>) {
          for (std::size_t i = 0; i < n; ++i)
            acc[i] = static_cast<T>(acc[i] & in[i]);
        }
        break;
      case OpKind::kBor:
        if constexpr (std::is_integral_v<T>) {
          for (std::size_t i = 0; i < n; ++i)
            acc[i] = static_cast<T>(acc[i] | in[i]);
        }
        break;
      case OpKind::kBxor:
        if constexpr (std::is_integral_v<T>) {
          for (std::size_t i = 0; i < n; ++i)
            acc[i] = static_cast<T>(acc[i] ^ in[i]);
        }
        break;
      case OpKind::kCustom:
        FLARE_UNREACHABLE("custom op dispatched through builtin kernel");
    }
  }

  static T identity(OpKind k) {
    switch (k) {
      case OpKind::kSum: return T{0};
      case OpKind::kProd: return T{1};
      case OpKind::kMin: return std::numeric_limits<T>::max();
      case OpKind::kMax: return std::numeric_limits<T>::lowest();
      case OpKind::kBand:
        if constexpr (std::is_integral_v<T>) {
          return static_cast<T>(~T{0});
        } else {
          return T{0};
        }
      case OpKind::kBor: return T{0};
      case OpKind::kBxor: return T{0};
      case OpKind::kCustom: break;
    }
    return T{0};
  }
};

// Float16: convert through f32 per element, exactly like handler code on an
// FP16-capable FPU that widens to f32 internally.
void apply_f16(OpKind k, u16* acc, const u16* in, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const f32 a = f16_to_f32(acc[i]);
    const f32 b = f16_to_f32(in[i]);
    f32 r = 0.0f;
    switch (k) {
      case OpKind::kSum: r = a + b; break;
      case OpKind::kProd: r = a * b; break;
      case OpKind::kMin: r = std::min(a, b); break;
      case OpKind::kMax: r = std::max(a, b); break;
      default: FLARE_UNREACHABLE("unsupported f16 op");
    }
    acc[i] = f32_to_f16(r);
  }
}

}  // namespace

std::string_view op_name(OpKind k) {
  switch (k) {
    case OpKind::kSum: return "sum";
    case OpKind::kProd: return "prod";
    case OpKind::kMin: return "min";
    case OpKind::kMax: return "max";
    case OpKind::kBand: return "band";
    case OpKind::kBor: return "bor";
    case OpKind::kBxor: return "bxor";
    case OpKind::kCustom: return "custom";
  }
  return "?";
}

ReduceOp::ReduceOp(OpKind kind) : kind_(kind), name_(op_name(kind)) {
  FLARE_ASSERT_MSG(kind != OpKind::kCustom,
                   "use ReduceOp::custom() for custom operators");
}

ReduceOp ReduceOp::custom(std::string name, CustomKernel kernel,
                          CustomIdentity identity, bool commutative) {
  ReduceOp op(OpKind::kSum);
  op.kind_ = OpKind::kCustom;
  op.name_ = std::move(name);
  op.commutative_ = commutative;
  op.custom_kernel_ =
      std::make_shared<const CustomKernel>(std::move(kernel));
  op.custom_identity_ =
      std::make_shared<const CustomIdentity>(std::move(identity));
  return op;
}

bool ReduceOp::supports(DType t) const {
  if (kind_ == OpKind::kBand || kind_ == OpKind::kBor ||
      kind_ == OpKind::kBxor) {
    return !dtype_is_float(t);
  }
  return true;
}

void ReduceOp::apply(DType t, void* acc, const void* in,
                     std::size_t n) const {
  FLARE_ASSERT_MSG(supports(t), "operator does not support this dtype");
  // Sparse wire formats pack (index, value) pairs without padding, so `in`
  // (and in principle `acc`) may be misaligned for the dtype.  Bounce
  // misaligned spans through an aligned scratch chunk; typed kernels below
  // may then dereference directly.
  const std::size_t esize = dtype_size(t);
  const bool in_misaligned =
      reinterpret_cast<std::uintptr_t>(in) % esize != 0;
  const bool acc_misaligned =
      reinterpret_cast<std::uintptr_t>(acc) % esize != 0;
  if (in_misaligned || acc_misaligned) {
    alignas(16) std::byte in_scratch[256];
    alignas(16) std::byte acc_scratch[256];
    const std::size_t chunk = sizeof(in_scratch) / esize;
    auto* acc_bytes = static_cast<std::byte*>(acc);
    const auto* in_bytes = static_cast<const std::byte*>(in);
    for (std::size_t off = 0; off < n; off += chunk) {
      const std::size_t m = std::min(chunk, n - off);
      const void* in_chunk = in_bytes + off * esize;
      void* acc_chunk = acc_bytes + off * esize;
      if (in_misaligned) {
        std::memcpy(in_scratch, in_chunk, m * esize);
        in_chunk = in_scratch;
      }
      if (acc_misaligned) {
        std::memcpy(acc_scratch, acc_chunk, m * esize);
        apply(t, acc_scratch, in_chunk, m);
        std::memcpy(acc_chunk, acc_scratch, m * esize);
      } else {
        apply(t, acc_chunk, in_chunk, m);
      }
    }
    return;
  }
  if (kind_ == OpKind::kCustom) {
    (*custom_kernel_)(t, acc, in, n);
    return;
  }
  switch (t) {
    case DType::kInt8:
      Kernels<i8>::apply(kind_, static_cast<i8*>(acc),
                         static_cast<const i8*>(in), n);
      break;
    case DType::kInt16:
      Kernels<i16>::apply(kind_, static_cast<i16*>(acc),
                          static_cast<const i16*>(in), n);
      break;
    case DType::kInt32:
      Kernels<i32>::apply(kind_, static_cast<i32*>(acc),
                          static_cast<const i32*>(in), n);
      break;
    case DType::kInt64:
      Kernels<i64>::apply(kind_, static_cast<i64*>(acc),
                          static_cast<const i64*>(in), n);
      break;
    case DType::kFloat32:
      Kernels<f32>::apply(kind_, static_cast<f32*>(acc),
                          static_cast<const f32*>(in), n);
      break;
    case DType::kFloat16:
      apply_f16(kind_, static_cast<u16*>(acc), static_cast<const u16*>(in),
                n);
      break;
  }
}

void ReduceOp::fill_identity(DType t, void* dst, std::size_t n) const {
  if (kind_ == OpKind::kCustom) {
    (*custom_identity_)(t, dst, n);
    return;
  }
  switch (t) {
    case DType::kInt8: {
      const i8 v = Kernels<i8>::identity(kind_);
      std::fill_n(static_cast<i8*>(dst), n, v);
      break;
    }
    case DType::kInt16: {
      const i16 v = Kernels<i16>::identity(kind_);
      std::fill_n(static_cast<i16*>(dst), n, v);
      break;
    }
    case DType::kInt32: {
      const i32 v = Kernels<i32>::identity(kind_);
      std::fill_n(static_cast<i32*>(dst), n, v);
      break;
    }
    case DType::kInt64: {
      const i64 v = Kernels<i64>::identity(kind_);
      std::fill_n(static_cast<i64*>(dst), n, v);
      break;
    }
    case DType::kFloat32: {
      const f32 v = Kernels<f32>::identity(kind_);
      std::fill_n(static_cast<f32*>(dst), n, v);
      break;
    }
    case DType::kFloat16: {
      const u16 v = f32_to_f16(Kernels<f32>::identity(kind_));
      std::fill_n(static_cast<u16*>(dst), n, v);
      break;
    }
  }
}

}  // namespace flare::core
