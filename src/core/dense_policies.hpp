// Dense aggregation policies (Section 6 of the paper).
//
// Three organisations of the per-block working memory:
//
//  * SingleBufferAggregator (6.1): every packet of a block accumulates into
//    one shared buffer inside a critical section.  Handlers that find the
//    buffer locked spin (PsPIN handlers are never suspended), consuming
//    core cycles — the contention collapse for small messages in Figure 7.
//
//  * MultiBufferAggregator (6.2): B buffers per block; a handler grabs any
//    idle buffer, so the lock-collision probability drops ~B-fold, at the
//    price of the last handler sequentially folding the B-1 partial buffers.
//
//  * TreeAggregator (6.3): every packet is copied into its own leaf buffer
//    (cheap DMA), then partial results are combined pairwise up a FIXED
//    binary tree.  A handler only climbs when its sibling subtree is already
//    done, so no handler ever waits — and because the combine order never
//    exploits associativity or commutativity, floating-point results are
//    bitwise reproducible across arrival orders (F3).
//
// All three are continuation-based state machines over the shared event
// calendar: every cycle charged is causally ordered, so lock waits, merge
// stalls and climb hand-offs happen at their true simulated times.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "core/block_state.hpp"
#include "core/buffer_pool.hpp"
#include "core/engine_host.hpp"
#include "core/policy.hpp"
#include "core/reduce_op.hpp"

namespace flare::core {

/// Static configuration of one installed allreduce on one switch.
struct AllreduceConfig {
  u32 id = 0;
  /// Attribution tag (Network::alloc_trace_id): stamped onto every packet
  /// this collective serializes so links can account busy-time per session.
  /// Stable across fresh-id reinstalls — only `id` churns on migration.
  /// 0 = untagged.
  u32 trace = 0;
  /// P: number of children of this switch in the reduction tree.
  u32 num_children = 1;
  DType dtype = DType::kFloat32;
  ReduceOp op{OpKind::kSum};
  /// N: elements per (dense) packet / block.
  u32 elems_per_packet = 256;
  AggPolicy policy = AggPolicy::kTree;
  u32 num_buffers = 1;  ///< B for the multi-buffer policy
  bool reproducible = false;
  /// Root of the reduction tree: results are flagged kFlagDown.
  bool is_root = true;
  /// Aggregation buffers live in a remote cluster's L1 (what happens
  /// WITHOUT hierarchical FCFS scheduling, Section 5): every access pays
  /// the up-to-25x penalty.  Used by the scheduler ablation.
  bool remote_l1 = false;

  /// Host-side fault recovery is armed (Tuning::retransmit_timeout_ps):
  /// switches cache sparse emission sequences for retransmission replay
  /// only when someone can actually ask for them.
  bool fault_recovery = false;

  // --- sparse allreduce (Section 7) ---
  bool sparse = false;
  bool hash_storage = true;     ///< hash+spill if true, contiguous array else
  u32 block_span = 0;           ///< elements of index space per sparse block
  u32 pairs_per_packet = 128;   ///< MTU budget in (index, value) pairs
  u32 hash_capacity_pairs = 256;
  u32 spill_capacity_pairs = 64;

  u64 dense_block_bytes() const {
    return static_cast<u64>(elems_per_packet) * dtype_size(dtype);
  }
};

/// Counters shared by all aggregator implementations.
struct EngineStats {
  u64 packets_in = 0;
  u64 payload_bytes_in = 0;
  u64 duplicates_dropped = 0;
  u64 blocks_completed = 0;
  u64 packets_emitted = 0;
  u64 bytes_emitted = 0;        ///< wire bytes of emitted packets
  u64 spill_packets = 0;
  u64 spill_pairs = 0;
  RunningStats block_latency;   ///< cycles, first packet arrival -> emit
  RunningStats block_mem_bytes; ///< working-memory footprint per block
  RunningStats cs_wait_cycles;  ///< per-handler critical-section spin time
};

/// Common interface driven by the hosting simulator.  `process` is invoked
/// when an HPU core *starts* the handler for `pkt`; the aggregator charges
/// dispatch/DMA/aggregation cycles on the event calendar and calls `done`
/// exactly once with the core-release time.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual void process(std::shared_ptr<const Packet> pkt,
                       HandlerDone done) = 0;

  /// Clears per-iteration block state (open blocks + completed-block
  /// dedup sets) so an installed engine can serve the next iteration of a
  /// persistent collective with the same block ids.  Must only be called
  /// between iterations: open blocks at reset time indicate in-flight
  /// packets and are a protocol bug.  Cumulative stats are preserved.
  virtual void reset() = 0;

  const EngineStats& stats() const { return stats_; }
  EngineStats& stats() { return stats_; }

 protected:
  EngineStats stats_;
};

// ---------------------------------------------------------------------------

class SingleBufferAggregator final : public Aggregator {
 public:
  SingleBufferAggregator(EngineHost& host, const AllreduceConfig& cfg,
                         BufferPool& pool);
  void process(std::shared_ptr<const Packet> pkt, HandlerDone done) override;
  void reset() override;

 private:
  struct Block {
    PayloadVec buf;
    ChildBitmap bitmap;
    u32 aggregated = 0;  ///< packets folded into the buffer so far; the
                         ///< bitmap marks arrivals, but completion requires
                         ///< the aggregation work itself to have run
    bool has_data = false;
    bool cs_busy = false;
    bool completed = false;
    SimTime first_arrival = 0;
    /// FIFO of handlers spinning on the critical section; each entry is
    /// resumed with the time at which it acquires the lock.
    std::deque<std::function<void(SimTime)>> waiters;
  };

  Block& get_block(u32 block_id, SimTime now);
  void on_ready(std::shared_ptr<const Packet> pkt, HandlerDone done);
  void in_critical_section(u32 block_id, std::shared_ptr<const Packet> pkt,
                           SimTime enqueued_at, SimTime start,
                           HandlerDone done);
  void leave_cs(u32 block_id, SimTime end);

  EngineHost& host_;
  AllreduceConfig cfg_;
  BufferPool& pool_;
  std::unordered_map<u32, Block> blocks_;
  std::unordered_set<u32> completed_;
};

// ---------------------------------------------------------------------------

class MultiBufferAggregator final : public Aggregator {
 public:
  MultiBufferAggregator(EngineHost& host, const AllreduceConfig& cfg,
                        BufferPool& pool);
  void process(std::shared_ptr<const Packet> pkt, HandlerDone done) override;
  void reset() override;

 private:
  struct Sub {
    PayloadVec buf;
    bool allocated = false;
    bool has_data = false;
    bool busy = false;
  };
  struct Block {
    std::vector<Sub> subs;
    ChildBitmap bitmap;
    u32 aggregated = 0;  ///< packets whose aggregation work has finished
    u32 elems = 0;       ///< payload elements (ragged last block support)
    u32 max_allocated = 0;  ///< peak simultaneously-allocated sub-buffers
    SimTime first_arrival = 0;
    std::deque<std::function<void(SimTime, u32)>> waiters;  ///< (time, sub)
  };

  Block& get_block(u32 block_id, SimTime now);
  /// Cached blocks_.at(): a block's packets are handled in a burst (arrive,
  /// aggregate, merge, finish), so consecutive lookups overwhelmingly hit
  /// the same block.  unordered_map references are stable under insert, so
  /// the cache only needs invalidating when the block is erased.
  Block& block_ref(u32 block_id) {
    if (cached_block_ != nullptr && cached_block_id_ == block_id) {
      return *cached_block_;
    }
    Block& b = blocks_.at(block_id);
    cached_block_id_ = block_id;
    cached_block_ = &b;
    return b;
  }
  void on_ready(std::shared_ptr<const Packet> pkt, HandlerDone done);
  void run_on_sub(u32 block_id, u32 sub_idx,
                  std::shared_ptr<const Packet> pkt, SimTime enqueued_at,
                  SimTime start, HandlerDone done);
  void release_sub(u32 block_id, u32 sub_idx, SimTime at);
  void merge_chain(u32 block_id, u32 my_sub, SimTime t, HandlerDone done);
  void finish_block(u32 block_id, u32 my_sub, SimTime t, HandlerDone done);

  EngineHost& host_;
  AllreduceConfig cfg_;
  BufferPool& pool_;
  std::unordered_map<u32, Block> blocks_;
  u32 cached_block_id_ = 0;
  Block* cached_block_ = nullptr;  ///< one-entry cache over blocks_
  std::unordered_set<u32> completed_;
};

// ---------------------------------------------------------------------------

class TreeAggregator final : public Aggregator {
 public:
  TreeAggregator(EngineHost& host, const AllreduceConfig& cfg,
                 BufferPool& pool);
  void process(std::shared_ptr<const Packet> pkt, HandlerDone done) override;
  void reset() override;

  /// Exposed for tests: the fixed combine tree over `p` leaves.  Node 0 is
  /// the root; leaves are identified by child index.
  struct TreeShape {
    struct Node {
      u32 lo, hi;       ///< covers children [lo, hi)
      i32 left = -1;    ///< node index, -1 for none
      i32 right = -1;
      i32 parent = -1;
    };
    std::vector<Node> nodes;
    u32 leaf_of(u32 child) const;  ///< node index of leaf for `child`
  };
  static TreeShape build_shape(u32 p);

 private:
  struct NodeState {
    bool done = false;
    bool claimed = false;  ///< a handler is (or has) combining this node
    PayloadVec buf;  ///< subtree result, valid when done
  };
  struct Block {
    std::vector<NodeState> nodes;
    ChildBitmap bitmap;
    u32 elems = 0;          ///< payload elements (ragged last block support)
    u32 alive_buffers = 0;  ///< currently-held leaf/internal buffers
    u32 max_alive = 0;      ///< peak — the paper's M = (P-1)/log2(P) profile
    SimTime first_arrival = 0;
  };

  Block& get_block(u32 block_id, SimTime now);
  void on_ready(std::shared_ptr<const Packet> pkt, HandlerDone done);
  void climb(u32 block_id, u32 node, SimTime t, HandlerDone done);
  void complete_root(u32 block_id, SimTime t, HandlerDone done);

  EngineHost& host_;
  AllreduceConfig cfg_;
  BufferPool& pool_;
  TreeShape shape_;
  std::unordered_map<u32, Block> blocks_;
  std::unordered_set<u32> completed_;
};

/// Factory over AllreduceConfig::policy (dense only; sparse lives in
/// sparse_policy.hpp).
std::unique_ptr<Aggregator> make_dense_aggregator(EngineHost& host,
                                                  const AllreduceConfig& cfg,
                                                  BufferPool& pool);

}  // namespace flare::core
