#include "core/policy.hpp"

namespace flare::core {

std::string_view policy_name(AggPolicy p) {
  switch (p) {
    case AggPolicy::kSingleBuffer: return "single-buffer";
    case AggPolicy::kMultiBuffer: return "multi-buffer";
    case AggPolicy::kTree: return "tree";
  }
  return "?";
}

PolicyChoice select_policy(u64 data_bytes, bool reproducible,
                           const PolicyThresholds& thresholds) {
  if (reproducible) return {AggPolicy::kTree, 1};
  if (data_bytes > thresholds.single_buffer_min_bytes)
    return {AggPolicy::kSingleBuffer, 1};
  if (data_bytes > thresholds.multi4_min_bytes)
    return {AggPolicy::kMultiBuffer, 4};
  if (data_bytes > thresholds.multi2_min_bytes)
    return {AggPolicy::kMultiBuffer, 2};
  return {AggPolicy::kTree, 1};
}

}  // namespace flare::core
