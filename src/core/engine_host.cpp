#include "core/engine_host.hpp"

namespace flare::core {

// EngineHost is an interface; the anchor keeps its typeinfo in this library.

}  // namespace flare::core
