// Element data types supported by the Flare aggregation engine.
//
// Flexibility limitation F1 of the paper: fixed-function and RMT-based
// switches support a frozen set of types (SwitchML: int32 only).  Flare
// handlers are software, so any type with a C representation works; this
// reproduction ships the types the paper evaluates (int8/16/32, fp16, fp32,
// Figure 11) plus int64, and fp16 is implemented in software exactly as a
// RISC-V core without a double-precision FPU would handle it.
#pragma once

#include <cstddef>
#include <string_view>

#include "common/units.hpp"

namespace flare::core {

enum class DType : u8 {
  kInt8 = 0,
  kInt16,
  kInt32,
  kInt64,
  kFloat16,
  kFloat32,
};

inline constexpr DType kAllDTypes[] = {
    DType::kInt8,  DType::kInt16,   DType::kInt32,
    DType::kInt64, DType::kFloat16, DType::kFloat32,
};

/// Size in bytes of one element.
constexpr u32 dtype_size(DType t) {
  switch (t) {
    case DType::kInt8: return 1;
    case DType::kInt16: return 2;
    case DType::kInt32: return 4;
    case DType::kInt64: return 8;
    case DType::kFloat16: return 2;
    case DType::kFloat32: return 4;
  }
  return 0;
}

std::string_view dtype_name(DType t);

constexpr bool dtype_is_float(DType t) {
  return t == DType::kFloat16 || t == DType::kFloat32;
}

/// IEEE 754 binary16 <-> binary32 conversions (round-to-nearest-even),
/// matching the behaviour of the FPnew FP16 unit the paper adds to each HPU.
u16 f32_to_f16(f32 value);
f32 f16_to_f32(u16 half_bits);

}  // namespace flare::core
