#include "core/staggered.hpp"

namespace flare::core {

u32 staggered_block(u32 host, u32 num_hosts, u32 num_blocks, u32 pos,
                    SendOrder order) {
  FLARE_ASSERT(pos < num_blocks);
  FLARE_ASSERT(host < num_hosts);
  if (order == SendOrder::kAligned) return pos;
  const u32 stride = (num_blocks + num_hosts - 1) / num_hosts;  // ceil
  return (pos + host * stride) % num_blocks;
}

std::vector<u32> send_schedule(u32 host, u32 num_hosts, u32 num_blocks,
                               SendOrder order) {
  std::vector<u32> out(num_blocks);
  for (u32 i = 0; i < num_blocks; ++i)
    out[i] = staggered_block(host, num_hosts, num_blocks, i, order);
  return out;
}

f64 staggered_delta_c_factor(u32 num_hosts, u32 num_blocks, SendOrder order) {
  if (order == SendOrder::kAligned || num_blocks <= 1) return 1.0;
  const u32 stride = (num_blocks + num_hosts - 1) / num_hosts;
  return static_cast<f64>(stride);
}

}  // namespace flare::core
