#include "core/sparse_policy.hpp"

#include <algorithm>
#include <cstring>

namespace flare::core {

Packet make_sparse_packet_from_pairs(
    const AllreduceConfig& cfg, u32 block_id,
    std::vector<StoredPair>::const_iterator first, u32 count, u16 flags,
    u32 shard_seq) {
  Packet p;
  p.hdr.allreduce_id = cfg.id;
  p.hdr.block_id = block_id;
  p.hdr.shard_seq = shard_seq;
  p.hdr.flags = static_cast<u16>(kFlagSparse | flags);
  p.hdr.elem_count = count;
  const u32 es = dtype_size(cfg.dtype);
  p.payload.resize(static_cast<std::size_t>(count) * (sizeof(u32) + es));
  std::byte* idx_out = p.payload.data();
  std::byte* val_out = p.payload.data() + static_cast<std::size_t>(count) *
                                              sizeof(u32);
  for (u32 i = 0; i < count; ++i) {
    const StoredPair& sp = *(first + i);
    std::memcpy(idx_out + i * sizeof(u32), &sp.index, sizeof(u32));
    std::memcpy(val_out + static_cast<std::size_t>(i) * es, sp.value.data(),
                es);
  }
  return p;
}

SparseAggregator::SparseAggregator(EngineHost& host,
                                   const AllreduceConfig& cfg,
                                   BufferPool& pool)
    : host_(host), cfg_(cfg), pool_(pool) {
  FLARE_ASSERT(cfg_.sparse);
  FLARE_ASSERT(cfg_.num_children >= 1);
  FLARE_ASSERT(cfg_.num_buffers >= 1);
  FLARE_ASSERT_MSG(cfg_.hash_storage || cfg_.block_span > 0,
                   "array storage needs a block span");
}

SparseAggregator::~SparseAggregator() = default;

std::unique_ptr<SparseStore> SparseAggregator::make_store() const {
  if (cfg_.hash_storage)
    return std::make_unique<HashStore>(cfg_.hash_capacity_pairs, cfg_.dtype);
  return std::make_unique<ArrayStore>(cfg_.block_span, cfg_.dtype);
}

u64 SparseAggregator::store_footprint() const {
  const u64 pair_bytes = sparse_pair_bytes(cfg_.dtype);
  u64 f;
  if (cfg_.hash_storage) {
    f = std::bit_ceil(static_cast<u64>(cfg_.hash_capacity_pairs)) *
            pair_bytes +
        cfg_.spill_capacity_pairs * pair_bytes;
  } else {
    f = static_cast<u64>(cfg_.block_span) * dtype_size(cfg_.dtype) +
        cfg_.block_span / 8;
  }
  return f;
}

SparseAggregator::Block& SparseAggregator::get_block(u32 block_id,
                                                     SimTime now) {
  auto [it, inserted] = blocks_.try_emplace(block_id);
  Block& blk = it->second;
  if (inserted) {
    blk.tracker = std::make_unique<SparseBlockTracker>(cfg_.num_children);
    blk.stores.resize(cfg_.num_buffers);
    for (auto& s : blk.stores) {
      s.store = make_store();
      const bool ok = pool_.acquire(store_footprint(), now);
      FLARE_ASSERT_MSG(ok, "working-memory pool exhausted");
    }
    blk.first_arrival = now;
  }
  return blk;
}

void SparseAggregator::reset() {
  // Blocks can be open here when a persistent session resets an engine
  // whose iteration was abandoned by the recovery plane (fresh-id
  // reinstall elsewhere left this engine mid-block): drop them and return
  // their working memory, or the pool's occupancy telemetry would report a
  // leak for the lifetime of the install.
  const SimTime now = host_.simulator().now();
  // flare-lint: allow(unordered-iter) commutative integer pool releases
  for (auto& [id, blk] : blocks_) {
    pool_.release(store_footprint() * blk.stores.size(), now);
  }
  blocks_.clear();
  completed_.clear();
}

void SparseAggregator::process(std::shared_ptr<const Packet> pkt,
                               HandlerDone done) {
  stats_.packets_in += 1;
  stats_.payload_bytes_in += pkt->payload_bytes();
  const auto& costs = host_.costs();
  const u64 pre = costs.handler_dispatch_cycles + costs.dma_packet_cycles;
  std::weak_ptr<char> w = alive_;
  host_.simulator().schedule_after(
      pre, [this, w, pkt = std::move(pkt), done = std::move(done)]() mutable {
        if (w.expired()) return;  // engine uninstalled while queued
        on_ready(std::move(pkt), std::move(done));
      });
}

void SparseAggregator::on_ready(std::shared_ptr<const Packet> pkt,
                                HandlerDone done) {
  sim::Simulator& sim = host_.simulator();
  const SimTime now = sim.now();
  const u32 bid = pkt->hdr.block_id;
  if (completed_.contains(bid)) {
    stats_.duplicates_dropped += 1;
    done(now);
    return;
  }
  Block& blk = get_block(bid, now);
  const auto mark = blk.tracker->mark(
      pkt->hdr.child_index, pkt->hdr.shard_seq, pkt->is_last_shard(),
      pkt->hdr.shard_count);
  if (!mark.fresh) {
    stats_.duplicates_dropped += 1;
    done(now);
    return;
  }
  blk.seen += 1;
  for (u32 i = 0; i < blk.stores.size(); ++i) {
    if (!blk.stores[i].busy) {
      blk.stores[i].busy = true;
      run_on_store(bid, i, std::move(pkt), now, now, std::move(done));
      return;
    }
  }
  blk.waiters.emplace_back(
      [this, bid, pkt = std::move(pkt), now,
       done = std::move(done)](SimTime start, u32 store_idx) mutable {
        run_on_store(bid, store_idx, std::move(pkt), now, start,
                     std::move(done));
      });
}

void SparseAggregator::run_on_store(u32 block_id, u32 store_idx,
                                    std::shared_ptr<const Packet> pkt,
                                    SimTime enqueued_at, SimTime start,
                                    HandlerDone done) {
  Block& blk = blocks_.at(block_id);
  StoreSlot& slot = blk.stores[store_idx];
  stats_.cs_wait_cycles.add(static_cast<f64>(start - enqueued_at));
  const auto& costs = host_.costs();

  const SparseView view = pkt->hdr.elem_count > 0
                              ? sparse_view(*pkt, cfg_.dtype)
                              : SparseView{};
  const u32 es = dtype_size(cfg_.dtype);
  u32 spilled = 0;
  for (u32 i = 0; i < view.count; ++i) {
    const std::byte* val = view.values + static_cast<std::size_t>(i) * es;
    if (!slot.store->insert(view.indices[i], val, cfg_.dtype, cfg_.op)) {
      slot.spill.push_back(make_stored_pair(view.indices[i], val, cfg_.dtype));
      spilled += 1;
      total_collisions_ += 1;
    }
  }

  u64 work = costs.sparse_insert_cycles(cfg_.hash_storage, view.count) +
             static_cast<u64>(static_cast<f64>(spilled) *
                              costs.spill_append_cycles_per_pair);
  SimTime end = start + work;

  // Spill-buffer overflow: flush onto the network right away (Section 7).
  while (slot.spill.size() >= cfg_.spill_capacity_pairs) {
    end += costs.emit_packet_cycles;
    flush_spill(blk, slot, block_id, end);
  }

  std::weak_ptr<char> w = alive_;
  host_.simulator().schedule_at(
      end, [this, w, block_id, store_idx, done = std::move(done)]() mutable {
        if (w.expired()) return;  // engine uninstalled while working
        const auto it = blocks_.find(block_id);
        if (it == blocks_.end()) return;  // reset dropped the block
        Block& b = it->second;
        b.inserted += 1;
        const SimTime now2 = host_.simulator().now();
        if (b.tracker->complete() && b.inserted == b.seen) {
          finalize_block(block_id, store_idx, now2, std::move(done));
        } else {
          release_store(block_id, store_idx, now2);
          done(now2);
        }
      });
}

void SparseAggregator::release_store(u32 block_id, u32 store_idx,
                                     SimTime at) {
  Block& blk = blocks_.at(block_id);
  if (!blk.waiters.empty()) {
    auto fn = std::move(blk.waiters.front());
    blk.waiters.pop_front();
    fn(at, store_idx);
    return;
  }
  blk.stores[store_idx].busy = false;
}

void SparseAggregator::flush_spill(Block& blk, StoreSlot& slot, u32 block_id,
                                   SimTime when) {
  const u32 n = std::min<u32>(static_cast<u32>(slot.spill.size()),
                              cfg_.pairs_per_packet);
  Packet out = make_sparse_packet_from_pairs(
      cfg_, block_id, slot.spill.cbegin(), n,
      static_cast<u16>(kFlagSpill | (cfg_.is_root ? kFlagDown : 0)),
      blk.emit_seq++);
  slot.spill.erase(slot.spill.begin(), slot.spill.begin() + n);
  stats_.spill_packets += 1;
  stats_.spill_pairs += n;
  stats_.packets_emitted += 1;
  stats_.bytes_emitted += out.wire_bytes();
  host_.emit(std::move(out), when);
}

void SparseAggregator::finalize_block(u32 block_id, u32 my_store, SimTime t,
                                      HandlerDone done) {
  Block& blk = blocks_.at(block_id);
  const auto& costs = host_.costs();

  // Fold sibling stores into mine (extract + re-insert, paying per-pair
  // insert cost), then flush their leftover spills.
  u64 merge_cycles = 0;
  StoreSlot& mine = blk.stores[my_store];
  for (u32 j = 0; j < blk.stores.size(); ++j) {
    if (j == my_store) continue;
    StoreSlot& other = blk.stores[j];
    FLARE_ASSERT_MSG(!other.busy, "sparse merge with an active store");
    std::vector<StoredPair> pairs;
    other.store->extract(pairs);
    merge_cycles += costs.scan_cycles(other.store->scan_slots(), 0);
    for (const StoredPair& sp : pairs) {
      if (!mine.store->insert(sp.index, sp.value.data(), cfg_.dtype,
                              cfg_.op)) {
        mine.spill.push_back(sp);
        total_collisions_ += 1;
      }
    }
    merge_cycles +=
        costs.sparse_insert_cycles(cfg_.hash_storage, pairs.size());
    // Sibling spills cannot be re-aggregated (single-probe design): they
    // travel as-is.
    for (const StoredPair& sp : other.spill) mine.spill.push_back(sp);
    other.spill.clear();
  }
  t += merge_cycles;

  // Completion scan: extract the aggregated pairs in deterministic order.
  std::vector<StoredPair> result;
  mine.store->extract(result);
  t += costs.scan_cycles(mine.store->scan_slots(),
                         result.size() + mine.spill.size());

  // Leftover spills flush first, then the aggregated result, then the
  // last-shard marker with the total count this node emitted for the block.
  while (!mine.spill.empty()) {
    t += costs.emit_packet_cycles;
    flush_spill(blk, mine, block_id, t);
  }

  const u16 down_flag = static_cast<u16>(cfg_.is_root ? kFlagDown : 0);
  u32 emitted_here = 0;
  u32 offset = 0;
  const u32 total = static_cast<u32>(result.size());
  while (offset < total) {
    const u32 n = std::min(cfg_.pairs_per_packet, total - offset);
    const bool last = (offset + n == total);
    u16 flags = down_flag;
    u32 shard_count = 0;
    if (last) {
      flags |= kFlagLastShard;
      shard_count = blk.emit_seq + 1;  // everything emitted incl. this one
    }
    t += costs.emit_packet_cycles;
    Packet out = make_sparse_packet_from_pairs(
        cfg_, block_id, result.cbegin() + offset, n, flags, blk.emit_seq);
    out.hdr.shard_count = shard_count;
    blk.emit_seq += 1;
    stats_.packets_emitted += 1;
    stats_.bytes_emitted += out.wire_bytes();
    host_.emit(std::move(out), t);
    offset += n;
    emitted_here += 1;
  }
  if (total == 0) {
    // All children sent empty blocks (or everything spilled): still emit the
    // completion marker so the parent's children counter advances.
    t += costs.emit_packet_cycles;
    Packet out = make_sparse_packet_from_pairs(
        cfg_, block_id, result.cbegin(), 0,
        static_cast<u16>(down_flag | kFlagLastShard | kFlagEmptyBlock),
        blk.emit_seq);
    out.hdr.shard_count = blk.emit_seq + 1;
    blk.emit_seq += 1;
    stats_.packets_emitted += 1;
    stats_.bytes_emitted += out.wire_bytes();
    host_.emit(std::move(out), t);
  }

  stats_.blocks_completed += 1;
  stats_.block_latency.add(static_cast<f64>(t - blk.first_arrival));
  stats_.block_mem_bytes.add(
      static_cast<f64>(store_footprint() * blk.stores.size()));

  const u64 release_bytes = store_footprint() * blk.stores.size();
  std::weak_ptr<char> w = alive_;
  host_.simulator().schedule_at(t, [this, w, release_bytes] {
    if (w.expired()) return;  // engine (and its pool) already gone
    pool_.release(release_bytes, host_.simulator().now());
  });
  completed_.insert(block_id);
  blocks_.erase(block_id);
  done(t);
}

std::unique_ptr<Aggregator> make_sparse_aggregator(EngineHost& host,
                                                   const AllreduceConfig& cfg,
                                                   BufferPool& pool) {
  return std::make_unique<SparseAggregator>(host, cfg, pool);
}

std::unique_ptr<Aggregator> make_aggregator(EngineHost& host,
                                            const AllreduceConfig& cfg,
                                            BufferPool& pool) {
  if (cfg.sparse) return make_sparse_aggregator(host, cfg, pool);
  return make_dense_aggregator(host, cfg, pool);
}

}  // namespace flare::core
