// Aggregation-policy selection (Section 6.4).
//
// Flare picks the parallelism/memory organisation by reduction size:
//   > 512 KiB  -> single buffer          (staggered sending hides contention)
//   > 256 KiB  -> multiple buffers, B=4
//   > 128 KiB  -> multiple buffers, B=2
//   otherwise  -> tree aggregation       (contention-free)
// When the user requests reproducible floating-point reduction (F3), tree
// aggregation is always used: its fixed association never exploits
// associativity, so results are bitwise identical across runs.
#pragma once

#include <string_view>

#include "common/units.hpp"

namespace flare::core {

enum class AggPolicy : u8 {
  kSingleBuffer = 0,
  kMultiBuffer,
  kTree,
};

std::string_view policy_name(AggPolicy p);

struct PolicyChoice {
  AggPolicy policy;
  u32 num_buffers;  ///< B; meaningful for kMultiBuffer (1 otherwise)
};

/// Thresholds from Section 6.4, exposed for the ablation bench.
struct PolicyThresholds {
  u64 single_buffer_min_bytes = 512 * 1024;
  u64 multi4_min_bytes = 256 * 1024;
  u64 multi2_min_bytes = 128 * 1024;
};

/// Selects the policy Flare uses for a reduction of `data_bytes` per host.
PolicyChoice select_policy(u64 data_bytes, bool reproducible,
                           const PolicyThresholds& thresholds = {});

}  // namespace flare::core
