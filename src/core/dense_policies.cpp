#include "core/dense_policies.hpp"

#include <algorithm>
#include <cstring>

namespace flare::core {

namespace {

/// Builds the block-result packet from an aggregation buffer.  `elems` may
/// be smaller than the configured N for the ragged last block of a message.
Packet make_result_packet(const AllreduceConfig& cfg, u32 block_id,
                          PayloadVec&& buf, u32 elems) {
  Packet out;
  out.hdr.allreduce_id = cfg.id;
  out.hdr.block_id = block_id;
  out.hdr.elem_count = elems;
  out.hdr.shard_count = 1;
  out.hdr.flags = kFlagLastShard;
  if (cfg.is_root) out.hdr.flags |= kFlagDown;
  buf.resize(static_cast<std::size_t>(elems) * dtype_size(cfg.dtype));
  out.payload = std::move(buf);
  return out;
}

}  // namespace

// ===========================================================================
// SingleBufferAggregator
// ===========================================================================

SingleBufferAggregator::SingleBufferAggregator(EngineHost& host,
                                               const AllreduceConfig& cfg,
                                               BufferPool& pool)
    : host_(host), cfg_(cfg), pool_(pool) {
  FLARE_ASSERT(cfg_.num_children >= 1);
}

SingleBufferAggregator::Block& SingleBufferAggregator::get_block(
    u32 block_id, SimTime now) {
  auto [it, inserted] = blocks_.try_emplace(block_id);
  Block& blk = it->second;
  if (inserted) {
    blk.bitmap.reset(cfg_.num_children);
    blk.buf.resize(cfg_.dense_block_bytes());
    blk.first_arrival = now;
    const bool ok = pool_.acquire(cfg_.dense_block_bytes(), now);
    FLARE_ASSERT_MSG(ok, "working-memory pool exhausted (host window too "
                         "large for the allocated buffers)");
  }
  return blk;
}

void SingleBufferAggregator::reset() {
  FLARE_ASSERT_MSG(blocks_.empty(),
                   "reset with open blocks: packets still in flight");
  completed_.clear();
}

void SingleBufferAggregator::process(std::shared_ptr<const Packet> pkt,
                                     HandlerDone done) {
  stats_.packets_in += 1;
  stats_.payload_bytes_in += pkt->payload_bytes();
  const auto& costs = host_.costs();
  const u64 pre = costs.handler_dispatch_cycles + costs.dma_packet_cycles;
  host_.simulator().schedule_after(
      pre, [this, pkt = std::move(pkt), done = std::move(done)]() mutable {
        on_ready(std::move(pkt), std::move(done));
      });
}

void SingleBufferAggregator::on_ready(std::shared_ptr<const Packet> pkt,
                                      HandlerDone done) {
  sim::Simulator& sim = host_.simulator();
  const SimTime now = sim.now();
  const u32 bid = pkt->hdr.block_id;
  if (completed_.contains(bid)) {
    stats_.duplicates_dropped += 1;
    done(now);
    return;
  }
  Block& blk = get_block(bid, now);
  if (!blk.bitmap.mark(pkt->hdr.child_index)) {
    stats_.duplicates_dropped += 1;
    done(now);
    return;
  }
  if (!blk.cs_busy) {
    blk.cs_busy = true;
    in_critical_section(bid, std::move(pkt), now, now, std::move(done));
  } else {
    blk.waiters.emplace_back(
        [this, bid, pkt = std::move(pkt), now,
         done = std::move(done)](SimTime start) mutable {
          in_critical_section(bid, std::move(pkt), now, start,
                              std::move(done));
        });
  }
}

void SingleBufferAggregator::in_critical_section(
    u32 block_id, std::shared_ptr<const Packet> pkt, SimTime enqueued_at,
    SimTime start, HandlerDone done) {
  Block& blk = blocks_.at(block_id);
  stats_.cs_wait_cycles.add(static_cast<f64>(start - enqueued_at));
  const auto& costs = host_.costs();
  const u32 elems = pkt->hdr.elem_count;
  FLARE_ASSERT(pkt->payload.size() ==
               static_cast<std::size_t>(elems) * dtype_size(cfg_.dtype));

  u64 work;
  if (!blk.has_data) {
    // First packet of the block: plain buffer initialization via DMA.
    // (Barrier blocks are 0-byte; memcpy must not see a null source.)
    if (!pkt->payload.empty()) {
      std::memcpy(blk.buf.data(), pkt->payload.data(),
                  pkt->payload.size());
    }
    blk.has_data = true;
    work = costs.dma_packet_cycles;
  } else {
    cfg_.op.apply(cfg_.dtype, blk.buf.data(), pkt->payload.data(), elems);
    work = costs.aggregation_cycles(cfg_.dtype, elems, cfg_.remote_l1);
  }

  blk.aggregated += 1;
  SimTime end = start + work;
  if (blk.aggregated == cfg_.num_children) {
    FLARE_ASSERT(blk.bitmap.complete());
    end += costs.emit_packet_cycles;
    Packet out =
        make_result_packet(cfg_, block_id, std::move(blk.buf), elems);
    stats_.packets_emitted += 1;
    stats_.bytes_emitted += out.wire_bytes();
    stats_.blocks_completed += 1;
    stats_.block_latency.add(static_cast<f64>(end - blk.first_arrival));
    stats_.block_mem_bytes.add(static_cast<f64>(cfg_.dense_block_bytes()));
    blk.completed = true;
    host_.emit(std::move(out), end);
  }
  leave_cs(block_id, end);
  done(end);
}

void SingleBufferAggregator::leave_cs(u32 block_id, SimTime end) {
  host_.simulator().schedule_at(end, [this, block_id] {
    auto it = blocks_.find(block_id);
    if (it == blocks_.end()) return;
    Block& blk = it->second;
    if (!blk.waiters.empty()) {
      auto fn = std::move(blk.waiters.front());
      blk.waiters.pop_front();
      fn(host_.simulator().now());  // lock hands over; cs_busy stays true
      return;
    }
    blk.cs_busy = false;
    if (blk.completed) {
      pool_.release(cfg_.dense_block_bytes(), host_.simulator().now());
      completed_.insert(block_id);
      blocks_.erase(it);
    }
  });
}

// ===========================================================================
// MultiBufferAggregator
// ===========================================================================

MultiBufferAggregator::MultiBufferAggregator(EngineHost& host,
                                             const AllreduceConfig& cfg,
                                             BufferPool& pool)
    : host_(host), cfg_(cfg), pool_(pool) {
  FLARE_ASSERT(cfg_.num_children >= 1);
  FLARE_ASSERT_MSG(cfg_.num_buffers >= 1, "multi-buffer needs B >= 1");
}

MultiBufferAggregator::Block& MultiBufferAggregator::get_block(u32 block_id,
                                                               SimTime now) {
  if (cached_block_ != nullptr && cached_block_id_ == block_id) {
    return *cached_block_;
  }
  auto [it, inserted] = blocks_.try_emplace(block_id);
  Block& blk = it->second;
  if (inserted) {
    blk.bitmap.reset(cfg_.num_children);
    blk.subs.resize(cfg_.num_buffers);
    blk.first_arrival = now;
  }
  cached_block_id_ = block_id;
  cached_block_ = &blk;
  return blk;
}

void MultiBufferAggregator::reset() {
  FLARE_ASSERT_MSG(blocks_.empty(),
                   "reset with open blocks: packets still in flight");
  cached_block_ = nullptr;
  completed_.clear();
}

void MultiBufferAggregator::process(std::shared_ptr<const Packet> pkt,
                                    HandlerDone done) {
  stats_.packets_in += 1;
  stats_.payload_bytes_in += pkt->payload_bytes();
  const auto& costs = host_.costs();
  const u64 pre = costs.handler_dispatch_cycles + costs.dma_packet_cycles;
  host_.simulator().schedule_after(
      pre, [this, pkt = std::move(pkt), done = std::move(done)]() mutable {
        on_ready(std::move(pkt), std::move(done));
      });
}

void MultiBufferAggregator::on_ready(std::shared_ptr<const Packet> pkt,
                                     HandlerDone done) {
  sim::Simulator& sim = host_.simulator();
  const SimTime now = sim.now();
  const u32 bid = pkt->hdr.block_id;
  if (completed_.contains(bid)) {
    stats_.duplicates_dropped += 1;
    done(now);
    return;
  }
  Block& blk = get_block(bid, now);
  if (!blk.bitmap.mark(pkt->hdr.child_index)) {
    stats_.duplicates_dropped += 1;
    done(now);
    return;
  }
  for (u32 i = 0; i < blk.subs.size(); ++i) {
    if (!blk.subs[i].busy) {
      blk.subs[i].busy = true;
      run_on_sub(bid, i, std::move(pkt), now, now, std::move(done));
      return;
    }
  }
  // All B buffers locked: spin until one frees (FIFO hand-over).
  blk.waiters.emplace_back(
      [this, bid, pkt = std::move(pkt), now,
       done = std::move(done)](SimTime start, u32 sub) mutable {
        run_on_sub(bid, sub, std::move(pkt), now, start, std::move(done));
      });
}

void MultiBufferAggregator::run_on_sub(u32 block_id, u32 sub_idx,
                                       std::shared_ptr<const Packet> pkt,
                                       SimTime enqueued_at, SimTime start,
                                       HandlerDone done) {
  Block& blk = block_ref(block_id);
  Sub& s = blk.subs[sub_idx];
  stats_.cs_wait_cycles.add(static_cast<f64>(start - enqueued_at));
  const auto& costs = host_.costs();
  const u32 elems = pkt->hdr.elem_count;
  FLARE_ASSERT(pkt->payload.size() ==
               static_cast<std::size_t>(elems) * dtype_size(cfg_.dtype));

  if (blk.elems == 0) blk.elems = elems;
  u64 work;
  if (!s.allocated) {
    const bool ok = pool_.acquire(cfg_.dense_block_bytes(), start);
    FLARE_ASSERT_MSG(ok, "working-memory pool exhausted");
    s.buf.resize(cfg_.dense_block_bytes());
    s.allocated = true;
    u32 allocated = 0;
    for (const Sub& sub : blk.subs)
      if (sub.allocated) ++allocated;
    blk.max_allocated = std::max(blk.max_allocated, allocated);
  }
  if (!s.has_data) {
    if (!pkt->payload.empty()) {
      std::memcpy(s.buf.data(), pkt->payload.data(), pkt->payload.size());
    }
    s.has_data = true;
    work = costs.dma_packet_cycles;
  } else {
    cfg_.op.apply(cfg_.dtype, s.buf.data(), pkt->payload.data(), elems);
    work = costs.aggregation_cycles(cfg_.dtype, elems, cfg_.remote_l1);
  }

  const SimTime end = start + work;
  host_.simulator().schedule_at(
      end, [this, block_id, sub_idx, done = std::move(done)]() mutable {
        Block& b = block_ref(block_id);
        b.aggregated += 1;
        const SimTime now = host_.simulator().now();
        if (b.aggregated == cfg_.num_children && b.bitmap.complete()) {
          // Causally-last handler: fold the partial buffers (Section 6.2).
          merge_chain(block_id, sub_idx, now, std::move(done));
        } else {
          release_sub(block_id, sub_idx, now);
          done(now);
        }
      });
}

void MultiBufferAggregator::release_sub(u32 block_id, u32 sub_idx,
                                        SimTime at) {
  Block& blk = block_ref(block_id);
  if (!blk.waiters.empty()) {
    auto fn = std::move(blk.waiters.front());
    blk.waiters.pop_front();
    fn(at, sub_idx);  // buffer hands over while staying busy
    return;
  }
  blk.subs[sub_idx].busy = false;
}

void MultiBufferAggregator::merge_chain(u32 block_id, u32 my_sub, SimTime t,
                                        HandlerDone done) {
  Block& blk = block_ref(block_id);
  // By construction no other handler is active on this block (aggregated ==
  // P), so the remaining buffers are idle and can be folded sequentially.
  for (u32 j = 0; j < blk.subs.size(); ++j) {
    if (j == my_sub) continue;
    Sub& s = blk.subs[j];
    FLARE_ASSERT_MSG(!s.busy, "merge with an active buffer");
    if (!s.has_data) continue;
    const u64 merge_cost =
        host_.costs().aggregation_cycles(cfg_.dtype, blk.elems, cfg_.remote_l1);
    host_.simulator().schedule_at(
        t + merge_cost,
        [this, block_id, my_sub, j, done = std::move(done)]() mutable {
          Block& b = block_ref(block_id);
          cfg_.op.apply(cfg_.dtype, b.subs[my_sub].buf.data(),
                        b.subs[j].buf.data(), b.elems);
          b.subs[j].has_data = false;
          b.subs[j].allocated = false;
          b.subs[j].buf = {};
          pool_.release(cfg_.dense_block_bytes(), host_.simulator().now());
          merge_chain(block_id, my_sub, host_.simulator().now(),
                      std::move(done));
        });
    return;
  }
  finish_block(block_id, my_sub, t, std::move(done));
}

void MultiBufferAggregator::finish_block(u32 block_id, u32 my_sub, SimTime t,
                                         HandlerDone done) {
  Block& blk = block_ref(block_id);
  const SimTime end = t + host_.costs().emit_packet_cycles;
  stats_.block_mem_bytes.add(static_cast<f64>(blk.max_allocated) *
                             static_cast<f64>(cfg_.dense_block_bytes()));
  Packet out = make_result_packet(cfg_, block_id,
                                  std::move(blk.subs[my_sub].buf), blk.elems);
  stats_.packets_emitted += 1;
  stats_.bytes_emitted += out.wire_bytes();
  stats_.blocks_completed += 1;
  stats_.block_latency.add(static_cast<f64>(end - blk.first_arrival));
  host_.emit(std::move(out), end);
  host_.simulator().schedule_at(end, [this] {
    pool_.release(cfg_.dense_block_bytes(), host_.simulator().now());
  });
  completed_.insert(block_id);
  if (cached_block_id_ == block_id) cached_block_ = nullptr;
  blocks_.erase(block_id);
  done(end);
}

// ===========================================================================
// TreeAggregator
// ===========================================================================

TreeAggregator::TreeShape TreeAggregator::build_shape(u32 p) {
  FLARE_ASSERT(p >= 1);
  TreeShape shape;
  // Recursive balanced split with a FIXED midpoint: the association (and the
  // left/right operand order) never depends on arrival order, which is what
  // makes the floating-point result bitwise reproducible (F3).
  struct Builder {
    TreeShape& s;
    u32 build(u32 lo, u32 hi, i32 parent) {
      const u32 idx = static_cast<u32>(s.nodes.size());
      s.nodes.push_back({lo, hi, -1, -1, parent});
      if (hi - lo > 1) {
        const u32 mid = lo + (hi - lo + 1) / 2;
        const u32 l = build(lo, mid, static_cast<i32>(idx));
        const u32 r = build(mid, hi, static_cast<i32>(idx));
        s.nodes[idx].left = static_cast<i32>(l);
        s.nodes[idx].right = static_cast<i32>(r);
      }
      return idx;
    }
  };
  Builder{shape}.build(0, p, -1);
  return shape;
}

u32 TreeAggregator::TreeShape::leaf_of(u32 child) const {
  for (u32 i = 0; i < nodes.size(); ++i) {
    if (nodes[i].left < 0 && nodes[i].lo == child) return i;
  }
  FLARE_UNREACHABLE("child outside tree");
}

TreeAggregator::TreeAggregator(EngineHost& host, const AllreduceConfig& cfg,
                               BufferPool& pool)
    : host_(host), cfg_(cfg), pool_(pool),
      shape_(build_shape(cfg.num_children)) {}

TreeAggregator::Block& TreeAggregator::get_block(u32 block_id, SimTime now) {
  auto [it, inserted] = blocks_.try_emplace(block_id);
  Block& blk = it->second;
  if (inserted) {
    blk.bitmap.reset(cfg_.num_children);
    blk.nodes.resize(shape_.nodes.size());
    blk.first_arrival = now;
  }
  return blk;
}

void TreeAggregator::reset() {
  FLARE_ASSERT_MSG(blocks_.empty(),
                   "reset with open blocks: packets still in flight");
  completed_.clear();
}

void TreeAggregator::process(std::shared_ptr<const Packet> pkt,
                             HandlerDone done) {
  stats_.packets_in += 1;
  stats_.payload_bytes_in += pkt->payload_bytes();
  const auto& costs = host_.costs();
  const u64 pre = costs.handler_dispatch_cycles + costs.dma_packet_cycles;
  host_.simulator().schedule_after(
      pre, [this, pkt = std::move(pkt), done = std::move(done)]() mutable {
        on_ready(std::move(pkt), std::move(done));
      });
}

void TreeAggregator::on_ready(std::shared_ptr<const Packet> pkt,
                              HandlerDone done) {
  sim::Simulator& sim = host_.simulator();
  const SimTime now = sim.now();
  const u32 bid = pkt->hdr.block_id;
  if (completed_.contains(bid)) {
    stats_.duplicates_dropped += 1;
    done(now);
    return;
  }
  Block& blk = get_block(bid, now);
  const u32 child = pkt->hdr.child_index;
  if (!blk.bitmap.mark(child)) {
    stats_.duplicates_dropped += 1;
    done(now);
    return;
  }
  const u32 elems = pkt->hdr.elem_count;
  FLARE_ASSERT(pkt->payload.size() ==
               static_cast<std::size_t>(elems) * dtype_size(cfg_.dtype));
  if (blk.elems == 0) blk.elems = elems;

  const u32 leaf = shape_.leaf_of(child);
  const bool ok = pool_.acquire(cfg_.dense_block_bytes(), now);
  FLARE_ASSERT_MSG(ok, "working-memory pool exhausted");
  blk.alive_buffers += 1;
  blk.max_alive = std::max(blk.max_alive, blk.alive_buffers);
  blk.nodes[leaf].buf.assign(pkt->payload.begin(), pkt->payload.end());

  // The copy is DMA-assisted (64 cycles, Section 6.3) — far cheaper than the
  // 1024-cycle aggregation, which is the whole point of the tree design.
  const SimTime copy_done = now + host_.costs().dma_packet_cycles;
  sim.schedule_at(copy_done, [this, bid, leaf, done = std::move(done)]() mutable {
    auto it = blocks_.find(bid);
    FLARE_ASSERT(it != blocks_.end());
    it->second.nodes[leaf].done = true;
    climb(bid, leaf, host_.simulator().now(), std::move(done));
  });
}

void TreeAggregator::climb(u32 block_id, u32 node, SimTime t,
                           HandlerDone done) {
  Block& blk = blocks_.at(block_id);
  const i32 parent = shape_.nodes[node].parent;
  if (parent < 0) {
    // `node` is the root and it is done: emit the block result.
    complete_root(block_id, t, std::move(done));
    return;
  }
  const auto& pn = shape_.nodes[static_cast<u32>(parent)];
  const u32 sibling = (static_cast<u32>(pn.left) == node)
                          ? static_cast<u32>(pn.right)
                          : static_cast<u32>(pn.left);
  NodeState& sib = blk.nodes[sibling];
  NodeState& par = blk.nodes[static_cast<u32>(parent)];
  if (!sib.done || par.claimed) {
    // Sibling subtree not ready (its handler will continue the climb) or
    // another handler already owns this combine: terminate without waiting.
    done(t);
    return;
  }
  par.claimed = true;
  const u64 combine_cost =
      host_.costs().aggregation_cycles(cfg_.dtype, blk.elems, cfg_.remote_l1);
  host_.simulator().schedule_at(
      t + combine_cost,
      [this, block_id, parent, done = std::move(done)]() mutable {
        Block& b = blocks_.at(block_id);
        const auto& p = shape_.nodes[static_cast<u32>(parent)];
        NodeState& left = b.nodes[static_cast<u32>(p.left)];
        NodeState& right = b.nodes[static_cast<u32>(p.right)];
        // Fixed operand order: parent = op(left, right).
        cfg_.op.apply(cfg_.dtype, left.buf.data(), right.buf.data(), b.elems);
        NodeState& par2 = b.nodes[static_cast<u32>(parent)];
        par2.buf = std::move(left.buf);
        left.buf = {};
        right.buf = {};
        pool_.release(cfg_.dense_block_bytes(), host_.simulator().now());
        b.alive_buffers -= 1;
        par2.done = true;
        climb(block_id, static_cast<u32>(parent), host_.simulator().now(),
              std::move(done));
      });
}

void TreeAggregator::complete_root(u32 block_id, SimTime t,
                                   HandlerDone done) {
  Block& blk = blocks_.at(block_id);
  const SimTime end = t + host_.costs().emit_packet_cycles;
  Packet out = make_result_packet(cfg_, block_id, std::move(blk.nodes[0].buf),
                                  blk.elems);
  stats_.packets_emitted += 1;
  stats_.bytes_emitted += out.wire_bytes();
  stats_.blocks_completed += 1;
  stats_.block_latency.add(static_cast<f64>(end - blk.first_arrival));
  stats_.block_mem_bytes.add(static_cast<f64>(blk.max_alive) *
                             static_cast<f64>(cfg_.dense_block_bytes()));
  host_.emit(std::move(out), end);
  host_.simulator().schedule_at(end, [this] {
    pool_.release(cfg_.dense_block_bytes(), host_.simulator().now());
  });
  completed_.insert(block_id);
  blocks_.erase(block_id);
  done(end);
}

// ===========================================================================

std::unique_ptr<Aggregator> make_dense_aggregator(EngineHost& host,
                                                  const AllreduceConfig& cfg,
                                                  BufferPool& pool) {
  FLARE_ASSERT_MSG(!cfg.sparse, "use make_sparse_aggregator");
  switch (cfg.policy) {
    case AggPolicy::kSingleBuffer:
      return std::make_unique<SingleBufferAggregator>(host, cfg, pool);
    case AggPolicy::kMultiBuffer:
      return std::make_unique<MultiBufferAggregator>(host, cfg, pool);
    case AggPolicy::kTree:
      return std::make_unique<TreeAggregator>(host, cfg, pool);
  }
  FLARE_UNREACHABLE("unknown policy");
}

}  // namespace flare::core
