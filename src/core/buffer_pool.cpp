// Payload arena: global power-of-two size-class freelists.
//
// The simulator is single-threaded and allocates packet payloads and
// aggregation buffers in a tight create/destroy cycle — one or two round
// trips per simulated packet, millions per run.  Requests are rounded up to
// a power-of-two size class and blocks are recycled through a per-class
// LIFO freelist (LIFO keeps the hottest block in cache).  Oversized
// requests bypass the classes and go straight to the heap.
//
// Allocation reuse never feeds simulation state — nothing in the repo keys
// on addresses (flare-lint's pointer-key rule enforces this) — so recycling
// cannot perturb determinism.
#include "core/buffer_pool.hpp"

#include <new>

namespace flare::core::pool_detail {

namespace {

constexpr std::size_t kMinClassLog2 = 6;   // 64 B floor
constexpr std::size_t kMaxClassLog2 = 21;  // 2 MiB ceiling; larger -> heap
constexpr std::size_t kClasses = kMaxClassLog2 - kMinClassLog2 + 1;

std::size_t class_of(std::size_t bytes) {
  std::size_t cls = 0;
  while ((std::size_t{1} << (kMinClassLog2 + cls)) < bytes) ++cls;
  return cls;
}

struct Arena {
  std::vector<void*> free_lists[kClasses];
  u64 fresh = 0;
  u64 reused = 0;

  ~Arena() {
    for (auto& fl : free_lists) {
      for (void* p : fl) ::operator delete(p);
    }
  }
};

// Meyers singleton: destroyed at exit AFTER function-local statics that
// might hold packets.  Payload-owning objects must not outlive main's
// statics (none do; everything lives in stack-scoped Network/Simulator
// objects).
Arena& arena() {
  static Arena a;
  return a;
}

}  // namespace

void* pool_alloc(std::size_t bytes) {
  Arena& a = arena();
  if (bytes > (std::size_t{1} << kMaxClassLog2)) {
    a.fresh += 1;
    return ::operator new(bytes);
  }
  std::vector<void*>& fl = a.free_lists[class_of(bytes)];
  if (!fl.empty()) {
    void* p = fl.back();
    fl.pop_back();
    a.reused += 1;
    return p;
  }
  a.fresh += 1;
  return ::operator new(std::size_t{1} << (kMinClassLog2 + class_of(bytes)));
}

void pool_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes > (std::size_t{1} << kMaxClassLog2)) {
    ::operator delete(p);
    return;
  }
  arena().free_lists[class_of(bytes)].push_back(p);
}

PoolStats payload_pool_stats() {
  const Arena& a = arena();
  PoolStats s;
  s.fresh = a.fresh;
  s.reused = a.reused;
  for (const auto& fl : a.free_lists) s.cached_blocks += fl.size();
  return s;
}

}  // namespace flare::core::pool_detail
