#include "core/buffer_pool.hpp"

namespace flare::core {}
