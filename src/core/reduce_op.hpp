// Reduction operators.
//
// The built-in operators mirror the MPI set the paper references (sum, prod,
// min, max, bitwise and/or/xor); *custom* operators — the heart of
// flexibility item F1 — are arbitrary C++ callables applied element-wise,
// exactly as a sPIN handler would run arbitrary C on the packet payload.
//
// Operand-order convention: `apply(acc, in)` computes
//     acc[i] = op(acc[i], in[i])
// i.e. the accumulator is the LEFT operand.  The tree aggregation policy
// relies on this to pin a fixed association/operand order for bitwise
// reproducibility (F3).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/dtype.hpp"

namespace flare::core {

enum class OpKind : u8 {
  kSum = 0,
  kProd,
  kMin,
  kMax,
  kBand,  ///< bitwise and (integer types only)
  kBor,   ///< bitwise or  (integer types only)
  kBxor,  ///< bitwise xor (integer types only)
  kCustom,
};

std::string_view op_name(OpKind k);

/// Signature of a custom element-wise kernel: must compute
/// acc[i] = f(acc[i], in[i]) for `n` elements of type `t`.
/// `acc` and `in` point to raw element storage.
using CustomKernel =
    std::function<void(DType t, void* acc, const void* in, std::size_t n)>;

/// Fills `n` elements with a custom identity value.
using CustomIdentity = std::function<void(DType t, void* dst, std::size_t n)>;

/// A reduction operator; cheap to copy (custom state is shared).
class ReduceOp {
 public:
  /// Builds one of the predefined operators.
  explicit ReduceOp(OpKind kind = OpKind::kSum);

  /// Builds a custom operator (F1).  `commutative` tells the engine whether
  /// arrival order may be exploited; reproducible mode ignores it and always
  /// uses the fixed tree order.
  static ReduceOp custom(std::string name, CustomKernel kernel,
                         CustomIdentity identity, bool commutative = true);

  /// Convenience: wraps a typed binary functor `T f(T, T)` for every dtype.
  /// Float16 payloads are converted through f32 around `f`.
  template <typename F>
  static ReduceOp custom_binary(std::string name, F f, f64 identity_value,
                                bool commutative = true);

  OpKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  bool commutative() const { return commutative_; }

  /// acc[i] = op(acc[i], in[i]) for n elements of dtype t.
  void apply(DType t, void* acc, const void* in, std::size_t n) const;

  /// Writes the operator identity into n elements of dtype t.
  void fill_identity(DType t, void* dst, std::size_t n) const;

  /// True if the operator supports this dtype (bitwise ops reject floats).
  bool supports(DType t) const;

 private:
  OpKind kind_;
  std::string name_;
  bool commutative_ = true;
  std::shared_ptr<const CustomKernel> custom_kernel_;
  std::shared_ptr<const CustomIdentity> custom_identity_;
};

template <typename F>
ReduceOp ReduceOp::custom_binary(std::string name, F f, f64 identity_value,
                                 bool commutative) {
  auto kernel = [f](DType t, void* acc, const void* in, std::size_t n) {
    auto loop = [&](auto* a, const auto* b) {
      using T = std::remove_reference_t<decltype(*a)>;
      for (std::size_t i = 0; i < n; ++i)
        a[i] = static_cast<T>(f(a[i], b[i]));
    };
    switch (t) {
      case DType::kInt8:
        loop(static_cast<i8*>(acc), static_cast<const i8*>(in));
        break;
      case DType::kInt16:
        loop(static_cast<i16*>(acc), static_cast<const i16*>(in));
        break;
      case DType::kInt32:
        loop(static_cast<i32*>(acc), static_cast<const i32*>(in));
        break;
      case DType::kInt64:
        loop(static_cast<i64*>(acc), static_cast<const i64*>(in));
        break;
      case DType::kFloat32:
        loop(static_cast<f32*>(acc), static_cast<const f32*>(in));
        break;
      case DType::kFloat16: {
        auto* a = static_cast<u16*>(acc);
        const auto* b = static_cast<const u16*>(in);
        for (std::size_t i = 0; i < n; ++i) {
          a[i] = f32_to_f16(
              static_cast<f32>(f(f16_to_f32(a[i]), f16_to_f32(b[i]))));
        }
        break;
      }
    }
  };
  auto identity = [identity_value](DType t, void* dst, std::size_t n) {
    auto fill = [&](auto* d) {
      using T = std::remove_reference_t<decltype(*d)>;
      for (std::size_t i = 0; i < n; ++i) d[i] = static_cast<T>(identity_value);
    };
    switch (t) {
      case DType::kInt8: fill(static_cast<i8*>(dst)); break;
      case DType::kInt16: fill(static_cast<i16*>(dst)); break;
      case DType::kInt32: fill(static_cast<i32*>(dst)); break;
      case DType::kInt64: fill(static_cast<i64*>(dst)); break;
      case DType::kFloat32: fill(static_cast<f32*>(dst)); break;
      case DType::kFloat16: {
        auto* d = static_cast<u16*>(dst);
        const u16 h = f32_to_f16(static_cast<f32>(identity_value));
        for (std::size_t i = 0; i < n; ++i) d[i] = h;
        break;
      }
    }
  };
  return custom(std::move(name), std::move(kernel), std::move(identity),
                commutative);
}

}  // namespace flare::core
