#include "core/sparse_store.hpp"

#include <bit>
#include <cstring>

namespace flare::core {

StoredPair make_stored_pair(u32 index, const std::byte* value, DType dtype) {
  StoredPair p;
  p.index = index;
  std::memcpy(p.value.data(), value, dtype_size(dtype));
  return p;
}

// ---------------------------------------------------------------------------
// HashStore
// ---------------------------------------------------------------------------

HashStore::HashStore(u32 capacity_pairs, DType dtype) : dtype_(dtype) {
  FLARE_ASSERT(capacity_pairs >= 1);
  const u64 cap =
      std::bit_ceil(std::max<u64>(capacity_pairs, kWays));
  slots_.resize(cap);
  bucket_mask_ = cap / kWays - 1;
}

u64 HashStore::bucket_of(u32 index) const {
  // Fibonacci multiplicative hash: one multiply + shift, exactly the kind of
  // arithmetic a RISC-V handler does per pair.
  const u64 h = static_cast<u64>(index) * 0x9E3779B97F4A7C15ull;
  return ((h >> 32) & bucket_mask_) * kWays;
}

bool HashStore::insert(u32 index, const std::byte* value, DType dtype,
                       const ReduceOp& op) {
  FLARE_ASSERT(dtype == dtype_);
  const u64 base = bucket_of(index);
  // One pass over the bucket: match wins, else the first free slot.
  Slot* free_slot = nullptr;
  for (u32 w = 0; w < kWays; ++w) {
    Slot& s = slots_[base + w];
    if (s.occupied) {
      if (s.index == index) {
        op.apply(dtype, s.value.data(), value, 1);
        return true;
      }
    } else if (free_slot == nullptr) {
      free_slot = &s;
    }
  }
  if (free_slot != nullptr) {
    free_slot->occupied = true;
    free_slot->index = index;
    std::memcpy(free_slot->value.data(), value, dtype_size(dtype));
    used_ += 1;
    return true;
  }
  collisions_ += 1;
  return false;  // bucket full of other indices: caller spills
}

void HashStore::extract(std::vector<StoredPair>& out) const {
  for (const Slot& s : slots_) {
    if (!s.occupied) continue;
    StoredPair p;
    p.index = s.index;
    p.value = s.value;
    out.push_back(p);
  }
}

u64 HashStore::footprint_bytes() const {
  // index (4B) + value (dtype) + occupancy bit per slot, as the handler
  // would lay it out in L1.
  return slots_.size() * (sizeof(u32) + dtype_size(dtype_)) +
         slots_.size() / 8;
}

// ---------------------------------------------------------------------------
// ArrayStore
// ---------------------------------------------------------------------------

ArrayStore::ArrayStore(u32 span_elems, DType dtype)
    : span_(span_elems), dtype_(dtype) {
  FLARE_ASSERT(span_elems >= 1);
  values_.resize(static_cast<std::size_t>(span_elems) * dtype_size(dtype));
  bitmap_.assign((span_elems + 63) / 64, 0);
}

bool ArrayStore::insert(u32 index, const std::byte* value, DType dtype,
                        const ReduceOp& op) {
  FLARE_ASSERT(dtype == dtype_);
  FLARE_ASSERT_MSG(index < span_, "sparse index outside block span");
  std::byte* cell =
      values_.data() + static_cast<std::size_t>(index) * dtype_size(dtype);
  if (!occupied(index)) {
    bitmap_[index >> 6] |= 1ull << (index & 63);
    std::memcpy(cell, value, dtype_size(dtype));
    used_ += 1;
    return true;
  }
  op.apply(dtype, cell, value, 1);
  return true;
}

void ArrayStore::extract(std::vector<StoredPair>& out) const {
  for (u32 i = 0; i < span_; ++i) {
    if (!occupied(i)) continue;
    out.push_back(make_stored_pair(
        i, values_.data() + static_cast<std::size_t>(i) * dtype_size(dtype_),
        dtype_));
  }
}

u64 ArrayStore::footprint_bytes() const {
  return values_.size() + bitmap_.size() * sizeof(u64);
}

}  // namespace flare::core
