#include "core/block_state.hpp"

// Header-only state machines; translation unit anchors the target.
namespace flare::core {}
