// Handler cycle-cost model, calibrated against the numbers the paper reports
// from the PsPIN cycle-accurate simulator (Sections 3 and 6):
//
//   * 1 GHz clock; 1 KiB packets carrying 256 fp32 elements;
//   * 4 cycles to sum two fp32 values and store the result back
//     => L = 1024 cycles per packet ("1 ns per byte circa");
//   * DMA copy of a packet costs 64 cycles (vs 1024 for aggregation);
//   * the RI5CY SIMD datapath aggregates two int16 (four int8) per op;
//   * remote-L1 accesses are up to 25x slower (motivates cluster-local
//     scheduling, Section 5).
//
// Every cycle figure the simulators charge flows through this one struct so
// the calibration is auditable and the analytical model (src/model) can use
// the very same constants.
#pragma once

#include "common/assert.hpp"
#include "common/units.hpp"
#include "core/dtype.hpp"

namespace flare::core {

struct CostModel {
  f64 clock_ghz = 1.0;

  /// Cycles per element for "load, reduce, store" on the local L1, by dtype.
  /// fp32 = 4 (measured, paper Section 6); integer SIMD packs 2 x int16 or
  /// 4 x int8 per op; int32 avoids FPU latency; int64 is multi-word.
  f64 cycles_per_elem_f32 = 4.0;
  f64 cycles_per_elem_f16 = 2.0;
  f64 cycles_per_elem_i8 = 0.75;
  f64 cycles_per_elem_i16 = 1.5;
  f64 cycles_per_elem_i32 = 3.0;
  f64 cycles_per_elem_i64 = 6.0;

  /// DMA engine copy of one packet L2 -> L1 (paper: 64 cycles vs 1024).
  u64 dma_packet_cycles = 64;

  /// Fixed handler dispatch overhead (scheduler hand-off, header parse).
  u64 handler_dispatch_cycles = 32;

  /// Packetization + command-unit cost to emit one packet.
  u64 emit_packet_cycles = 32;

  /// One-time i-cache fill the first time a core runs the handler
  /// ("cold start", paper Section 6.4): 4 KiB i-cache over a 64-bit port.
  u64 cold_start_cycles = 512;

  /// Multiplier on aggregation cycles when the aggregation buffer lives in a
  /// remote cluster's L1 (paper: up to 25x).  Hierarchical FCFS scheduling
  /// exists precisely to keep this off the fast path.
  f64 remote_l1_penalty = 25.0;

  /// Sparse-store costs (Section 7): hash probe+insert per pair, array
  /// indexed add per pair, spill-buffer append per pair, and the final
  /// array scan per *slot* plus per emitted nonzero.
  f64 hash_insert_cycles_per_pair = 16.0;
  f64 array_insert_cycles_per_pair = 12.0;
  f64 spill_append_cycles_per_pair = 4.0;
  f64 scan_cycles_per_slot = 1.0;
  f64 emit_cycles_per_pair = 4.0;

  /// Cycles per element of `t` by the SIMD aggregation kernel.
  f64 cycles_per_elem(DType t) const {
    switch (t) {
      case DType::kInt8: return cycles_per_elem_i8;
      case DType::kInt16: return cycles_per_elem_i16;
      case DType::kInt32: return cycles_per_elem_i32;
      case DType::kInt64: return cycles_per_elem_i64;
      case DType::kFloat16: return cycles_per_elem_f16;
      case DType::kFloat32: return cycles_per_elem_f32;
    }
    return 4.0;
  }

  /// L: cycles to aggregate `elems` elements into a local-L1 buffer.
  u64 aggregation_cycles(DType t, u64 elems, bool remote_l1 = false) const {
    f64 c = static_cast<f64>(elems) * cycles_per_elem(t);
    if (remote_l1) c *= remote_l1_penalty;
    return static_cast<u64>(c + 0.5);
  }

  /// Cycles for a sparse insert of `pairs` pairs into the given store kind.
  u64 sparse_insert_cycles(bool hash_store, u64 pairs) const {
    const f64 per = hash_store ? hash_insert_cycles_per_pair
                               : array_insert_cycles_per_pair;
    return static_cast<u64>(static_cast<f64>(pairs) * per + 0.5);
  }

  u64 scan_cycles(u64 slots, u64 emitted_pairs) const {
    return static_cast<u64>(static_cast<f64>(slots) * scan_cycles_per_slot +
                            static_cast<f64>(emitted_pairs) *
                                emit_cycles_per_pair +
                            0.5);
  }
};

}  // namespace flare::core
