#include "core/packet.hpp"

namespace flare::core {

Packet make_dense_packet(u32 allreduce_id, u32 block_id, u16 child_index,
                         const void* data, u32 elems, DType dtype) {
  Packet p;
  p.hdr.allreduce_id = allreduce_id;
  p.hdr.block_id = block_id;
  p.hdr.child_index = child_index;
  p.hdr.elem_count = elems;
  p.hdr.shard_count = 1;
  p.hdr.flags = kFlagLastShard;  // dense blocks are always one packet
  const u64 bytes = static_cast<u64>(elems) * dtype_size(dtype);
  p.payload.resize(bytes);
  if (bytes > 0) std::memcpy(p.payload.data(), data, bytes);
  return p;
}

Packet make_sparse_packet(u32 allreduce_id, u32 block_id, u16 child_index,
                          std::span<const SparsePair> pairs, DType dtype,
                          u16 extra_flags) {
  Packet p;
  p.hdr.allreduce_id = allreduce_id;
  p.hdr.block_id = block_id;
  p.hdr.child_index = child_index;
  p.hdr.flags = static_cast<u16>(kFlagSparse | extra_flags);
  p.hdr.elem_count = static_cast<u32>(pairs.size());
  const u32 es = dtype_size(dtype);
  p.payload.resize(pairs.size() * (sizeof(u32) + es));
  std::byte* idx_out = p.payload.data();
  std::byte* val_out = p.payload.data() + pairs.size() * sizeof(u32);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::memcpy(idx_out + i * sizeof(u32), &pairs[i].index, sizeof(u32));
    // Narrow the staged f64 to the wire dtype.
    switch (dtype) {
      case DType::kInt8: {
        const i8 v = static_cast<i8>(pairs[i].value);
        std::memcpy(val_out + i * es, &v, es);
        break;
      }
      case DType::kInt16: {
        const i16 v = static_cast<i16>(pairs[i].value);
        std::memcpy(val_out + i * es, &v, es);
        break;
      }
      case DType::kInt32: {
        const i32 v = static_cast<i32>(pairs[i].value);
        std::memcpy(val_out + i * es, &v, es);
        break;
      }
      case DType::kInt64: {
        const i64 v = static_cast<i64>(pairs[i].value);
        std::memcpy(val_out + i * es, &v, es);
        break;
      }
      case DType::kFloat16: {
        const u16 v = f32_to_f16(static_cast<f32>(pairs[i].value));
        std::memcpy(val_out + i * es, &v, es);
        break;
      }
      case DType::kFloat32: {
        const f32 v = static_cast<f32>(pairs[i].value);
        std::memcpy(val_out + i * es, &v, es);
        break;
      }
    }
  }
  return p;
}

Packet make_empty_block_packet(u32 allreduce_id, u32 block_id,
                               u16 child_index) {
  Packet p;
  p.hdr.allreduce_id = allreduce_id;
  p.hdr.block_id = block_id;
  p.hdr.child_index = child_index;
  p.hdr.flags = kFlagSparse | kFlagLastShard | kFlagEmptyBlock;
  p.hdr.shard_count = 1;
  p.hdr.elem_count = 0;
  return p;
}

f64 SparseView::value_as_f64(u32 i) const {
  FLARE_ASSERT(i < count);
  const u32 es = dtype_size(dtype);
  const std::byte* p = values + static_cast<std::size_t>(i) * es;
  switch (dtype) {
    case DType::kInt8: {
      i8 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kInt16: {
      i16 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kInt32: {
      i32 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kInt64: {
      i64 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
    case DType::kFloat16: {
      u16 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(f16_to_f32(v));
    }
    case DType::kFloat32: {
      f32 v;
      std::memcpy(&v, p, sizeof(v));
      return static_cast<f64>(v);
    }
  }
  return 0.0;
}

SparseView sparse_view(const Packet& p, DType dtype) {
  FLARE_ASSERT(p.is_sparse());
  SparseView v;
  v.count = p.hdr.elem_count;
  v.dtype = dtype;
  if (v.count > 0) {
    FLARE_ASSERT(p.payload.size() ==
                 v.count * (sizeof(u32) + dtype_size(dtype)));
    v.indices = reinterpret_cast<const u32*>(p.payload.data());
    v.values = p.payload.data() + v.count * sizeof(u32);
  }
  return v;
}

}  // namespace flare::core
