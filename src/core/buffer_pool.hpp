// Working-memory accounting (Section 4.3) and the payload arena.
//
// Two pools live here.  BufferPool is the SIMULATED one: the L1 working
// memory assigned to one allreduce is statically partitioned by the network
// manager; aggregation buffers are acquired from this pool when a block
// starts and released when the block's result is emitted.  The pool tracks
// the time-weighted occupancy and high-water mark that Figures 7, 10 and 14
// report ("Work. Mem.", "Block Mem.").
//
// PoolAllocator is the HOST-SIDE one: a power-of-two size-class freelist
// (implemented in buffer_pool.cpp) recycling the short-lived allocations the
// simulator hot path churns through — packet payloads and aggregation
// buffers that are created and destroyed once per simulated packet.  The
// general-purpose heap pays lock/metadata costs per round trip; the arena
// turns the steady state into two freelist vector operations.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace flare::core {

namespace pool_detail {

/// Grabs a block of at least `bytes` from the size-class freelists (or the
/// heap on a cold miss / oversized request).
void* pool_alloc(std::size_t bytes);
/// Returns a block to its size class.  `bytes` must be the value passed to
/// pool_alloc.
void pool_free(void* p, std::size_t bytes) noexcept;

struct PoolStats {
  u64 fresh = 0;        ///< heap allocations (freelist misses + oversized)
  u64 reused = 0;       ///< allocations served from a freelist
  u64 cached_blocks = 0;  ///< blocks currently parked on freelists
};
PoolStats payload_pool_stats();

}  // namespace pool_detail

/// Stateless allocator over the global payload arena.  Single-threaded by
/// design, like the simulator itself.  All instances compare equal, so
/// containers move across PoolAllocator boundaries without reallocating.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_detail::pool_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_detail::pool_free(p, n * sizeof(T));
  }
};

template <typename T, typename U>
bool operator==(const PoolAllocator<T>&, const PoolAllocator<U>&) {
  return true;
}

/// Packet payload / aggregation buffer storage: byte vector backed by the
/// arena.  The simulator allocates one of these per simulated packet, which
/// is exactly the churn the freelists absorb.
using PayloadVec = std::vector<std::byte, PoolAllocator<std::byte>>;

class BufferPool {
 public:
  /// `capacity_bytes == 0` means unlimited (accounting only).
  explicit BufferPool(u64 capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  /// Attempts to acquire `bytes` at time `now`.  Returns false if the pool
  /// is exhausted (callers either assert — hosts are window-flow-controlled
  /// so this should not happen — or fall back per policy).
  bool acquire(u64 bytes, SimTime now) {
    if (capacity_bytes_ != 0 && in_use_ + bytes > capacity_bytes_) {
      failed_acquires_ += 1;
      return false;
    }
    in_use_ += bytes;
    gauge_.set(in_use_, now);
    return true;
  }

  void release(u64 bytes, SimTime now) {
    FLARE_ASSERT_MSG(bytes <= in_use_, "releasing more than acquired");
    in_use_ -= bytes;
    gauge_.set(in_use_, now);
  }

  u64 in_use() const { return in_use_; }
  u64 capacity() const { return capacity_bytes_; }
  u64 high_water() const { return gauge_.high_water(); }
  f64 mean_occupancy(SimTime now) const {
    return gauge_.time_weighted_mean(now);
  }
  u64 failed_acquires() const { return failed_acquires_; }

 private:
  u64 capacity_bytes_;
  u64 in_use_ = 0;
  u64 failed_acquires_ = 0;
  Gauge gauge_;
};

}  // namespace flare::core
