// Working-memory accounting (Section 4.3).
//
// The L1 working memory assigned to one allreduce is statically partitioned
// by the network manager; aggregation buffers are acquired from this pool
// when a block starts and released when the block's result is emitted.  The
// pool tracks the time-weighted occupancy and high-water mark that Figures
// 7, 10 and 14 report ("Work. Mem.", "Block Mem.").
#pragma once

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace flare::core {

class BufferPool {
 public:
  /// `capacity_bytes == 0` means unlimited (accounting only).
  explicit BufferPool(u64 capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  /// Attempts to acquire `bytes` at time `now`.  Returns false if the pool
  /// is exhausted (callers either assert — hosts are window-flow-controlled
  /// so this should not happen — or fall back per policy).
  bool acquire(u64 bytes, SimTime now) {
    if (capacity_bytes_ != 0 && in_use_ + bytes > capacity_bytes_) {
      failed_acquires_ += 1;
      return false;
    }
    in_use_ += bytes;
    gauge_.set(in_use_, now);
    return true;
  }

  void release(u64 bytes, SimTime now) {
    FLARE_ASSERT_MSG(bytes <= in_use_, "releasing more than acquired");
    in_use_ -= bytes;
    gauge_.set(in_use_, now);
  }

  u64 in_use() const { return in_use_; }
  u64 capacity() const { return capacity_bytes_; }
  u64 high_water() const { return gauge_.high_water(); }
  f64 mean_occupancy(SimTime now) const {
    return gauge_.time_weighted_mean(now);
  }
  u64 failed_acquires() const { return failed_acquires_; }

 private:
  u64 capacity_bytes_;
  u64 in_use_ = 0;
  u64 failed_acquires_ = 0;
  Gauge gauge_;
};

}  // namespace flare::core
