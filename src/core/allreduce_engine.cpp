#include "core/allreduce_engine.hpp"

namespace flare::core {}
