// Working-memory data structures for sparse aggregation (Section 7).
//
// Two designs, with the tradeoff the paper analyses in Figure 14:
//
//  * HashStore — a set-associative hash table over (index, value) slots:
//    one bucket of `kWays` contiguous slots (a single L1 line) is probed
//    per pair, so the per-pair cost stays constant.  To avoid expensive
//    collision RESOLUTION in a packet handler, a pair whose bucket is full
//    of other indices is appended to a *spill buffer*; when the spill
//    buffer fills, the engine flushes it onto the network immediately
//    (extra traffic, but constant memory and per-pair cost independent of
//    density).
//
//  * ArrayStore — a contiguous array spanning the whole block index range
//    plus an occupancy bitmap.  Lowest per-insert latency and no extra
//    traffic, but memory scales with 1/density and completion requires a
//    full scan.
//
// Values are stored and combined in the wire dtype (the reduction arithmetic
// is identical to what the handler would do), staged in an 8-byte cell.
#pragma once

#include <array>
#include <vector>

#include "common/assert.hpp"
#include "core/packet.hpp"
#include "core/reduce_op.hpp"

namespace flare::core {

/// One (index, value) pair in store/extract form; `value` holds the raw
/// dtype bytes left-aligned in an 8-byte cell.
struct StoredPair {
  u32 index = 0;
  std::array<std::byte, 8> value{};
};

/// Copies a raw dtype value into a StoredPair cell.
StoredPair make_stored_pair(u32 index, const std::byte* value, DType dtype);

class SparseStore {
 public:
  virtual ~SparseStore() = default;

  /// Inserts one pair, combining with `op` on index match.  Returns false
  /// if the pair could not be stored (hash collision): the caller must
  /// spill it.
  virtual bool insert(u32 index, const std::byte* value, DType dtype,
                      const ReduceOp& op) = 0;

  /// Appends all stored pairs to `out` in a deterministic order
  /// (ascending index for the array store, slot order for the hash store).
  virtual void extract(std::vector<StoredPair>& out) const = 0;

  virtual u64 stored_pairs() const = 0;
  /// Memory footprint of the structure in bytes (the paper's "Block Mem").
  virtual u64 footprint_bytes() const = 0;
  /// Number of slots a completion scan must touch.
  virtual u64 scan_slots() const = 0;
};

/// Set-associative hash table (one bucket probed; overflow -> caller
/// spills — no chains, no rehashing, handler cost stays O(1)).
class HashStore final : public SparseStore {
 public:
  /// Slots per bucket: 4 x 8B slots ~ one L1 line probed per insert.
  static constexpr u32 kWays = 4;

  /// `capacity_pairs` is rounded up to a power of two (total slots).
  HashStore(u32 capacity_pairs, DType dtype);

  bool insert(u32 index, const std::byte* value, DType dtype,
              const ReduceOp& op) override;
  void extract(std::vector<StoredPair>& out) const override;
  u64 stored_pairs() const override { return used_; }
  u64 footprint_bytes() const override;
  u64 scan_slots() const override { return slots_.size(); }

  u64 capacity() const { return slots_.size(); }
  u64 collisions() const { return collisions_; }

 private:
  struct Slot {
    u32 index = 0;
    bool occupied = false;
    std::array<std::byte, 8> value{};
  };

  u64 bucket_of(u32 index) const;  ///< first slot of the bucket

  std::vector<Slot> slots_;
  u64 bucket_mask_;
  u64 used_ = 0;
  u64 collisions_ = 0;
  DType dtype_;
};

/// Contiguous array over the block's index span with an occupancy bitmap.
class ArrayStore final : public SparseStore {
 public:
  ArrayStore(u32 span_elems, DType dtype);

  bool insert(u32 index, const std::byte* value, DType dtype,
              const ReduceOp& op) override;
  void extract(std::vector<StoredPair>& out) const override;
  u64 stored_pairs() const override { return used_; }
  u64 footprint_bytes() const override;
  u64 scan_slots() const override { return span_; }

 private:
  bool occupied(u32 index) const {
    return (bitmap_[index >> 6] >> (index & 63)) & 1ull;
  }

  u32 span_;
  DType dtype_;
  std::vector<std::byte> values_;
  std::vector<u64> bitmap_;
  u64 used_ = 0;
};

}  // namespace flare::core
