#include "core/cost_model.hpp"

// CostModel is header-only arithmetic; this translation unit exists so the
// target has a place to grow (e.g. loading calibration overrides) and to
// anchor the vtable-free struct in the library.
namespace flare::core {}
