// Sparse in-network aggregation (Section 7) — the first in-network sparse
// allreduce.  Differences from the dense engine:
//
//  * a block may arrive as several packets per child ("Block split"): the
//    per-child shard counters in SparseBlockTracker detect completion;
//  * all-zero blocks arrive as header-only packets ("Empty blocks");
//  * the working structure is a HashStore (leaf switches) or an ArrayStore
//    (root switch, where data has densified);
//  * hash collisions spill into a bounded spill buffer which, when full, is
//    flushed onto the network immediately — trading extra traffic for
//    constant memory (Figure 14's "Extra Traffic" panel).
//
// Parallelism follows Section 6 applied to sparse: B independent stores per
// block (B=1 reproduces the single-buffer critical-section design); the
// causally-last handler merges the B-1 sibling stores, scans, and emits the
// aggregated pairs.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/block_state.hpp"
#include "core/buffer_pool.hpp"
#include "core/dense_policies.hpp"
#include "core/engine_host.hpp"
#include "core/sparse_store.hpp"

namespace flare::core {

/// Builds a sparse wire packet from stored pairs (no f64 round-trip).
Packet make_sparse_packet_from_pairs(const AllreduceConfig& cfg, u32 block_id,
                                     std::vector<StoredPair>::const_iterator
                                         first,
                                     u32 count, u16 flags, u32 shard_seq);

class SparseAggregator final : public Aggregator {
 public:
  SparseAggregator(EngineHost& host, const AllreduceConfig& cfg,
                   BufferPool& pool);
  ~SparseAggregator() override;

  void process(std::shared_ptr<const Packet> pkt, HandlerDone done) override;
  void reset() override;

  /// Total collisions observed across all hash stores (telemetry).
  u64 total_collisions() const { return total_collisions_; }

 private:
  struct StoreSlot {
    std::unique_ptr<SparseStore> store;
    std::vector<StoredPair> spill;
    bool busy = false;
  };
  struct Block {
    std::vector<StoreSlot> stores;
    std::unique_ptr<SparseBlockTracker> tracker;
    u32 seen = 0;      ///< fresh packets registered (at mark time)
    u32 inserted = 0;  ///< fresh packets whose work completed (at end time)
    u32 emit_seq = 0;  ///< shard_seq for packets this node emits
    SimTime first_arrival = 0;
    std::deque<std::function<void(SimTime, u32)>> waiters;
  };

  Block& get_block(u32 block_id, SimTime now);
  std::unique_ptr<SparseStore> make_store() const;
  u64 store_footprint() const;

  void on_ready(std::shared_ptr<const Packet> pkt, HandlerDone done);
  void run_on_store(u32 block_id, u32 store_idx,
                    std::shared_ptr<const Packet> pkt, SimTime enqueued_at,
                    SimTime start, HandlerDone done);
  void release_store(u32 block_id, u32 store_idx, SimTime at);
  /// Flushes `slot`'s spill buffer as a packet leaving at `when`.
  void flush_spill(Block& blk, StoreSlot& slot, u32 block_id, SimTime when);
  void finalize_block(u32 block_id, u32 my_store, SimTime t,
                      HandlerDone done);

  EngineHost& host_;
  AllreduceConfig cfg_;
  BufferPool& pool_;
  std::unordered_map<u32, Block> blocks_;
  std::unordered_set<u32> completed_;
  u64 total_collisions_ = 0;
  /// Outlives-`this` guard for calendar events: the recovery plane can
  /// uninstall (destroy) an engine while its insert/release events are
  /// still scheduled — they must expire, not dereference a dead engine.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

std::unique_ptr<Aggregator> make_sparse_aggregator(EngineHost& host,
                                                   const AllreduceConfig& cfg,
                                                   BufferPool& pool);

/// Factory over dense/sparse and policy.
std::unique_ptr<Aggregator> make_aggregator(EngineHost& host,
                                            const AllreduceConfig& cfg,
                                            BufferPool& pool);

}  // namespace flare::core
