// Per-block completion tracking (Sections 4.1 and 7 of the paper).
//
// Dense blocks: one packet per child; Flare uses a *bitmap* rather than a
// plain counter so that retransmitted packets (host timeout, Section 4.1)
// are detected and not aggregated twice.
//
// Sparse blocks: a child may split a block across several packets
// ("Block split", Section 7), so each child additionally carries a shard
// counter; the child is complete when the count announced in its last
// packet has been received.  Retransmitted shards are deduplicated with a
// per-child shard-sequence bitmap.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace flare::core {

/// Bitmap over the children of a reduction-tree node.
class ChildBitmap {
 public:
  explicit ChildBitmap(u32 num_children = 0) { reset(num_children); }

  void reset(u32 num_children) {
    n_ = num_children;
    seen_ = 0;
    words_.assign((num_children + 63) / 64, 0);
  }

  /// Marks `child` as seen.  Returns false if it was already marked
  /// (i.e. this is a duplicate/retransmission that must NOT be aggregated).
  bool mark(u32 child) {
    FLARE_ASSERT(child < n_);
    u64& w = words_[child >> 6];
    const u64 bit = 1ull << (child & 63);
    if (w & bit) return false;
    w |= bit;
    seen_ += 1;
    return true;
  }

  bool test(u32 child) const {
    FLARE_ASSERT(child < n_);
    return (words_[child >> 6] >> (child & 63)) & 1ull;
  }

  bool complete() const { return seen_ == n_; }
  u32 seen() const { return seen_; }
  u32 expected() const { return n_; }

 private:
  u32 n_ = 0;
  u32 seen_ = 0;
  std::vector<u64> words_;
};

/// Sparse-block shard bookkeeping for one child.
class ShardTracker {
 public:
  /// Records shard `seq`.  Returns false for a duplicate (retransmission).
  bool mark(u32 seq) {
    const u32 word = seq >> 6;
    if (word >= seen_words_.size()) seen_words_.resize(word + 1, 0);
    const u64 bit = 1ull << (seq & 63);
    if (seen_words_[word] & bit) return false;
    seen_words_[word] |= bit;
    received_ += 1;
    return true;
  }

  /// The last packet of a block announces the total shard count.
  void announce_total(u32 total) {
    FLARE_ASSERT(total >= 1);
    // Retransmitted last-shards re-announce the same value.
    FLARE_ASSERT_MSG(expected_ == 0 || expected_ == total,
                     "conflicting shard_count announcements");
    expected_ = total;
  }

  bool complete() const { return expected_ != 0 && received_ >= expected_; }
  u32 received() const { return received_; }
  u32 expected() const { return expected_; }

 private:
  u32 received_ = 0;
  u32 expected_ = 0;  ///< 0 until the last shard announces the count
  std::vector<u64> seen_words_;
};

/// Completion state for a sparse block: one ShardTracker per child plus a
/// children counter advanced when a child's shards are all in.
class SparseBlockTracker {
 public:
  explicit SparseBlockTracker(u32 num_children)
      : shards_(num_children), complete_children_(0) {}

  /// Registers a shard from `child`.  Returns {is_new_data, child_completed}.
  struct MarkResult {
    bool fresh = false;           ///< not a duplicate; aggregate the payload
    bool child_completed = false; ///< this packet completed the child
  };
  MarkResult mark(u32 child, u32 shard_seq, bool last, u32 shard_count) {
    FLARE_ASSERT(child < shards_.size());
    ShardTracker& st = shards_[child];
    const bool was_complete = st.complete();
    MarkResult r;
    r.fresh = st.mark(shard_seq);
    if (last) st.announce_total(shard_count);
    if (!was_complete && st.complete()) {
      complete_children_ += 1;
      r.child_completed = true;
    }
    return r;
  }

  bool complete() const {
    return complete_children_ == static_cast<u32>(shards_.size());
  }
  u32 complete_children() const { return complete_children_; }
  u32 num_children() const { return static_cast<u32>(shards_.size()); }
  const ShardTracker& child(u32 i) const { return shards_.at(i); }

 private:
  std::vector<ShardTracker> shards_;
  u32 complete_children_;
};

}  // namespace flare::core
