// Facade bundling one installed allreduce: its configuration, its working-
// memory partition (Section 4: memory is statically partitioned across
// allreduces) and the aggregation state machine chosen by the policy.
//
// Both hosting substrates (the PsPIN unit and the network-simulator switch)
// hold one AllreduceEngine per installed allreduce id.
#pragma once

#include <memory>

#include "core/dense_policies.hpp"
#include "core/sparse_policy.hpp"

namespace flare::core {

class AllreduceEngine {
 public:
  /// `pool_capacity_bytes == 0` -> accounting-only pool.
  AllreduceEngine(EngineHost& host, AllreduceConfig cfg,
                  u64 pool_capacity_bytes = 0)
      : cfg_(cfg), pool_(pool_capacity_bytes),
        agg_(make_aggregator(host, cfg_, pool_)) {}

  AllreduceEngine(const AllreduceEngine&) = delete;
  AllreduceEngine& operator=(const AllreduceEngine&) = delete;

  void process(std::shared_ptr<const Packet> pkt, HandlerDone done) {
    agg_->process(std::move(pkt), std::move(done));
  }

  /// Between iterations of a persistent collective: clears per-iteration
  /// aggregation state so the same block ids can run again (install-once /
  /// run-many).  See Aggregator::reset.
  void reset() { agg_->reset(); }

  const AllreduceConfig& config() const { return cfg_; }
  const EngineStats& stats() const { return agg_->stats(); }
  const BufferPool& pool() const { return pool_; }
  BufferPool& pool() { return pool_; }

 private:
  AllreduceConfig cfg_;
  BufferPool pool_;
  std::unique_ptr<Aggregator> agg_;
};

}  // namespace flare::core
