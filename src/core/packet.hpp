// Allreduce packet format (Section 4 and Section 7 of the paper).
//
// Dense packets carry `elem_count` raw elements of the allreduce dtype.
// Sparse packets carry (index, value) pairs encoded structure-of-arrays:
// all block-relative u32 indices first, then all values.  The header fields
// mirror the paper: the allreduce identifier, the reduction-block identifier
// (carried as an IP-option-like field so the parser can feed the scheduler),
// the flags for sparse shard bookkeeping, and the shard count carried in the
// LAST packet a sender emits for a block (Section 7, "Block split").
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "core/buffer_pool.hpp"
#include "core/dtype.hpp"

namespace flare::core {

enum PacketFlags : u16 {
  kFlagSparse = 1u << 0,     ///< payload is (index, value) pairs
  kFlagLastShard = 1u << 1,  ///< last packet of this block from this sender
  kFlagEmptyBlock = 1u << 2, ///< all-zero sparse block (header-only packet)
  kFlagRetransmit = 1u << 3, ///< host-timeout retransmission
  kFlagSpill = 1u << 4,      ///< sparse hash spill flush (early partial data)
  kFlagDown = 1u << 5,       ///< aggregated result travelling down the tree
};

struct PacketHeader {
  u32 allreduce_id = 0;
  u32 block_id = 0;
  /// Shard sequence number within (sender, block); used to deduplicate
  /// retransmitted sparse shards.
  u32 shard_seq = 0;
  /// Which child of the receiving switch sent this packet (reduction-tree
  /// port index, 0..num_children-1).  Rewritten hop by hop.
  u16 child_index = 0;
  u16 flags = 0;
  /// Number of packets the sender emitted for this block; valid only when
  /// kFlagLastShard is set (sparse blocks may span several packets).
  u32 shard_count = 0;
  /// Payload element count: elements (dense) or pairs (sparse).
  u32 elem_count = 0;
};

/// Wire overhead per packet: Ethernet/IP/transport headers plus the Flare
/// option header above.  Used for traffic accounting and serialization time.
inline constexpr u64 kPacketWireOverhead = 64;

struct Packet {
  PacketHeader hdr;
  /// Arena-backed: payload storage recycles through the size-class
  /// freelists instead of round-tripping the heap once per packet.
  PayloadVec payload;

  u64 payload_bytes() const { return payload.size(); }
  u64 wire_bytes() const { return kPacketWireOverhead + payload.size(); }
  bool is_sparse() const { return (hdr.flags & kFlagSparse) != 0; }
  bool is_last_shard() const { return (hdr.flags & kFlagLastShard) != 0; }
  bool is_spill() const { return (hdr.flags & kFlagSpill) != 0; }
  bool is_down() const { return (hdr.flags & kFlagDown) != 0; }
};

/// Builds a dense packet from `elems` raw elements at `data`.
Packet make_dense_packet(u32 allreduce_id, u32 block_id, u16 child_index,
                         const void* data, u32 elems, DType dtype);

/// Shared ownership of an immutable in-flight packet (the form the network
/// layer multicasts).  The control block comes from the payload arena too:
/// one pooled allocation instead of a heap make_shared per packet.
using PacketPtr = std::shared_ptr<const Packet>;

inline PacketPtr make_pooled_packet(Packet&& p) {
  return std::allocate_shared<const Packet>(PoolAllocator<Packet>{},
                                            std::move(p));
}

/// Read-only view of a dense payload as raw element storage.
inline const void* dense_payload(const Packet& p) { return p.payload.data(); }

/// A single sparse (index, value) pair staged on the host side.
struct SparsePair {
  u32 index = 0;    ///< block-relative element index
  f64 value = 0.0;  ///< staged as f64; narrowed to dtype at pack time
};

/// Builds a sparse packet with `pairs` (SoA layout: indices then values).
Packet make_sparse_packet(u32 allreduce_id, u32 block_id, u16 child_index,
                          std::span<const SparsePair> pairs, DType dtype,
                          u16 extra_flags = 0);

/// Builds the header-only packet for an all-zero sparse block (Section 7,
/// "Empty blocks").
Packet make_empty_block_packet(u32 allreduce_id, u32 block_id,
                               u16 child_index);

/// Accessors for the SoA sparse payload.
struct SparseView {
  const u32* indices = nullptr;
  const std::byte* values = nullptr;  ///< elem_count values of `dtype`
  u32 count = 0;
  DType dtype = DType::kFloat32;

  f64 value_as_f64(u32 i) const;
};

SparseView sparse_view(const Packet& p, DType dtype);

/// Payload bytes used by `pairs` sparse pairs of `dtype`.
constexpr u64 sparse_pair_bytes(DType dtype) {
  return sizeof(u32) + dtype_size(dtype);
}

/// How many whole pairs fit in `payload_budget` bytes.
constexpr u32 sparse_pairs_per_packet(u64 payload_budget, DType dtype) {
  return static_cast<u32>(payload_budget / sparse_pair_bytes(dtype));
}

}  // namespace flare::core
