// A dynamically-typed contiguous vector of reduction elements.
//
// Hosts, tests and reference reductions manipulate data through this class;
// the switch-side engines work on raw payload bytes for speed but produce
// data that TypedBuffer can check element-wise.
#pragma once

#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/dtype.hpp"
#include "core/reduce_op.hpp"

namespace flare::core {

class TypedBuffer {
 public:
  TypedBuffer() = default;
  TypedBuffer(DType dtype, std::size_t elems)
      : dtype_(dtype), elems_(elems), bytes_(elems * dtype_size(dtype)) {}

  DType dtype() const { return dtype_; }
  std::size_t size() const { return elems_; }
  std::size_t size_bytes() const { return bytes_.size(); }
  std::byte* data() { return bytes_.data(); }
  const std::byte* data() const { return bytes_.data(); }

  std::byte* at_byte(std::size_t elem_index) {
    return bytes_.data() + elem_index * dtype_size(dtype_);
  }
  const std::byte* at_byte(std::size_t elem_index) const {
    return bytes_.data() + elem_index * dtype_size(dtype_);
  }

  /// Reads element i widened to f64 (f16 goes through f32).
  f64 get_as_f64(std::size_t i) const;
  /// Writes element i from an f64 (narrowing like handler code would).
  void set_from_f64(std::size_t i, f64 v);

  /// this[i] = op(this[i], other[i]) for all elements.
  void accumulate(const TypedBuffer& other, const ReduceOp& op) {
    FLARE_ASSERT(other.dtype_ == dtype_ && other.elems_ == elems_);
    op.apply(dtype_, bytes_.data(), other.bytes_.data(), elems_);
  }

  void fill_identity(const ReduceOp& op) {
    op.fill_identity(dtype_, bytes_.data(), elems_);
  }

  /// Fills with deterministic pseudo-random values scaled for the dtype
  /// (small magnitudes so integer sums across many hosts do not overflow).
  void fill_random(Rng& rng, f64 lo = -8.0, f64 hi = 8.0);

  bool bitwise_equal(const TypedBuffer& other) const {
    return dtype_ == other.dtype_ && bytes_ == other.bytes_;
  }

  /// Max |a-b| over elements, widened to f64.
  f64 max_abs_diff(const TypedBuffer& other) const;

  /// Count of elements not bitwise-equal to `other`.
  std::size_t count_mismatches(const TypedBuffer& other) const;

 private:
  DType dtype_ = DType::kFloat32;
  std::size_t elems_ = 0;
  std::vector<std::byte> bytes_;
};

/// Serial reference allreduce: reduces `inputs` in index order with `op`.
/// This is the ground truth every simulated collective is checked against.
TypedBuffer reference_reduce(const std::vector<TypedBuffer>& inputs,
                             const ReduceOp& op);

/// Numeric tolerance of a `participants`-way reduction check against
/// reference_reduce over the network simulator: floats accumulate
/// association-order rounding per participant, integers are exact.  (The
/// PsPIN single-switch experiments use their own, tighter calibration.)
f64 reduce_tolerance(DType dtype, u32 participants);

}  // namespace flare::core
