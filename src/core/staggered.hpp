// Staggered sending (Section 5).
//
// Hosts send their blocks in rotated orders so that, at the switch, packets
// of the same block arrive spread out in time: this raises the intra-block
// interarrival time delta_c from ~delta (all hosts aligned) towards its
// upper bound delta * Z/N, which (a) keeps hierarchical-FCFS bursts short
// (scenario C of Figure 5) and (b) removes critical-section contention on
// the shared aggregation buffer (Section 6.1).
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace flare::core {

enum class SendOrder : u8 {
  kAligned = 0,   ///< every host sends block 0, 1, 2, ... (worst delta_c)
  kStaggered,     ///< host h starts at block h * ceil(num_blocks / P)
};

/// The block index host `host` (of `num_hosts`) sends at position `pos`.
u32 staggered_block(u32 host, u32 num_hosts, u32 num_blocks, u32 pos,
                    SendOrder order);

/// Full send order for one host (convenience for tests and host models).
std::vector<u32> send_schedule(u32 host, u32 num_hosts, u32 num_blocks,
                               SendOrder order);

/// delta_c this schedule induces, in units of the per-host send interval
/// (= P * delta): with max stagger every host is offset by
/// ceil(num_blocks/P) positions, so two packets of the same block are
/// ceil(num_blocks/P) host-send-intervals apart.
f64 staggered_delta_c_factor(u32 num_hosts, u32 num_blocks, SendOrder order);

}  // namespace flare::core
