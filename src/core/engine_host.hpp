// The interface an aggregation engine needs from its hosting simulator.
//
// The same engine code runs inside two substrates: the PsPIN processing-unit
// simulator (src/pspin, single-switch experiments of Section 6.4/7.1) and the
// SST-style network simulator (src/net, the fat-tree experiments of
// Figure 15).  Both provide the event calendar, the cycle-cost model, and a
// sink for the packets the engine produces.
#pragma once

#include <functional>

#include "core/cost_model.hpp"
#include "core/packet.hpp"
#include "sim/simulator.hpp"

namespace flare::core {

class EngineHost {
 public:
  virtual ~EngineHost() = default;

  virtual sim::Simulator& simulator() = 0;
  virtual const CostModel& costs() = 0;

  /// Consumes a packet the engine produced (fully-aggregated block result,
  /// or a sparse spill flush).  `when` is the cycle at which the packet
  /// leaves the processing unit; it is never before the current sim time.
  virtual void emit(Packet&& pkt, SimTime when) = 0;
};

/// Completion callback of one handler invocation: `end` is the cycle at
/// which the HPU core is released.  Invoked exactly once, at a simulation
/// event whose time is <= end.
using HandlerDone = std::function<void(SimTime end)>;

}  // namespace flare::core
