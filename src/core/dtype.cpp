#include "core/dtype.hpp"

#include <bit>
#include <cstring>

namespace flare::core {

std::string_view dtype_name(DType t) {
  switch (t) {
    case DType::kInt8: return "int8";
    case DType::kInt16: return "int16";
    case DType::kInt32: return "int32";
    case DType::kInt64: return "int64";
    case DType::kFloat16: return "float16";
    case DType::kFloat32: return "float32";
  }
  return "?";
}

u16 f32_to_f16(f32 value) {
  const u32 bits = std::bit_cast<u32>(value);
  const u32 sign = (bits >> 16) & 0x8000u;
  const u32 exp32 = (bits >> 23) & 0xFFu;
  u32 frac = bits & 0x007FFFFFu;

  if (exp32 == 0xFF) {  // Inf / NaN
    const u32 nan_frac = frac ? 0x200u | (frac >> 13) : 0u;
    return static_cast<u16>(sign | 0x7C00u | nan_frac);
  }

  const i32 exp = static_cast<i32>(exp32) - 127 + 15;
  if (exp >= 0x1F) {  // overflow -> inf
    return static_cast<u16>(sign | 0x7C00u);
  }
  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return static_cast<u16>(sign);  // too small -> +-0
    // Add the implicit leading 1, then shift right with rounding.
    frac |= 0x00800000u;
    const u32 shift = static_cast<u32>(14 - exp);
    const u32 half_frac = frac >> shift;
    const u32 rem = frac & ((1u << shift) - 1);
    const u32 halfway = 1u << (shift - 1);
    u32 rounded = half_frac;
    if (rem > halfway || (rem == halfway && (half_frac & 1u))) rounded += 1;
    return static_cast<u16>(sign | rounded);
  }

  // Normal number: round mantissa from 23 to 10 bits (nearest even).
  u32 half = sign | (static_cast<u32>(exp) << 10) | (frac >> 13);
  const u32 rem = frac & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) half += 1;
  return static_cast<u16>(half);
}

f32 f16_to_f32(u16 half_bits) {
  const u32 sign = static_cast<u32>(half_bits & 0x8000u) << 16;
  const u32 exp = (half_bits >> 10) & 0x1Fu;
  const u32 frac = half_bits & 0x3FFu;

  u32 bits;
  if (exp == 0) {
    if (frac == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal: normalize.
      u32 e = 127 - 15 + 1;
      u32 f = frac;
      while ((f & 0x400u) == 0) {
        f <<= 1;
        e -= 1;
      }
      f &= 0x3FFu;
      bits = sign | (e << 23) | (f << 13);
    }
  } else if (exp == 0x1F) {
    bits = sign | 0x7F800000u | (frac << 13);  // inf / nan
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (frac << 13);
  }
  f32 out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

}  // namespace flare::core
