#include "pspin/unit.hpp"

#include <algorithm>

namespace flare::pspin {

PsPinUnit::PsPinUnit(sim::Simulator& sim, PsPinConfig cfg)
    : sim_(sim), cfg_(cfg) {
  FLARE_ASSERT(cfg_.n_clusters >= 1 && cfg_.cores_per_cluster >= 1);
  FLARE_ASSERT_MSG(cfg_.cores_per_cluster % cfg_.subset_cores == 0,
                   "S must divide the cores per cluster");
  cores_.resize(cfg_.total_cores());
  subsets_.resize(cfg_.num_subsets());
  if (cfg_.scheduler == SchedulerKind::kGlobalFcfs) {
    for (u32 c = 0; c < cfg_.total_cores(); ++c)
      subsets_[0].core_ids.push_back(c);
  } else {
    // Subsets are contiguous S-core groups inside one cluster, so a block's
    // working buffer is always in the local L1 TCDM.
    const u32 per_cluster = cfg_.cores_per_cluster / cfg_.subset_cores;
    for (u32 s = 0; s < cfg_.num_subsets(); ++s) {
      const u32 cluster = s / per_cluster;
      const u32 sub_in_cluster = s % per_cluster;
      for (u32 i = 0; i < cfg_.subset_cores; ++i) {
        subsets_[s].core_ids.push_back(cluster * cfg_.cores_per_cluster +
                                       sub_in_cluster * cfg_.subset_cores +
                                       i);
      }
    }
  }
}

core::AllreduceEngine& PsPinUnit::install(const core::AllreduceConfig& cfg,
                                          u64 pool_capacity) {
  auto [it, inserted] = engines_.try_emplace(
      cfg.id,
      std::make_unique<core::AllreduceEngine>(*this, cfg, pool_capacity));
  FLARE_ASSERT_MSG(inserted, "allreduce id already installed");
  return *it->second;
}

core::AllreduceEngine* PsPinUnit::find(u32 allreduce_id) {
  auto it = engines_.find(allreduce_id);
  return it == engines_.end() ? nullptr : it->second.get();
}

void PsPinUnit::uninstall(u32 allreduce_id) { engines_.erase(allreduce_id); }

u32 PsPinUnit::subset_of(const core::Packet& pkt) const {
  if (cfg_.scheduler == SchedulerKind::kGlobalFcfs) return 0;
  // The parser extracts the block id from the option header and feeds the
  // packet scheduler: same block -> same subset (Section 5, footnote 4).
  return pkt.hdr.block_id % cfg_.num_subsets();
}

void PsPinUnit::inject(core::Packet pkt, SimTime when) {
  FLARE_ASSERT(when >= sim_.now());
  sim_.schedule_at(when, [this, pkt = std::move(pkt)]() mutable {
    const SimTime now = sim_.now();
    packets_injected_ += 1;
    if (!saw_injection_) {
      saw_injection_ = true;
      first_injection_ = now;
    }
    core::AllreduceEngine* engine = find(pkt.hdr.allreduce_id);
    if (engine == nullptr) {
      packets_unmatched_ += 1;
      return;
    }
    const u64 wire = pkt.wire_bytes();
    if (l2_bytes_.current() + wire > cfg_.l2_packet_bytes) {
      // Packet memory full: the packet is dropped (the host will time out
      // and retransmit; Section 3, footnote 2).
      packets_dropped_ += 1;
      return;
    }
    l2_bytes_.add(static_cast<i64>(wire), now);
    const u32 s = subset_of(pkt);
    subsets_[s].queue.push_back(
        QueuedPacket{core::make_pooled_packet(std::move(pkt)),
                     engine});
    queued_packets_.add(1, now);
    dispatch(s);
  });
}

void PsPinUnit::dispatch(u32 subset_idx) {
  Subset& sub = subsets_[subset_idx];
  while (!sub.queue.empty()) {
    u32 free_core = UINT32_MAX;
    for (u32 cid : sub.core_ids) {
      if (!cores_[cid].busy) {
        free_core = cid;
        break;
      }
    }
    if (free_core == UINT32_MAX) return;
    QueuedPacket qp = std::move(sub.queue.front());
    sub.queue.pop_front();
    queued_packets_.add(-1, sim_.now());
    start_handler(free_core, subset_idx, std::move(qp));
  }
}

void PsPinUnit::start_handler(u32 core_id, u32 subset_idx, QueuedPacket qp) {
  Core& core = cores_[core_id];
  FLARE_ASSERT(!core.busy);
  core.busy = true;
  core.handlers += 1;
  handlers_run_ += 1;
  busy_cores_.add(1, sim_.now());

  u64 cold = 0;
  if (!core.warm) {
    core.warm = true;
    if (cfg_.charge_cold_start) cold = cfg_.costs.cold_start_cycles;
  }
  const u64 wire = qp.pkt->wire_bytes();
  const u64 payload = qp.pkt->payload_bytes();
  auto run = [this, core_id, subset_idx, wire, payload,
              pkt = std::move(qp.pkt), engine = qp.engine]() mutable {
    engine->process(std::move(pkt),
                    [this, core_id, subset_idx, wire, payload](SimTime end) {
                      payload_bytes_processed_ += payload;
                      finish_handler(core_id, subset_idx, wire, end);
                    });
  };
  if (cold == 0) {
    run();
  } else {
    sim_.schedule_after(cold, std::move(run));
  }
}

void PsPinUnit::finish_handler(u32 core_id, u32 subset_idx, u64 wire_bytes,
                               SimTime end) {
  FLARE_ASSERT(end >= sim_.now());
  sim_.schedule_at(end, [this, core_id, subset_idx, wire_bytes] {
    const SimTime now = sim_.now();
    cores_[core_id].busy = false;
    busy_cores_.add(-1, now);
    // The input buffer is held for the whole handler lifetime (Section 4.2).
    l2_bytes_.add(-static_cast<i64>(wire_bytes), now);
    dispatch(subset_idx);
  });
}

void PsPinUnit::emit(core::Packet&& pkt, SimTime when) {
  FLARE_ASSERT(when >= sim_.now());
  emitted_.add(pkt.wire_bytes());
  last_emission_ = std::max(last_emission_, when);
  if (emit_hook_) {
    // Deliver at `when` so downstream consumers observe causal times.
    sim_.schedule_at(when,
                     [this, p = std::move(pkt), when] { emit_hook_(p, when); });
  }
}

u64 PsPinUnit::working_memory_high_water() const {
  u64 total = 0;
  // flare-lint: allow(unordered-iter) integer sum, order-insensitive
  for (const auto& [id, engine] : engines_)
    total += engine->pool().high_water();
  return total;
}

}  // namespace flare::pspin
