// Discrete-event simulator of the PsPIN processing unit inside the Flare
// switch (Figure 2 of the paper): parser -> L2 packet memory -> packet
// scheduler -> cluster scheduler -> HPU runs the sPIN handler -> command
// unit emits packets.
//
// The unit hosts one core::AllreduceEngine per installed allreduce
// (Section 4: the network manager installs handlers and partitions memory).
// Handler execution is delegated to the engine, which charges cycles on the
// shared event calendar; the unit owns core occupancy, queueing, L2
// input-buffer accounting and the cold-start penalty.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "core/allreduce_engine.hpp"
#include "pspin/config.hpp"

namespace flare::pspin {

class PsPinUnit final : public core::EngineHost {
 public:
  PsPinUnit(sim::Simulator& sim, PsPinConfig cfg);

  /// Installs an allreduce (control-plane operation).  `pool_capacity` of 0
  /// means accounting-only working memory.
  core::AllreduceEngine& install(const core::AllreduceConfig& cfg,
                                 u64 pool_capacity = 0);
  core::AllreduceEngine* find(u32 allreduce_id);
  void uninstall(u32 allreduce_id);

  /// A packet arrives at the unit at time `when` (>= now).
  void inject(core::Packet pkt, SimTime when);

  /// Called for every packet the unit emits (block results, spills).
  using EmitHook = std::function<void(const core::Packet&, SimTime)>;
  void set_emit_hook(EmitHook hook) { emit_hook_ = std::move(hook); }

  // --- EngineHost ---
  sim::Simulator& simulator() override { return sim_; }
  const core::CostModel& costs() override { return cfg_.costs; }
  void emit(core::Packet&& pkt, SimTime when) override;

  // --- telemetry ---
  const PsPinConfig& config() const { return cfg_; }
  const Gauge& l2_bytes() const { return l2_bytes_; }
  const Gauge& queued_packets() const { return queued_packets_; }
  const Gauge& busy_cores() const { return busy_cores_; }
  u64 packets_injected() const { return packets_injected_; }
  u64 packets_dropped() const { return packets_dropped_; }
  u64 packets_unmatched() const { return packets_unmatched_; }
  u64 handlers_run() const { return handlers_run_; }
  u64 core_handler_count(u32 core_id) const {
    return cores_.at(core_id).handlers;
  }
  const TrafficCounter& emitted() const { return emitted_; }
  /// Sum over engines of working-memory high-water marks.
  u64 working_memory_high_water() const;
  SimTime first_injection() const { return first_injection_; }
  SimTime last_emission() const { return last_emission_; }
  u64 payload_bytes_processed() const { return payload_bytes_processed_; }

 private:
  struct QueuedPacket {
    std::shared_ptr<const core::Packet> pkt;
    core::AllreduceEngine* engine = nullptr;
  };
  struct Subset {
    std::vector<u32> core_ids;
    std::deque<QueuedPacket> queue;
  };
  struct Core {
    bool busy = false;
    bool warm = false;  ///< handler code already in the i-cache
    u64 handlers = 0;
  };

  u32 subset_of(const core::Packet& pkt) const;
  void dispatch(u32 subset_idx);
  void start_handler(u32 core_id, u32 subset_idx, QueuedPacket qp);
  void finish_handler(u32 core_id, u32 subset_idx, u64 wire_bytes,
                      SimTime end);

  sim::Simulator& sim_;
  PsPinConfig cfg_;
  std::vector<Core> cores_;
  std::vector<Subset> subsets_;
  std::unordered_map<u32, std::unique_ptr<core::AllreduceEngine>> engines_;
  EmitHook emit_hook_;

  Gauge l2_bytes_;
  Gauge queued_packets_;
  Gauge busy_cores_;
  TrafficCounter emitted_;
  u64 packets_injected_ = 0;
  u64 packets_dropped_ = 0;
  u64 packets_unmatched_ = 0;
  u64 handlers_run_ = 0;
  u64 payload_bytes_processed_ = 0;
  SimTime first_injection_ = 0;
  bool saw_injection_ = false;
  SimTime last_emission_ = 0;
};

}  // namespace flare::pspin
