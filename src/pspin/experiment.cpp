#include "pspin/experiment.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/typed_buffer.hpp"
#include "model/policies.hpp"
#include "model/sparse.hpp"
#include "workload/generators.hpp"

namespace flare::pspin {

namespace {

struct HostState {
  u32 id = 0;
  std::vector<u32> schedule;  ///< block ids in send order (all rounds)
  std::size_t next = 0;       ///< next schedule slot
  u32 next_shard = 0;         ///< shard within the current sparse block
  std::unique_ptr<workload::ArrivalProcess> arrivals;
};

f64 err_tolerance(core::DType t, u32 hosts) {
  // Summation-order differences only matter for floats; scale with P.
  switch (t) {
    case core::DType::kFloat16: return 0.25 * hosts;
    case core::DType::kFloat32: return 1e-4 * hosts;
    default: return 0.0;
  }
}

}  // namespace

SingleSwitchResult run_single_switch(const SingleSwitchOptions& opt) {
  FLARE_ASSERT(opt.hosts >= 1 && opt.rounds >= 1);
  FLARE_ASSERT(!opt.sparse || opt.op == core::OpKind::kSum);

  sim::Simulator sim;
  PsPinUnit unit(sim, opt.unit);

  const u32 esize = core::dtype_size(opt.dtype);
  const u64 elems_total = std::max<u64>(1, opt.data_bytes / esize);
  const u32 elems_per_pkt =
      static_cast<u32>(opt.packet_payload / esize);
  const u32 ppp = core::sparse_pairs_per_packet(opt.packet_payload, opt.dtype);

  // Block geometry.
  u32 num_blocks;
  u32 span = 0;
  if (opt.sparse) {
    span = std::max<u32>(
        1, static_cast<u32>(static_cast<f64>(ppp) / opt.density));
    num_blocks = static_cast<u32>((elems_total + span - 1) / span);
  } else {
    num_blocks =
        static_cast<u32>((elems_total + elems_per_pkt - 1) / elems_per_pkt);
  }

  // --- workload ---
  std::vector<core::TypedBuffer> host_data;  // dense
  workload::SparseSpec sspec;
  // pairs_by[host][local_block] (sparse)
  std::vector<std::vector<std::vector<core::SparsePair>>> pairs_by;
  core::ReduceOp op(opt.op);
  if (opt.sparse) {
    sspec = workload::SparseSpec{span, opt.density, opt.index_overlap,
                                 opt.dtype, opt.seed};
    pairs_by.resize(opt.hosts);
    for (u32 h = 0; h < opt.hosts; ++h) {
      pairs_by[h].resize(num_blocks);
      for (u32 b = 0; b < num_blocks; ++b)
        pairs_by[h][b] = workload::sparse_block_pairs(sspec, h, b);
    }
  } else {
    host_data =
        workload::make_dense_data(opt.hosts, elems_total, opt.dtype, opt.seed);
  }

  // Per-local-block reference results, computed lazily (shared by rounds).
  std::vector<std::unique_ptr<core::TypedBuffer>> expected(num_blocks);
  auto expected_block = [&](u32 local) -> const core::TypedBuffer& {
    if (!expected[local]) {
      if (opt.sparse) {
        auto buf = std::make_unique<core::TypedBuffer>(
            workload::densify(sspec, pairs_by[0][local]));
        for (u32 h = 1; h < opt.hosts; ++h) {
          buf->accumulate(workload::densify(sspec, pairs_by[h][local]), op);
        }
        expected[local] = std::move(buf);
      } else {
        const u64 first = static_cast<u64>(local) * elems_per_pkt;
        const u32 elems = static_cast<u32>(
            std::min<u64>(elems_per_pkt, elems_total - first));
        auto buf = std::make_unique<core::TypedBuffer>(opt.dtype, elems);
        std::memcpy(buf->data(), host_data[0].at_byte(first),
                    static_cast<std::size_t>(elems) * esize);
        core::TypedBuffer tmp(opt.dtype, elems);
        for (u32 h = 1; h < opt.hosts; ++h) {
          std::memcpy(tmp.data(), host_data[h].at_byte(first),
                      static_cast<std::size_t>(elems) * esize);
          buf->accumulate(tmp, op);
        }
        expected[local] = std::move(buf);
      }
    }
    return *expected[local];
  };

  // --- engine installation (control plane) ---
  core::AllreduceConfig acfg;
  acfg.id = 1;
  acfg.num_children = opt.hosts;
  acfg.dtype = opt.dtype;
  acfg.op = op;
  acfg.elems_per_packet = elems_per_pkt;
  acfg.policy = opt.reproducible ? core::AggPolicy::kTree : opt.policy;
  acfg.num_buffers = opt.num_buffers;
  acfg.reproducible = opt.reproducible;
  acfg.is_root = true;
  acfg.remote_l1 =
      (opt.unit.scheduler == SchedulerKind::kGlobalFcfs);
  acfg.sparse = opt.sparse;
  acfg.hash_storage = opt.hash_storage;
  acfg.block_span = span;
  acfg.pairs_per_packet = ppp;
  acfg.hash_capacity_pairs = opt.hash_capacity_pairs;
  acfg.spill_capacity_pairs = opt.spill_capacity_pairs;
  core::AllreduceEngine& engine = unit.install(acfg);

  // --- pacing ---
  f64 agg_bps = opt.aggregate_ingest_bps;
  if (agg_bps <= 0.0) {
    model::SwitchParams sp;
    sp.cores = opt.unit.total_cores();
    sp.cores_per_cluster = opt.unit.cores_per_cluster;
    sp.subset = opt.unit.subset_cores;
    sp.hosts = opt.hosts;
    sp.packet_payload = opt.packet_payload;
    sp.dtype = opt.dtype;
    sp.costs = opt.unit.costs;
    sp.send_order = opt.order;
    sp.cold_start = opt.unit.charge_cold_start;
    if (opt.sparse) {
      model::SparseParams spp;
      spp.sw = sp;
      spp.density = opt.density;
      spp.hash_storage = opt.hash_storage;
      spp.hash_capacity_pairs = opt.hash_capacity_pairs;
      spp.spill_capacity_pairs = opt.spill_capacity_pairs;
      agg_bps = model::evaluate_sparse(spp, acfg.policy, opt.num_buffers,
                                       opt.data_bytes)
                    .bandwidth_bps;
    } else {
      agg_bps = model::evaluate(sp, acfg.policy, opt.num_buffers,
                                opt.data_bytes)
                    .bandwidth_bps;
    }
    // Feed 5% above the modeled service rate so queueing (not starvation)
    // governs, and let L2 backpressure absorb model error.
    agg_bps *= 1.05;
  }
  const f64 clock_hz = opt.unit.costs.clock_ghz * 1e9;
  const f64 wire_bits =
      static_cast<f64>(opt.packet_payload + core::kPacketWireOverhead) * 8.0;
  const f64 host_interval_cycles =
      wire_bits * static_cast<f64>(opt.hosts) / agg_bps * clock_hz;

  // --- result checking state ---
  SingleSwitchResult res;
  res.correct = true;
  const f64 tol = err_tolerance(opt.dtype, opt.hosts);
  u64 down_pairs = 0;
  std::unordered_map<u32, core::TypedBuffer> sparse_acc;
  u64 blocks_checked = 0;

  unit.set_emit_hook([&](const core::Packet& pkt, SimTime) {
    if (!pkt.is_down()) return;
    // Order-independent checksum: FNV over the payload, summed per packet.
    u64 fnv = 1469598103934665603ull ^ pkt.hdr.block_id;
    for (const std::byte b : pkt.payload) {
      fnv ^= static_cast<u64>(b);
      fnv *= 1099511628211ull;
    }
    res.result_checksum += fnv;
    const u32 local = pkt.hdr.block_id % num_blocks;
    if (!opt.sparse) {
      const core::TypedBuffer& exp = expected_block(local);
      FLARE_ASSERT(pkt.hdr.elem_count == exp.size());
      core::TypedBuffer got(opt.dtype, exp.size());
      std::memcpy(got.data(), pkt.payload.data(), pkt.payload.size());
      res.max_abs_err = std::max(res.max_abs_err, got.max_abs_diff(exp));
      blocks_checked += 1;
      return;
    }
    // Sparse: accumulate pairs; check when the last shard arrives.
    down_pairs += pkt.hdr.elem_count;
    auto [it, inserted] =
        sparse_acc.try_emplace(pkt.hdr.block_id, opt.dtype, span);
    core::TypedBuffer& acc = it->second;
    if (inserted) acc.fill_identity(op);
    if (pkt.hdr.elem_count > 0) {
      const core::SparseView view = core::sparse_view(pkt, opt.dtype);
      for (u32 i = 0; i < view.count; ++i) {
        op.apply(opt.dtype, acc.at_byte(view.indices[i]),
                 view.values + static_cast<std::size_t>(i) * esize, 1);
      }
    }
    if (pkt.is_last_shard()) {
      res.max_abs_err =
          std::max(res.max_abs_err, acc.max_abs_diff(expected_block(local)));
      sparse_acc.erase(it);
      blocks_checked += 1;
    }
  });

  // --- host send loops ---
  std::vector<HostState> hosts_state(opt.hosts);
  const u64 total_blocks = static_cast<u64>(num_blocks) * opt.rounds;
  for (u32 h = 0; h < opt.hosts; ++h) {
    HostState& hs = hosts_state[h];
    hs.id = h;
    hs.schedule.reserve(total_blocks);
    for (u32 r = 0; r < opt.rounds; ++r) {
      for (u32 pos = 0; pos < num_blocks; ++pos) {
        hs.schedule.push_back(
            core::staggered_block(h, opt.hosts, num_blocks, pos, opt.order) +
            r * num_blocks);
      }
    }
    const u64 aseed = opt.arrival_seed != 0 ? opt.arrival_seed : opt.seed;
    hs.arrivals = std::make_unique<workload::ArrivalProcess>(
        opt.arrivals, host_interval_cycles, derive_seed(aseed, 0xA221 + h));
  }

  // Builds the next packet for host h and advances its cursor.
  auto build_next_packet = [&](HostState& hs) -> core::Packet {
    const u32 bid = hs.schedule[hs.next];
    const u32 local = bid % num_blocks;
    if (!opt.sparse) {
      const u64 first = static_cast<u64>(local) * elems_per_pkt;
      const u32 elems = static_cast<u32>(
          std::min<u64>(elems_per_pkt, elems_total - first));
      core::Packet p = core::make_dense_packet(
          acfg.id, bid, static_cast<u16>(hs.id),
          host_data[hs.id].at_byte(first), elems, opt.dtype);
      hs.next += 1;
      res.host_payload_bytes += p.payload_bytes();
      return p;
    }
    const auto& pairs = pairs_by[hs.id][local];
    const u32 shards =
        std::max<u32>(1, static_cast<u32>((pairs.size() + ppp - 1) / ppp));
    core::Packet p;
    if (pairs.empty()) {
      p = core::make_empty_block_packet(acfg.id, bid,
                                        static_cast<u16>(hs.id));
    } else {
      const u32 off = hs.next_shard * ppp;
      const u32 n = std::min<u32>(ppp, static_cast<u32>(pairs.size()) - off);
      const bool last = (hs.next_shard + 1 == shards);
      p = core::make_sparse_packet(
          acfg.id, bid, static_cast<u16>(hs.id),
          std::span<const core::SparsePair>(pairs.data() + off, n),
          opt.dtype, last ? core::kFlagLastShard : 0);
      p.hdr.shard_seq = hs.next_shard;
      if (last) p.hdr.shard_count = shards;
    }
    res.host_payload_bytes += p.payload_bytes();
    hs.next_shard += 1;
    if (hs.next_shard >= shards) {
      hs.next_shard = 0;
      hs.next += 1;
    }
    return p;
  };

  // The send loop: paced injections with L2 backpressure ("congestion is
  // notified before filling the buffer", Section 3).
  const u64 l2_backoff_threshold = opt.unit.l2_packet_bytes * 3 / 4;
  std::function<void(u32)> send_next = [&](u32 h) {
    HostState& hs = hosts_state[h];
    if (hs.next >= hs.schedule.size()) return;
    if (unit.l2_bytes().current() > l2_backoff_threshold) {
      sim.schedule_after(
          static_cast<SimTime>(host_interval_cycles) + 1,
          [&send_next, h] { send_next(h); });
      return;
    }
    core::Packet p = build_next_packet(hs);
    unit.inject(std::move(p), sim.now());
    const f64 gap = std::max(1.0, hs.arrivals->next_gap());
    sim.schedule_after(static_cast<SimTime>(gap),
                       [&send_next, h] { send_next(h); });
  };
  for (u32 h = 0; h < opt.hosts; ++h) {
    // Small deterministic phase offset so hosts do not inject in lockstep.
    const SimTime phase = h * static_cast<SimTime>(
        host_interval_cycles / std::max(1u, opt.hosts));
    sim.schedule_at(phase, [&send_next, h] { send_next(h); });
  }

  sim.run();

  // --- results ---
  const auto& st = engine.stats();
  res.blocks_completed = st.blocks_completed;
  res.duplicates = st.duplicates_dropped;
  res.drops = unit.packets_dropped();
  res.makespan_cycles = unit.last_emission();
  res.goodput_bps = bytes_per_cycles_to_bps(
      res.host_payload_bytes, res.makespan_cycles, opt.unit.costs.clock_ghz);
  res.input_buffer_hwm_bytes = unit.l2_bytes().high_water();
  res.input_buffer_mean_bytes = unit.l2_bytes().time_weighted_mean(sim.now());
  res.working_mem_hwm_bytes = unit.working_memory_high_water();
  res.block_mem_mean_bytes = st.block_mem_bytes.mean();
  res.block_latency_mean_cycles = st.block_latency.mean();
  res.cs_wait_mean_cycles = st.cs_wait_cycles.mean();
  res.mean_queued_packets = unit.queued_packets().time_weighted_mean(sim.now());
  res.emitted_wire_bytes = unit.emitted().bytes;

  const bool all_done = res.blocks_completed == total_blocks &&
                        blocks_checked == total_blocks;
  res.correct = all_done && res.max_abs_err <= tol && res.drops == 0;

  if (opt.sparse) {
    u64 ideal_pairs = 0;
    for (u32 b = 0; b < num_blocks; ++b) {
      ideal_pairs += workload::union_index_count(sspec, opt.hosts, b);
    }
    ideal_pairs *= opt.rounds;
    if (ideal_pairs > 0) {
      res.extra_traffic_pct =
          (static_cast<f64>(down_pairs) / static_cast<f64>(ideal_pairs) -
           1.0) *
          100.0;
    }
  }
  return res;
}

}  // namespace flare::pspin
