// Single-switch experiment driver (Sections 6.4 and 7.1).
//
// P hosts hang off one Flare switch and run `rounds` back-to-back allreduce
// operations of `data_bytes` each.  Hosts pace their packets at an aggregate
// rate matched to the unit's modeled service rate (the paper sizes the
// system so interarrival >= service time; a real deployment converges there
// through congestion control), optionally with exponential jitter, and back
// off when the L2 packet memory runs hot — so the measured goodput IS the
// switch's achievable aggregation bandwidth.
//
// The driver checks functional correctness of every completed block against
// a serial reference reduction and reports the telemetry the paper's figures
// plot: bandwidth, input-buffer and working-memory occupancy, per-block
// latency and memory, and (sparse) the spill-induced extra traffic.
#pragma once

#include "core/policy.hpp"
#include "core/staggered.hpp"
#include "pspin/unit.hpp"
#include "workload/arrivals.hpp"

namespace flare::pspin {

struct SingleSwitchOptions {
  PsPinConfig unit{};
  u32 hosts = 16;            ///< P
  u64 data_bytes = 1 * kMiB; ///< Z per host per operation (dense bytes)
  core::DType dtype = core::DType::kInt32;
  core::OpKind op = core::OpKind::kSum;
  core::AggPolicy policy = core::AggPolicy::kSingleBuffer;
  u32 num_buffers = 1;       ///< B for multi-buffer
  bool reproducible = false;
  u64 packet_payload = 1024;
  core::SendOrder order = core::SendOrder::kStaggered;
  u32 rounds = 1;
  /// Aggregate host injection rate in bits/s; 0 = auto-pace slightly above
  /// the analytical model's service rate (so queueing, not starvation,
  /// limits throughput).
  f64 aggregate_ingest_bps = 0.0;
  workload::ArrivalKind arrivals = workload::ArrivalKind::kExponential;
  u64 seed = 1;
  /// Seed for arrival jitter only; 0 -> derive from `seed`.  Lets tests vary
  /// packet arrival orders while keeping the host data identical
  /// (reproducibility experiments, F3).
  u64 arrival_seed = 0;

  // --- sparse (Section 7) ---
  bool sparse = false;
  f64 density = 0.10;
  f64 index_overlap = 0.0;  ///< cross-host shared fraction of non-zeros
  bool hash_storage = true;
  u32 hash_capacity_pairs = 512;
  u32 spill_capacity_pairs = 64;
};

struct SingleSwitchResult {
  /// Payload goodput: host data bits ingested / makespan.
  f64 goodput_bps = 0.0;
  u64 makespan_cycles = 0;
  u64 input_buffer_hwm_bytes = 0;
  f64 input_buffer_mean_bytes = 0.0;
  u64 working_mem_hwm_bytes = 0;
  f64 block_mem_mean_bytes = 0.0;
  f64 block_latency_mean_cycles = 0.0;
  f64 cs_wait_mean_cycles = 0.0;
  f64 mean_queued_packets = 0.0;
  u64 blocks_completed = 0;
  u64 duplicates = 0;
  u64 drops = 0;
  u64 host_payload_bytes = 0;  ///< total reducible bytes hosts sent
  u64 emitted_wire_bytes = 0;
  bool correct = false;
  f64 max_abs_err = 0.0;
  /// Sparse only: (emitted pairs - ideal union pairs) / ideal, in percent.
  f64 extra_traffic_pct = 0.0;
  /// Order-independent hash over (block id, result payload bits): equal
  /// checksums <=> bitwise-identical aggregation results (F3 checks).
  u64 result_checksum = 0;
};

SingleSwitchResult run_single_switch(const SingleSwitchOptions& opt);

}  // namespace flare::pspin
