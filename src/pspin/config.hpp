// PsPIN processing-unit configuration (Section 3 of the paper).
//
// Defaults reproduce the paper's scaled switch: 64 clusters of 8 RI5CY HPUs
// at 1 GHz inside the 180 mm^2 area budget, 1 MiB single-cycle L1 TCDM per
// cluster, a 4 MiB shared L2 packet memory, and hierarchical FCFS
// scheduling that pins all packets of a reduction block to a subset of S
// cores within one cluster (Section 5).
#pragma once

#include "common/units.hpp"
#include "core/cost_model.hpp"

namespace flare::pspin {

enum class SchedulerKind : u8 {
  /// One global FCFS queue over all cores; blocks land on arbitrary
  /// clusters, so aggregation touches remote L1 (the slow strawman).
  kGlobalFcfs = 0,
  /// Packets of one block go FCFS to a fixed subset of S cores inside one
  /// cluster (local L1 only) — Flare's design.
  kHierarchicalFcfs,
};

struct PsPinConfig {
  u32 n_clusters = 64;
  u32 cores_per_cluster = 8;
  /// S: cores per scheduling subset; must divide cores_per_cluster.
  u32 subset_cores = 8;
  f64 clock_ghz = 1.0;
  u64 l2_packet_bytes = 4 * kMiB;
  u64 l1_bytes_per_cluster = 1 * kMiB;
  SchedulerKind scheduler = SchedulerKind::kHierarchicalFcfs;
  /// Charge the i-cache fill the first time each core runs a handler.
  bool charge_cold_start = true;
  core::CostModel costs{};

  u32 total_cores() const { return n_clusters * cores_per_cluster; }
  u32 num_subsets() const {
    return scheduler == SchedulerKind::kGlobalFcfs
               ? 1
               : total_cores() / subset_cores;
  }
};

}  // namespace flare::pspin
