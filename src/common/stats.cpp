#include "common/stats.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace flare {

void RunningStats::add(f64 x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  n_ += 1;
  sum_ += x;
  const f64 delta = x - mean_;
  mean_ += delta / static_cast<f64>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const f64 delta = other.mean_ - mean_;
  const f64 na = static_cast<f64>(n_);
  const f64 nb = static_cast<f64>(other.n_);
  const f64 nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

f64 RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<f64>(n_ - 1);
}

void Gauge::advance_to(SimTime now) {
  if (!started_) {
    started_ = true;
    first_update_ = now;
    last_update_ = now;
    return;
  }
  FLARE_ASSERT_MSG(now >= last_update_, "gauge updated with time going back");
  weighted_area_ +=
      static_cast<f64>(current_) * static_cast<f64>(now - last_update_);
  last_update_ = now;
}

void Gauge::add(i64 delta, SimTime now) {
  advance_to(now);
  if (delta < 0) {
    const u64 dec = static_cast<u64>(-delta);
    FLARE_ASSERT_MSG(dec <= current_, "gauge would go negative");
    current_ -= dec;
  } else {
    current_ += static_cast<u64>(delta);
  }
  high_water_ = std::max(high_water_, current_);
}

void Gauge::set(u64 value, SimTime now) {
  advance_to(now);
  current_ = value;
  high_water_ = std::max(high_water_, current_);
}

f64 Gauge::time_weighted_mean(SimTime now) const {
  if (!started_ || now <= first_update_) return static_cast<f64>(current_);
  const f64 tail =
      static_cast<f64>(current_) * static_cast<f64>(now - last_update_);
  return (weighted_area_ + tail) / static_cast<f64>(now - first_update_);
}

Histogram::Histogram(f64 lo, f64 hi, u32 bins) : lo_(lo), hi_(hi) {
  FLARE_ASSERT(hi > lo);
  FLARE_ASSERT(bins > 0);
  counts_.assign(bins, 0);
}

void Histogram::add(f64 x) {
  total_ += 1;
  if (x < lo_) {
    underflow_ += 1;
    return;
  }
  if (x >= hi_) {
    overflow_ += 1;
    return;
  }
  const f64 frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<u32>(frac * static_cast<f64>(counts_.size()));
  idx = std::min<u32>(idx, static_cast<u32>(counts_.size() - 1));
  counts_[idx] += 1;
}

f64 Histogram::bin_low(u32 i) const {
  return lo_ + (hi_ - lo_) * static_cast<f64>(i) /
                   static_cast<f64>(counts_.size());
}

f64 Histogram::quantile(f64 q) const {
  if (total_ == 0) return lo_;
  const f64 target = q * static_cast<f64>(total_);
  f64 acc = static_cast<f64>(underflow_);
  if (acc >= target) return lo_;
  const f64 width = (hi_ - lo_) / static_cast<f64>(counts_.size());
  for (u32 i = 0; i < counts_.size(); ++i) {
    const f64 next = acc + static_cast<f64>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const f64 within = (target - acc) / static_cast<f64>(counts_[i]);
      return bin_low(i) + width * within;
    }
    acc = next;
  }
  return hi_;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "hist[" << lo_ << "," << hi_ << ") n=" << total_
     << " under=" << underflow_ << " over=" << overflow_;
  return os.str();
}

}  // namespace flare
