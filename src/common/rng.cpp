#include "common/rng.hpp"

namespace flare {

u64 derive_seed(u64 parent, u64 stream) {
  u64 s = parent ^ (0xA5A5A5A55A5A5A5Aull + stream * 0x9E3779B97F4A7C15ull);
  // Two splitmix rounds decorrelate adjacent stream ids.
  (void)splitmix64(s);
  return splitmix64(s);
}

}  // namespace flare
