// Lightweight statistics collectors used by the simulators' telemetry:
// running mean/min/max/stddev, high-water-mark gauges for memory occupancy,
// and a byte/packet counter for traffic accounting.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace flare {

/// Welford running statistics over a stream of samples.
class RunningStats {
 public:
  void add(f64 x);
  void merge(const RunningStats& other);
  void reset();

  u64 count() const { return n_; }
  f64 mean() const { return n_ ? mean_ : 0.0; }
  f64 min() const { return n_ ? min_ : 0.0; }
  f64 max() const { return n_ ? max_ : 0.0; }
  f64 variance() const;  ///< Sample variance (n-1 denominator).
  f64 stddev() const { return std::sqrt(variance()); }
  f64 sum() const { return sum_; }

 private:
  u64 n_ = 0;
  f64 mean_ = 0.0;
  f64 m2_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
  f64 sum_ = 0.0;
};

/// Gauge tracking a current level and its high-water mark, plus the
/// time-weighted average level (useful for average buffer occupancy).
class Gauge {
 public:
  /// Adjusts the level by `delta` at simulated time `now`.
  void add(i64 delta, SimTime now);
  void set(u64 value, SimTime now);

  u64 current() const { return current_; }
  u64 high_water() const { return high_water_; }

  /// Time-weighted mean level over [first update, `now`].
  f64 time_weighted_mean(SimTime now) const;

 private:
  void advance_to(SimTime now);

  u64 current_ = 0;
  u64 high_water_ = 0;
  SimTime last_update_ = 0;
  SimTime first_update_ = 0;
  bool started_ = false;
  f64 weighted_area_ = 0.0;
};

/// Counts packets and bytes; used for per-link and per-scheme traffic.
struct TrafficCounter {
  u64 packets = 0;
  u64 bytes = 0;

  void add(u64 packet_bytes) {
    packets += 1;
    bytes += packet_bytes;
  }
  void merge(const TrafficCounter& o) {
    packets += o.packets;
    bytes += o.bytes;
  }
};

/// Fixed-bin histogram for latency/queue-length distributions.
class Histogram {
 public:
  Histogram(f64 lo, f64 hi, u32 bins);

  void add(f64 x);
  u64 count() const { return total_; }
  u64 bin_count(u32 i) const { return counts_.at(i); }
  u32 bins() const { return static_cast<u32>(counts_.size()); }
  f64 bin_low(u32 i) const;
  /// Approximate quantile q in [0,1] from the binned data.
  f64 quantile(f64 q) const;
  std::string to_string() const;

 private:
  f64 lo_;
  f64 hi_;
  std::vector<u64> counts_;
  u64 total_ = 0;
  u64 underflow_ = 0;
  u64 overflow_ = 0;
};

}  // namespace flare
