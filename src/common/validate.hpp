// FLARE_VALIDATE invariant plane: compiled-in runtime checks of the
// determinism/conservation contracts static analysis cannot see.
//
// flare-lint (tools/flare_lint.py) catches the SOURCE patterns that break
// replay — unordered iteration, wall clocks, uninitialized wire structs.
// This plane checks the DYNAMIC invariants behind the same contract, at
// the moments they can silently break:
//
//   * calendar monotonicity — the event calendar dispatches in
//     non-decreasing time order (a comparator or heap bug here reorders
//     every downstream tie-break);
//   * attribution conservation — on every metrics collect / monitor
//     sample, each link's busy_by_trace() buckets sum EXACTLY to
//     busy_cum_ps() (the self-excluding migration trigger reads garbage
//     otherwise);
//   * occupancy & pool audits — a switch's occupancy gauge tracks its
//     role table at every install/uninstall, and a persistent engine
//     reset returns every acquired hash/array-store byte (the sparse
//     leak class chaos tests can only sample);
//   * packet lifecycle — every packet offered to a link carries the
//     payload its kind promises (reduce traffic has a core::Packet and a
//     live id; host messages have a HostMsg and a routable destination).
//
// The checks compile in only under -DFLARE_VALIDATE=ON (CMake option):
// hot paths in normal builds pay nothing, and CI runs the full suite in
// a dedicated FLARE_VALIDATE configuration.  A violation aborts with the
// failing check's name; tests install a capturing handler instead and
// prove the plane fires on seeded injected violations (see
// tests/validate_test.cpp and the debug_* injection backdoors).
#pragma once

#include <functional>
#include <string>

#include "common/units.hpp"

#if defined(FLARE_VALIDATE)
#define FLARE_VALIDATE_ENABLED 1
#else
#define FLARE_VALIDATE_ENABLED 0
#endif

namespace flare::validate {

/// True when the invariant plane is compiled in (tests skip otherwise).
constexpr bool enabled() { return FLARE_VALIDATE_ENABLED != 0; }

/// One failed invariant: the check's stable name (e.g.
/// "calendar-monotonic", "attribution-conservation") plus detail text.
struct Violation {
  std::string check;
  std::string detail;
};

using Handler = std::function<void(const Violation&)>;

/// Installs a violation handler and returns the previous one.  The
/// default handler prints the violation and aborts — an invariant breach
/// in a validating build is never survivable by accident.  Tests install
/// a capturing handler to assert the plane fires.
Handler set_handler(Handler h);

/// Violations reported since construction / the last reset (counted even
/// when a capturing handler swallows them).
u64 violations_seen();
void reset_violations();

/// Reports a failed invariant to the installed handler.
void fail(const char* check, std::string detail);

}  // namespace flare::validate
