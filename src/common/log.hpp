// Minimal leveled logger.  Default level is Warn so that tests and benches
// stay quiet; experiment drivers raise it explicitly with --verbose flags.
#pragma once

#include <sstream>
#include <string>

namespace flare {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace flare

#define FLARE_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::flare::log_level())) { \
  } else                                                       \
    ::flare::detail::LogLine(level)

#define FLARE_DEBUG FLARE_LOG(::flare::LogLevel::kDebug)
#define FLARE_INFO FLARE_LOG(::flare::LogLevel::kInfo)
#define FLARE_WARN FLARE_LOG(::flare::LogLevel::kWarn)
#define FLARE_ERROR FLARE_LOG(::flare::LogLevel::kError)
