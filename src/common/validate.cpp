#include "common/validate.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace flare::validate {

namespace {

// The simulators are single-threaded; plain globals suffice.
u64 g_violations = 0;

void default_handler(const Violation& v) {
  std::fprintf(stderr, "FLARE_VALIDATE violation [%s]: %s\n",
               v.check.c_str(), v.detail.c_str());
  std::abort();
}

Handler& handler() {
  static Handler h = default_handler;
  return h;
}

}  // namespace

Handler set_handler(Handler h) {
  Handler prev = std::move(handler());
  handler() = h ? std::move(h) : default_handler;
  return prev;
}

u64 violations_seen() { return g_violations; }

void reset_violations() { g_violations = 0; }

void fail(const char* check, std::string detail) {
  g_violations += 1;
  handler()(Violation{check, std::move(detail)});
}

}  // namespace flare::validate
