// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulators (exponential packet arrivals,
// sparse index draws, gradient magnitudes) flows through this generator so
// that every experiment is reproducible from a single seed.  xoshiro256**
// is used for its quality/speed; seeding goes through splitmix64 as its
// authors recommend.
#pragma once

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace flare {

/// splitmix64 step, used to expand a single u64 seed into a full state.
constexpr u64 splitmix64(u64& state) {
  state += 0x9E3779B97F4A7C15ull;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0xF1A2E0ull) { reseed(seed); }

  void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<u64>::max();
  }

  result_type operator()() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  f64 uniform() {
    return static_cast<f64>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  f64 uniform(f64 lo, f64 hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  u64 uniform_u64(u64 n) {
    FLARE_ASSERT(n > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    u64 x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    u64 l = static_cast<u64>(m);
    if (l < n) {
      u64 t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<u64>(m);
      }
    }
    return static_cast<u64>(m >> 64);
  }

  /// Exponentially distributed value with the given mean (> 0).
  f64 exponential(f64 mean) {
    FLARE_ASSERT(mean > 0.0);
    f64 u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = std::numeric_limits<f64>::min();
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (single value; no caching for
  /// reproducibility simplicity).
  f64 normal(f64 mean = 0.0, f64 stddev = 1.0) {
    f64 u1 = uniform();
    if (u1 <= 0.0) u1 = std::numeric_limits<f64>::min();
    const f64 u2 = uniform();
    const f64 r = std::sqrt(-2.0 * std::log(u1));
    constexpr f64 kTwoPi = 6.283185307179586476925286766559;
    return mean + stddev * r * std::cos(kTwoPi * u2);
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(f64 p) { return uniform() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  u64 state_[4] = {};
};

/// Derives an independent child seed from a parent seed and a stream id.
/// Used to give every host/entity its own decorrelated stream.
u64 derive_seed(u64 parent, u64 stream);

}  // namespace flare
