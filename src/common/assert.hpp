// Always-on assertion macros.
//
// Simulator state-machine bugs manifest as silently-wrong performance
// numbers, so invariants are checked in every build type (the checks are
// cheap relative to event dispatch).  FLARE_ASSERT aborts with a readable
// message; FLARE_CHECK_* add the offending values to the message.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace flare::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "FLARE_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}
}  // namespace flare::detail

#define FLARE_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::flare::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                   \
  } while (0)

#define FLARE_ASSERT_MSG(expr, msg)                                  \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::flare::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                                \
  } while (0)

#define FLARE_UNREACHABLE(msg) \
  ::flare::detail::assert_fail("unreachable", __FILE__, __LINE__, msg)
