// Units and conversions used throughout the Flare reproduction.
//
// The simulators count time in *cycles* of the PsPIN processing unit
// (1 GHz by default, Section 3 of the paper), and the network layer counts
// time in picoseconds.  Keeping both as strong typedefs of u64 with explicit
// conversion helpers avoids the classic cycles-vs-ns confusion.
#pragma once

#include <cstdint>

namespace flare {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/// Simulation time. The discrete-event core is unit-agnostic; each simulator
/// documents its own tick meaning (PsPIN: cycles, network: picoseconds).
using SimTime = u64;

constexpr u64 kKiB = 1024;
constexpr u64 kMiB = 1024 * kKiB;
constexpr u64 kGiB = 1024 * kMiB;

constexpr u64 operator"" _KiB(unsigned long long v) { return v * kKiB; }
constexpr u64 operator"" _MiB(unsigned long long v) { return v * kMiB; }

/// Bits-per-second helpers (link and switch bandwidths are quoted in Gbps
/// and Tbps in the paper).
constexpr f64 kGbps = 1e9;
constexpr f64 kTbps = 1e12;

/// Converts a cycle count at `clock_ghz` into seconds.
constexpr f64 cycles_to_seconds(u64 cycles, f64 clock_ghz) {
  return static_cast<f64>(cycles) / (clock_ghz * 1e9);
}

/// Converts seconds into cycles at `clock_ghz` (rounding down).
constexpr u64 seconds_to_cycles(f64 seconds, f64 clock_ghz) {
  return static_cast<u64>(seconds * clock_ghz * 1e9);
}

/// Converts a byte count moved in `cycles` at `clock_ghz` into bits/s.
constexpr f64 bytes_per_cycles_to_bps(u64 bytes, u64 cycles, f64 clock_ghz) {
  if (cycles == 0) return 0.0;
  return static_cast<f64>(bytes) * 8.0 /
         cycles_to_seconds(cycles, clock_ghz);
}

/// Picosecond helpers for the network simulator.
constexpr u64 kPsPerNs = 1000;
constexpr u64 kPsPerUs = 1000 * kPsPerNs;
constexpr u64 kPsPerMs = 1000 * kPsPerUs;
constexpr f64 kPsPerSecond = 1e12;

/// Time (ps) to serialize `bytes` onto a link of `bandwidth_bps`.
constexpr u64 serialization_ps(u64 bytes, f64 bandwidth_bps) {
  if (bandwidth_bps <= 0.0) return 0;
  return static_cast<u64>(static_cast<f64>(bytes) * 8.0 /
                          bandwidth_bps * kPsPerSecond);
}

/// Achieved bandwidth in bits/s for `bytes` moved over `ps` picoseconds.
constexpr f64 bps_from_bytes_ps(u64 bytes, u64 ps) {
  if (ps == 0) return 0.0;
  return static_cast<f64>(bytes) * 8.0 * kPsPerSecond /
         static_cast<f64>(ps);
}

}  // namespace flare
