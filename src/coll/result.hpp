// Common result record for every collective implementation (Figure 15
// reports completion time and total network traffic per scheme).
#pragma once

#include "common/units.hpp"

namespace flare::coll {

struct CollectiveResult {
  bool ok = false;          ///< completed and functionally correct
  bool in_network = false;  ///< served by the switches (vs a host scheme)
  f64 max_abs_err = 0.0;
  f64 completion_seconds = 0.0;   ///< slowest host
  f64 mean_host_seconds = 0.0;
  u64 total_traffic_bytes = 0;    ///< all link bytes, both directions
  u64 total_packets = 0;
  u64 blocks = 0;                 ///< reduction blocks / chunks processed
  u64 extra_packets = 0;          ///< scheme-specific (e.g. sparse spills)
  /// Peak working memory across the tree switches (in-network schemes).
  u64 switch_working_mem_hwm = 0;

  // --- sparse extras (flare-sparse / SparCML; zero for dense schemes) ---
  /// Hash-collision spill flushes across the tree switches (flare-sparse);
  /// mirrored into extra_packets.
  u64 spill_packets = 0;
  /// (index, value) pairs the hosts transmitted up, retransmissions
  /// included (flare-sparse).
  u64 host_pairs_sent = 0;
  /// Pairs consumed from the root's down-multicast, recovery replays
  /// included (flare-sparse).
  u64 down_pairs = 0;
  /// Messages sent in dense representation after SparCML's sparse-to-dense
  /// switchover.
  u64 dense_switchovers = 0;
  /// Pairs exchanged while still sparse (SparCML).
  u64 pairs_exchanged = 0;

  // --- fault recovery (populated when Tuning::retransmit_timeout_ps > 0) ---
  u64 retransmits = 0;   ///< blocks/chunks re-sent after a host timeout
  u32 recoveries = 0;    ///< reduction-tree reinstalls after a fabric fault
  /// Congestion-triggered tree re-embeddings performed while PREPARING
  /// this iteration (persistent sessions with Tuning::migrate_above > 0).
  u32 migrations = 0;
  /// Optimizer-planned re-embeddings applied while preparing this
  /// iteration (service co-placement rounds) — disjoint from the reactive
  /// `migrations` count above.
  u32 planned_migrations = 0;
  /// An in-network collective that lost its tree and FINISHED on the
  /// host-ring data plane (in_network is false in that case).
  bool fell_back = false;
};

}  // namespace flare::coll
