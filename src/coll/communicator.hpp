// Communicator sessions with persistent collectives — one API for every
// collective the Flare substrate serves.
//
// A Communicator binds a participant group to a net::Network + a
// NetworkManager control plane and executes CollectiveOptions descriptors
// three ways:
//
//   * run(desc)          — blocking one-shot: install (in-network schemes),
//                          drive the event calendar to idle, uninstall,
//                          return the result;
//   * start(desc, cb)    — nonblocking: wires the collective onto the
//                          SHARED event calendar and returns a
//                          CollectiveHandle; the caller drives
//                          net.sim().run() (possibly with other collectives
//                          in flight) and reads result() post-drain;
//   * persistent(desc)   — computes + installs the reduction tree and
//                          switch engines ONCE, then run()/start() executes
//                          iterations against the installed state,
//                          amortizing compute_tree/install across a
//                          training loop (iteration i uses seed + i); the
//                          per-iteration reset clears engine block state
//                          but never touches the admission slot.
//
// The paper's training workloads re-issue the same allreduce every
// iteration (Section 4's network manager installs the tree once per
// communicator); Canary and SparCML (PAPERS.md) motivate the long-lived
// session and per-call algorithm switching this API provides.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "coll/manager.hpp"
#include "coll/op.hpp"
#include "coll/options.hpp"
#include "coll/result.hpp"

namespace flare::coll {

class TreeCache;
class Communicator;

/// Handle to a started (nonblocking) collective.  Cheap to copy; stays
/// valid after the Communicator finishes the operation.
class CollectiveHandle {
 public:
  CollectiveHandle() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ != nullptr && state_->done; }
  /// Valid once done() — typically after draining the event calendar.
  const CollectiveResult& result() const;

 private:
  friend class Communicator;
  friend class PersistentCollective;
  explicit CollectiveHandle(std::shared_ptr<detail::OpState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::OpState> state_;
};

struct CommunicatorConfig {
  /// Shared control plane (e.g. the service layer's); the Communicator
  /// owns a private manager when null.
  NetworkManager* manager = nullptr;
  /// Optional reduction-tree embedding reuse across sessions.
  TreeCache* cache = nullptr;
  /// Candidate tree roots tried in THIS order (a root-selection policy);
  /// empty -> best-fit retry over every switch.
  std::vector<net::NodeId> roots;
  /// Congestion plane (must outlive the session): embedding turns
  /// congestion-aware — the monitor's edge costs become the link-cost
  /// provider of a PRIVATE manager (a shared `manager` keeps whatever
  /// provider its owner set, so one session can never rewire another's
  /// control plane), the monitor is sampled before each install, and
  /// persistent sessions migrate per Tuning::migrate_above.  Null keeps
  /// the congestion-blind behavior.
  net::CongestionMonitor* monitor = nullptr;
};

/// A persistent collective request: install-once / run-many.  Move-only;
/// releases the installed switch state on destruction (or release()).
class PersistentCollective {
 public:
  PersistentCollective();  // empty (ok() == false) until assigned
  PersistentCollective(PersistentCollective&& other) noexcept;
  PersistentCollective& operator=(PersistentCollective&& other) noexcept;
  PersistentCollective(const PersistentCollective&) = delete;
  PersistentCollective& operator=(const PersistentCollective&) = delete;
  ~PersistentCollective();

  /// False when admission rejected the install (and no fallback applies):
  /// run()/start() must not be called.
  bool ok() const { return op_ != nullptr; }
  /// Admission outcome of the one-time install (attempts, cache_hit,
  /// any_feasible; empty tree for host-ring persistents, which need none).
  /// After a fault recovery this reports the ORIGINAL admission; tree()
  /// always reflects the live (possibly reinstalled) embedding.
  const InstallReport& install_report() const { return report_; }
  /// True when this request currently holds an installed reduction tree
  /// (false for host-ring persistents — including the kAuto admission
  /// fallback — and for requests that lost their tree to a fabric fault
  /// and are finishing on the host ring).
  bool in_network() const;
  /// Asserts in_network(): host-ring persistents have no tree.  Returns
  /// the LIVE tree, which may differ from install_report()'s after a
  /// fault-triggered reinstall or a congestion migration.
  const ReductionTree& tree() const;
  u32 iterations() const { return iterations_; }
  /// Congestion-triggered re-embeddings over the session's lifetime (each
  /// iteration's CollectiveResult carries its own share).
  u32 migrations() const;
  /// Optimizer-planned re-embeddings applied over the session's lifetime
  /// (disjoint from the reactive migrations() count).
  u32 planned_migrations() const;
  /// Traffic-attribution tag (core::AllreduceConfig::trace) of this
  /// session — stable across reinstalls and migrations; 0 when empty.
  /// The co-placement snapshot keys per-job link EWMAs off it.
  u32 trace() const { return cfg_.trace; }

  /// Stages a PlacementPlan move: the session re-embeds onto `target` at
  /// its next iteration boundary via the break-before-make fresh-id path.
  /// False (nothing staged) for host-ring persistents and sessions
  /// currently without an install.
  bool plan_migration(const ReductionTree& target);

#if FLARE_VALIDATE_ENABLED
  /// Test backdoor: breaks the next planned-move application so the
  /// FLARE_VALIDATE "plan-apply" audit must fire (validate_test).  False
  /// when the session has no tree op.
  bool debug_break_next_plan_apply();
#endif

  /// Blocking iteration: resets per-iteration engine/host state, executes
  /// against the installed tree, drives the calendar to idle.  When the
  /// fabric faulted since the last iteration (switch crash, dead link) and
  /// Tuning::retransmit_timeout_ps is enabled, the tree is transparently
  /// recomputed and reinstalled first.
  CollectiveResult run();
  /// Nonblocking iteration on the shared calendar.  Iterations of ONE
  /// persistent request must not overlap each other (the installed engine
  /// state is per-request); distinct requests may.
  CollectiveHandle start(CompletionFn on_complete = {});

  /// Uninstalls the tree and detaches; idempotent.
  void release();

 private:
  friend class Communicator;
  Communicator* comm_ = nullptr;
  CollectiveOptions desc_;
  core::AllreduceConfig cfg_{};
  InstallReport report_;
  std::unique_ptr<detail::OpBase> op_;  ///< reused across iterations
  bool host_ring_ = false;
  u32 iterations_ = 0;
};

class Communicator {
 public:
  Communicator(net::Network& net, std::vector<net::Host*> participants,
               CommunicatorConfig cfg = {});
  ~Communicator();
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  /// Blocking one-shot collective.  Requires an otherwise-idle calendar
  /// position (it drives net.sim().run() to completion).  On admission
  /// rejection: kAuto allreduce falls back to the host ring; explicit
  /// in-network algorithms return ok == false.
  CollectiveResult run(const CollectiveOptions& desc);

  /// Nonblocking one-shot: installs (in-network schemes) and enqueues the
  /// first sends, then returns.  The caller drives the calendar; `cb` (if
  /// any) fires at completion, on the calendar.  Every algorithm — dense,
  /// sparse, host-based — composes on the one shared calendar.
  CollectiveHandle start(const CollectiveOptions& desc,
                         CompletionFn on_complete = {});

  /// Install-once / run-many (see PersistentCollective).  Supported for
  /// every engine: the in-network dense kinds, the in-network sparse
  /// allreduce (per-iteration switch hash-store reset, fresh gradients via
  /// SparseWorkload::epoch_pairs), the host ring and SparCML.  kAuto falls
  /// back to a persistent host data plane (ring, or SparCML for sparse
  /// workloads) when admission rejects the install.
  PersistentCollective persistent(const CollectiveOptions& desc);

  net::Network& network() { return net_; }
  NetworkManager& manager() { return *manager_; }
  const std::vector<net::Host*>& participants() const {
    return participants_;
  }

 private:
  friend class PersistentCollective;

  Algorithm resolve_algorithm(const CollectiveOptions& desc) const;
  core::AllreduceConfig make_config(const CollectiveOptions& desc,
                                    Algorithm alg) const;
  InstallReport install(const CollectiveOptions& desc,
                        const core::AllreduceConfig& cfg, bool sparse);
  /// Adopts `op` into ops_, wires a handle/state pair and begins the
  /// first iteration — the one completion contract for every engine.
  CollectiveHandle start_op(std::unique_ptr<detail::OpBase> op, u64 seed,
                            CompletionFn on_complete);
  /// Host-side data plane for `alg` (kHostRing or kSparcml), used both for
  /// explicit requests and for kAuto admission fallbacks.
  std::unique_ptr<detail::OpBase> make_host_op(const CollectiveOptions& desc,
                                               Algorithm alg);
  void reap();

  net::Network& net_;
  std::vector<net::Host*> participants_;
  CommunicatorConfig cfg_;
  std::unique_ptr<NetworkManager> owned_manager_;
  NetworkManager* manager_ = nullptr;
  /// One-shot ops in flight (completed ops are reaped lazily).
  std::vector<std::unique_ptr<detail::OpBase>> ops_;
};

}  // namespace flare::coll
