#include "coll/sparcml.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "core/sparse_store.hpp"
#include "net/node.hpp"
#include "obs/trace.hpp"

namespace flare::coll::detail {

namespace {

/// Union-sum merge of two sorted pair lists.
std::vector<core::SparsePair> merge_pairs(
    const std::vector<core::SparsePair>& a,
    const std::vector<core::StoredPair>& b, core::DType dtype) {
  std::vector<core::SparsePair> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  auto b_value = [&](std::size_t k) {
    core::TypedBuffer tmp(dtype, 1);
    std::memcpy(tmp.data(), b[k].value.data(), core::dtype_size(dtype));
    return tmp.get_as_f64(0);
  };
  while (i < a.size() && j < b.size()) {
    if (a[i].index < b[j].index) {
      out.push_back(a[i++]);
    } else if (a[i].index > b[j].index) {
      out.push_back({b[j].index, b_value(j)});
      ++j;
    } else {
      out.push_back({a[i].index, a[i].value + b_value(j)});
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) out.push_back(a[i]);
  for (; j < b.size(); ++j) out.push_back({b[j].index, b_value(j)});
  return out;
}

}  // namespace

SparcmlOp::SparcmlOp(net::Network& net,
                     const std::vector<net::Host*>& participants,
                     const CollectiveOptions& desc, u32 trace)
    : net_(net), participants_(participants), desc_(desc),
      proto_(0x53500000u + net.alloc_collective_id()),
      trace_(trace != 0 ? trace : net.alloc_trace_id()),
      op_(core::OpKind::kSum) {
  P_ = static_cast<u32>(participants_.size());
  FLARE_ASSERT(P_ >= 1);
  FLARE_ASSERT_MSG(std::has_single_bit(P_),
                   "recursive doubling needs a power-of-two host count");
  FLARE_ASSERT_MSG(desc_.sparse.pairs != nullptr ||
                       desc_.sparse.epoch_pairs != nullptr,
                   "SparCML needs a sparse workload");
  rounds_ = static_cast<u32>(std::countr_zero(P_));
  esize_ = core::dtype_size(desc_.dtype);
  // SparCML reduces ONE global sparse vector: blocks flatten to global
  // indices.
  total_elems_ = static_cast<u64>(desc_.sparse.block_span) *
                 desc_.sparse.num_blocks;
  dense_bytes_ = total_elems_ * esize_;
  timeout_ps_ = desc_.retransmit_timeout_ps;
}

SparcmlOp::~SparcmlOp() {
  if (handlers_set_) {
    for (net::Host* host : participants_) host->clear_proto_handler(proto_);
  }
}

std::vector<core::SparsePair> SparcmlOp::host_pairs(u32 h, u64 seed) const {
  const SparseWorkload& w = desc_.sparse;
  std::vector<core::SparsePair> all;
  for (u32 b = 0; b < w.num_blocks; ++b) {
    std::vector<core::SparsePair> block =
        w.epoch_pairs ? w.epoch_pairs(seed, h, b) : w.pairs(h, b);
    for (core::SparsePair sp : block) {
      sp.index += b * w.block_span;
      all.push_back(sp);
    }
  }
  return all;
}

void SparcmlOp::begin(u64 seed, std::shared_ptr<OpState> state) {
  FLARE_ASSERT_MSG(state_ == nullptr,
                   "previous iteration of this collective still running");
  state_ = std::move(state);
  complete_ = false;
  finished_ = false;
  hosts_done_ = 0;
  dense_switchovers_ = 0;
  pairs_exchanged_ = 0;
  retransmits_ = 0;
  start_ps_ = net_.sim().now();
  base_traffic_ = net_.total_traffic_bytes();
  if (obs::Tracer* tr = net_.tracer()) {
    tr->name_thread(trace_, "coll-" + std::to_string(trace_));
    tr->begin(trace_, "sparcml-iteration", start_ps_, "iteration");
  }

  // Reference: dense sum of all hosts' inputs.
  expected_ = core::TypedBuffer(desc_.dtype, total_elems_);
  expected_.fill_identity(op_);
  runs_.clear();
  runs_.resize(P_);
  for (u32 h = 0; h < P_; ++h) {
    SpHost& hr = runs_[h];
    hr.host = participants_[h];
    hr.sparse = host_pairs(h, seed);
    std::sort(hr.sparse.begin(), hr.sparse.end(),
              [](const core::SparsePair& a, const core::SparsePair& b) {
                return a.index < b.index;
              });
    for (const core::SparsePair& sp : hr.sparse) {
      core::TypedBuffer one(desc_.dtype, 1);
      one.set_from_f64(0, sp.value);
      op_.apply(desc_.dtype, expected_.at_byte(sp.index), one.data(), 1);
    }
    hr.host->set_proto_handler(
        proto_, [this, h](const net::HostMsg& msg) { on_msg(h, msg); });
    hr.last_progress_ps = start_ps_;
  }
  handlers_set_ = true;

  if (P_ == 1) {
    runs_[0].finish_ps = net_.sim().now();
    finished_ = true;
    net_.sim().schedule_after(0, [this] { finalize(); });
    return;
  }
  arm_watchdog();
  for (u32 h = 0; h < P_; ++h) send_round(h, 0);
}

void SparcmlOp::send_round(u32 h, u32 r) {
  SpHost& hr = runs_[h];
  const u64 sparse_bytes =
      hr.sparse.size() * core::sparse_pair_bytes(desc_.dtype);
  const bool send_dense = hr.is_dense || sparse_bytes >= dense_bytes_;
  SentMsg msg;
  if (send_dense) {
    dense_switchovers_ += 1;
    if (!hr.is_dense) {
      // Convert before sending (switchover happens at the sender).
      core::TypedBuffer d(desc_.dtype, total_elems_);
      d.fill_identity(op_);
      for (const core::SparsePair& sp : hr.sparse) {
        d.set_from_f64(sp.index, sp.value);
      }
      hr.dense = std::move(d);
      hr.is_dense = true;
      hr.sparse.clear();
    }
    msg.dense = std::make_shared<const core::TypedBuffer>(hr.dense);
    msg.bytes = dense_bytes_;
  } else {
    auto stored = std::make_shared<std::vector<core::StoredPair>>();
    stored->reserve(hr.sparse.size());
    core::TypedBuffer one(desc_.dtype, 1);
    for (const core::SparsePair& sp : hr.sparse) {
      one.set_from_f64(0, sp.value);
      stored->push_back(
          core::make_stored_pair(sp.index, one.data(), desc_.dtype));
    }
    pairs_exchanged_ += stored->size();
    msg.sparse = std::move(stored);
    msg.bytes = sparse_bytes;
  }
  msg.frags = std::max<u32>(
      1, static_cast<u32>((msg.bytes + desc_.mtu_bytes - 1) /
                          desc_.mtu_bytes));
  transmit(h, r, msg);
  if (timeout_ps_ > 0) hr.sent[r] = std::move(msg);  // NACK replay
}

/// Sends every fragment of round r's message to h's round partner (first
/// send and NACK-triggered replays take the same path).
void SparcmlOp::transmit(u32 h, u32 r, const SentMsg& msg) {
  const u32 dst = h ^ (1u << r);
  for (u32 f = 0; f < msg.frags; ++f) {
    auto hm = std::make_shared<net::HostMsg>();
    hm->src_host = h;
    hm->dst_host = dst;  ///< job-local rank of the receiver
    hm->proto = proto_;
    hm->tag = r;
    hm->seq = f;
    hm->seq_count = msg.frags;
    if (f + 1 == msg.frags) {
      hm->dense = msg.dense;
      hm->sparse = msg.sparse;
    }
    net::NetPacket np;
    np.kind = net::PacketKind::kHostMsg;
    np.dst_node = runs_[dst].host->id();
    // One flow per (op, sender): FIFO along one ECMP path.
    np.flow = (static_cast<u64>(proto_) << 16) | h;
    np.trace = trace_;
    const u64 frag_bytes = std::min<u64>(
        desc_.mtu_bytes, msg.bytes - static_cast<u64>(f) * desc_.mtu_bytes);
    np.wire_bytes = frag_bytes + core::kPacketWireOverhead;
    np.msg = std::move(hm);
    runs_[h].host->send(std::move(np));
  }
}

void SparcmlOp::on_msg(u32 h, const net::HostMsg& msg) {
  if (finished_) return;
  if (msg.seq_count == 0) {  // NACK: the partner is missing round `tag`
    handle_nack(h, msg.tag);
    return;
  }
  SpHost& hr = runs_[h];
  Partial& partial = hr.inbox[msg.tag];
  if (partial.have.empty()) partial.have.assign(msg.seq_count, false);
  if (partial.have.at(msg.seq)) return;  // replayed fragment
  partial.have[msg.seq] = true;
  partial.have_count += 1;
  if (msg.dense) partial.dense = msg.dense;
  if (msg.sparse) partial.sparse = msg.sparse;
  if (partial.have_count == static_cast<u32>(partial.have.size())) {
    advance(h);
  }
}

void SparcmlOp::handle_nack(u32 h, u32 r) {
  SpHost& hr = runs_[h];
  const auto it = hr.sent.find(r);
  // Not sent yet: this host is itself behind; the message goes out when it
  // catches up and the requester's next timeout re-NACKs if needed.
  if (it == hr.sent.end()) return;
  retransmits_ += 1;
  if (obs::Tracer* tr = net_.tracer()) {
    tr->instant(trace_, "retransmit", net_.sim().now(), "recovery");
  }
  transmit(h, r, it->second);
}

void SparcmlOp::send_nack(u32 h) {
  SpHost& hr = runs_[h];
  const u32 partner = h ^ (1u << hr.round);
  auto hm = std::make_shared<net::HostMsg>();
  hm->src_host = h;
  hm->dst_host = partner;
  hm->proto = proto_;
  hm->tag = hr.round;
  hm->seq = 0;
  hm->seq_count = 0;  // seq_count==0 marks a NACK
  net::NetPacket np;
  np.kind = net::PacketKind::kHostMsg;
  np.dst_node = runs_[partner].host->id();
  np.flow = (static_cast<u64>(proto_) << 16) | (0x8000ull | h);
  np.trace = trace_;
  np.wire_bytes = core::kPacketWireOverhead;
  np.msg = std::move(hm);
  hr.host->send(std::move(np));
}

void SparcmlOp::arm_watchdog() {
  if (timeout_ps_ == 0 || watchdog_armed_) return;
  watchdog_armed_ = true;
  std::weak_ptr<char> w = alive_;
  net_.sim().schedule_after(timeout_ps_, [this, w] {
    if (w.expired()) return;
    watchdog_armed_ = false;
    on_watchdog();
  });
}

void SparcmlOp::on_watchdog() {
  if (finished_ || state_ == nullptr) return;  // iteration over: go idle
  const SimTime now = net_.sim().now();
  for (u32 h = 0; h < P_; ++h) {
    SpHost& hr = runs_[h];
    if (hr.round >= rounds_) continue;
    // Exponential backoff per stall (reset on progress): a NACK triggers a
    // full-set replay, so pacing them out keeps a long outage from piling
    // replays onto the healing links.
    const u32 shift = std::min<u32>(hr.nacks, 6);
    if (now - hr.last_progress_ps < (timeout_ps_ << shift)) continue;
    if (hr.nacks >= kMaxNacks) {
      // Permanent stall (a fault that never repairs): surface a FAILED
      // result instead of NACKing the calendar forever.
      give_up();
      return;
    }
    hr.nacks += 1;
    send_nack(h);  // stalled: ask the round partner to replay
  }
  arm_watchdog();
}

void SparcmlOp::advance(u32 h) {
  SpHost& hr = runs_[h];
  while (hr.round < rounds_) {
    auto it = hr.inbox.find(hr.round);
    if (it == hr.inbox.end() || it->second.have.empty() ||
        it->second.have_count != static_cast<u32>(it->second.have.size())) {
      return;  // expected message not fully here yet
    }
    const Partial partial = std::move(it->second);
    hr.inbox.erase(it);
    hr.last_progress_ps = net_.sim().now();
    hr.nacks = 0;
    if (partial.dense) {
      if (!hr.is_dense) {
        core::TypedBuffer d(desc_.dtype, total_elems_);
        d.fill_identity(op_);
        for (const core::SparsePair& sp : hr.sparse) {
          d.set_from_f64(sp.index, sp.value);
        }
        hr.dense = std::move(d);
        hr.is_dense = true;
        hr.sparse.clear();
      }
      hr.dense.accumulate(*partial.dense, op_);
    } else {
      FLARE_ASSERT(partial.sparse != nullptr);
      if (hr.is_dense) {
        for (const core::StoredPair& sp : *partial.sparse) {
          op_.apply(desc_.dtype, hr.dense.at_byte(sp.index),
                    sp.value.data(), 1);
        }
      } else {
        hr.sparse = merge_pairs(hr.sparse, *partial.sparse, desc_.dtype);
      }
    }
    hr.round += 1;
    if (hr.round < rounds_) {
      send_round(h, hr.round);
    } else {
      hr.finish_ps = net_.sim().now();
      hosts_done_ += 1;
      if (hosts_done_ == P_ && !finished_) {
        finished_ = true;
        net_.sim().schedule_after(0, [this] { finalize(); });
      }
    }
  }
}

void SparcmlOp::give_up() {
  if (obs::Tracer* tr = net_.tracer()) {
    tr->instant(trace_, "give-up", net_.sim().now(), "recovery");
    tr->end(trace_, net_.sim().now());
  }
  CollectiveResult res;
  res.ok = false;
  res.in_network = false;
  res.retransmits = retransmits_;
  finished_ = true;
  complete_ = true;
  publish(std::move(res));  // may destroy *this — nothing after
}

void SparcmlOp::finalize() {
  if (obs::Tracer* tr = net_.tracer()) {
    tr->end(trace_, net_.sim().now());
  }
  CollectiveResult res;
  res.blocks = rounds_;
  res.in_network = false;
  f64 worst = 0.0, sum = 0.0;
  for (const SpHost& hr : runs_) {
    worst = std::max(worst, static_cast<f64>(hr.finish_ps - start_ps_));
    sum += static_cast<f64>(hr.finish_ps - start_ps_);
  }
  res.completion_seconds = worst / kPsPerSecond;
  res.mean_host_seconds = sum / P_ / kPsPerSecond;
  res.total_traffic_bytes = net_.total_traffic_bytes() - base_traffic_;
  res.total_packets = net_.total_packets();
  res.dense_switchovers = dense_switchovers_;
  res.pairs_exchanged = pairs_exchanged_;
  res.retransmits = retransmits_;
  f64 err = 0.0;
  core::TypedBuffer got(desc_.dtype, total_elems_);
  for (u32 h = 0; h < std::min<u32>(P_, 2); ++h) {
    SpHost& hr = runs_[h];
    if (hr.is_dense) {
      got = hr.dense;
    } else {
      got.fill_identity(op_);
      for (const core::SparsePair& sp : hr.sparse) {
        got.set_from_f64(sp.index, sp.value);
      }
    }
    err = std::max(err, got.max_abs_diff(expected_));
  }
  res.max_abs_err = err;
  const f64 tol = core::dtype_is_float(desc_.dtype) ? 1e-2 * P_ : 0.0;
  res.ok = err <= tol;
  complete_ = true;
  publish(std::move(res));  // may destroy *this — nothing after
}

}  // namespace flare::coll::detail
