#include "coll/sparcml.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <unordered_map>

namespace flare::coll {

namespace {

constexpr u32 kSparcmlProto = 0x53504D4C;  // "SPML"

/// Host state: the evolving reduced set, sparse (sorted by index, f64
/// staged values) until the dense switchover.
struct SpHost {
  net::Host* host = nullptr;
  std::vector<core::SparsePair> sparse;  // sorted by index
  core::TypedBuffer dense;
  bool is_dense = false;
  u32 round = 0;
  SimTime finish_ps = 0;
  struct Partial {
    u32 frags = 0;
    u32 expected = 0;
    std::shared_ptr<const core::TypedBuffer> dense;
    std::shared_ptr<const std::vector<core::StoredPair>> sparse;
  };
  std::unordered_map<u32, Partial> inbox;
};

/// Union-sum merge of two sorted pair lists.
std::vector<core::SparsePair> merge_pairs(
    const std::vector<core::SparsePair>& a,
    const std::vector<core::StoredPair>& b, core::DType dtype) {
  std::vector<core::SparsePair> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  auto b_value = [&](std::size_t k) {
    core::TypedBuffer tmp(dtype, 1);
    std::memcpy(tmp.data(), b[k].value.data(), core::dtype_size(dtype));
    return tmp.get_as_f64(0);
  };
  while (i < a.size() && j < b.size()) {
    if (a[i].index < b[j].index) {
      out.push_back(a[i++]);
    } else if (a[i].index > b[j].index) {
      out.push_back({b[j].index, b_value(j)});
      ++j;
    } else {
      out.push_back({a[i].index, a[i].value + b_value(j)});
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) out.push_back(a[i]);
  for (; j < b.size(); ++j) out.push_back({b[j].index, b_value(j)});
  return out;
}

}  // namespace

namespace detail {

SparcmlResult sparcml_oneshot(
    net::Network& net, const std::vector<net::Host*>& hosts,
    const std::function<std::vector<core::SparsePair>(u32)>& pairs,
    const SparcmlOptions& opt) {
  SparcmlResult res;
  const u32 P = static_cast<u32>(hosts.size());
  FLARE_ASSERT(P >= 1);
  FLARE_ASSERT_MSG(std::has_single_bit(P),
                   "recursive doubling needs a power-of-two host count");
  const u32 rounds = static_cast<u32>(std::countr_zero(P));
  const u32 esize = core::dtype_size(opt.dtype);
  const u64 dense_bytes = opt.total_elems * esize;
  const core::ReduceOp op(core::OpKind::kSum);
  res.blocks = rounds;

  // Reference: dense sum of all hosts' inputs.
  core::TypedBuffer expected(opt.dtype, opt.total_elems);
  expected.fill_identity(op);
  std::vector<SpHost> runs(P);
  for (u32 h = 0; h < P; ++h) {
    runs[h].host = hosts[h];
    runs[h].sparse = pairs(h);
    std::sort(runs[h].sparse.begin(), runs[h].sparse.end(),
              [](const core::SparsePair& a, const core::SparsePair& b) {
                return a.index < b.index;
              });
    for (const auto& sp : runs[h].sparse) {
      core::TypedBuffer one(opt.dtype, 1);
      one.set_from_f64(0, sp.value);
      op.apply(opt.dtype, expected.at_byte(sp.index), one.data(), 1);
    }
  }
  const u64 base_traffic = net.total_traffic_bytes();

  if (P == 1) {
    res.ok = true;
    return res;
  }

  // Sends host h's current representation to its round-r partner.
  auto send_round = [&](u32 h, u32 r) {
    SpHost& hr = runs[h];
    const u32 dst = h ^ (1u << r);
    const u64 sparse_bytes =
        hr.sparse.size() * core::sparse_pair_bytes(opt.dtype);
    const bool send_dense = hr.is_dense || sparse_bytes >= dense_bytes;
    std::shared_ptr<const core::TypedBuffer> dense_payload;
    std::shared_ptr<const std::vector<core::StoredPair>> sparse_payload;
    u64 bytes;
    if (send_dense) {
      res.dense_switchovers += 1;
      if (!hr.is_dense) {
        // Convert before sending (switchover happens at the sender).
        core::TypedBuffer d(opt.dtype, opt.total_elems);
        d.fill_identity(op);
        for (const auto& sp : hr.sparse) d.set_from_f64(sp.index, sp.value);
        hr.dense = std::move(d);
        hr.is_dense = true;
        hr.sparse.clear();
      }
      dense_payload = std::make_shared<const core::TypedBuffer>(hr.dense);
      bytes = dense_bytes;
    } else {
      auto stored = std::make_shared<std::vector<core::StoredPair>>();
      stored->reserve(hr.sparse.size());
      core::TypedBuffer one(opt.dtype, 1);
      for (const auto& sp : hr.sparse) {
        one.set_from_f64(0, sp.value);
        stored->push_back(
            core::make_stored_pair(sp.index, one.data(), opt.dtype));
      }
      res.pairs_exchanged += stored->size();
      sparse_payload = std::move(stored);
      bytes = sparse_bytes;
    }
    const u32 frags = std::max<u32>(
        1, static_cast<u32>((bytes + opt.mtu_bytes - 1) / opt.mtu_bytes));
    for (u32 f = 0; f < frags; ++f) {
      auto msg = std::make_shared<net::HostMsg>();
      msg->src_host = h;
      msg->dst_host = dst;
      msg->proto = kSparcmlProto;
      msg->tag = r;
      msg->seq = f;
      msg->seq_count = frags;
      if (f + 1 == frags) {
        msg->dense = dense_payload;
        msg->sparse = sparse_payload;
      }
      net::NetPacket np;
      np.kind = net::PacketKind::kHostMsg;
      np.dst_node = hosts[dst]->id();
      np.flow = static_cast<u64>(h) << 32 | dst;
      const u64 frag_bytes =
          std::min<u64>(opt.mtu_bytes, bytes - f * opt.mtu_bytes);
      np.wire_bytes = frag_bytes + core::kPacketWireOverhead;
      np.msg = std::move(msg);
      hr.host->send(std::move(np));
    }
  };

  std::function<void(u32)> advance = [&](u32 h) {
    SpHost& hr = runs[h];
    while (hr.round < rounds) {
      auto it = hr.inbox.find(hr.round);
      if (it == hr.inbox.end() || it->second.frags < it->second.expected ||
          it->second.expected == 0) {
        return;
      }
      const SpHost::Partial partial = std::move(it->second);
      hr.inbox.erase(it);
      if (partial.dense) {
        if (!hr.is_dense) {
          core::TypedBuffer d(opt.dtype, opt.total_elems);
          d.fill_identity(op);
          for (const auto& sp : hr.sparse) d.set_from_f64(sp.index, sp.value);
          hr.dense = std::move(d);
          hr.is_dense = true;
          hr.sparse.clear();
        }
        hr.dense.accumulate(*partial.dense, op);
      } else {
        FLARE_ASSERT(partial.sparse != nullptr);
        if (hr.is_dense) {
          for (const auto& sp : *partial.sparse) {
            op.apply(opt.dtype, hr.dense.at_byte(sp.index), sp.value.data(),
                     1);
          }
        } else {
          hr.sparse = merge_pairs(hr.sparse, *partial.sparse, opt.dtype);
        }
      }
      hr.round += 1;
      if (hr.round < rounds) {
        send_round(h, hr.round);
      } else {
        hr.finish_ps = net.sim().now();
      }
    }
  };

  for (u32 h = 0; h < P; ++h) {
    runs[h].host->set_proto_handler(kSparcmlProto, [&, h](
                                        const net::HostMsg& msg) {
      SpHost& hr = runs[h];
      SpHost::Partial& partial = hr.inbox[msg.tag];
      partial.frags += 1;
      partial.expected = msg.seq_count;
      if (msg.dense) partial.dense = msg.dense;
      if (msg.sparse) partial.sparse = msg.sparse;
      advance(h);
    });
  }

  for (u32 h = 0; h < P; ++h) send_round(h, 0);
  net.sim().run();
  // The handlers capture this frame by reference: never leave them behind.
  for (u32 h = 0; h < P; ++h)
    runs[h].host->clear_proto_handler(kSparcmlProto);

  f64 worst = 0.0, sum = 0.0;
  bool all_done = true;
  for (SpHost& hr : runs) {
    all_done = all_done && (hr.round == rounds);
    worst = std::max(worst, static_cast<f64>(hr.finish_ps));
    sum += static_cast<f64>(hr.finish_ps);
  }
  res.completion_seconds = worst / kPsPerSecond;
  res.mean_host_seconds = sum / P / kPsPerSecond;
  res.total_traffic_bytes = net.total_traffic_bytes() - base_traffic;
  res.total_packets = net.total_packets();
  if (all_done) {
    f64 err = 0.0;
    core::TypedBuffer got(opt.dtype, opt.total_elems);
    for (u32 h = 0; h < std::min<u32>(P, 2); ++h) {
      SpHost& hr = runs[h];
      if (hr.is_dense) {
        got = hr.dense;
      } else {
        got.fill_identity(op);
        for (const auto& sp : hr.sparse) got.set_from_f64(sp.index, sp.value);
      }
      err = std::max(err, got.max_abs_diff(expected));
    }
    res.max_abs_err = err;
    const f64 tol = core::dtype_is_float(opt.dtype) ? 1e-2 * P : 0.0;
    res.ok = err <= tol;
  }
  return res;
}

}  // namespace detail

}  // namespace flare::coll
