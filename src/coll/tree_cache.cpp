#include "coll/tree_cache.hpp"

#include <algorithm>

namespace flare::coll {

std::string TreeCache::make_key(const std::vector<net::Host*>& participants,
                                net::NodeId root) {
  std::vector<net::NodeId> ids;
  ids.reserve(participants.size());
  for (const net::Host* h : participants) ids.push_back(h->id());
  std::sort(ids.begin(), ids.end());
  std::string key = std::to_string(root) + '|';
  for (net::NodeId id : ids) {
    key += std::to_string(id);
    key += ',';
  }
  return key;
}

const ReductionTree* TreeCache::lookup(
    const std::vector<net::Host*>& participants, net::NodeId root) {
  const auto it = map_.find(make_key(participants, root));
  if (it == map_.end()) {
    misses_ += 1;
    return nullptr;
  }
  hits_ += 1;
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
  return &it->second->second;
}

void TreeCache::insert(const std::vector<net::Host*>& participants,
                       net::NodeId root, ReductionTree tree) {
  if (capacity_ == 0) return;
  std::string key = make_key(participants, root);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(tree);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(std::move(key), std::move(tree));
  map_.emplace(lru_.front().first, lru_.begin());
}

std::optional<ReductionTree> TreeCache::get_or_compute(
    NetworkManager& manager, const std::vector<net::Host*>& participants,
    net::NodeId root, bool* cache_hit) {
  if (const ReductionTree* cached = lookup(participants, root)) {
    // A fabric fault may have invalidated the embedding since it was
    // cached (failed switch, downed edge): serving it would install a tree
    // that blackholes traffic.  The validator (when set) additionally
    // rejects embeddings whose links drifted past the owner's congestion
    // staleness bound.  Either way: treat the entry as a miss.
    const bool alive = tree_alive(manager.network(), *cached);
    if (alive && (!validator_ || validator_(*cached))) {
      if (cache_hit != nullptr) *cache_hit = true;
      return *cached;
    }
    if (alive) stale_evictions_ += 1;
    hits_ -= 1;  // re-classify: this lookup did not serve from the cache
    misses_ += 1;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  auto tree = manager.compute_tree(participants, root);
  if (tree) insert(participants, root, *tree);
  return tree;
}

void TreeCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace flare::coll
