#include "coll/flare_dense.hpp"

#include <memory>

namespace flare::coll {

CollectiveOptions dense_descriptor(const FlareDenseOptions& opt) {
  CollectiveOptions desc;
  static_cast<Tuning&>(desc) = opt;  // the shared tuning block
  desc.kind = CollectiveKind::kAllreduce;
  desc.algorithm = Algorithm::kFlareDense;
  desc.data_bytes = opt.data_bytes;
  desc.op = opt.op;
  desc.order = opt.order;
  desc.reproducible = opt.reproducible;
  desc.policy = opt.policy;
  desc.auto_policy = opt.auto_policy;
  return desc;
}

CollectiveResult run_flare_dense(net::Network& net,
                                 const std::vector<net::Host*>& participants,
                                 const FlareDenseOptions& opt) {
  Communicator comm(net, participants);
  return comm.run(dense_descriptor(opt));
}

std::vector<CollectiveResult> run_flare_dense_concurrent(
    net::Network& net, std::vector<DenseTenant> tenants) {
  // One session per tenant; all handles share the network's calendar.
  std::vector<std::unique_ptr<Communicator>> comms;
  std::vector<CollectiveHandle> handles;
  for (DenseTenant& t : tenants) {
    comms.push_back(
        std::make_unique<Communicator>(net, std::move(t.participants)));
    handles.push_back(comms.back()->start(dense_descriptor(t.opt)));
  }
  net.sim().run();
  std::vector<CollectiveResult> results;
  for (const CollectiveHandle& h : handles) {
    results.push_back(h.done() ? h.result() : CollectiveResult{});
  }
  return results;
}

}  // namespace flare::coll
