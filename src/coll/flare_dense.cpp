#include "coll/flare_dense.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>

#include "workload/generators.hpp"

namespace flare::coll {

namespace {

/// One tenant's full protocol state: installed tree, per-host send loops,
/// result collection.  `prepare()` wires everything up; the caller runs the
/// shared event calendar (possibly with other tenants in flight) and then
/// calls `finalize()`.
class DenseRun {
 public:
  DenseRun(net::Network& net, std::vector<net::Host*> participants,
           FlareDenseOptions opt)
      : net_(net), participants_(std::move(participants)), opt_(opt) {}

  bool prepare(NetworkManager& manager) {
    const u32 P = static_cast<u32>(participants_.size());
    FLARE_ASSERT(P >= 1);
    const u32 esize = core::dtype_size(opt_.dtype);
    elems_total_ = std::max<u64>(1, opt_.data_bytes / esize);
    elems_per_pkt_ = static_cast<u32>(opt_.packet_payload / esize);
    nb_ = static_cast<u32>((elems_total_ + elems_per_pkt_ - 1) /
                           elems_per_pkt_);
    op_ = core::ReduceOp(opt_.op);

    cfg_.id = manager.next_id();
    cfg_.dtype = opt_.dtype;
    cfg_.op = op_;
    cfg_.elems_per_packet = elems_per_pkt_;
    cfg_.reproducible = opt_.reproducible;
    if (opt_.auto_policy) {
      const core::PolicyChoice choice =
          core::select_policy(opt_.data_bytes, opt_.reproducible);
      cfg_.policy = choice.policy;
      cfg_.num_buffers = choice.num_buffers;
    } else {
      cfg_.policy =
          opt_.reproducible ? core::AggPolicy::kTree : opt_.policy;
      cfg_.num_buffers = 1;
    }
    auto tree = manager.install_with_retry(participants_, cfg_,
                                           opt_.switch_service_bps);
    if (!tree) return false;
    tree_ = std::move(*tree);
    installed_ = true;

    host_data_ = workload::make_dense_data(P, elems_total_, opt_.dtype,
                                           opt_.seed);
    expected_ = core::reference_reduce(host_data_, op_);

    // Staggered sending keeps every block of the operation in flight
    // (Section 5); windowed flow control applies to aligned sending.
    window_ = opt_.order == core::SendOrder::kStaggered
                  ? std::max(opt_.window_blocks, nb_)
                  : opt_.window_blocks;

    runs_.resize(P);
    for (u32 h = 0; h < P; ++h) {
      HostRun& hr = runs_[h];
      hr.host = participants_[h];
      hr.result = core::TypedBuffer(opt_.dtype, elems_total_);
      hr.schedule = core::send_schedule(h, P, nb_, opt_.order);
      hr.block_done.assign(nb_, false);
      hr.host->set_reduce_handler(
          cfg_.id, [this, h](const core::Packet& pkt) { on_down(h, pkt); });
    }
    base_traffic_ = net_.total_traffic_bytes();
    for (u32 h = 0; h < P; ++h) try_send(h);
    return true;
  }

  CollectiveResult finalize(NetworkManager& manager) {
    CollectiveResult res;
    res.blocks = nb_;
    if (!installed_) return res;
    const u32 P = static_cast<u32>(participants_.size());
    f64 worst = 0.0, sum = 0.0;
    bool all_done = true;
    for (HostRun& hr : runs_) {
      all_done = all_done && (hr.blocks_done == nb_);
      worst = std::max(worst, static_cast<f64>(hr.finish_ps));
      sum += static_cast<f64>(hr.finish_ps);
    }
    res.completion_seconds = worst / kPsPerSecond;
    res.mean_host_seconds = sum / P / kPsPerSecond;
    res.total_traffic_bytes = net_.total_traffic_bytes() - base_traffic_;
    res.total_packets = net_.total_packets();
    if (all_done) {
      // All hosts receive the same multicast bits; check first and last.
      res.max_abs_err =
          std::max(runs_.front().result.max_abs_diff(expected_),
                   runs_.back().result.max_abs_diff(expected_));
      res.ok = res.max_abs_err <= core::reduce_tolerance(opt_.dtype, P);
    }
    for (const TreeSwitchEntry& e : tree_.switches) {
      const net::ReduceRole* role = e.sw->role(cfg_.id);
      if (role != nullptr && role->engine != nullptr) {
        res.switch_working_mem_hwm = std::max(
            res.switch_working_mem_hwm, role->engine->pool().high_water());
      }
    }
    for (net::Host* host : participants_) {
      host->clear_reduce_handler(cfg_.id);
    }
    manager.uninstall(tree_, cfg_.id);
    return res;
  }

 private:
  struct HostRun {
    net::Host* host = nullptr;
    core::TypedBuffer result;
    std::vector<u32> schedule;
    std::size_t next = 0;
    u32 outstanding = 0;
    u64 blocks_done = 0;
    SimTime finish_ps = 0;
    std::vector<bool> block_done;
  };

  u32 block_elems(u32 b) const {
    const u64 first = static_cast<u64>(b) * elems_per_pkt_;
    return static_cast<u32>(
        std::min<u64>(elems_per_pkt_, elems_total_ - first));
  }

  void try_send(u32 h) {
    HostRun& hr = runs_[h];
    while (hr.outstanding < window_ && hr.next < hr.schedule.size()) {
      const u32 b = hr.schedule[hr.next++];
      const u64 first = static_cast<u64>(b) * elems_per_pkt_;
      core::Packet p = core::make_dense_packet(
          cfg_.id, b, tree_.host_child_index[hr.host->host_index()],
          host_data_[h].at_byte(first), block_elems(b), opt_.dtype);
      net::NetPacket np;
      np.kind = net::PacketKind::kReduceUp;
      np.allreduce_id = cfg_.id;
      np.wire_bytes = p.wire_bytes();
      np.reduce = std::make_shared<const core::Packet>(std::move(p));
      hr.outstanding += 1;
      hr.host->send(std::move(np));
    }
  }

  void on_down(u32 h, const core::Packet& pkt) {
    HostRun& me = runs_[h];
    const u32 b = pkt.hdr.block_id;
    FLARE_ASSERT(b < nb_);
    if (me.block_done[b]) return;  // duplicated multicast replica
    me.block_done[b] = true;
    const u64 first = static_cast<u64>(b) * elems_per_pkt_;
    FLARE_ASSERT(pkt.hdr.elem_count == block_elems(b));
    std::memcpy(me.result.at_byte(first), pkt.payload.data(),
                pkt.payload.size());
    me.blocks_done += 1;
    me.outstanding -= 1;
    if (me.blocks_done == nb_) me.finish_ps = net_.sim().now();
    try_send(h);
  }

  net::Network& net_;
  std::vector<net::Host*> participants_;
  FlareDenseOptions opt_;
  core::AllreduceConfig cfg_;
  core::ReduceOp op_{core::OpKind::kSum};
  ReductionTree tree_;
  bool installed_ = false;
  u64 elems_total_ = 0;
  u32 elems_per_pkt_ = 0;
  u32 nb_ = 0;
  u32 window_ = 0;
  u64 base_traffic_ = 0;
  std::vector<core::TypedBuffer> host_data_;
  core::TypedBuffer expected_;
  std::vector<HostRun> runs_;
};

}  // namespace

CollectiveResult run_flare_dense(net::Network& net,
                                 const std::vector<net::Host*>& participants,
                                 const FlareDenseOptions& opt) {
  NetworkManager manager(net);
  DenseRun run(net, participants, opt);
  if (!run.prepare(manager)) {
    CollectiveResult rejected;
    return rejected;  // admission rejected -> ok == false (host fallback)
  }
  net.sim().run();
  return run.finalize(manager);
}

std::vector<CollectiveResult> run_flare_dense_concurrent(
    net::Network& net, std::vector<DenseTenant> tenants) {
  NetworkManager manager(net);
  std::vector<std::unique_ptr<DenseRun>> runs;
  std::vector<bool> prepared;
  for (DenseTenant& t : tenants) {
    runs.push_back(
        std::make_unique<DenseRun>(net, t.participants, t.opt));
    prepared.push_back(runs.back()->prepare(manager));
  }
  net.sim().run();
  std::vector<CollectiveResult> results;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    results.push_back(prepared[i] ? runs[i]->finalize(manager)
                                  : CollectiveResult{});
  }
  return results;
}

}  // namespace flare::coll
