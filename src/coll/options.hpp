// Unified collective descriptor (the Communicator session API).
//
// Flare's headline claim is flexibility: one programmable substrate serving
// dense and sparse allreduce, reduce, broadcast and barrier (Sections 4, 7
// and 8).  The descriptor makes that one API surface: a CollectiveKind
// (what to compute), an Algorithm (which engine computes it), and ONE
// options struct whose shared tuning block replaces the near-duplicate
// fields the per-scheme option structs used to re-declare.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "core/dtype.hpp"
#include "core/packet.hpp"
#include "core/policy.hpp"
#include "core/reduce_op.hpp"
#include "core/staggered.hpp"

namespace flare::coll {

/// What to compute (Section 8: reduce, broadcast and barrier fall out of
/// the allreduce machinery).
enum class CollectiveKind : u8 {
  kAllreduce = 0,
  kReduce,     ///< only the destination host consumes the result
  kBroadcast,  ///< the root host's vector reaches every participant
  kBarrier,    ///< 0-byte blocks; release when the empty result arrives
};

std::string_view collective_kind_name(CollectiveKind k);

/// Which engine executes it.  kAuto picks in-network Flare (dense or
/// sparse, depending on whether a sparse workload is attached) and falls
/// back to the host-based ring when admission rejects an allreduce — the
/// paper's admission policy.
enum class Algorithm : u8 {
  kAuto = 0,
  kFlareDense,  ///< in-network reduction tree (Sections 4-6)
  kFlareSparse, ///< in-network sparse allreduce (Section 7)
  kHostRing,    ///< host-based ring / Rabenseifner baseline
  kSparcml,     ///< host-based sparse recursive doubling (SparCML)
};

std::string_view algorithm_name(Algorithm a);

/// Tuning fields shared by every scheme — formerly re-declared by
/// FlareDenseOptions, BroadcastOptions, BarrierOptions and the service's
/// JobSpec.  The legacy option structs now inherit this block.
struct Tuning {
  u64 packet_payload = 1024;  ///< in-network block size (bytes)
  /// Aggregation service rate per switch; calibrated against the PsPIN
  /// simulator (Figure 11 operating point for the configured dtype).
  /// 0 -> the calibrated default for the selected algorithm: 2.4e12 for
  /// dense aggregation, 1.6e12 for sparse (Figure 13: sparse is slower).
  f64 switch_service_bps = 0.0;
  core::DType dtype = core::DType::kFloat32;
  u64 seed = 1;  ///< workload seed (iteration i of a persistent request
                 ///< uses seed + i)
  /// Blocks a host may have in flight (aggregation buffers per collective).
  u32 window_blocks = 64;

  // --- fault tolerance (see README "Failure model") ---
  /// Host-side loss detection: a block still outstanding after this long is
  /// retransmitted with kFlagRetransmit; the host ring uses the same period
  /// to NACK missing chunks.  0 disables fault handling entirely — no
  /// watchdog events touch the calendar, preserving legacy behavior
  /// bit for bit.
  SimTime retransmit_timeout_ps = 0;
  /// Consecutive retransmissions of one block before the collective
  /// declares its reduction tree dead and triggers recovery: reinstall on
  /// the surviving fabric, or host-ring fallback when no viable tree
  /// remains.
  u32 max_retransmits = 4;

  // --- congestion adaptation (README "Congestion plane") ---
  /// Persistent sessions re-examine their embedding at every iteration
  /// boundary once the worst tree-edge FOREIGN EWMA utilization — the
  /// monitor's edge_congestion_excluding view, which subtracts the
  /// session's own attributed traffic — exceeds this bound; 0, the
  /// default, disables migration entirely.  Because self-traffic is
  /// excluded at the telemetry layer, no completion-time regression gate
  /// is needed: a session running alone reads ~0 and never flees itself.
  f64 migrate_above = 0.0;
  /// Hysteresis: actually migrate only onto a tree whose WORST-edge
  /// congestion is at most this fraction of the current embedding's —
  /// strictly below 1 so a session never hops between equivalent trees,
  /// and never moves at all when the hot edge (e.g. a participant's access
  /// link) is one every candidate must cross.
  f64 migrate_improvement = 0.85;
};

/// Calibrated per-switch aggregation rates (Figures 11 and 13).
constexpr f64 kDenseSwitchServiceBps = 2.4e12;
constexpr f64 kSparseSwitchServiceBps = 1.6e12;

/// Resolves the `switch_service_bps == 0` auto sentinel.
inline f64 resolved_switch_service_bps(const Tuning& t, bool sparse) {
  if (t.switch_service_bps > 0.0) return t.switch_service_bps;
  return sparse ? kSparseSwitchServiceBps : kDenseSwitchServiceBps;
}

/// Pluggable sparse data source: pairs of (host, block) with block-relative
/// indices in [0, block_span).  Drives both the in-network sparse allreduce
/// (per block) and SparCML (blocks flattened to global indices).
struct SparseWorkload {
  u32 block_span = 1280;
  u32 num_blocks = 16;
  std::function<std::vector<core::SparsePair>(u32 host, u32 block)> pairs;
  /// Optional per-iteration source for persistent sparse sessions: when
  /// set, iteration i of a persistent request draws its gradients from
  /// epoch_pairs(seed + i, host, block) — fresh data every iteration,
  /// exactly as make_dense_data does for the dense kinds.  When null,
  /// every iteration replays `pairs` (a fixed gradient).
  std::function<std::vector<core::SparsePair>(u64 epoch, u32 host,
                                              u32 block)>
      epoch_pairs;
};

/// One descriptor for every collective the substrate serves.
struct CollectiveOptions : Tuning {
  CollectiveKind kind = CollectiveKind::kAllreduce;
  Algorithm algorithm = Algorithm::kAuto;

  u64 data_bytes = 1 * kMiB;  ///< Z per host (dense kinds)
  core::OpKind op = core::OpKind::kSum;
  /// Reduce destination / broadcast source (index into the participants).
  u32 root = 0;

  // --- flare-dense extras ---
  /// Default aligned: in the network simulator the switch is a calibrated
  /// aggregation server (no shared-buffer contention to spread out), and
  /// staggering would delay every block's completion to the end of the
  /// message.  Staggered sending matters inside the PsPIN unit (src/pspin).
  core::SendOrder order = core::SendOrder::kAligned;
  bool reproducible = false;
  /// 0 -> auto-select by size (Section 6.4 thresholds).
  core::AggPolicy policy = core::AggPolicy::kSingleBuffer;
  bool auto_policy = true;

  // --- host-based extras ---
  u64 mtu_bytes = 4096;  ///< fragmentation unit for ring / SparCML messages

  // --- sparse extras (Section 7); `sparse.pairs != nullptr` selects the
  //     sparse engines under kAuto ---
  SparseWorkload sparse;
  u32 hash_capacity_pairs = 512;
  u32 spill_capacity_pairs = 64;
};

}  // namespace flare::coll
