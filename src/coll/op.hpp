// The collective-op lifecycle shared by every engine the Communicator
// drives (coll/communicator.hpp is the public entry point).
//
// detail::OpBase is one in-flight collective on the event calendar: begin()
// kicks off an iteration, publish() hands the result to the caller's
// CollectiveHandle.  detail::TreeOpBase is the chassis of the TREE-BACKED
// in-network ops (dense InNetOp, sparse SparseOp): it owns the installed
// reduction tree's lifetime and centralizes the three control-plane
// reactions PRs 3-4 built so dense and sparse share them verbatim:
//
//   * fault recovery — fresh-id uninstall/reinstall on the surviving
//     fabric, bounded heal-waits, and a pluggable host-side fallback data
//     plane (the ring for dense allreduce, SparCML for sparse);
//   * persistent upkeep — per-iteration engine reset, transparent
//     reinstall after a crash, fallback probing once the fabric heals;
//   * congestion migration — break-before-make re-embedding of the
//     Canary-style dynamic trees, triggered on the worst tree edge's
//     FOREIGN EWMA utilization (per-collective link attribution subtracts
//     the session's own traffic; no completion-time gate needed).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include <optional>

#include "coll/manager.hpp"
#include "coll/options.hpp"
#include "coll/result.hpp"
#include "common/validate.hpp"

namespace flare::obs {
class Tracer;
}  // namespace flare::obs

namespace flare::coll {

using CompletionFn = std::function<void(const CollectiveResult&)>;

namespace detail {

/// Shared completion record behind a CollectiveHandle.
struct OpState {
  bool done = false;
  CollectiveResult result;
  CompletionFn on_complete;
};

class OpBase {
 public:
  virtual ~OpBase() = default;
  OpBase(const OpBase&) = delete;
  OpBase& operator=(const OpBase&) = delete;

  /// Kicks off one iteration: (re)wires host handlers, stages data and
  /// enqueues the first sends on the calendar.  `state` receives the
  /// result; its on_complete (if any) fires at completion.
  virtual void begin(u64 seed, std::shared_ptr<OpState> state) = 0;

  /// The LIVE reduction tree of an in-network op holding an install;
  /// nullptr for host-based ops and after a fault stripped the tree.
  virtual const ReductionTree* current_tree() const { return nullptr; }

  /// Congestion migrations performed over the op's lifetime (0 for
  /// host-based ops).
  virtual u32 migrations() const { return 0; }

  /// Stages an optimizer-planned re-embedding (a PlacementPlan move) to
  /// apply at the next iteration boundary through the break-before-make
  /// fresh-id path.  Returns false — and stages nothing — for host-based
  /// ops and for tree ops currently without an install (fallback/outage):
  /// the service re-plans such jobs on a later round instead.
  virtual bool plan_migration(const ReductionTree& target) {
    (void)target;
    return false;
  }

  /// Optimizer-planned migrations applied over the op's lifetime —
  /// disjoint from migrations(), which counts only the op's own reactive
  /// moves (the bench asserts the co-placement win comes from planning,
  /// not more reactive churn).
  virtual u32 planned_migrations() const { return 0; }

#if FLARE_VALIDATE_ENABLED
  /// Seeded-violation backdoor for the "plan-apply" audit; false when the
  /// op has no planned-move machinery (host-based ops).
  virtual bool debug_break_next_plan_apply() { return false; }
#endif

  /// Releases installed switch state and host handlers; idempotent, no-op
  /// for host-based ops.  Called by PersistentCollective::release().
  virtual void release_install() {}

  /// True once finalize ran and (for one-shot ops) resources are released.
  bool reapable() const { return complete_; }

 protected:
  OpBase() = default;

  /// Publishes the result and invokes the completion callback.  MUST be
  /// the last thing a finalize path does: the callback may destroy the op
  /// (service jobs self-erase), so no member access is allowed after it.
  void publish(CollectiveResult&& res) {
    auto st = std::move(state_);
    st->result = std::move(res);
    st->done = true;
    auto cb = std::move(st->on_complete);
    if (cb) cb(st->result);  // 'this' may be destroyed here
  }

  std::shared_ptr<OpState> state_;
  bool complete_ = false;
};

/// Per-host, per-block retry bookkeeping shared by the tree-backed data
/// planes: which sent blocks still await a result, when each was last
/// (re)transmitted, and how many times.
struct BlockRetryState {
  std::vector<bool> sent;        ///< result still pending for a sent block
  std::vector<SimTime> sent_ps;  ///< last (re)transmission time per block
  std::vector<u32> retries;      ///< retransmissions per block this epoch
  void reset(u32 blocks) {
    sent.assign(blocks, false);
    sent_ps.assign(blocks, 0);
    retries.assign(blocks, 0);
  }
};

/// Chassis of the tree-backed in-network ops (see the file comment).  The
/// concrete op supplies the data plane through four hooks; everything
/// about the install's lifetime — recovery, persistence, migration — runs
/// here, identically for the dense and sparse engines.
class TreeOpBase : public OpBase {
 public:
  TreeOpBase(net::Network& net, NetworkManager& manager,
             const std::vector<net::Host*>& participants,
             const CollectiveOptions& desc, core::AllreduceConfig cfg,
             ReductionTree tree, bool owns_install, bool sparse,
             net::CongestionMonitor* monitor);
  ~TreeOpBase() override;

  const ReductionTree* current_tree() const override {
    return installed_ ? &tree_ : nullptr;
  }
  u32 migrations() const override { return migrations_total_; }
  bool plan_migration(const ReductionTree& target) override;
  u32 planned_migrations() const override { return planned_total_; }
  void release_install() override;

#if FLARE_VALIDATE_ENABLED
  /// After the next planned migration installs, silently strips the first
  /// tree switch's role so the audit MUST fire (validate_test proves it).
  bool debug_break_next_plan_apply() override {
    debug_break_plan_apply_ = true;
    return true;
  }
#endif

 protected:
  // ---- hooks the concrete op supplies -----------------------------------

  /// Host-side fallback data plane once no viable tree remains (the ring
  /// for dense allreduce, SparCML for sparse allreduce); nullptr when the
  /// kind has none (reduce/broadcast/barrier wait for the fabric to heal).
  virtual std::unique_ptr<OpBase> make_fallback_op() = 0;

  /// Replays the CURRENT iteration against a freshly installed tree
  /// (engines are new: every host re-contributes every block).
  virtual void restart_iteration() = 0;

  /// One watchdog pass over the outstanding blocks: retransmit what timed
  /// out (with the caller-side exponential backoff) and return true when
  /// some block exhausted max_retransmits — the base then escalates into
  /// recover().
  virtual bool scan_timeouts() = 0;

  // ---- shared machinery --------------------------------------------------

  /// Everything begin() does before the data plane stages an iteration:
  /// asserts no iteration is running, resets per-iteration counters,
  /// performs persistent upkeep (engine reset / transparent reinstall /
  /// migration check) and routes the iteration to the fallback data plane
  /// when the fabric was lost for good.  Returns false in that last case —
  /// the caller must not run the in-network path.  On true, state_ has
  /// been adopted and the op is live.
  bool begin_prologue(u64 seed, std::shared_ptr<OpState> state);

  /// An iteration is executing (guards watchdog and fault-notice events).
  bool iteration_active() const { return !finished_ && state_ != nullptr; }
  bool fallback_active() const { return fallback_op_ != nullptr; }

  /// Fresh-id reinstall on the surviving fabric; false when admission
  /// rejects every candidate root.  Bumps recoveries_ on success.
  bool try_reinstall();

  /// Tree declared dead (`force` skips the liveness probe — progress
  /// stopped although the tree LOOKS healthy, e.g. a restarted switch).
  /// Reinstall, or hand the iteration to the fallback data plane, or
  /// schedule a bounded heal-wait; gives up past the wait budget.
  void recover(bool force);

  /// Permanent outage: publish ok == false so callers observe the failure
  /// instead of spinning the calendar forever.
  void give_up();

  void subscribe_faults();
  void arm_watchdog();

  /// The shared body of scan_timeouts(): walks every (host, block) whose
  /// result is pending, applies the exponential backoff, re-sends timed-out
  /// blocks via `resend(h, b)` with retransmits_/retry bookkeeping, and
  /// returns true when some block exhausted max_retransmits (the caller's
  /// signal to escalate into recover()).  One backoff policy for every
  /// tree-backed data plane — tweak it here, not per engine.
  bool scan_block_timeouts(
      u32 hosts, u32 blocks,
      const std::function<BlockRetryState&(u32 host)>& retry_of,
      const std::function<bool(u32 host, u32 block)>& block_done,
      const std::function<void(u32 host, u32 block)>& resend);

  /// Completion-time bookkeeping; call from the concrete finalize with the
  /// iteration's worst host completion.  Also closes the iteration span on
  /// the tracer (the migration trigger itself no longer consumes this —
  /// per-collective attribution replaced the regression gate).
  void record_iteration_time(SimTime worst_ps);

  /// The network's tracer when this collective is traceable (nonzero trace
  /// id — the tracer's row key); nullptr otherwise.  Call-sites guard on
  /// it, so an untraced run pays one branch.
  obs::Tracer* tracer() const;
  /// Opens/closes the per-iteration span on the collective's row.
  void trace_iteration_begin();
  void trace_iteration_end();

  net::Network& net_;
  NetworkManager& manager_;
  const std::vector<net::Host*>& participants_;
  CollectiveOptions desc_;
  core::AllreduceConfig cfg_;
  ReductionTree tree_;
  bool owns_install_;
  /// This op owns the install's lifetime in both modes (one-shot releases
  /// at finalize; persistent on PersistentCollective::release()); false
  /// only after release or while a fault left the op treeless.
  bool installed_ = true;
  /// Sparse engines run at the sparse calibrated service rate and install
  /// hash/array stores — the only dense/sparse asymmetry the base carries.
  const bool sparse_;
  bool finished_ = false;
  u64 seed_ = 0;

  // --- fault tolerance ---
  /// Heal-wait budget for kinds with no host fallback: ~64 timeout periods
  /// of continuous no-viable-tree before the op publishes a failed result.
  static constexpr u32 kMaxRecoverWaits = 64;
  SimTime timeout_ps_ = 0;
  u32 max_retry_ = 4;
  u32 recover_waits_ = 0;
  /// Outlives-`this` guard for watchdog/listener events on the calendar.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  u64 retransmits_ = 0;
  u32 recoveries_ = 0;

  // --- congestion adaptation ---
  net::CongestionMonitor* monitor_ = nullptr;
  u32 migrations_iter_ = 0;   ///< while preparing the CURRENT iteration
  u32 migrations_total_ = 0;  ///< over the op's lifetime
  u32 planned_iter_ = 0;      ///< optimizer-planned, CURRENT iteration
  u32 planned_total_ = 0;     ///< optimizer-planned, op lifetime

  /// Host-side fallback data plane once no viable tree remains.
  std::unique_ptr<OpBase> fallback_op_;

 private:
  void on_fault(const net::FaultNotice& notice);
  void on_watchdog();

  /// Persistent re-run upkeep: reset healthy engines, transparently
  /// reinstall a damaged tree, or probe a healed fabric to leave the
  /// fallback data plane.
  void refresh_persistent_install();

  /// Iteration-boundary migration check (Canary's dynamic trees): when the
  /// installed tree's links run hot AND a sufficiently cheaper embedding
  /// exists, move there via the fresh-id reinstall path.
  void maybe_migrate();

  /// Consumes the tree staged by plan_migration() at the iteration
  /// boundary.  True when a plan was pending and ATTEMPTED (the reactive
  /// check is skipped that boundary — two controllers re-embedding one
  /// session in the same instant would fight); false when nothing was
  /// staged or the plan went stale (fabric changed since the optimizer
  /// froze it).
  bool apply_planned_migration();

  /// Break-before-make re-embedding onto `target` via the fresh-id
  /// reinstall path — the shared tail of maybe_migrate() and
  /// apply_planned_migration().  Counts a migration (reactive or planned
  /// per `planned`) only when the switch set actually changed.
  void migrate_to(const ReductionTree& target, bool planned);

  /// FLARE_VALIDATE "plan-apply" audit: a planned move must leave the op
  /// either fully installed (every tree switch holds the fresh id's role)
  /// or fully rolled off the fabric onto a recovery path.  No-op for
  /// reactive moves and in non-validating builds.
  void validate_plan_apply(bool planned);

  /// Constructs the fallback op (when the kind has one) and releases the
  /// install; false when no fallback applies.
  bool prepare_fallback();
  void start_fallback_iteration(u64 seed);
  void begin_fallback_iteration(u64 seed, std::shared_ptr<OpState> state);
  void on_fallback_done();

  /// Re-embedding staged by plan_migration(), consumed at the next
  /// iteration boundary by apply_planned_migration().
  std::optional<ReductionTree> planned_tree_;
#if FLARE_VALIDATE_ENABLED
  bool debug_break_plan_apply_ = false;
#endif

  bool first_begin_ = true;
  bool iter_span_open_ = false;  ///< balances B/E on the tracer row
  u64 fault_listener_ = 0;
  bool listening_ = false;
  bool watchdog_armed_ = false;
  SimTime last_iter_ps_ = 0;  ///< completion of the previous iteration
  SimTime best_iter_ps_ = 0;  ///< fastest iteration so far
  std::shared_ptr<OpState> fallback_state_;
};

}  // namespace detail

}  // namespace flare::coll
