// Legacy entry point for the host-based ring (Rabenseifner) allreduce —
// the bandwidth-optimal host-based baseline (Section 1; the "Host-Based
// Dense" bars of Figure 15).  Two phases of P-1 steps each (scatter-reduce,
// then allgather); every host transmits 2 * (P-1)/P * Z bytes, ~2x the
// traffic of the in-network reduction.
//
// DEPRECATED: use coll::Communicator with algorithm = Algorithm::kHostRing.
#pragma once

#include "coll/communicator.hpp"

namespace flare::coll {

struct RingOptions : Tuning {
  u64 data_bytes = 1 * kMiB;  ///< Z per host
  core::OpKind op = core::OpKind::kSum;
  u64 mtu_bytes = 4096;  ///< fragmentation unit for chunk messages
};

/// The CollectiveOptions equivalent of the legacy options struct.
CollectiveOptions ring_descriptor(const RingOptions& opt);

[[deprecated("use coll::Communicator with Algorithm::kHostRing")]]
CollectiveResult run_ring_allreduce(net::Network& net,
                                    const std::vector<net::Host*>& hosts,
                                    const RingOptions& opt);

}  // namespace flare::coll
