// Host-based ring (Rabenseifner) allreduce — the bandwidth-optimal
// host-based baseline (Section 1; the "Host-Based Dense" bars of
// Figure 15).  Two phases of P-1 steps each (scatter-reduce, then
// allgather); every host transmits 2 * (P-1)/P * Z bytes, ~2x the traffic
// of the in-network reduction.
#pragma once

#include "coll/result.hpp"
#include "net/network.hpp"

namespace flare::coll {

struct RingOptions {
  u64 data_bytes = 1 * kMiB;  ///< Z per host
  core::DType dtype = core::DType::kFloat32;
  core::OpKind op = core::OpKind::kSum;
  u64 mtu_bytes = 4096;  ///< fragmentation unit for chunk messages
  u64 seed = 1;
};

CollectiveResult run_ring_allreduce(net::Network& net,
                                    const std::vector<net::Host*>& hosts,
                                    const RingOptions& opt);

}  // namespace flare::coll
