#include "coll/communicator.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "coll/flare_sparse.hpp"
#include "coll/sparcml.hpp"
#include "coll/tree_cache.hpp"
#include "core/policy.hpp"
#include "core/staggered.hpp"
#include "net/telemetry.hpp"
#include "obs/trace.hpp"
#include "workload/generators.hpp"

namespace flare::coll {

std::string_view collective_kind_name(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::kAllreduce: return "allreduce";
    case CollectiveKind::kReduce: return "reduce";
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kBarrier: return "barrier";
  }
  return "?";
}

std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kAuto: return "auto";
    case Algorithm::kFlareDense: return "flare-dense";
    case Algorithm::kFlareSparse: return "flare-sparse";
    case Algorithm::kHostRing: return "host-ring";
    case Algorithm::kSparcml: return "sparcml";
  }
  return "?";
}

namespace detail {

// ======================================================== host ring =======
// Event-driven ring (Rabenseifner) allreduce over the same network: two
// phases of P-1 steps (scatter-reduce, then allgather).  Each op draws a
// fresh wire-protocol id and registers per-proto host handlers, so
// overlapping ring collectives over shared hosts never mix fragments.
//
// Fault tolerance (Tuning::retransmit_timeout_ps > 0): the ring advances
// strictly step by step per host, so loss detection is receiver-driven — a
// host stalled on its expected (phase, step) chunk for longer than the
// timeout NACKs its ring predecessor, which re-sends the recorded chunk
// snapshot.  Fragment bookkeeping is idempotent (per-seq bitmap), so
// duplicated re-sends and NACK storms are harmless, and a lost NACK is
// simply re-issued on the next watchdog tick.

class RingOp final : public OpBase {
 public:
  /// `trace`: attribution/tracer row id.  Nonzero when this ring is the
  /// fallback plane of an in-network session (it inherits the session's
  /// stable trace so the attribution plane sees one continuous tenant);
  /// 0 lets the ring allocate its own.
  RingOp(net::Network& net, const std::vector<net::Host*>& participants,
         const CollectiveOptions& desc, u32 trace = 0)
      : net_(net), participants_(participants), desc_(desc),
        proto_(0x40000000u + net.alloc_collective_id()),
        trace_(trace != 0 ? trace : net.alloc_trace_id()), op_(desc.op) {
    dtype_ = desc_.dtype;
    esize_ = core::dtype_size(dtype_);
    elems_total_ = std::max<u64>(1, desc_.data_bytes / esize_);
    mtu_ = desc_.mtu_bytes;
    P_ = static_cast<u32>(participants_.size());
    timeout_ps_ = desc_.retransmit_timeout_ps;
  }

  ~RingOp() override {
    if (handlers_set_) {
      for (net::Host* host : participants_) host->clear_proto_handler(proto_);
    }
  }

  void begin(u64 seed, std::shared_ptr<OpState> state) override {
    FLARE_ASSERT_MSG(state_ == nullptr,
                     "previous iteration of this collective still running");
    state_ = std::move(state);
    complete_ = false;
    finished_ = false;
    hosts_done_ = 0;
    retransmits_ = 0;
    start_ps_ = net_.sim().now();
    base_traffic_ = net_.total_traffic_bytes();
    if (obs::Tracer* tr = net_.tracer()) {
      tr->name_thread(trace_, "coll-" + std::to_string(trace_));
      tr->begin(trace_, "ring-iteration", start_ps_, "iteration");
    }

    auto host_data =
        workload::make_dense_data(P_, elems_total_, dtype_, seed);
    expected_ = core::reference_reduce(host_data, op_);

    runs_.clear();
    runs_.resize(P_);
    for (u32 h = 0; h < P_; ++h) {
      runs_[h].host = participants_[h];
      runs_[h].vec = std::move(host_data[h]);
      runs_[h].host->set_proto_handler(
          proto_, [this](const net::HostMsg& msg) { on_msg(msg); });
    }
    handlers_set_ = true;
    if (P_ == 1) {
      runs_[0].finish_ps = net_.sim().now();
      finished_ = true;
      net_.sim().schedule_after(0, [this] { finalize(); });
      return;
    }
    for (RHost& hr : runs_) hr.last_progress_ps = start_ps_;
    arm_watchdog();
    // Kick off: every host sends its own chunk h for scatter-reduce step 0.
    for (u32 h = 0; h < P_; ++h)
      send_chunk(h, h, Phase::kScatterReduce, 0);
  }

 private:
  enum class Phase : u8 { kScatterReduce, kAllGather, kDone };

  /// Reassembly state of one logical chunk: per-fragment bitmap so that
  /// retransmitted fragments never double-count.
  struct Partial {
    std::vector<bool> have;
    u32 have_count = 0;
    std::shared_ptr<const core::TypedBuffer> data;
  };
  /// What a host sent for one tag — kept until the op finishes so a NACK
  /// can replay it (the working vector has moved on by then).
  struct SentChunk {
    u64 bytes = 0;
    u32 frags = 0;
    std::shared_ptr<const core::TypedBuffer> snapshot;
  };
  struct RHost {
    net::Host* host = nullptr;
    core::TypedBuffer vec;  ///< working vector (input, then result)
    Phase phase = Phase::kScatterReduce;
    u32 step = 0;
    SimTime finish_ps = 0;
    SimTime last_progress_ps = 0;
    u32 nacks = 0;  ///< NACKs since last progress (backoff input)
    std::unordered_map<u32, Partial> inbox;
    std::unordered_map<u32, SentChunk> sent;
  };

  u64 chunk_begin(u32 c) const {
    const u64 base = elems_total_ / P_;
    const u64 rem = elems_total_ % P_;
    return static_cast<u64>(c) * base + std::min<u64>(c, rem);
  }
  u64 chunk_elems(u32 c) const {
    return chunk_begin(c + 1) - chunk_begin(c);
  }

  static u32 make_tag(Phase phase, u32 step) {
    return (phase == Phase::kAllGather ? 0x10000u : 0u) | step;
  }

  void send_chunk(u32 h, u32 c, Phase phase, u32 step) {
    RHost& hr = runs_[h];
    const u64 elems = chunk_elems(c);
    const u64 bytes = elems * esize_;
    SentChunk chunk;
    chunk.bytes = bytes;
    chunk.frags =
        std::max<u32>(1, static_cast<u32>((bytes + mtu_ - 1) / mtu_));
    auto snapshot = std::make_shared<core::TypedBuffer>(dtype_, elems);
    std::memcpy(snapshot->data(), hr.vec.at_byte(chunk_begin(c)), bytes);
    chunk.snapshot = std::move(snapshot);
    const u32 tag = make_tag(phase, step);
    transmit(h, tag, chunk);
    if (timeout_ps_ > 0) hr.sent[tag] = std::move(chunk);  // NACK replay
  }

  /// Sends every fragment of `chunk` to h's ring successor (first send and
  /// NACK-triggered replays take the same path).
  void transmit(u32 h, u32 tag, const SentChunk& chunk) {
    const u32 dst = (h + 1) % P_;
    for (u32 f = 0; f < chunk.frags; ++f) {
      auto msg = std::make_shared<net::HostMsg>();
      msg->src_host = h;
      msg->dst_host = dst;  ///< job-local rank of the receiver
      msg->proto = proto_;
      msg->tag = tag;
      msg->seq = f;
      msg->seq_count = chunk.frags;
      if (f + 1 == chunk.frags) msg->dense = chunk.snapshot;
      net::NetPacket np;
      np.kind = net::PacketKind::kHostMsg;
      np.dst_node = runs_[dst].host->id();
      // One flow per (op, ring edge): FIFO along one ECMP path.
      np.flow = (static_cast<u64>(proto_) << 16) | h;
      np.trace = trace_;
      const u64 frag_bytes = std::min<u64>(
          mtu_, chunk.bytes - static_cast<u64>(f) * mtu_);
      np.wire_bytes = frag_bytes + core::kPacketWireOverhead;
      np.msg = std::move(msg);
      runs_[h].host->send(std::move(np));
    }
  }

  void on_msg(const net::HostMsg& msg) {
    if (finished_) return;
    const u32 h = msg.dst_host;
    FLARE_ASSERT(h < P_);
    if (msg.seq_count == 0) {  // NACK: the successor is missing `tag`
      handle_nack(h, msg.tag);
      return;
    }
    RHost& hr = runs_[h];
    Partial& partial = hr.inbox[msg.tag];
    if (partial.have.empty()) partial.have.assign(msg.seq_count, false);
    if (partial.have.at(msg.seq)) return;  // retransmitted fragment
    partial.have[msg.seq] = true;
    partial.have_count += 1;
    if (msg.dense) partial.data = msg.dense;
    if (partial.have_count == static_cast<u32>(partial.have.size())) {
      advance(h);
    }
  }

  void handle_nack(u32 h, u32 tag) {
    RHost& hr = runs_[h];
    const auto it = hr.sent.find(tag);
    // Not sent yet: this host is itself behind; the chunk goes out when it
    // catches up and the requester's next timeout re-NACKs if needed.
    if (it == hr.sent.end()) return;
    retransmits_ += 1;
    if (obs::Tracer* tr = net_.tracer()) {
      tr->instant(trace_, "retransmit", net_.sim().now(), "recovery");
    }
    transmit(h, tag, it->second);
  }

  void send_nack(u32 h) {
    RHost& hr = runs_[h];
    const u32 pred = (h + P_ - 1) % P_;
    auto msg = std::make_shared<net::HostMsg>();
    msg->src_host = h;
    msg->dst_host = pred;
    msg->proto = proto_;
    msg->tag = make_tag(hr.phase, hr.step);
    msg->seq = 0;
    msg->seq_count = 0;  // seq_count==0 marks a NACK
    net::NetPacket np;
    np.kind = net::PacketKind::kHostMsg;
    np.dst_node = runs_[pred].host->id();
    np.flow = (static_cast<u64>(proto_) << 16) | (0x8000ull | h);
    np.trace = trace_;
    np.wire_bytes = core::kPacketWireOverhead;
    np.msg = std::move(msg);
    hr.host->send(std::move(np));
  }

  void arm_watchdog() {
    if (timeout_ps_ == 0 || watchdog_armed_) return;
    watchdog_armed_ = true;
    std::weak_ptr<char> w = alive_;
    net_.sim().schedule_after(timeout_ps_, [this, w] {
      if (w.expired()) return;
      watchdog_armed_ = false;
      on_watchdog();
    });
  }

  void on_watchdog() {
    if (finished_ || state_ == nullptr) return;  // iteration over: go idle
    const SimTime now = net_.sim().now();
    for (u32 h = 0; h < P_; ++h) {
      RHost& hr = runs_[h];
      if (hr.phase == Phase::kDone) continue;
      // Exponential backoff per stall (reset on progress): repeated NACKs
      // each trigger a full chunk replay, so pacing them out keeps a long
      // outage from piling replays onto the healing links.
      const u32 shift = std::min<u32>(hr.nacks, 6);
      if (now - hr.last_progress_ps < (timeout_ps_ << shift)) continue;
      if (hr.nacks >= kMaxNacks) {
        // Permanent stall (a fault that never repairs): surface a FAILED
        // result instead of NACKing the calendar forever.
        give_up();
        return;
      }
      hr.nacks += 1;
      send_nack(h);  // stalled: ask the predecessor to replay
    }
    arm_watchdog();
  }

  void advance(u32 h) {
    RHost& hr = runs_[h];
    while (hr.phase != Phase::kDone) {
      const u32 tag = make_tag(hr.phase, hr.step);
      auto it = hr.inbox.find(tag);
      if (it == hr.inbox.end() || it->second.have.empty() ||
          it->second.have_count !=
              static_cast<u32>(it->second.have.size()) ||
          it->second.data == nullptr) {
        return;  // expected message not fully here yet
      }
      const Partial& partial = it->second;
      hr.last_progress_ps = net_.sim().now();
      hr.nacks = 0;
      if (hr.phase == Phase::kScatterReduce) {
        const u32 c = (h + P_ - hr.step - 1) % P_;
        FLARE_ASSERT(partial.data->size() == chunk_elems(c));
        op_.apply(dtype_, hr.vec.at_byte(chunk_begin(c)),
                  partial.data->data(), chunk_elems(c));
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P_ - 1) {
          send_chunk(h, (h + P_ - hr.step) % P_, Phase::kScatterReduce,
                     hr.step);
        } else {
          hr.phase = Phase::kAllGather;
          hr.step = 0;
          send_chunk(h, (h + 1) % P_, Phase::kAllGather, 0);
        }
      } else {
        const u32 c = (h + P_ - hr.step) % P_;
        FLARE_ASSERT(partial.data->size() == chunk_elems(c));
        std::memcpy(hr.vec.at_byte(chunk_begin(c)), partial.data->data(),
                    chunk_elems(c) * esize_);
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P_ - 1) {
          send_chunk(h, c, Phase::kAllGather, hr.step);
        } else {
          hr.phase = Phase::kDone;
          hr.finish_ps = net_.sim().now();
          hosts_done_ += 1;
          if (hosts_done_ == P_ && !finished_) {
            finished_ = true;
            net_.sim().schedule_after(0, [this] { finalize(); });
          }
        }
      }
    }
  }

  /// Permanent stall: publish a failed result and release host handlers so
  /// the calendar can drain.
  void give_up() {
    if (obs::Tracer* tr = net_.tracer()) {
      tr->instant(trace_, "give-up", net_.sim().now(), "recovery");
      tr->end(trace_, net_.sim().now());
    }
    CollectiveResult res;
    res.ok = false;
    res.in_network = false;
    res.retransmits = retransmits_;
    for (net::Host* host : participants_) host->clear_proto_handler(proto_);
    handlers_set_ = false;
    finished_ = true;
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  void finalize() {
    if (obs::Tracer* tr = net_.tracer()) {
      tr->end(trace_, net_.sim().now());
    }
    CollectiveResult res;
    res.blocks = P_;
    res.in_network = false;
    f64 err = 0.0, worst = 0.0, sum = 0.0;
    for (const RHost& hr : runs_) {
      err = std::max(err, hr.vec.max_abs_diff(expected_));
      worst = std::max(worst, static_cast<f64>(hr.finish_ps - start_ps_));
      sum += static_cast<f64>(hr.finish_ps - start_ps_);
    }
    res.max_abs_err = err;
    res.ok = err <= core::reduce_tolerance(dtype_, P_);
    res.completion_seconds = worst / kPsPerSecond;
    res.mean_host_seconds = sum / P_ / kPsPerSecond;
    res.total_traffic_bytes = net_.total_traffic_bytes() - base_traffic_;
    res.total_packets = net_.total_packets();
    res.retransmits = retransmits_;
    for (net::Host* host : participants_) host->clear_proto_handler(proto_);
    handlers_set_ = false;
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  net::Network& net_;
  const std::vector<net::Host*>& participants_;
  CollectiveOptions desc_;
  u32 proto_;
  u32 trace_;  ///< attribution tag + tracer row (see ctor)
  core::ReduceOp op_;
  core::DType dtype_ = core::DType::kFloat32;
  u32 esize_ = 4;
  u64 elems_total_ = 0;
  u64 mtu_ = 4096;
  u32 P_ = 0;
  u64 base_traffic_ = 0;
  SimTime start_ps_ = 0;
  bool handlers_set_ = false;
  /// NACK budget per stalled host before the op reports failure: with the
  /// capped exponential backoff this tolerates outages two orders longer
  /// than the timeout while still bounding a permanent stall.
  static constexpr u32 kMaxNacks = 64;
  SimTime timeout_ps_ = 0;
  /// Outlives-`this` guard for watchdog events left on the calendar.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  bool watchdog_armed_ = false;
  u64 retransmits_ = 0;
  core::TypedBuffer expected_;
  std::vector<RHost> runs_;
  u32 hosts_done_ = 0;
  bool finished_ = false;
};


// ========================================================== in-network ====
// One event-driven driver for ALL in-network dense kinds (Section 8: the
// extension collectives fall out of the allreduce machinery):
//
//   * allreduce — every host contributes its vector and consumes the
//     aggregated multicast;
//   * reduce    — same protocol; only the destination's buffer is the
//     result (the multicast down is shared, as in the paper);
//   * broadcast — the root contributes its data, everyone else the
//     operator identity; the "sum" coming back is the root's vector;
//   * barrier   — one 0-byte block; a host leaves the barrier when the
//     root's empty result multicast reaches it.
//
// Fault tolerance (Tuning::retransmit_timeout_ps > 0), layered like
// NetReduce + Canary (PAPERS.md):
//   1. a per-op watchdog retransmits blocks outstanding past the timeout
//      (switches re-emit cached results for blocks they already finished,
//      so any single loss — contribution, aggregate, or multicast — heals);
//   2. after max_retransmits of one block, or on a fabric fault notice
//      that kills a tree element, the op declares the tree dead: it
//      uninstalls the remains, recomputes + reinstalls on the surviving
//      fabric under a FRESH collective id (stale packets drop harmlessly)
//      and restarts the iteration;
//   3. when no viable tree exists, an allreduce finishes on the host-ring
//      data plane (reduce/broadcast/barrier retry once the fabric heals).
// Persistent requests reinstall transparently between iterations.
//
// All of 1-3, the persistent upkeep and the congestion migration live in
// detail::TreeOpBase (coll/op.{hpp,cpp}) and are shared verbatim with the
// sparse engine's SparseOp; this class is the DENSE data plane only.

class InNetOp final : public TreeOpBase {
 public:
  InNetOp(net::Network& net, NetworkManager& manager,
          const std::vector<net::Host*>& participants,
          const CollectiveOptions& desc, core::AllreduceConfig cfg,
          ReductionTree tree, bool owns_install,
          net::CongestionMonitor* monitor = nullptr)
      : TreeOpBase(net, manager, participants, desc, cfg, std::move(tree),
                   owns_install, /*sparse=*/false, monitor),
        op_(cfg.op) {
    const u32 esize = core::dtype_size(desc_.dtype);
    if (desc_.kind == CollectiveKind::kBarrier) {
      elems_total_ = 0;
      elems_per_pkt_ = 0;
      nb_ = 1;
    } else {
      elems_total_ = std::max<u64>(1, desc_.data_bytes / esize);
      elems_per_pkt_ = cfg_.elems_per_packet;
      FLARE_ASSERT(elems_per_pkt_ >= 1);
      nb_ = static_cast<u32>((elems_total_ + elems_per_pkt_ - 1) /
                             elems_per_pkt_);
    }
    // Staggered sending keeps every block of the operation in flight
    // (Section 5); windowed flow control applies to aligned sending.
    window_ = desc_.order == core::SendOrder::kStaggered
                  ? std::max(desc_.window_blocks, nb_)
                  : std::max(1u, desc_.window_blocks);
  }

  void begin(u64 seed, std::shared_ptr<OpState> state) override {
    if (!begin_prologue(seed, std::move(state))) return;
    hosts_done_ = 0;
    start_ps_ = net_.sim().now();
    base_traffic_ = net_.total_traffic_bytes();
    const u32 P = static_cast<u32>(participants_.size());

    switch (desc_.kind) {
      case CollectiveKind::kAllreduce:
      case CollectiveKind::kReduce:
        host_data_ = workload::make_dense_data(P, elems_total_, desc_.dtype,
                                               seed);
        expected_ = core::reference_reduce(host_data_, op_);
        break;
      case CollectiveKind::kBroadcast: {
        Rng rng(seed);
        payload_ = core::TypedBuffer(desc_.dtype, elems_total_);
        payload_.fill_random(rng);
        identity_ = core::TypedBuffer(desc_.dtype, elems_per_pkt_);
        identity_.fill_identity(op_);
        break;
      }
      case CollectiveKind::kBarrier:
        break;
    }

    runs_.clear();
    runs_.resize(P);
    for (u32 h = 0; h < P; ++h) {
      HostRun& hr = runs_[h];
      hr.host = participants_[h];
      if (consumes_payload()) {
        hr.result = core::TypedBuffer(desc_.dtype, elems_total_);
      }
      hr.schedule = core::send_schedule(h, P, nb_, desc_.order);
      hr.block_done.assign(nb_, false);
      hr.retry.reset(nb_);
      hr.host->set_reduce_handler(
          cfg_.id, [this, h](const core::Packet& pkt) { on_down(h, pkt); });
    }
    for (u32 h = 0; h < P; ++h) try_send(h);
    subscribe_faults();
    arm_watchdog();
  }

 private:
  struct HostRun {
    net::Host* host = nullptr;
    core::TypedBuffer result;
    std::vector<u32> schedule;
    std::size_t next = 0;
    u32 outstanding = 0;
    u64 blocks_done = 0;
    SimTime finish_ps = 0;
    std::vector<bool> block_done;
    BlockRetryState retry;  ///< shared watchdog bookkeeping (TreeOpBase)
  };

  bool consumes_payload() const {
    return desc_.kind != CollectiveKind::kBarrier;
  }

  u32 block_elems(u32 b) const {
    if (elems_per_pkt_ == 0) return 0;  // barrier
    const u64 first = static_cast<u64>(b) * elems_per_pkt_;
    return static_cast<u32>(
        std::min<u64>(elems_per_pkt_, elems_total_ - first));
  }

  /// What host `h` feeds into the reduction for block `b`.
  const void* contribution(u32 h, u32 b) const {
    const u64 first = static_cast<u64>(b) * elems_per_pkt_;
    switch (desc_.kind) {
      case CollectiveKind::kAllreduce:
      case CollectiveKind::kReduce:
        return host_data_[h].at_byte(first);
      case CollectiveKind::kBroadcast:
        return h == desc_.root ? payload_.at_byte(first) : identity_.data();
      case CollectiveKind::kBarrier:
        return nullptr;
    }
    return nullptr;
  }

  void send_block(u32 h, u32 b, u16 extra_flags) {
    HostRun& hr = runs_[h];
    core::Packet p = core::make_dense_packet(
        cfg_.id, b, tree_.host_child_index[hr.host->host_index()],
        contribution(h, b), block_elems(b), desc_.dtype);
    p.hdr.flags |= extra_flags;
    net::NetPacket np;
    np.kind = net::PacketKind::kReduceUp;
    np.allreduce_id = cfg_.id;
    np.trace = cfg_.trace;
    np.wire_bytes = p.wire_bytes();
    np.reduce = core::make_pooled_packet(std::move(p));
    hr.host->send(std::move(np));
  }

  void try_send(u32 h) {
    HostRun& hr = runs_[h];
    while (hr.next < hr.schedule.size()) {
      const u32 b = hr.schedule[hr.next];
      // After a recovery restart the schedule replays from the top: blocks
      // this host already holds results for are re-contributed (the fresh
      // engines need every child's input) but consume no window slot and
      // await no multicast.
      const bool need_result = !hr.block_done[b];
      if (need_result && hr.outstanding >= window_) break;
      hr.next += 1;
      if (need_result) {
        hr.outstanding += 1;
        hr.retry.sent[b] = true;
        hr.retry.sent_ps[b] = net_.sim().now();
      }
      send_block(h, b, 0);
    }
  }

  void on_down(u32 h, const core::Packet& pkt) {
    HostRun& me = runs_[h];
    const u32 b = pkt.hdr.block_id;
    FLARE_ASSERT(b < nb_);
    if (me.block_done[b]) return;  // duplicated multicast replica
    me.block_done[b] = true;
    FLARE_ASSERT(pkt.hdr.elem_count == block_elems(b));
    if (consumes_payload()) {
      const u64 first = static_cast<u64>(b) * elems_per_pkt_;
      std::memcpy(me.result.at_byte(first), pkt.payload.data(),
                  pkt.payload.size());
    }
    me.blocks_done += 1;
    me.outstanding -= 1;
    if (me.blocks_done == nb_) {
      me.finish_ps = net_.sim().now();
      hosts_done_ += 1;
    }
    try_send(h);
    if (hosts_done_ == runs_.size() && !finished_) {
      finished_ = true;
      // Finalize off this packet's call stack: by the time every host
      // holds every block, all switch-side events of this collective have
      // run (host delivery is causally last on each path), so releasing or
      // resetting switch state afterwards is race-free.
      net_.sim().schedule_after(0, [this] { finalize(); });
    }
  }

  // --------------------------------------------- TreeOpBase data hooks ----

  /// Fallback data plane: the host ring (dense allreduce only; the other
  /// kinds wait for the fabric to heal).
  std::unique_ptr<OpBase> make_fallback_op() override {
    if (desc_.kind != CollectiveKind::kAllreduce) return nullptr;
    CollectiveOptions rdesc = desc_;
    rdesc.algorithm = Algorithm::kHostRing;
    // The ring inherits the session's trace id: the attribution plane sees
    // one continuous tenant across the in-network -> host transition.
    return std::make_unique<RingOp>(net_, participants_, rdesc, cfg_.trace);
  }

  /// Replays the iteration against a freshly installed tree: engines are
  /// new, so every host re-contributes every block; already-delivered
  /// results are kept (their multicast duplicates are dropped on arrival).
  void restart_iteration() override {
    for (u32 h = 0; h < runs_.size(); ++h) {
      HostRun& hr = runs_[h];
      hr.host->set_reduce_handler(
          cfg_.id, [this, h](const core::Packet& pkt) { on_down(h, pkt); });
      hr.next = 0;
      hr.outstanding = 0;
      hr.retry.reset(nb_);
    }
    for (u32 h = 0; h < runs_.size(); ++h) try_send(h);
    arm_watchdog();
  }

  bool scan_timeouts() override {
    return scan_block_timeouts(
        static_cast<u32>(runs_.size()), nb_,
        [this](u32 h) -> BlockRetryState& { return runs_[h].retry; },
        [this](u32 h, u32 b) { return bool{runs_[h].block_done[b]}; },
        [this](u32 h, u32 b) { send_block(h, b, core::kFlagRetransmit); });
  }

  void finalize() {
    const u32 P = static_cast<u32>(runs_.size());
    CollectiveResult res;
    res.blocks = nb_;
    res.in_network = true;
    f64 worst = 0.0, sum = 0.0;
    for (const HostRun& hr : runs_) {
      worst = std::max(worst, static_cast<f64>(hr.finish_ps - start_ps_));
      sum += static_cast<f64>(hr.finish_ps - start_ps_);
    }
    if (desc_.kind == CollectiveKind::kReduce) {
      // Only the destination consumes the result; its delivery time is the
      // reduce latency even though the shared multicast reaches everyone.
      worst = static_cast<f64>(runs_[desc_.root].finish_ps - start_ps_);
    }
    res.completion_seconds = worst / kPsPerSecond;
    res.mean_host_seconds = sum / P / kPsPerSecond;
    res.total_traffic_bytes = net_.total_traffic_bytes() - base_traffic_;
    res.total_packets = net_.total_packets();

    switch (desc_.kind) {
      case CollectiveKind::kAllreduce: {
        f64 err = 0.0;
        for (const HostRun& hr : runs_)
          err = std::max(err, hr.result.max_abs_diff(expected_));
        res.max_abs_err = err;
        res.ok = err <= core::reduce_tolerance(desc_.dtype, P);
        break;
      }
      case CollectiveKind::kReduce:
        res.max_abs_err = runs_[desc_.root].result.max_abs_diff(expected_);
        res.ok = res.max_abs_err <= core::reduce_tolerance(desc_.dtype, P);
        break;
      case CollectiveKind::kBroadcast: {
        f64 err = 0.0;
        for (const HostRun& hr : runs_)
          err = std::max(err, hr.result.max_abs_diff(payload_));
        res.max_abs_err = err;
        res.ok = err <= (core::dtype_is_float(desc_.dtype) ? 1e-4 : 0.0);
        break;
      }
      case CollectiveKind::kBarrier:
        res.ok = true;  // finalize fires only once every host is released
        break;
    }

    for (const TreeSwitchEntry& e : tree_.switches) {
      const net::ReduceRole* role = e.sw->role(cfg_.id);
      if (role != nullptr && role->engine != nullptr) {
        res.switch_working_mem_hwm = std::max(
            res.switch_working_mem_hwm, role->engine->pool().high_water());
      }
    }
    res.retransmits = retransmits_;
    res.recoveries = recoveries_;
    res.migrations = migrations_iter_;
    res.planned_migrations = planned_iter_;
    // Iteration bookkeeping (+ closes this iteration's tracer span).
    record_iteration_time(static_cast<SimTime>(worst));

    if (owns_install_) release_install();
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  core::ReduceOp op_;
  u64 elems_total_ = 0;
  u32 elems_per_pkt_ = 0;
  u32 nb_ = 0;
  u32 window_ = 0;
  u64 base_traffic_ = 0;
  SimTime start_ps_ = 0;
  std::vector<core::TypedBuffer> host_data_;
  core::TypedBuffer payload_;   ///< broadcast source vector
  core::TypedBuffer identity_;  ///< broadcast non-root contribution
  core::TypedBuffer expected_;
  std::vector<HostRun> runs_;
  u32 hosts_done_ = 0;
};

}  // namespace detail

// ===================================================== CollectiveHandle ===

const CollectiveResult& CollectiveHandle::result() const {
  FLARE_ASSERT_MSG(done(), "result() before the collective completed");
  return state_->result;
}

// ================================================= PersistentCollective ===

PersistentCollective::PersistentCollective() = default;

PersistentCollective::PersistentCollective(
    PersistentCollective&& other) noexcept {
  *this = std::move(other);
}

PersistentCollective& PersistentCollective::operator=(
    PersistentCollective&& other) noexcept {
  if (this != &other) {
    release();
    comm_ = std::exchange(other.comm_, nullptr);
    desc_ = std::move(other.desc_);
    cfg_ = other.cfg_;
    report_ = std::move(other.report_);
    op_ = std::move(other.op_);
    host_ring_ = other.host_ring_;
    iterations_ = other.iterations_;
  }
  return *this;
}

PersistentCollective::~PersistentCollective() { release(); }

bool PersistentCollective::in_network() const {
  return op_ != nullptr && op_->current_tree() != nullptr;
}

const ReductionTree& PersistentCollective::tree() const {
  const ReductionTree* live =
      op_ != nullptr ? op_->current_tree() : nullptr;
  FLARE_ASSERT_MSG(live != nullptr,
                   "tree() on a host-ring persistent (no installed tree)");
  return *live;
}

u32 PersistentCollective::migrations() const {
  return op_ != nullptr ? op_->migrations() : 0;
}

u32 PersistentCollective::planned_migrations() const {
  return op_ != nullptr ? op_->planned_migrations() : 0;
}

bool PersistentCollective::plan_migration(const ReductionTree& target) {
  return op_ != nullptr && op_->plan_migration(target);
}

#if FLARE_VALIDATE_ENABLED
bool PersistentCollective::debug_break_next_plan_apply() {
  return op_ != nullptr && op_->debug_break_next_plan_apply();
}
#endif

void PersistentCollective::release() {
  if (op_ != nullptr) op_->release_install();
  op_.reset();
  report_.tree.reset();
  comm_ = nullptr;
}

CollectiveHandle PersistentCollective::start(CompletionFn on_complete) {
  FLARE_ASSERT_MSG(ok(), "start() on a rejected persistent collective");
  auto state = std::make_shared<detail::OpState>();
  state->on_complete = std::move(on_complete);
  CollectiveHandle handle(state);
  // Install-once / run-many: the op resets per-iteration engine state on
  // every tree switch (and transparently reinstalls after a fabric fault)
  // inside begin(); the admission slot and tree roles otherwise stay put.
  op_->begin(desc_.seed + iterations_, std::move(state));
  iterations_ += 1;
  return handle;
}

CollectiveResult PersistentCollective::run() {
  FLARE_ASSERT_MSG(comm_ != nullptr, "run() on a released collective");
  CollectiveHandle handle = start({});
  comm_->network().sim().run();
  FLARE_ASSERT_MSG(handle.done(),
                   "calendar drained without completing the collective");
  return handle.result();
}

// ======================================================== Communicator ====

Communicator::Communicator(net::Network& net,
                           std::vector<net::Host*> participants,
                           CommunicatorConfig cfg)
    : net_(net), participants_(std::move(participants)),
      cfg_(std::move(cfg)) {
  FLARE_ASSERT_MSG(!participants_.empty(),
                   "a communicator needs at least one participant");
  if (cfg_.manager != nullptr) {
    manager_ = cfg_.manager;
  } else {
    owned_manager_ = std::make_unique<NetworkManager>(net_);
    manager_ = owned_manager_.get();
  }
  if (cfg_.monitor != nullptr && owned_manager_ != nullptr) {
    // Congestion-aware embedding: the monitor's edge costs drive the
    // manager's tree search.  Installed on the PRIVATE manager only — its
    // lifetime ends with this session, so the captured monitor pointer
    // can never dangle into other sessions.  A shared manager keeps
    // whatever provider its owner (e.g. the service layer) set.
    net::CongestionMonitor* monitor = cfg_.monitor;
    manager_->set_link_cost([monitor](net::NodeId node, u32 port) {
      return monitor->edge_cost(node, port);
    });
  }
}

Communicator::~Communicator() = default;

Algorithm Communicator::resolve_algorithm(
    const CollectiveOptions& desc) const {
  if (desc.algorithm != Algorithm::kAuto) return desc.algorithm;
  if (desc.sparse.pairs != nullptr || desc.sparse.epoch_pairs != nullptr) {
    return Algorithm::kFlareSparse;
  }
  return Algorithm::kFlareDense;
}

namespace {

/// SparCML's recursive doubling serves power-of-two groups only; the kAuto
/// admission fallback must not construct it for other sizes.
bool sparcml_feasible(std::size_t participants) {
  return std::has_single_bit(participants);
}

}  // namespace

core::AllreduceConfig Communicator::make_config(
    const CollectiveOptions& desc, Algorithm alg) const {
  core::AllreduceConfig cfg;
  cfg.id = manager_->next_id();
  // The attribution tag outlives the id: every fresh-id reinstall keeps
  // cfg.trace, so link accounting sees one tenant across recoveries.
  cfg.trace = net_.alloc_trace_id();
  cfg.dtype = desc.dtype;
  cfg.fault_recovery = desc.retransmit_timeout_ps > 0;
  const u32 esize = core::dtype_size(desc.dtype);
  if (alg == Algorithm::kFlareSparse) {
    // In-network sparse allreduce (Section 7): hash stores below the root,
    // array at the root (the manager flips hash_storage per switch).
    cfg.op = core::ReduceOp(core::OpKind::kSum);
    cfg.policy = core::AggPolicy::kSingleBuffer;
    cfg.sparse = true;
    cfg.block_span = desc.sparse.block_span;
    cfg.pairs_per_packet =
        core::sparse_pairs_per_packet(desc.packet_payload, desc.dtype);
    cfg.hash_capacity_pairs = desc.hash_capacity_pairs;
    cfg.spill_capacity_pairs = desc.spill_capacity_pairs;
    return cfg;
  }
  switch (desc.kind) {
    case CollectiveKind::kAllreduce:
    case CollectiveKind::kReduce: {
      cfg.op = core::ReduceOp(desc.op);
      FLARE_ASSERT(desc.packet_payload >= esize);
      cfg.elems_per_packet =
          static_cast<u32>(desc.packet_payload / esize);
      cfg.reproducible = desc.reproducible;
      if (desc.auto_policy) {
        const core::PolicyChoice choice =
            core::select_policy(desc.data_bytes, desc.reproducible);
        cfg.policy = choice.policy;
        cfg.num_buffers = choice.num_buffers;
      } else {
        cfg.policy =
            desc.reproducible ? core::AggPolicy::kTree : desc.policy;
        cfg.num_buffers = 1;
      }
      break;
    }
    case CollectiveKind::kBroadcast:
      cfg.op = core::ReduceOp(core::OpKind::kSum);
      FLARE_ASSERT(desc.packet_payload >= esize);
      cfg.elems_per_packet =
          static_cast<u32>(desc.packet_payload / esize);
      cfg.policy = core::AggPolicy::kTree;
      break;
    case CollectiveKind::kBarrier:
      cfg.dtype = core::DType::kInt32;
      cfg.elems_per_packet = 0;  // 0-byte blocks (Section 8)
      cfg.policy = core::AggPolicy::kSingleBuffer;
      break;
  }
  return cfg;
}

InstallReport Communicator::install(const CollectiveOptions& desc,
                                    const core::AllreduceConfig& cfg,
                                    bool sparse) {
  // Placement decisions read the fabric as it is NOW, not as it was at the
  // monitor's last scheduled sample.
  if (cfg_.monitor != nullptr) cfg_.monitor->sample();
  const f64 bps = resolved_switch_service_bps(desc, sparse);
  if (!cfg_.roots.empty()) {
    return manager_->install_with_roots(participants_, cfg, bps, cfg_.roots,
                                        cfg_.cache);
  }
  return manager_->install_with_retry(participants_, cfg, bps);
}

void Communicator::reap() {
  std::erase_if(ops_, [](const std::unique_ptr<detail::OpBase>& op) {
    return op->reapable();
  });
}

std::unique_ptr<detail::OpBase> Communicator::make_host_op(
    const CollectiveOptions& desc, Algorithm alg) {
  FLARE_ASSERT_MSG(desc.kind == CollectiveKind::kAllreduce,
                   "the host data planes serve allreduce only");
  if (alg == Algorithm::kSparcml) {
    CollectiveOptions sdesc = desc;
    sdesc.algorithm = Algorithm::kSparcml;
    return std::make_unique<detail::SparcmlOp>(net_, participants_, sdesc);
  }
  FLARE_ASSERT(alg == Algorithm::kHostRing);
  CollectiveOptions rdesc = desc;
  rdesc.algorithm = Algorithm::kHostRing;
  return std::make_unique<detail::RingOp>(net_, participants_, rdesc);
}

CollectiveHandle Communicator::start_op(
    std::unique_ptr<detail::OpBase> op, u64 seed, CompletionFn on_complete) {
  auto state = std::make_shared<detail::OpState>();
  state->on_complete = std::move(on_complete);
  CollectiveHandle handle(state);
  detail::OpBase* raw = op.get();
  ops_.push_back(std::move(op));
  raw->begin(seed, std::move(state));
  return handle;
}

CollectiveHandle Communicator::start(const CollectiveOptions& desc,
                                     CompletionFn on_complete) {
  reap();
  if (desc.kind == CollectiveKind::kReduce ||
      desc.kind == CollectiveKind::kBroadcast) {
    FLARE_ASSERT_MSG(desc.root < participants_.size(),
                     "root must index the participant group");
  }
  const Algorithm alg = resolve_algorithm(desc);
  switch (alg) {
    case Algorithm::kFlareDense:
    case Algorithm::kFlareSparse: {
      const bool sparse = alg == Algorithm::kFlareSparse;
      if (sparse) {
        FLARE_ASSERT_MSG(desc.kind == CollectiveKind::kAllreduce,
                         "sparse engines serve allreduce only");
        FLARE_ASSERT_MSG(desc.sparse.pairs != nullptr ||
                             desc.sparse.epoch_pairs != nullptr,
                         "sparse collective without a sparse workload");
      }
      const core::AllreduceConfig cfg = make_config(desc, alg);
      InstallReport report = install(desc, cfg, sparse);
      if (!report) {
        if (desc.algorithm == Algorithm::kAuto &&
            desc.kind == CollectiveKind::kAllreduce &&
            (!sparse || sparcml_feasible(participants_.size()))) {
          // The paper's admission policy: fall back to the host data plane
          // (the ring; SparCML for sparse workloads).
          return start_op(make_host_op(desc, sparse ? Algorithm::kSparcml
                                                    : Algorithm::kHostRing),
                          desc.seed, std::move(on_complete));
        }
        // Explicit in-network request rejected by admission: report
        // failure through an immediately-complete handle.
        auto state = std::make_shared<detail::OpState>();
        state->done = true;
        if (on_complete) on_complete(state->result);
        return CollectiveHandle(std::move(state));
      }
      std::unique_ptr<detail::OpBase> op;
      if (sparse) {
        op = std::make_unique<detail::SparseOp>(
            net_, *manager_, participants_, desc, cfg, std::move(*report),
            /*owns_install=*/true, cfg_.monitor);
      } else {
        op = std::make_unique<detail::InNetOp>(
            net_, *manager_, participants_, desc, cfg, std::move(*report),
            /*owns_install=*/true, cfg_.monitor);
      }
      return start_op(std::move(op), desc.seed, std::move(on_complete));
    }
    case Algorithm::kHostRing:
    case Algorithm::kSparcml:
      return start_op(make_host_op(desc, alg), desc.seed,
                      std::move(on_complete));
    case Algorithm::kAuto:
      break;  // resolved above
  }
  FLARE_UNREACHABLE("unresolved algorithm");
}

CollectiveResult Communicator::run(const CollectiveOptions& desc) {
  CollectiveHandle handle = start(desc, {});
  net_.sim().run();
  FLARE_ASSERT_MSG(handle.done(),
                   "calendar drained without completing the collective");
  return handle.result();
}

PersistentCollective Communicator::persistent(const CollectiveOptions& desc) {
  if (desc.kind == CollectiveKind::kReduce ||
      desc.kind == CollectiveKind::kBroadcast) {
    FLARE_ASSERT_MSG(desc.root < participants_.size(),
                     "root must index the participant group");
  }
  PersistentCollective pc;
  pc.comm_ = this;
  pc.desc_ = desc;
  const Algorithm alg = resolve_algorithm(desc);
  if (alg == Algorithm::kHostRing || alg == Algorithm::kSparcml) {
    // Host data planes need no switch state: the persistent request is just
    // the reusable op.
    pc.host_ring_ = true;
    pc.op_ = make_host_op(desc, alg);
    return pc;
  }
  const bool sparse = alg == Algorithm::kFlareSparse;
  FLARE_ASSERT_MSG(alg == Algorithm::kFlareDense || sparse,
                   "unresolved algorithm");
  if (sparse) {
    FLARE_ASSERT_MSG(desc.kind == CollectiveKind::kAllreduce,
                     "sparse engines serve allreduce only");
    FLARE_ASSERT_MSG(desc.sparse.pairs != nullptr ||
                         desc.sparse.epoch_pairs != nullptr,
                     "sparse collective without a sparse workload");
  }
  pc.cfg_ = make_config(desc, alg);
  pc.report_ = install(desc, pc.cfg_, sparse);
  if (!pc.report_) {
    if (desc.algorithm == Algorithm::kAuto &&
        desc.kind == CollectiveKind::kAllreduce &&
        (!sparse || sparcml_feasible(participants_.size()))) {
      // Admission rejected: a persistent host data plane needs no switch
      // state (the ring; SparCML for sparse workloads).
      pc.host_ring_ = true;
      pc.op_ = make_host_op(desc, sparse ? Algorithm::kSparcml
                                         : Algorithm::kHostRing);
    }
    return pc;  // !ok() when no fallback applies
  }
  // The op keeps its own copy of the tree; the report's copy backs
  // tree()/release() and survives moves of the PersistentCollective.
  if (sparse) {
    pc.op_ = std::make_unique<detail::SparseOp>(
        net_, *manager_, participants_, desc, pc.cfg_, *pc.report_,
        /*owns_install=*/false, cfg_.monitor);
  } else {
    pc.op_ = std::make_unique<detail::InNetOp>(
        net_, *manager_, participants_, desc, pc.cfg_, *pc.report_,
        /*owns_install=*/false, cfg_.monitor);
  }
  return pc;
}

}  // namespace flare::coll
