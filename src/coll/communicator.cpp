#include "coll/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "coll/flare_sparse.hpp"
#include "coll/sparcml.hpp"
#include "coll/tree_cache.hpp"
#include "core/policy.hpp"
#include "core/staggered.hpp"
#include "net/telemetry.hpp"
#include "workload/generators.hpp"

namespace flare::coll {

std::string_view collective_kind_name(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::kAllreduce: return "allreduce";
    case CollectiveKind::kReduce: return "reduce";
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kBarrier: return "barrier";
  }
  return "?";
}

std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kAuto: return "auto";
    case Algorithm::kFlareDense: return "flare-dense";
    case Algorithm::kFlareSparse: return "flare-sparse";
    case Algorithm::kHostRing: return "host-ring";
    case Algorithm::kSparcml: return "sparcml";
  }
  return "?";
}

namespace detail {

class OpBase {
 public:
  virtual ~OpBase() = default;
  OpBase(const OpBase&) = delete;
  OpBase& operator=(const OpBase&) = delete;

  /// Kicks off one iteration: (re)wires host handlers, stages data and
  /// enqueues the first sends on the calendar.  `state` receives the
  /// result; its on_complete (if any) fires at completion.
  virtual void begin(u64 seed, std::shared_ptr<OpState> state) = 0;

  /// The LIVE reduction tree of an in-network op holding an install;
  /// nullptr for host-based ops and after a fault stripped the tree.
  virtual const ReductionTree* current_tree() const { return nullptr; }

  /// Congestion migrations performed over the op's lifetime (0 for
  /// host-based ops).
  virtual u32 migrations() const { return 0; }

  /// Releases installed switch state and host handlers; idempotent, no-op
  /// for host-based ops.  Called by PersistentCollective::release().
  virtual void release_install() {}

  /// True once finalize ran and (for one-shot ops) resources are released.
  bool reapable() const { return complete_; }

 protected:
  OpBase() = default;

  /// Publishes the result and invokes the completion callback.  MUST be
  /// the last thing a finalize path does: the callback may destroy the op
  /// (service jobs self-erase), so no member access is allowed after it.
  void publish(CollectiveResult&& res) {
    auto st = std::move(state_);
    st->result = std::move(res);
    st->done = true;
    auto cb = std::move(st->on_complete);
    if (cb) cb(st->result);  // 'this' may be destroyed here
  }

  std::shared_ptr<OpState> state_;
  bool complete_ = false;
};

// ======================================================== host ring =======
// Event-driven ring (Rabenseifner) allreduce over the same network: two
// phases of P-1 steps (scatter-reduce, then allgather).  Each op draws a
// fresh wire-protocol id and registers per-proto host handlers, so
// overlapping ring collectives over shared hosts never mix fragments.
//
// Fault tolerance (Tuning::retransmit_timeout_ps > 0): the ring advances
// strictly step by step per host, so loss detection is receiver-driven — a
// host stalled on its expected (phase, step) chunk for longer than the
// timeout NACKs its ring predecessor, which re-sends the recorded chunk
// snapshot.  Fragment bookkeeping is idempotent (per-seq bitmap), so
// duplicated re-sends and NACK storms are harmless, and a lost NACK is
// simply re-issued on the next watchdog tick.

class RingOp final : public OpBase {
 public:
  RingOp(net::Network& net, const std::vector<net::Host*>& participants,
         const CollectiveOptions& desc)
      : net_(net), participants_(participants), desc_(desc),
        proto_(0x40000000u + net.alloc_collective_id()), op_(desc.op) {
    dtype_ = desc_.dtype;
    esize_ = core::dtype_size(dtype_);
    elems_total_ = std::max<u64>(1, desc_.data_bytes / esize_);
    mtu_ = desc_.mtu_bytes;
    P_ = static_cast<u32>(participants_.size());
    timeout_ps_ = desc_.retransmit_timeout_ps;
  }

  ~RingOp() override {
    if (handlers_set_) {
      for (net::Host* host : participants_) host->clear_proto_handler(proto_);
    }
  }

  void begin(u64 seed, std::shared_ptr<OpState> state) override {
    FLARE_ASSERT_MSG(state_ == nullptr,
                     "previous iteration of this collective still running");
    state_ = std::move(state);
    complete_ = false;
    finished_ = false;
    hosts_done_ = 0;
    retransmits_ = 0;
    start_ps_ = net_.sim().now();
    base_traffic_ = net_.total_traffic_bytes();

    auto host_data =
        workload::make_dense_data(P_, elems_total_, dtype_, seed);
    expected_ = core::reference_reduce(host_data, op_);

    runs_.clear();
    runs_.resize(P_);
    for (u32 h = 0; h < P_; ++h) {
      runs_[h].host = participants_[h];
      runs_[h].vec = std::move(host_data[h]);
      runs_[h].host->set_proto_handler(
          proto_, [this](const net::HostMsg& msg) { on_msg(msg); });
    }
    handlers_set_ = true;
    if (P_ == 1) {
      runs_[0].finish_ps = net_.sim().now();
      finished_ = true;
      net_.sim().schedule_after(0, [this] { finalize(); });
      return;
    }
    for (RHost& hr : runs_) hr.last_progress_ps = start_ps_;
    arm_watchdog();
    // Kick off: every host sends its own chunk h for scatter-reduce step 0.
    for (u32 h = 0; h < P_; ++h)
      send_chunk(h, h, Phase::kScatterReduce, 0);
  }

 private:
  enum class Phase : u8 { kScatterReduce, kAllGather, kDone };

  /// Reassembly state of one logical chunk: per-fragment bitmap so that
  /// retransmitted fragments never double-count.
  struct Partial {
    std::vector<bool> have;
    u32 have_count = 0;
    std::shared_ptr<const core::TypedBuffer> data;
  };
  /// What a host sent for one tag — kept until the op finishes so a NACK
  /// can replay it (the working vector has moved on by then).
  struct SentChunk {
    u64 bytes = 0;
    u32 frags = 0;
    std::shared_ptr<const core::TypedBuffer> snapshot;
  };
  struct RHost {
    net::Host* host = nullptr;
    core::TypedBuffer vec;  ///< working vector (input, then result)
    Phase phase = Phase::kScatterReduce;
    u32 step = 0;
    SimTime finish_ps = 0;
    SimTime last_progress_ps = 0;
    u32 nacks = 0;  ///< NACKs since last progress (backoff input)
    std::unordered_map<u32, Partial> inbox;
    std::unordered_map<u32, SentChunk> sent;
  };

  u64 chunk_begin(u32 c) const {
    const u64 base = elems_total_ / P_;
    const u64 rem = elems_total_ % P_;
    return static_cast<u64>(c) * base + std::min<u64>(c, rem);
  }
  u64 chunk_elems(u32 c) const {
    return chunk_begin(c + 1) - chunk_begin(c);
  }

  static u32 make_tag(Phase phase, u32 step) {
    return (phase == Phase::kAllGather ? 0x10000u : 0u) | step;
  }

  void send_chunk(u32 h, u32 c, Phase phase, u32 step) {
    RHost& hr = runs_[h];
    const u64 elems = chunk_elems(c);
    const u64 bytes = elems * esize_;
    SentChunk chunk;
    chunk.bytes = bytes;
    chunk.frags =
        std::max<u32>(1, static_cast<u32>((bytes + mtu_ - 1) / mtu_));
    auto snapshot = std::make_shared<core::TypedBuffer>(dtype_, elems);
    std::memcpy(snapshot->data(), hr.vec.at_byte(chunk_begin(c)), bytes);
    chunk.snapshot = std::move(snapshot);
    const u32 tag = make_tag(phase, step);
    transmit(h, tag, chunk);
    if (timeout_ps_ > 0) hr.sent[tag] = std::move(chunk);  // NACK replay
  }

  /// Sends every fragment of `chunk` to h's ring successor (first send and
  /// NACK-triggered replays take the same path).
  void transmit(u32 h, u32 tag, const SentChunk& chunk) {
    const u32 dst = (h + 1) % P_;
    for (u32 f = 0; f < chunk.frags; ++f) {
      auto msg = std::make_shared<net::HostMsg>();
      msg->src_host = h;
      msg->dst_host = dst;  ///< job-local rank of the receiver
      msg->proto = proto_;
      msg->tag = tag;
      msg->seq = f;
      msg->seq_count = chunk.frags;
      if (f + 1 == chunk.frags) msg->dense = chunk.snapshot;
      net::NetPacket np;
      np.kind = net::PacketKind::kHostMsg;
      np.dst_node = runs_[dst].host->id();
      // One flow per (op, ring edge): FIFO along one ECMP path.
      np.flow = (static_cast<u64>(proto_) << 16) | h;
      const u64 frag_bytes = std::min<u64>(
          mtu_, chunk.bytes - static_cast<u64>(f) * mtu_);
      np.wire_bytes = frag_bytes + core::kPacketWireOverhead;
      np.msg = std::move(msg);
      runs_[h].host->send(std::move(np));
    }
  }

  void on_msg(const net::HostMsg& msg) {
    if (finished_) return;
    const u32 h = msg.dst_host;
    FLARE_ASSERT(h < P_);
    if (msg.seq_count == 0) {  // NACK: the successor is missing `tag`
      handle_nack(h, msg.tag);
      return;
    }
    RHost& hr = runs_[h];
    Partial& partial = hr.inbox[msg.tag];
    if (partial.have.empty()) partial.have.assign(msg.seq_count, false);
    if (partial.have.at(msg.seq)) return;  // retransmitted fragment
    partial.have[msg.seq] = true;
    partial.have_count += 1;
    if (msg.dense) partial.data = msg.dense;
    if (partial.have_count == static_cast<u32>(partial.have.size())) {
      advance(h);
    }
  }

  void handle_nack(u32 h, u32 tag) {
    RHost& hr = runs_[h];
    const auto it = hr.sent.find(tag);
    // Not sent yet: this host is itself behind; the chunk goes out when it
    // catches up and the requester's next timeout re-NACKs if needed.
    if (it == hr.sent.end()) return;
    retransmits_ += 1;
    transmit(h, tag, it->second);
  }

  void send_nack(u32 h) {
    RHost& hr = runs_[h];
    const u32 pred = (h + P_ - 1) % P_;
    auto msg = std::make_shared<net::HostMsg>();
    msg->src_host = h;
    msg->dst_host = pred;
    msg->proto = proto_;
    msg->tag = make_tag(hr.phase, hr.step);
    msg->seq = 0;
    msg->seq_count = 0;  // seq_count==0 marks a NACK
    net::NetPacket np;
    np.kind = net::PacketKind::kHostMsg;
    np.dst_node = runs_[pred].host->id();
    np.flow = (static_cast<u64>(proto_) << 16) | (0x8000ull | h);
    np.wire_bytes = core::kPacketWireOverhead;
    np.msg = std::move(msg);
    hr.host->send(std::move(np));
  }

  void arm_watchdog() {
    if (timeout_ps_ == 0 || watchdog_armed_) return;
    watchdog_armed_ = true;
    std::weak_ptr<char> w = alive_;
    net_.sim().schedule_after(timeout_ps_, [this, w] {
      if (w.expired()) return;
      watchdog_armed_ = false;
      on_watchdog();
    });
  }

  void on_watchdog() {
    if (finished_ || state_ == nullptr) return;  // iteration over: go idle
    const SimTime now = net_.sim().now();
    for (u32 h = 0; h < P_; ++h) {
      RHost& hr = runs_[h];
      if (hr.phase == Phase::kDone) continue;
      // Exponential backoff per stall (reset on progress): repeated NACKs
      // each trigger a full chunk replay, so pacing them out keeps a long
      // outage from piling replays onto the healing links.
      const u32 shift = std::min<u32>(hr.nacks, 6);
      if (now - hr.last_progress_ps < (timeout_ps_ << shift)) continue;
      if (hr.nacks >= kMaxNacks) {
        // Permanent stall (a fault that never repairs): surface a FAILED
        // result instead of NACKing the calendar forever.
        give_up();
        return;
      }
      hr.nacks += 1;
      send_nack(h);  // stalled: ask the predecessor to replay
    }
    arm_watchdog();
  }

  void advance(u32 h) {
    RHost& hr = runs_[h];
    while (hr.phase != Phase::kDone) {
      const u32 tag = make_tag(hr.phase, hr.step);
      auto it = hr.inbox.find(tag);
      if (it == hr.inbox.end() || it->second.have.empty() ||
          it->second.have_count !=
              static_cast<u32>(it->second.have.size()) ||
          it->second.data == nullptr) {
        return;  // expected message not fully here yet
      }
      const Partial& partial = it->second;
      hr.last_progress_ps = net_.sim().now();
      hr.nacks = 0;
      if (hr.phase == Phase::kScatterReduce) {
        const u32 c = (h + P_ - hr.step - 1) % P_;
        FLARE_ASSERT(partial.data->size() == chunk_elems(c));
        op_.apply(dtype_, hr.vec.at_byte(chunk_begin(c)),
                  partial.data->data(), chunk_elems(c));
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P_ - 1) {
          send_chunk(h, (h + P_ - hr.step) % P_, Phase::kScatterReduce,
                     hr.step);
        } else {
          hr.phase = Phase::kAllGather;
          hr.step = 0;
          send_chunk(h, (h + 1) % P_, Phase::kAllGather, 0);
        }
      } else {
        const u32 c = (h + P_ - hr.step) % P_;
        FLARE_ASSERT(partial.data->size() == chunk_elems(c));
        std::memcpy(hr.vec.at_byte(chunk_begin(c)), partial.data->data(),
                    chunk_elems(c) * esize_);
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P_ - 1) {
          send_chunk(h, c, Phase::kAllGather, hr.step);
        } else {
          hr.phase = Phase::kDone;
          hr.finish_ps = net_.sim().now();
          hosts_done_ += 1;
          if (hosts_done_ == P_ && !finished_) {
            finished_ = true;
            net_.sim().schedule_after(0, [this] { finalize(); });
          }
        }
      }
    }
  }

  /// Permanent stall: publish a failed result and release host handlers so
  /// the calendar can drain.
  void give_up() {
    CollectiveResult res;
    res.ok = false;
    res.in_network = false;
    res.retransmits = retransmits_;
    for (net::Host* host : participants_) host->clear_proto_handler(proto_);
    handlers_set_ = false;
    finished_ = true;
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  void finalize() {
    CollectiveResult res;
    res.blocks = P_;
    res.in_network = false;
    f64 err = 0.0, worst = 0.0, sum = 0.0;
    for (const RHost& hr : runs_) {
      err = std::max(err, hr.vec.max_abs_diff(expected_));
      worst = std::max(worst, static_cast<f64>(hr.finish_ps - start_ps_));
      sum += static_cast<f64>(hr.finish_ps - start_ps_);
    }
    res.max_abs_err = err;
    res.ok = err <= core::reduce_tolerance(dtype_, P_);
    res.completion_seconds = worst / kPsPerSecond;
    res.mean_host_seconds = sum / P_ / kPsPerSecond;
    res.total_traffic_bytes = net_.total_traffic_bytes() - base_traffic_;
    res.total_packets = net_.total_packets();
    res.retransmits = retransmits_;
    for (net::Host* host : participants_) host->clear_proto_handler(proto_);
    handlers_set_ = false;
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  net::Network& net_;
  const std::vector<net::Host*>& participants_;
  CollectiveOptions desc_;
  u32 proto_;
  core::ReduceOp op_;
  core::DType dtype_ = core::DType::kFloat32;
  u32 esize_ = 4;
  u64 elems_total_ = 0;
  u64 mtu_ = 4096;
  u32 P_ = 0;
  u64 base_traffic_ = 0;
  SimTime start_ps_ = 0;
  bool handlers_set_ = false;
  /// NACK budget per stalled host before the op reports failure: with the
  /// capped exponential backoff this tolerates outages two orders longer
  /// than the timeout while still bounding a permanent stall.
  static constexpr u32 kMaxNacks = 64;
  SimTime timeout_ps_ = 0;
  /// Outlives-`this` guard for watchdog events left on the calendar.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  bool watchdog_armed_ = false;
  u64 retransmits_ = 0;
  core::TypedBuffer expected_;
  std::vector<RHost> runs_;
  u32 hosts_done_ = 0;
  bool finished_ = false;
};


// ========================================================== in-network ====
// One event-driven driver for ALL in-network dense kinds (Section 8: the
// extension collectives fall out of the allreduce machinery):
//
//   * allreduce — every host contributes its vector and consumes the
//     aggregated multicast;
//   * reduce    — same protocol; only the destination's buffer is the
//     result (the multicast down is shared, as in the paper);
//   * broadcast — the root contributes its data, everyone else the
//     operator identity; the "sum" coming back is the root's vector;
//   * barrier   — one 0-byte block; a host leaves the barrier when the
//     root's empty result multicast reaches it.
//
// Fault tolerance (Tuning::retransmit_timeout_ps > 0), layered like
// NetReduce + Canary (PAPERS.md):
//   1. a per-op watchdog retransmits blocks outstanding past the timeout
//      (switches re-emit cached results for blocks they already finished,
//      so any single loss — contribution, aggregate, or multicast — heals);
//   2. after max_retransmits of one block, or on a fabric fault notice
//      that kills a tree element, the op declares the tree dead: it
//      uninstalls the remains, recomputes + reinstalls on the surviving
//      fabric under a FRESH collective id (stale packets drop harmlessly)
//      and restarts the iteration;
//   3. when no viable tree exists, an allreduce finishes on the host-ring
//      data plane (reduce/broadcast/barrier retry once the fabric heals).
// Persistent requests reinstall transparently between iterations.

class InNetOp final : public OpBase {
 public:
  InNetOp(net::Network& net, NetworkManager& manager,
          const std::vector<net::Host*>& participants,
          const CollectiveOptions& desc, core::AllreduceConfig cfg,
          ReductionTree tree, bool owns_install,
          net::CongestionMonitor* monitor = nullptr)
      : net_(net), manager_(manager), participants_(participants),
        desc_(desc), cfg_(cfg), tree_(std::move(tree)),
        owns_install_(owns_install), op_(cfg.op), monitor_(monitor) {
    const u32 esize = core::dtype_size(desc_.dtype);
    if (desc_.kind == CollectiveKind::kBarrier) {
      elems_total_ = 0;
      elems_per_pkt_ = 0;
      nb_ = 1;
    } else {
      elems_total_ = std::max<u64>(1, desc_.data_bytes / esize);
      elems_per_pkt_ = cfg_.elems_per_packet;
      FLARE_ASSERT(elems_per_pkt_ >= 1);
      nb_ = static_cast<u32>((elems_total_ + elems_per_pkt_ - 1) /
                             elems_per_pkt_);
    }
    // Staggered sending keeps every block of the operation in flight
    // (Section 5); windowed flow control applies to aligned sending.
    window_ = desc_.order == core::SendOrder::kStaggered
                  ? std::max(desc_.window_blocks, nb_)
                  : std::max(1u, desc_.window_blocks);
    timeout_ps_ = desc_.retransmit_timeout_ps;
    max_retry_ = desc_.max_retransmits;
  }

  ~InNetOp() override {
    // Abandoned mid-flight (communicator destroyed): release switch slots
    // and host handlers so the fabric is reusable.
    release_install();
    if (listening_) net_.remove_fault_listener(fault_listener_);
  }

  const ReductionTree* current_tree() const override {
    return installed_ ? &tree_ : nullptr;
  }

  u32 migrations() const override { return migrations_total_; }

  void release_install() override {
    if (!installed_) return;
    for (net::Host* host : participants_) {
      host->clear_reduce_handler(cfg_.id);
    }
    manager_.uninstall(tree_, cfg_.id);
    installed_ = false;
  }

  void begin(u64 seed, std::shared_ptr<OpState> state) override {
    FLARE_ASSERT_MSG(state_ == nullptr,
                     "previous iteration of this collective still running");
    seed_ = seed;
    retransmits_ = 0;
    recoveries_ = 0;
    recover_waits_ = 0;
    migrations_iter_ = 0;
    if (!owns_install_ && !first_begin_) {
      refresh_persistent_install();
      // Congestion adaptation happens at the iteration boundary, after the
      // fault-driven refresh: a healthy tree on hot links is still the
      // wrong tree.
      maybe_migrate();
    }
    first_begin_ = false;
    if (ring_ != nullptr) {
      // Earlier iterations lost the fabric for good: run on the host ring.
      begin_ring_iteration(seed, std::move(state));
      return;
    }
    state_ = std::move(state);
    complete_ = false;
    finished_ = false;
    hosts_done_ = 0;
    start_ps_ = net_.sim().now();
    base_traffic_ = net_.total_traffic_bytes();
    const u32 P = static_cast<u32>(participants_.size());

    switch (desc_.kind) {
      case CollectiveKind::kAllreduce:
      case CollectiveKind::kReduce:
        host_data_ = workload::make_dense_data(P, elems_total_, desc_.dtype,
                                               seed);
        expected_ = core::reference_reduce(host_data_, op_);
        break;
      case CollectiveKind::kBroadcast: {
        Rng rng(seed);
        payload_ = core::TypedBuffer(desc_.dtype, elems_total_);
        payload_.fill_random(rng);
        identity_ = core::TypedBuffer(desc_.dtype, elems_per_pkt_);
        identity_.fill_identity(op_);
        break;
      }
      case CollectiveKind::kBarrier:
        break;
    }

    runs_.clear();
    runs_.resize(P);
    for (u32 h = 0; h < P; ++h) {
      HostRun& hr = runs_[h];
      hr.host = participants_[h];
      if (consumes_payload()) {
        hr.result = core::TypedBuffer(desc_.dtype, elems_total_);
      }
      hr.schedule = core::send_schedule(h, P, nb_, desc_.order);
      hr.block_done.assign(nb_, false);
      hr.sent.assign(nb_, false);
      hr.sent_ps.assign(nb_, 0);
      hr.retries.assign(nb_, 0);
      hr.host->set_reduce_handler(
          cfg_.id, [this, h](const core::Packet& pkt) { on_down(h, pkt); });
    }
    for (u32 h = 0; h < P; ++h) try_send(h);
    subscribe_faults();
    arm_watchdog();
  }

 private:
  struct HostRun {
    net::Host* host = nullptr;
    core::TypedBuffer result;
    std::vector<u32> schedule;
    std::size_t next = 0;
    u32 outstanding = 0;
    u64 blocks_done = 0;
    SimTime finish_ps = 0;
    std::vector<bool> block_done;
    std::vector<bool> sent;      ///< result still pending for a sent block
    std::vector<SimTime> sent_ps;  ///< last (re)transmission time per block
    std::vector<u32> retries;    ///< retransmissions per block this epoch
  };

  bool consumes_payload() const {
    return desc_.kind != CollectiveKind::kBarrier;
  }

  u32 block_elems(u32 b) const {
    if (elems_per_pkt_ == 0) return 0;  // barrier
    const u64 first = static_cast<u64>(b) * elems_per_pkt_;
    return static_cast<u32>(
        std::min<u64>(elems_per_pkt_, elems_total_ - first));
  }

  /// What host `h` feeds into the reduction for block `b`.
  const void* contribution(u32 h, u32 b) const {
    const u64 first = static_cast<u64>(b) * elems_per_pkt_;
    switch (desc_.kind) {
      case CollectiveKind::kAllreduce:
      case CollectiveKind::kReduce:
        return host_data_[h].at_byte(first);
      case CollectiveKind::kBroadcast:
        return h == desc_.root ? payload_.at_byte(first) : identity_.data();
      case CollectiveKind::kBarrier:
        return nullptr;
    }
    return nullptr;
  }

  void send_block(u32 h, u32 b, u16 extra_flags) {
    HostRun& hr = runs_[h];
    core::Packet p = core::make_dense_packet(
        cfg_.id, b, tree_.host_child_index[hr.host->host_index()],
        contribution(h, b), block_elems(b), desc_.dtype);
    p.hdr.flags |= extra_flags;
    net::NetPacket np;
    np.kind = net::PacketKind::kReduceUp;
    np.allreduce_id = cfg_.id;
    np.wire_bytes = p.wire_bytes();
    np.reduce = std::make_shared<const core::Packet>(std::move(p));
    hr.host->send(std::move(np));
  }

  void try_send(u32 h) {
    HostRun& hr = runs_[h];
    while (hr.next < hr.schedule.size()) {
      const u32 b = hr.schedule[hr.next];
      // After a recovery restart the schedule replays from the top: blocks
      // this host already holds results for are re-contributed (the fresh
      // engines need every child's input) but consume no window slot and
      // await no multicast.
      const bool need_result = !hr.block_done[b];
      if (need_result && hr.outstanding >= window_) break;
      hr.next += 1;
      if (need_result) {
        hr.outstanding += 1;
        hr.sent[b] = true;
        hr.sent_ps[b] = net_.sim().now();
      }
      send_block(h, b, 0);
    }
  }

  void on_down(u32 h, const core::Packet& pkt) {
    HostRun& me = runs_[h];
    const u32 b = pkt.hdr.block_id;
    FLARE_ASSERT(b < nb_);
    if (me.block_done[b]) return;  // duplicated multicast replica
    me.block_done[b] = true;
    FLARE_ASSERT(pkt.hdr.elem_count == block_elems(b));
    if (consumes_payload()) {
      const u64 first = static_cast<u64>(b) * elems_per_pkt_;
      std::memcpy(me.result.at_byte(first), pkt.payload.data(),
                  pkt.payload.size());
    }
    me.blocks_done += 1;
    me.outstanding -= 1;
    if (me.blocks_done == nb_) {
      me.finish_ps = net_.sim().now();
      hosts_done_ += 1;
    }
    try_send(h);
    if (hosts_done_ == runs_.size() && !finished_) {
      finished_ = true;
      // Finalize off this packet's call stack: by the time every host
      // holds every block, all switch-side events of this collective have
      // run (host delivery is causally last on each path), so releasing or
      // resetting switch state afterwards is race-free.
      net_.sim().schedule_after(0, [this] { finalize(); });
    }
  }

  // ------------------------------------------------- fault tolerance ----

  void subscribe_faults() {
    if (listening_ || timeout_ps_ == 0) return;
    std::weak_ptr<char> w = alive_;
    fault_listener_ =
        net_.add_fault_listener([this, w](const net::FaultNotice& notice) {
          if (w.expired()) return;
          on_fault(notice);
        });
    listening_ = true;
  }

  void on_fault(const net::FaultNotice&) {
    if (finished_ || state_ == nullptr || ring_ != nullptr) return;
    if (installed_ && tree_alive(net_, tree_)) return;  // tree unaffected
    // React off the notifier's stack: the notice fires mid-event (possibly
    // inside a Link::send) and recovery tears switch state down.
    std::weak_ptr<char> w = alive_;
    net_.sim().schedule_after(0, [this, w] {
      if (w.expired()) return;
      if (finished_ || state_ == nullptr || ring_ != nullptr) return;
      if (installed_ && tree_alive(net_, tree_)) return;
      recover(/*force=*/false);
    });
  }

  void arm_watchdog() {
    if (timeout_ps_ == 0 || watchdog_armed_) return;
    watchdog_armed_ = true;
    std::weak_ptr<char> w = alive_;
    net_.sim().schedule_after(timeout_ps_, [this, w] {
      if (w.expired()) return;
      watchdog_armed_ = false;
      on_watchdog();
    });
  }

  void on_watchdog() {
    if (finished_ || state_ == nullptr || ring_ != nullptr) return;
    const SimTime now = net_.sim().now();
    bool escalate = false;
    for (u32 h = 0; h < runs_.size(); ++h) {
      HostRun& hr = runs_[h];
      for (u32 b = 0; b < nb_; ++b) {
        if (!hr.sent[b] || hr.block_done[b]) continue;
        // Exponential backoff: each retry doubles the wait.  Without it a
        // full-message resend (serialization time > timeout) can outlast
        // the timer, triggering a self-sustaining retransmission storm
        // that congests the access links faster than they drain.
        const u32 shift = std::min<u32>(hr.retries[b], 6);
        if (now - hr.sent_ps[b] < (timeout_ps_ << shift)) continue;
        if (hr.retries[b] >= max_retry_) {
          escalate = true;  // retransmission is not healing this block
          continue;
        }
        hr.retries[b] += 1;
        retransmits_ += 1;
        hr.sent_ps[b] = now;
        send_block(h, b, core::kFlagRetransmit);
      }
    }
    if (escalate) {
      recover(/*force=*/true);
      if (finished_ || state_ == nullptr || ring_ != nullptr) return;
    }
    arm_watchdog();
  }

  /// Uninstalls whatever remains of the dead tree and reinstalls on the
  /// surviving fabric under a fresh collective id (stale in-flight packets
  /// of the old id drop harmlessly at switches and hosts).
  bool try_reinstall() {
    release_install();
    cfg_.id = manager_.next_id();
    InstallReport report = manager_.install_with_retry(
        participants_, cfg_, resolved_switch_service_bps(desc_, false));
    if (!report) return false;
    tree_ = std::move(*report);
    installed_ = true;
    recoveries_ += 1;
    return true;
  }

  /// Tree declared dead.  `force` skips the liveness check — used when the
  /// tree LOOKS healthy but progress has stopped (e.g. a switch restarted
  /// and lost its engines without the tree failing a link test).
  void recover(bool force) {
    if (finished_ || state_ == nullptr || ring_ != nullptr) return;
    if (!force && installed_ && tree_alive(net_, tree_)) return;
    if (try_reinstall()) {
      recover_waits_ = 0;
      restart_iteration();
      return;
    }
    if (desc_.kind == CollectiveKind::kAllreduce) {
      fallback_to_ring();
      return;
    }
    // Reduce/broadcast/barrier have no host-ring equivalent here: wait for
    // the fabric to heal (repairs also notify, this is the backstop poll).
    // Bounded: a fault that is never repaired must surface as a FAILED
    // result, not hang the calendar forever.
    if (recover_waits_ >= kMaxRecoverWaits) {
      give_up();
      return;
    }
    recover_waits_ += 1;
    std::weak_ptr<char> w = alive_;
    net_.sim().schedule_after(timeout_ps_, [this, w] {
      if (w.expired()) return;
      recover(/*force=*/false);
    });
  }

  /// Permanent fault: no viable tree appeared within the retry budget.
  /// Publish a failed result so run()/start() callers observe the outage
  /// instead of spinning the calendar forever.
  void give_up() {
    release_install();
    CollectiveResult res;
    res.ok = false;
    res.retransmits = retransmits_;
    res.recoveries = recoveries_;
    res.migrations = migrations_iter_;
    finished_ = true;
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  /// Replays the iteration against a freshly installed tree: engines are
  /// new, so every host re-contributes every block; already-delivered
  /// results are kept (their multicast duplicates are dropped on arrival).
  void restart_iteration() {
    for (u32 h = 0; h < runs_.size(); ++h) {
      HostRun& hr = runs_[h];
      hr.host->set_reduce_handler(
          cfg_.id, [this, h](const core::Packet& pkt) { on_down(h, pkt); });
      hr.next = 0;
      hr.outstanding = 0;
      hr.sent.assign(nb_, false);
      hr.sent_ps.assign(nb_, 0);
      hr.retries.assign(nb_, 0);
    }
    for (u32 h = 0; h < runs_.size(); ++h) try_send(h);
    arm_watchdog();
  }

  void prepare_ring_fallback() {
    release_install();
    FLARE_ASSERT_MSG(desc_.kind == CollectiveKind::kAllreduce,
                     "only allreduce can fall back to the host ring");
    CollectiveOptions rdesc = desc_;
    rdesc.algorithm = Algorithm::kHostRing;
    ring_ = std::make_unique<RingOp>(net_, participants_, rdesc);
  }

  /// Wires a ring iteration whose completion publishes THIS op's result.
  void start_ring_iteration(u64 seed) {
    ring_state_ = std::make_shared<OpState>();
    std::weak_ptr<char> w = alive_;
    ring_state_->on_complete = [this, w](const CollectiveResult&) {
      if (w.expired()) return;
      on_ring_done();
    };
    ring_->begin(seed, ring_state_);
  }

  void begin_ring_iteration(u64 seed, std::shared_ptr<OpState> state) {
    state_ = std::move(state);
    complete_ = false;
    finished_ = false;
    start_ring_iteration(seed);
  }

  /// Mid-iteration fallback: no viable tree remains.  The ring recomputes
  /// the same seeded inputs, so the published result is bit-for-bit what
  /// the in-network path would have produced for exact dtypes.
  void fallback_to_ring() {
    prepare_ring_fallback();
    start_ring_iteration(seed_);
  }

  void on_ring_done() {
    CollectiveResult res = ring_state_->result;
    res.fell_back = true;
    res.retransmits += retransmits_;
    res.recoveries = recoveries_;
    res.migrations = migrations_iter_;
    finished_ = true;
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  /// Persistent re-run upkeep: reset healthy engines, transparently
  /// reinstall a damaged tree, or probe a healed fabric to leave ring
  /// fallback mode.
  void refresh_persistent_install() {
    if (ring_ != nullptr) {
      if (timeout_ps_ > 0 && try_reinstall()) ring_.reset();
      return;
    }
    bool healthy = installed_;
    if (healthy && timeout_ps_ > 0) healthy = tree_alive(net_, tree_);
    if (healthy) {
      for (const TreeSwitchEntry& e : tree_.switches) {
        if (!e.sw->reset_reduce(cfg_.id)) {
          healthy = false;  // a switch restarted and lost the engines
          break;
        }
      }
    }
    if (healthy) return;
    FLARE_ASSERT_MSG(timeout_ps_ > 0,
                     "persistent engine vanished from the switch");
    if (!try_reinstall() && desc_.kind == CollectiveKind::kAllreduce) {
      prepare_ring_fallback();
    }
    // Otherwise proceed uninstalled: sends blackhole and the watchdog
    // escalates into recover(), which retries until the fabric heals.
  }

  // ---------------------------------------------- congestion adaptation --

  /// Iteration-boundary migration check (Canary's dynamic trees): when the
  /// installed tree's links run hot AND a sufficiently cheaper embedding
  /// exists, move there via the fresh-id reinstall path.  Deterministic:
  /// every input (monitor sample, costs, candidate order) is a pure
  /// function of the calendar state at this instant.
  void maybe_migrate() {
    if (monitor_ == nullptr || desc_.migrate_above <= 0.0 || !installed_ ||
        ring_ != nullptr) {
      return;
    }
    // Completion-time watch — the PRIMARY trigger, as in Canary: only an
    // iteration that actually regressed justifies control work.  This gate
    // is mandatory because the EWMA alone cannot be trusted here: the
    // session's OWN traffic makes whatever tree it runs on look hot, and
    // acting on that signal would make every session flee itself forever.
    // migrate_slowdown <= 1 checks on ANY regression; on a quiet fabric
    // iterations repeat bit for bit, so equality never trips it.
    const f64 slack = std::max(1.0, desc_.migrate_slowdown);
    if (best_iter_ps_ == 0 ||
        static_cast<f64>(last_iter_ps_) <=
            static_cast<f64>(best_iter_ps_) * slack) {
      return;
    }
    monitor_->sample();  // fresh snapshot at the decision point
    const f64 cur_hot = tree_max_congestion(*monitor_, tree_);
    if (cur_hot < desc_.migrate_above) return;
    std::optional<ReductionTree> best;
    for (net::Switch* candidate : net_.switches()) {
      auto tree = manager_.compute_tree(participants_, candidate->id());
      if (tree && (!best || tree->cost < best->cost)) best = std::move(tree);
    }
    // Hysteresis on the WORST edge, not the total cost: edges every
    // candidate must cross (the participants' access links, self-heated by
    // the session's own traffic) cancel out of a max and would dilute a
    // sum — a migration must actually shed the hottest link, or the slow
    // iteration was caused by congestion no tree can route around.
    if (!best || tree_max_congestion(*monitor_, *best) >
                     desc_.migrate_improvement * cur_hot) {
      return;
    }

    // Break-before-make on the PR-3 fresh-id path: stale in-flight packets
    // of the old id drop harmlessly at switches and hosts.  No calendar
    // event can run between the release and the install, so at minimum the
    // OLD embedding's slots are still free for the retry below.
    std::vector<net::NodeId> old_switches;
    for (const TreeSwitchEntry& e : tree_.switches) {
      old_switches.push_back(e.sw->id());
    }
    release_install();
    cfg_.id = manager_.next_id();
    const f64 bps = resolved_switch_service_bps(desc_, false);
    if (manager_.install(*best, cfg_, bps)) {
      tree_ = std::move(*best);
      installed_ = true;
    } else {
      // The target shares a full switch with other tenants: take the best
      // install that fits instead (cost-ordered retry).
      InstallReport rep =
          manager_.install_with_retry(participants_, cfg_, bps);
      if (!rep) {
        if (desc_.kind == CollectiveKind::kAllreduce) {
          prepare_ring_fallback();
        } else {
          FLARE_ASSERT_MSG(timeout_ps_ > 0,
                           "migration lost the tree with fault handling off");
        }
        return;
      }
      tree_ = std::move(*rep);
      installed_ = true;
    }
    // A migration is a tree that MOVED: when admission pushed the session
    // back onto its old embedding (the target's slots were taken), the
    // fresh-id churn is not a migration and must not count as one.
    std::vector<net::NodeId> new_switches;
    for (const TreeSwitchEntry& e : tree_.switches) {
      new_switches.push_back(e.sw->id());
    }
    if (new_switches != old_switches) {
      migrations_iter_ += 1;
      migrations_total_ += 1;
    }
  }

  void finalize() {
    const u32 P = static_cast<u32>(runs_.size());
    CollectiveResult res;
    res.blocks = nb_;
    res.in_network = true;
    f64 worst = 0.0, sum = 0.0;
    for (const HostRun& hr : runs_) {
      worst = std::max(worst, static_cast<f64>(hr.finish_ps - start_ps_));
      sum += static_cast<f64>(hr.finish_ps - start_ps_);
    }
    if (desc_.kind == CollectiveKind::kReduce) {
      // Only the destination consumes the result; its delivery time is the
      // reduce latency even though the shared multicast reaches everyone.
      worst = static_cast<f64>(runs_[desc_.root].finish_ps - start_ps_);
    }
    res.completion_seconds = worst / kPsPerSecond;
    res.mean_host_seconds = sum / P / kPsPerSecond;
    res.total_traffic_bytes = net_.total_traffic_bytes() - base_traffic_;
    res.total_packets = net_.total_packets();

    switch (desc_.kind) {
      case CollectiveKind::kAllreduce: {
        f64 err = 0.0;
        for (const HostRun& hr : runs_)
          err = std::max(err, hr.result.max_abs_diff(expected_));
        res.max_abs_err = err;
        res.ok = err <= core::reduce_tolerance(desc_.dtype, P);
        break;
      }
      case CollectiveKind::kReduce:
        res.max_abs_err = runs_[desc_.root].result.max_abs_diff(expected_);
        res.ok = res.max_abs_err <= core::reduce_tolerance(desc_.dtype, P);
        break;
      case CollectiveKind::kBroadcast: {
        f64 err = 0.0;
        for (const HostRun& hr : runs_)
          err = std::max(err, hr.result.max_abs_diff(payload_));
        res.max_abs_err = err;
        res.ok = err <= (core::dtype_is_float(desc_.dtype) ? 1e-4 : 0.0);
        break;
      }
      case CollectiveKind::kBarrier:
        res.ok = true;  // finalize fires only once every host is released
        break;
    }

    for (const TreeSwitchEntry& e : tree_.switches) {
      const net::ReduceRole* role = e.sw->role(cfg_.id);
      if (role != nullptr && role->engine != nullptr) {
        res.switch_working_mem_hwm = std::max(
            res.switch_working_mem_hwm, role->engine->pool().high_water());
      }
    }
    res.retransmits = retransmits_;
    res.recoveries = recoveries_;
    res.migrations = migrations_iter_;
    // Completion-time watch feeding the next iteration's migration check.
    last_iter_ps_ = static_cast<SimTime>(worst);
    if (best_iter_ps_ == 0 || last_iter_ps_ < best_iter_ps_) {
      best_iter_ps_ = last_iter_ps_;
    }

    if (owns_install_) release_install();
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  net::Network& net_;
  NetworkManager& manager_;
  const std::vector<net::Host*>& participants_;
  CollectiveOptions desc_;
  core::AllreduceConfig cfg_;
  ReductionTree tree_;
  bool owns_install_;
  /// This op owns the install's lifetime in both modes (one-shot releases
  /// at finalize; persistent on PersistentCollective::release()); false
  /// only after release or while a fault left the op treeless.
  bool installed_ = true;
  core::ReduceOp op_;
  u64 elems_total_ = 0;
  u32 elems_per_pkt_ = 0;
  u32 nb_ = 0;
  u32 window_ = 0;
  u64 base_traffic_ = 0;
  SimTime start_ps_ = 0;
  std::vector<core::TypedBuffer> host_data_;
  core::TypedBuffer payload_;   ///< broadcast source vector
  core::TypedBuffer identity_;  ///< broadcast non-root contribution
  core::TypedBuffer expected_;
  std::vector<HostRun> runs_;
  u32 hosts_done_ = 0;
  bool finished_ = false;
  bool first_begin_ = true;

  // --- fault tolerance ---
  /// Heal-wait budget for kinds with no host fallback: ~64 timeout periods
  /// of continuous no-viable-tree before the op publishes a failed result.
  static constexpr u32 kMaxRecoverWaits = 64;
  SimTime timeout_ps_ = 0;
  u32 max_retry_ = 4;
  u32 recover_waits_ = 0;
  /// Outlives-`this` guard for watchdog/listener events on the calendar.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  u64 fault_listener_ = 0;
  bool listening_ = false;
  bool watchdog_armed_ = false;
  u64 seed_ = 0;
  u64 retransmits_ = 0;
  u32 recoveries_ = 0;

  // --- congestion adaptation ---
  net::CongestionMonitor* monitor_ = nullptr;
  u32 migrations_iter_ = 0;   ///< while preparing the CURRENT iteration
  u32 migrations_total_ = 0;  ///< over the op's lifetime
  SimTime last_iter_ps_ = 0;  ///< completion of the previous iteration
  SimTime best_iter_ps_ = 0;  ///< fastest iteration so far

  /// Host-ring fallback data plane once no viable tree remains.
  std::unique_ptr<RingOp> ring_;
  std::shared_ptr<OpState> ring_state_;
};

}  // namespace detail

// ===================================================== CollectiveHandle ===

const CollectiveResult& CollectiveHandle::result() const {
  FLARE_ASSERT_MSG(done(), "result() before the collective completed");
  return state_->result;
}

// ================================================= PersistentCollective ===

PersistentCollective::PersistentCollective() = default;

PersistentCollective::PersistentCollective(
    PersistentCollective&& other) noexcept {
  *this = std::move(other);
}

PersistentCollective& PersistentCollective::operator=(
    PersistentCollective&& other) noexcept {
  if (this != &other) {
    release();
    comm_ = std::exchange(other.comm_, nullptr);
    desc_ = std::move(other.desc_);
    cfg_ = other.cfg_;
    report_ = std::move(other.report_);
    op_ = std::move(other.op_);
    host_ring_ = other.host_ring_;
    iterations_ = other.iterations_;
  }
  return *this;
}

PersistentCollective::~PersistentCollective() { release(); }

bool PersistentCollective::in_network() const {
  return op_ != nullptr && op_->current_tree() != nullptr;
}

const ReductionTree& PersistentCollective::tree() const {
  const ReductionTree* live =
      op_ != nullptr ? op_->current_tree() : nullptr;
  FLARE_ASSERT_MSG(live != nullptr,
                   "tree() on a host-ring persistent (no installed tree)");
  return *live;
}

u32 PersistentCollective::migrations() const {
  return op_ != nullptr ? op_->migrations() : 0;
}

void PersistentCollective::release() {
  if (op_ != nullptr) op_->release_install();
  op_.reset();
  report_.tree.reset();
  comm_ = nullptr;
}

CollectiveHandle PersistentCollective::start(CompletionFn on_complete) {
  FLARE_ASSERT_MSG(ok(), "start() on a rejected persistent collective");
  auto state = std::make_shared<detail::OpState>();
  state->on_complete = std::move(on_complete);
  CollectiveHandle handle(state);
  // Install-once / run-many: the op resets per-iteration engine state on
  // every tree switch (and transparently reinstalls after a fabric fault)
  // inside begin(); the admission slot and tree roles otherwise stay put.
  op_->begin(desc_.seed + iterations_, std::move(state));
  iterations_ += 1;
  return handle;
}

CollectiveResult PersistentCollective::run() {
  FLARE_ASSERT_MSG(comm_ != nullptr, "run() on a released collective");
  CollectiveHandle handle = start({});
  comm_->network().sim().run();
  FLARE_ASSERT_MSG(handle.done(),
                   "calendar drained without completing the collective");
  return handle.result();
}

// ======================================================== Communicator ====

Communicator::Communicator(net::Network& net,
                           std::vector<net::Host*> participants,
                           CommunicatorConfig cfg)
    : net_(net), participants_(std::move(participants)),
      cfg_(std::move(cfg)) {
  FLARE_ASSERT_MSG(!participants_.empty(),
                   "a communicator needs at least one participant");
  if (cfg_.manager != nullptr) {
    manager_ = cfg_.manager;
  } else {
    owned_manager_ = std::make_unique<NetworkManager>(net_);
    manager_ = owned_manager_.get();
  }
  if (cfg_.monitor != nullptr && owned_manager_ != nullptr) {
    // Congestion-aware embedding: the monitor's edge costs drive the
    // manager's tree search.  Installed on the PRIVATE manager only — its
    // lifetime ends with this session, so the captured monitor pointer
    // can never dangle into other sessions.  A shared manager keeps
    // whatever provider its owner (e.g. the service layer) set.
    net::CongestionMonitor* monitor = cfg_.monitor;
    manager_->set_link_cost([monitor](net::NodeId node, u32 port) {
      return monitor->edge_cost(node, port);
    });
  }
}

Communicator::~Communicator() = default;

Algorithm Communicator::resolve_algorithm(
    const CollectiveOptions& desc) const {
  if (desc.algorithm != Algorithm::kAuto) return desc.algorithm;
  if (desc.sparse.pairs != nullptr) return Algorithm::kFlareSparse;
  return Algorithm::kFlareDense;
}

core::AllreduceConfig Communicator::make_config(
    const CollectiveOptions& desc) const {
  core::AllreduceConfig cfg;
  cfg.id = manager_->next_id();
  cfg.dtype = desc.dtype;
  const u32 esize = core::dtype_size(desc.dtype);
  switch (desc.kind) {
    case CollectiveKind::kAllreduce:
    case CollectiveKind::kReduce: {
      cfg.op = core::ReduceOp(desc.op);
      FLARE_ASSERT(desc.packet_payload >= esize);
      cfg.elems_per_packet =
          static_cast<u32>(desc.packet_payload / esize);
      cfg.reproducible = desc.reproducible;
      if (desc.auto_policy) {
        const core::PolicyChoice choice =
            core::select_policy(desc.data_bytes, desc.reproducible);
        cfg.policy = choice.policy;
        cfg.num_buffers = choice.num_buffers;
      } else {
        cfg.policy =
            desc.reproducible ? core::AggPolicy::kTree : desc.policy;
        cfg.num_buffers = 1;
      }
      break;
    }
    case CollectiveKind::kBroadcast:
      cfg.op = core::ReduceOp(core::OpKind::kSum);
      FLARE_ASSERT(desc.packet_payload >= esize);
      cfg.elems_per_packet =
          static_cast<u32>(desc.packet_payload / esize);
      cfg.policy = core::AggPolicy::kTree;
      break;
    case CollectiveKind::kBarrier:
      cfg.dtype = core::DType::kInt32;
      cfg.elems_per_packet = 0;  // 0-byte blocks (Section 8)
      cfg.policy = core::AggPolicy::kSingleBuffer;
      break;
  }
  return cfg;
}

InstallReport Communicator::install(const CollectiveOptions& desc,
                                    const core::AllreduceConfig& cfg) {
  // Placement decisions read the fabric as it is NOW, not as it was at the
  // monitor's last scheduled sample.
  if (cfg_.monitor != nullptr) cfg_.monitor->sample();
  const f64 bps = resolved_switch_service_bps(desc, /*sparse=*/false);
  if (!cfg_.roots.empty()) {
    return manager_->install_with_roots(participants_, cfg, bps, cfg_.roots,
                                        cfg_.cache);
  }
  return manager_->install_with_retry(participants_, cfg, bps);
}

void Communicator::reap() {
  std::erase_if(ops_, [](const std::unique_ptr<detail::OpBase>& op) {
    return op->reapable();
  });
}

CollectiveHandle Communicator::start(const CollectiveOptions& desc,
                                     CompletionFn on_complete) {
  reap();
  if (desc.kind == CollectiveKind::kReduce ||
      desc.kind == CollectiveKind::kBroadcast) {
    FLARE_ASSERT_MSG(desc.root < participants_.size(),
                     "root must index the participant group");
  }
  const Algorithm alg = resolve_algorithm(desc);
  switch (alg) {
    case Algorithm::kFlareDense: {
      const core::AllreduceConfig cfg = make_config(desc);
      InstallReport report = install(desc, cfg);
      if (!report) {
        if (desc.algorithm == Algorithm::kAuto &&
            desc.kind == CollectiveKind::kAllreduce) {
          // The paper's admission policy: fall back to the host ring.
          return start_ring(desc, std::move(on_complete));
        }
        // Explicit in-network request rejected by admission: report
        // failure through an immediately-complete handle.
        auto state = std::make_shared<detail::OpState>();
        state->done = true;
        if (on_complete) on_complete(state->result);
        return CollectiveHandle(std::move(state));
      }
      auto op = std::make_unique<detail::InNetOp>(
          net_, *manager_, participants_, desc, cfg, std::move(*report),
          /*owns_install=*/true, cfg_.monitor);
      auto state = std::make_shared<detail::OpState>();
      state->on_complete = std::move(on_complete);
      CollectiveHandle handle(state);
      detail::InNetOp* raw = op.get();
      ops_.push_back(std::move(op));
      raw->begin(desc.seed, std::move(state));
      return handle;
    }
    case Algorithm::kHostRing:
      return start_ring(desc, std::move(on_complete));
    case Algorithm::kFlareSparse:
    case Algorithm::kSparcml:
      FLARE_ASSERT_MSG(false,
                       "sparse algorithms are blocking-only: use run()");
      return {};
    case Algorithm::kAuto:
      break;  // resolved above
  }
  FLARE_UNREACHABLE("unresolved algorithm");
}

CollectiveHandle Communicator::start_ring(const CollectiveOptions& desc,
                                          CompletionFn on_complete) {
  FLARE_ASSERT_MSG(desc.kind == CollectiveKind::kAllreduce,
                   "the host ring serves allreduce only");
  auto op = std::make_unique<detail::RingOp>(net_, participants_, desc);
  auto state = std::make_shared<detail::OpState>();
  state->on_complete = std::move(on_complete);
  CollectiveHandle handle(state);
  detail::RingOp* raw = op.get();
  ops_.push_back(std::move(op));
  raw->begin(desc.seed, std::move(state));
  return handle;
}

CollectiveResult Communicator::run(const CollectiveOptions& desc) {
  const Algorithm alg = resolve_algorithm(desc);
  if (alg == Algorithm::kFlareSparse || alg == Algorithm::kSparcml) {
    return run_sparse(desc, alg);
  }
  CollectiveHandle handle = start(desc, {});
  net_.sim().run();
  FLARE_ASSERT_MSG(handle.done(),
                   "calendar drained without completing the collective");
  return handle.result();
}

CollectiveResult Communicator::run_sparse(const CollectiveOptions& desc,
                                          Algorithm alg) {
  FLARE_ASSERT_MSG(desc.kind == CollectiveKind::kAllreduce,
                   "sparse engines serve allreduce only");
  FLARE_ASSERT_MSG(desc.sparse.pairs != nullptr,
                   "sparse collective without a sparse workload");
  if (alg == Algorithm::kFlareSparse) {
    FlareSparseOptions opt;
    opt.dtype = desc.dtype;
    opt.packet_payload = desc.packet_payload;
    opt.window_blocks = desc.window_blocks;
    opt.order = desc.order;
    opt.hash_capacity_pairs = desc.hash_capacity_pairs;
    opt.spill_capacity_pairs = desc.spill_capacity_pairs;
    opt.switch_service_bps =
        resolved_switch_service_bps(desc, /*sparse=*/true);
    CollectiveResult res =
        detail::flare_sparse_oneshot(net_, participants_, desc.sparse, opt);
    res.in_network = true;
    return res;
  }
  // SparCML on the same workload description: blocks flattened to global
  // indices (the SparCML baseline reduces one global sparse vector).
  SparcmlOptions opt;
  opt.total_elems =
      static_cast<u64>(desc.sparse.block_span) * desc.sparse.num_blocks;
  opt.dtype = desc.dtype;
  opt.mtu_bytes = desc.mtu_bytes;
  const SparseWorkload& w = desc.sparse;
  auto provider = [&w](u32 h) {
    std::vector<core::SparsePair> all;
    for (u32 b = 0; b < w.num_blocks; ++b) {
      for (core::SparsePair sp : w.pairs(h, b)) {
        sp.index += b * w.block_span;
        all.push_back(sp);
      }
    }
    return all;
  };
  return detail::sparcml_oneshot(net_, participants_, provider, opt);
}

PersistentCollective Communicator::persistent(const CollectiveOptions& desc) {
  if (desc.kind == CollectiveKind::kReduce ||
      desc.kind == CollectiveKind::kBroadcast) {
    FLARE_ASSERT_MSG(desc.root < participants_.size(),
                     "root must index the participant group");
  }
  PersistentCollective pc;
  pc.comm_ = this;
  pc.desc_ = desc;
  const Algorithm alg = resolve_algorithm(desc);
  if (alg == Algorithm::kHostRing) {
    FLARE_ASSERT_MSG(desc.kind == CollectiveKind::kAllreduce,
                     "the host ring serves allreduce only");
    pc.host_ring_ = true;
    pc.op_ = std::make_unique<detail::RingOp>(net_, participants_, desc);
    return pc;
  }
  FLARE_ASSERT_MSG(alg == Algorithm::kFlareDense,
                   "persistent requests serve the dense engines");
  pc.cfg_ = make_config(desc);
  pc.report_ = install(desc, pc.cfg_);
  if (!pc.report_) {
    if (desc.algorithm == Algorithm::kAuto &&
        desc.kind == CollectiveKind::kAllreduce) {
      // Admission rejected: a persistent host ring needs no switch state.
      pc.host_ring_ = true;
      pc.op_ = std::make_unique<detail::RingOp>(net_, participants_, desc);
    }
    return pc;  // !ok() when no fallback applies
  }
  // The op keeps its own copy of the tree; the report's copy backs
  // tree()/release() and survives moves of the PersistentCollective.
  pc.op_ = std::make_unique<detail::InNetOp>(
      net_, *manager_, participants_, desc, pc.cfg_, *pc.report_,
      /*owns_install=*/false, cfg_.monitor);
  return pc;
}

}  // namespace flare::coll
