#include "coll/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "coll/flare_sparse.hpp"
#include "coll/sparcml.hpp"
#include "coll/tree_cache.hpp"
#include "core/policy.hpp"
#include "core/staggered.hpp"
#include "workload/generators.hpp"

namespace flare::coll {

std::string_view collective_kind_name(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::kAllreduce: return "allreduce";
    case CollectiveKind::kReduce: return "reduce";
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kBarrier: return "barrier";
  }
  return "?";
}

std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kAuto: return "auto";
    case Algorithm::kFlareDense: return "flare-dense";
    case Algorithm::kFlareSparse: return "flare-sparse";
    case Algorithm::kHostRing: return "host-ring";
    case Algorithm::kSparcml: return "sparcml";
  }
  return "?";
}

namespace detail {

class OpBase {
 public:
  virtual ~OpBase() = default;
  OpBase(const OpBase&) = delete;
  OpBase& operator=(const OpBase&) = delete;

  /// Kicks off one iteration: (re)wires host handlers, stages data and
  /// enqueues the first sends on the calendar.  `state` receives the
  /// result; its on_complete (if any) fires at completion.
  virtual void begin(u64 seed, std::shared_ptr<OpState> state) = 0;

  /// True once finalize ran and (for one-shot ops) resources are released.
  bool reapable() const { return complete_; }

 protected:
  OpBase() = default;

  /// Publishes the result and invokes the completion callback.  MUST be
  /// the last thing a finalize path does: the callback may destroy the op
  /// (service jobs self-erase), so no member access is allowed after it.
  void publish(CollectiveResult&& res) {
    auto st = std::move(state_);
    st->result = std::move(res);
    st->done = true;
    auto cb = std::move(st->on_complete);
    if (cb) cb(st->result);  // 'this' may be destroyed here
  }

  std::shared_ptr<OpState> state_;
  bool complete_ = false;
};

// ========================================================== in-network ====
// One event-driven driver for ALL in-network dense kinds (Section 8: the
// extension collectives fall out of the allreduce machinery):
//
//   * allreduce — every host contributes its vector and consumes the
//     aggregated multicast;
//   * reduce    — same protocol; only the destination's buffer is the
//     result (the multicast down is shared, as in the paper);
//   * broadcast — the root contributes its data, everyone else the
//     operator identity; the "sum" coming back is the root's vector;
//   * barrier   — one 0-byte block; a host leaves the barrier when the
//     root's empty result multicast reaches it.

class InNetOp final : public OpBase {
 public:
  InNetOp(net::Network& net, NetworkManager& manager,
          const std::vector<net::Host*>& participants,
          const CollectiveOptions& desc, core::AllreduceConfig cfg,
          ReductionTree tree, bool owns_install)
      : net_(net), manager_(manager), participants_(participants),
        desc_(desc), cfg_(cfg), tree_(std::move(tree)),
        owns_install_(owns_install), installed_(owns_install),
        op_(cfg.op) {
    const u32 esize = core::dtype_size(desc_.dtype);
    if (desc_.kind == CollectiveKind::kBarrier) {
      elems_total_ = 0;
      elems_per_pkt_ = 0;
      nb_ = 1;
    } else {
      elems_total_ = std::max<u64>(1, desc_.data_bytes / esize);
      elems_per_pkt_ = cfg_.elems_per_packet;
      FLARE_ASSERT(elems_per_pkt_ >= 1);
      nb_ = static_cast<u32>((elems_total_ + elems_per_pkt_ - 1) /
                             elems_per_pkt_);
    }
    // Staggered sending keeps every block of the operation in flight
    // (Section 5); windowed flow control applies to aligned sending.
    window_ = desc_.order == core::SendOrder::kStaggered
                  ? std::max(desc_.window_blocks, nb_)
                  : std::max(1u, desc_.window_blocks);
  }

  ~InNetOp() override {
    // Abandoned mid-flight (communicator destroyed): release switch slots
    // and host handlers so the fabric is reusable.
    if (installed_) {
      for (net::Host* host : participants_) {
        host->clear_reduce_handler(cfg_.id);
      }
      manager_.uninstall(tree_, cfg_.id);
    }
  }

  void begin(u64 seed, std::shared_ptr<OpState> state) override {
    FLARE_ASSERT_MSG(state_ == nullptr,
                     "previous iteration of this collective still running");
    state_ = std::move(state);
    complete_ = false;
    finished_ = false;
    hosts_done_ = 0;
    start_ps_ = net_.sim().now();
    base_traffic_ = net_.total_traffic_bytes();
    const u32 P = static_cast<u32>(participants_.size());

    switch (desc_.kind) {
      case CollectiveKind::kAllreduce:
      case CollectiveKind::kReduce:
        host_data_ = workload::make_dense_data(P, elems_total_, desc_.dtype,
                                               seed);
        expected_ = core::reference_reduce(host_data_, op_);
        break;
      case CollectiveKind::kBroadcast: {
        Rng rng(seed);
        payload_ = core::TypedBuffer(desc_.dtype, elems_total_);
        payload_.fill_random(rng);
        identity_ = core::TypedBuffer(desc_.dtype, elems_per_pkt_);
        identity_.fill_identity(op_);
        break;
      }
      case CollectiveKind::kBarrier:
        break;
    }

    runs_.clear();
    runs_.resize(P);
    for (u32 h = 0; h < P; ++h) {
      HostRun& hr = runs_[h];
      hr.host = participants_[h];
      if (consumes_payload()) {
        hr.result = core::TypedBuffer(desc_.dtype, elems_total_);
      }
      hr.schedule = core::send_schedule(h, P, nb_, desc_.order);
      hr.block_done.assign(nb_, false);
      hr.host->set_reduce_handler(
          cfg_.id, [this, h](const core::Packet& pkt) { on_down(h, pkt); });
    }
    for (u32 h = 0; h < P; ++h) try_send(h);
  }

 private:
  struct HostRun {
    net::Host* host = nullptr;
    core::TypedBuffer result;
    std::vector<u32> schedule;
    std::size_t next = 0;
    u32 outstanding = 0;
    u64 blocks_done = 0;
    SimTime finish_ps = 0;
    std::vector<bool> block_done;
  };

  bool consumes_payload() const {
    return desc_.kind != CollectiveKind::kBarrier;
  }

  u32 block_elems(u32 b) const {
    if (elems_per_pkt_ == 0) return 0;  // barrier
    const u64 first = static_cast<u64>(b) * elems_per_pkt_;
    return static_cast<u32>(
        std::min<u64>(elems_per_pkt_, elems_total_ - first));
  }

  /// What host `h` feeds into the reduction for block `b`.
  const void* contribution(u32 h, u32 b) const {
    const u64 first = static_cast<u64>(b) * elems_per_pkt_;
    switch (desc_.kind) {
      case CollectiveKind::kAllreduce:
      case CollectiveKind::kReduce:
        return host_data_[h].at_byte(first);
      case CollectiveKind::kBroadcast:
        return h == desc_.root ? payload_.at_byte(first) : identity_.data();
      case CollectiveKind::kBarrier:
        return nullptr;
    }
    return nullptr;
  }

  void try_send(u32 h) {
    HostRun& hr = runs_[h];
    while (hr.outstanding < window_ && hr.next < hr.schedule.size()) {
      const u32 b = hr.schedule[hr.next++];
      core::Packet p = core::make_dense_packet(
          cfg_.id, b, tree_.host_child_index[hr.host->host_index()],
          contribution(h, b), block_elems(b), desc_.dtype);
      net::NetPacket np;
      np.kind = net::PacketKind::kReduceUp;
      np.allreduce_id = cfg_.id;
      np.wire_bytes = p.wire_bytes();
      np.reduce = std::make_shared<const core::Packet>(std::move(p));
      hr.outstanding += 1;
      hr.host->send(std::move(np));
    }
  }

  void on_down(u32 h, const core::Packet& pkt) {
    HostRun& me = runs_[h];
    const u32 b = pkt.hdr.block_id;
    FLARE_ASSERT(b < nb_);
    if (me.block_done[b]) return;  // duplicated multicast replica
    me.block_done[b] = true;
    FLARE_ASSERT(pkt.hdr.elem_count == block_elems(b));
    if (consumes_payload()) {
      const u64 first = static_cast<u64>(b) * elems_per_pkt_;
      std::memcpy(me.result.at_byte(first), pkt.payload.data(),
                  pkt.payload.size());
    }
    me.blocks_done += 1;
    me.outstanding -= 1;
    if (me.blocks_done == nb_) {
      me.finish_ps = net_.sim().now();
      hosts_done_ += 1;
    }
    try_send(h);
    if (hosts_done_ == runs_.size() && !finished_) {
      finished_ = true;
      // Finalize off this packet's call stack: by the time every host
      // holds every block, all switch-side events of this collective have
      // run (host delivery is causally last on each path), so releasing or
      // resetting switch state afterwards is race-free.
      net_.sim().schedule_after(0, [this] { finalize(); });
    }
  }

  void finalize() {
    const u32 P = static_cast<u32>(runs_.size());
    CollectiveResult res;
    res.blocks = nb_;
    res.in_network = true;
    f64 worst = 0.0, sum = 0.0;
    for (const HostRun& hr : runs_) {
      worst = std::max(worst, static_cast<f64>(hr.finish_ps - start_ps_));
      sum += static_cast<f64>(hr.finish_ps - start_ps_);
    }
    if (desc_.kind == CollectiveKind::kReduce) {
      // Only the destination consumes the result; its delivery time is the
      // reduce latency even though the shared multicast reaches everyone.
      worst = static_cast<f64>(runs_[desc_.root].finish_ps - start_ps_);
    }
    res.completion_seconds = worst / kPsPerSecond;
    res.mean_host_seconds = sum / P / kPsPerSecond;
    res.total_traffic_bytes = net_.total_traffic_bytes() - base_traffic_;
    res.total_packets = net_.total_packets();

    switch (desc_.kind) {
      case CollectiveKind::kAllreduce: {
        f64 err = 0.0;
        for (const HostRun& hr : runs_)
          err = std::max(err, hr.result.max_abs_diff(expected_));
        res.max_abs_err = err;
        res.ok = err <= core::reduce_tolerance(desc_.dtype, P);
        break;
      }
      case CollectiveKind::kReduce:
        res.max_abs_err = runs_[desc_.root].result.max_abs_diff(expected_);
        res.ok = res.max_abs_err <= core::reduce_tolerance(desc_.dtype, P);
        break;
      case CollectiveKind::kBroadcast: {
        f64 err = 0.0;
        for (const HostRun& hr : runs_)
          err = std::max(err, hr.result.max_abs_diff(payload_));
        res.max_abs_err = err;
        res.ok = err <= (core::dtype_is_float(desc_.dtype) ? 1e-4 : 0.0);
        break;
      }
      case CollectiveKind::kBarrier:
        res.ok = true;  // finalize fires only once every host is released
        break;
    }

    for (const TreeSwitchEntry& e : tree_.switches) {
      const net::ReduceRole* role = e.sw->role(cfg_.id);
      if (role != nullptr && role->engine != nullptr) {
        res.switch_working_mem_hwm = std::max(
            res.switch_working_mem_hwm, role->engine->pool().high_water());
      }
    }

    if (owns_install_) {
      for (net::Host* host : participants_) {
        host->clear_reduce_handler(cfg_.id);
      }
      manager_.uninstall(tree_, cfg_.id);
      installed_ = false;
    }
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  net::Network& net_;
  NetworkManager& manager_;
  const std::vector<net::Host*>& participants_;
  CollectiveOptions desc_;
  core::AllreduceConfig cfg_;
  ReductionTree tree_;
  bool owns_install_;
  /// One-shot ops own their install; cleared once finalize released it.
  /// Persistent installs are released by the PersistentCollective instead.
  bool installed_;
  core::ReduceOp op_;
  u64 elems_total_ = 0;
  u32 elems_per_pkt_ = 0;
  u32 nb_ = 0;
  u32 window_ = 0;
  u64 base_traffic_ = 0;
  SimTime start_ps_ = 0;
  std::vector<core::TypedBuffer> host_data_;
  core::TypedBuffer payload_;   ///< broadcast source vector
  core::TypedBuffer identity_;  ///< broadcast non-root contribution
  core::TypedBuffer expected_;
  std::vector<HostRun> runs_;
  u32 hosts_done_ = 0;
  bool finished_ = false;
};

// ======================================================== host ring =======
// Event-driven ring (Rabenseifner) allreduce over the same network: two
// phases of P-1 steps (scatter-reduce, then allgather).  Each op draws a
// fresh wire-protocol id and registers per-proto host handlers, so
// overlapping ring collectives over shared hosts never mix fragments.

class RingOp final : public OpBase {
 public:
  RingOp(net::Network& net, const std::vector<net::Host*>& participants,
         const CollectiveOptions& desc)
      : net_(net), participants_(participants), desc_(desc),
        proto_(0x40000000u + net.alloc_collective_id()), op_(desc.op) {
    dtype_ = desc_.dtype;
    esize_ = core::dtype_size(dtype_);
    elems_total_ = std::max<u64>(1, desc_.data_bytes / esize_);
    mtu_ = desc_.mtu_bytes;
    P_ = static_cast<u32>(participants_.size());
  }

  ~RingOp() override {
    if (handlers_set_) {
      for (net::Host* host : participants_) host->clear_proto_handler(proto_);
    }
  }

  void begin(u64 seed, std::shared_ptr<OpState> state) override {
    FLARE_ASSERT_MSG(state_ == nullptr,
                     "previous iteration of this collective still running");
    state_ = std::move(state);
    complete_ = false;
    finished_ = false;
    hosts_done_ = 0;
    start_ps_ = net_.sim().now();
    base_traffic_ = net_.total_traffic_bytes();

    auto host_data =
        workload::make_dense_data(P_, elems_total_, dtype_, seed);
    expected_ = core::reference_reduce(host_data, op_);

    runs_.clear();
    runs_.resize(P_);
    for (u32 h = 0; h < P_; ++h) {
      runs_[h].host = participants_[h];
      runs_[h].vec = std::move(host_data[h]);
      runs_[h].host->set_proto_handler(
          proto_, [this](const net::HostMsg& msg) { on_msg(msg); });
    }
    handlers_set_ = true;
    if (P_ == 1) {
      runs_[0].finish_ps = net_.sim().now();
      finished_ = true;
      net_.sim().schedule_after(0, [this] { finalize(); });
      return;
    }
    // Kick off: every host sends its own chunk h for scatter-reduce step 0.
    for (u32 h = 0; h < P_; ++h)
      send_chunk(h, h, Phase::kScatterReduce, 0);
  }

 private:
  enum class Phase : u8 { kScatterReduce, kAllGather, kDone };

  struct Partial {
    u32 frags = 0;
    std::shared_ptr<const core::TypedBuffer> data;
  };
  struct RHost {
    net::Host* host = nullptr;
    core::TypedBuffer vec;  ///< working vector (input, then result)
    Phase phase = Phase::kScatterReduce;
    u32 step = 0;
    SimTime finish_ps = 0;
    std::unordered_map<u32, Partial> inbox;
  };

  u64 chunk_begin(u32 c) const {
    const u64 base = elems_total_ / P_;
    const u64 rem = elems_total_ % P_;
    return static_cast<u64>(c) * base + std::min<u64>(c, rem);
  }
  u64 chunk_elems(u32 c) const {
    return chunk_begin(c + 1) - chunk_begin(c);
  }

  static u32 make_tag(Phase phase, u32 step) {
    return (phase == Phase::kAllGather ? 0x10000u : 0u) | step;
  }

  void send_chunk(u32 h, u32 c, Phase phase, u32 step) {
    RHost& hr = runs_[h];
    const u32 dst = (h + 1) % P_;
    const u64 elems = chunk_elems(c);
    const u64 bytes = elems * esize_;
    const u32 frags =
        std::max<u32>(1, static_cast<u32>((bytes + mtu_ - 1) / mtu_));
    auto snapshot = std::make_shared<core::TypedBuffer>(dtype_, elems);
    std::memcpy(snapshot->data(), hr.vec.at_byte(chunk_begin(c)), bytes);
    for (u32 f = 0; f < frags; ++f) {
      auto msg = std::make_shared<net::HostMsg>();
      msg->src_host = h;
      msg->dst_host = dst;  ///< job-local rank of the receiver
      msg->proto = proto_;
      msg->tag = make_tag(phase, step);
      msg->seq = f;
      msg->seq_count = frags;
      if (f + 1 == frags) msg->dense = snapshot;
      net::NetPacket np;
      np.kind = net::PacketKind::kHostMsg;
      np.dst_node = runs_[dst].host->id();
      // One flow per (op, ring edge): FIFO along one ECMP path.
      np.flow = (static_cast<u64>(proto_) << 16) | h;
      const u64 frag_bytes = std::min<u64>(mtu_, bytes - f * mtu_);
      np.wire_bytes = frag_bytes + core::kPacketWireOverhead;
      np.msg = std::move(msg);
      hr.host->send(std::move(np));
    }
  }

  void on_msg(const net::HostMsg& msg) {
    if (finished_) return;
    const u32 h = msg.dst_host;
    FLARE_ASSERT(h < P_);
    RHost& hr = runs_[h];
    Partial& partial = hr.inbox[msg.tag];
    partial.frags += 1;
    if (msg.dense) partial.data = msg.dense;
    if (partial.frags == msg.seq_count) advance(h);
  }

  void advance(u32 h) {
    RHost& hr = runs_[h];
    while (hr.phase != Phase::kDone) {
      const u32 tag = make_tag(hr.phase, hr.step);
      auto it = hr.inbox.find(tag);
      if (it == hr.inbox.end() || it->second.frags == 0 ||
          it->second.data == nullptr) {
        return;  // expected message not fully here yet
      }
      const Partial& partial = it->second;
      if (hr.phase == Phase::kScatterReduce) {
        const u32 c = (h + P_ - hr.step - 1) % P_;
        FLARE_ASSERT(partial.data->size() == chunk_elems(c));
        op_.apply(dtype_, hr.vec.at_byte(chunk_begin(c)),
                  partial.data->data(), chunk_elems(c));
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P_ - 1) {
          send_chunk(h, (h + P_ - hr.step) % P_, Phase::kScatterReduce,
                     hr.step);
        } else {
          hr.phase = Phase::kAllGather;
          hr.step = 0;
          send_chunk(h, (h + 1) % P_, Phase::kAllGather, 0);
        }
      } else {
        const u32 c = (h + P_ - hr.step) % P_;
        FLARE_ASSERT(partial.data->size() == chunk_elems(c));
        std::memcpy(hr.vec.at_byte(chunk_begin(c)), partial.data->data(),
                    chunk_elems(c) * esize_);
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P_ - 1) {
          send_chunk(h, c, Phase::kAllGather, hr.step);
        } else {
          hr.phase = Phase::kDone;
          hr.finish_ps = net_.sim().now();
          hosts_done_ += 1;
          if (hosts_done_ == P_ && !finished_) {
            finished_ = true;
            net_.sim().schedule_after(0, [this] { finalize(); });
          }
        }
      }
    }
  }

  void finalize() {
    CollectiveResult res;
    res.blocks = P_;
    res.in_network = false;
    f64 err = 0.0, worst = 0.0, sum = 0.0;
    for (const RHost& hr : runs_) {
      err = std::max(err, hr.vec.max_abs_diff(expected_));
      worst = std::max(worst, static_cast<f64>(hr.finish_ps - start_ps_));
      sum += static_cast<f64>(hr.finish_ps - start_ps_);
    }
    res.max_abs_err = err;
    res.ok = err <= core::reduce_tolerance(dtype_, P_);
    res.completion_seconds = worst / kPsPerSecond;
    res.mean_host_seconds = sum / P_ / kPsPerSecond;
    res.total_traffic_bytes = net_.total_traffic_bytes() - base_traffic_;
    res.total_packets = net_.total_packets();
    for (net::Host* host : participants_) host->clear_proto_handler(proto_);
    handlers_set_ = false;
    complete_ = true;
    publish(std::move(res));  // may destroy *this — nothing after
  }

  net::Network& net_;
  const std::vector<net::Host*>& participants_;
  CollectiveOptions desc_;
  u32 proto_;
  core::ReduceOp op_;
  core::DType dtype_ = core::DType::kFloat32;
  u32 esize_ = 4;
  u64 elems_total_ = 0;
  u64 mtu_ = 4096;
  u32 P_ = 0;
  u64 base_traffic_ = 0;
  SimTime start_ps_ = 0;
  bool handlers_set_ = false;
  core::TypedBuffer expected_;
  std::vector<RHost> runs_;
  u32 hosts_done_ = 0;
  bool finished_ = false;
};

}  // namespace detail

// ===================================================== CollectiveHandle ===

const CollectiveResult& CollectiveHandle::result() const {
  FLARE_ASSERT_MSG(done(), "result() before the collective completed");
  return state_->result;
}

// ================================================= PersistentCollective ===

PersistentCollective::PersistentCollective() = default;

PersistentCollective::PersistentCollective(
    PersistentCollective&& other) noexcept {
  *this = std::move(other);
}

PersistentCollective& PersistentCollective::operator=(
    PersistentCollective&& other) noexcept {
  if (this != &other) {
    release();
    comm_ = std::exchange(other.comm_, nullptr);
    desc_ = std::move(other.desc_);
    cfg_ = other.cfg_;
    report_ = std::move(other.report_);
    op_ = std::move(other.op_);
    host_ring_ = other.host_ring_;
    iterations_ = other.iterations_;
  }
  return *this;
}

PersistentCollective::~PersistentCollective() { release(); }

const ReductionTree& PersistentCollective::tree() const {
  FLARE_ASSERT_MSG(report_.has_value(),
                   "tree() on a host-ring persistent (no installed tree)");
  return *report_;
}

void PersistentCollective::release() {
  if (comm_ != nullptr && !host_ring_ && report_.has_value()) {
    for (net::Host* host : comm_->participants()) {
      host->clear_reduce_handler(cfg_.id);
    }
    comm_->manager().uninstall(*report_, cfg_.id);
    report_.tree.reset();
  }
  op_.reset();
  comm_ = nullptr;
}

CollectiveHandle PersistentCollective::start(CompletionFn on_complete) {
  FLARE_ASSERT_MSG(ok(), "start() on a rejected persistent collective");
  auto state = std::make_shared<detail::OpState>();
  state->on_complete = std::move(on_complete);
  if (!host_ring_ && iterations_ > 0) {
    // Install-once / run-many: clear per-iteration engine state on every
    // tree switch; the admission slot and tree roles stay put.
    for (const TreeSwitchEntry& e : report_->switches) {
      const bool found = e.sw->reset_reduce(cfg_.id);
      FLARE_ASSERT_MSG(found, "persistent engine vanished from the switch");
    }
  }
  CollectiveHandle handle(state);
  op_->begin(desc_.seed + iterations_, std::move(state));
  iterations_ += 1;
  return handle;
}

CollectiveResult PersistentCollective::run() {
  FLARE_ASSERT_MSG(comm_ != nullptr, "run() on a released collective");
  CollectiveHandle handle = start({});
  comm_->network().sim().run();
  FLARE_ASSERT_MSG(handle.done(),
                   "calendar drained without completing the collective");
  return handle.result();
}

// ======================================================== Communicator ====

Communicator::Communicator(net::Network& net,
                           std::vector<net::Host*> participants,
                           CommunicatorConfig cfg)
    : net_(net), participants_(std::move(participants)),
      cfg_(std::move(cfg)) {
  FLARE_ASSERT_MSG(!participants_.empty(),
                   "a communicator needs at least one participant");
  if (cfg_.manager != nullptr) {
    manager_ = cfg_.manager;
  } else {
    owned_manager_ = std::make_unique<NetworkManager>(net_);
    manager_ = owned_manager_.get();
  }
}

Communicator::~Communicator() = default;

Algorithm Communicator::resolve_algorithm(
    const CollectiveOptions& desc) const {
  if (desc.algorithm != Algorithm::kAuto) return desc.algorithm;
  if (desc.sparse.pairs != nullptr) return Algorithm::kFlareSparse;
  return Algorithm::kFlareDense;
}

core::AllreduceConfig Communicator::make_config(
    const CollectiveOptions& desc) const {
  core::AllreduceConfig cfg;
  cfg.id = manager_->next_id();
  cfg.dtype = desc.dtype;
  const u32 esize = core::dtype_size(desc.dtype);
  switch (desc.kind) {
    case CollectiveKind::kAllreduce:
    case CollectiveKind::kReduce: {
      cfg.op = core::ReduceOp(desc.op);
      FLARE_ASSERT(desc.packet_payload >= esize);
      cfg.elems_per_packet =
          static_cast<u32>(desc.packet_payload / esize);
      cfg.reproducible = desc.reproducible;
      if (desc.auto_policy) {
        const core::PolicyChoice choice =
            core::select_policy(desc.data_bytes, desc.reproducible);
        cfg.policy = choice.policy;
        cfg.num_buffers = choice.num_buffers;
      } else {
        cfg.policy =
            desc.reproducible ? core::AggPolicy::kTree : desc.policy;
        cfg.num_buffers = 1;
      }
      break;
    }
    case CollectiveKind::kBroadcast:
      cfg.op = core::ReduceOp(core::OpKind::kSum);
      FLARE_ASSERT(desc.packet_payload >= esize);
      cfg.elems_per_packet =
          static_cast<u32>(desc.packet_payload / esize);
      cfg.policy = core::AggPolicy::kTree;
      break;
    case CollectiveKind::kBarrier:
      cfg.dtype = core::DType::kInt32;
      cfg.elems_per_packet = 0;  // 0-byte blocks (Section 8)
      cfg.policy = core::AggPolicy::kSingleBuffer;
      break;
  }
  return cfg;
}

InstallReport Communicator::install(const CollectiveOptions& desc,
                                    const core::AllreduceConfig& cfg) {
  const f64 bps = resolved_switch_service_bps(desc, /*sparse=*/false);
  if (!cfg_.roots.empty()) {
    return manager_->install_with_roots(participants_, cfg, bps, cfg_.roots,
                                        cfg_.cache);
  }
  return manager_->install_with_retry(participants_, cfg, bps);
}

void Communicator::reap() {
  std::erase_if(ops_, [](const std::unique_ptr<detail::OpBase>& op) {
    return op->reapable();
  });
}

CollectiveHandle Communicator::start(const CollectiveOptions& desc,
                                     CompletionFn on_complete) {
  reap();
  if (desc.kind == CollectiveKind::kReduce ||
      desc.kind == CollectiveKind::kBroadcast) {
    FLARE_ASSERT_MSG(desc.root < participants_.size(),
                     "root must index the participant group");
  }
  const Algorithm alg = resolve_algorithm(desc);
  switch (alg) {
    case Algorithm::kFlareDense: {
      const core::AllreduceConfig cfg = make_config(desc);
      InstallReport report = install(desc, cfg);
      if (!report) {
        if (desc.algorithm == Algorithm::kAuto &&
            desc.kind == CollectiveKind::kAllreduce) {
          // The paper's admission policy: fall back to the host ring.
          return start_ring(desc, std::move(on_complete));
        }
        // Explicit in-network request rejected by admission: report
        // failure through an immediately-complete handle.
        auto state = std::make_shared<detail::OpState>();
        state->done = true;
        if (on_complete) on_complete(state->result);
        return CollectiveHandle(std::move(state));
      }
      auto op = std::make_unique<detail::InNetOp>(
          net_, *manager_, participants_, desc, cfg, std::move(*report),
          /*owns_install=*/true);
      auto state = std::make_shared<detail::OpState>();
      state->on_complete = std::move(on_complete);
      CollectiveHandle handle(state);
      detail::InNetOp* raw = op.get();
      ops_.push_back(std::move(op));
      raw->begin(desc.seed, std::move(state));
      return handle;
    }
    case Algorithm::kHostRing:
      return start_ring(desc, std::move(on_complete));
    case Algorithm::kFlareSparse:
    case Algorithm::kSparcml:
      FLARE_ASSERT_MSG(false,
                       "sparse algorithms are blocking-only: use run()");
      return {};
    case Algorithm::kAuto:
      break;  // resolved above
  }
  FLARE_UNREACHABLE("unresolved algorithm");
}

CollectiveHandle Communicator::start_ring(const CollectiveOptions& desc,
                                          CompletionFn on_complete) {
  FLARE_ASSERT_MSG(desc.kind == CollectiveKind::kAllreduce,
                   "the host ring serves allreduce only");
  auto op = std::make_unique<detail::RingOp>(net_, participants_, desc);
  auto state = std::make_shared<detail::OpState>();
  state->on_complete = std::move(on_complete);
  CollectiveHandle handle(state);
  detail::RingOp* raw = op.get();
  ops_.push_back(std::move(op));
  raw->begin(desc.seed, std::move(state));
  return handle;
}

CollectiveResult Communicator::run(const CollectiveOptions& desc) {
  const Algorithm alg = resolve_algorithm(desc);
  if (alg == Algorithm::kFlareSparse || alg == Algorithm::kSparcml) {
    return run_sparse(desc, alg);
  }
  CollectiveHandle handle = start(desc, {});
  net_.sim().run();
  FLARE_ASSERT_MSG(handle.done(),
                   "calendar drained without completing the collective");
  return handle.result();
}

CollectiveResult Communicator::run_sparse(const CollectiveOptions& desc,
                                          Algorithm alg) {
  FLARE_ASSERT_MSG(desc.kind == CollectiveKind::kAllreduce,
                   "sparse engines serve allreduce only");
  FLARE_ASSERT_MSG(desc.sparse.pairs != nullptr,
                   "sparse collective without a sparse workload");
  if (alg == Algorithm::kFlareSparse) {
    FlareSparseOptions opt;
    opt.dtype = desc.dtype;
    opt.packet_payload = desc.packet_payload;
    opt.window_blocks = desc.window_blocks;
    opt.order = desc.order;
    opt.hash_capacity_pairs = desc.hash_capacity_pairs;
    opt.spill_capacity_pairs = desc.spill_capacity_pairs;
    opt.switch_service_bps =
        resolved_switch_service_bps(desc, /*sparse=*/true);
    CollectiveResult res =
        detail::flare_sparse_oneshot(net_, participants_, desc.sparse, opt);
    res.in_network = true;
    return res;
  }
  // SparCML on the same workload description: blocks flattened to global
  // indices (the SparCML baseline reduces one global sparse vector).
  SparcmlOptions opt;
  opt.total_elems =
      static_cast<u64>(desc.sparse.block_span) * desc.sparse.num_blocks;
  opt.dtype = desc.dtype;
  opt.mtu_bytes = desc.mtu_bytes;
  const SparseWorkload& w = desc.sparse;
  auto provider = [&w](u32 h) {
    std::vector<core::SparsePair> all;
    for (u32 b = 0; b < w.num_blocks; ++b) {
      for (core::SparsePair sp : w.pairs(h, b)) {
        sp.index += b * w.block_span;
        all.push_back(sp);
      }
    }
    return all;
  };
  return detail::sparcml_oneshot(net_, participants_, provider, opt);
}

PersistentCollective Communicator::persistent(const CollectiveOptions& desc) {
  if (desc.kind == CollectiveKind::kReduce ||
      desc.kind == CollectiveKind::kBroadcast) {
    FLARE_ASSERT_MSG(desc.root < participants_.size(),
                     "root must index the participant group");
  }
  PersistentCollective pc;
  pc.comm_ = this;
  pc.desc_ = desc;
  const Algorithm alg = resolve_algorithm(desc);
  if (alg == Algorithm::kHostRing) {
    FLARE_ASSERT_MSG(desc.kind == CollectiveKind::kAllreduce,
                     "the host ring serves allreduce only");
    pc.host_ring_ = true;
    pc.op_ = std::make_unique<detail::RingOp>(net_, participants_, desc);
    return pc;
  }
  FLARE_ASSERT_MSG(alg == Algorithm::kFlareDense,
                   "persistent requests serve the dense engines");
  pc.cfg_ = make_config(desc);
  pc.report_ = install(desc, pc.cfg_);
  if (!pc.report_) {
    if (desc.algorithm == Algorithm::kAuto &&
        desc.kind == CollectiveKind::kAllreduce) {
      // Admission rejected: a persistent host ring needs no switch state.
      pc.host_ring_ = true;
      pc.op_ = std::make_unique<detail::RingOp>(net_, participants_, desc);
    }
    return pc;  // !ok() when no fallback applies
  }
  // The op keeps its own copy of the tree; the report's copy backs
  // tree()/release() and survives moves of the PersistentCollective.
  pc.op_ = std::make_unique<detail::InNetOp>(
      net_, *manager_, participants_, desc, pc.cfg_, *pc.report_,
      /*owns_install=*/false);
  return pc;
}

}  // namespace flare::coll
