// Legacy entry points for the Section 8 extension collectives (barrier,
// broadcast).  The paper points out that reduce, broadcast and barrier
// fall out of the allreduce machinery — the Communicator's unified InNetOp
// driver now implements exactly that; these wrappers remain for source
// compatibility.
//
// DEPRECATED: use coll::Communicator with CollectiveKind::kBarrier /
// kBroadcast (and kReduce, which has no legacy equivalent).
#pragma once

#include "coll/communicator.hpp"

namespace flare::coll {

struct BarrierOptions : Tuning {};

/// The CollectiveOptions equivalent of the legacy options structs.
CollectiveOptions barrier_descriptor(const BarrierOptions& opt);

/// Returns ok=true when every host observed the barrier release; the
/// completion time is the paper's barrier latency.
[[deprecated("use coll::Communicator with CollectiveKind::kBarrier")]]
CollectiveResult run_flare_barrier(net::Network& net,
                                   const std::vector<net::Host*>& hosts,
                                   const BarrierOptions& opt = {});

struct BroadcastOptions : Tuning {
  u32 root = 0;  ///< broadcasting host (index into `hosts`)
  u64 data_bytes = 64 * kKiB;
};

CollectiveOptions broadcast_descriptor(const BroadcastOptions& opt);

[[deprecated("use coll::Communicator with CollectiveKind::kBroadcast")]]
CollectiveResult run_flare_broadcast(net::Network& net,
                                     const std::vector<net::Host*>& hosts,
                                     const BroadcastOptions& opt = {});

}  // namespace flare::coll
