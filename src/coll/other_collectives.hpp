// Other collectives on the Flare substrate (Section 8, "Support for other
// collectives"): the paper points out that reduce, broadcast and barrier
// fall out of the allreduce machinery.
//
//  * barrier    — an in-network allreduce of 0-byte blocks: a host leaves
//    the barrier when the root's (empty) result multicast reaches it.
//  * broadcast  — the root contributes its data, everyone else contributes
//    the operator identity; the "sum" that comes back is the root's vector.
//  * reduce     — an allreduce where only the destination host consumes the
//    result (the multicast down is shared with every co-located reduction;
//    a unicast-down optimization is left as future work, as in the paper).
#pragma once

#include "coll/manager.hpp"
#include "coll/result.hpp"
#include "core/typed_buffer.hpp"

namespace flare::coll {

struct BarrierOptions {
  f64 switch_service_bps = 2.4e12;
};

/// Returns ok=true when every host observed the barrier release; the
/// completion time is the paper's barrier latency.
CollectiveResult run_flare_barrier(net::Network& net,
                                   const std::vector<net::Host*>& hosts,
                                   const BarrierOptions& opt = {});

struct BroadcastOptions {
  u32 root = 0;  ///< broadcasting host (index into `hosts`)
  u64 data_bytes = 64 * kKiB;
  core::DType dtype = core::DType::kFloat32;
  u64 packet_payload = 1024;
  f64 switch_service_bps = 2.4e12;
  u64 seed = 1;
};

CollectiveResult run_flare_broadcast(net::Network& net,
                                     const std::vector<net::Host*>& hosts,
                                     const BroadcastOptions& opt = {});

}  // namespace flare::coll
