#include "coll/ring.hpp"

namespace flare::coll {

CollectiveOptions ring_descriptor(const RingOptions& opt) {
  CollectiveOptions desc;
  static_cast<Tuning&>(desc) = opt;
  desc.kind = CollectiveKind::kAllreduce;
  desc.algorithm = Algorithm::kHostRing;
  desc.data_bytes = opt.data_bytes;
  desc.op = opt.op;
  desc.mtu_bytes = opt.mtu_bytes;
  return desc;
}

CollectiveResult run_ring_allreduce(net::Network& net,
                                    const std::vector<net::Host*>& hosts,
                                    const RingOptions& opt) {
  Communicator comm(net, hosts);
  return comm.run(ring_descriptor(opt));
}

}  // namespace flare::coll
