#include "coll/ring.hpp"

#include <algorithm>
#include <functional>
#include <cstring>
#include <unordered_map>

#include "workload/generators.hpp"

namespace flare::coll {

namespace {

constexpr u32 kRingProto = 0x52494E47;  // "RING"

struct ChunkGeometry {
  u64 elems_total;
  u32 chunks;  // = P

  u64 chunk_begin(u32 c) const {
    const u64 base = elems_total / chunks;
    const u64 rem = elems_total % chunks;
    return static_cast<u64>(c) * base + std::min<u64>(c, rem);
  }
  u64 chunk_elems(u32 c) const { return chunk_begin(c + 1) - chunk_begin(c); }
};

enum class Phase : u8 { kScatterReduce, kAllGather, kDone };

struct RingHost {
  net::Host* host = nullptr;
  core::TypedBuffer vec;  ///< working vector (input, then result)
  Phase phase = Phase::kScatterReduce;
  u32 step = 0;
  SimTime finish_ps = 0;
  /// Reassembly: tag -> (fragments seen, attached data).
  struct Partial {
    u32 frags = 0;
    std::shared_ptr<const core::TypedBuffer> data;
  };
  std::unordered_map<u32, Partial> inbox;
};

u32 make_tag(Phase phase, u32 step) {
  return (phase == Phase::kAllGather ? 0x10000u : 0u) | step;
}

}  // namespace

CollectiveResult run_ring_allreduce(net::Network& net,
                                    const std::vector<net::Host*>& hosts,
                                    const RingOptions& opt) {
  CollectiveResult res;
  const u32 P = static_cast<u32>(hosts.size());
  FLARE_ASSERT(P >= 1);
  const u32 esize = core::dtype_size(opt.dtype);
  const u64 elems_total = std::max<u64>(1, opt.data_bytes / esize);
  const ChunkGeometry geo{elems_total, P};
  const core::ReduceOp op(opt.op);
  res.blocks = P;

  const auto host_data =
      workload::make_dense_data(P, elems_total, opt.dtype, opt.seed);
  const core::TypedBuffer expected = reference_reduce(host_data, op);

  std::vector<RingHost> runs(P);
  const u64 base_traffic = net.total_traffic_bytes();
  for (u32 h = 0; h < P; ++h) {
    runs[h].host = hosts[h];
    runs[h].vec = host_data[h];
  }

  if (P == 1) {
    res.ok = true;
    res.completion_seconds = 0;
    return res;
  }

  // Sends chunk `c` of host `h`'s working vector to its right neighbour,
  // fragmented at the MTU; the data snapshot rides on the last fragment.
  auto send_chunk = [&](u32 h, u32 c, Phase phase, u32 step) {
    RingHost& hr = runs[h];
    const u32 dst = (h + 1) % P;
    const u64 elems = geo.chunk_elems(c);
    const u64 bytes = elems * esize;
    const u32 frags =
        std::max<u32>(1, static_cast<u32>((bytes + opt.mtu_bytes - 1) /
                                          opt.mtu_bytes));
    auto snapshot = std::make_shared<core::TypedBuffer>(opt.dtype, elems);
    std::memcpy(snapshot->data(), hr.vec.at_byte(geo.chunk_begin(c)), bytes);
    for (u32 f = 0; f < frags; ++f) {
      auto msg = std::make_shared<net::HostMsg>();
      msg->src_host = h;
      msg->dst_host = dst;
      msg->proto = kRingProto;
      msg->tag = make_tag(phase, step);
      msg->seq = f;
      msg->seq_count = frags;
      if (f + 1 == frags) msg->dense = snapshot;
      net::NetPacket np;
      np.kind = net::PacketKind::kHostMsg;
      np.dst_node = hosts[dst]->id();
      np.flow = h;  // one flow per ring edge: FIFO along one ECMP path
      const u64 frag_bytes =
          std::min<u64>(opt.mtu_bytes, bytes - f * opt.mtu_bytes);
      np.wire_bytes = frag_bytes + core::kPacketWireOverhead;
      np.msg = std::move(msg);
      hr.host->send(std::move(np));
    }
  };

  // Applies the completed message for the host's current step and advances.
  std::function<void(u32)> advance = [&](u32 h) {
    RingHost& hr = runs[h];
    while (hr.phase != Phase::kDone) {
      const u32 tag = make_tag(hr.phase, hr.step);
      auto it = hr.inbox.find(tag);
      if (it == hr.inbox.end() || it->second.frags == 0 ||
          it->second.data == nullptr) {
        return;  // expected message not fully here yet
      }
      const auto& partial = it->second;
      // Which chunk does this step deliver?
      if (hr.phase == Phase::kScatterReduce) {
        const u32 c = (h + P - hr.step - 1) % P;
        FLARE_ASSERT(partial.data->size() == geo.chunk_elems(c));
        op.apply(opt.dtype, hr.vec.at_byte(geo.chunk_begin(c)),
                 partial.data->data(), geo.chunk_elems(c));
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P - 1) {
          send_chunk(h, (h + P - hr.step) % P, Phase::kScatterReduce,
                     hr.step);
        } else {
          // Scatter-reduce finished: host owns reduced chunk (h+1)%P and
          // starts the allgather by forwarding it.
          hr.phase = Phase::kAllGather;
          hr.step = 0;
          send_chunk(h, (h + 1) % P, Phase::kAllGather, 0);
        }
      } else {
        const u32 c = (h + P - hr.step) % P;
        FLARE_ASSERT(partial.data->size() == geo.chunk_elems(c));
        std::memcpy(hr.vec.at_byte(geo.chunk_begin(c)),
                    partial.data->data(), geo.chunk_elems(c) * esize);
        hr.inbox.erase(it);
        hr.step += 1;
        if (hr.step < P - 1) {
          send_chunk(h, c, Phase::kAllGather, hr.step);
        } else {
          hr.phase = Phase::kDone;
          hr.finish_ps = net.sim().now();
        }
      }
    }
  };

  for (u32 h = 0; h < P; ++h) {
    runs[h].host->set_msg_handler([&, h](const net::HostMsg& msg) {
      if (msg.proto != kRingProto) return;
      RingHost& hr = runs[h];
      RingHost::Partial& partial = hr.inbox[msg.tag];
      partial.frags += 1;
      if (msg.dense) partial.data = msg.dense;
      if (partial.frags == msg.seq_count) advance(h);
    });
  }

  // Kick off: every host sends its own chunk h for scatter-reduce step 0.
  for (u32 h = 0; h < P; ++h)
    send_chunk(h, h, Phase::kScatterReduce, 0);
  net.sim().run();

  f64 worst = 0.0, sum = 0.0;
  bool all_done = true;
  for (RingHost& hr : runs) {
    all_done = all_done && (hr.phase == Phase::kDone);
    worst = std::max(worst, static_cast<f64>(hr.finish_ps));
    sum += static_cast<f64>(hr.finish_ps);
  }
  res.completion_seconds = worst / kPsPerSecond;
  res.mean_host_seconds = sum / P / kPsPerSecond;
  res.total_traffic_bytes = net.total_traffic_bytes() - base_traffic;
  res.total_packets = net.total_packets();
  if (all_done) {
    f64 err = 0.0;
    for (const RingHost& hr : runs)
      err = std::max(err, hr.vec.max_abs_diff(expected));
    res.max_abs_err = err;
    res.ok = err <= core::reduce_tolerance(opt.dtype, P);
  }
  return res;
}

}  // namespace flare::coll
