#include "coll/flare_sparse.hpp"

#include <algorithm>
#include <functional>
#include <cstring>

#include "workload/generators.hpp"

namespace flare::coll {

namespace {

struct BlockProgress {
  u32 received = 0;
  u32 expected = 0;  ///< 0 until the root's last shard announces it
  bool done() const { return expected != 0 && received >= expected; }
};

struct HostRun {
  net::Host* host = nullptr;
  std::vector<u32> schedule;
  std::size_t next = 0;
  u32 outstanding = 0;
  u64 blocks_done = 0;
  SimTime finish_ps = 0;
  std::vector<BlockProgress> progress;
};

}  // namespace

namespace detail {

FlareSparseResult flare_sparse_oneshot(
    net::Network& net, const std::vector<net::Host*>& participants,
    const SparseWorkload& workload, const FlareSparseOptions& opt) {
  FlareSparseResult res;
  res.in_network = true;
  const u32 P = static_cast<u32>(participants.size());
  FLARE_ASSERT(P >= 1 && workload.pairs != nullptr);
  const u32 nb = workload.num_blocks;
  const u32 span = workload.block_span;
  const u32 ppp =
      core::sparse_pairs_per_packet(opt.packet_payload, opt.dtype);
  const u32 esize = core::dtype_size(opt.dtype);
  res.blocks = nb;
  const core::ReduceOp op(core::OpKind::kSum);

  // --- control plane ---
  NetworkManager manager(net);
  core::AllreduceConfig cfg;
  cfg.id = manager.next_id();
  cfg.dtype = opt.dtype;
  cfg.op = op;
  cfg.policy = core::AggPolicy::kSingleBuffer;
  cfg.sparse = true;
  cfg.block_span = span;
  cfg.pairs_per_packet = ppp;
  cfg.hash_capacity_pairs = opt.hash_capacity_pairs;
  cfg.spill_capacity_pairs = opt.spill_capacity_pairs;
  auto tree = manager.install_with_retry(
      participants, cfg, resolved_switch_service_bps(opt, /*sparse=*/true));
  if (!tree) {
    res.in_network = false;
    return res;
  }

  const u64 base_traffic = net.total_traffic_bytes();

  // Stage all host pairs once (shared with the reference computation).
  std::vector<std::vector<std::vector<core::SparsePair>>> staged(P);
  for (u32 h = 0; h < P; ++h) {
    staged[h].resize(nb);
    for (u32 b = 0; b < nb; ++b) staged[h][b] = workload.pairs(h, b);
  }

  // Every host accumulates the multicast stream into one result vector;
  // contents are identical across hosts, so host 0's copy is checked.
  core::TypedBuffer result(opt.dtype, static_cast<u64>(nb) * span);
  result.fill_identity(op);

  std::vector<HostRun> runs(P);
  for (u32 h = 0; h < P; ++h) {
    HostRun& hr = runs[h];
    hr.host = participants[h];
    hr.schedule = core::send_schedule(h, P, nb, opt.order);
    hr.progress.resize(nb);
  }

  // As in the dense protocol: staggered sending needs the whole operation
  // in flight, so the window expands to the block count.
  const u32 window = opt.order == core::SendOrder::kStaggered
                         ? std::max(opt.window_blocks, nb)
                         : opt.window_blocks;

  std::function<void(u32)> try_send = [&](u32 h) {
    HostRun& hr = runs[h];
    while (hr.outstanding < window && hr.next < hr.schedule.size()) {
      const u32 b = hr.schedule[hr.next++];
      const auto& pairs = staged[h][b];
      const u16 child = tree->host_child_index[hr.host->host_index()];
      const u32 shards = std::max<u32>(
          1, (static_cast<u32>(pairs.size()) + ppp - 1) / ppp);
      for (u32 s = 0; s < shards; ++s) {
        core::Packet p;
        if (pairs.empty()) {
          p = core::make_empty_block_packet(cfg.id, b, child);
        } else {
          const u32 off = s * ppp;
          const u32 count =
              std::min<u32>(ppp, static_cast<u32>(pairs.size()) - off);
          const bool last = (s + 1 == shards);
          p = core::make_sparse_packet(
              cfg.id, b, child,
              std::span<const core::SparsePair>(pairs.data() + off, count),
              opt.dtype, last ? core::kFlagLastShard : 0);
          p.hdr.shard_seq = s;
          if (last) p.hdr.shard_count = shards;
        }
        res.host_pairs_sent += p.hdr.elem_count;
        net::NetPacket np;
        np.kind = net::PacketKind::kReduceUp;
        np.allreduce_id = cfg.id;
        np.wire_bytes = p.wire_bytes();
        np.reduce = std::make_shared<const core::Packet>(std::move(p));
        hr.host->send(std::move(np));
      }
      hr.outstanding += 1;
    }
  };

  for (u32 h = 0; h < P; ++h) {
    HostRun& hr = runs[h];
    hr.host->set_reduce_handler(cfg.id, [&, h](const core::Packet& pkt) {
      HostRun& me = runs[h];
      const u32 b = pkt.hdr.block_id;
      FLARE_ASSERT(b < nb);
      BlockProgress& bp = me.progress[b];
      if (bp.done()) return;
      bp.received += 1;
      if (pkt.is_last_shard()) bp.expected = pkt.hdr.shard_count;
      // Host-side final aggregation of the multicast pairs (root spills
      // arrive unaggregated; summing here restores exactness).
      if (h == 0 && pkt.hdr.elem_count > 0) {
        const core::SparseView view = core::sparse_view(pkt, opt.dtype);
        res.down_pairs += view.count;
        for (u32 i = 0; i < view.count; ++i) {
          op.apply(opt.dtype,
                   result.at_byte(static_cast<u64>(b) * span +
                                  view.indices[i]),
                   view.values + static_cast<std::size_t>(i) * esize, 1);
        }
      }
      if (bp.done()) {
        me.blocks_done += 1;
        me.outstanding -= 1;
        if (me.blocks_done == nb) me.finish_ps = net.sim().now();
        try_send(h);
      }
    });
  }

  for (u32 h = 0; h < P; ++h) try_send(h);
  net.sim().run();

  // --- results ---
  f64 worst = 0.0, sum = 0.0;
  bool all_done = true;
  for (HostRun& hr : runs) {
    all_done = all_done && (hr.blocks_done == nb);
    worst = std::max(worst, static_cast<f64>(hr.finish_ps));
    sum += static_cast<f64>(hr.finish_ps);
  }
  res.completion_seconds = worst / kPsPerSecond;
  res.mean_host_seconds = sum / P / kPsPerSecond;
  res.total_traffic_bytes = net.total_traffic_bytes() - base_traffic;
  res.total_packets = net.total_packets();
  for (const TreeSwitchEntry& e : tree->switches) {
    const core::EngineStats* st = e.sw->engine_stats(cfg.id);
    if (st != nullptr) res.spill_packets += st->spill_packets;
  }
  res.extra_packets = res.spill_packets;

  if (all_done) {
    // Reference: densified per-block sums.
    f64 max_err = 0.0;
    core::TypedBuffer block_ref(opt.dtype, span);
    for (u32 b = 0; b < nb; ++b) {
      block_ref.fill_identity(op);
      for (u32 h = 0; h < P; ++h) {
        for (const core::SparsePair& sp : staged[h][b]) {
          core::TypedBuffer one(opt.dtype, 1);
          one.set_from_f64(0, sp.value);
          op.apply(opt.dtype, block_ref.at_byte(sp.index), one.data(), 1);
        }
      }
      for (u32 i = 0; i < span; ++i) {
        const f64 got =
            result.get_as_f64(static_cast<u64>(b) * span + i);
        max_err = std::max(max_err, std::abs(got - block_ref.get_as_f64(i)));
      }
    }
    res.max_abs_err = max_err;
    const f64 tol = core::dtype_is_float(opt.dtype) ? 1e-3 * P : 0.0;
    res.ok = max_err <= tol;
  }
  manager.uninstall(*tree, cfg.id);
  return res;
}

}  // namespace detail

}  // namespace flare::coll
