#include "coll/flare_sparse.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "coll/sparcml.hpp"
#include "net/node.hpp"

namespace flare::coll::detail {

SparseOp::SparseOp(net::Network& net, NetworkManager& manager,
                   const std::vector<net::Host*>& participants,
                   const CollectiveOptions& desc, core::AllreduceConfig cfg,
                   ReductionTree tree, bool owns_install,
                   net::CongestionMonitor* monitor)
    : TreeOpBase(net, manager, participants, desc, cfg, std::move(tree),
                 owns_install, /*sparse=*/true, monitor),
      op_(cfg.op) {
  P_ = static_cast<u32>(participants_.size());
  FLARE_ASSERT(P_ >= 1);
  nb_ = desc_.sparse.num_blocks;
  span_ = desc_.sparse.block_span;
  FLARE_ASSERT_MSG(nb_ >= 1 && span_ >= 1,
                   "sparse workload needs blocks and a block span");
  ppp_ = cfg_.pairs_per_packet;
  FLARE_ASSERT(ppp_ >= 1);
  esize_ = core::dtype_size(desc_.dtype);
  // As in the dense protocol: staggered sending needs the whole operation
  // in flight, so the window expands to the block count.
  window_ = desc_.order == core::SendOrder::kStaggered
                ? std::max(desc_.window_blocks, nb_)
                : std::max(1u, desc_.window_blocks);
}

void SparseOp::stage(u64 seed) {
  const SparseWorkload& w = desc_.sparse;
  staged_.assign(P_, {});
  for (u32 h = 0; h < P_; ++h) {
    staged_[h].resize(nb_);
    for (u32 b = 0; b < nb_; ++b) {
      staged_[h][b] =
          w.epoch_pairs ? w.epoch_pairs(seed, h, b) : w.pairs(h, b);
    }
  }
}

void SparseOp::begin(u64 seed, std::shared_ptr<OpState> state) {
  if (!begin_prologue(seed, std::move(state))) return;
  hosts_done_ = 0;
  start_ps_ = net_.sim().now();
  base_traffic_ = net_.total_traffic_bytes();
  stage(seed);
  // Engine spill counters persist across iterations of a persistent
  // install; the per-iteration result reports the delta.
  spills_at_begin_ = 0;
  for (const TreeSwitchEntry& e : tree_.switches) {
    const core::EngineStats* st = e.sw->engine_stats(cfg_.id);
    if (st != nullptr) spills_at_begin_ += st->spill_packets;
  }

  result_ = core::TypedBuffer(desc_.dtype, static_cast<u64>(nb_) * span_);
  result_.fill_identity(op_);
  down_pairs_ = 0;
  host_pairs_sent_ = 0;

  runs_.clear();
  runs_.resize(P_);
  for (u32 h = 0; h < P_; ++h) {
    HostRun& hr = runs_[h];
    hr.host = participants_[h];
    hr.schedule = core::send_schedule(h, P_, nb_, desc_.order);
    hr.down.assign(nb_, core::ShardTracker{});
    hr.block_done.assign(nb_, false);
    hr.retry.reset(nb_);
    hr.host->set_reduce_handler(
        cfg_.id, [this, h](const core::Packet& pkt) { on_down(h, pkt); });
  }
  for (u32 h = 0; h < P_; ++h) try_send(h);
  subscribe_faults();
  arm_watchdog();
}

void SparseOp::send_block(u32 h, u32 b, u16 extra_flags) {
  HostRun& hr = runs_[h];
  const auto& pairs = staged_[h][b];
  const u16 child = tree_.host_child_index[hr.host->host_index()];
  const u32 shards =
      std::max<u32>(1, (static_cast<u32>(pairs.size()) + ppp_ - 1) / ppp_);
  for (u32 s = 0; s < shards; ++s) {
    core::Packet p;
    if (pairs.empty()) {
      p = core::make_empty_block_packet(cfg_.id, b, child);
      p.hdr.flags |= extra_flags;
    } else {
      const u32 off = s * ppp_;
      const u32 count =
          std::min<u32>(ppp_, static_cast<u32>(pairs.size()) - off);
      const bool last = (s + 1 == shards);
      p = core::make_sparse_packet(
          cfg_.id, b, child,
          std::span<const core::SparsePair>(pairs.data() + off, count),
          desc_.dtype,
          static_cast<u16>((last ? core::kFlagLastShard : 0) | extra_flags));
      p.hdr.shard_seq = s;
      if (last) p.hdr.shard_count = shards;
    }
    host_pairs_sent_ += p.hdr.elem_count;
    net::NetPacket np;
    np.kind = net::PacketKind::kReduceUp;
    np.allreduce_id = cfg_.id;
    np.trace = cfg_.trace;
    np.wire_bytes = p.wire_bytes();
    np.reduce = core::make_pooled_packet(std::move(p));
    hr.host->send(std::move(np));
  }
}

void SparseOp::try_send(u32 h) {
  HostRun& hr = runs_[h];
  while (hr.next < hr.schedule.size()) {
    const u32 b = hr.schedule[hr.next];
    // After a recovery restart the schedule replays from the top: blocks
    // this host already holds results for are re-contributed (the fresh
    // engines need every child's input) but consume no window slot and
    // await no multicast.
    const bool need_result = !hr.block_done[b];
    if (need_result && hr.outstanding >= window_) break;
    hr.next += 1;
    if (need_result) {
      hr.outstanding += 1;
      hr.retry.sent[b] = true;
      hr.retry.sent_ps[b] = net_.sim().now();
    }
    send_block(h, b, 0);
  }
}

void SparseOp::on_down(u32 h, const core::Packet& pkt) {
  HostRun& me = runs_[h];
  const u32 b = pkt.hdr.block_id;
  FLARE_ASSERT(b < nb_);
  if (me.block_done[b]) return;  // duplicated multicast replica
  core::ShardTracker& st = me.down[b];
  if (!st.mark(pkt.hdr.shard_seq)) return;  // re-emitted shard: idempotent
  if (pkt.is_last_shard()) st.announce_total(pkt.hdr.shard_count);
  // Host-side final aggregation of the multicast pairs (spills arrive
  // unaggregated; summing here restores exactness).
  if (h == 0 && pkt.hdr.elem_count > 0) {
    const core::SparseView view = core::sparse_view(pkt, desc_.dtype);
    down_pairs_ += view.count;
    for (u32 i = 0; i < view.count; ++i) {
      op_.apply(desc_.dtype,
                result_.at_byte(static_cast<u64>(b) * span_ +
                                view.indices[i]),
                view.values + static_cast<std::size_t>(i) * esize_, 1);
    }
  }
  if (!st.complete()) return;
  me.block_done[b] = true;
  me.blocks_done += 1;
  me.outstanding -= 1;
  if (me.blocks_done == nb_) {
    me.finish_ps = net_.sim().now();
    hosts_done_ += 1;
  }
  try_send(h);
  if (hosts_done_ == runs_.size() && !finished_) {
    finished_ = true;
    // Finalize off this packet's call stack: by the time every host holds
    // every block, all switch-side events of this collective have run.
    net_.sim().schedule_after(0, [this] { finalize(); });
  }
}

// --------------------------------------------- TreeOpBase data hooks ----

std::unique_ptr<OpBase> SparseOp::make_fallback_op() {
  // The host-based sparse fallback is SparCML — recursive doubling, so
  // power-of-two groups only; other sizes wait for the fabric to heal.
  if (!std::has_single_bit(P_)) return nullptr;
  CollectiveOptions sdesc = desc_;
  sdesc.algorithm = Algorithm::kSparcml;
  // Inherit the session's trace: one continuous tenant for attribution.
  return std::make_unique<SparcmlOp>(net_, participants_, sdesc, cfg_.trace);
}

void SparseOp::restart_iteration() {
  // Fresh engines emit fresh shard sequences: incomplete blocks restart
  // from scratch — tracker, window slot and host-0 partial accumulation
  // (its block region returns to the identity; completed regions and
  // their duplicate multicasts are untouched).
  core::TypedBuffer identity(desc_.dtype, span_);
  identity.fill_identity(op_);
  for (u32 b = 0; b < nb_; ++b) {
    if (runs_[0].block_done[b]) continue;
    std::memcpy(result_.at_byte(static_cast<u64>(b) * span_),
                identity.data(), static_cast<u64>(span_) * esize_);
  }
  for (u32 h = 0; h < runs_.size(); ++h) {
    HostRun& hr = runs_[h];
    hr.host->set_reduce_handler(
        cfg_.id, [this, h](const core::Packet& pkt) { on_down(h, pkt); });
    hr.next = 0;
    hr.outstanding = 0;
    hr.retry.reset(nb_);
    for (u32 b = 0; b < nb_; ++b) {
      if (!hr.block_done[b]) hr.down[b] = core::ShardTracker{};
    }
  }
  for (u32 h = 0; h < runs_.size(); ++h) try_send(h);
  arm_watchdog();
}

bool SparseOp::scan_timeouts() {
  // Re-send every shard of a timed-out block: the switch trackers
  // deduplicate by (child, shard_seq), so only the lost one is fresh; a
  // switch that already completed the block replays its cached shard
  // sequence off the retransmitted last shard instead.
  return scan_block_timeouts(
      static_cast<u32>(runs_.size()), nb_,
      [this](u32 h) -> BlockRetryState& { return runs_[h].retry; },
      [this](u32 h, u32 b) { return bool{runs_[h].block_done[b]}; },
      [this](u32 h, u32 b) { send_block(h, b, core::kFlagRetransmit); });
}

void SparseOp::finalize() {
  CollectiveResult res;
  res.blocks = nb_;
  res.in_network = true;
  f64 worst = 0.0, sum = 0.0;
  for (const HostRun& hr : runs_) {
    worst = std::max(worst, static_cast<f64>(hr.finish_ps - start_ps_));
    sum += static_cast<f64>(hr.finish_ps - start_ps_);
  }
  res.completion_seconds = worst / kPsPerSecond;
  res.mean_host_seconds = sum / P_ / kPsPerSecond;
  res.total_traffic_bytes = net_.total_traffic_bytes() - base_traffic_;
  res.total_packets = net_.total_packets();
  u64 spills_now = 0;
  for (const TreeSwitchEntry& e : tree_.switches) {
    const core::EngineStats* st = e.sw->engine_stats(cfg_.id);
    if (st != nullptr) spills_now += st->spill_packets;
    const net::ReduceRole* role = e.sw->role(cfg_.id);
    if (role != nullptr && role->engine != nullptr) {
      res.switch_working_mem_hwm = std::max(
          res.switch_working_mem_hwm, role->engine->pool().high_water());
    }
  }
  // A mid-iteration recovery swaps in fresh engines whose counters restart:
  // saturate instead of underflowing the delta.
  res.spill_packets =
      spills_now >= spills_at_begin_ ? spills_now - spills_at_begin_
                                     : spills_now;
  res.extra_packets = res.spill_packets;
  res.host_pairs_sent = host_pairs_sent_;
  res.down_pairs = down_pairs_;

  // Reference: densified per-block sums over the staged inputs.
  f64 max_err = 0.0;
  core::TypedBuffer block_ref(desc_.dtype, span_);
  for (u32 b = 0; b < nb_; ++b) {
    block_ref.fill_identity(op_);
    for (u32 h = 0; h < P_; ++h) {
      for (const core::SparsePair& sp : staged_[h][b]) {
        core::TypedBuffer one(desc_.dtype, 1);
        one.set_from_f64(0, sp.value);
        op_.apply(desc_.dtype, block_ref.at_byte(sp.index), one.data(), 1);
      }
    }
    for (u32 i = 0; i < span_; ++i) {
      const f64 got =
          result_.get_as_f64(static_cast<u64>(b) * span_ + i);
      max_err = std::max(max_err, std::abs(got - block_ref.get_as_f64(i)));
    }
  }
  res.max_abs_err = max_err;
  const f64 tol = core::dtype_is_float(desc_.dtype) ? 1e-3 * P_ : 0.0;
  res.ok = max_err <= tol;

  res.retransmits = retransmits_;
  res.recoveries = recoveries_;
  res.migrations = migrations_iter_;
    res.planned_migrations = planned_iter_;
  // Completion-time watch feeding the next iteration's migration check.
  record_iteration_time(static_cast<SimTime>(worst));

  if (owns_install_) release_install();
  complete_ = true;
  publish(std::move(res));  // may destroy *this — nothing after
}

}  // namespace flare::coll::detail
