#include "coll/other_collectives.hpp"

namespace flare::coll {

CollectiveOptions barrier_descriptor(const BarrierOptions& opt) {
  CollectiveOptions desc;
  static_cast<Tuning&>(desc) = opt;
  desc.kind = CollectiveKind::kBarrier;
  desc.algorithm = Algorithm::kFlareDense;
  return desc;
}

CollectiveOptions broadcast_descriptor(const BroadcastOptions& opt) {
  CollectiveOptions desc;
  static_cast<Tuning&>(desc) = opt;
  desc.kind = CollectiveKind::kBroadcast;
  desc.algorithm = Algorithm::kFlareDense;
  desc.root = opt.root;
  desc.data_bytes = opt.data_bytes;
  return desc;
}

CollectiveResult run_flare_barrier(net::Network& net,
                                   const std::vector<net::Host*>& hosts,
                                   const BarrierOptions& opt) {
  Communicator comm(net, hosts);
  return comm.run(barrier_descriptor(opt));
}

CollectiveResult run_flare_broadcast(net::Network& net,
                                     const std::vector<net::Host*>& hosts,
                                     const BroadcastOptions& opt) {
  Communicator comm(net, hosts);
  return comm.run(broadcast_descriptor(opt));
}

}  // namespace flare::coll
