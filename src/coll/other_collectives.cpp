#include "coll/other_collectives.hpp"

#include <algorithm>
#include <cstring>

#include "workload/generators.hpp"

namespace flare::coll {

CollectiveResult run_flare_barrier(net::Network& net,
                                   const std::vector<net::Host*>& hosts,
                                   const BarrierOptions& opt) {
  CollectiveResult res;
  const u32 P = static_cast<u32>(hosts.size());
  FLARE_ASSERT(P >= 1);
  res.blocks = 1;

  NetworkManager manager(net);
  core::AllreduceConfig cfg;
  cfg.id = manager.next_id();
  cfg.dtype = core::DType::kInt32;
  cfg.elems_per_packet = 0;  // 0-byte blocks (Section 8)
  cfg.policy = core::AggPolicy::kSingleBuffer;
  auto tree = manager.install_with_retry(hosts, cfg, opt.switch_service_bps);
  if (!tree) return res;

  const u64 base_traffic = net.total_traffic_bytes();
  std::vector<SimTime> released(P, 0);
  std::vector<bool> done(P, false);
  for (u32 h = 0; h < P; ++h) {
    hosts[h]->set_reduce_handler(cfg.id, [&, h](const core::Packet& pkt) {
      FLARE_ASSERT(pkt.hdr.elem_count == 0);
      if (!done[h]) {
        done[h] = true;
        released[h] = net.sim().now();
      }
    });
    // Every host enters the barrier by sending an empty block packet.
    core::Packet p = core::make_dense_packet(
        cfg.id, 0, tree->host_child_index[hosts[h]->host_index()], nullptr,
        0, cfg.dtype);
    net::NetPacket np;
    np.kind = net::PacketKind::kReduceUp;
    np.allreduce_id = cfg.id;
    np.wire_bytes = p.wire_bytes();
    np.reduce = std::make_shared<const core::Packet>(std::move(p));
    hosts[h]->send(std::move(np));
  }
  net.sim().run();

  bool all = true;
  SimTime worst = 0;
  f64 sum = 0;
  for (u32 h = 0; h < P; ++h) {
    all = all && done[h];
    worst = std::max(worst, released[h]);
    sum += static_cast<f64>(released[h]);
  }
  res.ok = all;
  res.completion_seconds = static_cast<f64>(worst) / kPsPerSecond;
  res.mean_host_seconds = sum / P / kPsPerSecond;
  res.total_traffic_bytes = net.total_traffic_bytes() - base_traffic;
  manager.uninstall(*tree, cfg.id);
  return res;
}

CollectiveResult run_flare_broadcast(net::Network& net,
                                     const std::vector<net::Host*>& hosts,
                                     const BroadcastOptions& opt) {
  CollectiveResult res;
  const u32 P = static_cast<u32>(hosts.size());
  FLARE_ASSERT(P >= 1 && opt.root < P);
  const u32 esize = core::dtype_size(opt.dtype);
  const u64 elems_total = std::max<u64>(1, opt.data_bytes / esize);
  const u32 elems_per_pkt = static_cast<u32>(opt.packet_payload / esize);
  const u32 nb =
      static_cast<u32>((elems_total + elems_per_pkt - 1) / elems_per_pkt);
  res.blocks = nb;
  const core::ReduceOp op(core::OpKind::kSum);

  NetworkManager manager(net);
  core::AllreduceConfig cfg;
  cfg.id = manager.next_id();
  cfg.dtype = opt.dtype;
  cfg.op = op;
  cfg.elems_per_packet = elems_per_pkt;
  cfg.policy = core::AggPolicy::kTree;
  auto tree = manager.install_with_retry(hosts, cfg, opt.switch_service_bps);
  if (!tree) return res;

  Rng rng(opt.seed);
  core::TypedBuffer payload(opt.dtype, elems_total);
  payload.fill_random(rng);
  core::TypedBuffer identity(opt.dtype, elems_per_pkt);
  identity.fill_identity(op);

  const u64 base_traffic = net.total_traffic_bytes();
  std::vector<core::TypedBuffer> results;
  results.reserve(P);
  for (u32 h = 0; h < P; ++h)
    results.emplace_back(opt.dtype, elems_total);
  std::vector<u32> blocks_done(P, 0);
  std::vector<SimTime> finish(P, 0);

  for (u32 h = 0; h < P; ++h) {
    hosts[h]->set_reduce_handler(cfg.id, [&, h](const core::Packet& pkt) {
      const u32 b = pkt.hdr.block_id;
      std::memcpy(results[h].at_byte(static_cast<u64>(b) * elems_per_pkt),
                  pkt.payload.data(), pkt.payload.size());
      blocks_done[h] += 1;
      if (blocks_done[h] == nb) finish[h] = net.sim().now();
    });
  }
  for (u32 h = 0; h < P; ++h) {
    for (u32 b = 0; b < nb; ++b) {
      const u64 first = static_cast<u64>(b) * elems_per_pkt;
      const u32 elems = static_cast<u32>(
          std::min<u64>(elems_per_pkt, elems_total - first));
      // Root contributes its data; everyone else the operator identity.
      const void* src =
          h == opt.root ? payload.at_byte(first) : identity.data();
      core::Packet p = core::make_dense_packet(
          cfg.id, b, tree->host_child_index[hosts[h]->host_index()], src,
          elems, opt.dtype);
      net::NetPacket np;
      np.kind = net::PacketKind::kReduceUp;
      np.allreduce_id = cfg.id;
      np.wire_bytes = p.wire_bytes();
      np.reduce = std::make_shared<const core::Packet>(std::move(p));
      hosts[h]->send(std::move(np));
    }
  }
  net.sim().run();

  bool all = true;
  SimTime worst = 0;
  f64 sum = 0;
  f64 err = 0;
  for (u32 h = 0; h < P; ++h) {
    all = all && (blocks_done[h] == nb);
    worst = std::max(worst, finish[h]);
    sum += static_cast<f64>(finish[h]);
    if (blocks_done[h] == nb)
      err = std::max(err, results[h].max_abs_diff(payload));
  }
  res.ok = all && err <= (core::dtype_is_float(opt.dtype) ? 1e-4 : 0.0);
  res.max_abs_err = err;
  res.completion_seconds = static_cast<f64>(worst) / kPsPerSecond;
  res.mean_host_seconds = sum / P / kPsPerSecond;
  res.total_traffic_bytes = net.total_traffic_bytes() - base_traffic;
  manager.uninstall(*tree, cfg.id);
  return res;
}

}  // namespace flare::coll
