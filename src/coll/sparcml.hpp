// SparCML-style host-based sparse allreduce (Renggli et al., SC'19) — the
// "Host-Based Sparse" baseline of Figure 15.
//
// Recursive doubling over log2(P) rounds: partners exchange their full
// current sparse sets and merge them (union, summing on index matches).
// The set densifies every round; when the sparse encoding would exceed the
// dense vector, the host switches to the dense representation — SparCML's
// sparse-to-dense switchover.  Every host handles log2(P) increasingly
// dense messages, which is why the in-network sparse allreduce beats it on
// both time and traffic.
//
// Entry point: coll::Communicator with a sparse workload and
// Algorithm::kSparcml.  detail::SparcmlOp is a first-class op in the
// Communicator lifecycle (run / start / persistent), mirroring the host
// ring: each op draws a fresh wire-protocol id so overlapping collectives
// never mix fragments, persistent requests re-stage fresh per-iteration
// gradients (SparseWorkload::epoch_pairs), and — with
// Tuning::retransmit_timeout_ps enabled — a host stalled on its round
// partner's message NACKs for a replay of the recorded snapshot, exactly
// the receiver-driven recovery the ring uses.  SparcmlOp is also the
// fault-recovery fallback data plane of the in-network sparse engine.
#pragma once

#include <unordered_map>

#include "coll/op.hpp"
#include "core/typed_buffer.hpp"

namespace flare::coll::detail {

class SparcmlOp final : public OpBase {
 public:
  /// `trace`: attribution/tracer row id — nonzero when this op is the
  /// fallback plane of an in-network sparse session (inherits the
  /// session's stable trace); 0 allocates a fresh one.
  SparcmlOp(net::Network& net, const std::vector<net::Host*>& participants,
            const CollectiveOptions& desc, u32 trace = 0);
  ~SparcmlOp() override;

  void begin(u64 seed, std::shared_ptr<OpState> state) override;

 private:
  /// Reassembly state of one round's message: per-fragment bitmap so that
  /// replayed fragments never double-count.
  struct Partial {
    std::vector<bool> have;
    u32 have_count = 0;
    std::shared_ptr<const core::TypedBuffer> dense;
    std::shared_ptr<const std::vector<core::StoredPair>> sparse;
  };
  /// What a host sent for one round — kept until the op finishes so a NACK
  /// can replay it (the working set has moved on by then).
  struct SentMsg {
    u64 bytes = 0;
    u32 frags = 0;
    std::shared_ptr<const core::TypedBuffer> dense;
    std::shared_ptr<const std::vector<core::StoredPair>> sparse;
  };
  struct SpHost {
    net::Host* host = nullptr;
    std::vector<core::SparsePair> sparse;  ///< sorted by index
    core::TypedBuffer dense;
    bool is_dense = false;
    u32 round = 0;
    SimTime finish_ps = 0;
    SimTime last_progress_ps = 0;
    u32 nacks = 0;  ///< NACKs since last progress (backoff input)
    std::unordered_map<u32, Partial> inbox;   ///< by round
    std::unordered_map<u32, SentMsg> sent;    ///< by round (NACK replay)
  };

  /// Host h's flattened global-index input for this iteration.
  std::vector<core::SparsePair> host_pairs(u32 h, u64 seed) const;

  void send_round(u32 h, u32 r);
  void transmit(u32 h, u32 r, const SentMsg& msg);
  void on_msg(u32 h, const net::HostMsg& msg);
  void handle_nack(u32 h, u32 r);
  void send_nack(u32 h);
  void arm_watchdog();
  void on_watchdog();
  void advance(u32 h);
  void give_up();
  void finalize();

  net::Network& net_;
  const std::vector<net::Host*>& participants_;
  CollectiveOptions desc_;
  u32 proto_;
  u32 trace_;  ///< attribution tag + tracer row (see ctor)
  core::ReduceOp op_;
  u32 P_ = 0;
  u32 rounds_ = 0;
  u32 esize_ = 4;
  u64 total_elems_ = 0;
  u64 dense_bytes_ = 0;
  u64 base_traffic_ = 0;
  SimTime start_ps_ = 0;
  bool handlers_set_ = false;
  bool finished_ = false;
  u64 dense_switchovers_ = 0;
  u64 pairs_exchanged_ = 0;
  u64 retransmits_ = 0;
  /// NACK budget per stalled host before the op reports failure (see
  /// RingOp::kMaxNacks — same bounded-recovery contract).
  static constexpr u32 kMaxNacks = 64;
  SimTime timeout_ps_ = 0;
  /// Outlives-`this` guard for watchdog events left on the calendar.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  bool watchdog_armed_ = false;
  core::TypedBuffer expected_;
  std::vector<SpHost> runs_;
  u32 hosts_done_ = 0;
};

}  // namespace flare::coll::detail
