// SparCML-style host-based sparse allreduce (Renggli et al., SC'19) — the
// "Host-Based Sparse" baseline of Figure 15.
//
// Recursive doubling over log2(P) rounds: partners exchange their full
// current sparse sets and merge them (union, summing on index matches).
// The set densifies every round; when the sparse encoding would exceed the
// dense vector, the host switches to the dense representation — SparCML's
// sparse-to-dense switchover.  Every host handles log2(P) increasingly
// dense messages, which is why the in-network sparse allreduce beats it on
// both time and traffic.
//
// Entry point: coll::Communicator with a sparse workload and
// Algorithm::kSparcml (blocking-only, Communicator::run).
// detail::sparcml_oneshot is the shared implementation.  (The deprecated
// run_sparcml_allreduce wrapper is gone — every call site speaks the
// descriptor API.)
#pragma once

#include <functional>

#include "coll/result.hpp"
#include "net/network.hpp"

namespace flare::coll {

struct SparcmlOptions {
  u64 total_elems = 1 << 20;  ///< global vector length
  core::DType dtype = core::DType::kFloat32;
  u64 mtu_bytes = 4096;
};

struct SparcmlResult : CollectiveResult {
  u64 dense_switchovers = 0;  ///< messages sent in dense representation
  u64 pairs_exchanged = 0;
};

namespace detail {
/// `pairs(host)` yields host's sparse input with global indices.
SparcmlResult sparcml_oneshot(
    net::Network& net, const std::vector<net::Host*>& hosts,
    const std::function<std::vector<core::SparsePair>(u32)>& pairs,
    const SparcmlOptions& opt);
}  // namespace detail

}  // namespace flare::coll
