#include "coll/manager.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "coll/tree_cache.hpp"
#include "common/assert.hpp"
#include "net/telemetry.hpp"

namespace flare::coll {

bool tree_alive(const net::Network& net, const ReductionTree& tree) {
  for (const TreeSwitchEntry& e : tree.switches) {
    if (e.sw->failed()) return false;
    if (e.sw->id() != tree.root &&
        !net.port_usable(e.sw->id(), e.parent_port)) {
      return false;
    }
    for (const u32 p : e.child_ports) {
      if (!net.port_usable(e.sw->id(), p)) return false;
    }
  }
  return !tree.switches.empty();
}

std::optional<ReductionTree> NetworkManager::compute_tree(
    const std::vector<net::Host*>& participants, net::NodeId root) {
  const u32 n = net_.num_nodes();
  FLARE_ASSERT(!participants.empty());

  // Shortest paths over switches only (hosts hang off their single access
  // switch): plain BFS under unit hop costs, Dijkstra when a link-cost
  // provider is set — congested edges become long and the tree routes
  // around them.  `dist` counts hops either way (it is the tree DEPTH,
  // which sizes the aggregation pipeline); `cost` carries the provider
  // metric the predecessor choice minimizes.
  std::vector<u32> dist(n, std::numeric_limits<u32>::max());
  std::vector<f64> cost(n, std::numeric_limits<f64>::infinity());
  std::vector<net::NodeId> pred(n, net::kInvalidNode);
  std::vector<u32> pred_port(n, UINT32_MAX);  // port on THIS node -> parent
  dist[root] = 0;
  cost[root] = 0.0;
  std::unordered_map<net::NodeId, net::Switch*> switch_by_id;
  for (net::Switch* sw : net_.switches()) switch_by_id[sw->id()] = sw;
  if (!switch_by_id.contains(root)) return std::nullopt;
  // Fault awareness: a failed root can host nothing, and the search must
  // not route the tree across failed switches or down links (port_usable
  // below covers both the duplex link state and peer liveness).
  if (switch_by_id.at(root)->failed()) return std::nullopt;

  if (!link_cost_) {
    std::deque<net::NodeId> frontier{root};
    while (!frontier.empty()) {
      const net::NodeId cur = frontier.front();
      frontier.pop_front();
      for (const net::PortPeer& pp : net_.neighbors(cur)) {
        if (!switch_by_id.contains(pp.peer)) continue;  // skip hosts
        if (dist[pp.peer] != std::numeric_limits<u32>::max()) continue;
        if (!net_.port_usable(cur, pp.my_port)) continue;  // dead edge/peer
        dist[pp.peer] = dist[cur] + 1;
        cost[pp.peer] = cost[cur] + 1.0;
        pred[pp.peer] = cur;
        // Find the peer's port toward cur.
        for (const net::PortPeer& back : net_.neighbors(pp.peer)) {
          if (back.peer == cur) {
            pred_port[pp.peer] = back.my_port;
            break;
          }
        }
        frontier.push_back(pp.peer);
      }
    }
  } else {
    // Dijkstra with a deterministic (cost, node-id) order; ties keep the
    // first predecessor found, so equal-cost fabrics embed identically on
    // every run.
    std::set<std::pair<f64, net::NodeId>> frontier{{0.0, root}};
    while (!frontier.empty()) {
      const auto [ccost, cur] = *frontier.begin();
      frontier.erase(frontier.begin());
      if (ccost > cost[cur]) continue;  // stale entry
      for (const net::PortPeer& pp : net_.neighbors(cur)) {
        if (!switch_by_id.contains(pp.peer)) continue;  // skip hosts
        if (!net_.port_usable(cur, pp.my_port)) continue;
        const f64 ncost = cost[cur] + link_cost_(cur, pp.my_port);
        if (ncost >= cost[pp.peer]) continue;
        frontier.erase({cost[pp.peer], pp.peer});
        cost[pp.peer] = ncost;
        dist[pp.peer] = dist[cur] + 1;
        pred[pp.peer] = cur;
        for (const net::PortPeer& back : net_.neighbors(pp.peer)) {
          if (back.peer == cur) {
            pred_port[pp.peer] = back.my_port;
            break;
          }
        }
        frontier.insert({ncost, pp.peer});
      }
    }
  }

  // Each participant attaches to its single access switch.
  std::vector<std::vector<net::Host*>> hosts_of(n);
  for (net::Host* host : participants) {
    const auto& adj = net_.neighbors(host->id());
    FLARE_ASSERT_MSG(adj.size() == 1, "hosts must be single-homed");
    const net::NodeId leaf = adj[0].peer;
    if (dist[leaf] == std::numeric_limits<u32>::max()) return std::nullopt;
    // The access link must carry traffic both ways for the host to join.
    if (!net_.port_usable(host->id(), adj[0].my_port)) return std::nullopt;
    hosts_of[leaf].push_back(host);
  }

  // A switch is needed if it has participant hosts below it in the BFS tree.
  std::vector<bool> needed(n, false);
  for (net::NodeId id = 0; id < n; ++id) {
    if (hosts_of[id].empty()) continue;
    net::NodeId cur = id;
    while (cur != net::kInvalidNode && !needed[cur]) {
      needed[cur] = true;
      cur = pred[cur];
    }
  }
  if (!needed[root]) return std::nullopt;

  // Emit entries in BFS order (root first) and wire up children.
  ReductionTree tree;
  tree.root = root;
  std::vector<net::NodeId> order;
  std::unordered_map<net::NodeId, u32> entry_of;
  {
    std::deque<net::NodeId> q{root};
    while (!q.empty()) {
      const net::NodeId cur = q.front();
      q.pop_front();
      if (!needed[cur]) continue;
      entry_of[cur] = static_cast<u32>(order.size());
      order.push_back(cur);
      // Children switches = needed switches whose BFS predecessor is cur.
      // Parallel links (common in small fat trees) would enumerate a child
      // several times — deduplicate.
      std::unordered_set<net::NodeId> seen;
      for (const net::PortPeer& pp : net_.neighbors(cur)) {
        if (switch_by_id.contains(pp.peer) && pred[pp.peer] == cur &&
            needed[pp.peer] && seen.insert(pp.peer).second) {
          q.push_back(pp.peer);
        }
      }
    }
  }

  tree.host_child_index.assign(net_.hosts().size(), 0);
  tree.switches.resize(order.size());
  for (u32 i = 0; i < order.size(); ++i) {
    const net::NodeId id = order[i];
    TreeSwitchEntry& e = tree.switches[i];
    e.sw = switch_by_id.at(id);
    e.depth = dist[id];
    tree.max_depth = std::max(tree.max_depth, e.depth);
    if (id != root) e.parent_port = pred_port[id];

    // Children: participant hosts first, then needed child switches.
    u16 next_index = 0;
    for (net::Host* host : hosts_of[id]) {
      for (const net::PortPeer& pp : net_.neighbors(id)) {
        if (pp.peer == host->id()) {
          e.child_ports.push_back(pp.my_port);
          break;
        }
      }
      tree.host_child_index[host->host_index()] = next_index++;
    }
    std::unordered_set<net::NodeId> seen_children;
    for (const net::PortPeer& pp : net_.neighbors(id)) {
      if (switch_by_id.contains(pp.peer) && pred[pp.peer] == id &&
          needed[pp.peer] && seen_children.insert(pp.peer).second) {
        e.child_ports.push_back(pp.my_port);
        // The child switch will learn its index below (after all entries
        // exist).
        next_index++;
      }
    }
    e.num_children = next_index;
  }
  // Second pass: assign each non-root switch its child index at the parent.
  for (u32 i = 1; i < order.size(); ++i) {
    const net::NodeId id = order[i];
    const net::NodeId parent = pred[id];
    // Index = number of host children + position among switch children
    // (same dedup rule as the child_ports construction above).
    u16 idx = static_cast<u16>(hosts_of[parent].size());
    std::unordered_set<net::NodeId> seen_children;
    bool found = false;
    for (const net::PortPeer& pp : net_.neighbors(parent)) {
      if (!switch_by_id.contains(pp.peer) || pred[pp.peer] != parent ||
          !needed[pp.peer] || !seen_children.insert(pp.peer).second) {
        continue;
      }
      if (pp.peer == id) {
        found = true;
        break;
      }
      ++idx;
    }
    FLARE_ASSERT(found);
    tree.switches[i].child_index_at_parent = idx;
  }
  tree.cost = tree_cost(tree);
  return tree;
}

f64 NetworkManager::tree_cost(const ReductionTree& tree) const {
  // Every tree edge exactly once: each switch's child links (hosts and
  // child switches — the parent links are the same edges seen from below).
  f64 total = 0.0;
  for (const TreeSwitchEntry& e : tree.switches) {
    for (const u32 p : e.child_ports) total += edge_cost(e.sw->id(), p);
  }
  return total;
}

f64 tree_max_congestion(const net::CongestionMonitor& monitor,
                        const ReductionTree& tree) {
  f64 worst = 0.0;
  for (const TreeSwitchEntry& e : tree.switches) {
    for (const u32 p : e.child_ports) {
      worst = std::max(worst, monitor.edge_congestion(e.sw->id(), p));
    }
  }
  return worst;
}

f64 tree_max_congestion_excluding(const net::CongestionMonitor& monitor,
                                  const ReductionTree& tree, u32 trace) {
  f64 worst = 0.0;
  for (const TreeSwitchEntry& e : tree.switches) {
    for (const u32 p : e.child_ports) {
      worst = std::max(
          worst, monitor.edge_congestion_excluding(e.sw->id(), p, trace));
    }
  }
  return worst;
}

bool NetworkManager::install(const ReductionTree& tree,
                             core::AllreduceConfig cfg,
                             f64 switch_service_bps) {
  // Admission precheck: reject before touching any switch.  A partial
  // install would bump occupancy gauges whose high-water marks cannot be
  // rolled back, corrupting the peak-occupancy telemetry.
  for (const TreeSwitchEntry& e : tree.switches) {
    if (!e.sw->can_install()) return false;
  }
  std::vector<net::Switch*> installed;
  for (const TreeSwitchEntry& e : tree.switches) {
    core::AllreduceConfig sw_cfg = cfg;
    sw_cfg.num_children = e.num_children;
    sw_cfg.is_root = (e.sw->id() == tree.root);
    if (cfg.sparse) {
      // Densification along the tree: hash at the leaves/interior, array at
      // the root (Section 7).
      sw_cfg.hash_storage = !sw_cfg.is_root;
    }
    net::ReduceRole role;
    role.is_root = sw_cfg.is_root;
    role.parent_port = e.parent_port;
    role.child_index_at_parent = e.child_index_at_parent;
    role.child_ports = e.child_ports;
    role.service_bps = switch_service_bps;
    if (!e.sw->install_reduce(sw_cfg, std::move(role))) {
      for (net::Switch* sw : installed) sw->uninstall_reduce(cfg.id);
      return false;
    }
    installed.push_back(e.sw);
  }
  return true;
}

void NetworkManager::uninstall(const ReductionTree& tree, u32 allreduce_id) {
  for (const TreeSwitchEntry& e : tree.switches)
    e.sw->uninstall_reduce(allreduce_id);
#if FLARE_VALIDATE_ENABLED
  // Op-release audit: after an uninstall no switch of the tree may still
  // hold a role for the id (a survivor would pin a slot and a stale
  // engine for the install's lifetime — invisible until admission jams).
  for (const TreeSwitchEntry& e : tree.switches) {
    if (e.sw->role(allreduce_id) != nullptr) {
      validate::fail("op-release",
                     "switch '" + e.sw->name() + "' still holds a role " +
                         "for allreduce " + std::to_string(allreduce_id) +
                         " after uninstall");
    }
  }
#endif
  if (on_release_) on_release_(allreduce_id);
}

InstallReport NetworkManager::install_with_roots(
    const std::vector<net::Host*>& participants, core::AllreduceConfig cfg,
    f64 switch_service_bps, const std::vector<net::NodeId>& roots,
    TreeCache* cache) {
  InstallReport report;
  for (const net::NodeId root : roots) {
    report.attempts += 1;
    bool hit = false;
    std::optional<ReductionTree> tree =
        cache != nullptr
            ? cache->get_or_compute(*this, participants, root, &hit)
            : compute_tree(participants, root);
    if (!tree) continue;
    if (!report.any_feasible) {
      report.any_feasible = std::all_of(
          tree->switches.begin(), tree->switches.end(),
          [](const TreeSwitchEntry& e) { return e.sw->max_allreduces() > 0; });
    }
    if (install(*tree, cfg, switch_service_bps)) {
      report.cache_hit = hit;
      report.tree = std::move(tree);
      return report;
    }
  }
  return report;
}

InstallReport NetworkManager::install_with_retry(
    const std::vector<net::Host*>& participants, core::AllreduceConfig cfg,
    f64 switch_service_bps) {
  InstallReport report;
  // Prefer the embedding that uses the fewest switches (and, among those,
  // the shallowest): less switch memory consumed and fewer hops.  Under a
  // link-cost provider the preference inverts to CHEAPEST first — a
  // slightly larger tree over idle links beats a compact one through a
  // congested spine (Canary's placement result) — with size/depth/root as
  // deterministic tie-breaks.
  std::vector<ReductionTree> candidates;
  for (net::Switch* candidate : net_.switches()) {
    auto tree = compute_tree(participants, candidate->id());
    if (tree) candidates.push_back(std::move(*tree));
  }
  if (link_cost_) {
    std::sort(candidates.begin(), candidates.end(),
              [](const ReductionTree& a, const ReductionTree& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                if (a.switches.size() != b.switches.size())
                  return a.switches.size() < b.switches.size();
                if (a.max_depth != b.max_depth)
                  return a.max_depth < b.max_depth;
                return a.root < b.root;
              });
  } else {
    std::sort(candidates.begin(), candidates.end(),
              [](const ReductionTree& a, const ReductionTree& b) {
                if (a.switches.size() != b.switches.size())
                  return a.switches.size() < b.switches.size();
                return a.max_depth < b.max_depth;
              });
  }
  for (ReductionTree& tree : candidates) {
    report.attempts += 1;
    if (!report.any_feasible) {
      report.any_feasible = std::all_of(
          tree.switches.begin(), tree.switches.end(),
          [](const TreeSwitchEntry& e) { return e.sw->max_allreduces() > 0; });
    }
    if (install(tree, cfg, switch_service_bps)) {
      report.tree = std::move(tree);
      return report;
    }
  }
  return report;
}

}  // namespace flare::coll
