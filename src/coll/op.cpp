#include "coll/op.hpp"

#include <optional>
#include <utility>

#include "net/telemetry.hpp"
#include "obs/trace.hpp"

namespace flare::coll::detail {

obs::Tracer* TreeOpBase::tracer() const {
  return cfg_.trace != 0 ? net_.tracer() : nullptr;
}

void TreeOpBase::trace_iteration_begin() {
  obs::Tracer* tr = tracer();
  if (tr == nullptr || iter_span_open_) return;
  tr->name_thread(cfg_.trace, "coll-" + std::to_string(cfg_.trace));
  tr->begin(cfg_.trace, "iteration", net_.sim().now(), "iteration");
  iter_span_open_ = true;
}

void TreeOpBase::trace_iteration_end() {
  obs::Tracer* tr = tracer();
  if (tr == nullptr || !iter_span_open_) return;
  tr->end(cfg_.trace, net_.sim().now());
  iter_span_open_ = false;
}

TreeOpBase::TreeOpBase(net::Network& net, NetworkManager& manager,
                       const std::vector<net::Host*>& participants,
                       const CollectiveOptions& desc,
                       core::AllreduceConfig cfg, ReductionTree tree,
                       bool owns_install, bool sparse,
                       net::CongestionMonitor* monitor)
    : net_(net), manager_(manager), participants_(participants),
      desc_(desc), cfg_(cfg), tree_(std::move(tree)),
      owns_install_(owns_install), sparse_(sparse), monitor_(monitor) {
  timeout_ps_ = desc_.retransmit_timeout_ps;
  max_retry_ = desc_.max_retransmits;
}

TreeOpBase::~TreeOpBase() {
  // Abandoned mid-flight (communicator destroyed): release switch slots
  // and host handlers so the fabric is reusable.
  release_install();
  if (listening_) net_.remove_fault_listener(fault_listener_);
}

void TreeOpBase::release_install() {
  if (!installed_) return;
  for (net::Host* host : participants_) {
    host->clear_reduce_handler(cfg_.id);
  }
  manager_.uninstall(tree_, cfg_.id);
  installed_ = false;
}

bool TreeOpBase::begin_prologue(u64 seed, std::shared_ptr<OpState> state) {
  FLARE_ASSERT_MSG(state_ == nullptr,
                   "previous iteration of this collective still running");
  seed_ = seed;
  retransmits_ = 0;
  recoveries_ = 0;
  recover_waits_ = 0;
  migrations_iter_ = 0;
  planned_iter_ = 0;
  if (!owns_install_ && !first_begin_) {
    refresh_persistent_install();
    // Congestion adaptation happens at the iteration boundary, after the
    // fault-driven refresh: a healthy tree on hot links is still the
    // wrong tree.  An optimizer-planned move (service co-placement round)
    // applies first and suppresses the reactive check this boundary — two
    // controllers re-embedding the same session in one instant would
    // fight over the fresh id.
    if (!apply_planned_migration()) maybe_migrate();
  }
  first_begin_ = false;
  trace_iteration_begin();
  if (fallback_active()) {
    // Earlier iterations lost the fabric for good: run on the host-side
    // fallback data plane.
    begin_fallback_iteration(seed, std::move(state));
    return false;
  }
  state_ = std::move(state);
  complete_ = false;
  finished_ = false;
  return true;
}

// ------------------------------------------------------ fault recovery ----

void TreeOpBase::subscribe_faults() {
  if (listening_ || timeout_ps_ == 0) return;
  std::weak_ptr<char> w = alive_;
  fault_listener_ =
      net_.add_fault_listener([this, w](const net::FaultNotice& notice) {
        if (w.expired()) return;
        on_fault(notice);
      });
  listening_ = true;
}

void TreeOpBase::on_fault(const net::FaultNotice&) {
  if (!iteration_active() || fallback_active()) return;
  if (installed_ && tree_alive(net_, tree_)) return;  // tree unaffected
  // React off the notifier's stack: the notice fires mid-event (possibly
  // inside a Link::send) and recovery tears switch state down.
  std::weak_ptr<char> w = alive_;
  net_.sim().schedule_after(0, [this, w] {
    if (w.expired()) return;
    if (!iteration_active() || fallback_active()) return;
    if (installed_ && tree_alive(net_, tree_)) return;
    recover(/*force=*/false);
  });
}

void TreeOpBase::arm_watchdog() {
  if (timeout_ps_ == 0 || watchdog_armed_) return;
  watchdog_armed_ = true;
  std::weak_ptr<char> w = alive_;
  net_.sim().schedule_after(timeout_ps_, [this, w] {
    if (w.expired()) return;
    watchdog_armed_ = false;
    on_watchdog();
  });
}

void TreeOpBase::on_watchdog() {
  if (!iteration_active() || fallback_active()) return;
  if (scan_timeouts()) {
    recover(/*force=*/true);
    if (!iteration_active() || fallback_active()) return;
  }
  arm_watchdog();
}

bool TreeOpBase::scan_block_timeouts(
    u32 hosts, u32 blocks,
    const std::function<BlockRetryState&(u32 host)>& retry_of,
    const std::function<bool(u32 host, u32 block)>& block_done,
    const std::function<void(u32 host, u32 block)>& resend) {
  const SimTime now = net_.sim().now();
  bool escalate = false;
  for (u32 h = 0; h < hosts; ++h) {
    BlockRetryState& rs = retry_of(h);
    for (u32 b = 0; b < blocks; ++b) {
      if (!rs.sent[b] || block_done(h, b)) continue;
      // Exponential backoff: each retry doubles the wait.  Without it a
      // full-message resend (serialization time > timeout) can outlast
      // the timer, triggering a self-sustaining retransmission storm
      // that congests the access links faster than they drain.
      const u32 shift = std::min<u32>(rs.retries[b], 6);
      if (now - rs.sent_ps[b] < (timeout_ps_ << shift)) continue;
      if (rs.retries[b] >= max_retry_) {
        escalate = true;  // retransmission is not healing this block
        continue;
      }
      rs.retries[b] += 1;
      retransmits_ += 1;
      rs.sent_ps[b] = now;
      if (obs::Tracer* tr = tracer()) {
        tr->instant(cfg_.trace, "retransmit", now, "recovery");
      }
      resend(h, b);
    }
  }
  return escalate;
}

bool TreeOpBase::try_reinstall() {
  // Uninstall whatever remains of the dead tree and reinstall on the
  // surviving fabric under a fresh collective id (stale in-flight packets
  // of the old id drop harmlessly at switches and hosts).
  release_install();
  cfg_.id = manager_.next_id();
  InstallReport report = manager_.install_with_retry(
      participants_, cfg_, resolved_switch_service_bps(desc_, sparse_));
  if (!report) return false;
  tree_ = std::move(*report);
  installed_ = true;
  recoveries_ += 1;
  if (obs::Tracer* tr = tracer()) {
    tr->instant(cfg_.trace, "reinstall", net_.sim().now(), "recovery");
  }
  return true;
}

void TreeOpBase::recover(bool force) {
  if (!iteration_active() || fallback_active()) return;
  if (!force && installed_ && tree_alive(net_, tree_)) return;
  if (try_reinstall()) {
    recover_waits_ = 0;
    restart_iteration();
    return;
  }
  if (prepare_fallback()) {
    // Mid-iteration fallback: the host data plane recomputes the same
    // seeded inputs, so the published result is bit-for-bit what the
    // in-network path would have produced for exact dtypes.
    start_fallback_iteration(seed_);
    return;
  }
  // No host fallback for this kind: wait for the fabric to heal (repairs
  // also notify, this is the backstop poll).  Bounded: a fault that is
  // never repaired must surface as a FAILED result, not hang the calendar.
  if (recover_waits_ >= kMaxRecoverWaits) {
    give_up();
    return;
  }
  recover_waits_ += 1;
  std::weak_ptr<char> w = alive_;
  net_.sim().schedule_after(timeout_ps_, [this, w] {
    if (w.expired()) return;
    recover(/*force=*/false);
  });
}

void TreeOpBase::give_up() {
  if (obs::Tracer* tr = tracer()) {
    tr->instant(cfg_.trace, "give-up", net_.sim().now(), "recovery");
  }
  trace_iteration_end();
  release_install();
  CollectiveResult res;
  res.ok = false;
  res.retransmits = retransmits_;
  res.recoveries = recoveries_;
  res.migrations = migrations_iter_;
    res.planned_migrations = planned_iter_;
  finished_ = true;
  complete_ = true;
  publish(std::move(res));  // may destroy *this — nothing after
}

// ------------------------------------------------- fallback data plane ----

bool TreeOpBase::prepare_fallback() {
  std::unique_ptr<OpBase> fallback = make_fallback_op();
  if (fallback == nullptr) return false;
  release_install();
  fallback_op_ = std::move(fallback);
  if (obs::Tracer* tr = tracer()) {
    tr->instant(cfg_.trace, "fallback", net_.sim().now(), "recovery");
  }
  return true;
}

void TreeOpBase::start_fallback_iteration(u64 seed) {
  fallback_state_ = std::make_shared<OpState>();
  std::weak_ptr<char> w = alive_;
  fallback_state_->on_complete = [this, w](const CollectiveResult&) {
    if (w.expired()) return;
    on_fallback_done();
  };
  fallback_op_->begin(seed, fallback_state_);
}

void TreeOpBase::begin_fallback_iteration(u64 seed,
                                          std::shared_ptr<OpState> state) {
  state_ = std::move(state);
  complete_ = false;
  finished_ = false;
  start_fallback_iteration(seed);
}

void TreeOpBase::on_fallback_done() {
  trace_iteration_end();
  CollectiveResult res = fallback_state_->result;
  res.fell_back = true;
  res.retransmits += retransmits_;
  res.recoveries = recoveries_;
  res.migrations = migrations_iter_;
    res.planned_migrations = planned_iter_;
  finished_ = true;
  complete_ = true;
  publish(std::move(res));  // may destroy *this — nothing after
}

// --------------------------------------------------- persistent upkeep ----

void TreeOpBase::refresh_persistent_install() {
  if (fallback_active()) {
    // Probe a healed fabric to leave fallback mode.
    if (timeout_ps_ > 0 && try_reinstall()) fallback_op_.reset();
    return;
  }
  bool healthy = installed_;
  if (healthy && timeout_ps_ > 0) healthy = tree_alive(net_, tree_);
  if (healthy) {
    for (const TreeSwitchEntry& e : tree_.switches) {
      if (!e.sw->reset_reduce(cfg_.id)) {
        healthy = false;  // a switch restarted and lost the engines
        break;
      }
    }
  }
  if (healthy) return;
  FLARE_ASSERT_MSG(timeout_ps_ > 0,
                   "persistent engine vanished from the switch");
  if (!try_reinstall()) {
    prepare_fallback();
    // Otherwise proceed uninstalled: sends blackhole and the watchdog
    // escalates into recover(), which retries until the fabric heals.
  }
}

// ------------------------------------------------ congestion adaptation ---

void TreeOpBase::record_iteration_time(SimTime worst_ps) {
  last_iter_ps_ = worst_ps;
  if (best_iter_ps_ == 0 || last_iter_ps_ < best_iter_ps_) {
    best_iter_ps_ = last_iter_ps_;
  }
  trace_iteration_end();
}

void TreeOpBase::maybe_migrate() {
  if (monitor_ == nullptr || desc_.migrate_above <= 0.0 || !installed_ ||
      fallback_active()) {
    return;
  }
  // Every iteration boundary samples the monitor and asks one question:
  // how hot is this tree from OTHER tenants' traffic?  Per-collective link
  // attribution (NetPacket::trace -> Link::busy_by_trace) lets the monitor
  // subtract the session's own contribution per edge, so the old
  // completion-time regression gate — which existed only because the raw
  // EWMA could not tell self-heat from foreign heat, and which cost one
  // slow iteration of detection latency — is gone.  A session running
  // alone reads ~0 here no matter how hard it drives its tree.
  monitor_->sample();  // fresh snapshot at the decision point
  const f64 cur_hot =
      tree_max_congestion_excluding(*monitor_, tree_, cfg_.trace);
  if (cur_hot < desc_.migrate_above) return;
  if (obs::Tracer* tr = tracer()) {
    tr->instant(cfg_.trace, "migrate-considered", net_.sim().now(),
                "migration");
  }
  std::optional<ReductionTree> best;
  for (net::Switch* candidate : net_.switches()) {
    auto tree = manager_.compute_tree(participants_, candidate->id());
    if (tree && (!best || tree->cost < best->cost)) best = std::move(tree);
  }
  // Hysteresis on the WORST edge, in the same excluding view: edges every
  // candidate must cross (the participants' access links) carry the same
  // foreign heat everywhere and cancel out of a max — a migration must
  // actually shed the hottest foreign load, or the congestion is one no
  // tree can route around.
  if (!best || tree_max_congestion_excluding(*monitor_, *best, cfg_.trace) >
                   desc_.migrate_improvement * cur_hot) {
    return;
  }
  migrate_to(*best, /*planned=*/false);
}

bool TreeOpBase::plan_migration(const ReductionTree& target) {
  if (!installed_ || fallback_active()) return false;
  planned_tree_ = target;
  return true;
}

bool TreeOpBase::apply_planned_migration() {
  if (!planned_tree_) return false;
  const ReductionTree target = std::move(*planned_tree_);
  planned_tree_.reset();
  if (!installed_ || fallback_active()) return false;
  // The fabric may have changed since the optimizer froze it (faults,
  // other tenants moving): a dead target is dropped and the reactive
  // check still runs this boundary; the service re-plans next round.
  if (!tree_alive(net_, target)) return false;
  migrate_to(target, /*planned=*/true);
  return true;
}

void TreeOpBase::migrate_to(const ReductionTree& target, bool planned) {
  // Break-before-make on the PR-3 fresh-id path: stale in-flight packets
  // of the old id drop harmlessly at switches and hosts.  No calendar
  // event can run between the release and the install, so at minimum the
  // OLD embedding's slots are still free for the retry below.
  std::vector<net::NodeId> old_switches;
  for (const TreeSwitchEntry& e : tree_.switches) {
    old_switches.push_back(e.sw->id());
  }
  release_install();
  cfg_.id = manager_.next_id();
  const f64 bps = resolved_switch_service_bps(desc_, sparse_);
  if (manager_.install(target, cfg_, bps)) {
    tree_ = target;
    installed_ = true;
  } else {
    // The target shares a full switch with other tenants: take the best
    // install that fits instead (cost-ordered retry).
    InstallReport rep = manager_.install_with_retry(participants_, cfg_, bps);
    if (!rep) {
      if (!prepare_fallback()) {
        FLARE_ASSERT_MSG(timeout_ps_ > 0,
                         "migration lost the tree with fault handling off");
      }
      validate_plan_apply(planned);
      return;
    }
    tree_ = std::move(*rep);
    installed_ = true;
  }
  // A migration is a tree that MOVED: when admission pushed the session
  // back onto its old embedding (the target's slots were taken), the
  // fresh-id churn is not a migration and must not count as one.
  std::vector<net::NodeId> new_switches;
  for (const TreeSwitchEntry& e : tree_.switches) {
    new_switches.push_back(e.sw->id());
  }
  if (new_switches != old_switches) {
    if (planned) {
      planned_iter_ += 1;
      planned_total_ += 1;
    } else {
      migrations_iter_ += 1;
      migrations_total_ += 1;
    }
    if (obs::Tracer* tr = tracer()) {
      tr->instant(cfg_.trace, planned ? "planned-migrate" : "migrate",
                  net_.sim().now(), "migration");
    }
  }
  validate_plan_apply(planned);
}

void TreeOpBase::validate_plan_apply(bool planned) {
#if FLARE_VALIDATE_ENABLED
  if (!planned) return;
  if (debug_break_plan_apply_ && installed_ && !tree_.switches.empty()) {
    // Seeded violation: strip one role AFTER the install so the audit
    // below must detect the half-applied move (validate_test).
    tree_.switches.front().sw->uninstall_reduce(cfg_.id);
    debug_break_plan_apply_ = false;
  }
  if (installed_) {
    for (const TreeSwitchEntry& e : tree_.switches) {
      if (e.sw->role(cfg_.id) == nullptr) {
        validate::fail("plan-apply",
                       "planned move half-applied: switch '" + e.sw->name() +
                           "' holds no role for allreduce " +
                           std::to_string(cfg_.id));
      }
    }
  } else if (!fallback_active() && timeout_ps_ == 0) {
    validate::fail("plan-apply",
                   "planned move neither applied nor rolled back: op has no "
                   "install, no fallback, and fault handling is off");
  }
#else
  (void)planned;
#endif
}

}  // namespace flare::coll::detail
