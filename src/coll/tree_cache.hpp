// LRU cache of computed reduction trees, keyed by (participant set, root).
//
// Tree embedding is pure graph work — it depends only on the topology, the
// participant set and the chosen root, none of which change between jobs of
// the same tenant.  A multi-tenant service admits the same participant
// groups over and over (every training iteration re-issues the allreduce),
// so the control plane caches the BFS embedding and re-installs it instead
// of recomputing it per admission attempt.
#pragma once

#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "coll/manager.hpp"

namespace flare::coll {

class TreeCache {
 public:
  explicit TreeCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Cached tree for (participants, root), or nullptr.  Counts a hit or a
  /// miss.  The pointer stays valid until the next insert()/get_or_compute()
  /// call.
  const ReductionTree* lookup(const std::vector<net::Host*>& participants,
                              net::NodeId root);

  void insert(const std::vector<net::Host*>& participants, net::NodeId root,
              ReductionTree tree);

  /// lookup(); on miss, computes the tree through `manager` and caches it.
  /// `cache_hit` (optional) reports which path was taken.  Roots that cannot
  /// span the participants are not cached and return nullopt.
  std::optional<ReductionTree> get_or_compute(
      NetworkManager& manager, const std::vector<net::Host*>& participants,
      net::NodeId root, bool* cache_hit = nullptr);

  /// Extra validity predicate consulted by get_or_compute beyond
  /// tree_alive(): an entry failing it is treated as a miss and recomputed
  /// (the fresh embedding replaces it).  The congestion plane wires a
  /// staleness bound here — an embedding cached when its links were idle
  /// must not be re-served once those links run hot (see
  /// tree_max_congestion); liveness alone would keep serving it.
  using Validator = std::function<bool(const ReductionTree&)>;
  void set_validator(Validator v) { validator_ = std::move(v); }

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 stale_evictions() const { return stale_evictions_; }
  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  using LruList = std::list<std::pair<std::string, ReductionTree>>;

  static std::string make_key(const std::vector<net::Host*>& participants,
                              net::NodeId root);

  std::size_t capacity_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> map_;
  Validator validator_;
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 stale_evictions_ = 0;  ///< entries the validator rejected
};

}  // namespace flare::coll
