// The network manager (Section 4): given the participants of an allreduce,
// computes a reduction tree embedded in the physical topology, and installs
// the aggregation handlers + per-switch tree roles through the control
// plane.  Memory is statically partitioned: each switch accepts at most
// `max_allreduces` concurrent reductions; installation fails (and rolls
// back) when any switch on the tree is full, in which case the caller can
// retry with a different root or fall back to host-based allreduce —
// exactly the paper's admission policy.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/network.hpp"

namespace flare::net {
class CongestionMonitor;  // net/telemetry.hpp
}

namespace flare::coll {

struct TreeSwitchEntry {
  net::Switch* sw = nullptr;
  u32 depth = 0;                  ///< 0 at the root
  u32 parent_port = UINT32_MAX;   ///< port toward tree parent (non-root)
  u16 child_index_at_parent = 0;
  std::vector<u32> child_ports;   ///< ports to tree children (hosts+switches)
  u32 num_children = 0;
};

struct ReductionTree {
  net::NodeId root = net::kInvalidNode;
  std::vector<TreeSwitchEntry> switches;     ///< root first (BFS order)
  std::vector<u16> host_child_index;         ///< by host_index
  u32 max_depth = 0;
  /// Total embedding cost under the link-cost provider compute_tree ran
  /// with: the sum of every tree edge's cost (parent links + child links,
  /// including host access links).  Edge count when no provider (unit hop
  /// costs).  Congestion-aware placement and migration compare this.
  f64 cost = 0.0;
};

/// Outcome of an admission round (replaces the out-pointer parameters the
/// install entry points used to take).  Smart-pointer style accessors keep
/// `if (!report)` / `report->switches` call sites reading naturally.
struct InstallReport {
  std::optional<ReductionTree> tree;  ///< installed tree on success
  u32 attempts = 0;                   ///< install attempts across roots
  bool cache_hit = false;             ///< embedding reused from a TreeCache
  /// Whether at least one candidate root produced a tree every switch of
  /// which has a non-zero memory partition — false means the job can NEVER
  /// run in-network with these roots, not just not right now.
  bool any_feasible = false;

  bool has_value() const { return tree.has_value(); }
  explicit operator bool() const { return has_value(); }
  ReductionTree& operator*() { return *tree; }
  const ReductionTree& operator*() const { return *tree; }
  ReductionTree* operator->() { return &*tree; }
  const ReductionTree* operator->() const { return &*tree; }
};

/// True when every element of an installed (or cached) tree can still carry
/// traffic: no tree switch has failed and every tree edge — parent links
/// and child links, including the host access links — is up in both
/// directions.  The recovery machinery uses this both to validate cached
/// embeddings and to decide that a running collective's tree is dead.
bool tree_alive(const net::Network& net, const ReductionTree& tree);

/// Worst monitor EWMA utilization across every edge of `tree` (parent and
/// child links, both directions — host access links included via the child
/// ports).  The migration trigger and the TreeCache staleness validator
/// both key off this.
f64 tree_max_congestion(const net::CongestionMonitor& monitor,
                        const ReductionTree& tree);

/// tree_max_congestion with one collective's own traffic subtracted per
/// edge (CongestionMonitor::edge_congestion_excluding).  THE persistent-
/// session migration trigger: a session running alone on a hot-looking
/// tree reads ~0 — only foreign heat registers — which is what let the
/// completion-time regression gate retire.
f64 tree_max_congestion_excluding(const net::CongestionMonitor& monitor,
                                  const ReductionTree& tree, u32 trace);

class NetworkManager {
 public:
  explicit NetworkManager(net::Network& net) : net_(net) {}

  net::Network& network() { return net_; }

  /// Fresh collective identifier, unique across every manager sharing the
  /// network (the counter lives on net::Network).
  u32 next_id() { return net_.alloc_collective_id(); }

  /// Pluggable embedding edge-cost provider: the cost (>= 1, where 1 is an
  /// idle hop) of crossing the duplex link behind `port` of `node`.  Null
  /// (the default) keeps unit hop costs — plain shortest-hop BFS.  Wire a
  /// CongestionMonitor's edge_cost here and compute_tree routes trees
  /// around congested links, while install_with_retry prefers the
  /// cheapest (least-congested) embedding over the smallest.
  using LinkCostFn = std::function<f64(net::NodeId node, u32 port)>;
  void set_link_cost(LinkCostFn cost) { link_cost_ = std::move(cost); }
  const LinkCostFn& link_cost() const { return link_cost_; }

  /// Re-scores an existing tree under the CURRENT provider (a tree's
  /// stored cost reflects the congestion at compute time; migration
  /// decisions need today's number).
  f64 tree_cost(const ReductionTree& tree) const;

  /// Builds the BFS reduction tree rooted at `root` spanning `participants`.
  /// Returns nullopt if some participant is unreachable from the root.
  std::optional<ReductionTree> compute_tree(
      const std::vector<net::Host*>& participants, net::NodeId root);

  /// Installs `cfg` on every tree switch.  For sparse allreduces the root
  /// switch uses array storage and the others hash storage (Section 7,
  /// "densification").  Rolls back on admission failure and returns false.
  bool install(const ReductionTree& tree, core::AllreduceConfig cfg,
               f64 switch_service_bps);

  void uninstall(const ReductionTree& tree, u32 allreduce_id);

  /// compute_tree + install, preferring the smallest (then shallowest)
  /// embedding and retrying every switch as root until one admission
  /// succeeds.
  InstallReport install_with_retry(
      const std::vector<net::Host*>& participants, core::AllreduceConfig cfg,
      f64 switch_service_bps);

  /// Like install_with_retry but tries roots in the CALLER's order (the
  /// service layer's root-selection policy decides), optionally reusing
  /// embeddings from `cache`.  The report's tree is empty if every
  /// candidate was rejected by admission.
  InstallReport install_with_roots(
      const std::vector<net::Host*>& participants, core::AllreduceConfig cfg,
      f64 switch_service_bps, const std::vector<net::NodeId>& roots,
      class TreeCache* cache = nullptr);

  /// Invoked after every uninstall() with the released allreduce id — the
  /// service layer hooks this to re-try queued admissions when switch
  /// slots free up.
  using ReleaseListener = std::function<void(u32 allreduce_id)>;
  void set_release_listener(ReleaseListener listener) {
    on_release_ = std::move(listener);
  }

 private:
  f64 edge_cost(net::NodeId node, u32 port) const {
    return link_cost_ ? link_cost_(node, port) : 1.0;
  }

  net::Network& net_;
  ReleaseListener on_release_;
  LinkCostFn link_cost_;
};

}  // namespace flare::coll
