// The network manager (Section 4): given the participants of an allreduce,
// computes a reduction tree embedded in the physical topology, and installs
// the aggregation handlers + per-switch tree roles through the control
// plane.  Memory is statically partitioned: each switch accepts at most
// `max_allreduces` concurrent reductions; installation fails (and rolls
// back) when any switch on the tree is full, in which case the caller can
// retry with a different root or fall back to host-based allreduce —
// exactly the paper's admission policy.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/network.hpp"

namespace flare::coll {

struct TreeSwitchEntry {
  net::Switch* sw = nullptr;
  u32 depth = 0;                  ///< 0 at the root
  u32 parent_port = UINT32_MAX;   ///< port toward tree parent (non-root)
  u16 child_index_at_parent = 0;
  std::vector<u32> child_ports;   ///< ports to tree children (hosts+switches)
  u32 num_children = 0;
};

struct ReductionTree {
  net::NodeId root = net::kInvalidNode;
  std::vector<TreeSwitchEntry> switches;     ///< root first (BFS order)
  std::vector<u16> host_child_index;         ///< by host_index
  u32 max_depth = 0;
};

class NetworkManager {
 public:
  explicit NetworkManager(net::Network& net) : net_(net) {}

  /// Fresh allreduce identifier.
  u32 next_id() { return next_id_++; }

  /// Builds the BFS reduction tree rooted at `root` spanning `participants`.
  /// Returns nullopt if some participant is unreachable from the root.
  std::optional<ReductionTree> compute_tree(
      const std::vector<net::Host*>& participants, net::NodeId root);

  /// Installs `cfg` on every tree switch.  For sparse allreduces the root
  /// switch uses array storage and the others hash storage (Section 7,
  /// "densification").  Rolls back on admission failure and returns false.
  bool install(const ReductionTree& tree, core::AllreduceConfig cfg,
               f64 switch_service_bps);

  void uninstall(const ReductionTree& tree, u32 allreduce_id);

  /// compute_tree + install, retrying every switch as root until one
  /// admission succeeds.  Returns the tree used.
  std::optional<ReductionTree> install_with_retry(
      const std::vector<net::Host*>& participants, core::AllreduceConfig cfg,
      f64 switch_service_bps);

  /// Like install_with_retry but tries roots in the CALLER's order (the
  /// service layer's root-selection policy decides), optionally reusing
  /// embeddings from `cache`.  Returns the installed tree, or nullopt if
  /// every candidate was rejected by admission.
  /// `any_feasible` (optional) reports whether at least one candidate root
  /// produced a tree every switch of which has a non-zero memory partition
  /// — false means the job can NEVER run in-network with these roots, not
  /// just not right now.
  std::optional<ReductionTree> install_with_roots(
      const std::vector<net::Host*>& participants, core::AllreduceConfig cfg,
      f64 switch_service_bps, const std::vector<net::NodeId>& roots,
      class TreeCache* cache = nullptr, u32* attempts = nullptr,
      bool* cache_hit = nullptr, bool* any_feasible = nullptr);

  /// Invoked after every uninstall() with the released allreduce id — the
  /// service layer hooks this to re-try queued admissions when switch
  /// slots free up.
  using ReleaseListener = std::function<void(u32 allreduce_id)>;
  void set_release_listener(ReleaseListener listener) {
    on_release_ = std::move(listener);
  }

 private:
  net::Network& net_;
  u32 next_id_ = 1;
  ReleaseListener on_release_;
};

}  // namespace flare::coll
