// Flare in-network SPARSE allreduce over the network simulator — the first
// in-network sparse allreduce (Section 7; the "Flare Sparse" bars of
// Figure 15).
//
// Hosts transmit only (index, value) pairs, sharded per reduction block
// with per-block shard counts; switches aggregate in hash stores (array at
// the root), spilling collisions as extra traffic; the root multicasts the
// aggregated pairs down.  The workload is pluggable (coll::SparseWorkload)
// so both the uniform SparseSpec generator (Figure 14) and the bucketed
// gradient trace (Figure 15) drive the same protocol; persistent sessions
// draw fresh per-iteration gradients through SparseWorkload::epoch_pairs.
//
// Entry point: coll::Communicator with a sparse workload attached to
// CollectiveOptions (algorithm kAuto or kFlareSparse).  detail::SparseOp is
// a first-class op in the Communicator lifecycle, riding detail::TreeOpBase
// exactly as the dense InNetOp does: run() blocking, start() nonblocking
// handles composing on one calendar, persistent() install-once/run-many
// with per-iteration switch hash-store reset, timeout-retransmission +
// fresh-id reinstall fault recovery with a SparCML host fallback, and
// congestion-aware embedding + runtime migration.
#pragma once

#include "coll/op.hpp"
#include "core/block_state.hpp"
#include "core/typed_buffer.hpp"

namespace flare::coll::detail {

/// The in-network sparse data plane (see the file comment).  Everything
/// about the install's lifetime — fault recovery, persistent upkeep,
/// congestion migration — lives in TreeOpBase, shared with the dense
/// engine.
class SparseOp final : public TreeOpBase {
 public:
  SparseOp(net::Network& net, NetworkManager& manager,
           const std::vector<net::Host*>& participants,
           const CollectiveOptions& desc, core::AllreduceConfig cfg,
           ReductionTree tree, bool owns_install,
           net::CongestionMonitor* monitor = nullptr);

  void begin(u64 seed, std::shared_ptr<OpState> state) override;

 protected:
  std::unique_ptr<OpBase> make_fallback_op() override;
  void restart_iteration() override;
  bool scan_timeouts() override;

 private:
  struct HostRun {
    net::Host* host = nullptr;
    std::vector<u32> schedule;
    std::size_t next = 0;
    u32 outstanding = 0;
    u64 blocks_done = 0;
    SimTime finish_ps = 0;
    /// Down-multicast shard bookkeeping per block: the per-seq bitmap makes
    /// switch re-emits of cached results idempotent at the host.
    std::vector<core::ShardTracker> down;
    std::vector<bool> block_done;
    BlockRetryState retry;  ///< shared watchdog bookkeeping (TreeOpBase)
  };

  void stage(u64 seed);
  void try_send(u32 h);
  /// (Re)transmits every shard of host h's contribution to block b.
  void send_block(u32 h, u32 b, u16 extra_flags);
  void on_down(u32 h, const core::Packet& pkt);
  void finalize();

  core::ReduceOp op_;
  u32 P_ = 0;
  u32 nb_ = 0;     ///< reduction blocks
  u32 span_ = 0;   ///< index space per block
  u32 ppp_ = 0;    ///< pairs per packet
  u32 esize_ = 4;
  u32 window_ = 0;
  u64 base_traffic_ = 0;
  SimTime start_ps_ = 0;
  u64 spills_at_begin_ = 0;  ///< engine spill counters at iteration start
  /// Staged (host, block) pair lists for the CURRENT iteration; shared by
  /// the data plane and the reference check.
  std::vector<std::vector<std::vector<core::SparsePair>>> staged_;
  /// Host 0's accumulation of the down-multicast stream (contents are
  /// identical across hosts, so one copy is checked against the reference).
  core::TypedBuffer result_;
  u64 down_pairs_ = 0;
  u64 host_pairs_sent_ = 0;
  std::vector<HostRun> runs_;
  u32 hosts_done_ = 0;
};

}  // namespace flare::coll::detail
