// Flare in-network SPARSE allreduce over the network simulator — the first
// in-network sparse allreduce (Section 7; the "Flare Sparse" bars of
// Figure 15).
//
// Hosts transmit only (index, value) pairs, sharded per reduction block
// with per-block shard counts; switches aggregate in hash stores (array at
// the root), spilling collisions as extra traffic; the root multicasts the
// aggregated pairs down.  The workload is pluggable so both the uniform
// SparseSpec generator (Figure 14) and the bucketed gradient trace
// (Figure 15) drive the same protocol.
#pragma once

#include <functional>

#include "coll/manager.hpp"
#include "coll/result.hpp"
#include "core/staggered.hpp"
#include "core/typed_buffer.hpp"

namespace flare::coll {

/// Pluggable sparse data source: pairs of (host, block) with block-relative
/// indices in [0, block_span).
struct SparseWorkload {
  u32 block_span = 1280;
  u32 num_blocks = 16;
  std::function<std::vector<core::SparsePair>(u32 host, u32 block)> pairs;
};

struct FlareSparseOptions {
  core::DType dtype = core::DType::kFloat32;
  u64 packet_payload = 1024;
  u32 window_blocks = 64;
  /// Aligned by default — see FlareDenseOptions::order.
  core::SendOrder order = core::SendOrder::kAligned;
  u32 hash_capacity_pairs = 512;
  u32 spill_capacity_pairs = 64;
  /// Sparse aggregation is slower than dense (Figure 13): calibrated rate.
  f64 switch_service_bps = 1.6e12;
};

struct FlareSparseResult : CollectiveResult {
  u64 spill_packets = 0;
  u64 host_pairs_sent = 0;
  u64 down_pairs = 0;
};

FlareSparseResult run_flare_sparse(
    net::Network& net, const std::vector<net::Host*>& participants,
    const SparseWorkload& workload, const FlareSparseOptions& opt);

}  // namespace flare::coll
