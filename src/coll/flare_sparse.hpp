// Flare in-network SPARSE allreduce over the network simulator — the first
// in-network sparse allreduce (Section 7; the "Flare Sparse" bars of
// Figure 15).
//
// Hosts transmit only (index, value) pairs, sharded per reduction block
// with per-block shard counts; switches aggregate in hash stores (array at
// the root), spilling collisions as extra traffic; the root multicasts the
// aggregated pairs down.  The workload is pluggable (coll::SparseWorkload)
// so both the uniform SparseSpec generator (Figure 14) and the bucketed
// gradient trace (Figure 15) drive the same protocol.
//
// Entry point: coll::Communicator with a sparse workload attached to
// CollectiveOptions (algorithm kAuto or kFlareSparse).  The sparse engine
// is blocking-only (Communicator::run); detail::flare_sparse_oneshot is
// the shared implementation.  (The deprecated run_flare_sparse wrapper is
// gone — every call site speaks the descriptor API.)
#pragma once

#include "coll/communicator.hpp"

namespace flare::coll {

struct FlareSparseOptions : Tuning {
  /// See CollectiveOptions::order.
  core::SendOrder order = core::SendOrder::kAligned;
  u32 hash_capacity_pairs = 512;
  u32 spill_capacity_pairs = 64;
};

struct FlareSparseResult : CollectiveResult {
  u64 spill_packets = 0;
  u64 host_pairs_sent = 0;
  u64 down_pairs = 0;
};

namespace detail {
FlareSparseResult flare_sparse_oneshot(
    net::Network& net, const std::vector<net::Host*>& participants,
    const SparseWorkload& workload, const FlareSparseOptions& opt);
}  // namespace detail

}  // namespace flare::coll
