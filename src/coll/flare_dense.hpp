// Flare in-network DENSE allreduce over the network simulator (the
// "Flare Dense" bars of Figure 15).
//
// Hosts chunk their vector into N-element blocks, send each block once
// toward the reduction tree (staggered order, window flow control per
// Section 4.3), and receive the fully-aggregated blocks multicast down from
// the root.  Every host transmits ~Z bytes — half of the 2Z a host-based
// ring moves — which is the 2x traffic/bandwidth advantage of in-network
// reduction.
#pragma once

#include "coll/manager.hpp"
#include "coll/result.hpp"
#include "core/policy.hpp"
#include "core/staggered.hpp"
#include "core/typed_buffer.hpp"

namespace flare::coll {

struct FlareDenseOptions {
  u64 data_bytes = 1 * kMiB;  ///< Z per host
  core::DType dtype = core::DType::kFloat32;
  core::OpKind op = core::OpKind::kSum;
  u64 packet_payload = 1024;
  /// Blocks a host may have in flight (aggregation buffers per allreduce).
  u32 window_blocks = 64;
  /// Default aligned: in the network simulator the switch is a calibrated
  /// aggregation server (no shared-buffer contention to spread out), and
  /// staggering would delay every block's completion to the end of the
  /// message.  Staggered sending matters inside the PsPIN unit (src/pspin).
  core::SendOrder order = core::SendOrder::kAligned;
  bool reproducible = false;
  /// 0 -> auto-select by size (Section 6.4 thresholds).
  core::AggPolicy policy = core::AggPolicy::kSingleBuffer;
  bool auto_policy = true;
  /// Aggregation service rate per switch; calibrated against the PsPIN
  /// simulator (Figure 11 operating point for the configured dtype).
  f64 switch_service_bps = 2.4e12;
  u64 seed = 1;
};

CollectiveResult run_flare_dense(net::Network& net,
                                 const std::vector<net::Host*>& participants,
                                 const FlareDenseOptions& opt);

/// Multi-tenancy (Section 4): several allreduces — different participant
/// groups, sizes, dtypes — run CONCURRENTLY over one network; every switch
/// holds one engine per installed allreduce id within its `max_allreduces`
/// memory partition.  Returns one result per tenant (ok == false for
/// tenants rejected by admission control).
struct DenseTenant {
  std::vector<net::Host*> participants;
  FlareDenseOptions opt;
};

std::vector<CollectiveResult> run_flare_dense_concurrent(
    net::Network& net, std::vector<DenseTenant> tenants);

}  // namespace flare::coll
