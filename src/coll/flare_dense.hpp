// Legacy single-shot entry points for the Flare in-network DENSE allreduce
// (the "Flare Dense" bars of Figure 15).
//
// DEPRECATED: these free functions predate the Communicator session API
// (coll/communicator.hpp), which serves every collective through one
// CollectiveOptions descriptor, amortizes tree install across iterations
// (persistent requests) and composes concurrent collectives through
// nonblocking handles.  They remain as thin wrappers:
//
//   run_flare_dense(net, hosts, opt)
//     -> Communicator(net, hosts).run({kind = kAllreduce,
//                                      algorithm = kFlareDense, ...})
#pragma once

#include "coll/communicator.hpp"

namespace flare::coll {

struct FlareDenseOptions : Tuning {
  u64 data_bytes = 1 * kMiB;  ///< Z per host
  core::OpKind op = core::OpKind::kSum;
  /// See CollectiveOptions::order.
  core::SendOrder order = core::SendOrder::kAligned;
  bool reproducible = false;
  /// 0 -> auto-select by size (Section 6.4 thresholds).
  core::AggPolicy policy = core::AggPolicy::kSingleBuffer;
  bool auto_policy = true;
};

/// The CollectiveOptions equivalent of the legacy options struct.
CollectiveOptions dense_descriptor(const FlareDenseOptions& opt);

[[deprecated("use coll::Communicator with a CollectiveOptions descriptor")]]
CollectiveResult run_flare_dense(net::Network& net,
                                 const std::vector<net::Host*>& participants,
                                 const FlareDenseOptions& opt);

/// Multi-tenancy (Section 4): several allreduces — different participant
/// groups, sizes, dtypes — run CONCURRENTLY over one network.  Returns one
/// result per tenant (ok == false for tenants rejected by admission).
struct DenseTenant {
  std::vector<net::Host*> participants;
  FlareDenseOptions opt;
};

[[deprecated("use overlapping Communicator::start handles on one calendar")]]
std::vector<CollectiveResult> run_flare_dense_concurrent(
    net::Network& net, std::vector<DenseTenant> tenants);

}  // namespace flare::coll
