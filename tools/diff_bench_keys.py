#!/usr/bin/env python3
"""Diff a bench binary's BENCH_JSON report against a committed baseline.

Every bench/* binary ends its run with one machine-readable line:

    BENCH_JSON {"bench":"...", ...}

This script extracts that line from a captured bench stdout (file or stdin)
and compares its KEY SET against a committed baseline JSON file.  Values
drift run to run (timings, speedups) and are not compared — the contract CI
enforces is the report schema: a key that disappears breaks downstream
tooling silently, and a key that appears should be reviewed into the
baseline on purpose.

Boolean gate values ARE compared: a key that is `true` in the baseline must
still be `true` (pass/ok/deterministic flags regressing to false is a bench
failure even if the binary's own exit code missed it).

Usage:
  bench_binary | tee out.txt
  diff_bench_keys.py baseline.json out.txt
"""

import json
import sys

# Keys that are purely informational: present or absent, never an error,
# values never compared.  peak_rss_bytes is appended by JsonReport::emit()
# on every bench and varies with allocator/machine.
INFORMATIONAL_KEYS = {"peak_rss_bytes"}


def extract_report(path):
    stream = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    with stream:
        reports = [line.split("BENCH_JSON ", 1)[1]
                   for line in stream if "BENCH_JSON " in line]
    if not reports:
        print(f"  BENCH DIFF: no BENCH_JSON line in {path}", file=sys.stderr)
        sys.exit(1)
    return json.loads(reports[-1])


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    baseline_path, output_path = sys.argv[1], sys.argv[2]
    with open(baseline_path, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    current = extract_report(output_path)

    errors = []
    missing = sorted(set(baseline) - set(current) - INFORMATIONAL_KEYS)
    added = sorted(set(current) - set(baseline) - INFORMATIONAL_KEYS)
    if missing:
        errors.append(f"keys dropped from the report: {missing}")
    if added:
        errors.append(f"keys added (update {baseline_path} on purpose): "
                      f"{added}")
    for key, want in baseline.items():
        if want is True and current.get(key) is not True:
            errors.append(f"gate {key!r} regressed: baseline true, "
                          f"now {current.get(key)!r}")

    name = current.get("bench", "<unknown>")
    if errors:
        for e in errors:
            print(f"  BENCH DIFF [{name}]: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"  OK {name}: {len(current)} report keys match {baseline_path}")


if __name__ == "__main__":
    main()
