// flare-lint fixture: wall-clock must fire on wall clocks and entropy
// sources, and stay quiet on simulation time and identifiers that merely
// contain the banned names.  NOT compiled; consumed by test_flare_lint.py.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

struct Sim {
  unsigned long long now_ps = 0;
  unsigned long long run_time() const { return now_ps; }
};

inline unsigned long long bad_now() {
  auto t = std::chrono::system_clock::now();  // VIOLATION wall-clock
  (void)t;
  return static_cast<unsigned long long>(time(nullptr));  // VIOLATION
}

inline int bad_entropy() {
  std::random_device rd;  // VIOLATION wall-clock
  return static_cast<int>(rd()) + rand();  // VIOLATION wall-clock
}

inline long long allowed_timer() {
  // flare-lint: allow(wall-clock) host-side benchmark timer, not sim state
  return std::chrono::system_clock::now().time_since_epoch().count();
}

inline unsigned long long good(const Sim& sim) {
  std::mt19937_64 rng(42);  // seeded PRNG: clean
  return sim.run_time() + rng();
}
