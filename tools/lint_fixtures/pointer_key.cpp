// flare-lint fixture: pointer-key must fire on ordered containers and
// comparators keyed by pointer (ASLR-ordered), and stay quiet on
// id-keyed containers.  NOT compiled; consumed by test_flare_lint.py.
#include <map>
#include <queue>
#include <set>

struct Link {
  int id = 0;
};

struct Registry {
  std::map<Link*, int> index_;          // VIOLATION pointer-key
  std::set<const Link*> members_;       // VIOLATION pointer-key
  std::less<Link*> by_address_;         // VIOLATION pointer-key
  // flare-lint: allow(pointer-key) scratch map, never iterated or compared
  std::map<Link*, int> scratch_;
  std::map<int, Link*> by_id_;          // pointer VALUE is fine
};
