// flare-lint fixture: a determinism-clean file — ordered exports, seeded
// randomness, initialized wire structs, id-keyed containers, left-fold
// accumulation.  The linter must report ZERO violations here.
// NOT compiled; consumed by test_flare_lint.py.
#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <random>
#include <unordered_map>
#include <vector>

struct ExportHeader {
  std::uint32_t version = 1;
  std::uint64_t at_ps = 0;
  double scale = 1.0;
};

struct Emitter {
  std::unordered_map<std::uint32_t, double> staging_;
  std::map<std::uint32_t, double> export_order_;

  void emit(std::vector<double>& out) {
    // Deterministic pattern: move the unordered staging area into an
    // ordered container BEFORE iterating for export.
    for (std::uint32_t id = 0; id < 16; ++id) {
      auto it = staging_.find(id);
      if (it != staging_.end()) export_order_[id] = it->second;
    }
    for (const auto& [id, v] : export_order_) out.push_back(v);
  }

  double fold(const std::vector<double>& v) const {
    return std::accumulate(v.begin(), v.end(), 0.0);
  }

  std::uint64_t seeded_draw(std::uint64_t seed) const {
    std::mt19937_64 rng(seed);
    return rng();
  }
};
