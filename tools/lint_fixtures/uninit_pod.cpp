// flare-lint fixture: uninit-pod must fire on scalar/pointer members
// without initializers in wire/option structs, and stay quiet on
// initialized members, non-matching struct names, and method locals.
// NOT compiled; consumed by test_flare_lint.py.
#include <cstdint>
#include <vector>

struct WireHeader {
  std::uint32_t id = 0;
  std::uint32_t block;   // VIOLATION uninit-pod
  double scale;          // VIOLATION uninit-pod
  // flare-lint: allow(uninit-pod) always set by the only factory
  std::uint16_t flags;
  std::vector<int> payload;  // non-scalar: clean

  std::uint32_t total() const {
    std::uint32_t local;  // method local at nested depth: clean
    local = id + block;
    return local;
  }
};

struct RunOptions {
  bool verbose;  // VIOLATION uninit-pod
  int iters = 1;
};

struct Scratch {  // name doesn't match the wire/option pattern: clean
  int tmp;
};
