// flare-lint fixture: fp-accum-order must fire on std::reduce /
// transform_reduce and on floating-point accumulation inside unordered
// iteration, and stay quiet on left-fold std::accumulate and integer
// sums.  NOT compiled; consumed by test_flare_lint.py.
#include <numeric>
#include <unordered_map>
#include <vector>

struct ReducePath {
  std::unordered_map<int, double> grads_;

  double unstable_sum() {
    double acc = 0.0;
    long count = 0;
    // The loop itself is justified; the FP accumulation inside is not.
    // flare-lint: allow(unordered-iter) counting only... or so it claims
    for (const auto& [id, g] : grads_) {
      acc += g;  // VIOLATION fp-accum-order
      count += 1;  // integer: clean
    }
    return acc + static_cast<double>(count);
  }

  double unspecified_order(const std::vector<double>& v) {
    return std::reduce(v.begin(), v.end());  // VIOLATION fp-accum-order
  }

  double left_fold(const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0);  // clean
  }
};
