// flare-lint fixture: unordered-iter must fire on range-for over
// unordered containers, including members declared in-class, aliased
// types, and set iteration — and stay quiet on suppressed sites and
// ordered containers.  Accumulators are integral so only unordered-iter
// is exercised here (fp_accum.cpp covers the FP rule).
// NOT compiled; consumed by test_flare_lint.py.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

using Index = std::unordered_map<int, long>;

struct Exporter {
  std::unordered_map<int, long> by_id_;
  std::unordered_set<int> seen_;
  Index aliased_;
  std::map<int, long> ordered_;

  long dump() {
    long total = 0;
    for (const auto& [id, v] : by_id_) {  // VIOLATION unordered-iter
      total += v;
    }
    for (int id : seen_) total += id;  // VIOLATION unordered-iter
    for (const auto& [id, v] : aliased_) {  // VIOLATION unordered-iter
      total += v;
    }
    // flare-lint: allow(unordered-iter) integer sum, order-insensitive
    for (int id : seen_) total += id;
    for (const auto& [id, v] : ordered_) total += v;  // ordered: clean
    return total;
  }
};
