#!/usr/bin/env python3
"""Fixture tests for tools/check_obs_json.py.

The script is CI's schema gate on the observability plane's exported
artifacts; these tests pin each checker against minimal valid documents
and targeted corruptions: trace-event structure and span balance,
metrics-family ordering and histogram bucket consistency, and Prometheus
HELP/TYPE coverage — plus the exit-code contract (0 valid / 1 violation /
2 usage).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
CHECK = os.path.join(TOOLS_DIR, "check_obs_json.py")

VALID_TRACE = {
    "traceEvents": [
        {"ph": "M", "pid": 1, "tid": 0, "ts": 0, "name": "thread_name",
         "args": {"name": "fabric"}},
        {"ph": "B", "pid": 1, "tid": 7, "ts": 1.5, "name": "iteration",
         "cat": "iteration"},
        {"ph": "i", "pid": 1, "tid": 0, "ts": 2.0, "name": "link-down",
         "cat": "fault", "s": "t"},
        {"ph": "E", "pid": 1, "tid": 7, "ts": 2.5},
    ]
}

VALID_METRICS = {
    "metrics": [
        {"name": "alpha", "type": "counter",
         "series": [{"labels": {"x": "1"}, "value": 2}]},
        {"name": "lat", "type": "histogram",
         "series": [{"labels": {}, "count": 3, "sum": 6.0,
                     "buckets": [{"le": "1", "count": 2},
                                 {"le": "+Inf", "count": 1}]}]},
        {"name": "zeta", "type": "gauge",
         "series": [{"labels": {}, "value": 1.5}]},
    ]
}

VALID_PROM = (
    "# HELP alpha a counter\n"
    "# TYPE alpha counter\n"
    'alpha{x="1"} 2\n'
    "# HELP lat a histogram\n"
    "# TYPE lat histogram\n"
    'lat_bucket{le="1"} 2\n'
    'lat_bucket{le="+Inf"} 3\n'
    "lat_sum 6.0\n"
    "lat_count 3\n"
)


def run_check(flag, content, as_text=False):
    """Writes `content` (JSON-dumped unless as_text) to a temp file and
    runs the CLI with one artifact flag; returns the completed process."""
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "artifact")
        with open(path, "w", encoding="utf-8") as f:
            f.write(content if as_text else json.dumps(content))
        return subprocess.run([sys.executable, CHECK, flag, path],
                              capture_output=True, text=True)


def corrupted_trace(mutate):
    doc = json.loads(json.dumps(VALID_TRACE))
    mutate(doc)
    return doc


class TraceSchema(unittest.TestCase):
    def test_valid_trace_passes(self):
        p = run_check("--trace", VALID_TRACE)
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("spans balanced", p.stdout)

    def test_missing_trace_events_fails(self):
        p = run_check("--trace", {"events": []})
        self.assertEqual(p.returncode, 1)
        self.assertIn("traceEvents", p.stderr)

    def test_bad_phase_fails(self):
        doc = corrupted_trace(lambda d: d["traceEvents"][1].update(ph="X"))
        p = run_check("--trace", doc)
        self.assertEqual(p.returncode, 1)
        self.assertIn("'X'", p.stderr)

    def test_unbalanced_span_fails(self):
        doc = corrupted_trace(lambda d: d["traceEvents"].pop())  # drop the E
        p = run_check("--trace", doc)
        self.assertEqual(p.returncode, 1)
        self.assertIn("unclosed", p.stderr)

    def test_end_without_begin_fails(self):
        doc = corrupted_trace(lambda d: d["traceEvents"].pop(1))  # drop the B
        p = run_check("--trace", doc)
        self.assertEqual(p.returncode, 1)
        self.assertIn("no open span", p.stderr)

    def test_negative_timestamp_fails(self):
        doc = corrupted_trace(lambda d: d["traceEvents"][2].update(ts=-1))
        p = run_check("--trace", doc)
        self.assertEqual(p.returncode, 1)
        self.assertIn("ts", p.stderr)


def corrupted_metrics(mutate):
    doc = json.loads(json.dumps(VALID_METRICS))
    mutate(doc)
    return doc


class MetricsSchema(unittest.TestCase):
    def test_valid_metrics_pass(self):
        p = run_check("--metrics", VALID_METRICS)
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("3 families", p.stdout)

    def test_unsorted_families_fail(self):
        p = run_check("--metrics",
                      corrupted_metrics(lambda d: d["metrics"].reverse()))
        self.assertEqual(p.returncode, 1)
        self.assertIn("name order", p.stderr)

    def test_bucket_sum_mismatch_fails(self):
        def mutate(d):
            d["metrics"][1]["series"][0]["buckets"][0]["count"] = 9
        p = run_check("--metrics", corrupted_metrics(mutate))
        self.assertEqual(p.returncode, 1)
        self.assertIn("bucket counts sum", p.stderr)

    def test_missing_inf_bucket_fails(self):
        def mutate(d):
            d["metrics"][1]["series"][0]["buckets"].pop()
        p = run_check("--metrics", corrupted_metrics(mutate))
        self.assertEqual(p.returncode, 1)
        self.assertIn("+Inf", p.stderr)

    def test_bad_family_type_fails(self):
        def mutate(d):
            d["metrics"][0]["type"] = "summary"
        p = run_check("--metrics", corrupted_metrics(mutate))
        self.assertEqual(p.returncode, 1)
        self.assertIn("summary", p.stderr)


class PromSchema(unittest.TestCase):
    def test_valid_prom_passes(self):
        p = run_check("--prom", VALID_PROM, as_text=True)
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_untyped_sample_fails(self):
        p = run_check("--prom", VALID_PROM + "orphan 1\n", as_text=True)
        self.assertEqual(p.returncode, 1)
        self.assertIn("no # TYPE", p.stderr)

    def test_empty_exposition_fails(self):
        p = run_check("--prom", "\n", as_text=True)
        self.assertEqual(p.returncode, 1)
        self.assertIn("no samples", p.stderr)


class Cli(unittest.TestCase):
    def test_no_flags_is_usage_error(self):
        p = subprocess.run([sys.executable, CHECK],
                           capture_output=True, text=True)
        self.assertEqual(p.returncode, 2)


if __name__ == "__main__":
    unittest.main()
