#!/usr/bin/env python3
"""flare-lint: repo-specific determinism static analysis.

Every acceptance gate in this repo (chaos replay, migration benches, the
byte-identical observability export) rests on one property the compiler
never checks: two runs of the same seed are bit-for-bit identical.  This
linter flags the source patterns that break that property:

  unordered-iter   range-for over std::unordered_{map,set} — iteration
                   order depends on hashing/layout, so anything
                   order-sensitive (exports, FP accumulation, event
                   scheduling) diverges between runs/platforms.
  pointer-key      ordered containers/comparators keyed by pointer —
                   ASLR makes the order differ run to run.
  wall-clock       wall-clock / entropy sources (std::chrono clocks,
                   time(), rand(), std::random_device) — simulation time
                   and seeded flare::Rng are the only clocks allowed.
  uninit-pod       scalar members without initializers in wire/option
                   structs (…Packet/Header/Msg/Options/Config/Spec/
                   Notice/Pair/Result) — uninitialized padding or fields
                   leak indeterminate bytes into results and exports.
  fp-accum-order   float accumulation whose order is unspecified
                   (std::reduce / transform_reduce, or FP += inside an
                   unordered-container loop) — FP addition does not
                   commute bit-for-bit.

Suppression etiquette: silence a single site with an inline comment on
the same or the preceding line, and say WHY —

    // flare-lint: allow(unordered-iter) integer sum, order-insensitive
    for (const auto& [id, role] : roles_) total += role.bytes;

A whole file opts out of one rule with `flare-lint: allow-file(<rule>)`
in its first 40 lines.  Suppressions without a justification are legal
but frowned upon in review.

Exit status: 0 clean, 1 violations found, 2 usage error.
`--json PATH` additionally writes a machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "unordered-iter": "iteration over std::unordered_{map,set} (hash order "
                      "is not deterministic across runs/platforms)",
    "pointer-key": "ordered container or comparator keyed by pointer "
                   "(ASLR-dependent ordering)",
    "wall-clock": "wall-clock or entropy source (use simulation time and "
                  "seeded flare::Rng)",
    "uninit-pod": "uninitialized scalar member in a wire/option struct",
    "fp-accum-order": "floating-point accumulation with unspecified order",
}

DEFAULT_SCAN_DIRS = ("src", "bench", "tests")
SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc", ".hh")

UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset|less|greater)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")
WALL_CLOCK_RES = (
    re.compile(r"\bstd::chrono::(?:system_clock|steady_clock|"
               r"high_resolution_clock)\b"),
    re.compile(r"\bstd::random_device\b"),
    # Free-function calls; lookbehind rejects members (.time(), ->time()),
    # qualified names (foo::time) and identifiers merely ending in the name
    # (run_time(), word boundary handles that via \b on identifier chars).
    re.compile(r"(?<![\w.:>])(?:time|clock|gettimeofday|rand|srand|drand48)"
               r"\s*\("),
)
STD_REDUCE_RE = re.compile(r"\bstd::(?:reduce|transform_reduce)\s*\(")

# Struct names whose members must be initialized: anything that crosses a
# wire, parametrizes a run, or is exported — indeterminate bytes there are
# exactly the nondeterminism this tool exists to keep out.
POD_STRUCT_RE = re.compile(
    r"(?:Packet|Header|Msg|Message|Option|Options|Config|Spec|Notice|Pair|"
    r"Result|Report|Role|Record|Snapshot|State|Stats|Counter)$")

SCALAR_TYPES = {
    "bool", "char", "short", "int", "long", "unsigned", "float", "double",
    "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64", "f32", "f64",
    "size_t", "std::size_t",
    "std::uint8_t", "std::uint16_t", "std::uint32_t", "std::uint64_t",
    "std::int8_t", "std::int16_t", "std::int32_t", "std::int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "SimTime", "sim::SimTime", "flare::SimTime",
    "NodeId", "net::NodeId", "flare::net::NodeId",
}

ALLOW_RE = re.compile(r"flare-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"flare-lint:\s*allow-file\(([^)]*)\)")

FP_TYPES = {"float", "double", "f32", "f64"}


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str
    snippet: str


@dataclass
class FileReport:
    violations: list = field(default_factory=list)
    suppressed: int = 0


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure
    so reported line numbers match the original file."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def matching_bracket(text: str, open_pos: int, open_ch: str,
                     close_ch: str) -> int:
    """Index of the bracket closing text[open_pos]; -1 if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


IDENT_AFTER_TYPE_RE = re.compile(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(]")
USING_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=\s*$")


def unordered_names(text: str) -> set:
    """Names of variables/members/aliases declared with an unordered
    container type anywhere in `text` (comment-stripped)."""
    names = set()
    aliases = set()
    for m in UNORDERED_RE.finditer(text):
        open_angle = text.find("<", m.start())
        close = matching_bracket(text, open_angle, "<", ">")
        if close < 0:
            continue
        # `using Alias = std::unordered_map<...>;` declares a type whose
        # own declarations must be chased below.
        before = text[max(0, m.start() - 160):m.start()]
        um = USING_RE.search(before)
        im = IDENT_AFTER_TYPE_RE.match(text, close + 1)
        if um:
            aliases.add(um.group(1))
        elif im:
            names.add(im.group(1))
    for alias in aliases:
        for dm in re.finditer(r"\b" + re.escape(alias) +
                              r"\s+([A-Za-z_]\w*)\s*[;={]", text):
            names.add(dm.group(1))
    return names


def fp_names(text: str) -> set:
    """Names declared with floating-point type (accumulation candidates)."""
    names = set()
    for m in re.finditer(r"\b(?:float|double|f32|f64)\s+([A-Za-z_]\w*)\s*[;={]",
                         text):
        names.add(m.group(1))
    return names


RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


def range_for_target(text: str, for_pos: int):
    """For a range-for at `for_pos`, returns (target_name, body_start,
    body_end, header_line) or None for a classic for."""
    open_paren = text.find("(", for_pos)
    close_paren = matching_bracket(text, open_paren, "(", ")")
    if close_paren < 0:
        return None
    header = text[open_paren + 1:close_paren]
    # Range-for: `decl : expr` with no `;` at top level.
    if ";" in header:
        return None
    depth = 0
    colon = -1
    i = 0
    while i < len(header):
        ch = header[i]
        if ch in "<([{":
            depth += 1
        elif ch in ">)]}":
            depth -= 1
        elif ch == ":" and depth == 0:
            if i + 1 < len(header) and header[i + 1] == ":":
                i += 2
                continue
            if i > 0 and header[i - 1] == ":":
                i += 1
                continue
            colon = i
            break
        i += 1
    if colon < 0:
        return None
    expr = header[colon + 1:].strip()
    # The deciding token is the last identifier of the base expression,
    # with a trailing argument-less call stripped: `roles_`, `x.roles_`,
    # `sw->roles()`, `net.links()`.
    expr = re.sub(r"\(\s*\)\s*$", "", expr.rstrip())
    mm = re.search(r"([A-Za-z_]\w*)\s*$", expr)
    if not mm:
        return None
    body_open = text.find("{", close_paren)
    # Braceless range-for bodies: treat the single statement as the body.
    if body_open < 0 or text[close_paren + 1:body_open].strip():
        semi = text.find(";", close_paren)
        return (mm.group(1), close_paren + 1,
                semi if semi > 0 else close_paren + 1, line_of(text, for_pos))
    body_close = matching_bracket(text, body_open, "{", "}")
    if body_close < 0:
        body_close = len(text)
    return (mm.group(1), body_open, body_close, line_of(text, for_pos))


def struct_bodies(text: str):
    """Yields (struct_name, body_start, body_end) for struct/class
    definitions whose name matches the wire/option pattern."""
    for m in re.finditer(r"\b(?:struct|class)\s+([A-Za-z_]\w*)"
                         r"(?:\s+final)?\s*(?::[^;{]*)?\{", text):
        name = m.group(1)
        if not POD_STRUCT_RE.search(name):
            continue
        body_open = text.rfind("{", m.start(), m.end())
        body_close = matching_bracket(text, body_open, "{", "}")
        if body_close < 0:
            continue
        yield name, body_open + 1, body_close


MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?((?:[A-Za-z_][\w:]*(?:\s*::\s*\w+)*))\s*"
    r"(\*?)\s*([A-Za-z_]\w*)\s*;\s*$")


def uninit_members(text: str, name: str, start: int, end: int):
    """Scalar/pointer members without initializers, at struct depth only
    (member lines inside nested braces — methods, nested types — are
    skipped)."""
    body = text[start:end]
    depth = 0
    offset = 0
    for raw in body.split("\n"):
        line = raw
        if depth == 0:
            m = MEMBER_DECL_RE.match(line)
            if m:
                typ, star, member = m.group(1), m.group(2), m.group(3)
                if typ in ("static", "constexpr", "using", "typedef",
                           "return", "friend"):
                    pass
                elif star == "*" or typ in SCALAR_TYPES:
                    yield (line_of(text, start + offset), name, member, typ +
                           ("*" if star else ""))
        depth += line.count("{") - line.count("}")
        depth = max(depth, 0)
        offset += len(raw) + 1


def gather_allows(lines):
    """Per-line and per-file suppressions from the ORIGINAL source lines."""
    line_allows = {}
    file_allows = set()
    for i, line in enumerate(lines):
        m = ALLOW_FILE_RE.search(line)
        if m and i < 40:
            file_allows.update(r.strip() for r in m.group(1).split(","))
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            line_allows.setdefault(i + 1, set()).update(rules)
    return line_allows, file_allows


def is_suppressed(rule, line, line_allows, file_allows):
    if rule in file_allows or "*" in file_allows:
        return True
    for candidate in (line, line - 1):
        rules = line_allows.get(candidate)
        if rules and (rule in rules or "*" in rules):
            return True
    return False


def sibling_header_text(path: str) -> str:
    base, ext = os.path.splitext(path)
    if ext not in (".cpp", ".cc"):
        return ""
    for hext in (".hpp", ".h", ".hh"):
        hp = base + hext
        if os.path.exists(hp):
            with open(hp, encoding="utf-8", errors="replace") as f:
                return strip_comments_and_strings(f.read())
    return ""


def lint_file(path: str, rel: str, report: FileReport):
    with open(path, encoding="utf-8", errors="replace") as f:
        original = f.read()
    lines = original.split("\n")
    text = strip_comments_and_strings(original)
    line_allows, file_allows = gather_allows(lines)

    def emit(rule, line, message):
        if is_suppressed(rule, line, line_allows, file_allows):
            report.suppressed += 1
            return
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        report.violations.append(Violation(rel, line, rule, message, snippet))

    # Members declared unordered in the sibling header are iterated from
    # the .cpp — merge both declaration sets.
    unames = unordered_names(text) | unordered_names(sibling_header_text(path))
    fnames = fp_names(text)

    # unordered-iter + fp-accum-order (inside unordered loop bodies).
    for m in RANGE_FOR_RE.finditer(text):
        rf = range_for_target(text, m.start())
        if not rf:
            continue
        target, body_start, body_end, header_line = rf
        if target not in unames:
            continue
        emit("unordered-iter", header_line,
             f"range-for over unordered container '{target}' — emit in "
             "sorted/indexed order, use an ordered container, or justify "
             "with an inline allow")
        body = text[body_start:body_end]
        for am in re.finditer(r"([A-Za-z_]\w*)\s*\+=", body):
            if am.group(1) in fnames:
                emit("fp-accum-order",
                     line_of(text, body_start + am.start()),
                     f"floating-point accumulation into '{am.group(1)}' in "
                     "unordered iteration order — FP addition does not "
                     "commute bit-for-bit")

    for m in POINTER_KEY_RE.finditer(text):
        emit("pointer-key", line_of(text, m.start()),
             "ordered container/comparator keyed by pointer — ASLR orders "
             "it differently every run; key by stable id instead")

    for rx in WALL_CLOCK_RES:
        for m in rx.finditer(text):
            emit("wall-clock", line_of(text, m.start()),
                 f"'{m.group(0).strip()}' — wall clocks and entropy "
                 "sources break replay; use sim time / seeded flare::Rng")

    for m in STD_REDUCE_RE.finditer(text):
        emit("fp-accum-order", line_of(text, m.start()),
             "std::reduce/transform_reduce has unspecified evaluation "
             "order — use std::accumulate (left fold) on reduce paths")

    for name, start, end in struct_bodies(text):
        for line, sname, member, typ in uninit_members(text, name, start,
                                                       end):
            emit("uninit-pod", line,
                 f"{sname}::{member} ({typ}) has no initializer — "
                 "indeterminate bytes leak into wire formats and exports")


def collect_files(root: str, paths):
    files = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            files.append(ap)
            continue
        for dirpath, _dirnames, filenames in os.walk(ap):
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, fn))
    return sorted(set(files))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="flare-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files/directories to scan (default: src bench "
                         "tests under --root)")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the checkout containing this tool)")
    ap.add_argument("--json", metavar="PATH",
                    help="write a machine-readable report to PATH")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:16} {desc}")
        return 0

    paths = args.paths or [d for d in DEFAULT_SCAN_DIRS
                           if os.path.isdir(os.path.join(args.root, d))]
    files = collect_files(args.root, paths)
    if not files:
        print("flare-lint: no source files found", file=sys.stderr)
        return 2

    report = FileReport()
    for path in files:
        rel = os.path.relpath(path, args.root)
        lint_file(path, rel, report)

    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    for v in report.violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
        if v.snippet:
            print(f"    {v.snippet}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump({
                "files_scanned": len(files),
                "suppressed": report.suppressed,
                "violations": [v.__dict__ for v in report.violations],
            }, f, indent=2, sort_keys=True)
            f.write("\n")

    n = len(report.violations)
    print(f"flare-lint: {len(files)} files, {n} violation(s), "
          f"{report.suppressed} suppressed")
    return 1 if n else 0


if __name__ == "__main__":
    sys.exit(main())
