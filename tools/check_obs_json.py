#!/usr/bin/env python3
"""Schema checker for the observability plane's emitted artifacts.

Validates, with no third-party dependencies:

  * a Chrome trace-event JSON (as written by flare::obs::Tracer) — the
    exact structure chrome://tracing and Perfetto ingest: a top-level
    object with a "traceEvents" array of B/E/i/M records, microsecond
    timestamps, and balanced begin/end spans per row;
  * a metrics registry JSON export (flare::obs::MetricsRegistry::to_json)
    — named families typed counter/gauge/histogram with labeled series,
    cumulative-consistent histogram buckets ending at +Inf;
  * a Prometheus text exposition file (to_prometheus) — every sample line
    preceded by its family's # HELP / # TYPE header.

Usage:
  check_obs_json.py --trace obs_trace.json --metrics obs_metrics.json \
                    --prom obs_metrics.prom

Any subset of the three flags may be given.  Exits non-zero with a list of
violations on the first invalid artifact.
"""

import argparse
import json
import re
import sys

PHASES = {"B", "E", "i", "M"}


def fail(errors):
    for e in errors:
        print(f"  SCHEMA VIOLATION: {e}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    errors = []
    with open(path, "rb") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail([f"{path}: top level must be an object with 'traceEvents'"])
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail([f"{path}: 'traceEvents' must be a non-empty array"])
    open_spans = {}  # tid -> depth
    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in PHASES:
            errors.append(f"{where}: ph {ph!r} not one of {sorted(PHASES)}")
            continue
        if "pid" not in ev or "tid" not in ev:
            errors.append(f"{where}: missing pid/tid")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts {ts!r} is not a number >= 0")
        tid = ev["tid"]
        if ph == "B":
            if not ev.get("name"):
                errors.append(f"{where}: B record without a name")
            open_spans[tid] = open_spans.get(tid, 0) + 1
        elif ph == "E":
            if open_spans.get(tid, 0) <= 0:
                errors.append(f"{where}: E on tid {tid} with no open span")
            else:
                open_spans[tid] -= 1
        elif ph == "i":
            if not ev.get("name"):
                errors.append(f"{where}: instant without a name")
        elif ph == "M":
            if ev.get("name") != "thread_name":
                errors.append(f"{where}: metadata record is not thread_name")
            if not ev.get("args", {}).get("name"):
                errors.append(f"{where}: thread_name without args.name")
    for tid, depth in sorted(open_spans.items()):
        if depth != 0:
            errors.append(f"{path}: tid {tid} ends with {depth} unclosed span(s)")
    if errors:
        fail(errors)
    print(f"  OK {path}: {len(events)} trace events, spans balanced")


def check_metrics_json(path):
    errors = []
    with open(path, "rb") as f:
        doc = json.load(f)
    families = doc.get("metrics")
    if not isinstance(families, list) or not families:
        fail([f"{path}: top level must hold a non-empty 'metrics' array"])
    names = [f.get("name") for f in families]
    if names != sorted(names):
        errors.append(f"{path}: families are not in name order")
    n_series = 0
    for fam in families:
        name = fam.get("name", "<unnamed>")
        if fam.get("type") not in ("counter", "gauge", "histogram"):
            errors.append(f"{path}: {name}: bad type {fam.get('type')!r}")
            continue
        series = fam.get("series")
        if not isinstance(series, list) or not series:
            errors.append(f"{path}: {name}: empty series")
            continue
        n_series += len(series)
        for s in series:
            if not isinstance(s.get("labels"), dict):
                errors.append(f"{path}: {name}: series without labels object")
                continue
            if fam["type"] == "histogram":
                buckets = s.get("buckets")
                if not isinstance(buckets, list) or not buckets:
                    errors.append(f"{path}: {name}: histogram without buckets")
                    continue
                if buckets[-1].get("le") != "+Inf":
                    errors.append(f"{path}: {name}: last bucket is not +Inf")
                total = sum(b.get("count", 0) for b in buckets)
                if total != s.get("count"):
                    errors.append(
                        f"{path}: {name}: bucket counts sum {total} != "
                        f"count {s.get('count')}")
            elif "value" not in s:
                errors.append(f"{path}: {name}: series without value")
    if errors:
        fail(errors)
    print(f"  OK {path}: {len(families)} families, {n_series} series")


SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{.*\})? \S+$")


def check_prom(path):
    errors = []
    helped, typed = set(), set()
    samples = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if parts[3] not in ("counter", "gauge", "histogram"):
                    errors.append(f"{path}:{lineno}: bad TYPE {parts[3]!r}")
                typed.add(parts[2])
                continue
            m = SAMPLE_RE.match(line)
            if m is None:
                errors.append(f"{path}:{lineno}: unparseable sample: {line!r}")
                continue
            family = re.sub(r"_(bucket|sum|count)$", "", m.group(1))
            if family not in typed and m.group(1) not in typed:
                errors.append(
                    f"{path}:{lineno}: sample {m.group(1)!r} has no # TYPE")
            samples += 1
    if samples == 0:
        errors.append(f"{path}: no samples at all")
    if errors:
        fail(errors)
    print(f"  OK {path}: {samples} samples, {len(typed)} typed families")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--metrics", help="metrics registry JSON to validate")
    ap.add_argument("--prom", help="Prometheus text exposition to validate")
    args = ap.parse_args()
    if not (args.trace or args.metrics or args.prom):
        ap.error("give at least one of --trace/--metrics/--prom")
    if args.trace:
        check_trace(args.trace)
    if args.metrics:
        check_metrics_json(args.metrics)
    if args.prom:
        check_prom(args.prom)


if __name__ == "__main__":
    main()
