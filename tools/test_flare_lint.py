#!/usr/bin/env python3
"""Golden-fixture tests for tools/flare_lint.py.

Each fixture under tools/lint_fixtures/ carries known violations (marked
with VIOLATION comments) plus a suppressed instance of the same hazard;
these tests pin the exact (rule, line) set the linter must report, the
suppression accounting, the JSON report shape, and the CLI exit-code
contract (non-zero on violations, zero on a clean tree).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")
LINT = os.path.join(TOOLS_DIR, "flare_lint.py")

sys.path.insert(0, TOOLS_DIR)
import flare_lint  # noqa: E402


def lint(fixture):
    """Runs the linter in-process on one fixture; returns (violations,
    suppressed) with violations as a set of (rule, line)."""
    report = flare_lint.FileReport()
    path = os.path.join(FIXTURES, fixture)
    flare_lint.lint_file(path, fixture, report)
    return ({(v.rule, v.line) for v in report.violations}, report.suppressed)


class FixtureRules(unittest.TestCase):
    def test_unordered_iter_fires(self):
        violations, suppressed = lint("unordered_iter.cpp")
        self.assertEqual(violations, {
            ("unordered-iter", 22),  # member
            ("unordered-iter", 25),  # unordered_set
            ("unordered-iter", 26),  # via `using` alias
        })
        self.assertEqual(suppressed, 1)

    def test_pointer_key_fires(self):
        violations, suppressed = lint("pointer_key.cpp")
        self.assertEqual(violations, {
            ("pointer-key", 13),  # std::map<Link*, ...>
            ("pointer-key", 14),  # std::set<const Link*>
            ("pointer-key", 15),  # std::less<Link*>
        })
        self.assertEqual(suppressed, 1)

    def test_wall_clock_fires(self):
        violations, suppressed = lint("wall_clock.cpp")
        self.assertEqual(violations, {
            ("wall-clock", 15),  # std::chrono::system_clock
            ("wall-clock", 17),  # time(nullptr)
            ("wall-clock", 21),  # std::random_device
            ("wall-clock", 22),  # rand()
        })
        self.assertEqual(suppressed, 1)

    def test_uninit_pod_fires(self):
        violations, suppressed = lint("uninit_pod.cpp")
        self.assertEqual(violations, {
            ("uninit-pod", 10),  # u32 without initializer
            ("uninit-pod", 11),  # double without initializer
            ("uninit-pod", 24),  # bool in an Options struct
        })
        self.assertEqual(suppressed, 1)

    def test_fp_accum_fires(self):
        violations, suppressed = lint("fp_accum.cpp")
        self.assertEqual(violations, {
            ("fp-accum-order", 18),  # FP += inside unordered loop
            ("fp-accum-order", 25),  # std::reduce
        })
        # The unordered-iter allow does NOT silence the FP rule.
        self.assertEqual(suppressed, 1)

    def test_clean_fixture_is_clean(self):
        violations, suppressed = lint("clean.cpp")
        self.assertEqual(violations, set())
        self.assertEqual(suppressed, 0)


class CliContract(unittest.TestCase):
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, LINT, *args],
            capture_output=True, text=True, check=False)

    def test_exits_nonzero_on_violations_with_json_report(self):
        with tempfile.TemporaryDirectory() as td:
            out = os.path.join(td, "report.json")
            proc = self.run_cli("--json", out,
                                os.path.join(FIXTURES, "wall_clock.cpp"))
            self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
            with open(out, encoding="utf-8") as f:
                report = json.load(f)
            self.assertEqual(report["files_scanned"], 1)
            self.assertEqual(report["suppressed"], 1)
            rules = {v["rule"] for v in report["violations"]}
            self.assertEqual(rules, {"wall-clock"})
            for v in report["violations"]:
                for key in ("path", "line", "rule", "message", "snippet"):
                    self.assertIn(key, v)

    def test_exits_zero_on_clean_file(self):
        proc = self.run_cli(os.path.join(FIXTURES, "clean.cpp"))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_real_tree_is_clean(self):
        # The determinism contract for the repo itself: src/ bench/ tests/
        # lint clean (fixed or explicitly justified via inline allows).
        proc = self.run_cli()
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in flare_lint.RULES:
            self.assertIn(rule, proc.stdout)


if __name__ == "__main__":
    unittest.main()
