#!/usr/bin/env python3
"""Fixture tests for tools/diff_bench_keys.py.

The script is CI's schema gate on every bench's BENCH_JSON report line;
these tests pin the contract with synthetic captures: key-set equality
(missing AND added keys fail), boolean-gate regression detection (a
baseline `true` must stay `true`), last-line-wins extraction, and the
exit-code protocol (0 match / 1 mismatch / 1 no report / 2 usage).
"""

import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
DIFF = os.path.join(TOOLS_DIR, "diff_bench_keys.py")

BASELINE = '{"bench": "demo", "elapsed_s": 1.5, "deterministic": true}\n'


def run_diff(baseline_text, output_text):
    """Writes both sides to temp files and runs the CLI; returns the
    completed process (stdout/stderr captured as text)."""
    with tempfile.TemporaryDirectory() as d:
        base = os.path.join(d, "baseline.json")
        out = os.path.join(d, "out.txt")
        with open(base, "w", encoding="utf-8") as f:
            f.write(baseline_text)
        with open(out, "w", encoding="utf-8") as f:
            f.write(output_text)
        return subprocess.run([sys.executable, DIFF, base, out],
                              capture_output=True, text=True)


def capture(report_json):
    """Wraps a JSON report into a plausible bench stdout capture."""
    return ("bench chatter line\n"
            f"BENCH_JSON {report_json}\n"
            "trailing chatter\n")


class KeySetContract(unittest.TestCase):
    def test_matching_report_passes(self):
        p = run_diff(BASELINE, capture(BASELINE.strip()))
        self.assertEqual(p.returncode, 0, p.stderr)
        self.assertIn("OK demo", p.stdout)

    def test_missing_key_fails(self):
        p = run_diff(BASELINE,
                     capture('{"bench": "demo", "deterministic": true}'))
        self.assertEqual(p.returncode, 1)
        self.assertIn("keys dropped", p.stderr)
        self.assertIn("elapsed_s", p.stderr)

    def test_added_key_fails(self):
        p = run_diff(BASELINE, capture(
            '{"bench": "demo", "elapsed_s": 2.0, "deterministic": true,'
            ' "surprise": 7}'))
        self.assertEqual(p.returncode, 1)
        self.assertIn("keys added", p.stderr)
        self.assertIn("surprise", p.stderr)

    def test_values_are_not_compared(self):
        # Timings drift run to run; only the key set and the gates gate.
        p = run_diff(BASELINE, capture(
            '{"bench": "demo", "elapsed_s": 99.0, "deterministic": true}'))
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_peak_rss_is_informational(self):
        # JsonReport::emit() appends peak_rss_bytes to every report; its
        # presence (or absence from an old baseline) never fails the diff.
        p = run_diff(BASELINE, capture(
            '{"bench": "demo", "elapsed_s": 1.0, "deterministic": true,'
            ' "peak_rss_bytes": 123456789}'))
        self.assertEqual(p.returncode, 0, p.stderr)
        base = ('{"bench": "demo", "elapsed_s": 1.5, "deterministic": true,'
                ' "peak_rss_bytes": 1}\n')
        p = run_diff(base, capture(
            '{"bench": "demo", "elapsed_s": 1.0, "deterministic": true}'))
        self.assertEqual(p.returncode, 0, p.stderr)


class BooleanGates(unittest.TestCase):
    def test_flipped_gate_fails(self):
        p = run_diff(BASELINE, capture(
            '{"bench": "demo", "elapsed_s": 1.0, "deterministic": false}'))
        self.assertEqual(p.returncode, 1)
        self.assertIn("regressed", p.stderr)
        self.assertIn("deterministic", p.stderr)

    def test_gate_must_be_exactly_true(self):
        # Truthy-but-not-True (1, "true") still counts as a regression.
        p = run_diff(BASELINE, capture(
            '{"bench": "demo", "elapsed_s": 1.0, "deterministic": 1}'))
        self.assertEqual(p.returncode, 1)
        self.assertIn("regressed", p.stderr)

    def test_false_baseline_gate_may_stay_false(self):
        base = '{"bench": "demo", "flaky": false}\n'
        p = run_diff(base, capture('{"bench": "demo", "flaky": false}'))
        self.assertEqual(p.returncode, 0, p.stderr)


class Extraction(unittest.TestCase):
    def test_no_report_line_fails(self):
        p = run_diff(BASELINE, "just chatter, no report\n")
        self.assertEqual(p.returncode, 1)
        self.assertIn("no BENCH_JSON", p.stderr)

    def test_last_report_line_wins(self):
        # A bench that prints intermediate reports: CI diffs the final one.
        stale = 'BENCH_JSON {"bench": "demo", "partial": true}\n'
        p = run_diff(BASELINE, stale + capture(BASELINE.strip()))
        self.assertEqual(p.returncode, 0, p.stderr)

    def test_usage_error_exits_2(self):
        p = subprocess.run([sys.executable, DIFF],
                           capture_output=True, text=True)
        self.assertEqual(p.returncode, 2)


if __name__ == "__main__":
    unittest.main()
