// Figure 7 — single-buffer aggregation: modeled bandwidth, input-buffer
// occupancy and working-memory occupancy for S = 1 vs S = C, at
// 8 KiB / 64 KiB / 512 KiB reductions (fp32, 1 KiB packets, K = 512,
// C = 8, P = 16).
#include <cstdio>

#include "bench_util.hpp"
#include "model/policies.hpp"

using namespace flare;

int main() {
  bench::print_title("Figure 7",
                     "single-buffer aggregation: bandwidth & memory vs S");
  bench::JsonReport report("fig07_single_buffer");
  const u64 sizes[] = {8_KiB, 64_KiB, 512_KiB};

  std::printf("  %-8s | %13s %13s | %13s %13s | %13s %13s\n", "", "Band S=1",
              "Band S=C", "InpBuf S=1", "InpBuf S=C", "WorkMem S=1",
              "WorkMem S=C");
  std::printf("  %-8s | %13s %13s | %13s %13s | %13s %13s\n", "size",
              "(Tbps)", "(Tbps)", "(MiB)", "(MiB)", "(MiB)", "(MiB)");
  for (const u64 z : sizes) {
    model::SwitchParams s1;
    s1.subset = 1;
    model::SwitchParams sc;  // defaults: S = C = 8
    const auto p1 =
        model::evaluate(s1, core::AggPolicy::kSingleBuffer, 1, z);
    const auto pc =
        model::evaluate(sc, core::AggPolicy::kSingleBuffer, 1, z);
    std::printf("  %-8s | %13s %13s | %13s %13s | %13s %13s\n",
                bench::fmt_size(z).c_str(),
                bench::fmt_tbps(p1.bandwidth_bps).c_str(),
                bench::fmt_tbps(pc.bandwidth_bps).c_str(),
                bench::fmt_mib(p1.input_buffer_bytes).c_str(),
                bench::fmt_mib(pc.input_buffer_bytes).c_str(),
                bench::fmt_mib(p1.working_memory_bytes).c_str(),
                bench::fmt_mib(pc.working_memory_bytes).c_str());
    report.add("band_s1_tbps_" + bench::fmt_size(z),
               p1.bandwidth_bps / 1e12)
        .add("band_sc_tbps_" + bench::fmt_size(z), pc.bandwidth_bps / 1e12);
  }
  std::printf("\n  Paper shape: S=C collapses bandwidth for small messages "
              "(lock contention),\n  S=1 keeps bandwidth but inflates the "
              "input buffers by ~an order of magnitude;\n  for >= 512 KiB "
              "(staggered sending effective) both perform, S=C uses far\n"
              "  less input-buffer memory; working memory stays ~0.5 MiB.\n");
  report.emit();
  return 0;
}
