// Congestion-aware dynamic trees vs congestion-blind static trees
// (beyond-paper; the Canary result on the Flare substrate).
//
// Fabric: 32 hosts x radix-8 fat tree = 8 leaves x 4 spines, one link per
// leaf-spine pair, so an allreduce over leaves 0+1 has four equal-size
// 3-switch embeddings {spineX, leaf0, leaf1} — placement is PURELY a
// congestion decision.  Seeded background cross-traffic runs in two
// phases, traffic-engineered by ECMP flow label (the same flow hash the
// switches use) so the congestion lands on KNOWN spines:
//
//   phase A [0 .. T_mid)      on/off flows crossing spine0;
//   phase B [T_mid .. T_end)  on/off flows crossing spine1.
//
// Both contenders run the same 12-iteration persistent int32 allreduce
// over hosts 0..7 against bit-identical background traffic:
//
//   blind — static fixed-root tree at spine0 (the RootPolicy::kFixed
//           baseline): sits in phase-A congestion the whole phase;
//   aware — CongestionMonitor-backed embedding picks a cool spine at
//           install time (spine1, by deterministic tie-break), then phase
//           B heats exactly that spine and the completion-time watch +
//           EWMA hysteresis must MIGRATE the session off it.
//
// Acceptance (exit non-zero otherwise):
//   * every iteration of both runs is bit-for-bit correct (int32 sum);
//   * the aware run's total completion time beats the blind run's;
//   * the aware session migrates at least once;
//   * a full re-run with the same seed reproduces every per-iteration
//     completion time and every migration instant exactly;
//   * zero switch occupancy leaks after the migrations and the release.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "coll/communicator.hpp"
#include "net/telemetry.hpp"
#include "workload/cross_traffic.hpp"

using namespace flare;

namespace {

constexpr u32 kIterations = 12;
constexpr u64 kSeed = 42;

net::FatTreeSpec fabric_spec() {
  net::FatTreeSpec spec;
  spec.hosts = 32;
  spec.radix = 8;  // 8 leaves x 4 spines, no parallel links
  return spec;
}

/// Smallest flow label >= `salt` that the switches' ECMP hash
/// (net::ecmp_index — the forwarding plane's own function) steers from
/// leaf `src_leaf` onto spine `spine` (cross-leaf ECMP sets enumerate the
/// four uplinks in port order: uplink j of leaf l reaches spine (l+j)%4).
u64 label_for(u32 src_leaf, u32 spine, u64 salt) {
  const u32 want = (spine + 4 - src_leaf % 4) % 4;
  for (u64 label = salt;; ++label) {
    if (net::ecmp_index(label, 4) == want) return label;
  }
}

/// On/off flows crossing `spine` in both tree directions: into the
/// participant leaves 0/1 (heats the down-multicast path spineX->leaf) and
/// out of them (heats the contribution path leaf->spineX).  Endpoints are
/// the participants' LEAF-MATES (hosts 2,3 on leaf0; 6,7 on leaf1): the
/// background crosses the contested spine<->leaf links but never the
/// participants' own access links — tenant traffic next door, not on top.
workload::CrossTrafficSpec phase_spec(SimTime start, SimTime end,
                                      u32 spine, u64 seed) {
  workload::CrossTrafficSpec spec;
  spec.seed = seed;
  spec.start_ps = start;
  spec.horizon_ps = end;
  spec.flow_rate_bps = 80e9;         // hot enough that sharing visibly hurts
  spec.mean_on_ps = 60 * kPsPerUs;   // ~90% duty cycle: sustained pressure
  spec.mean_off_ps = 6 * kPsPerUs;
  spec.incast_bursts = 0;  // incast hits access links no tree can avoid
  // Host h lives on leaf h/4.  Remote endpoints sit on leaves 2..5.
  spec.pairs = {{8, 2}, {12, 6}, {16, 3}, {20, 7},    // into leaves 0/1
                {2, 8}, {6, 12}, {3, 16}, {7, 20}};   // out of leaves 0/1
  spec.flows = static_cast<u32>(spec.pairs.size());
  for (u32 f = 0; f < spec.flows; ++f) {
    const u32 src_leaf = spec.pairs[f].first / 4;
    spec.flow_labels.push_back(label_for(src_leaf, spine, seed + 100 * f));
  }
  return spec;
}

/// The four trainers: hosts 0,1 (leaf0) and 4,5 (leaf1).
std::vector<net::Host*> participants(const net::BuiltTopology& topo) {
  return {topo.hosts[0], topo.hosts[1], topo.hosts[4], topo.hosts[5]};
}

coll::CollectiveOptions allreduce_desc() {
  coll::CollectiveOptions desc;
  desc.algorithm = coll::Algorithm::kFlareDense;
  desc.data_bytes = 128 * kKiB;
  desc.dtype = core::DType::kInt32;
  desc.seed = kSeed;
  return desc;
}

struct RunResult {
  std::vector<f64> iter_seconds;       // per-iteration completion
  std::vector<u32> iter_migrations;    // migrations preparing iteration i
  std::vector<net::NodeId> iter_root;  // live tree root per iteration
  f64 total_seconds = 0.0;
  u32 migrations = 0;
  bool ok = true;       // every iteration correct and bit-for-bit
  bool leak_free = true;  // 3 slots while running, 0 after release
};

/// One contender: `aware` wires the CongestionMonitor (cost-driven
/// placement + migration); blind pins the static spine0 tree.  Iterations
/// start on a fixed training cadence (`period`): the gaps model the
/// compute phase between allreduces, during which the background keeps
/// flowing and the monitor's windows keep turning.
RunResult run_contender(bool aware, SimTime t_mid, SimTime t_end,
                        SimTime period) {
  net::Network net;
  auto topo = net::build_fat_tree(net, fabric_spec());
  workload::CrossTrafficInjector phase_a(net,
                                         phase_spec(0, t_mid, 0, kSeed));
  workload::CrossTrafficInjector phase_b(net,
                                         phase_spec(t_mid, t_end, 1, kSeed));
  phase_a.arm();
  phase_b.arm();

  net::CongestionMonitor monitor(net);
  coll::CommunicatorConfig cfg;
  if (aware) {
    monitor.arm_until(t_end);  // regular windows: EWMA tracks the phases
    cfg.monitor = &monitor;
  } else {
    cfg.roots = {topo.spines[0]->id()};  // static fixed-root baseline
  }
  coll::Communicator comm(net, participants(topo), std::move(cfg));

  coll::CollectiveOptions desc = allreduce_desc();
  if (aware) {
    desc.migrate_above = 0.2;
    desc.migrate_improvement = 0.85;
  }

  // Warm-up: let phase A build queues before placement happens.
  const SimTime warm = 10 * kPsPerUs;
  net.sim().run_until(warm);
  coll::PersistentCollective pc = comm.persistent(desc);
  RunResult out;
  if (!pc.ok()) {
    out.ok = false;
    return out;
  }

  for (u32 it = 0; it < kIterations; ++it) {
    net.sim().run_until(warm + it * period);  // training cadence
    coll::CollectiveHandle handle = pc.start();
    // Drive the shared calendar only as far as this iteration needs: the
    // background injectors own events far past the last iteration, so
    // run() (drain-everything) would teleport time to the horizon.
    while (!handle.done() && net.sim().step()) {
    }
    if (!handle.done()) {
      out.ok = false;
      return out;
    }
    const coll::CollectiveResult& res = handle.result();
    out.ok = out.ok && res.ok && res.max_abs_err == 0.0;
    out.iter_seconds.push_back(res.completion_seconds);
    out.iter_migrations.push_back(res.migrations);
    out.iter_root.push_back(pc.in_network() ? pc.tree().root
                                            : net::kInvalidNode);
    out.total_seconds += res.completion_seconds;
    out.migrations += res.migrations;
    u32 installed = 0;
    for (net::Switch* sw : net.switches()) {
      installed += sw->installed_reduces();
    }
    out.leak_free = out.leak_free && installed == 3;
  }
  pc.release();
  for (net::Switch* sw : net.switches()) {
    out.leak_free = out.leak_free && sw->installed_reduces() == 0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::print_title("CONGESTION", "congestion-aware dynamic trees vs "
                                   "congestion-blind static trees");

  // Phase boundaries in absolute time, identical for every contender:
  // sized from an unloaded iteration so phase A covers roughly the first
  // half of the training run and phase B the rest.
  f64 iter_s;
  {
    net::Network net;
    auto topo = net::build_fat_tree(net, fabric_spec());
    coll::Communicator comm(net, participants(topo));
    coll::PersistentCollective pc = comm.persistent(allreduce_desc());
    if (!pc.ok()) return 1;
    iter_s = pc.run().completion_seconds;
  }
  const SimTime t_iter = static_cast<SimTime>(iter_s * kPsPerSecond);
  // Training cadence: one allreduce every 3 unloaded iteration times (the
  // rest models the compute phase) with headroom for congested iterations.
  const SimTime period = 3 * t_iter;
  const SimTime warm = 10 * kPsPerUs;
  const SimTime t_mid = warm + (kIterations / 2) * period;
  const SimTime t_end = warm + (kIterations + 4) * period;
  std::printf("  32-host fat tree (4 spines), 4-host 128 KiB int32 "
              "allreduce, %u iterations\n"
              "  background: phase A hits spine0 until %.0f us, phase B "
              "hits spine1 until %.0f us\n\n",
              kIterations, static_cast<f64>(t_mid) / kPsPerUs,
              static_cast<f64>(t_end) / kPsPerUs);

  const RunResult blind = run_contender(false, t_mid, t_end, period);
  const RunResult aware = run_contender(true, t_mid, t_end, period);
  // Determinism: the aware run replayed from scratch must reproduce every
  // completion time and every migration instant bit for bit.
  const RunResult replay = run_contender(true, t_mid, t_end, period);

  if (blind.iter_seconds.size() < kIterations ||
      aware.iter_seconds.size() < kIterations) {
    std::printf("  a contender aborted early (install rejected or an "
                "iteration never completed) -> FAIL\n");
    return 1;
  }

  std::printf("  %-5s %14s %14s %12s\n", "iter", "blind (us)", "aware (us)",
              "aware root");
  for (u32 it = 0; it < kIterations; ++it) {
    std::printf("  %-5u %14.2f %14.2f %9s %2u%s\n", it,
                blind.iter_seconds[it] * 1e6, aware.iter_seconds[it] * 1e6,
                "node", aware.iter_root[it],
                aware.iter_migrations[it] > 0 ? "  << migrated" : "");
  }

  const bool deterministic =
      aware.iter_seconds == replay.iter_seconds &&
      aware.iter_migrations == replay.iter_migrations &&
      aware.iter_root == replay.iter_root;
  const bool faster = aware.total_seconds < blind.total_seconds;
  const bool pass = blind.ok && aware.ok && faster && aware.migrations >= 1 &&
                    deterministic && blind.leak_free && aware.leak_free &&
                    replay.leak_free;

  std::printf("\n  total completion      %10.2f us %10.2f us  (%.2fx)\n",
              blind.total_seconds * 1e6, aware.total_seconds * 1e6,
              blind.total_seconds / aware.total_seconds);
  std::printf("  bit-for-bit results   %10s %10s\n",
              blind.ok ? "PASS" : "FAIL", aware.ok ? "PASS" : "FAIL");
  std::printf("  migrations            %10s %10u\n", "-", aware.migrations);
  std::printf("  deterministic replay  %21s\n",
              deterministic ? "PASS" : "FAIL");
  std::printf("  occupancy leak-free   %10s %10s\n",
              blind.leak_free ? "PASS" : "FAIL",
              aware.leak_free ? "PASS" : "FAIL");
  std::printf("\n  congestion-aware trees: %.2fx lower completion under "
              "shared-fabric traffic -> %s\n",
              blind.total_seconds / aware.total_seconds,
              pass ? "PASS" : "FAIL");
  bench::JsonReport report("congestion_adaptation");
  report.add("iterations", kIterations)
      .add("blind_total_seconds", blind.total_seconds)
      .add("aware_total_seconds", aware.total_seconds)
      .add("speedup", blind.total_seconds / aware.total_seconds)
      .add("migrations", static_cast<u64>(aware.migrations))
      .add("deterministic", deterministic)
      .add("leak_free", blind.leak_free && aware.leak_free)
      .add("pass", pass);
  report.emit();
  (void)full;
  return pass ? 0 : 1;
}
