// Global co-placement (seeded SA over the active job set, src/place/) vs
// the greedy + reactive baseline (beyond-paper; ISSUE 9 acceptance bench).
//
// Fabric: 32 hosts x radix-8 fat tree = 8 leaves x 4 spines, one link per
// leaf-spine pair.  Six duty-cycled training jobs arrive as three pairs,
// each pair sharing a leaf — and they arrive while transient background
// heat covers spines 1..3, so greedy congestion-aware admission stacks
// EVERY embedding through the one cool spine (spine0).  The heat then
// drains: the starting assignment decays into a plainly bad one, with each
// pair contending on its shared leaf<->spine0 edge while three spines sit
// idle.
//
// The duty cycle is the point: each job's FOREIGN heat stays below the
// per-job reactive migration trigger (migrate_above), so the baseline's
// reactive plane never fires — only a fleet-wide search can see that the
// overlap hurts everyone.  Both contenders run identical arrivals, heat,
// and knobs; the co-placement contender additionally runs the periodic SA
// optimizer (place_period_ps), whose plans apply through the same
// break-before-make migration path.
//
// Acceptance (exit non-zero otherwise):
//   * every job of both contenders completes in-network, bit-for-bit
//     correct;
//   * worst-edge congestion (mean over the post-settle window of the
//     fabric-wide max per-link utilization, measured over fixed 20 us
//     windows from the raw link busy counters) improves >= 1.2x under
//     co-placement;
//   * no aggregate completion-time regression (sum of per-job service
//     seconds);
//   * >= 1 optimizer-planned move is APPLIED (and the baseline's reactive
//     plane stayed silent — the win is the planner's alone);
//   * a full re-run with the same seed replays bit-for-bit (worst-edge
//     series, per-job finish instants, planned-move count);
//   * zero switch occupancy leaked after the fleet drains.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/telemetry.hpp"
#include "place/snapshot.hpp"
#include "service/service.hpp"

using namespace flare;

namespace {

constexpr u64 kPlaceSeed = 0xC0F1ACEull;
constexpr u32 kJobs = 6;
constexpr u32 kIterations = 40;
constexpr SimTime kIterGap = 20 * kPsPerUs;     // ~1/3 duty cycle
constexpr SimTime kSubmitAt = 175 * kPsPerUs;   // heat still hot in EWMA
constexpr SimTime kSettle = 400 * kPsPerUs;     // plans applied by here
constexpr SimTime kRecordUntil = 1100 * kPsPerUs;
constexpr SimTime kRecordEvery = 20 * kPsPerUs;
constexpr SimTime kHorizon = 2 * kPsPerMs;

net::FatTreeSpec fabric_spec() {
  net::FatTreeSpec spec;
  spec.hosts = 32;
  spec.radix = 8;  // 8 leaves x 4 spines, no parallel links
  return spec;
}

u32 link_by_name(net::Network& net, const std::string& name) {
  for (u32 i = 0; i < net.num_links(); ++i) {
    if (net.link(i).name() == name) return i;
  }
  return UINT32_MAX;
}

/// Opaque transient load on unidirectional link `i` (a stale reduce-down
/// frame: dropped on arrival, but every byte serializes — the congestion
/// suite's surgical link heater).
void heat_link(net::Network& net, u32 i, u64 bytes) {
  std::vector<i32> dummy(4, 0);
  core::Packet p = core::make_dense_packet(0x7EA70000u, 0, 0, dummy.data(),
                                           4, core::DType::kInt32);
  net::NetPacket np;
  np.kind = net::PacketKind::kReduceDown;
  np.allreduce_id = 0x7EA70000u;  // installed nowhere: dropped on arrival
  np.wire_bytes = bytes;
  np.reduce = std::make_shared<const core::Packet>(std::move(p));
  net.link(i).send(std::move(np));
}

/// The six tenants: three pairs, each pair sharing leaf capacity (leaf l
/// owns hosts [4l, 4l+4)).  Host sets are disjoint; leaf sets overlap
/// within a pair, so stacked embeddings contend on the shared leaf's
/// uplink.
std::vector<std::vector<net::Host*>> tenant_hosts(
    const net::BuiltTopology& topo) {
  const std::vector<std::vector<u32>> groups = {
      {0, 1, 4, 5},     // leaf0 + leaf1
      {6, 7, 8, 9},     // leaf1 + leaf2   (pair 0 shares leaf1)
      {12, 13, 16, 17},  // leaf3 + leaf4
      {18, 19, 20, 21},  // leaf4 + leaf5  (pair 1 shares leaf4)
      {24, 25, 28, 29},  // leaf6 + leaf7
      {26, 27, 30, 31},  // leaf6 + leaf7  (pair 2 shares both)
  };
  std::vector<std::vector<net::Host*>> out;
  for (const auto& g : groups) {
    std::vector<net::Host*> hosts;
    for (const u32 i : g) hosts.push_back(topo.hosts[i]);
    out.push_back(std::move(hosts));
  }
  return out;
}

struct RunResult {
  std::vector<f64> worst_series;    // fabric-wide max link utilization/tick
  std::vector<SimTime> finish_ps;   // per job
  f64 worst_mean = 0.0;
  f64 worst_peak = 0.0;
  f64 sum_service_seconds = 0.0;
  u64 planned = 0;   // optimizer-planned moves applied
  u64 reactive = 0;  // reactive migrations (should stay 0 for both)
  u64 place_rounds = 0;
  bool all_ok = true;
  bool leak_free = true;
};

RunResult run_contender(bool coplace) {
  net::Network net;
  auto topo = net::build_fat_tree(net, fabric_spec());
  net::CongestionMonitor monitor(net);

  service::ServiceOptions opt;
  opt.root_policy = service::RootPolicy::kLeastCongested;
  opt.monitor = &monitor;
  // Reactive migration armed in BOTH contenders; the duty-cycled overlap
  // keeps per-job foreign heat below this, so only the planner can act.
  opt.migrate_above = 0.45;
  if (coplace) {
    opt.place_period_ps = 40 * kPsPerUs;
    opt.place_seed = kPlaceSeed;
    opt.place_min_gain = 0.02;
  }
  service::AllreduceService service(net, opt);
  monitor.arm_until(kHorizon);

  // Transient heat over spines 1..3 (all leaves): admission stacks the
  // whole fleet through spine0, then the heat drains by ~170 us.
  for (const char* sp : {"spine1", "spine2", "spine3"}) {
    for (u32 leaf = 0; leaf < 8; ++leaf) {
      const std::string peer = "leaf" + std::to_string(leaf);
      heat_link(net, link_by_name(net, std::string(sp) + "->" + peer),
                2 * kMiB);
      heat_link(net, link_by_name(net, peer + "->" + std::string(sp)),
                2 * kMiB);
    }
  }

  for (const auto& hosts : tenant_hosts(topo)) {
    service::JobSpec spec;
    spec.participants = hosts;
    spec.desc.algorithm = coll::Algorithm::kFlareDense;
    spec.desc.data_bytes = 64 * kKiB;
    spec.desc.dtype = core::DType::kInt32;
    spec.iterations = kIterations;
    spec.iteration_gap_ps = kIterGap;
    service.submit_at(kSubmitAt, std::move(spec));
  }

  // Worst-edge recorder: fabric-wide max per-link utilization over fixed
  // 20 us windows on an absolute cadence, computed straight from the link
  // busy counters (independent of either contender's monitor sampling
  // schedule, so the two series are measured identically).
  RunResult out;
  auto busy_prev = std::make_shared<std::vector<u64>>(net.num_links(), 0);
  net.sim().schedule_at(kSettle - kRecordEvery, [&net, busy_prev] {
    for (u32 i = 0; i < net.num_links(); ++i) {
      (*busy_prev)[i] = net.link(i).busy_cum_ps();
    }
  });
  for (SimTime at = kSettle; at <= kRecordUntil; at += kRecordEvery) {
    net.sim().schedule_at(at, [&net, busy_prev, &out] {
      f64 worst = 0.0;
      for (u32 i = 0; i < net.num_links(); ++i) {
        const u64 busy = net.link(i).busy_cum_ps();
        worst = std::max(worst, static_cast<f64>(busy - (*busy_prev)[i]) /
                                    static_cast<f64>(kRecordEvery));
        (*busy_prev)[i] = busy;
      }
      out.worst_series.push_back(worst);
    });
  }

  net.sim().run_until(kHorizon);

  for (const service::JobRecord& rec : service.records()) {
    out.all_ok = out.all_ok && rec.state == service::JobState::kDone &&
                 rec.ok && rec.in_network &&
                 rec.iterations_done == kIterations;
    out.finish_ps.push_back(rec.finish_ps);
    out.sum_service_seconds += rec.service_seconds();
  }
  out.planned = service.telemetry().planned_migrations;
  out.reactive = service.telemetry().migrations;
  out.place_rounds = service.telemetry().place.rounds;
  for (const f64 w : out.worst_series) {
    out.worst_mean += w;
    out.worst_peak = std::max(out.worst_peak, w);
  }
  if (!out.worst_series.empty()) {
    out.worst_mean /= static_cast<f64>(out.worst_series.size());
  }
  for (net::Switch* sw : net.switches()) {
    out.leak_free = out.leak_free && sw->installed_reduces() == 0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::print_title("COPLACEMENT",
                     "SA co-placement of the active job set vs greedy "
                     "admission + reactive migration");
  std::printf("  32-host fat tree (4 spines), %u duty-cycled 64 KiB int32 "
              "jobs in 3 leaf-sharing pairs,\n  stacked through spine0 by "
              "transient admission-time heat; %u iterations each\n\n",
              kJobs, kIterations);

  const RunResult base = run_contender(false);
  const RunResult co = run_contender(true);
  // Determinism: the co-placement run replayed from scratch must reproduce
  // the worst-edge series, every finish instant, and the plan bit for bit.
  const RunResult replay = run_contender(true);

  const f64 ratio =
      co.worst_mean > 0.0 ? base.worst_mean / co.worst_mean : 0.0;
  const bool deterministic = co.worst_series == replay.worst_series &&
                             co.finish_ps == replay.finish_ps &&
                             co.planned == replay.planned;
  const bool no_regression =
      co.sum_service_seconds <= base.sum_service_seconds;
  const bool pass = base.all_ok && co.all_ok && ratio >= 1.2 &&
                    no_regression && co.planned >= 1 && base.reactive == 0 &&
                    co.reactive == 0 && deterministic && base.leak_free &&
                    co.leak_free && replay.leak_free;

  std::printf("  %-28s %12s %12s\n", "", "greedy+react", "co-placement");
  std::printf("  %-28s %12.3f %12.3f  (%.2fx)\n",
              "worst-edge util (mean)", base.worst_mean, co.worst_mean,
              ratio);
  std::printf("  %-28s %12.3f %12.3f\n", "worst-edge util (peak)",
              base.worst_peak, co.worst_peak);
  std::printf("  %-28s %12.2f %12.2f\n", "sum service time (us)",
              base.sum_service_seconds * 1e6, co.sum_service_seconds * 1e6);
  std::printf("  %-28s %12llu %12llu\n", "planned moves applied",
              static_cast<unsigned long long>(base.planned),
              static_cast<unsigned long long>(co.planned));
  std::printf("  %-28s %12llu %12llu\n", "reactive migrations",
              static_cast<unsigned long long>(base.reactive),
              static_cast<unsigned long long>(co.reactive));
  std::printf("  %-28s %12s %12s\n", "all jobs ok",
              base.all_ok ? "PASS" : "FAIL", co.all_ok ? "PASS" : "FAIL");
  std::printf("  %-28s %25s\n", "deterministic replay",
              deterministic ? "PASS" : "FAIL");
  std::printf("  %-28s %12s %12s\n", "occupancy leak-free",
              base.leak_free ? "PASS" : "FAIL",
              co.leak_free ? "PASS" : "FAIL");
  std::printf("\n  co-placement: %.2fx lower worst-edge congestion, no "
              "completion regression -> %s\n",
              ratio, pass ? "PASS" : "FAIL");

  bench::JsonReport report("coplacement");
  report.add("jobs", kJobs)
      .add("iterations", kIterations)
      .add("baseline_worst_mean", base.worst_mean)
      .add("coplace_worst_mean", co.worst_mean)
      .add("worst_edge_ratio", ratio)
      .add("baseline_sum_service_seconds", base.sum_service_seconds)
      .add("coplace_sum_service_seconds", co.sum_service_seconds)
      .add("planned_moves_applied", co.planned)
      .add("reactive_migrations", co.reactive)
      .add("place_rounds", co.place_rounds)
      .add("no_completion_regression", no_regression)
      .add("deterministic", deterministic)
      .add("leak_free", base.leak_free && co.leak_free)
      .add("pass", pass);
  report.emit();
  (void)full;
  return pass ? 0 : 1;
}
