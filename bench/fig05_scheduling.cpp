// Figure 5 — impact of intra-block interarrival time (delta_c) and
// hierarchical-FCFS subset size (S) on queueing and input-buffer occupancy.
//
// Left: the paper's three illustrative scenarios (K=4 cores, P=4 ports,
// tau=4, delta=1) evaluated with the Section 5 closed forms.
// Right: the same effect measured live on the PsPIN discrete-event unit —
// aligned vs staggered sending with block-subset scheduling.
#include <cstdio>

#include "bench_util.hpp"
#include "model/scheduling.hpp"
#include "pspin/experiment.hpp"

using namespace flare;

int main() {
  bench::print_title("Figure 5",
                     "scheduling scenarios: queue build-up vs (S, delta_c)");
  bench::JsonReport report("fig05_scheduling");

  std::printf("  Modeled scenarios (K=4, P=4, tau=4, delta=1):\n");
  std::printf("  %-34s %3s %8s %8s %10s %10s\n", "scenario", "S", "delta_c",
              "delta_k", "Q/core", "pkts in sw");
  struct Scenario {
    const char* name;
    f64 subset, delta_c;
  };
  const Scenario scenarios[] = {
      {"A: global FCFS, aligned", 4, 1},
      {"B: subset FCFS (S=1), aligned", 1, 1},
      {"C: subset FCFS (S=1), staggered", 1, 4},
  };
  for (const Scenario& s : scenarios) {
    model::SchedulingParams p;
    p.cores = 4;
    p.packets_per_block = 4;
    p.delta = 1;
    p.tau = 4;
    p.subset = s.subset;
    p.delta_c = s.delta_c;
    std::printf("  %-34s %3.0f %8.0f %8.0f %10.2f %10.2f\n", s.name,
                s.subset, s.delta_c, model::delta_k(p),
                model::queue_length(p), model::packets_in_switch(p));
  }

  std::printf("\n  Simulated on the PsPIN unit (64 cores, S=8, single "
              "buffer, 64 KiB, P=8):\n");
  std::printf("  %-22s %14s %16s %14s\n", "send order", "goodput Tbps",
              "input buf KiB", "cs wait cyc");
  for (const core::SendOrder order :
       {core::SendOrder::kAligned, core::SendOrder::kStaggered}) {
    pspin::SingleSwitchOptions opt;
    opt.unit.n_clusters = 8;
    opt.unit.cores_per_cluster = 8;
    opt.unit.charge_cold_start = false;
    opt.hosts = 8;
    opt.data_bytes = 64_KiB;
    opt.policy = core::AggPolicy::kSingleBuffer;
    opt.order = order;
    opt.arrivals = workload::ArrivalKind::kDeterministic;
    const auto res = pspin::run_single_switch(opt);
    std::printf("  %-22s %14s %16s %14.0f   %s\n",
                order == core::SendOrder::kAligned ? "aligned" : "staggered",
                bench::fmt_tbps(res.goodput_bps).c_str(),
                bench::fmt_kib(static_cast<f64>(res.input_buffer_hwm_bytes))
                    .c_str(),
                res.cs_wait_mean_cycles, res.correct ? "" : "(CHECK FAILED)");
    const std::string which =
        order == core::SendOrder::kAligned ? "aligned" : "staggered";
    report.add(which + "_goodput_tbps", res.goodput_bps / 1e12)
        .add(which + "_cs_wait_cycles", res.cs_wait_mean_cycles)
        .add(which + "_correct", res.correct);
  }
  std::printf("  -> staggered sending raises delta_c: no critical-section "
              "spin, smaller queues.\n");
  report.emit();
  return 0;
}
