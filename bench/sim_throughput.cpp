// Simulator hot-path throughput trajectory (ROADMAP: "scale to 10k+ hosts /
// 1M+ jobs").  Unlike every other bench in this directory — which reports
// *simulated* quantities — this one measures how fast the simulator itself
// runs on the build machine, so the numbers become the committed perf
// trajectory each PR is gated on:
//
//   * a FIXED fat-tree multi-tenant scenario (64 hosts, persistent
//     multi-iteration jobs) timed end to end: events_per_sec and
//     sim_bytes_reduced_per_sec;
//   * a calendar microbenchmark pitting the optimized event calendar(s)
//     against a reference "legacy" calendar that copies every event —
//     std::function closure and all — out of priority_queue::top(), the
//     implementation this repo shipped before the hot-path PR.  The
//     >= 1.5x speedup gate (calendar_speedup_ok) keeps the win locked in.
//
// Wall-clock values drift machine to machine; tools/diff_bench_keys.py
// compares only the key set and the boolean gates, and the gates are
// wall-clock *ratios* on identical workloads, so they hold on any host.
// Simulated results must still be deterministic: the scenario runs twice
// and both runs must produce identical event counts, clocks, traffic and
// job results (the `deterministic` gate).
//
// flare-lint: allow-file(wall-clock) — this bench exists to measure
// wall-clock throughput; std::chrono::steady_clock never feeds simulation
// state, only the reported rates.
#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/reduce_op.hpp"
#include "core/typed_buffer.hpp"
#include "service/service.hpp"
#include "sim/simulator.hpp"
#include "workload/job_mix.hpp"

using namespace flare;

namespace {

f64 wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ------------------------------------------------------------- scenario ---

struct ScenarioResult {
  u64 events = 0;
  SimTime final_ps = 0;
  u64 traffic_bytes = 0;
  u64 bytes_reduced = 0;  ///< job payload bytes fully reduced (x iterations)
  u32 jobs_ok = 0;
  u32 in_network = 0;
  u64 digest = 0;  ///< order-sensitive digest of every job record
  f64 wall_s = 0.0;
};

void digest_mix(u64& h, u64 v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
}

/// The FIXED scenario: a 64-host fat tree serving 24 concurrent tenants,
/// each a persistent 4-iteration 256 KiB int32 allreduce.  Parameters are
/// frozen — changing them resets the trajectory, so don't.
ScenarioResult run_scenario() {
  net::Network net;
  net::FatTreeSpec topo_spec;
  topo_spec.hosts = 64;
  topo_spec.radix = 8;
  topo_spec.max_allreduces = 32;
  auto topo = net::build_fat_tree(net, topo_spec);

  service::ServiceOptions opt;
  opt.root_policy = service::RootPolicy::kLeastLoaded;
  opt.queue_timeout_ps = 200 * kPsPerUs;
  service::AllreduceService svc(net, opt);

  workload::JobMixSpec mix;
  mix.jobs = 24;
  mix.hosts_min = 4;
  mix.hosts_max = 16;
  mix.sizes_bytes = {256 * kKiB};
  mix.dtype = core::DType::kInt32;
  mix.mean_interarrival_s = 2e-6;
  mix.seed = 71;
  for (const workload::JobArrival& a : workload::make_job_mix(mix, 64)) {
    service::JobSpec spec;
    for (const u32 h : a.host_indices)
      spec.participants.push_back(topo.hosts[h]);
    spec.desc.data_bytes = a.data_bytes;
    spec.desc.dtype = a.dtype;
    spec.desc.seed = a.seed;
    spec.iterations = 4;
    svc.submit_at(a.at_ps, std::move(spec));
  }

  const auto t0 = std::chrono::steady_clock::now();
  net.sim().run();
  ScenarioResult r;
  r.wall_s = wall_seconds(t0);
  r.events = net.sim().total_events_run();
  r.final_ps = net.sim().now();
  r.traffic_bytes = net.total_traffic_bytes();
  for (const service::JobRecord& rec : svc.records()) {
    if (rec.ok) r.jobs_ok += 1;
    if (rec.in_network) r.in_network += 1;
    r.bytes_reduced += rec.data_bytes * rec.iterations_done;
    digest_mix(r.digest, rec.job_id);
    digest_mix(r.digest, rec.finish_ps);
    digest_mix(r.digest, rec.ok ? 1 : 0);
    digest_mix(r.digest, rec.exact ? 1 : 0);
  }
  digest_mix(r.digest, r.events);
  digest_mix(r.digest, r.final_ps);
  digest_mix(r.digest, r.traffic_bytes);
  return r;
}

// ------------------------------------------------ calendar microbenchmark --

/// The calendar this repo shipped BEFORE the hot-path PR, kept verbatim as
/// the measured reference: std::function events in a std::priority_queue,
/// and dispatch COPIES the event out of top() (top() returns const&) —
/// one closure heap allocation per dispatched event.
class LegacyCalendar {
 public:
  void schedule_at(SimTime at, std::function<void()> fn) {
    queue_.push(LegacyEvent{at, next_seq_++, std::move(fn)});
  }
  SimTime now() const { return now_; }
  u64 run() {
    u64 n = 0;
    while (!queue_.empty()) {
      LegacyEvent ev = queue_.top();  // the per-event copy under test
      queue_.pop();
      now_ = ev.at;
      ev.fn();
      ++n;
    }
    return n;
  }

 private:
  struct LegacyEvent {
    SimTime at = 0;
    u64 seq = 0;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const LegacyEvent& a, const LegacyEvent& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, Later> queue_;
  SimTime now_ = 0;
  u64 next_seq_ = 0;
};

/// The synthetic storm both calendars dispatch: self-rescheduling chains
/// whose closures capture a NetPacket-sized payload (the shape the network
/// layer schedules), with the zero/short/far delay mix of the scenario.
/// Deterministic; returns a checksum so the payload capture cannot be
/// optimized away.
template <typename Calendar>
u64 calendar_storm(Calendar& cal, u64 chains, u64 events_per_chain,
                   u64* checksum) {
  struct PayloadSized {
    u64 words[8] = {};  // ~a NetPacket worth of captured state
  };
  u64 dispatched = 0;
  std::function<void(Calendar&, PayloadSized, u64)> chain =
      [&](Calendar& c, PayloadSized p, u64 remaining) {
        dispatched += 1;
        *checksum ^= p.words[0] + (*checksum << 6) + (*checksum >> 2);
        if (remaining == 0) return;
        p.words[0] = p.words[0] * 6364136223846793005ull + 1442695040888963407ull;
        // Delay mix: mostly short link-scale hops, occasional timeouts.
        const u64 r = p.words[0] >> 33;
        const SimTime delay = (r % 8 == 0)   ? 200 * kPsPerUs + r % 1000
                              : (r % 8 == 1) ? 0
                                             : 100 + r % 60000;
        c.schedule_at(c.now() + delay, [&chain, &c, p, remaining] {
          chain(c, p, remaining - 1);
        });
      };
  for (u64 i = 0; i < chains; ++i) {
    PayloadSized p;
    p.words[0] = 0x9E3779B97F4A7C15ull ^ i;
    cal.schedule_at(i % 977, [&chain, &cal, p, events_per_chain] {
      chain(cal, p, events_per_chain);
    });
  }
  cal.run();
  return dispatched;
}

struct CalendarRate {
  f64 events_per_sec = 0.0;
  u64 checksum = 0;
};

template <typename MakeCalendar>
CalendarRate measure_calendar(MakeCalendar make) {
  constexpr u64 kChains = 64;
  constexpr u64 kPerChain = 4000;
  CalendarRate best;
  // Three repetitions, fastest wall kept (same policy as the scenario).
  for (int rep = 0; rep < 3; ++rep) {
    auto cal = make();
    u64 checksum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const u64 n = calendar_storm(*cal, kChains, kPerChain, &checksum);
    const f64 rate = static_cast<f64>(n) / wall_seconds(t0);
    if (rate > best.events_per_sec) best = {rate, checksum};
  }
  return best;
}

}  // namespace

int main(int, char**) {
  bench::print_title("SIM-THROUGHPUT",
                     "simulator hot-path events/sec on the fixed fat-tree "
                     "multi-tenant scenario");

  // Twice-run: the second run must be bit-identical in everything
  // simulated; the faster wall time of the two is reported (less noise).
  const ScenarioResult s1 = run_scenario();
  const ScenarioResult s2 = run_scenario();
  const bool deterministic = s1.digest == s2.digest;
  const f64 wall = std::min(s1.wall_s, s2.wall_s);
  const f64 events_per_sec = static_cast<f64>(s1.events) / wall;
  const f64 reduced_per_sec = static_cast<f64>(s1.bytes_reduced) / wall;

  std::printf("  scenario: 64-host fat tree, 24 jobs x 4 iterations, "
              "256 KiB int32 each\n");
  std::printf("  events=%llu  sim-time=%.3f ms  jobs-ok=%u  in-network=%u  "
              "deterministic=%s\n",
              static_cast<unsigned long long>(s1.events),
              static_cast<f64>(s1.final_ps) / static_cast<f64>(kPsPerMs),
              s1.jobs_ok, s1.in_network, deterministic ? "yes" : "NO");
  std::printf("  wall=%.3f s  ->  %.0f events/s, %.1f MiB reduced/s\n", wall,
              events_per_sec, reduced_per_sec / (1024.0 * 1024.0));

  // Calendar microbenchmark: identical storm on the pre-PR reference
  // calendar and on both optimized backends.  The gate is a wall-clock
  // RATIO on identical workloads, so it holds on any machine — but the
  // measured ratio still moves with code layout (a relink alone has been
  // seen to shift the legacy baseline by 3 Mev/s), so the gate floor is a
  // conservative 1.25x while typical measured ratios are 1.4-1.9x.
  const CalendarRate legacy =
      measure_calendar([] { return std::make_unique<LegacyCalendar>(); });
  const CalendarRate heap = measure_calendar([] {
    return std::make_unique<sim::Simulator>(sim::CalendarKind::kBinaryHeap);
  });
  const CalendarRate bucket = measure_calendar([] {
    return std::make_unique<sim::Simulator>(sim::CalendarKind::kBucketed);
  });
  const bool storms_agree =
      legacy.checksum == heap.checksum && legacy.checksum == bucket.checksum;
  const f64 calendar_speedup =
      bucket.events_per_sec / legacy.events_per_sec;
  const bool calendar_speedup_ok = calendar_speedup >= 1.25;

  std::printf("  calendar storm: legacy=%.2f Mev/s  heap=%.2f Mev/s  "
              "bucketed=%.2f Mev/s  ->  speedup=%.2fx (gate >= 1.25x: %s)\n",
              legacy.events_per_sec / 1e6, heap.events_per_sec / 1e6,
              bucket.events_per_sec / 1e6, calendar_speedup,
              calendar_speedup_ok ? "ok" : "FAIL");

  const bool pass =
      deterministic && s1.jobs_ok == 24 && storms_agree && calendar_speedup_ok;

  // events_per_sec measured on this repo BEFORE the hot-path PR (move-out
  // calendar, payload arena, batched links, kernel table), same scenario,
  // on the trajectory reference machine.  Frozen so every later PR can
  // read its cumulative speedup straight from the BENCH_JSON diff.
  constexpr f64 kPreOptimizationEventsPerSec = 793944.0;

  bench::JsonReport report("sim_throughput");
  report.add("scenario_jobs", 24u)
      .add("scenario_events", s1.events)
      .add("events_per_sec", events_per_sec)
      .add("events_per_sec_pre_optimization", kPreOptimizationEventsPerSec)
      .add("scenario_speedup", events_per_sec / kPreOptimizationEventsPerSec)
      .add("sim_bytes_reduced_per_sec", reduced_per_sec)
      .add("calendar_events_per_sec_legacy", legacy.events_per_sec)
      .add("calendar_events_per_sec_heap", heap.events_per_sec)
      .add("calendar_events_per_sec_bucketed", bucket.events_per_sec)
      .add("calendar_speedup", calendar_speedup)
      .add("calendar_speedup_ok", calendar_speedup_ok)
      .add("deterministic", deterministic)
      .add("pass", pass);
  report.emit();
  return pass ? 0 : 1;
}
