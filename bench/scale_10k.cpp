// Scale plane A/B + 10k-host smoke (ROADMAP: "scale to 10k+ hosts").
//
// Two phases, both on 3-level fat trees with compressed routing:
//
//   * A/B — the SAME seeded cross-traffic schedule (on/off flows + incast
//     bursts) runs once in packet mode and once in flow mode on a frozen
//     1024-host tree (radix 16, 16 pods).  Flow mode must cut the event
//     count >= 5x (the tentpole's win), while the congestion it builds
//     stays monitor-equivalent: total busy picoseconds within 5% and the
//     CongestionMonitor's mean EWMA within tolerance — flows are a
//     MODEL of the same bytes, not different traffic.
//
//   * 10k smoke — the full-scale tree (radix 40, 26 pods, 10400 hosts)
//     carries a flow-mode background for the whole horizon; run twice,
//     the digests (per-link busy + traffic, event count, final clock)
//     must match bit for bit.
//
// --smoke shrinks both phases (128-host A/B, 1024-host big run) for CI;
// the gates are scale-free ratios so they hold at either size.
// Wall-clock seconds and peak RSS ride along in BENCH_JSON for the perf
// trajectory; values drift machine to machine, so only the boolean gates
// gate (tools/diff_bench_keys.py).
//
// flare-lint: allow-file(wall-clock) — this bench measures wall-clock
// throughput; std::chrono never feeds simulation state.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "net/flow.hpp"
#include "net/network.hpp"
#include "net/telemetry.hpp"
#include "workload/cross_traffic.hpp"

using namespace flare;

namespace {

f64 wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
      .count();
}

void digest_mix(u64& h, u64 v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
}

struct RunResult {
  u64 events = 0;
  SimTime final_ps = 0;
  u64 busy_ps = 0;         ///< sum of busy_cum_ps over every link
  u64 traffic_bytes = 0;
  u64 packets_armed = 0;
  u64 flows_finished = 0;
  f64 monitor_mean = 0.0;  ///< mean link EWMA at the last monitor sample
  u64 digest = 0;
  f64 wall_s = 0.0;
};

struct RunSpec {
  u32 radix = 16;
  u32 pods = 16;
  bool flow_mode = false;
  u32 ct_flows = 128;
  u32 incast_bursts = 8;
  u32 incast_fanin = 16;
  SimTime horizon_ps = 200 * kPsPerUs;
  u64 seed = 17;
};

RunResult run_background(const RunSpec& rs) {
  net::Network net;
  net::FatTree3Spec topo_spec;
  topo_spec.radix = rs.radix;
  topo_spec.pods = rs.pods;
  auto topo = net::build_fat_tree_3level(net, topo_spec);

  workload::CrossTrafficSpec ct;
  ct.flows = rs.ct_flows;
  ct.incast_bursts = rs.incast_bursts;
  ct.incast_fanin = rs.incast_fanin;
  ct.horizon_ps = rs.horizon_ps;
  ct.seed = rs.seed;
  ct.flow_mode = rs.flow_mode;
  workload::CrossTrafficInjector inject(net, ct);
  inject.arm();

  net::CongestionMonitorOptions mon_opt;
  mon_opt.period_ps = 20 * kPsPerUs;
  net::CongestionMonitor monitor(net, mon_opt);
  monitor.arm_until(rs.horizon_ps);

  const auto t0 = std::chrono::steady_clock::now();
  net.sim().run();
  RunResult r;
  r.wall_s = wall_seconds(t0);
  net.sync_flows();  // settle fluid accrual through the final instant
#if FLARE_VALIDATE_ENABLED
  net.validate_audit();  // attribution conservation on every link
#endif
  r.events = net.sim().total_events_run();
  r.final_ps = net.sim().now();
  r.traffic_bytes = net.total_traffic_bytes();
  r.packets_armed = inject.packets_armed();
  r.flows_finished = net.has_flows() ? net.flows().flows_finished() : 0;
  r.monitor_mean = monitor.mean_congestion();
  for (u32 i = 0; i < net.num_links(); ++i) {
    const net::Link& l = net.link(i);
    r.busy_ps += l.busy_cum_ps();
    digest_mix(r.digest, l.busy_cum_ps());
    digest_mix(r.digest, l.traffic().bytes);
  }
  digest_mix(r.digest, r.events);
  digest_mix(r.digest, r.final_ps);
  digest_mix(r.digest, r.traffic_bytes);
  return r;
}

f64 ratio(f64 num, f64 den) { return den == 0.0 ? 0.0 : num / den; }

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  bench::print_title("SCALE-10K",
                     "flow-level vs packet-level background traffic on "
                     "3-level fat trees, plus the 10k-host smoke");

  // ---- A/B: identical seeded schedule, packet vs flow mechanism -------
  RunSpec ab;
  if (smoke) {
    ab.radix = 8;   // 128 hosts
    ab.pods = 8;
    ab.ct_flows = 32;
    ab.incast_fanin = 8;
  }
  RunSpec ab_flow = ab;
  ab_flow.flow_mode = true;
  const RunResult pkt = run_background(ab);
  const RunResult flw = run_background(ab_flow);

  const u32 ab_hosts = ab.pods * (ab.radix / 2) * (ab.radix / 2);
  const bool schedule_match = pkt.packets_armed == flw.packets_armed;
  const f64 event_reduction =
      ratio(static_cast<f64>(pkt.events), static_cast<f64>(flw.events));
  const bool event_reduction_ok = schedule_match && event_reduction >= 5.0;
  const f64 busy_parity =
      ratio(static_cast<f64>(flw.busy_ps), static_cast<f64>(pkt.busy_ps));
  const bool busy_parity_ok =
      busy_parity >= 0.95 && busy_parity <= 1.05;
  // Monitor parity is looser: EWMAs weight the burst *shape*, and a fluid
  // flow spreads an incast over its fair-share finish instead of a
  // back-to-back queue spike.  The heat must land on the same links at
  // the same magnitude class, not the same fourth decimal.
  const f64 monitor_parity = ratio(flw.monitor_mean, pkt.monitor_mean);
  const bool monitor_parity_ok =
      std::fabs(flw.monitor_mean - pkt.monitor_mean) <= 0.02 ||
      (monitor_parity >= 0.7 && monitor_parity <= 1.4);

  std::printf("  A/B %u hosts: packets=%llu  events packet=%llu flow=%llu "
              "->  %.1fx fewer (gate >= 5x: %s)\n",
              ab_hosts, static_cast<unsigned long long>(pkt.packets_armed),
              static_cast<unsigned long long>(pkt.events),
              static_cast<unsigned long long>(flw.events), event_reduction,
              event_reduction_ok ? "ok" : "FAIL");
  std::printf("  busy parity flow/packet=%.4f (gate 0.95..1.05: %s)  "
              "monitor mean packet=%.4f flow=%.4f (%s)\n",
              busy_parity, busy_parity_ok ? "ok" : "FAIL", pkt.monitor_mean,
              flw.monitor_mean, monitor_parity_ok ? "ok" : "FAIL");
  std::printf("  wall packet=%.3f s flow=%.3f s  ->  %.0f vs %.0f events/s\n",
              pkt.wall_s, flw.wall_s,
              ratio(static_cast<f64>(pkt.events), pkt.wall_s),
              ratio(static_cast<f64>(flw.events), flw.wall_s));

  // ---- 10k smoke: flow mode at full scale, twice for determinism ------
  RunSpec big;
  big.flow_mode = true;
  if (smoke) {
    big.radix = 16;  // 1024 hosts
    big.pods = 16;
    big.ct_flows = 256;
    big.incast_bursts = 8;
    big.incast_fanin = 32;
  } else {
    big.radix = 40;  // 10400 hosts
    big.pods = 26;
    big.ct_flows = 2048;
    big.incast_bursts = 16;
    big.incast_fanin = 64;
  }
  big.seed = 23;
  const RunResult big1 = run_background(big);
  const RunResult big2 = run_background(big);
  const bool big_deterministic = big1.digest == big2.digest;
  const u32 big_hosts = big.pods * (big.radix / 2) * (big.radix / 2);
  const f64 big_wall = std::min(big1.wall_s, big2.wall_s);

  std::printf("  big run %u hosts (flow mode): events=%llu  flows=%llu  "
              "wall=%.3f s  deterministic=%s\n",
              big_hosts, static_cast<unsigned long long>(big1.events),
              static_cast<unsigned long long>(big1.flows_finished), big_wall,
              big_deterministic ? "yes" : "NO");

  const bool pass = schedule_match && event_reduction_ok && busy_parity_ok &&
                    monitor_parity_ok && big_deterministic &&
                    big1.flows_finished > 0;

  bench::JsonReport report("scale_10k");
  report.add("smoke", smoke)
      .add("ab_hosts", ab_hosts)
      .add("ab_packets", pkt.packets_armed)
      .add("ab_events_packet", pkt.events)
      .add("ab_events_flow", flw.events)
      .add("ab_event_reduction", event_reduction)
      .add("ab_event_reduction_ok", event_reduction_ok)
      .add("ab_busy_parity", busy_parity)
      .add("ab_busy_parity_ok", busy_parity_ok)
      .add("ab_monitor_mean_packet", pkt.monitor_mean)
      .add("ab_monitor_mean_flow", flw.monitor_mean)
      .add("ab_monitor_parity_ok", monitor_parity_ok)
      .add("ab_wall_s_packet", pkt.wall_s)
      .add("ab_wall_s_flow", flw.wall_s)
      .add("big_hosts", big_hosts)
      .add("big_events", big1.events)
      .add("big_flows_finished", big1.flows_finished)
      .add("big_events_per_sec",
           ratio(static_cast<f64>(big1.events), big_wall))
      .add("big_wall_s", big_wall)
      .add("big_deterministic", big_deterministic)
      .add("pass", pass);
  report.emit();
  return pass ? 0 : 1;
}
