// Wall-clock microbenchmarks (google-benchmark) of the hot aggregation
// kernels: element-wise reduction per dtype/operator, fp16 conversion,
// sparse hash/array store inserts and scans, packet encode, and the tree
// shape construction.  These measure THIS implementation on the build
// machine — they complement the simulated switch numbers rather than
// standing in for them.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/dense_policies.hpp"
#include "core/packet.hpp"
#include "core/reduce_op.hpp"
#include "core/sparse_store.hpp"
#include "core/typed_buffer.hpp"
#include "workload/generators.hpp"

namespace {

using namespace flare;
using core::DType;
using core::OpKind;

void BM_ReduceApply(benchmark::State& state, DType dtype, OpKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::ReduceOp op(kind);
  if (!op.supports(dtype)) {
    state.SkipWithError("unsupported dtype");
    return;
  }
  Rng rng(1);
  core::TypedBuffer acc(dtype, n), in(dtype, n);
  acc.fill_random(rng);
  in.fill_random(rng);
  for (auto _ : state) {
    op.apply(dtype, acc.data(), in.data(), n);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(acc.size_bytes()));
}

#define FLARE_BENCH_APPLY(name, dtype, op)                        \
  void name(benchmark::State& s) { BM_ReduceApply(s, dtype, op); } \
  BENCHMARK(name)->Arg(256)->Arg(4096)

FLARE_BENCH_APPLY(BM_SumF32, DType::kFloat32, OpKind::kSum);
FLARE_BENCH_APPLY(BM_SumF16, DType::kFloat16, OpKind::kSum);
FLARE_BENCH_APPLY(BM_SumI8, DType::kInt8, OpKind::kSum);
FLARE_BENCH_APPLY(BM_SumI16, DType::kInt16, OpKind::kSum);
FLARE_BENCH_APPLY(BM_SumI32, DType::kInt32, OpKind::kSum);
FLARE_BENCH_APPLY(BM_SumI64, DType::kInt64, OpKind::kSum);
FLARE_BENCH_APPLY(BM_MaxF32, DType::kFloat32, OpKind::kMax);
FLARE_BENCH_APPLY(BM_ProdI32, DType::kInt32, OpKind::kProd);
FLARE_BENCH_APPLY(BM_BxorI32, DType::kInt32, OpKind::kBxor);

void BM_CustomOp(benchmark::State& state) {
  auto op = core::ReduceOp::custom_binary(
      "clamped",
      [](auto a, auto b) {
        const f64 s = static_cast<f64>(a) + static_cast<f64>(b);
        return s < 100.0 ? s : 100.0;
      },
      0.0);
  const std::size_t n = 256;
  core::TypedBuffer acc(DType::kFloat32, n), in(DType::kFloat32, n);
  Rng rng(2);
  acc.fill_random(rng);
  in.fill_random(rng);
  for (auto _ : state) {
    op.apply(DType::kFloat32, acc.data(), in.data(), n);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_CustomOp);

void BM_F16Conversion(benchmark::State& state) {
  Rng rng(3);
  std::vector<f32> vals(1024);
  for (auto& v : vals) v = static_cast<f32>(rng.uniform(-100, 100));
  for (auto _ : state) {
    u32 sink = 0;
    for (const f32 v : vals) sink += core::f32_to_f16(v);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 1024);
}
BENCHMARK(BM_F16Conversion);

void BM_HashStoreInsert(benchmark::State& state) {
  const auto capacity = static_cast<u32>(state.range(0));
  core::ReduceOp sum(OpKind::kSum);
  Rng rng(4);
  std::vector<u32> indices(1024);
  for (auto& i : indices) i = static_cast<u32>(rng.uniform_u64(100000));
  const f32 v = 1.5f;
  std::byte raw[4];
  std::memcpy(raw, &v, 4);
  for (auto _ : state) {
    core::HashStore store(capacity, DType::kFloat32);
    u64 spilled = 0;
    for (const u32 idx : indices) {
      if (!store.insert(idx, raw, DType::kFloat32, sum)) ++spilled;
    }
    benchmark::DoNotOptimize(spilled);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 1024);
}
BENCHMARK(BM_HashStoreInsert)->Arg(256)->Arg(2048);

void BM_ArrayStoreInsert(benchmark::State& state) {
  core::ReduceOp sum(OpKind::kSum);
  Rng rng(5);
  std::vector<u32> indices(1024);
  for (auto& i : indices) i = static_cast<u32>(rng.uniform_u64(16384));
  const f32 v = 1.5f;
  std::byte raw[4];
  std::memcpy(raw, &v, 4);
  for (auto _ : state) {
    core::ArrayStore store(16384, DType::kFloat32);
    for (const u32 idx : indices)
      store.insert(idx, raw, DType::kFloat32, sum);
    benchmark::DoNotOptimize(store.stored_pairs());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 1024);
}
BENCHMARK(BM_ArrayStoreInsert);

void BM_StoreExtract(benchmark::State& state) {
  const bool hash = state.range(0) != 0;
  core::ReduceOp sum(OpKind::kSum);
  Rng rng(6);
  std::unique_ptr<core::SparseStore> store;
  if (hash) {
    store = std::make_unique<core::HashStore>(2048, DType::kFloat32);
  } else {
    store = std::make_unique<core::ArrayStore>(16384, DType::kFloat32);
  }
  const f32 v = 2.0f;
  std::byte raw[4];
  std::memcpy(raw, &v, 4);
  for (int i = 0; i < 1024; ++i) {
    store->insert(static_cast<u32>(rng.uniform_u64(16384)), raw,
                  DType::kFloat32, sum);
  }
  for (auto _ : state) {
    std::vector<core::StoredPair> out;
    store->extract(out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StoreExtract)->Arg(1)->Arg(0);

void BM_SparsePacketEncode(benchmark::State& state) {
  workload::SparseSpec spec{1280, 0.1, 0.5, DType::kFloat32, 7};
  const auto pairs = workload::sparse_block_pairs(spec, 0, 0);
  for (auto _ : state) {
    core::Packet p =
        core::make_sparse_packet(1, 0, 0, pairs, DType::kFloat32);
    benchmark::DoNotOptimize(p.payload.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(pairs.size()));
}
BENCHMARK(BM_SparsePacketEncode);

void BM_TreeShapeBuild(benchmark::State& state) {
  const auto p = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    auto shape = core::TreeAggregator::build_shape(p);
    benchmark::DoNotOptimize(shape.nodes.data());
  }
}
BENCHMARK(BM_TreeShapeBuild)->Arg(16)->Arg(64)->Arg(512);

}  // namespace
