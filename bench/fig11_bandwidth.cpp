// Figure 11 — simulated switch aggregation bandwidth on the PsPIN unit.
//
// Left panel: bandwidth vs reduction size (int32), one line per policy,
// against the published SwitchML (1.6 Tbps) and SHARP (3.2 Tbps) numbers.
// Right panel: elements aggregated per second by dtype for a 1 MiB
// reduction — RI5CY SIMD vectorization raises the element rate for narrow
// integer types, while SwitchML's RMT pipeline gains nothing from them and
// cannot process floats at all (F1).
//
// --full uses the paper's full unit (512 cores) and size grid; the default
// scales the unit down 4x for a quick run (bandwidths scale ~linearly with
// the core count, Section 6.4).
#include <cstdio>

#include "bench_util.hpp"
#include "model/reference.hpp"
#include "pspin/experiment.hpp"

using namespace flare;

namespace {

struct Alg {
  const char* name;
  core::AggPolicy policy;
  u32 buffers;
};

constexpr Alg kAlgs[] = {
    {"single", core::AggPolicy::kSingleBuffer, 1},
    {"multi(4)", core::AggPolicy::kMultiBuffer, 4},
    {"tree", core::AggPolicy::kTree, 1},
};

pspin::SingleSwitchOptions base_options(bool full) {
  pspin::SingleSwitchOptions opt;
  if (!full) {
    opt.unit.n_clusters = 16;  // 128 cores; report scaled-to-512 numbers
  }
  opt.hosts = 16;
  opt.dtype = core::DType::kInt32;
  opt.seed = 5;
  return opt;
}

/// The PsPIN clusters are shared-nothing, so results scale linearly with
/// the deployed cluster count (paper, Section 6.4).
f64 cluster_scale(const pspin::SingleSwitchOptions& opt) {
  return 64.0 / opt.unit.n_clusters;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::print_title("Figure 11",
                     "simulated switch bandwidth vs size and data type");
  bench::JsonReport report("fig11_bandwidth");
  if (!full) {
    bench::print_note("(scaled-down unit: 16 of 64 clusters simulated, "
                      "results scaled linearly; run with --full for the "
                      "paper's 512-core unit)");
  }

  // ------------------------------------------------ left: size sweep -----
  const std::vector<u64> sizes =
      full ? std::vector<u64>{1_KiB, 4_KiB, 16_KiB, 64_KiB, 256_KiB,
                              512_KiB, 1_MiB}
           : std::vector<u64>{1_KiB, 4_KiB, 16_KiB, 64_KiB, 256_KiB,
                              512_KiB};
  std::printf("\n  Aggregation bandwidth (Tbps), int32 sum, P=16:\n");
  std::printf("  %-8s", "size");
  for (const Alg& a : kAlgs) std::printf(" %10s", a.name);
  std::printf(" %10s %10s\n", "SwitchML", "SHARP");
  for (const u64 z : sizes) {
    std::printf("  %-8s", bench::fmt_size(z).c_str());
    for (const Alg& a : kAlgs) {
      pspin::SingleSwitchOptions opt = base_options(full);
      opt.data_bytes = z;
      opt.policy = a.policy;
      opt.num_buffers = a.buffers;
      // Small operations run several rounds so the measurement reflects
      // steady-state aggregation throughput rather than a single latency.
      opt.rounds = static_cast<u32>(
          std::max<u64>(1, 256_KiB / std::max<u64>(z, 1)));
      const auto res = pspin::run_single_switch(opt);
      const f64 bw = res.goodput_bps * cluster_scale(opt);
      std::printf(" %10s%s", bench::fmt_tbps(bw).c_str(),
                  res.correct ? "" : "!");
    }
    std::printf(" %10s %10s\n",
                bench::fmt_tbps(model::kSwitchMLBandwidthBps).c_str(),
                bench::fmt_tbps(model::kSharpBandwidthBps).c_str());
  }

  // -------------------------------------------- right: dtype element rates
  std::printf("\n  Elements aggregated per second (1 MiB reduction, best "
              "policy):\n");
  std::printf("  %-8s %16s %16s\n", "dtype", "Flare (elem/s)",
              "SwitchML (elem/s)");
  for (const core::DType t :
       {core::DType::kInt32, core::DType::kInt16, core::DType::kInt8,
        core::DType::kFloat32}) {
    pspin::SingleSwitchOptions opt = base_options(full);
    opt.data_bytes = full ? 1_MiB : 512_KiB;
    opt.dtype = t;
    opt.policy = core::AggPolicy::kSingleBuffer;
    const auto res = pspin::run_single_switch(opt);
    const f64 bw = res.goodput_bps * cluster_scale(opt);
    const f64 flare_eps = model::elements_per_second(bw, t);
    const f64 sw_eps = model::switchml_elements_per_second(t);
    report.add(std::string("flare_eps_") + std::string(core::dtype_name(t)),
               flare_eps)
        .add(std::string("correct_") + std::string(core::dtype_name(t)),
             res.correct);
    std::printf("  %-8s %16.3e %16s%s\n",
                std::string(core::dtype_name(t)).c_str(), flare_eps,
                sw_eps > 0 ? (std::to_string(sw_eps / 1e9) + "e9").c_str()
                           : "unsupported",
                res.correct ? "" : " (CHECK FAILED)");
  }
  std::printf("\n  Paper shape: tree wins at small sizes (beating SwitchML); "
              "single buffer\n  overtakes everything from ~512 KiB (beating "
              "SHARP); narrower integers raise\n  Flare's element rate via "
              "SIMD while SwitchML is flat and float-less.\n");
  report.emit();
  return 0;
}
