// Persistent vs single-shot allreduce (beyond-paper): the control-plane
// amortization the Communicator's persistent requests buy in a training
// loop.
//
// Runs a 10-iteration allreduce two ways over identical fabrics:
//
//   * single-shot — every iteration computes the reduction tree, installs
//     the switch engines, runs, and uninstalls (the legacy run_* pattern);
//   * persistent  — compute_tree + install once, run 10 iterations against
//     the installed state, engines reset between runs.
//
// Reports per-iteration completion time (must be identical: amortization
// cannot cost data-plane time), total admission attempts (10 vs 1), and
// verifies every iteration bit-for-bit (int32 sum).  Exits non-zero if the
// persistent path is slower or any iteration is wrong — the acceptance
// check for the install-once/run-many redesign.
#include <cstdio>

#include "bench_util.hpp"
#include "coll/communicator.hpp"

using namespace flare;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const u64 data_bytes = full ? 16 * kMiB : 1 * kMiB;
  const u32 iterations = 10;
  bench::print_title("PERSISTENT",
                     "install-once/run-many vs single-shot allreduce");
  std::printf("  64-host fat tree, %s/host int32 sum, %u iterations.\n\n",
              bench::fmt_size(data_bytes).c_str(), iterations);

  coll::CollectiveOptions desc;
  desc.algorithm = coll::Algorithm::kFlareDense;
  desc.data_bytes = data_bytes;
  desc.dtype = core::DType::kInt32;

  // --- single-shot: install + uninstall every iteration -----------------
  f64 single_s = 0;
  u32 single_installs = 0;
  bool ok = true;
  {
    net::Network net;
    auto topo = net::build_fat_tree(net, net::FatTreeSpec{});
    for (u32 it = 0; it < iterations; ++it) {
      coll::Communicator comm(net, topo.hosts);
      coll::CollectiveOptions iter_desc = desc;
      iter_desc.seed = desc.seed + it;  // same data as the persistent run
      coll::PersistentCollective pc = comm.persistent(iter_desc);
      if (!pc.ok()) return 1;
      const auto res = pc.run();  // one iteration, then released
      single_installs += pc.install_report().attempts;
      ok = ok && res.ok && res.max_abs_err == 0.0;
      single_s += res.completion_seconds;
    }
  }

  // --- persistent: one install, ten runs --------------------------------
  f64 persistent_s = 0, persistent_worst = 0;
  u32 persistent_installs = 0;
  {
    net::Network net;
    auto topo = net::build_fat_tree(net, net::FatTreeSpec{});
    coll::Communicator comm(net, topo.hosts);
    coll::PersistentCollective pc = comm.persistent(desc);
    if (!pc.ok()) return 1;
    for (u32 it = 0; it < iterations; ++it) {
      const auto res = pc.run();
      ok = ok && res.ok && res.max_abs_err == 0.0;
      persistent_s += res.completion_seconds;
      persistent_worst = std::max(persistent_worst,
                                  res.completion_seconds);
    }
    persistent_installs = pc.install_report().attempts;
  }

  const f64 single_iter_ms = single_s / iterations * 1e3;
  const f64 persistent_iter_ms = persistent_s / iterations * 1e3;
  std::printf("  %-24s %14s %14s\n", "", "single-shot", "persistent");
  std::printf("  %-24s %11.3f ms %11.3f ms\n", "mean iteration",
              single_iter_ms, persistent_iter_ms);
  std::printf("  %-24s %14u %14u\n", "tree installs (10 iters)",
              single_installs, persistent_installs);
  std::printf("  %-24s %14s %14s\n", "bit-for-bit", ok ? "PASS" : "FAIL",
              ok ? "PASS" : "FAIL");

  // Acceptance: exactly one install across the loop, and no per-iteration
  // slowdown (tiny epsilon for f64 accumulation).
  const bool pass = ok && persistent_installs == 1 &&
                    persistent_worst <= single_s / iterations + 1e-12;
  std::printf("\n  amortization: %ux fewer control-plane admissions at "
              "equal data-plane time -> %s\n",
              single_installs / std::max(1u, persistent_installs),
              pass ? "PASS" : "FAIL");
  bench::JsonReport report("persistent_allreduce");
  report.add("iterations", iterations)
      .add("single_iter_ms", single_iter_ms)
      .add("persistent_iter_ms", persistent_iter_ms)
      .add("single_installs", single_installs)
      .add("persistent_installs", persistent_installs)
      .add("pass", pass);
  report.emit();
  return pass ? 0 : 1;
}
