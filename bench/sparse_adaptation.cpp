// Congestion-aware persistent SPARSE allreduce vs a congestion-blind
// static embedding (beyond-paper; the Canary result applied to Section 7's
// sparse engine — the PR that unified sparse under the op lifecycle).
//
// Fabric and traffic mirror bench/congestion_adaptation: 32 hosts x
// radix-8 fat tree (8 leaves x 4 spines), participants on leaves 0/1, and
// two phases of seeded, traffic-engineered background flows:
//
//   phase A [0 .. T_mid)      on/off flows crossing spine0;
//   phase B [T_mid .. T_end)  on/off flows crossing spine1.
//
// Both contenders run the same 12-iteration PERSISTENT int32 sparse
// allreduce (fresh per-epoch gradients via SparseWorkload::epoch_pairs)
// against bit-identical background traffic:
//
//   blind — static fixed-root tree at spine0: sits in phase-A congestion;
//   aware — CongestionMonitor-backed embedding installs on a cool spine,
//           then phase B heats exactly that spine and the completion-time
//           watch + worst-edge-EWMA hysteresis must MIGRATE the session.
//
// Acceptance (exit non-zero otherwise):
//   * every iteration of every run is bit-for-bit correct (int32 sum);
//   * aware total completion >= 1.3x faster than blind;
//   * the aware session migrates at least once;
//   * a full aware re-run reproduces every per-iteration completion time
//     and every migration instant exactly;
//   * zero leaked switch occupancy AND zero leaked hash-store bytes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "coll/communicator.hpp"
#include "net/telemetry.hpp"
#include "workload/cross_traffic.hpp"
#include "workload/generators.hpp"

using namespace flare;

namespace {

constexpr u32 kIterations = 12;
constexpr u64 kSeed = 42;

net::FatTreeSpec fabric_spec() {
  net::FatTreeSpec spec;
  spec.hosts = 32;
  spec.radix = 8;  // 8 leaves x 4 spines, no parallel links
  return spec;
}

/// Smallest flow label >= `salt` that the switches' ECMP hash steers from
/// leaf `src_leaf` onto spine `spine` (see bench/congestion_adaptation).
u64 label_for(u32 src_leaf, u32 spine, u64 salt) {
  const u32 want = (spine + 4 - src_leaf % 4) % 4;
  for (u64 label = salt;; ++label) {
    if (net::ecmp_index(label, 4) == want) return label;
  }
}

/// On/off flows crossing `spine` in both tree directions between the
/// participants' leaf-mates (never their access links) — tenant traffic
/// next door, not on top.
workload::CrossTrafficSpec phase_spec(SimTime start, SimTime end, u32 spine,
                                      u64 seed) {
  workload::CrossTrafficSpec spec;
  spec.seed = seed;
  spec.start_ps = start;
  spec.horizon_ps = end;
  spec.flow_rate_bps = 80e9;        // hot enough that sharing visibly hurts
  spec.mean_on_ps = 60 * kPsPerUs;  // ~90% duty cycle: sustained pressure
  spec.mean_off_ps = 6 * kPsPerUs;
  spec.incast_bursts = 0;  // incast hits access links no tree can avoid
  spec.pairs = {{8, 2}, {12, 6}, {16, 3}, {20, 7},   // into leaves 0/1
                {2, 8}, {6, 12}, {3, 16}, {7, 20}};  // out of leaves 0/1
  spec.flows = static_cast<u32>(spec.pairs.size());
  for (u32 f = 0; f < spec.flows; ++f) {
    const u32 src_leaf = spec.pairs[f].first / 4;
    spec.flow_labels.push_back(label_for(src_leaf, spine, seed + 100 * f));
  }
  return spec;
}

/// The four trainers: hosts 0,1 (leaf0) and 4,5 (leaf1).
std::vector<net::Host*> participants(const net::BuiltTopology& topo) {
  return {topo.hosts[0], topo.hosts[1], topo.hosts[4], topo.hosts[5]};
}

coll::CollectiveOptions sparse_desc() {
  coll::CollectiveOptions desc;
  desc.algorithm = coll::Algorithm::kFlareSparse;
  desc.dtype = core::DType::kInt32;
  desc.seed = kSeed;
  desc.sparse.block_span = 4096;
  desc.sparse.num_blocks = 16;
  desc.sparse.epoch_pairs = [](u64 epoch, u32 h, u32 b) {
    workload::SparseSpec spec{4096, 0.15, 0.5, core::DType::kInt32, epoch};
    return workload::sparse_block_pairs(spec, h, b);
  };
  return desc;
}

struct RunResult {
  std::vector<f64> iter_seconds;
  std::vector<u32> iter_migrations;
  std::vector<net::NodeId> iter_root;
  f64 total_seconds = 0.0;
  u32 migrations = 0;
  bool ok = true;         // every iteration correct and bit-for-bit
  bool leak_free = true;  // 3 installs while running, 0 after release,
                          // 0 hash-store bytes between iterations
};

RunResult run_contender(bool aware, SimTime t_mid, SimTime t_end,
                        SimTime period) {
  net::Network net;
  auto topo = net::build_fat_tree(net, fabric_spec());
  workload::CrossTrafficInjector phase_a(net, phase_spec(0, t_mid, 0, kSeed));
  workload::CrossTrafficInjector phase_b(net,
                                         phase_spec(t_mid, t_end, 1, kSeed));
  phase_a.arm();
  phase_b.arm();

  net::CongestionMonitor monitor(net);
  coll::CommunicatorConfig cfg;
  if (aware) {
    monitor.arm_until(t_end);  // regular windows: EWMA tracks the phases
    cfg.monitor = &monitor;
  } else {
    cfg.roots = {topo.spines[0]->id()};  // static fixed-root baseline
  }
  coll::Communicator comm(net, participants(topo), std::move(cfg));

  coll::CollectiveOptions desc = sparse_desc();
  if (aware) {
    desc.migrate_above = 0.2;
    desc.migrate_improvement = 0.85;
  }

  // Warm-up: let phase A build queues before placement happens.
  const SimTime warm = 10 * kPsPerUs;
  net.sim().run_until(warm);
  coll::PersistentCollective pc = comm.persistent(desc);
  RunResult out;
  if (!pc.ok()) {
    out.ok = false;
    return out;
  }

  for (u32 it = 0; it < kIterations; ++it) {
    net.sim().run_until(warm + it * period);  // training cadence
    coll::CollectiveHandle handle = pc.start();
    // Drive the shared calendar only as far as this iteration needs: the
    // background injectors own events far past the last iteration.
    while (!handle.done() && net.sim().step()) {
    }
    if (!handle.done()) {
      out.ok = false;
      return out;
    }
    const coll::CollectiveResult& res = handle.result();
    out.ok = out.ok && res.ok && res.max_abs_err == 0.0;
    out.iter_seconds.push_back(res.completion_seconds);
    out.iter_migrations.push_back(res.migrations);
    out.iter_root.push_back(pc.in_network() ? pc.tree().root
                                            : net::kInvalidNode);
    out.total_seconds += res.completion_seconds;
    out.migrations += res.migrations;
    u32 installed = 0;
    u64 pool_bytes = 0;
    for (net::Switch* sw : net.switches()) {
      installed += sw->installed_reduces();
      pool_bytes += sw->engine_pool_in_use();
    }
    out.leak_free = out.leak_free && installed == 3 && pool_bytes == 0;
  }
  pc.release();
  for (net::Switch* sw : net.switches()) {
    out.leak_free = out.leak_free && sw->installed_reduces() == 0 &&
                    sw->engine_pool_in_use() == 0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::print_title("SPARSE-ADAPT",
                     "congestion-aware persistent sparse allreduce vs "
                     "congestion-blind static embedding");

  // Phase boundaries sized from an unloaded iteration, as in the dense
  // adaptation bench.
  f64 iter_s;
  {
    net::Network net;
    auto topo = net::build_fat_tree(net, fabric_spec());
    coll::Communicator comm(net, participants(topo));
    coll::PersistentCollective pc = comm.persistent(sparse_desc());
    if (!pc.ok()) return 1;
    iter_s = pc.run().completion_seconds;
  }
  const SimTime t_iter = static_cast<SimTime>(iter_s * kPsPerSecond);
  const SimTime period = 3 * t_iter;  // the rest models the compute phase
  const SimTime warm = 10 * kPsPerUs;
  const SimTime t_mid = warm + (kIterations / 2) * period;
  const SimTime t_end = warm + (kIterations + 4) * period;
  std::printf("  32-host fat tree (4 spines), 4-host sparse int32 allreduce "
              "(span 4096 x 16 blocks, 15%% density), %u iterations\n"
              "  background: phase A hits spine0 until %.0f us, phase B "
              "hits spine1 until %.0f us\n\n",
              kIterations, static_cast<f64>(t_mid) / kPsPerUs,
              static_cast<f64>(t_end) / kPsPerUs);

  const RunResult blind = run_contender(false, t_mid, t_end, period);
  const RunResult aware = run_contender(true, t_mid, t_end, period);
  // Determinism: the aware run replayed from scratch must reproduce every
  // completion time and every migration instant bit for bit.
  const RunResult replay = run_contender(true, t_mid, t_end, period);

  if (blind.iter_seconds.size() < kIterations ||
      aware.iter_seconds.size() < kIterations) {
    std::printf("  a contender aborted early (install rejected or an "
                "iteration never completed) -> FAIL\n");
    return 1;
  }

  std::printf("  %-5s %14s %14s %12s\n", "iter", "blind (us)", "aware (us)",
              "aware root");
  for (u32 it = 0; it < kIterations; ++it) {
    std::printf("  %-5u %14.2f %14.2f %9s %2u%s\n", it,
                blind.iter_seconds[it] * 1e6, aware.iter_seconds[it] * 1e6,
                "node", aware.iter_root[it],
                aware.iter_migrations[it] > 0 ? "  << migrated" : "");
  }

  const bool deterministic =
      aware.iter_seconds == replay.iter_seconds &&
      aware.iter_migrations == replay.iter_migrations &&
      aware.iter_root == replay.iter_root;
  const f64 speedup = blind.total_seconds / aware.total_seconds;
  const bool faster = speedup >= 1.3;
  const bool pass = blind.ok && aware.ok && faster && aware.migrations >= 1 &&
                    deterministic && blind.leak_free && aware.leak_free &&
                    replay.leak_free;

  std::printf("\n  total completion      %10.2f us %10.2f us  (%.2fx, "
              "need >= 1.30x)\n",
              blind.total_seconds * 1e6, aware.total_seconds * 1e6, speedup);
  std::printf("  bit-for-bit results   %10s %10s\n",
              blind.ok ? "PASS" : "FAIL", aware.ok ? "PASS" : "FAIL");
  std::printf("  migrations            %10s %10u\n", "-", aware.migrations);
  std::printf("  deterministic replay  %21s\n",
              deterministic ? "PASS" : "FAIL");
  std::printf("  occupancy leak-free   %10s %10s\n",
              blind.leak_free ? "PASS" : "FAIL",
              aware.leak_free ? "PASS" : "FAIL");
  std::printf("\n  congestion-aware persistent sparse: %.2fx lower "
              "completion under shared-fabric traffic -> %s\n",
              speedup, pass ? "PASS" : "FAIL");
  bench::JsonReport report("sparse_adaptation");
  report.add("iterations", kIterations)
      .add("blind_total_seconds", blind.total_seconds)
      .add("aware_total_seconds", aware.total_seconds)
      .add("speedup", speedup)
      .add("migrations", static_cast<u64>(aware.migrations))
      .add("deterministic", deterministic)
      .add("leak_free", blind.leak_free && aware.leak_free)
      .add("pass", pass);
  report.emit();
  (void)full;
  return pass ? 0 : 1;
}
