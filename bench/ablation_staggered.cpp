// Ablation — the two scheduling-side design choices of Section 5:
//
//  (a) staggered vs aligned sending (delta_c control) for the contention-
//      prone single-buffer policy across sizes;
//  (b) hierarchical FCFS (block -> cluster-local core subset) vs global
//      FCFS, which pays remote-L1 penalties on nearly every aggregation.
#include <cstdio>

#include "bench_util.hpp"
#include "pspin/experiment.hpp"

using namespace flare;

namespace {

pspin::SingleSwitchOptions base(u64 bytes) {
  pspin::SingleSwitchOptions opt;
  opt.unit.n_clusters = 16;
  opt.hosts = 16;
  opt.data_bytes = bytes;
  opt.dtype = core::DType::kFloat32;
  opt.policy = core::AggPolicy::kSingleBuffer;
  opt.seed = 17;
  return opt;
}

}  // namespace

int main() {
  bench::print_title("Ablation",
                     "staggered sending & hierarchical FCFS scheduling");
  bench::JsonReport report("ablation_staggered");

  std::printf("  (a) staggered vs aligned sending, single buffer "
              "(Tbps, scaled to 64 clusters):\n");
  std::printf("  %-8s %12s %12s %9s | %14s %14s\n", "size", "staggered",
              "aligned", "gain", "cs-wait stag", "cs-wait align");
  for (const u64 z : {64_KiB, 256_KiB, 1_MiB}) {
    pspin::SingleSwitchOptions stag = base(z);
    stag.order = core::SendOrder::kStaggered;
    const auto rs = pspin::run_single_switch(stag);
    pspin::SingleSwitchOptions ali = base(z);
    ali.order = core::SendOrder::kAligned;
    const auto ra = pspin::run_single_switch(ali);
    const f64 scale = 64.0 / 16.0;
    std::printf("  %-8s %12s %12s %8.2fx | %14.0f %14.0f\n",
                bench::fmt_size(z).c_str(),
                bench::fmt_tbps(rs.goodput_bps * scale).c_str(),
                bench::fmt_tbps(ra.goodput_bps * scale).c_str(),
                rs.goodput_bps / ra.goodput_bps, rs.cs_wait_mean_cycles,
                ra.cs_wait_mean_cycles);
    report.add("staggered_gain_" + bench::fmt_size(z),
               rs.goodput_bps / ra.goodput_bps);
  }

  std::printf("\n  (b) hierarchical FCFS (local L1) vs global FCFS "
              "(remote L1, up to 25x access cost):\n");
  std::printf("  %-8s %14s %14s %9s\n", "size", "hierarchical", "global",
              "gain");
  for (const u64 z : {64_KiB, 256_KiB}) {
    pspin::SingleSwitchOptions hier = base(z);
    const auto rh = pspin::run_single_switch(hier);
    pspin::SingleSwitchOptions glob = base(z);
    glob.unit.scheduler = pspin::SchedulerKind::kGlobalFcfs;
    const auto rg = pspin::run_single_switch(glob);
    const f64 scale = 64.0 / 16.0;
    std::printf("  %-8s %14s %14s %8.2fx\n", bench::fmt_size(z).c_str(),
                bench::fmt_tbps(rh.goodput_bps * scale).c_str(),
                bench::fmt_tbps(rg.goodput_bps * scale).c_str(),
                rh.goodput_bps / rg.goodput_bps);
    report.add("hierarchical_gain_" + bench::fmt_size(z),
               rh.goodput_bps / rg.goodput_bps);
  }
  report.emit();
  return 0;
}
