// Figure 10 — modeled bandwidth and total memory occupancy of the four
// aggregation designs (single buffer, multi-buffer B=2/4, tree) for S = C
// and 64..512 KiB reductions.
#include <cstdio>

#include "bench_util.hpp"
#include "model/policies.hpp"

using namespace flare;

namespace {

struct Alg {
  const char* name;
  core::AggPolicy policy;
  u32 buffers;
};

constexpr Alg kAlgs[] = {
    {"single", core::AggPolicy::kSingleBuffer, 1},
    {"multi(2)", core::AggPolicy::kMultiBuffer, 2},
    {"multi(4)", core::AggPolicy::kMultiBuffer, 4},
    {"tree", core::AggPolicy::kTree, 1},
};

}  // namespace

int main() {
  bench::print_title(
      "Figure 10", "modeled bandwidth & memory per aggregation policy, S=C");
  bench::JsonReport report("fig10_policies");
  const u64 sizes[] = {64_KiB, 128_KiB, 256_KiB, 512_KiB};

  std::printf("  Bandwidth (Tbps):\n  %-8s", "size");
  for (const Alg& a : kAlgs) std::printf(" %10s", a.name);
  std::printf("\n");
  for (const u64 z : sizes) {
    std::printf("  %-8s", bench::fmt_size(z).c_str());
    for (const Alg& a : kAlgs) {
      model::SwitchParams sp;
      const auto pt = model::evaluate(sp, a.policy, a.buffers, z);
      std::printf(" %10s", bench::fmt_tbps(pt.bandwidth_bps).c_str());
      report.add(std::string("bw_tbps_") + a.name + "_" +
                     bench::fmt_size(z),
                 pt.bandwidth_bps / 1e12);
    }
    std::printf("\n");
  }

  std::printf("\n  Memory: input buffers + working memory (MiB):\n  %-8s",
              "size");
  for (const Alg& a : kAlgs) std::printf(" %10s", a.name);
  std::printf("\n");
  for (const u64 z : sizes) {
    std::printf("  %-8s", bench::fmt_size(z).c_str());
    for (const Alg& a : kAlgs) {
      model::SwitchParams sp;
      const auto pt = model::evaluate(sp, a.policy, a.buffers, z);
      std::printf(" %10s",
                  bench::fmt_mib(pt.input_buffer_bytes +
                                 pt.working_memory_bytes)
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("\n  Paper shape: tree leads below ~128-256 KiB; multi-buffer "
              "catches up with more\n  buffers helping at smaller sizes; "
              "single buffer catches up by 512 KiB and\n  leads beyond "
              "(no per-buffer management overhead).\n");
  report.emit();
  return 0;
}
