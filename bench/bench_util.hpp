// Shared helpers for the figure/table reproduction binaries: fixed-width
// table printing, a tiny flag parser (--full switches the scaled-down
// default workloads to the paper's exact sizes), and the machine-readable
// result line every bench emits (JsonReport — the observability CI diffs
// its keys against a committed baseline).
#pragma once

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace flare::bench {

/// Peak resident set size of this process in bytes (0 if unavailable).
/// Linux reports ru_maxrss in KiB.  JsonReport::emit() appends this to
/// every bench report as `peak_rss_bytes` — the scale plane's memory
/// trajectory — and tools/diff_bench_keys.py treats the key as purely
/// informational (it varies with allocator and machine).
inline u64 peak_rss_bytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<u64>(ru.ru_maxrss) * 1024;
}

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline void print_title(const char* id, const char* what) {
  std::printf("\n==============================================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("==============================================================================\n");
}

inline void print_note(const char* note) { std::printf("  %s\n", note); }

inline std::string fmt_tbps(f64 bps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%6.2f", bps / 1e12);
  return buf;
}

inline std::string fmt_mib(f64 bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.2f", bytes / (1024.0 * 1024.0));
  return buf;
}

inline std::string fmt_kib(f64 bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%7.2f", bytes / 1024.0);
  return buf;
}

/// Machine-readable bench output: insertion-ordered key/value pairs,
/// emitted as ONE line `BENCH_JSON {...}` so harnesses can grep it out of
/// the human-readable tables.  Doubles format via the same recipe as the
/// metrics exporters (integral values print as integers, everything else
/// as %.17g), so reruns of a deterministic bench emit identical bytes.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) { add("bench", std::move(bench)); }

  JsonReport& add(const std::string& key, const std::string& v) {
    entries_.emplace_back(key, "\"" + escaped(v) + "\"");
    return *this;
  }
  JsonReport& add(const std::string& key, const char* v) {
    return add(key, std::string(v));
  }
  JsonReport& add(const std::string& key, bool v) {
    entries_.emplace_back(key, v ? "true" : "false");
    return *this;
  }
  JsonReport& add(const std::string& key, u64 v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    entries_.emplace_back(key, buf);
    return *this;
  }
  JsonReport& add(const std::string& key, u32 v) {
    return add(key, static_cast<u64>(v));
  }
  JsonReport& add(const std::string& key, int v) {
    return add(key, static_cast<u64>(v < 0 ? 0 : v));
  }
  JsonReport& add(const std::string& key, f64 v) {
    char buf[40];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else if (std::isinf(v)) {
      std::snprintf(buf, sizeof(buf), "%s", v > 0 ? "1e999" : "-1e999");
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    entries_.emplace_back(key, buf);
    return *this;
  }

  std::string to_json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i != 0) out += ",";
      out += "\"" + escaped(entries_[i].first) + "\":" + entries_[i].second;
    }
    out += "}";
    return out;
  }

  /// Prints the single `BENCH_JSON {...}` line (with a leading newline so
  /// it never glues onto a table row), appending the informational
  /// peak_rss_bytes measurement last — the one key exempt from the
  /// bit-identical-rerun property.
  void emit() {
    add("peak_rss_bytes", peak_rss_bytes());
    std::printf("\nBENCH_JSON %s\n", to_json().c_str());
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

inline std::string fmt_size(u64 bytes) {
  char buf[32];
  if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%lluMiB",
                  static_cast<unsigned long long>(bytes / kMiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluKiB",
                  static_cast<unsigned long long>(bytes / kKiB));
  }
  return buf;
}

}  // namespace flare::bench
