// Shared helpers for the figure/table reproduction binaries: fixed-width
// table printing and a tiny flag parser (--full switches the scaled-down
// default workloads to the paper's exact sizes).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "common/units.hpp"

namespace flare::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline void print_title(const char* id, const char* what) {
  std::printf("\n==============================================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("==============================================================================\n");
}

inline void print_note(const char* note) { std::printf("  %s\n", note); }

inline std::string fmt_tbps(f64 bps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%6.2f", bps / 1e12);
  return buf;
}

inline std::string fmt_mib(f64 bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.2f", bytes / (1024.0 * 1024.0));
  return buf;
}

inline std::string fmt_kib(f64 bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%7.2f", bytes / 1024.0);
  return buf;
}

inline std::string fmt_size(u64 bytes) {
  char buf[32];
  if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%lluMiB",
                  static_cast<unsigned long long>(bytes / kMiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluKiB",
                  static_cast<unsigned long long>(bytes / kKiB));
  }
  return buf;
}

}  // namespace flare::bench
