// Multi-tenant allreduce service trajectory (Sections 4 and 7: admission
// against statically partitioned switch memory, host fallback on
// rejection) — the production-scale scenario the standalone figure benches
// don't exercise: a 64-host fat tree serving a STREAM of concurrent jobs.
//
// Sweeps job arrival rate × job size × max_allreduces (the per-switch
// memory partition) and reports, per cell:
//
//   * in-network vs host-fallback job split,
//   * queue delay (mean / max) and mean service time,
//   * peak per-switch occupancy (concurrent reductions high-water mark).
//
// Ends with the verification scenario: >= 8 concurrent jobs on ample
// switch memory must ALL run in-network and match the reference reduction
// bit-for-bit (int32 sum is associative, so in-network aggregation order
// cannot change the answer).  Exits non-zero if that fails.
#include <cstdio>

#include "bench_util.hpp"
#include "service/service.hpp"
#include "workload/job_mix.hpp"

using namespace flare;

namespace {

struct CellResult {
  u32 jobs = 0;
  u32 in_network = 0;
  u32 fallback = 0;
  f64 queue_delay_mean_us = 0.0;
  f64 queue_delay_max_us = 0.0;
  f64 service_mean_us = 0.0;
  u64 peak_occupancy = 0;
  u64 peak_queue = 0;
  bool all_ok = true;
  bool all_exact = true;
};

CellResult run_cell(u32 max_allreduces, f64 mean_interarrival_s,
                    u64 data_bytes, u32 jobs,
                    service::RootPolicy policy, u64 seed) {
  net::Network net;
  net::FatTreeSpec topo_spec;
  topo_spec.hosts = 64;
  topo_spec.radix = 8;
  topo_spec.max_allreduces = max_allreduces;
  auto topo = net::build_fat_tree(net, topo_spec);

  service::ServiceOptions opt;
  opt.root_policy = policy;
  opt.queue_timeout_ps = 200 * kPsPerUs;
  service::AllreduceService svc(net, opt);

  workload::JobMixSpec mix;
  mix.jobs = jobs;
  mix.hosts_min = 4;
  mix.hosts_max = 16;
  mix.sizes_bytes = {data_bytes};
  mix.dtype = core::DType::kInt32;
  mix.mean_interarrival_s = mean_interarrival_s;
  mix.seed = seed;
  for (const workload::JobArrival& a : workload::make_job_mix(mix, 64)) {
    service::JobSpec spec;
    for (const u32 h : a.host_indices)
      spec.participants.push_back(topo.hosts[h]);
    spec.desc.data_bytes = a.data_bytes;
    spec.desc.dtype = a.dtype;
    spec.desc.seed = a.seed;
    svc.submit_at(a.at_ps, std::move(spec));
  }
  net.sim().run();

  CellResult cell;
  cell.jobs = jobs;
  const service::ServiceTelemetry& t = svc.telemetry();
  cell.in_network = static_cast<u32>(t.in_network);
  cell.fallback = static_cast<u32>(t.fallback());
  cell.queue_delay_mean_us = t.queue_delay_s.mean() * 1e6;
  cell.queue_delay_max_us = t.queue_delay_s.max() * 1e6;
  const f64 svc_sum = t.in_network_service_s.sum() +
                      t.fallback_service_s.sum();
  const u64 svc_n =
      t.in_network_service_s.count() + t.fallback_service_s.count();
  cell.service_mean_us = svc_n == 0 ? 0.0 : svc_sum / svc_n * 1e6;
  cell.peak_occupancy = service::peak_switch_occupancy(net);
  cell.peak_queue = t.peak_queue_len;
  for (const service::JobRecord& rec : svc.records()) {
    cell.all_ok = cell.all_ok && rec.ok;
    cell.all_exact = cell.all_exact && rec.exact;
  }
  return cell;
}

void print_row(u32 max_allreduces, f64 rate_jobs_per_ms, u64 size,
               const CellResult& c) {
  std::printf("  %9u %10.1f %8s %5u %7.1f%% %7.1f%% %10.1f %10.1f %9.1f "
              "%6llu %6llu %7s\n",
              max_allreduces, rate_jobs_per_ms,
              bench::fmt_size(size).c_str(), c.jobs,
              100.0 * c.in_network / c.jobs, 100.0 * c.fallback / c.jobs,
              c.queue_delay_mean_us, c.queue_delay_max_us, c.service_mean_us,
              static_cast<unsigned long long>(c.peak_occupancy),
              static_cast<unsigned long long>(c.peak_queue),
              c.all_ok ? "OK" : "FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::print_title("SERVICE",
                     "multi-tenant allreduce: arrival rate x job size x "
                     "switch memory partition");
  std::printf("  64-host 2-level fat tree (16 leaves + 8 spines, radix 8, "
              "100 Gbps), least-loaded\n  root policy, 200 us queue "
              "timeout, int32 sum jobs of 4-16 hosts each.\n");
  if (!full) {
    bench::print_note("(default: 24 jobs/cell for a quick run; --full = 96 "
                      "jobs/cell)");
  }
  std::printf("\n  %9s %10s %8s %5s %8s %8s %10s %10s %9s %6s %6s %7s\n",
              "max_allrd", "jobs/ms", "size", "jobs", "in-net", "fallbk",
              "qdly-mean", "qdly-max", "svc-mean", "occ", "queue", "check");
  std::printf("  %9s %10s %8s %5s %8s %8s %10s %10s %9s %6s %6s %7s\n", "",
              "", "", "", "", "", "(us)", "(us)", "(us)", "peak", "peak",
              "");

  const u32 jobs = full ? 96 : 24;
  const u32 partitions[] = {1, 2, 4, 32};
  const f64 interarrivals_s[] = {2e-6, 10e-6, 50e-6};
  const u64 sizes[] = {64 * kKiB, 256 * kKiB, 1 * kMiB};
  bool sweep_ok = true;
  for (const u32 m : partitions) {
    for (const f64 ia : interarrivals_s) {
      for (const u64 size : sizes) {
        const CellResult c = run_cell(m, ia, size, jobs,
                                      service::RootPolicy::kLeastLoaded,
                                      /*seed=*/17);
        print_row(m, 1e-3 / ia, size, c);
        sweep_ok = sweep_ok && c.all_ok;
      }
    }
    std::printf("\n");
  }

  std::printf("  Shape: with 1 reduction slot per switch most jobs queue "
              "and fall back to the\n  host ring; each doubling of "
              "max_allreduces shifts jobs in-network and shrinks\n  queue "
              "delay; with ample slots everything runs in-network.\n");

  // ------------------------------------------------------ verification ---
  // >= 8 concurrent jobs, ample switch memory: 100% in-network and
  // bit-for-bit identical to the reference reduction.
  bench::print_title("SERVICE-VERIFY",
                     "ample memory: every job in-network, bit-for-bit");
  const CellResult v = run_cell(/*max_allreduces=*/32,
                                /*mean_interarrival_s=*/1e-6,
                                /*data_bytes=*/256 * kKiB,
                                /*jobs=*/full ? 32 : 12,
                                service::RootPolicy::kLeastLoaded,
                                /*seed=*/23);
  const bool verify_ok =
      v.all_ok && v.all_exact && v.fallback == 0 && v.in_network == v.jobs;
  std::printf("  jobs=%u  in-network=%u  fallback=%u  exact=%s  ->  %s\n",
              v.jobs, v.in_network, v.fallback, v.all_exact ? "yes" : "no",
              verify_ok ? "PASS" : "FAIL");

  bench::JsonReport report("service_multitenant");
  report.add("verify_jobs", v.jobs)
      .add("verify_in_network", v.in_network)
      .add("verify_fallback", v.fallback)
      .add("verify_exact", v.all_exact)
      .add("sweep_ok", sweep_ok)
      .add("pass", verify_ok && sweep_ok);
  report.emit();
  if (!verify_ok || !sweep_ok) return 1;
  return 0;
}
