// Table 1 — feature comparison of in-network allreduce systems.
//
// The published systems' capabilities are literature constants; the Flare
// column is DEMONSTRATED live: a custom operator on a custom data type
// (F1), a sparse reduction with irregular per-host data (F2), and a
// bitwise-reproducibility check across adversarial arrival orders (F3),
// all executed on the PsPIN-based switch simulator.
#include <cstdio>

#include "bench_util.hpp"
#include "pspin/experiment.hpp"

namespace {

using namespace flare;

struct SystemRow {
  const char* name;
  const char* category;
  const char* f1;  // custom operators & data types
  const char* f2;  // sparse data
  const char* f3;  // reproducibility
};

// Legend: Y = provided, ~ = partially provided, N = not provided, ? = unknown
constexpr SystemRow kRows[] = {
    {"SHArP [9]", "fixed-function", "N", "N", "Y"},
    {"SHARP-SAT [16]", "fixed-function", "N", "N", "Y"},
    {"Aries [17]", "fixed-function", "N", "N", "?"},
    {"Tofu [18]", "fixed-function", "N", "N", "?"},
    {"PERCS [19]", "fixed-function", "N", "N", "?"},
    {"Anton2 [21]", "fixed-function", "N", "N", "?"},
    {"NVSwitch [10]", "fixed-function", "N", "N", "Y"},
    {"PANAMA [22]", "FPGA", "N", "N", "Y"},
    {"NetReduce [23]", "FPGA", "N", "N", "?"},
    {"ATP [24]", "progr. switch", "~", "N", "N"},
    {"SwitchML [11]", "progr. switch", "~", "N", "N"},
    {"OmniReduce [25]", "progr. switch", "~", "~", "N"},
    {"Flare (this repo)", "sPIN/PsPIN", "Y", "Y", "Y"},
};

pspin::SingleSwitchOptions demo_base() {
  pspin::SingleSwitchOptions opt;
  opt.unit.n_clusters = 8;
  opt.unit.cores_per_cluster = 8;
  opt.unit.charge_cold_start = false;
  opt.hosts = 8;
  opt.data_bytes = 32_KiB;
  opt.seed = 11;
  return opt;
}

}  // namespace

int main() {
  bench::print_title("Table 1", "in-network allreduce feature comparison "
                                "(F1 custom ops/types, F2 sparse, F3 "
                                "reproducible)");
  std::printf("  %-20s %-16s %4s %4s %4s\n", "System", "Category", "F1",
              "F2", "F3");
  for (const SystemRow& row : kRows) {
    std::printf("  %-20s %-16s %4s %4s %4s\n", row.name, row.category,
                row.f1, row.f2, row.f3);
  }
  std::printf("  (Y = provided, ~ = partial, N = no, ? = unknown)\n");

  std::printf("\n  Live capability demonstrations on the PsPIN switch:\n");
  bench::JsonReport report("tab01_features");

  // F1: custom operator (saturating int8 sum, a quantized-training op no
  // fixed-function or RMT switch offers).
  {
    pspin::SingleSwitchOptions opt = demo_base();
    opt.dtype = core::DType::kInt8;
    opt.policy = core::AggPolicy::kTree;
    const auto res = pspin::run_single_switch(opt);
    std::printf("  [F1] int8 tree aggregation, %llu blocks: %s\n",
                static_cast<unsigned long long>(res.blocks_completed),
                res.correct ? "OK" : "FAILED");
    report.add("f1_custom_op_ok", res.correct);
  }

  // F2: sparse allreduce with irregular per-host non-zeros.
  {
    pspin::SingleSwitchOptions opt = demo_base();
    opt.sparse = true;
    opt.density = 0.05;
    opt.index_overlap = 0.6;
    const auto res = pspin::run_single_switch(opt);
    std::printf("  [F2] sparse hash-store allreduce (5%% dense): %s "
                "(extra traffic %.1f%%)\n",
                res.correct ? "OK" : "FAILED", res.extra_traffic_pct);
    report.add("f2_sparse_ok", res.correct);
  }

  // F3: bitwise reproducibility across different arrival orders.
  {
    pspin::SingleSwitchOptions opt = demo_base();
    opt.dtype = core::DType::kFloat32;
    opt.reproducible = true;
    opt.arrival_seed = 101;
    const auto a = pspin::run_single_switch(opt);
    opt.arrival_seed = 202;
    const auto b = pspin::run_single_switch(opt);
    const bool reproducible =
        a.correct && b.correct && a.result_checksum == b.result_checksum;
    std::printf("  [F3] fp32 reproducible tree, 2 arrival orders: %s "
                "(checksums %016llx / %016llx)\n",
                reproducible ? "BITWISE IDENTICAL" : "FAILED",
                static_cast<unsigned long long>(a.result_checksum),
                static_cast<unsigned long long>(b.result_checksum));
    report.add("f3_reproducible", reproducible);
  }
  report.emit();
  return 0;
}
