// Figure 15 — 64-node allreduce on a 2-level fat tree of 8-port 100 Gbps
// switches: completion time and total network traffic for
//
//   * host-based dense  (ring / Rabenseifner allreduce),
//   * Flare dense       (in-network reduction tree),
//   * host-based sparse (SparCML recursive doubling),
//   * Flare sparse      (in-network sparse allreduce),
//
// with a bucketed top-1-of-512 gradient trace (~0.2% density, strongly
// overlapped indices) standing in for the paper's ResNet50/SparCML capture.
//
// Default: 4 MiB per host so the run completes in seconds; --full uses the
// paper's 100 MiB (the schemes scale near-linearly in Z, so the RATIOS —
// who wins and by how much — are preserved; see EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.hpp"
#include "coll/communicator.hpp"
#include "workload/gradient_trace.hpp"

using namespace flare;

namespace {

void print_row(const char* name, const coll::CollectiveResult& res) {
  std::printf("  %-18s %12.3f %14.3f %10s\n", name,
              res.completion_seconds * 1e3,
              static_cast<f64>(res.total_traffic_bytes) / (1024.0 * 1024.0 *
                                                           1024.0),
              res.ok ? "OK" : "FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const u64 data_bytes = full ? 100 * kMiB : 4 * kMiB;
  bench::print_title("Figure 15",
                     "64-node fat-tree allreduce: time & network traffic");
  std::printf("  2-level fat tree: 16 leaves + 8 spines (radix 8), 100 Gbps "
              "links; %s/host fp32.\n",
              bench::fmt_size(data_bytes).c_str());
  if (!full) {
    bench::print_note("(default 4 MiB/host for a quick run; --full = the "
                      "paper's 100 MiB; ratios are size-stable)");
  }
  std::printf("\n  %-18s %12s %14s %10s\n", "scheme", "time (ms)",
              "traffic (GiB)", "check");

  // Gradient trace shared by the two sparse schemes (0.2% density).
  workload::GradientTraceSpec gspec;
  gspec.model_elems = data_bytes / 4;
  gspec.bucket = 512;
  gspec.top_k = 1;
  gspec.overlap = 0.6;  // measured top-k selections agree often, not always
  workload::GradientTrace trace(gspec, 64);

  // One descriptor per scheme, all executed through the SAME Communicator
  // session API — the flexibility surface the paper claims.

  // Sparse workload shared by both sparse schemes: one reduction block =
  // 128 buckets so a block's expected non-zeros (~top_k * 128 = 128 pairs)
  // fill one packet.
  const u64 buckets_per_block = 128;
  coll::SparseWorkload sparse_w;
  sparse_w.block_span = static_cast<u32>(buckets_per_block * gspec.bucket);
  sparse_w.num_blocks = static_cast<u32>(
      (trace.buckets() + buckets_per_block - 1) / buckets_per_block);
  sparse_w.pairs = [&trace, buckets_per_block](u32 h, u32 b) {
    return trace.window_pairs(h, b * buckets_per_block, buckets_per_block);
  };

  bench::JsonReport report("fig15_fattree");
  auto run_scheme = [&](const char* name, coll::Algorithm algorithm,
                        bool sparse) {
    net::Network net;
    auto topo = net::build_fat_tree(net, net::FatTreeSpec{});
    coll::CollectiveOptions desc;
    desc.algorithm = algorithm;
    if (sparse) {
      desc.sparse = sparse_w;
    } else {
      desc.data_bytes = data_bytes;
    }
    coll::Communicator comm(net, topo.hosts);
    const auto res = comm.run(desc);
    print_row(name, res);
    return res;
  };

  const auto record = [&report](const char* key,
                                const coll::CollectiveResult& res) {
    report.add(std::string(key) + "_seconds", res.completion_seconds)
        .add(std::string(key) + "_traffic_bytes", res.total_traffic_bytes)
        .add(std::string(key) + "_ok", res.ok);
  };
  record("host_dense",
         run_scheme("Host-Based Dense", coll::Algorithm::kHostRing, false));
  record("flare_dense",
         run_scheme("Flare Dense", coll::Algorithm::kFlareDense, false));
  record("host_sparse",
         run_scheme("Host-Based Sparse", coll::Algorithm::kSparcml, true));
  const auto sparse_res =
      run_scheme("Flare Sparse", coll::Algorithm::kFlareSparse, true);
  record("flare_sparse", sparse_res);
  report.add("flare_sparse_spill_packets", sparse_res.extra_packets);
  std::printf("  %-18s %12s %14llu\n", "  (spill packets)", "",
              static_cast<unsigned long long>(sparse_res.extra_packets));

  std::printf("\n  Paper shape: Flare dense ~2x faster and ~2x less traffic "
              "than the host ring;\n  host-based sparse beats dense schemes "
              "on time but moves more bytes than\n  in-network sparse; "
              "Flare sparse wins on BOTH time and traffic (paper: up to\n"
              "  35%% faster and ~20x less traffic than SparCML).\n");
  report.emit();
  return 0;
}
