// Figure 14 — simulated sparse allreduce on the PsPIN unit: bandwidth,
// per-block working memory, and spill-induced extra network traffic, for
// 20% / 10% / 1% density with hash and array storage (1 MiB allreduce).
//
// Index overlap across hosts rises as density drops (top-k sparsification
// concentrates on the same important coordinates on every host — see
// DESIGN.md): 20% -> 0.2, 10% -> 0.5, 1% -> 0.9.  This is what keeps the
// hash store effective at high sparsity and reproduces the paper's
// extra-traffic trend.  Array storage at 1% density is reported for
// completeness; the paper omits it because the per-block arrays exhaust
// the switch working memory.
#include <cstdio>

#include "bench_util.hpp"
#include "pspin/experiment.hpp"

using namespace flare;

namespace {

f64 overlap_for_density(f64 density) {
  // Top-k sparsification concentrates harder on the shared important
  // coordinates as k shrinks: at 20% of the data kept, selections are
  // barely correlated; at 1% they are dominated by the same hot indices.
  if (density >= 0.15) return 0.0;
  if (density >= 0.05) return 0.8;
  return 0.97;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::print_title("Figure 14",
                     "simulated sparse allreduce vs density and storage");
  bench::JsonReport report("fig14_sparse_sim");
  if (!full) {
    bench::print_note("(scaled-down unit: 16 of 64 clusters; --full for the "
                      "512-core unit and 1 MiB data)");
  }

  std::printf("  %-10s %-7s | %11s %14s %14s %9s\n", "storage", "density",
              "Band (Tbps)", "BlockMem(KiB)", "ExtraTraf(%)", "check");
  for (const bool hash : {true, false}) {
    for (const f64 density : {0.20, 0.10, 0.01}) {
      pspin::SingleSwitchOptions opt;
      if (!full) opt.unit.n_clusters = 16;
      opt.hosts = 16;
      opt.data_bytes = full ? 1_MiB : 256_KiB;
      opt.dtype = core::DType::kFloat32;
      opt.sparse = true;
      opt.density = density;
      opt.index_overlap = overlap_for_density(density);
      opt.hash_storage = hash;
      opt.policy = core::AggPolicy::kSingleBuffer;
      opt.seed = 9;
      // Equalize the sparsified bytes across densities with extra rounds so
      // the measurement is steady-state throughput, not one-shot latency
      // (at 1% a single operation is only a few KiB of wire data).
      opt.rounds = static_cast<u32>(std::max(1.0, 0.20 / density));
      const auto res = pspin::run_single_switch(opt);
      const f64 bw = res.goodput_bps * 64.0 / opt.unit.n_clusters;
      std::printf("  %-10s %5.0f%% | %11s %14s %14.1f %9s\n",
                  hash ? "hash" : "array", density * 100,
                  bench::fmt_tbps(bw).c_str(),
                  bench::fmt_kib(res.block_mem_mean_bytes).c_str(),
                  res.extra_traffic_pct, res.correct ? "OK" : "FAILED");
      const std::string key = std::string(hash ? "hash_" : "array_") +
                              std::to_string(static_cast<int>(density * 100)) +
                              "pct";
      report.add(key + "_tbps", bw / 1e12)
          .add(key + "_extra_traffic_pct", res.extra_traffic_pct)
          .add(key + "_correct", res.correct);
    }
  }
  std::printf("\n  Paper shape: hash storage has density-independent "
              "bandwidth and memory but\n  spills extra traffic as the "
              "union of indices grows (worst at 20%%); array\n  storage "
              "never spills, with memory growing as 1/density (prohibitive "
              "at 1%%).\n");
  report.emit();
  return 0;
}
