// Observability plane acceptance bench: one seeded multi-tenant run with
// BOTH chaos (seeded fault plan) and congestion (seeded cross-traffic +
// armed monitor) exporting every observability surface at once —
//
//   * a Chrome trace-event JSON (obs_trace.json) with job spans, iteration
//     spans, fault/retransmit/recovery instants, and congestion-threshold
//     crossings;
//   * the unified metrics registry as JSON (obs_metrics.json) and
//     Prometheus text (obs_metrics.prom), including the per-(link,
//     collective) busy-picosecond attribution;
//
// then the ENTIRE scenario runs a second time from the same seed and every
// exported string must be BYTE-IDENTICAL.  That is the PR's determinism
// contract: tracing and metrics observe the simulation without perturbing
// it, and the simulation itself replays bit for bit.
//
// Also asserts the attribution conservation invariant across the whole
// fabric (sum of per-trace busy buckets == busy_cum_ps on every link).
// Exit status is the acceptance gate; BENCH_JSON carries the tallies.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/fault.hpp"
#include "net/telemetry.hpp"
#include "obs/bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"
#include "workload/cross_traffic.hpp"

using namespace flare;

namespace {

constexpr u64 kSeed = 20210814;  // SC '21 vibes; any seed must replay

struct RunOutput {
  std::string trace_json;
  std::string metrics_json;
  std::string metrics_prom;
  u64 trace_events = 0;
  u64 completed = 0;
  u64 faults = 0;
  u64 retransmits = 0;
  bool jobs_ok = true;
  bool conservation_ok = true;
  bool attributed_tenants = false;  // >= 2 non-zero trace buckets somewhere
};

RunOutput run_once() {
  net::Network net;
  auto topo = net::build_fat_tree(net, net::FatTreeSpec{.hosts = 32});

  obs::Tracer tracer;
  net.set_tracer(&tracer);

  // Background tenants: seeded on/off flows plus two incast bursts, all
  // trace-tagged, so the attribution sees foreign heat next to the jobs.
  workload::CrossTrafficSpec xspec;
  xspec.seed = kSeed;
  xspec.flows = 6;
  xspec.horizon_ps = 400 * kPsPerUs;
  workload::CrossTrafficInjector cross(net, xspec);
  cross.arm();

  // Seeded chaos: link flaps, one switch crash/restart, silent drop and
  // corruption bursts — every fault lands as a tracer instant.
  net::FaultPlanSpec fspec;
  fspec.horizon_ps = 120 * kPsPerUs;
  net::FaultInjector injector(net);
  injector.arm(net::FaultPlan::random(net, kSeed, fspec));

  net::CongestionMonitor monitor(net);
  monitor.arm_until(400 * kPsPerUs);

  service::ServiceOptions opt;
  opt.monitor = &monitor;
  opt.retransmit_timeout_ps = 30 * kPsPerUs;
  opt.migrate_above = 0.25;
  service::AllreduceService service(net, opt);

  // Six tenants on a training cadence: mixed dense/sparse/ring so every
  // data plane exercises its spans.
  for (u32 j = 0; j < 6; ++j) {
    service::JobSpec spec;
    for (u32 h = 0; h < 8; ++h) {
      spec.participants.push_back(net.hosts()[(j * 4 + h) % 32]);
    }
    spec.desc.data_bytes = 64 * kKiB;
    spec.desc.dtype = core::DType::kInt32;
    spec.desc.seed = kSeed + j;
    spec.desc.algorithm =
        j % 3 == 2 ? coll::Algorithm::kHostRing : coll::Algorithm::kFlareDense;
    spec.iterations = 3;
    service.submit_at(j * 10 * kPsPerUs, std::move(spec));
  }

  net.sim().run();

  RunOutput out;
  for (const service::JobRecord& rec : service.records()) {
    out.jobs_ok = out.jobs_ok && rec.state == service::JobState::kDone &&
                  rec.ok;
    out.completed += rec.state == service::JobState::kDone ? 1 : 0;
    out.retransmits += rec.retransmits;
  }
  out.faults = net.faults_notified();

  // Attribution conservation: every link's per-trace buckets must sum
  // EXACTLY to its cumulative busy counter.
  u32 multi_tenant_links = 0;
  for (u32 i = 0; i < net.num_links(); ++i) {
    const net::Link& link = net.link(i);
    u64 sum = 0;
    u32 tenants = 0;
    for (const auto& [trace, ps] : link.busy_by_trace()) {
      sum += ps;
      tenants += ps > 0 ? 1 : 0;
    }
    out.conservation_ok =
        out.conservation_ok && sum == link.busy_cum_ps();
    multi_tenant_links += tenants >= 2 ? 1 : 0;
  }
  out.attributed_tenants = multi_tenant_links > 0;

  obs::MetricsRegistry reg;
  obs::register_network_metrics(reg, net);
  obs::export_service_telemetry(reg, service.telemetry());

  out.trace_events = tracer.events();
  out.trace_json = tracer.to_json();
  out.metrics_json = reg.to_json();
  out.metrics_prom = reg.to_prometheus();
  return out;
}

bool write_file(const char* path, const std::string& body) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::print_title("OBSERVABILITY",
                     "deterministic tracing + metrics under chaos and "
                     "congestion");
  std::printf("  32-host fat tree, 6 tenant jobs x 3 iterations, seeded "
              "faults + cross-traffic,\n  full observability surface "
              "exported twice and compared byte for byte.\n\n");

  const RunOutput a = run_once();
  const RunOutput b = run_once();

  const bool trace_identical = a.trace_json == b.trace_json;
  const bool metrics_identical =
      a.metrics_json == b.metrics_json && a.metrics_prom == b.metrics_prom;

  write_file("obs_trace.json", a.trace_json);
  write_file("obs_metrics.json", a.metrics_json);
  write_file("obs_metrics.prom", a.metrics_prom);

  std::printf("  jobs completed ok         %s (%llu)\n",
              a.jobs_ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(a.completed));
  std::printf("  faults observed           %llu   retransmits %llu\n",
              static_cast<unsigned long long>(a.faults),
              static_cast<unsigned long long>(a.retransmits));
  std::printf("  trace events              %llu -> obs_trace.json\n",
              static_cast<unsigned long long>(a.trace_events));
  std::printf("  trace bit-identical       %s\n",
              trace_identical ? "PASS" : "FAIL");
  std::printf("  metrics bit-identical     %s (json + prometheus)\n",
              metrics_identical ? "PASS" : "FAIL");
  std::printf("  attribution conservation  %s\n",
              a.conservation_ok ? "PASS" : "FAIL");
  std::printf("  multi-tenant attribution  %s\n",
              a.attributed_tenants ? "PASS" : "FAIL");

  const bool pass = a.jobs_ok && a.faults > 0 && a.trace_events > 0 &&
                    trace_identical && metrics_identical &&
                    a.conservation_ok && a.attributed_tenants;
  std::printf("\n  observability plane: deterministic, conservative, "
              "attributed -> %s\n", pass ? "PASS" : "FAIL");

  bench::JsonReport report("observability_chaos");
  report.add("jobs_completed", a.completed)
      .add("faults_observed", a.faults)
      .add("retransmits", a.retransmits)
      .add("trace_events", a.trace_events)
      .add("trace_bit_identical", trace_identical)
      .add("metrics_bit_identical", metrics_identical)
      .add("attribution_conserved", a.conservation_ok)
      .add("multi_tenant_attribution", a.attributed_tenants)
      .add("pass", pass);
  report.emit();
  return pass ? 0 : 1;
}
