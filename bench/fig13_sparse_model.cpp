// Figure 13 — modeled bandwidth of the Flare sparse allreduce for hash and
// array storage at 10% density, 64..512 KiB of SPARSIFIED data, all four
// parallelism policies.
#include <cstdio>

#include "bench_util.hpp"
#include "model/sparse.hpp"

using namespace flare;

namespace {

struct Alg {
  const char* name;
  core::AggPolicy policy;
  u32 buffers;
};

constexpr Alg kAlgs[] = {
    {"single", core::AggPolicy::kSingleBuffer, 1},
    {"multi(2)", core::AggPolicy::kMultiBuffer, 2},
    {"multi(4)", core::AggPolicy::kMultiBuffer, 4},
    {"tree", core::AggPolicy::kTree, 1},
};

void panel(bool hash, bench::JsonReport& report) {
  std::printf("\n  %s storage — bandwidth (Tbps):\n  %-10s",
              hash ? "Hash" : "Array", "sparsified");
  for (const Alg& a : kAlgs) std::printf(" %10s", a.name);
  std::printf("\n");
  for (const u64 z : {64_KiB, 128_KiB, 256_KiB, 512_KiB}) {
    std::printf("  %-10s", bench::fmt_size(z).c_str());
    for (const Alg& a : kAlgs) {
      model::SparseParams p;
      p.hash_storage = hash;
      p.density = 0.10;
      const auto pt = model::evaluate_sparse(p, a.policy, a.buffers, z);
      std::printf(" %10s", bench::fmt_tbps(pt.bandwidth_bps).c_str());
      report.add(std::string(hash ? "hash_" : "array_") + a.name + "_" +
                     bench::fmt_size(z),
                 pt.bandwidth_bps / 1e12);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::print_title("Figure 13",
                     "modeled sparse-allreduce bandwidth (10% density)");
  bench::JsonReport report("fig13_sparse_model");
  panel(/*hash=*/true, report);
  panel(/*hash=*/false, report);
  std::printf("\n  Paper shape: sparse bandwidth sits well below the dense "
              "~4 Tbps because the\n  handler pays per-pair costs; same "
              "policy ordering as the dense case.\n");
  report.emit();
  return 0;
}
