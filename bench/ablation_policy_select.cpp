// Ablation — the Section 6.4 policy auto-selection thresholds.
//
// For each reduction size, report every policy's modeled AND simulated
// bandwidth, and the policy Flare's selector would pick; the selector
// should track the per-size winner (crossovers at ~128/256/512 KiB).
#include <cstdio>

#include "bench_util.hpp"
#include "model/policies.hpp"
#include "pspin/experiment.hpp"

using namespace flare;

namespace {

struct Alg {
  const char* name;
  core::AggPolicy policy;
  u32 buffers;
};

constexpr Alg kAlgs[] = {
    {"single", core::AggPolicy::kSingleBuffer, 1},
    {"multi(2)", core::AggPolicy::kMultiBuffer, 2},
    {"multi(4)", core::AggPolicy::kMultiBuffer, 4},
    {"tree", core::AggPolicy::kTree, 1},
};

const char* selected_name(u64 bytes) {
  const core::PolicyChoice c = core::select_policy(bytes, false);
  switch (c.policy) {
    case core::AggPolicy::kSingleBuffer: return "single";
    case core::AggPolicy::kMultiBuffer:
      return c.num_buffers == 4 ? "multi(4)" : "multi(2)";
    case core::AggPolicy::kTree: return "tree";
  }
  return "?";
}

}  // namespace

int main() {
  bench::print_title("Ablation",
                     "policy auto-selection vs per-size winner (Tbps)");
  bench::JsonReport report("ablation_policy_select");
  std::printf("  %-8s |", "size");
  for (const Alg& a : kAlgs) std::printf(" %8s-mod %8s-sim |", a.name, a.name);
  std::printf(" %10s\n", "selected");
  for (const u64 z : {32_KiB, 64_KiB, 128_KiB, 192_KiB, 256_KiB, 384_KiB,
                      512_KiB, 1_MiB}) {
    std::printf("  %-8s |", bench::fmt_size(z).c_str());
    for (const Alg& a : kAlgs) {
      model::SwitchParams sp;
      sp.cold_start = true;
      const f64 modeled =
          model::evaluate(sp, a.policy, a.buffers, z).bandwidth_bps;

      pspin::SingleSwitchOptions opt;
      opt.unit.n_clusters = 16;
      opt.hosts = 16;
      opt.data_bytes = z;
      opt.dtype = core::DType::kFloat32;
      opt.policy = a.policy;
      opt.num_buffers = a.buffers;
      opt.rounds = z <= 64_KiB ? 4 : 1;
      opt.seed = 3;
      const auto res = pspin::run_single_switch(opt);
      const f64 simulated = res.goodput_bps * 64.0 / opt.unit.n_clusters;
      std::printf(" %12s %12s |", bench::fmt_tbps(modeled).c_str(),
                  bench::fmt_tbps(simulated).c_str());
    }
    std::printf(" %10s\n", selected_name(z));
    report.add("selected_" + bench::fmt_size(z), selected_name(z));
  }
  report.emit();
  return 0;
}
