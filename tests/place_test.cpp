// Co-placement plane (src/place/): CostSnapshot freeze determinism, the
// seeded SA optimizer (seed-stability, fleet splitting), the hysteresis
// filter, plan-conflict detection, and the service placement plane end to
// end — planned migrations with reactive migration disabled, plan
// application under injected switch faults, and cross-job admission
// scoring.
//
// Topology used throughout: 32 hosts x radix-8 fat tree = 8 leaves (4 hosts
// each) x 4 spines, one link per leaf-spine pair — an allreduce over two
// leaves has four equal-size embeddings, so placement is purely a heat
// decision (same fabric as congestion_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "coll/communicator.hpp"
#include "net/telemetry.hpp"
#include "place/optimizer.hpp"
#include "place/snapshot.hpp"
#include "service/service.hpp"

namespace flare {
namespace {

using namespace flare::net;

FatTreeSpec four_spine_spec() {
  FatTreeSpec spec;
  spec.hosts = 32;
  spec.radix = 8;  // 8 leaves x 4 spines, single link per leaf-spine pair
  return spec;
}

u32 link_by_name(Network& net, const std::string& name) {
  for (u32 i = 0; i < net.num_links(); ++i) {
    if (net.link(i).name() == name) return i;
  }
  ADD_FAILURE() << "no link named " << name;
  return UINT32_MAX;
}

/// Injects `bytes` of opaque load onto unidirectional link `i` (a stale
/// reduce-down frame: dropped on arrival, but the link serializes every
/// byte — the same surgical heater congestion_test.cpp uses).
void heat_link(Network& net, u32 i, u64 bytes) {
  std::vector<i32> dummy(4, 0);
  core::Packet p = core::make_dense_packet(0x7EA70000u, 0, 0, dummy.data(),
                                           4, core::DType::kInt32);
  NetPacket np;
  np.kind = PacketKind::kReduceDown;
  np.allreduce_id = 0x7EA70000u;  // installed nowhere: dropped on arrival
  np.wire_bytes = bytes;
  np.reduce = std::make_shared<const core::Packet>(std::move(p));
  net.link(i).send(std::move(np));
}

/// Heats both directions of every link between `sw` and the given peers.
void heat_switch_links(Network& net, const std::string& sw,
                       const std::vector<std::string>& peers, u64 bytes) {
  for (const std::string& peer : peers) {
    heat_link(net, link_by_name(net, sw + "->" + peer), bytes);
    heat_link(net, link_by_name(net, peer + "->" + sw), bytes);
  }
}

/// Hosts by index into the built topology (leaf l owns hosts [4l, 4l+4)).
std::vector<Host*> pick_hosts(const BuiltTopology& topo,
                              std::initializer_list<u32> idx) {
  std::vector<Host*> out;
  for (const u32 i : idx) out.push_back(topo.hosts[i]);
  return out;
}

u32 total_installed(Network& net) {
  u32 installed = 0;
  for (Switch* s : net.switches()) installed += s->installed_reduces();
  return installed;
}

// ---------------------------------------------------------- CostSnapshot --

TEST(CostSnapshot, TwoFreezesOfOneInstantAreByteIdentical) {
  Network net;
  auto topo = build_fat_tree(net, four_spine_spec());
  CongestionMonitor monitor(net);
  coll::NetworkManager manager(net);

  monitor.sample();
  heat_switch_links(net, "spine1", {"leaf0", "leaf1"}, 8 * kMiB);
  net.sim().run();
  monitor.sample();

  const auto participants = pick_hosts(topo, {0, 1, 4, 5});
  auto tree0 = manager.compute_tree(participants, topo.spines[0]->id());
  auto tree1 = manager.compute_tree(participants, topo.spines[1]->id());
  ASSERT_TRUE(tree0 && tree1);

  // Handed out of job-id order on purpose: freeze() must sort.
  const auto inputs = [&] {
    std::vector<place::JobInput> in(2);
    in[0].job_id = 7;
    in[0].trace = 11;
    in[0].data_bytes = 1 * kMiB;
    in[0].participants = participants;
    in[0].tree = *tree1;
    in[1].job_id = 3;
    in[1].trace = 12;
    in[1].data_bytes = 2 * kMiB;
    in[1].participants = participants;
    in[1].tree = *tree0;
    return in;
  };
  const place::CostSnapshot a =
      place::CostSnapshot::freeze(net, monitor, inputs());
  const place::CostSnapshot b =
      place::CostSnapshot::freeze(net, monitor, inputs());
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_FALSE(a.serialize().empty());

  ASSERT_EQ(a.jobs().size(), 2u);
  EXPECT_EQ(a.jobs()[0].job_id, 3u);  // ascending job_id
  EXPECT_EQ(a.jobs()[1].job_id, 7u);
  EXPECT_EQ(a.num_links(), net.num_links());

  // The heated spine1 links are BACKGROUND (no active trace owns them);
  // traceless jobs carry the cold-start prior and a non-empty link set.
  f64 total_bg = 0.0;
  for (const f64 v : a.background()) total_bg += v;
  EXPECT_GT(total_bg, 0.0);
  for (const place::JobView& jv : a.jobs()) {
    EXPECT_EQ(jv.weight, place::kColdStartWeight);
    EXPECT_FALSE(jv.links.empty());
    EXPECT_TRUE(std::is_sorted(jv.links.begin(), jv.links.end()));
  }
}

// ----------------------------------------------------- PlacementOptimizer --

/// Two jobs with disjoint hosts but one shared leaf, both embedded through
/// spine0: the shared leaf1<->spine0 edge carries both, and three cool
/// spines sit idle — the joint search must split the pair.
TEST(PlacementOptimizer, SameSeedSamePlanAndStackedJobsSplit) {
  Network net;
  auto topo = build_fat_tree(net, four_spine_spec());
  CongestionMonitor monitor(net);
  coll::NetworkManager manager(net);
  monitor.sample();

  const NodeId spine0 = topo.spines[0]->id();
  const auto hosts_a = pick_hosts(topo, {0, 1, 4, 5});   // leaf0 + leaf1
  const auto hosts_b = pick_hosts(topo, {6, 7, 8, 9});   // leaf1 + leaf2
  auto tree_a = manager.compute_tree(hosts_a, spine0);
  auto tree_b = manager.compute_tree(hosts_b, spine0);
  ASSERT_TRUE(tree_a && tree_b);

  std::vector<place::JobInput> inputs(2);
  inputs[0].job_id = 0;
  inputs[0].trace = 21;
  inputs[0].data_bytes = 64 * kKiB;
  inputs[0].participants = hosts_a;
  inputs[0].tree = *tree_a;
  inputs[1].job_id = 1;
  inputs[1].trace = 22;
  inputs[1].data_bytes = 64 * kKiB;
  inputs[1].participants = hosts_b;
  inputs[1].tree = *tree_b;
  const place::CostSnapshot snap =
      place::CostSnapshot::freeze(net, monitor, std::move(inputs));

  place::OptimizerOptions popt;
  popt.seed = 42;
  place::PlacementOptimizer o1(net, popt);
  place::PlacementOptimizer o2(net, popt);
  const place::PlacementPlan p1 = o1.optimize(snap);
  const place::PlacementPlan p2 = o2.optimize(snap);

  // Same seed -> the same plan, bit for bit.
  EXPECT_EQ(p1.cost_before, p2.cost_before);
  EXPECT_EQ(p1.cost_after, p2.cost_after);
  EXPECT_EQ(p1.sa_iterations, p2.sa_iterations);
  EXPECT_EQ(p1.proposed, p2.proposed);
  EXPECT_EQ(p1.accepted, p2.accepted);
  ASSERT_EQ(p1.moves.size(), p2.moves.size());
  for (std::size_t i = 0; i < p1.moves.size(); ++i) {
    EXPECT_EQ(p1.moves[i].job_id, p2.moves[i].job_id);
    EXPECT_EQ(p1.moves[i].old_root, p2.moves[i].old_root);
    EXPECT_EQ(p1.moves[i].new_root, p2.moves[i].new_root);
    EXPECT_EQ(p1.moves[i].predicted_gain, p2.moves[i].predicted_gain);
  }

  // The split: the best assignment beats the stacked one and ends with the
  // two jobs on different roots, every surviving move a real change.
  EXPECT_LT(p1.cost_after, p1.cost_before);
  ASSERT_GE(p1.moves.size(), 1u);
  NodeId final_root[2] = {spine0, spine0};
  for (const place::PlannedMove& mv : p1.moves) {
    ASSERT_LT(mv.job_id, 2u);
    EXPECT_EQ(mv.old_root, spine0);
    EXPECT_NE(mv.new_root, mv.old_root);
    EXPECT_GT(mv.predicted_gain, 0.0);
    final_root[mv.job_id] = mv.new_root;
  }
  EXPECT_NE(final_root[0], final_root[1]);

  // A different seed explores differently but still returns a valid,
  // no-worse plan.
  popt.seed = 1337;
  place::PlacementOptimizer o3(net, popt);
  const place::PlacementPlan p3 = o3.optimize(snap);
  EXPECT_LE(p3.cost_after, p3.cost_before);
  for (const place::PlannedMove& mv : p3.moves) {
    EXPECT_LT(mv.job_id, 2u);
    EXPECT_GT(mv.predicted_gain, 0.0);
  }
}

TEST(PlacementPlan, HysteresisDropsBelowThresholdMoves) {
  place::PlacementPlan plan;
  place::PlannedMove marginal;
  marginal.job_id = 1;
  marginal.predicted_gain = 0.01;
  place::PlannedMove real;
  real.job_id = 2;
  real.predicted_gain = 0.40;
  plan.moves = {marginal, real};

  EXPECT_EQ(place::filter_moves(plan, 0.05), 1u);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].job_id, 2u);
  EXPECT_EQ(place::filter_moves(plan, 0.05), 0u);  // survivors stay
  EXPECT_EQ(place::filter_moves(plan, 0.50), 1u);  // raising the bar drops
  EXPECT_TRUE(plan.moves.empty());
}

TEST(PlacementPlan, TreeConflictsMatchesTargetSwitches) {
  Network net;
  auto topo = build_fat_tree(net, four_spine_spec());
  coll::NetworkManager manager(net);
  auto tree =
      manager.compute_tree(pick_hosts(topo, {0, 1, 4, 5}),
                           topo.spines[0]->id());
  ASSERT_TRUE(tree);

  std::vector<NodeId> targets;  // empty: nothing conflicts
  EXPECT_FALSE(place::tree_conflicts(*tree, targets));

  targets = {topo.spines[1]->id(), topo.spines[2]->id()};
  std::sort(targets.begin(), targets.end());
  EXPECT_FALSE(place::tree_conflicts(*tree, targets));  // disjoint fabric

  targets.push_back(topo.leaves[1]->id());  // a switch the tree crosses
  std::sort(targets.begin(), targets.end());
  EXPECT_TRUE(place::tree_conflicts(*tree, targets));
}

// ------------------------------------------------------- service, planned --

/// End-to-end planned migration with REACTIVE migration disabled
/// (migrate_above = 0): two duty-cycled jobs land on the one cool spine
/// (the other three are hot at admission), the transient heat decays, and
/// only the co-placement plane can split them.  Every re-embedding observed
/// must therefore be optimizer-planned.
TEST(PlacementService, PlannedMigrationSplitsCoTenantsWithoutReactive) {
  Network net;
  auto topo = build_fat_tree(net, four_spine_spec());
  CongestionMonitor monitor(net);

  service::ServiceOptions opt;
  opt.root_policy = service::RootPolicy::kLeastCongested;
  opt.monitor = &monitor;
  opt.migrate_above = 0.0;  // reactive OFF: any move is the optimizer's
  opt.place_period_ps = 40 * kPsPerUs;
  opt.place_min_gain = 0.02;
  service::AllreduceService service(net, opt);

  // Spines 1..3 are hot over the jobs' leaves BEFORE arrival: admission
  // stacks both jobs onto spine0.  The heat is transient (drains in
  // ~170 us) — the starting point decays into a plainly bad assignment.
  monitor.sample();
  for (const char* sp : {"spine1", "spine2", "spine3"}) {
    heat_switch_links(net, sp, {"leaf0", "leaf1", "leaf2"}, 2 * kMiB);
  }
  net.sim().run();

  const auto submit = [&](std::initializer_list<u32> hosts) {
    service::JobSpec spec;
    spec.participants = pick_hosts(topo, hosts);
    spec.desc.data_bytes = 64 * kKiB;
    spec.desc.dtype = core::DType::kInt32;
    spec.iterations = 60;
    spec.iteration_gap_ps = 15 * kPsPerUs;  // partial duty cycle
    return service.submit(std::move(spec));
  };
  const u32 job_a = submit({0, 1, 4, 5});  // leaf0 + leaf1
  const u32 job_b = submit({6, 7, 8, 9});  // leaf1 + leaf2 (shares leaf1)
  ASSERT_TRUE(service.records()[job_a].in_network);
  ASSERT_TRUE(service.records()[job_b].in_network);
  // Both embeddings route through the one cool spine (the roots may differ
  // — least-congested also roots at cool leaves — but every path between
  // the jobs' leaves crosses spine0 while spines 1..3 are hot).
  EXPECT_EQ(service.records()[job_a].tree_root, topo.spines[0]->id());

  net.sim().run();

  const service::ServiceTelemetry& t = service.telemetry();
  for (const u32 job : {job_a, job_b}) {
    const service::JobRecord& rec = service.records()[job];
    EXPECT_EQ(rec.state, service::JobState::kDone);
    EXPECT_TRUE(rec.ok);
    EXPECT_EQ(rec.iterations_done, 60u);
    EXPECT_EQ(rec.migrations, 0u) << "reactive migration is disabled";
  }
  EXPECT_EQ(t.migrations, 0u);
  EXPECT_GE(t.planned_migrations, 1u);
  EXPECT_GE(t.place.rounds, 2u);
  EXPECT_GE(t.place.moves_planned, 1u);
  EXPECT_GT(t.place.last_cost_before, 0.0);
  EXPECT_LE(t.place.last_cost_predicted, t.place.last_cost_before);
  EXPECT_EQ(service.records()[job_a].planned_migrations +
                service.records()[job_b].planned_migrations,
            t.planned_migrations);
  EXPECT_EQ(total_installed(net), 0u);  // no occupancy leak
}

/// Switch faults injected across an active placement plane: staged plans
/// race recoveries and dead targets, and every move must either apply
/// fully or be discarded — jobs complete, nothing leaks.
TEST(PlacementService, PlanApplicationIsLeakFreeUnderFaults) {
  Network net;
  auto topo = build_fat_tree(net, four_spine_spec());
  CongestionMonitor monitor(net);

  service::ServiceOptions opt;
  opt.root_policy = service::RootPolicy::kLeastCongested;
  opt.monitor = &monitor;
  opt.migrate_above = 0.0;
  opt.place_period_ps = 40 * kPsPerUs;
  opt.retransmit_timeout_ps = 15 * kPsPerUs;  // fault recovery on
  service::AllreduceService service(net, opt);

  monitor.sample();
  for (const char* sp : {"spine1", "spine2", "spine3"}) {
    heat_switch_links(net, sp, {"leaf0", "leaf1", "leaf2"}, 2 * kMiB);
  }
  net.sim().run();

  const auto submit = [&](std::initializer_list<u32> hosts) {
    service::JobSpec spec;
    spec.participants = pick_hosts(topo, hosts);
    spec.desc.data_bytes = 64 * kKiB;
    spec.desc.dtype = core::DType::kInt32;
    spec.iterations = 60;
    spec.iteration_gap_ps = 15 * kPsPerUs;
    return service.submit(std::move(spec));
  };
  const u32 job_a = submit({0, 1, 4, 5});
  const u32 job_b = submit({6, 7, 8, 9});
  ASSERT_TRUE(service.records()[job_a].in_network);
  ASSERT_TRUE(service.records()[job_b].in_network);

  // Kill the stacked spine mid-run (forces recovery while plans may be
  // staged against it), then a likely plan TARGET a bit later; restart
  // both so late rounds can re-plan onto them.
  net.sim().schedule_after(150 * kPsPerUs,
                           [sw = topo.spines[0]] { sw->fail(); });
  net.sim().schedule_after(300 * kPsPerUs,
                           [sw = topo.spines[1]] { sw->fail(); });
  net.sim().schedule_after(600 * kPsPerUs, [sw = topo.spines[0]] {
    sw->restart();
  });
  net.sim().schedule_after(600 * kPsPerUs, [sw = topo.spines[1]] {
    sw->restart();
  });
  net.sim().run();

  for (const u32 job : {job_a, job_b}) {
    const service::JobRecord& rec = service.records()[job];
    EXPECT_EQ(rec.state, service::JobState::kDone);
    EXPECT_TRUE(rec.ok);
    EXPECT_EQ(rec.iterations_done, 60u);
    EXPECT_EQ(rec.migrations, 0u);
  }
  EXPECT_EQ(total_installed(net), 0u) << "plan apply/fault race leaked";
}

// ----------------------------------------------------- admission scoring --

/// Slot scarcity (one reduction per switch) queues two jobs behind a long
/// runner; when the slots free, the hot job's leaf uplinks are saturated
/// and the scored drain admits the COOL job first, overtaking FIFO.
TEST(PlacementService, AdmissionScoringAdmitsCheapestQueuedJobFirst) {
  Network net;
  FatTreeSpec spec = four_spine_spec();
  spec.max_allreduces = 1;  // one job per switch: admission serializes
  auto topo = build_fat_tree(net, spec);
  CongestionMonitor monitor(net);

  service::ServiceOptions opt;
  opt.monitor = &monitor;
  opt.admission_scoring = true;
  opt.queue_timeout_ps = 0;  // wait for slots, never fall back
  service::AllreduceService service(net, opt);
  monitor.sample();

  // A holds leaf1 + leaf2 for ~150 us.
  service::JobSpec spec_a;
  spec_a.participants = pick_hosts(topo, {4, 5, 8, 9});  // leaf1 + leaf2
  spec_a.desc.data_bytes = 64 * kKiB;
  spec_a.desc.dtype = core::DType::kInt32;
  spec_a.iterations = 6;
  spec_a.iteration_gap_ps = 15 * kPsPerUs;
  const u32 job_a = service.submit(std::move(spec_a));
  ASSERT_TRUE(service.records()[job_a].in_network);

  // B (leaf0 + leaf1) and C (leaf2 + leaf3) queue behind A in FIFO order.
  service::JobSpec spec_b;
  spec_b.participants = pick_hosts(topo, {0, 1, 6, 7});
  spec_b.desc.data_bytes = 64 * kKiB;
  spec_b.desc.dtype = core::DType::kInt32;
  service.submit_at(5 * kPsPerUs, std::move(spec_b));

  service::JobSpec spec_c;
  spec_c.participants = pick_hosts(topo, {10, 11, 14, 15});
  spec_c.desc.data_bytes = 64 * kKiB;
  spec_c.desc.dtype = core::DType::kInt32;
  service.submit_at(10 * kPsPerUs, std::move(spec_c));

  // Saturate B's distinguishing leaf (leaf0, untouched by A and C) well
  // past A's completion: at drain time B is expensive, C is cheap.
  net.sim().schedule_at(15 * kPsPerUs, [&net] {
    heat_switch_links(net, "leaf0", {"spine0", "spine1", "spine2", "spine3"},
                      4 * kMiB);
  });
  net.sim().run();

  for (u32 job = 0; job < 3; ++job) {
    const service::JobRecord& rec = service.records()[job];
    EXPECT_EQ(rec.state, service::JobState::kDone) << "job " << job;
    EXPECT_TRUE(rec.ok) << "job " << job;
    EXPECT_TRUE(rec.in_network) << "job " << job;
  }
  EXPECT_GE(service.telemetry().admission_reorders, 1u);
  EXPECT_EQ(total_installed(net), 0u);
}

}  // namespace
}  // namespace flare
