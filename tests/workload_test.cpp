// Workload generators: determinism, density targets, overlap control,
// gradient-trace structure (bucket top-k, layer scales), arrival processes.
#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/arrivals.hpp"
#include "workload/generators.hpp"
#include "workload/gradient_trace.hpp"

namespace flare::workload {
namespace {

TEST(DenseGen, DeterministicPerSeedAndHost) {
  auto a = make_dense_data(3, 128, core::DType::kFloat32, 5);
  auto b = make_dense_data(3, 128, core::DType::kFloat32, 5);
  for (u32 h = 0; h < 3; ++h) EXPECT_TRUE(a[h].bitwise_equal(b[h]));
  auto c = make_dense_data(3, 128, core::DType::kFloat32, 6);
  EXPECT_FALSE(a[0].bitwise_equal(c[0]));
}

TEST(DenseGen, HostsDiffer) {
  auto d = make_dense_data(2, 256, core::DType::kInt32, 7);
  EXPECT_FALSE(d[0].bitwise_equal(d[1]));
}

TEST(SparseGen, DensityTargetIsHonoured) {
  SparseSpec spec{10000, 0.10, 0.0, core::DType::kFloat32, 11};
  f64 total = 0;
  const int blocks = 20;
  for (int b = 0; b < blocks; ++b)
    total += static_cast<f64>(sparse_block_indices(spec, 0, static_cast<u32>(b)).size());
  const f64 mean_density = total / blocks / spec.span;
  EXPECT_NEAR(mean_density, 0.10, 0.02);
}

TEST(SparseGen, IndicesSortedUniqueInSpan) {
  SparseSpec spec{640, 0.2, 0.3, core::DType::kFloat32, 13};
  for (u32 h = 0; h < 4; ++h) {
    const auto idx = sparse_block_indices(spec, h, 0);
    for (std::size_t i = 1; i < idx.size(); ++i)
      EXPECT_LT(idx[i - 1], idx[i]);
    for (const u32 i : idx) EXPECT_LT(i, spec.span);
  }
}

TEST(SparseGen, OverlapControlsUnionSize) {
  // With full overlap every host picks the same shared pool: union ~ nnz.
  // With none, union ~ P * nnz (minus collisions).
  SparseSpec lo{2000, 0.05, 0.0, core::DType::kFloat32, 17};
  SparseSpec hi{2000, 0.05, 1.0, core::DType::kFloat32, 17};
  const std::size_t u_lo = union_index_count(lo, 8, 0);
  const std::size_t u_hi = union_index_count(hi, 8, 0);
  EXPECT_GT(u_lo, 3 * u_hi);
}

TEST(SparseGen, PairsMatchIndices) {
  SparseSpec spec{640, 0.1, 0.5, core::DType::kFloat32, 19};
  const auto idx = sparse_block_indices(spec, 2, 3);
  const auto pairs = sparse_block_pairs(spec, 2, 3);
  ASSERT_EQ(idx.size(), pairs.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(pairs[i].index, idx[i]);
    EXPECT_NE(pairs[i].value, 0.0);
  }
}

TEST(SparseGen, DensifyPlacesValues) {
  SparseSpec spec{100, 0.1, 0.0, core::DType::kFloat32, 23};
  std::vector<core::SparsePair> pairs = {{3, 1.5}, {97, -2.0}};
  const core::TypedBuffer buf = densify(spec, pairs);
  EXPECT_DOUBLE_EQ(buf.get_as_f64(3), 1.5);
  EXPECT_DOUBLE_EQ(buf.get_as_f64(97), -2.0);
  EXPECT_DOUBLE_EQ(buf.get_as_f64(0), 0.0);
}

TEST(GradientTrace, DensityMatchesBucketTopK) {
  GradientTraceSpec spec;
  spec.model_elems = 512 * 1000;
  spec.bucket = 512;
  spec.top_k = 1;
  GradientTrace trace(spec, 4);
  EXPECT_NEAR(trace.density(), 1.0 / 512.0, 1e-12);
  EXPECT_EQ(trace.buckets(), 1000u);
}

TEST(GradientTrace, ExactlyTopKPerBucket) {
  GradientTraceSpec spec;
  spec.model_elems = 512 * 64;
  GradientTrace trace(spec, 2);
  const auto pairs = trace.window_pairs(0, 0, 64);
  EXPECT_EQ(pairs.size(), 64u);  // one pair per bucket
  // Every pair lands in its own bucket.
  std::unordered_set<u64> buckets;
  for (const auto& p : pairs) buckets.insert(p.index / spec.bucket);
  EXPECT_EQ(buckets.size(), 64u);
}

TEST(GradientTrace, OverlapShrinksUnion) {
  GradientTraceSpec hi;
  hi.model_elems = 512 * 128;
  hi.overlap = 0.95;
  GradientTraceSpec lo = hi;
  lo.overlap = 0.0;
  GradientTrace t_hi(hi, 16), t_lo(lo, 16);
  EXPECT_LT(t_hi.window_union(0, 128), t_lo.window_union(0, 128) / 2);
}

TEST(GradientTrace, WindowIndicesRelativeAndBounded) {
  GradientTraceSpec spec;
  spec.model_elems = 512 * 256;
  GradientTrace trace(spec, 2);
  const auto pairs = trace.window_pairs(1, 100, 10);
  for (const auto& p : pairs) EXPECT_LT(p.index, 10u * spec.bucket);
  EXPECT_EQ(pairs.size(), 10u);
}

TEST(GradientTrace, Deterministic) {
  GradientTraceSpec spec;
  spec.model_elems = 512 * 32;
  GradientTrace a(spec, 4), b(spec, 4);
  const auto pa = a.window_pairs(2, 0, 32);
  const auto pb = b.window_pairs(2, 0, 32);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].index, pb[i].index);
    EXPECT_EQ(pa[i].value, pb[i].value);
  }
}

TEST(Arrivals, DeterministicIsConstant) {
  ArrivalProcess ap(ArrivalKind::kDeterministic, 42.0, 1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(ap.next_gap(), 42.0);
}

TEST(Arrivals, ExponentialMeanConverges) {
  ArrivalProcess ap(ArrivalKind::kExponential, 100.0, 2);
  f64 sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += ap.next_gap();
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

}  // namespace
}  // namespace flare::workload
